package core

import (
	"repro/internal/sim"
	"repro/internal/vfs"
)

// File is an open NFS file; it implements vfs.File. Writes are sequential
// appends (the paper's benchmark writes fresh files front to back); Reads
// advance an independent read position and pull cold pages from the
// server with readahead; Flush is fsync; Close flushes and commits,
// because "NFS ... always flushes completely before last close" (§2.3).
type File struct {
	c       *Client
	ino     *Inode
	readPos int64
	sync    bool
	closed  bool

	// name is set for files opened through the namespace (OpenByName);
	// local writes invalidate its attribute-cache entry.
	name string
}

// SetSync switches the file to O_SYNC semantics: every write() is sent to
// the server as a stable (FILE_SYNC) WRITE and waits for the reply, like
// nfs_writepage_sync. The paper contrasts this class of workload in §3.6:
// "where applications require data permanence before a write() system
// call returns, the Network Appliance filer ... performs better".
func (f *File) SetSync(sync bool) { f.sync = sync }

// Inode returns the file's client-side inode (for inspection in tests and
// experiments).
func (f *File) Inode() *Inode { return f.ino }

// Write implements vfs.File: the sys_write -> generic_file_write ->
// nfs_commit_write path, followed by the flush-policy checks. The write
// appends at the current end of file.
func (f *File) Write(p *sim.Proc, n int) {
	f.WriteAt(p, f.ino.size, n)
}

// WriteAt writes n bytes at an arbitrary offset (pwrite), for
// database-style workloads that dirty pages out of order. Writing into a
// page with a pending request coalesces client-side, like the kernel.
func (f *File) WriteAt(p *sim.Proc, off int64, n int) {
	if f.closed {
		panic("core: write after close")
	}
	if off < 0 || n < 0 {
		panic("core: negative write offset or length")
	}
	vfs.WriteSyscall(p, f.c.cpu, f.c.cfg.VFS, off, n, func(span vfs.PageSpan) {
		if f.sync {
			f.c.writeSyncSpan(p, f.ino, span)
			return
		}
		f.c.chargeSpan(p, span.Count)
		netNew := f.c.commitPage(p, f.ino, span.Page, span.Offset, span.Count)
		f.c.creditSurplus(span.Count, netNew)
		f.c.enforceLimits(p, f.ino)
	})
	if end := off + int64(n); end > f.ino.size {
		f.ino.size = end
	}
	if f.name != "" {
		// Local write: cached attributes (size, mtime) no longer describe
		// the file; the next name-based access must revalidate.
		f.c.invalidateAttr(f.name)
	}
}

// Read implements vfs.File: the sys_read -> generic_file_read ->
// nfs_readpage path at the file's current read position. Returns the
// bytes read (0 at end of file).
func (f *File) Read(p *sim.Proc, n int) int {
	got := f.ReadAt(p, f.readPos, n)
	f.readPos += int64(got)
	return got
}

// ReadAt reads up to n bytes at an arbitrary offset (pread), for
// database-style workloads; it does not move the read position. Returns
// the bytes read, clamped at end of file.
func (f *File) ReadAt(p *sim.Proc, off int64, n int) int {
	if f.closed {
		panic("core: read after close")
	}
	if off < 0 || n < 0 {
		panic("core: negative read offset or length")
	}
	if off >= f.ino.size {
		return 0
	}
	if rem := f.ino.size - off; int64(n) > rem {
		n = int(rem)
	}
	if n == 0 {
		return 0
	}
	vfs.ReadSyscall(p, f.c.cpu, f.c.cfg.VFS, off, n, func(span vfs.PageSpan) {
		f.c.readPage(p, f.ino, span.Page)
	})
	return n
}

// Flush implements vfs.File: fsync — push every cached request to the
// server, then COMMIT if any reply was unstable. If a reply or the COMMIT
// reveals a server reboot, the lost ranges were re-queued and the flush
// loops until everything is durable under one verifier.
func (f *File) Flush(p *sim.Proc) {
	for {
		f.c.flushInodeSync(p, f.ino)
		if !f.ino.unstable {
			return
		}
		if f.c.commitSync(p, f.ino) {
			return
		}
	}
}

// Close implements vfs.File: flush and commit, then drop this handle's
// reference — the last close takes the file out of flushd's scan set.
// Anonymous inodes also release their pages; named inodes keep them for
// the next open, like the kernel's inode cache (see closeInode).
func (f *File) Close(p *sim.Proc) {
	if f.closed {
		return
	}
	f.Flush(p)
	f.closed = true
	f.c.closeInode(f.ino)
}

// Size implements vfs.File.
func (f *File) Size() int64 { return f.ino.size }
