// Package core implements the paper's primary contribution: the Linux NFS
// client write path, in both its stock 2.4.4 form and with the paper's
// three fixes applied, each independently switchable.
//
// The write path models, faithfully to §3.3–§3.5:
//
//   - Page-granular write requests: "The Linux VFS layer passes write
//     requests no larger than a page to file systems, one at a time"; an
//     8 KB write() is two requests.
//   - A per-inode request list sorted by page offset, scanned linearly by
//     _nfs_find_request from both nfs_find_request and nfs_update_request
//     (IndexLinearList), or supplemented by a hash table keyed on
//     (inode, page offset) at a cost of "eight bytes per request and eight
//     bytes per inode" (IndexHashTable — fix 2).
//   - The 2.4.4 memory-bounding limits: MAX_REQUEST_SOFT = 192 per inode
//     (writer synchronously flushes everything and waits) and
//     MAX_REQUEST_HARD = 256 per mount (writer sleeps)
//     (FlushLimits24 — the cause of the Figure 2 latency spikes), or
//     cache-until-memory-pressure (FlushCacheAll — fix 1).
//   - nfs_flushd, the write-behind daemon, whose async sends contend with
//     the writer for the BKL (§3.5); the BKL discipline around
//     sock_sendmsg is rpcsim.LockPolicy (fix 3).
package core

import (
	"repro/internal/rpcsim"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// FlushPolicy selects how the client bounds cached write requests.
type FlushPolicy int

const (
	// FlushLimits24 is the stock 2.4.4 behaviour: fixed per-inode and
	// per-mount request-count limits enforced in the write path.
	FlushLimits24 FlushPolicy = iota
	// FlushCacheAll is fix 1: "the client should cache as many requests
	// as it can in available memory"; only memory pressure (or an
	// explicit flush) forces writes out.
	FlushCacheAll
)

func (f FlushPolicy) String() string {
	if f == FlushCacheAll {
		return "cache-all"
	}
	return "2.4.4-limits"
}

// IndexPolicy selects the pending-request lookup structure.
type IndexPolicy int

const (
	// IndexLinearList is the stock structure: the sorted per-inode list is
	// scanned linearly on every lookup.
	IndexLinearList IndexPolicy = iota
	// IndexHashTable is fix 2: a hash table keyed by (inode, page offset)
	// supplements the list, making lookups O(1).
	IndexHashTable
)

func (i IndexPolicy) String() string {
	if i == IndexHashTable {
		return "hash"
	}
	return "list"
}

// Paper constants (§3.3, §3.1).
const (
	// MaxRequestSoft is MAX_REQUEST_SOFT in the 2.4.4 kernel.
	MaxRequestSoft = 192
	// MaxRequestHard is MAX_REQUEST_HARD in the 2.4.4 kernel.
	MaxRequestHard = 256
	// DefaultWSize is the mount's wsize (rsize=wsize=8192, §3.1).
	DefaultWSize = 8192
)

// Readahead sizing (pages). The stock 2.4 client's NFS readahead rides
// the generic file readahead with a modest cap; the enhanced client uses
// a larger window — the read-side analog of replacing the write-path
// request limits with cache-until-memory-pressure.
const (
	StockReadaheadMinPages = 2
	StockReadaheadMaxPages = 16

	EnhancedReadaheadMinPages = 4
	EnhancedReadaheadMaxPages = 64

	// ReadaheadOff, assigned to Config.ReadaheadMaxPages, disables
	// readahead entirely: every miss fetches one demand rsize chunk and
	// the reader waits for it (the ablation baseline).
	ReadaheadOff = -1
)

// ConsistencyMode selects how aggressively the client revalidates cached
// data against the server on open (close-to-open consistency).
type ConsistencyMode int

const (
	// ConsistencyTTL is the Linux default: cached attributes are trusted
	// for the adaptive acregmin..acregmax window and opens revalidate only
	// once the window expires. Staleness is bounded by the window.
	ConsistencyTTL ConsistencyMode = iota
	// ConsistencyStrict revalidates with GETATTR on every open, so a
	// reader can never consume pages a foreign writer has already
	// replaced — at the cost of one RPC per open.
	ConsistencyStrict
	// ConsistencyNoac never revalidates on open: cached pages and
	// attributes are trusted until this client itself writes. Staleness
	// is unbounded. Note the inversion versus mount -o noac, which
	// disables the cache (our AcOff) — here "noac" means no attribute
	// *checking*, the other extreme.
	ConsistencyNoac
)

func (m ConsistencyMode) String() string {
	switch m {
	case ConsistencyStrict:
		return "strict"
	case ConsistencyNoac:
		return "noac"
	}
	return "ttl"
}

// ParseConsistency maps the CLI spelling to a mode.
func ParseConsistency(s string) (ConsistencyMode, bool) {
	switch s {
	case "ttl", "":
		return ConsistencyTTL, true
	case "strict":
		return ConsistencyStrict, true
	case "noac":
		return ConsistencyNoac, true
	}
	return ConsistencyTTL, false
}

// Attribute-cache timeouts (virtual time), matching the Linux mount
// defaults acregmin=3s, acregmax=60s. A cached attribute result is
// trusted for an adaptive window that starts at the minimum and doubles
// toward the maximum each time revalidation finds the file unchanged.
const (
	DefaultAcRegMin = 3_000_000_000  // 3 s
	DefaultAcRegMax = 60_000_000_000 // 60 s

	// AcOff, assigned to Config.AcRegMin, disables the attribute cache
	// entirely: every open, stat and lookup goes to the server (the
	// ablation baseline, mount -o noac).
	AcOff = -1
)

// Costs is the client-side CPU model for the NFS-specific write path,
// calibrated (together with vfs.DefaultCosts and rpcsim.DefaultConfig) to
// the paper's 933 MHz P-III client. Per-byte figures match the paper;
// see DESIGN.md §2 for the calibration notes.
type Costs struct {
	// CommitWriteBase is nfs_commit_write bookkeeping, held under the BKL.
	CommitWriteBase sim.Time
	// UpdateRequestBase is nfs_update_request's fixed work (allocation,
	// list insert) beyond the lookup scans.
	UpdateRequestBase sim.Time
	// ListScanPerEntry is _nfs_find_request's cost per list entry
	// traversed (IndexLinearList).
	ListScanPerEntry sim.Time
	// HashLookup is the per-lookup cost with IndexHashTable.
	HashLookup sim.Time
	// CoalesceBase is the fixed cost of gathering requests into one RPC.
	CoalesceBase sim.Time
	// ReadPageBase is nfs_readpage's bookkeeping per page (cache lookup,
	// readahead state update), held under the BKL.
	ReadPageBase sim.Time
	// MetaOpBase is the client-side bookkeeping per metadata operation
	// (dentry/attribute-cache probe and update on LOOKUP, GETATTR, CREATE
	// and REMOVE), charged whether or not an RPC goes out.
	MetaOpBase sim.Time
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		CommitWriteBase:   3_000, // 3 µs
		UpdateRequestBase: 8_000, // 8 µs
		ListScanPerEntry:  15,    // 15 ns per entry
		HashLookup:        500,   // 0.5 µs
		CoalesceBase:      10_000,
		ReadPageBase:      2_000, // 2 µs
		MetaOpBase:        3_000, // 3 µs
	}
}

// Config selects the client's policies and parameters.
type Config struct {
	WSize int
	// RSize is the mount's read transfer size (rsize). Zero means "track
	// WSize", which keeps rsize=wsize through wsize-axis sweeps the way
	// the paper's mounts were configured.
	RSize          int
	MaxRequestSoft int
	MaxRequestHard int
	FlushPolicy    FlushPolicy
	IndexPolicy    IndexPolicy
	// LockPolicy is applied to the RPC transport (fix 3).
	LockPolicy rpcsim.LockPolicy

	// ReadaheadMinPages/MaxPages size the per-inode sequential readahead
	// window (see mm.Readahead): misses on a sequential run double the
	// window from min to max; a seek resets it. A zero field takes the
	// stock sizing (so setting only one bound never disables the
	// window); ReadaheadMaxPages = ReadaheadOff disables readahead.
	ReadaheadMinPages int
	ReadaheadMaxPages int

	// FSID identifies this mount in the file handles the client builds
	// (default 1). Multi-client test beds offset it by the machine index
	// so handles from different clients never collide in the shared
	// server's per-file state.
	FSID uint64

	// AcRegMin/AcRegMax bound the attribute-cache timeout (acregmin /
	// acregmax). Zero takes the Linux mount defaults (3 s / 60 s);
	// AcRegMin = AcOff disables attribute caching entirely, so every
	// name-based open, stat and lookup revalidates at the server.
	AcRegMin sim.Time
	AcRegMax sim.Time

	// Consistency selects the open-time revalidation discipline (see
	// ConsistencyMode). The zero value is the Linux ttl default.
	Consistency ConsistencyMode

	// FlushdWatermarkPages is how many dirty pages accumulate before the
	// write-behind daemon starts sending (FlushCacheAll).
	FlushdWatermarkPages int
	// FlushdAge is the age beyond which the 2.4.4 flushd writes requests
	// back (FlushLimits24; fs/nfs/flushd.c used ~1 s).
	FlushdAge sim.Time
	// MemoryPressureWindow is how many RPC slots flushd may fill when the
	// page cache is near its limit (urgent writeback); below pressure it
	// uses a single slot, modeling 2.4's lone rpciod worker pacing
	// write-behind to one async task at a time.
	MemoryPressureWindow int

	Costs Costs
	VFS   vfs.Costs
}

// Stock244Config returns the unmodified 2.4.4 client: limit-based
// flushing, linear list, BKL held across sock_sendmsg.
func Stock244Config() Config {
	return Config{
		WSize:                DefaultWSize,
		MaxRequestSoft:       MaxRequestSoft,
		MaxRequestHard:       MaxRequestHard,
		FlushPolicy:          FlushLimits24,
		IndexPolicy:          IndexLinearList,
		LockPolicy:           rpcsim.HoldBKLAcrossSend,
		ReadaheadMinPages:    StockReadaheadMinPages,
		ReadaheadMaxPages:    StockReadaheadMaxPages,
		FlushdWatermarkPages: 8,
		FlushdAge:            1_000_000_000, // 1 s
		MemoryPressureWindow: 16,
		Costs:                DefaultCosts(),
		VFS:                  vfs.DefaultCosts(),
	}
}

// NoLimitsConfig returns the client after fix 1 only (Figure 3):
// cache-all flushing but still the linear list and the BKL.
func NoLimitsConfig() Config {
	c := Stock244Config()
	c.FlushPolicy = FlushCacheAll
	return c
}

// HashConfig returns the client after fixes 1+2 (Figure 4): cache-all
// flushing and the hash table, BKL still held across sends.
func HashConfig() Config {
	c := NoLimitsConfig()
	c.IndexPolicy = IndexHashTable
	return c
}

// EnhancedConfig returns the fully patched client (Figures 6 and 7,
// Table 1 "No lock"): all three fixes, plus the enhanced readahead
// sizing on the read side.
func EnhancedConfig() Config {
	c := HashConfig()
	c.LockPolicy = rpcsim.ReleaseBKLForSend
	c.ReadaheadMinPages = EnhancedReadaheadMinPages
	c.ReadaheadMaxPages = EnhancedReadaheadMaxPages
	return c
}
