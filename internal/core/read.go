package core

import (
	"fmt"

	"repro/internal/mm"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/xdr"
)

// The client read path: generic_file_read asks nfs_readpage for each
// page; a resident page is a cache hit served from memory, a miss issues
// an async READ RPC for the rsize chunk containing the page plus the
// inode's current readahead window, then sleeps until the demand page's
// reply lands. The readahead window (mm.Readahead) grows on sequential
// access and collapses on seeks, so sequential readers stream rsize READs
// ahead of the application — the read-side dual of the paper's
// write-behind — while random readers pay one demand fetch per miss.

// ensureReadState lazily allocates an inode's read-side structures, so
// write-only workloads (every pre-read-path scenario) carry only the
// resident-page set the write path itself populates.
func (c *Client) ensureReadState(ino *Inode) {
	if ino.readWait != nil {
		return
	}
	ino.pendingReads = make(map[int64]bool)
	ino.readWait = c.s.NewWaitQueue("nfs-inode-read")
	ino.ra = mm.Readahead{Min: c.cfg.ReadaheadMinPages, Max: c.cfg.ReadaheadMaxPages}
}

// markResident records that a page is in the client's page cache —
// called by the write path for each page it dirties, so reading back
// just-written data hits memory instead of refetching from the server
// (read-after-write coherence).
func (ino *Inode) markResident(page int64) {
	ino.cached.Add(page, page+1)
}

// resident reports whether a page is in the client's page cache.
func (ino *Inode) resident(page int64) bool {
	return ino.cached.Contains(page, page+1)
}

// CachedPages returns how many resident pages the inode holds — pages
// filled by READ replies or dirtied by writes (for tests).
func (ino *Inode) CachedPages() int { return int(ino.cached.Total()) }

// ResidentSpans returns how many disjoint page runs the resident set
// holds (for tests: sequential access must coalesce into one span, random
// access fragments until coverage completes).
func (ino *Inode) ResidentSpans() int { return ino.cached.Spans() }

// ReadaheadWindow returns the inode's current readahead window in pages
// (for tests and experiments).
func (ino *Inode) ReadaheadWindow() int { return ino.ra.Window() }

// readPage is nfs_readpage: make one page resident. The lookup and
// readahead bookkeeping run under the BKL like the write path's request
// lookups; the RPC wait does not (sleeping paths drop the lock).
func (c *Client) readPage(p *sim.Proc, ino *Inode, page int64) {
	c.ensureReadState(ino)
	c.bkl.Lock(p, "nfs_readpage")
	c.cpu.Use(p, "nfs_readpage", c.cfg.Costs.ReadPageBase)
	hit := ino.resident(page)
	c.cache.NoteRead(hit)
	if hit && ino.staleOpen {
		// Served from cache during an open that skipped revalidation
		// while the server already held newer data: a strict client
		// would have refetched this page.
		c.StaleReads++
	}
	ahead := ino.ra.Access(page)
	c.bkl.Unlock(p)
	if hit {
		return
	}
	// Demand chunk plus the readahead window, all as async READs; the
	// reader only waits for the page it needs, so the window's fetches
	// overlap with consumption of earlier pages.
	c.sendReads(p, ino, page, c.cfg.RSize/pageSize+ahead)
	for !ino.resident(page) {
		ino.readWait.Wait(p)
	}
}

// sendReads issues async READ RPCs covering pages [start, start+pages),
// clamped to the file's last page, in runs of at most rsize, skipping
// pages already resident or already being fetched. Each Call may block on
// the transport's slot table — RPC slots are the readahead's natural
// throttle, as in the 2.4 client.
func (c *Client) sendReads(p *sim.Proc, ino *Inode, start int64, pages int) {
	pagesPerRPC := c.cfg.RSize / pageSize
	end := start + int64(pages)
	if last := (ino.size + pageSize - 1) / pageSize; end > last {
		end = last
	}
	for pg := start; pg < end; {
		if ino.resident(pg) || ino.pendingReads[pg] {
			pg++
			continue
		}
		run := 1
		for pg+int64(run) < end && run < pagesPerRPC {
			next := pg + int64(run)
			if ino.resident(next) || ino.pendingReads[next] {
				break
			}
			run++
		}
		c.sendReadRPC(p, ino, pg, run)
		pg += int64(run)
	}
}

// sendReadRPC issues one READ for pages [page, page+pages).
func (c *Client) sendReadRPC(p *sim.Proc, ino *Inode, page int64, pages int) {
	off := page * pageSize
	count := int64(pages) * pageSize
	if off+count > ino.size {
		count = ino.size - off
	}
	for i := 0; i < pages; i++ {
		ino.pendingReads[page+int64(i)] = true
	}
	args := nfsproto.ReadArgs{File: ino.FH, Offset: uint64(off), Count: uint32(count)}
	c.ReadRPCs++
	c.PagesReadRPC += int64(pages)
	c.tr.Call(p, nfsproto.ProcRead, args.Encode, func(d *xdr.Decoder) {
		c.readDone(ino, page, pages, int(count), d)
	})
}

// readDone runs in softirq context when a READ reply arrives: mark the
// covered pages resident and wake readers.
func (c *Client) readDone(ino *Inode, page int64, pages, bytes int, d *xdr.Decoder) {
	res, err := nfsproto.DecodeReadRes(d)
	if err != nil {
		panic(fmt.Sprintf("core: bad READ reply: %v", err))
	}
	if res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: READ failed: %v", res.Status))
	}
	if int(res.Count) != bytes {
		panic(fmt.Sprintf("core: short READ: %d of %d", res.Count, bytes))
	}
	for i := 0; i < pages; i++ {
		delete(ino.pendingReads, page+int64(i))
	}
	ino.cached.Add(page, page+int64(pages))
	ino.readWait.Broadcast()
}
