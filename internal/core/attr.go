package core

import (
	"fmt"

	"repro/internal/nfsproto"
	"repro/internal/rangeset"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// attrEntry is one cached LOOKUP/GETATTR result, keyed by name in the
// mount's root directory. timeout is the adaptive attribute-cache window
// clamped to [AcRegMin, AcRegMax]: it starts at the minimum and doubles
// each time revalidation finds the file unchanged, the way the Linux
// client ages its attribute timeouts.
type attrEntry struct {
	fh      nfsproto.FileHandle
	attrs   nfsproto.FileAttrs
	fetched sim.Time
	timeout sim.Time
}

// acEnabled reports whether the attribute cache is on.
func (c *Client) acEnabled() bool { return c.cfg.AcRegMin != AcOff }

// fresh reports whether the entry may still be trusted without an RPC.
func (e *attrEntry) fresh(now sim.Time) bool { return now-e.fetched < e.timeout }

// refresh folds a server attribute reply into the entry, aging the
// timeout: an unchanged file doubles the window toward acregmax, a
// change resets it to acregmin. "Unchanged" is judged by the change
// attribute, not mtime: two writes landing in the same virtual tick
// leave mtime identical, and keying on mtime would widen the trust
// window right after a write — the opposite of what the adaptive
// timeout is for.
func (e *attrEntry) refresh(c *Client, attrs nfsproto.FileAttrs) {
	if attrs.Change == e.attrs.Change {
		e.timeout *= 2
		if e.timeout > c.cfg.AcRegMax {
			e.timeout = c.cfg.AcRegMax
		}
	} else {
		e.timeout = c.cfg.AcRegMin
	}
	e.attrs = attrs
	e.fetched = c.s.Now()
}

func (c *Client) newAttrEntry(fh nfsproto.FileHandle, attrs nfsproto.FileAttrs) *attrEntry {
	return &attrEntry{fh: fh, attrs: attrs, fetched: c.s.Now(), timeout: c.cfg.AcRegMin}
}

// cacheAttr stores a server result in the attribute cache (no-op when
// the cache is off).
func (c *Client) cacheAttr(name string, fh nfsproto.FileHandle, attrs nfsproto.FileAttrs) {
	if !c.acEnabled() {
		return
	}
	if c.attrCache == nil {
		c.attrCache = make(map[string]*attrEntry)
	}
	c.attrCache[name] = c.newAttrEntry(fh, attrs)
}

// invalidateAttr drops a name from the attribute cache — the local
// write/remove invalidation: cached attributes no longer describe what
// this client just changed.
func (c *Client) invalidateAttr(name string) {
	delete(c.attrCache, name)
}

// AttrCacheLen returns the number of cached attribute entries (test
// accessor).
func (c *Client) AttrCacheLen() int { return len(c.attrCache) }

// lookupRPC issues a LOOKUP for name in the mount's root directory.
func (c *Client) lookupRPC(p *sim.Proc, name string) *nfsproto.LookupRes {
	c.LookupRPCs++
	args := nfsproto.LookupArgs{Dir: c.rootFH, Name: name}
	d := c.tr.CallSync(p, nfsproto.ProcLookup, args.Encode)
	res, err := nfsproto.DecodeLookupRes(d)
	if err != nil {
		panic(fmt.Sprintf("core: bad LOOKUP reply: %v", err))
	}
	return res
}

// getattrRPC issues a GETATTR for a handle.
func (c *Client) getattrRPC(p *sim.Proc, fh nfsproto.FileHandle) nfsproto.FileAttrs {
	c.GetattrRPCs++
	args := nfsproto.GetattrArgs{File: fh}
	d := c.tr.CallSync(p, nfsproto.ProcGetattr, args.Encode)
	res, err := nfsproto.DecodeGetattrRes(d)
	if err != nil || res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: GETATTR failed: %v %v", res, err))
	}
	return res.Attrs
}

// createRPC issues a CREATE for name in the mount's root directory.
func (c *Client) createRPC(p *sim.Proc, name string) (nfsproto.FileHandle, nfsproto.FileAttrs) {
	c.CreateRPCs++
	args := nfsproto.CreateArgs{Dir: c.rootFH, Name: name}
	d := c.tr.CallSync(p, nfsproto.ProcCreate, args.Encode)
	res, err := nfsproto.DecodeCreateRes(d)
	if err != nil || res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: CREATE failed: %v %v", res, err))
	}
	return res.File, res.Attrs
}

// resolve maps a name to (handle, attributes) through the attribute
// cache: a fresh entry answers without an RPC; anything else costs a
// LOOKUP. Under ConsistencyNoac a cached entry never ages out — the
// whole point of that mode is to never go back to the server for a
// name it already knows. Under ConsistencyStrict the name->handle
// mapping is likewise trusted regardless of age (the dentry cache);
// freshness is the open-time GETATTR's job, which strict mode issues
// unconditionally, so re-fetching the LOOKUP here would be a second
// round trip for the same answer. Returns ok=false when the name does
// not exist, and fetched=true when a LOOKUP actually went to the
// server (its reply carries current attributes, so it doubles as an
// open-time revalidation).
func (c *Client) resolve(p *sim.Proc, name string) (e *attrEntry, ok, fetched bool) {
	c.cpu.Use(p, "nfs_lookup", c.cfg.Costs.MetaOpBase)
	if c.acEnabled() {
		if e, ok := c.attrCache[name]; ok &&
			(e.fresh(c.s.Now()) || c.cfg.Consistency != ConsistencyTTL) {
			c.AttrCacheHits++
			return e, true, false
		}
	}
	c.AttrCacheMisses++
	res := c.lookupRPC(p, name)
	if res.Status == nfsproto.NFS3ErrNoEnt {
		c.invalidateAttr(name)
		return nil, false, true
	}
	if res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: LOOKUP failed: %v", res.Status))
	}
	e = c.newAttrEntry(res.File, res.Attrs)
	if c.acEnabled() {
		if c.attrCache == nil {
			c.attrCache = make(map[string]*attrEntry)
		}
		c.attrCache[name] = e
	}
	return e, true, true
}

// revalidate performs the open-time GETATTR check (close-to-open
// consistency): a stale entry is re-fetched from the server; a fresh one
// is trusted, which is exactly the RPC the attribute cache exists to
// save.
func (c *Client) revalidate(p *sim.Proc, name string, e *attrEntry) {
	if c.acEnabled() && e.fresh(c.s.Now()) {
		return
	}
	attrs := c.getattrRPC(p, e.fh)
	e.refresh(c, attrs)
}

// revalidateOpen is the open-time revalidation under the configured
// consistency mode. It reports whether the server was actually asked —
// the bit close-to-open consistency hinges on: an open that skipped the
// GETATTR is trusting cached state. A revalidation that reveals a
// foreign write (newer change attribute) invalidates the inode's cached
// pages via noteChange.
func (c *Client) revalidateOpen(p *sim.Proc, e *attrEntry, ino *Inode) bool {
	switch c.cfg.Consistency {
	case ConsistencyNoac:
		// Never ask: cached pages and attributes are trusted until this
		// client itself writes. Unbounded staleness by construction.
		return false
	case ConsistencyStrict:
		// Always ask, even when the attribute entry is fresh.
	default: // ConsistencyTTL
		if c.acEnabled() && e.fresh(c.s.Now()) {
			return false
		}
	}
	attrs := c.getattrRPC(p, e.fh)
	e.refresh(c, attrs)
	c.noteChange(ino, attrs)
	return true
}

// OpenByName opens name in the mount's root directory, creating it on
// the server if it does not exist (CREATE), and revalidating cached
// attributes on open if it does (GETATTR, subject to the consistency
// mode). The inode behind the name persists across open/close like a
// kernel inode-cache entry, so reopening a file finds its pages still
// resident — and possibly stale, which is what the staleOpen marker
// tracks against the ground-truth probe.
func (c *Client) OpenByName(p *sim.Proc, name string) vfs.File {
	e, ok, fetched := c.resolve(p, name)
	if !ok {
		fh, attrs := c.createRPC(p, name)
		c.cacheAttr(name, fh, attrs)
		e = c.newAttrEntry(fh, attrs)
		fetched = true
	}
	ino := c.namedInode(name, e.fh)
	if !ino.hasChange {
		// A freshly-minted inode takes its change baseline from the
		// attribute entry, even a cached one: changeSeen is what this
		// client believes, and the staleness accounting (and WCC pre-op
		// comparison) need that belief pinned from the first open.
		ino.changeSeen, ino.hasChange = e.attrs.Change, true
	}
	revalidated := false
	if fetched {
		// CREATE and LOOKUP replies carry current attributes; folding
		// them in is the revalidation, no extra GETATTR needed.
		c.noteChange(ino, e.attrs)
		revalidated = true
	}
	if !fetched || !c.acEnabled() {
		// With the attribute cache off every open still issues its own
		// GETATTR, like the kernel's noac mount: dentry revalidation
		// (LOOKUP) and inode revalidation (GETATTR) are separate steps.
		if c.revalidateOpen(p, e, ino) {
			revalidated = true
		}
	}
	if s := int64(e.attrs.Size); s > ino.size {
		ino.size = s
	}
	// staleOpen: this open trusts cached pages (no server round trip)
	// while the omniscient probe says the file already moved on. Every
	// cache hit served under the flag is a read a revalidating client
	// would have refetched.
	ino.staleOpen = false
	if !revalidated && ino.hasChange && c.changeProbe != nil {
		if truth, ok := c.changeProbe(ino.FH); ok && truth > ino.changeSeen {
			ino.staleOpen = true
		}
	}
	return &File{c: c, ino: ino, name: name}
}

// Stat returns name's size and existence — the stat() path: attribute
// cache first, then LOOKUP (and a GETATTR revalidation when the cached
// entry aged out).
func (c *Client) Stat(p *sim.Proc, name string) (int64, bool) {
	e, ok, _ := c.resolve(p, name)
	if !ok {
		return 0, false
	}
	c.revalidate(p, name, e)
	return int64(e.attrs.Size), true
}

// Remove unlinks name at the server and invalidates its cached
// attributes and cached inode, reporting whether it existed.
func (c *Client) Remove(p *sim.Proc, name string) bool {
	c.cpu.Use(p, "nfs_remove", c.cfg.Costs.MetaOpBase)
	c.invalidateAttr(name)
	if ino, ok := c.namedInodes[name]; ok {
		// The name is dead; a re-create mints a new handle. An inode
		// still open elsewhere is released by its last close (the map no
		// longer points at it); an idle one is already off the scan
		// table and just dropped.
		delete(c.namedInodes, name)
		if ino.refs == 0 {
			ino.cached = rangeset.Set{}
			ino.hash = nil
		}
	}
	c.RemoveRPCs++
	args := nfsproto.RemoveArgs{Dir: c.rootFH, Name: name}
	d := c.tr.CallSync(p, nfsproto.ProcRemove, args.Encode)
	res, err := nfsproto.DecodeRemoveRes(d)
	if err != nil {
		panic(fmt.Sprintf("core: bad REMOVE reply: %v", err))
	}
	return res.Status == nfsproto.NFS3OK
}

var _ vfs.Namespace = (*Client)(nil)
