package core

import (
	"fmt"

	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// attrEntry is one cached LOOKUP/GETATTR result, keyed by name in the
// mount's root directory. timeout is the adaptive attribute-cache window
// clamped to [AcRegMin, AcRegMax]: it starts at the minimum and doubles
// each time revalidation finds the file unchanged, the way the Linux
// client ages its attribute timeouts.
type attrEntry struct {
	fh      nfsproto.FileHandle
	attrs   nfsproto.FileAttrs
	fetched sim.Time
	timeout sim.Time
}

// acEnabled reports whether the attribute cache is on.
func (c *Client) acEnabled() bool { return c.cfg.AcRegMin != AcOff }

// fresh reports whether the entry may still be trusted without an RPC.
func (e *attrEntry) fresh(now sim.Time) bool { return now-e.fetched < e.timeout }

// refresh folds a server attribute reply into the entry, aging the
// timeout: unchanged mtime doubles the window toward acregmax, a change
// resets it to acregmin.
func (e *attrEntry) refresh(c *Client, attrs nfsproto.FileAttrs) {
	if attrs.MTime == e.attrs.MTime {
		e.timeout *= 2
		if e.timeout > c.cfg.AcRegMax {
			e.timeout = c.cfg.AcRegMax
		}
	} else {
		e.timeout = c.cfg.AcRegMin
	}
	e.attrs = attrs
	e.fetched = c.s.Now()
}

func (c *Client) newAttrEntry(fh nfsproto.FileHandle, attrs nfsproto.FileAttrs) *attrEntry {
	return &attrEntry{fh: fh, attrs: attrs, fetched: c.s.Now(), timeout: c.cfg.AcRegMin}
}

// cacheAttr stores a server result in the attribute cache (no-op when
// the cache is off).
func (c *Client) cacheAttr(name string, fh nfsproto.FileHandle, attrs nfsproto.FileAttrs) {
	if !c.acEnabled() {
		return
	}
	if c.attrCache == nil {
		c.attrCache = make(map[string]*attrEntry)
	}
	c.attrCache[name] = c.newAttrEntry(fh, attrs)
}

// invalidateAttr drops a name from the attribute cache — the local
// write/remove invalidation: cached attributes no longer describe what
// this client just changed.
func (c *Client) invalidateAttr(name string) {
	delete(c.attrCache, name)
}

// AttrCacheLen returns the number of cached attribute entries (test
// accessor).
func (c *Client) AttrCacheLen() int { return len(c.attrCache) }

// lookupRPC issues a LOOKUP for name in the mount's root directory.
func (c *Client) lookupRPC(p *sim.Proc, name string) *nfsproto.LookupRes {
	c.LookupRPCs++
	args := nfsproto.LookupArgs{Dir: c.rootFH, Name: name}
	d := c.tr.CallSync(p, nfsproto.ProcLookup, args.Encode)
	res, err := nfsproto.DecodeLookupRes(d)
	if err != nil {
		panic(fmt.Sprintf("core: bad LOOKUP reply: %v", err))
	}
	return res
}

// getattrRPC issues a GETATTR for a handle.
func (c *Client) getattrRPC(p *sim.Proc, fh nfsproto.FileHandle) nfsproto.FileAttrs {
	c.GetattrRPCs++
	args := nfsproto.GetattrArgs{File: fh}
	d := c.tr.CallSync(p, nfsproto.ProcGetattr, args.Encode)
	res, err := nfsproto.DecodeGetattrRes(d)
	if err != nil || res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: GETATTR failed: %v %v", res, err))
	}
	return res.Attrs
}

// createRPC issues a CREATE for name in the mount's root directory.
func (c *Client) createRPC(p *sim.Proc, name string) (nfsproto.FileHandle, nfsproto.FileAttrs) {
	c.CreateRPCs++
	args := nfsproto.CreateArgs{Dir: c.rootFH, Name: name}
	d := c.tr.CallSync(p, nfsproto.ProcCreate, args.Encode)
	res, err := nfsproto.DecodeCreateRes(d)
	if err != nil || res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: CREATE failed: %v %v", res, err))
	}
	return res.File, res.Attrs
}

// resolve maps a name to (handle, attributes) through the attribute
// cache: a fresh entry answers without an RPC; anything else costs a
// LOOKUP. Returns ok=false when the name does not exist.
func (c *Client) resolve(p *sim.Proc, name string) (*attrEntry, bool) {
	c.cpu.Use(p, "nfs_lookup", c.cfg.Costs.MetaOpBase)
	if c.acEnabled() {
		if e, ok := c.attrCache[name]; ok && e.fresh(c.s.Now()) {
			c.AttrCacheHits++
			return e, true
		}
	}
	c.AttrCacheMisses++
	res := c.lookupRPC(p, name)
	if res.Status == nfsproto.NFS3ErrNoEnt {
		c.invalidateAttr(name)
		return nil, false
	}
	if res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: LOOKUP failed: %v", res.Status))
	}
	e := c.newAttrEntry(res.File, res.Attrs)
	if c.acEnabled() {
		if c.attrCache == nil {
			c.attrCache = make(map[string]*attrEntry)
		}
		c.attrCache[name] = e
	}
	return e, true
}

// revalidate performs the open-time GETATTR check (close-to-open
// consistency): a stale entry is re-fetched from the server; a fresh one
// is trusted, which is exactly the RPC the attribute cache exists to
// save.
func (c *Client) revalidate(p *sim.Proc, name string, e *attrEntry) {
	if c.acEnabled() && e.fresh(c.s.Now()) {
		return
	}
	attrs := c.getattrRPC(p, e.fh)
	e.refresh(c, attrs)
}

// OpenByName opens name in the mount's root directory, creating it on
// the server if it does not exist (CREATE), and revalidating cached
// attributes on open if it does (GETATTR, unless the attribute cache
// answers). The returned file reads and writes through the same inode
// machinery as Open.
func (c *Client) OpenByName(p *sim.Proc, name string) vfs.File {
	e, ok := c.resolve(p, name)
	if !ok {
		fh, attrs := c.createRPC(p, name)
		c.cacheAttr(name, fh, attrs)
		e = c.newAttrEntry(fh, attrs)
	} else {
		c.revalidate(p, name, e)
	}
	ino := &Inode{
		c:         c,
		FH:        e.fh,
		size:      int64(e.attrs.Size),
		flushWait: c.s.NewWaitQueue("nfs-inode-flush"),
	}
	if c.cfg.IndexPolicy == IndexHashTable {
		ino.hash = make(map[int64]*Request)
	}
	c.inodes = append(c.inodes, ino)
	return &File{c: c, ino: ino, name: name}
}

// Stat returns name's size and existence — the stat() path: attribute
// cache first, then LOOKUP (and a GETATTR revalidation when the cached
// entry aged out).
func (c *Client) Stat(p *sim.Proc, name string) (int64, bool) {
	e, ok := c.resolve(p, name)
	if !ok {
		return 0, false
	}
	c.revalidate(p, name, e)
	return int64(e.attrs.Size), true
}

// Remove unlinks name at the server and invalidates its cached
// attributes, reporting whether it existed.
func (c *Client) Remove(p *sim.Proc, name string) bool {
	c.cpu.Use(p, "nfs_remove", c.cfg.Costs.MetaOpBase)
	c.invalidateAttr(name)
	c.RemoveRPCs++
	args := nfsproto.RemoveArgs{Dir: c.rootFH, Name: name}
	d := c.tr.CallSync(p, nfsproto.ProcRemove, args.Encode)
	res, err := nfsproto.DecodeRemoveRes(d)
	if err != nil {
		panic(fmt.Sprintf("core: bad REMOVE reply: %v", err))
	}
	return res.Status == nfsproto.NFS3OK
}

var _ vfs.Namespace = (*Client)(nil)
