package core_test

import (
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/sim"
)

// Regression for the flushd scan-set leak: Close must release the inode
// from the client's table, so the write-behind daemon's
// pickFlushable/queuedAnywhere scans only open files instead of every
// file ever opened, and closed files stop pinning their resident-page
// sets.
func TestCloseReleasesInode(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	const files = 32
	tb.Sim.Go("w", func(p *sim.Proc) {
		open := make([]*core.File, 0, files)
		for i := 0; i < files; i++ {
			f := tb.OpenNFS()
			f.Write(p, 64<<10)
			open = append(open, f)
		}
		if got := tb.Client.OpenInodes(); got != files {
			t.Errorf("open inodes = %d, want %d", got, files)
		}
		// Closing shrinks the scan set file by file.
		for i, f := range open {
			f.Close(p)
			if got, want := tb.Client.OpenInodes(), files-i-1; got != want {
				t.Errorf("after close %d: open inodes = %d, want %d", i, got, want)
			}
			if f.Inode().CachedPages() != 0 {
				t.Errorf("closed file %d still pins %d resident pages", i, f.Inode().CachedPages())
			}
		}
		if got := tb.Client.OpenInodes(); got != 0 {
			t.Errorf("all files closed but %d inodes remain", got)
		}
		// Double close stays a no-op after the release.
		open[0].Close(p)
		if got := tb.Client.OpenInodes(); got != 0 {
			t.Errorf("double close resurrected an inode: %d", got)
		}
	})
	tb.Sim.Run(5 * time.Minute)
	if tb.Client.MountRequests() != 0 {
		t.Fatalf("%d requests outstanding after all closes", tb.Client.MountRequests())
	}
}

// A many-file sequence — the mixed/many-file pattern whose memory the
// leak made unbounded — must end with an empty inode table even when
// files are read as well as written.
func TestCloseReleasesReadState(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	tb.Sim.Go("rw", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			f := tb.Client.OpenExisting(256 << 10)
			for f.Read(p, 8192) > 0 {
			}
			f.Close(p)
		}
		if got := tb.Client.OpenInodes(); got != 0 {
			t.Errorf("open inodes after read/close loop = %d", got)
		}
	})
	tb.Sim.Run(5 * time.Minute)
}

// Closing a file right after a read must tolerate trailing readahead
// RPCs: the reader only ever waits for its demand pages, so window
// fetches can still be in flight at close, and their completions must
// land harmlessly on the released inode.
func TestCloseWithReadaheadInFlight(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	done := false
	tb.Sim.Go("r", func(p *sim.Proc) {
		f := tb.Client.OpenExisting(4 << 20)
		// One chunk is enough to launch the window; close immediately.
		f.Read(p, 8192)
		f.Close(p)
		if got := tb.Client.OpenInodes(); got != 0 {
			t.Errorf("open inodes after close = %d", got)
		}
		done = true
	})
	// Drain the whole event queue, including the straggler READ replies.
	tb.Sim.Run(5 * time.Minute)
	if !done {
		t.Fatal("run did not finish")
	}
}

// The resident-page set is a rangeset, not a per-page map: sequential
// coverage must collapse to a single span, and random coverage must
// fragment and then coalesce as the holes fill — with byte-identical
// hit/miss behavior either way.
func TestResidentSetCoalesces(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	f := tb.OpenNFS()
	tb.Sim.Go("w", func(p *sim.Proc) {
		// Sequential writes: one growing span.
		f.Write(p, 64<<10)
		if spans := f.Inode().ResidentSpans(); spans != 1 {
			t.Errorf("sequential write left %d resident spans, want 1", spans)
		}
		if got := f.Inode().CachedPages(); got != 16 {
			t.Errorf("cached pages = %d, want 16", got)
		}
		// Random-order page writes into the second half: fragmented while
		// holes remain, one span once coverage completes.
		base := int64(64 << 10)
		for _, pg := range []int64{7, 1, 5, 3} {
			f.WriteAt(p, base+pg*8192, 8192)
		}
		if spans := f.Inode().ResidentSpans(); spans != 5 { // head run + 4 islands
			t.Errorf("fragmented resident set has %d spans, want 5", spans)
		}
		for _, pg := range []int64{0, 2, 4, 6} {
			f.WriteAt(p, base+pg*8192, 8192)
		}
		if spans := f.Inode().ResidentSpans(); spans != 1 {
			t.Errorf("complete coverage left %d spans, want 1", spans)
		}
		if got := f.Inode().CachedPages(); got != 32 {
			t.Errorf("cached pages = %d, want 32", got)
		}
		// Reading back everything hits memory: no RPCs, no misses.
		if got := f.ReadAt(p, 0, 128<<10); got != 128<<10 {
			t.Errorf("read back %d bytes", got)
		}
		if tb.Client.ReadRPCs != 0 || tb.Cache.ReadMisses != 0 {
			t.Errorf("read-after-write fetched: %d RPCs, %d misses",
				tb.Client.ReadRPCs, tb.Cache.ReadMisses)
		}
	})
	tb.Sim.Run(5 * time.Minute)
}

// Random chunk writes on the stock client must reach MAX_REQUEST_SOFT
// like sequential ones (request counts are what the limits bound, not
// adjacency), and with a wsize above the chunk size the non-adjacent
// backlog must defeat coalescing: more, smaller WRITE RPCs than the
// sequential run needs for the same bytes.
func TestRandWriteFragmentationOnStockClient(t *testing.T) {
	run := func(wl bonnie.Workload) (*nfssim.Testbed, *bonnie.Result) {
		cfg := core.Stock244Config()
		cfg.WSize = 32768 // 8 pages: sequential runs coalesce, random cannot
		tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler, Client: cfg, Seed: 3})
		res := bonnie.RunWorkload(tb.Sim, "t", tb.OpenSet(), bonnie.Config{
			FileSize: 4 << 20, Workload: wl, TimeLimit: 10 * time.Minute,
		})
		return tb, res
	}
	seqTB, _ := run(bonnie.WorkloadWrite)
	randTB, _ := run(bonnie.WorkloadRandWrite)
	if randTB.Client.SoftFlushes == 0 {
		t.Fatal("random writes never hit the soft limit on the stock client")
	}
	if seqRPCs, randRPCs := seqTB.Client.RPCsSent, randTB.Client.RPCsSent; randRPCs <= seqRPCs {
		t.Fatalf("random writes sent %d RPCs vs %d sequential; fragmentation should defeat coalescing",
			randRPCs, seqRPCs)
	}
	if seq, rand := seqTB.Client.PagesSent, randTB.Client.PagesSent; seq != rand {
		t.Fatalf("page counts differ: %d sequential vs %d random", seq, rand)
	}
}
