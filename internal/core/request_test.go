package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func req(page int64) *Request {
	return &Request{Page: page, Offset: 0, Count: pageSize}
}

func TestReqListSortedInsert(t *testing.T) {
	var l reqList
	for _, pg := range []int64{5, 1, 3, 2, 4} {
		l.Insert(req(pg))
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
	for i := 0; i < 5; i++ {
		if l.At(i).Page != int64(i+1) {
			t.Fatalf("list not sorted: pos %d has page %d", i, l.At(i).Page)
		}
	}
}

func TestReqListFind(t *testing.T) {
	var l reqList
	for pg := int64(0); pg < 10; pg++ {
		l.Insert(req(pg * 2)) // pages 0,2,4,...18
	}
	r, scanned := l.Find(6)
	if r == nil || r.Page != 6 {
		t.Fatalf("Find(6) = %v", r)
	}
	if scanned != 4 { // walks entries 0,2,4 then hits 6
		t.Fatalf("scanned = %d, want 4", scanned)
	}
	r, scanned = l.Find(7)
	if r != nil {
		t.Fatal("Find(7) found a request that does not exist")
	}
	if scanned != 4 {
		t.Fatalf("miss scanned = %d", scanned)
	}
	// Sequential-append pathology: a miss past the end scans everything.
	_, scanned = l.Find(100)
	if scanned != l.Len() {
		t.Fatalf("past-end miss scanned %d of %d", scanned, l.Len())
	}
}

func TestReqListInsertScanCost(t *testing.T) {
	var l reqList
	for pg := int64(0); pg < 100; pg++ {
		scanned := l.Insert(req(pg))
		if scanned != int(pg) {
			t.Fatalf("append scan = %d, want %d (full traversal)", scanned, pg)
		}
	}
}

func TestPopRunCoalescesContiguous(t *testing.T) {
	var l reqList
	for pg := int64(0); pg < 5; pg++ {
		l.Insert(req(pg))
	}
	run, _ := l.PopRun(8192) // wsize 8 KB = 2 pages
	if len(run) != 2 || run[0].Page != 0 || run[1].Page != 1 {
		t.Fatalf("run = %v", run)
	}
	if l.Len() != 3 {
		t.Fatalf("remaining = %d", l.Len())
	}
}

func TestPopRunStopsAtGap(t *testing.T) {
	var l reqList
	l.Insert(req(0))
	l.Insert(req(5)) // gap
	run, _ := l.PopRun(65536)
	if len(run) != 1 || run[0].Page != 0 {
		t.Fatalf("run crossed a gap: %v", run)
	}
}

func TestPopRunStopsAtPartialPage(t *testing.T) {
	var l reqList
	l.Insert(req(0))
	l.Insert(&Request{Page: 1, Offset: 100, Count: 200}) // not byte-contiguous
	run, _ := l.PopRun(65536)
	if len(run) != 1 {
		t.Fatalf("run crossed a byte gap: %v", run)
	}
}

func TestPopRunEmpty(t *testing.T) {
	var l reqList
	run, scanned := l.PopRun(8192)
	if run != nil || scanned != 0 {
		t.Fatalf("empty pop = %v/%d", run, scanned)
	}
}

func TestRequestSpanHelpers(t *testing.T) {
	r := &Request{Page: 2, Offset: 100, Count: 50}
	if r.Start() != 2*4096+100 || r.End() != 2*4096+150 {
		t.Fatalf("span = [%d,%d)", r.Start(), r.End())
	}
}

// Property: after inserting a random permutation of pages, the list is
// sorted and PopRun drains it completely in contiguous chunks.
func TestReqListProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		var l reqList
		for _, pg := range rand.New(rand.NewSource(seed)).Perm(n) {
			l.Insert(req(int64(pg)))
		}
		for i := 1; i < l.Len(); i++ {
			if l.At(i-1).Page >= l.At(i).Page {
				return false
			}
		}
		popped := 0
		for l.Len() > 0 {
			run, _ := l.PopRun(8192)
			if len(run) == 0 || len(run) > 2 {
				return false
			}
			popped += len(run)
		}
		return popped == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
