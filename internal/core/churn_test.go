package core_test

import (
	"fmt"
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/core"
	"repro/internal/sim"
)

// churn creates, writes, closes, and removes n distinct files in
// sequence and returns the high-water mark of the client's inode table
// during the run.
func churn(t *testing.T, tb *nfssim.Testbed, n int) int {
	t.Helper()
	maxInodes := 0
	tb.Sim.Go("churn", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("churn%06d", i)
			f := tb.Client.OpenByName(p, name)
			f.Write(p, 8192)
			if got := tb.Client.OpenInodes(); got > maxInodes {
				maxInodes = got
			}
			f.Close(p)
			if !tb.Client.Remove(p, name) {
				t.Errorf("file %d vanished before remove", i)
			}
		}
	})
	tb.Sim.Run(4 * time.Hour)
	return maxInodes
}

// Churn regression: creating and destroying thousands of files must not
// grow any per-client state with the total number of files ever created.
// The inode table — the set flushd's pickFlushable/queuedAnywhere scan
// on every wakeup — must stay bounded by the files open at one instant,
// and removing a file must drop its attribute-cache entry.
func TestChurnBoundedState(t *testing.T) {
	const files = 2000
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	maxInodes := churn(t, tb, files)
	if maxInodes > 1 {
		t.Errorf("inode table reached %d entries with 1 file open at a time", maxInodes)
	}
	if got := tb.Client.OpenInodes(); got != 0 {
		t.Errorf("%d inodes left after all files were closed and removed", got)
	}
	if got := tb.Client.AttrCacheLen(); got != 0 {
		t.Errorf("%d attribute-cache entries left after removing every file", got)
	}
	if got := tb.Client.MountRequests(); got != 0 {
		t.Errorf("%d write requests still tracked after churn", got)
	}
	if got := int(tb.Client.CreateRPCs); got != files {
		t.Errorf("CreateRPCs = %d, want %d", got, files)
	}
	if got := int(tb.Client.RemoveRPCs); got != files {
		t.Errorf("RemoveRPCs = %d, want %d", got, files)
	}
}

// The flushd wakeup cost is its scan over the inode table, so the
// table's high-water mark is the per-wakeup work. Quadrupling the total
// files ever created must leave that mark unchanged — the scan scales
// with concurrently open files, not with history. (Before the PR-4
// release fix, closed inodes stayed in the table and the mark equaled
// the total created.)
func TestChurnFlushdScanDoesNotScale(t *testing.T) {
	small := churn(t, newBed(t, nfssim.ServerFiler, core.EnhancedConfig()), 250)
	large := churn(t, newBed(t, nfssim.ServerFiler, core.EnhancedConfig()), 1000)
	if small != large {
		t.Fatalf("flushd scan-set high-water mark grew with total files: %d at 250 files vs %d at 1000", small, large)
	}
}

// Churn on the stock 2.4.4 config: the write-path limits and linear
// request list must not change the lifecycle invariants — state still
// drains to zero when every file is closed and removed.
func TestChurnStockConfig(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.Stock244Config())
	churn(t, tb, 300)
	if got := tb.Client.OpenInodes(); got != 0 {
		t.Errorf("%d inodes left after stock-config churn", got)
	}
	if got := tb.Client.MountRequests(); got != 0 {
		t.Errorf("%d requests left after stock-config churn", got)
	}
}
