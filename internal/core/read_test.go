package core_test

import (
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// A cold-file sequential read must fetch every page exactly once over
// READ RPCs, leave them cached, and serve a re-read entirely from memory.
func TestReadColdFileFetchesAndCaches(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	const size = 1 << 20
	f := tb.Client.OpenExisting(size)
	var total int
	tb.Sim.Go("reader", func(p *sim.Proc) {
		for {
			got := f.Read(p, 8192)
			if got == 0 {
				break
			}
			total += got
		}
		if rpcs := tb.Client.ReadRPCs; rpcs == 0 {
			t.Error("no READ RPCs issued for a cold file")
		}
		if f.Inode().CachedPages() != size/4096 {
			t.Errorf("cached pages = %d, want %d", f.Inode().CachedPages(), size/4096)
		}
		// Re-read from the front: all pages resident, no new RPCs.
		before := tb.Client.ReadRPCs
		missesBefore := tb.Cache.ReadMisses
		if got := f.ReadAt(p, 0, size); got != size {
			t.Errorf("re-read got %d", got)
		}
		if tb.Client.ReadRPCs != before {
			t.Errorf("re-read issued %d new RPCs", tb.Client.ReadRPCs-before)
		}
		if tb.Cache.ReadMisses != missesBefore {
			t.Errorf("re-read missed %d pages", tb.Cache.ReadMisses-missesBefore)
		}
	})
	tb.Sim.Run(10 * time.Minute)
	if total != size {
		t.Fatalf("read %d bytes, want %d", total, size)
	}
	if hits, misses := tb.Cache.ReadHits, tb.Cache.ReadMisses; hits+misses != 2*size/4096 {
		t.Fatalf("hit/miss accounting: %d + %d lookups, want %d", hits, misses, 2*size/4096)
	}
	if tb.Server.Reads == 0 || tb.Server.BytesRead != size {
		t.Fatalf("server saw %d READs / %d bytes, want %d bytes", tb.Server.Reads, tb.Server.BytesRead, size)
	}
}

// The readahead window must grow while the reader streams sequentially
// and collapse back to the minimum on a seek.
func TestReadaheadWindowGrowsAndResets(t *testing.T) {
	cfg := core.EnhancedConfig()
	tb := newBed(t, nfssim.ServerFiler, cfg)
	const size = 4 << 20
	f := tb.Client.OpenExisting(size)
	tb.Sim.Go("reader", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			f.Read(p, 8192)
		}
		if w := f.Inode().ReadaheadWindow(); w != cfg.ReadaheadMaxPages {
			t.Errorf("after 128 sequential pages window = %d, want the cap %d", w, cfg.ReadaheadMaxPages)
		}
		// Seek far away: the next access resets the window to the minimum.
		f.ReadAt(p, size-8192, 4096)
		if w := f.Inode().ReadaheadWindow(); w != cfg.ReadaheadMinPages {
			t.Errorf("after seek window = %d, want the minimum %d", w, cfg.ReadaheadMinPages)
		}
	})
	tb.Sim.Run(10 * time.Minute)
}

// Readahead off must be strictly slower than the enhanced window on a
// sequential scan: every rsize chunk waits out a full server round trip
// instead of arriving ahead of the reader.
func TestReadaheadAblationStrictlyOrdered(t *testing.T) {
	elapsed := func(cfg core.Config) sim.Time {
		tb := newBed(t, nfssim.ServerFiler, cfg)
		res := bonnie.RunWorkload(tb.Sim, "read", tb.OpenSet(), bonnie.Config{
			FileSize: 4 << 20, Workload: bonnie.WorkloadRead, TimeLimit: 10 * time.Minute,
		})
		return res.WriteElapsed
	}
	off := core.EnhancedConfig()
	off.ReadaheadMaxPages = core.ReadaheadOff
	on, noRA := elapsed(core.EnhancedConfig()), elapsed(off)
	if on >= noRA {
		t.Fatalf("readahead on (%v) not strictly faster than off (%v)", on, noRA)
	}
}

// Read-after-write coherence: reading back just-written data must hit
// the page cache instead of issuing READ RPCs for pages the server may
// not even hold yet.
func TestReadAfterWriteHitsCache(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	f := tb.OpenNFS()
	tb.Sim.Go("rw", func(p *sim.Proc) {
		f.Write(p, 64<<10)
		if got := f.ReadAt(p, 0, 64<<10); got != 64<<10 {
			t.Errorf("read back %d bytes", got)
		}
		if tb.Client.ReadRPCs != 0 {
			t.Errorf("read-after-write issued %d READ RPCs", tb.Client.ReadRPCs)
		}
		if tb.Cache.ReadMisses != 0 || tb.Cache.ReadHits != 16 {
			t.Errorf("hits/misses = %d/%d, want 16/0", tb.Cache.ReadHits, tb.Cache.ReadMisses)
		}
	})
	tb.Sim.Run(time.Minute)
}

// A half-specified readahead window must not silently disable
// readahead: setting only the minimum keeps a positive cap.
func TestHalfSpecifiedReadaheadStaysOn(t *testing.T) {
	cfg := core.EnhancedConfig()
	cfg.ReadaheadMinPages = 8
	cfg.ReadaheadMaxPages = 0
	tb := newBed(t, nfssim.ServerFiler, cfg)
	f := tb.Client.OpenExisting(1 << 20)
	tb.Sim.Go("reader", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			f.Read(p, 8192)
		}
		if w := f.Inode().ReadaheadWindow(); w < 8 {
			t.Errorf("window = %d after sequential reads; half-specified config disabled readahead", w)
		}
	})
	tb.Sim.Run(time.Minute)
}

// Read must observe EOF: a partial final chunk, then zero.
func TestReadEOF(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	f := tb.Client.OpenExisting(8192 + 100)
	tb.Sim.Go("reader", func(p *sim.Proc) {
		if got := f.Read(p, 8192); got != 8192 {
			t.Errorf("first read = %d", got)
		}
		if got := f.Read(p, 8192); got != 100 {
			t.Errorf("partial read = %d, want 100", got)
		}
		if got := f.Read(p, 8192); got != 0 {
			t.Errorf("read past EOF = %d, want 0", got)
		}
	})
	tb.Sim.Run(time.Minute)
}

// Concurrent readers and writers against one server: four workers on one
// machine each run the mixed workload (cold-file reads interleaved with
// fresh-file writes). Every written byte must arrive at the server
// exactly once and every read must complete — with -race this also
// exercises the locking of the shared client state under the harness's
// parallel runners.
func TestConcurrentReadersAndWritersOneServer(t *testing.T) {
	tb := newBed(t, nfssim.ServerLinux, core.EnhancedConfig())
	const workers, size = 4, 1 << 20
	var writeFiles []*core.File
	res := bonnie.RunConcurrentWorkload(tb.Sim, "mixed",
		func(i int) vfs.OpenSet {
			return vfs.OpenSet{
				Fresh: func() vfs.File {
					f := tb.OpenNFS()
					writeFiles = append(writeFiles, f)
					return f
				},
				Existing: func(sz int64) vfs.File { return tb.Client.OpenExisting(sz) },
			}
		},
		workers, bonnie.Config{FileSize: size, Workload: bonnie.WorkloadMixed, TimeLimit: 20 * time.Minute})
	if res.TotalBytes != workers*size {
		t.Fatalf("total bytes = %d", res.TotalBytes)
	}
	if len(writeFiles) != workers {
		t.Fatalf("opened %d fresh files", len(writeFiles))
	}
	for i, f := range writeFiles {
		cov := tb.Server.Coverage(f.Inode().FH)
		if !cov.IsContiguousFromZero(size / 2) {
			t.Fatalf("writer %d coverage %v, want [0,%d)", i, cov, size/2)
		}
	}
	if tb.Server.BytesRead != workers*size/2 {
		t.Fatalf("server read bytes = %d, want %d", tb.Server.BytesRead, workers*size/2)
	}
	if tb.Cache.ReadHits == 0 {
		t.Fatal("no read hits recorded")
	}
}
