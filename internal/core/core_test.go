package core_test

import (
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/rpcsim"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newBed(t *testing.T, srv nfssim.ServerKind, cfg core.Config) *nfssim.Testbed {
	t.Helper()
	return nfssim.NewTestbed(nfssim.Options{Server: srv, Client: cfg, Seed: 3})
}

func runMB(t *testing.T, tb *nfssim.Testbed, mb int) *bonnie.Result {
	t.Helper()
	return bonnie.Run(tb.Sim, "t", tb.Open, bonnie.Config{
		FileSize:  int64(mb) << 20,
		TimeLimit: 20 * time.Minute,
	})
}

func TestPolicyStrings(t *testing.T) {
	if core.FlushLimits24.String() != "2.4.4-limits" || core.FlushCacheAll.String() != "cache-all" {
		t.Fatal("FlushPolicy strings")
	}
	if core.IndexLinearList.String() != "list" || core.IndexHashTable.String() != "hash" {
		t.Fatal("IndexPolicy strings")
	}
}

func TestConfigPresetsDiffer(t *testing.T) {
	stock := core.Stock244Config()
	enh := core.EnhancedConfig()
	if stock.FlushPolicy != core.FlushLimits24 || stock.IndexPolicy != core.IndexLinearList ||
		stock.LockPolicy != rpcsim.HoldBKLAcrossSend {
		t.Fatalf("stock config wrong: %+v", stock)
	}
	if enh.FlushPolicy != core.FlushCacheAll || enh.IndexPolicy != core.IndexHashTable ||
		enh.LockPolicy != rpcsim.ReleaseBKLForSend {
		t.Fatalf("enhanced config wrong: %+v", enh)
	}
	if core.NoLimitsConfig().IndexPolicy != core.IndexLinearList {
		t.Fatal("NoLimitsConfig should keep the linear list")
	}
	if core.HashConfig().LockPolicy != rpcsim.HoldBKLAcrossSend {
		t.Fatal("HashConfig should keep the BKL")
	}
}

func TestBadWSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := core.Stock244Config()
	cfg.WSize = 1000 // not a page multiple
	newBed(t, nfssim.ServerFiler, cfg)
}

// Every byte the benchmark writes must arrive at the server exactly once,
// contiguous from zero — across all four client configurations.
func TestDataIntegrityAllConfigs(t *testing.T) {
	configs := map[string]core.Config{
		"stock":    core.Stock244Config(),
		"nolimits": core.NoLimitsConfig(),
		"hash":     core.HashConfig(),
		"enhanced": core.EnhancedConfig(),
	}
	const size = 4 << 20
	for name, cfg := range configs {
		tb := newBed(t, nfssim.ServerFiler, cfg)
		f := tb.OpenNFS()
		fh := f.Inode().FH
		done := false
		tb.Sim.Go("w", func(p *sim.Proc) {
			for i := 0; i < size/8192; i++ {
				f.Write(p, 8192)
			}
			f.Close(p)
			done = true
		})
		tb.Sim.Run(time.Minute)
		if !done {
			t.Fatalf("%s: run did not finish", name)
		}
		cov := tb.Server.Coverage(fh)
		if !cov.IsContiguousFromZero(size) {
			t.Fatalf("%s: server coverage %v, want [0,%d)", name, cov, size)
		}
		if tb.Client.MountRequests() != 0 {
			t.Fatalf("%s: %d requests outstanding after close", name, tb.Client.MountRequests())
		}
		if tb.Cache.Usage() != 0 && cfg.FlushPolicy == core.FlushCacheAll {
			t.Fatalf("%s: page cache not drained: %d", name, tb.Cache.Usage())
		}
	}
}

// §3.3: the stock client's write path forces a whole-inode flush every
// MAX_REQUEST_SOFT/2 writes, producing periodic latency spikes >10x the
// median, roughly every 85-100 calls.
func TestStockClientPeriodicSpikes(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.Stock244Config())
	res := runMB(t, tb, 20)
	cutoff := time.Millisecond
	spikes := res.Trace.CountAbove(cutoff)
	if spikes < 10 {
		t.Fatalf("only %d spikes > 1ms", spikes)
	}
	period := res.Trace.SpikePeriod(cutoff)
	if period < 80 || period > 105 {
		t.Fatalf("spike period = %.1f calls, want ~96 (soft limit 192 / 2 pages)", period)
	}
	if tb.Client.SoftFlushes == 0 {
		t.Fatal("no soft-limit flushes recorded")
	}
	// Spikes should be whole-queue drains: > 10 ms each at the filer's
	// ~42 MB/s ingest.
	sum := res.Trace.SummaryExcluding(cutoff)
	all := res.Trace.Summary()
	if all.Max < 10*time.Millisecond {
		t.Fatalf("max latency %v, want > 10ms spike", all.Max)
	}
	// Mean inflation: paper reports 3.45x; accept 2-6x.
	ratio := float64(all.Mean) / float64(sum.Mean)
	if ratio < 2 || ratio > 6 {
		t.Fatalf("spike mean-inflation ratio = %.2f, want 2-6", ratio)
	}
}

// §3.3 fix 1: removing the limits eliminates the spikes...
func TestNoLimitsRemovesSpikes(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.NoLimitsConfig())
	res := runMB(t, tb, 20)
	if n := res.Trace.CountAbove(5 * time.Millisecond); n != 0 {
		t.Fatalf("%d multi-ms spikes remain without limits", n)
	}
	if tb.Client.SoftFlushes != 0 {
		t.Fatal("soft flushes recorded with cache-all policy")
	}
}

// ...but §3.4: latency then grows with the backlog because of the O(n)
// list scans (Figure 3), and the hash table flattens it (Figure 4).
func TestLinearListGrowsHashStaysFlat(t *testing.T) {
	list := runMB(t, newBed(t, nfssim.ServerFiler, core.NoLimitsConfig()), 60)
	hash := runMB(t, newBed(t, nfssim.ServerFiler, core.HashConfig()), 60)

	if s := list.Trace.Slope(); s <= 5 {
		t.Fatalf("linear-list latency slope = %.1f ns/call, want clearly positive", s)
	}
	hs := hash.Trace.Slope()
	if hs > 5 || hs < -5 {
		t.Fatalf("hash latency slope = %.1f ns/call, want ~flat", hs)
	}
	lm := list.Trace.Summary().Mean
	hm := hash.Trace.Summary().Mean
	if lm < 3*hm {
		t.Fatalf("list mean %v should be >= 3x hash mean %v by 60 MB", lm, hm)
	}
	// Figure 4 vs Figure 1: >3x memory write throughput improvement.
	if hash.WriteMBps() < 3*29 {
		t.Fatalf("hash write throughput %.1f MB/s, want > ~87 (3x stock)", hash.WriteMBps())
	}
}

// §3.4: with the hash table, quarter-over-quarter latency stays flat.
func TestHashLatencyFlatAcrossRun(t *testing.T) {
	res := runMB(t, newBed(t, nfssim.ServerFiler, core.HashConfig()), 60)
	n := res.Trace.Len()
	firstQ := res.Trace.Samples()[:n/4]
	lastQ := res.Trace.Samples()[3*n/4:]
	var m1, m4 time.Duration
	for _, v := range firstQ {
		m1 += v
	}
	for _, v := range lastQ {
		m4 += v
	}
	m1 /= time.Duration(len(firstQ))
	m4 /= time.Duration(len(lastQ))
	if m4 > m1*11/10 {
		t.Fatalf("last-quarter mean %v >10%% above first-quarter %v", m4, m1)
	}
}

// §3.5 Table 1: removing the BKL around sock_sendmsg improves memory
// write throughput against both servers, more so against the faster
// filer, and mean latency drops while minimum latency barely moves.
func TestLockRemovalTable1Shape(t *testing.T) {
	run := func(srv nfssim.ServerKind, cfg core.Config) *bonnie.Result {
		return runMB(t, newBed(t, srv, cfg), 5)
	}
	filerLock := run(nfssim.ServerFiler, core.HashConfig())
	filerNo := run(nfssim.ServerFiler, core.EnhancedConfig())
	linuxLock := run(nfssim.ServerLinux, core.HashConfig())
	linuxNo := run(nfssim.ServerLinux, core.EnhancedConfig())

	if filerNo.WriteMBps() <= filerLock.WriteMBps() {
		t.Fatalf("filer: no-lock %.1f <= lock %.1f MB/s", filerNo.WriteMBps(), filerLock.WriteMBps())
	}
	if linuxNo.WriteMBps() <= linuxLock.WriteMBps() {
		t.Fatalf("linux: no-lock %.1f <= lock %.1f MB/s", linuxNo.WriteMBps(), linuxLock.WriteMBps())
	}
	// The faster server suffers more from the lock (Table 1: filer +22%,
	// Linux +6.5%).
	fGain := filerNo.WriteMBps() / filerLock.WriteMBps()
	lGain := linuxNo.WriteMBps() / linuxLock.WriteMBps()
	if fGain <= lGain {
		t.Fatalf("filer gain %.3f <= linux gain %.3f; faster server should gain more", fGain, lGain)
	}
	// With the lock held, the faster server yields *slower* memory writes.
	if filerLock.WriteMBps() >= linuxLock.WriteMBps() {
		t.Fatalf("with BKL, filer memory writes %.1f should be slower than linux %.1f",
			filerLock.WriteMBps(), linuxLock.WriteMBps())
	}
	// Minimum latency barely changes (±20%): "the latency variation is
	// not a code path issue".
	minLock := filerLock.Trace.Summary().Min
	minNo := filerNo.Trace.Summary().Min
	lo, hi := minNo*8/10, minNo*12/10
	if minLock < lo || minLock > hi {
		t.Fatalf("min latency moved: lock %v vs no-lock %v", minLock, minNo)
	}
	// Max latency (jitter) drops.
	if filerNo.Trace.Summary().Max >= filerLock.Trace.Summary().Max {
		t.Fatalf("no-lock max %v >= lock max %v", filerNo.Trace.Summary().Max, filerLock.Trace.Summary().Max)
	}
}

// §3.5: "The benchmark writes to memory even faster with this server" —
// a 100 Mb/s server leaves the writer less impeded than the gigabit
// filer, on the BKL client.
func TestSlowServerFasterMemoryWrites(t *testing.T) {
	slow := runMB(t, newBed(t, nfssim.ServerSlow100, core.HashConfig()), 5)
	filer := runMB(t, newBed(t, nfssim.ServerFiler, core.HashConfig()), 5)
	if slow.WriteMBps() <= filer.WriteMBps() {
		t.Fatalf("slow-server memory writes %.1f <= filer %.1f MB/s",
			slow.WriteMBps(), filer.WriteMBps())
	}
}

// §3.3: MAX_REQUEST_HARD blocks writers once the per-mount count exceeds
// 256 — reachable with two files, each below the soft limit.
func TestHardLimitBlocksAcrossFiles(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.Stock244Config())
	done := 0
	for i := 0; i < 2; i++ {
		f := tb.OpenNFS()
		tb.Sim.Go("w", func(p *sim.Proc) {
			// 180 pages each: under soft (192), joint 360 > hard (256).
			for j := 0; j < 90; j++ {
				f.Write(p, 8192)
			}
			f.Close(p)
			done++
		})
	}
	tb.Sim.Run(time.Minute)
	if done != 2 {
		t.Fatalf("writers finished: %d of 2 (deadlock?)", done)
	}
	if tb.Client.HardBlocks == 0 {
		t.Fatal("hard limit never engaged")
	}
	if tb.Client.SoftFlushes != 0 {
		t.Fatal("soft limit should not have fired (per-inode counts stayed low)")
	}
}

// Memory pressure, not request counts, throttles the enhanced client: a
// file larger than the page-cache budget must engage mm throttling.
func TestEnhancedClientThrottlesOnMemory(t *testing.T) {
	tb := nfssim.NewTestbed(nfssim.Options{
		Server:     nfssim.ServerFiler,
		Client:     core.EnhancedConfig(),
		CacheLimit: 16 << 20, // tiny budget so the test stays fast
	})
	res := runMB(t, tb, 64)
	if tb.Cache.ThrottleEvents == 0 {
		t.Fatal("writer never throttled despite 4x overcommit")
	}
	if tb.Cache.PeakUsage > 16<<20 {
		t.Fatalf("page cache exceeded its budget: %d", tb.Cache.PeakUsage)
	}
	// Once throttled, write throughput approaches the server rate, far
	// below memory speed.
	if res.WriteMBps() > 80 {
		t.Fatalf("throttled throughput %.1f MB/s, should be near server ingest", res.WriteMBps())
	}
}

// Close must COMMIT on the Linux server (UNSTABLE replies) and must not
// need to on the filer (FILE_SYNC replies) — §3.5's "they don't require
// an additional COMMIT RPC".
func TestCommitOnlyForUnstableServers(t *testing.T) {
	linux := newBed(t, nfssim.ServerLinux, core.EnhancedConfig())
	runMB(t, linux, 2)
	if linux.Server.Commits == 0 {
		t.Fatal("no COMMIT sent to the Linux server")
	}
	filer := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	runMB(t, filer, 2)
	if filer.Server.Commits != 0 {
		t.Fatalf("%d COMMITs sent to the filer", filer.Server.Commits)
	}
}

// Rewriting the same page must coalesce client-side into one request (the
// client "usually caches only a single write request per page").
func TestSamePageWritesCoalesce(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.HashConfig())
	f := tb.OpenNFS()
	tb.Sim.Go("w", func(p *sim.Proc) {
		// Two 2 KB writes into the same page.
		f.Write(p, 2048)
		f.Write(p, 2048)
	})
	tb.Sim.Run(time.Second)
	if got := tb.Client.MountRequests(); got != 1 {
		t.Fatalf("mount requests = %d, want 1 (same-page coalescing)", got)
	}
	if f.Size() != 4096 {
		t.Fatalf("size = %d", f.Size())
	}
}

// Double close is a no-op; write-after-close panics.
func TestFileLifecycle(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	f := tb.OpenNFS()
	panicked := false
	tb.Sim.Go("w", func(p *sim.Proc) {
		f.Write(p, 8192)
		f.Close(p)
		f.Close(p) // no-op
		func() {
			defer func() { panicked = recover() != nil }()
			f.Write(p, 1)
		}()
	})
	tb.Sim.Run(time.Minute)
	if !panicked {
		t.Fatal("write after close did not panic")
	}
}

// Flush is durable: after Flush returns, the linux server must have no
// dirty data for the file.
func TestFlushDurability(t *testing.T) {
	tb := newBed(t, nfssim.ServerLinux, core.EnhancedConfig())
	f := tb.OpenNFS()
	var dirtyAfter int64 = -1
	tb.Sim.Go("w", func(p *sim.Proc) {
		for i := 0; i < 128; i++ {
			f.Write(p, 8192)
		}
		f.Flush(p)
		dirtyAfter = tb.Linux.Dirty()
	})
	tb.Sim.Run(time.Minute)
	if dirtyAfter != 0 {
		t.Fatalf("server dirty = %d after Flush", dirtyAfter)
	}
}

// The profiler must show the §3.4 signature during a linear-list run:
// nfs_find_request among the top CPU consumers.
func TestProfilerShowsFindRequestHotspot(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.NoLimitsConfig())
	runMB(t, tb, 40)
	prof := tb.Sim.Profiler()
	find := prof.Total("nfs_find_request") + prof.Total("nfs_update_request(scan)")
	if find == 0 {
		t.Fatal("no scan time profiled")
	}
	top := prof.Top(4)
	inTop := false
	for _, e := range top {
		if e.Label == "nfs_find_request" || e.Label == "nfs_update_request(scan)" {
			inTop = true
		}
	}
	if !inTop {
		t.Fatalf("list scans not in top-4 CPU consumers: %+v", top)
	}
}

// §3.5: the BKL wait must be dominated by sock_sendmsg (~90% in the
// paper) during an enhanced-but-locked run.
func TestBKLWaitDominatedBySockSendmsg(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.HashConfig())
	runMB(t, tb, 10)
	wb := tb.BKL.WaitBreakdown()
	var total, send time.Duration
	for label, v := range wb {
		total += v
		if label == "sock_sendmsg" {
			send += v
		}
	}
	if total == 0 {
		t.Fatal("no BKL contention at all")
	}
	if frac := float64(send) / float64(total); frac < 0.6 {
		t.Fatalf("sock_sendmsg fraction of BKL wait = %.2f, want dominant", frac)
	}
}

// Determinism: identical seeds must produce identical traces.
func TestRunDeterminism(t *testing.T) {
	run := func() time.Duration {
		tb := newBed(t, nfssim.ServerFiler, core.Stock244Config())
		res := runMB(t, tb, 5)
		return res.CloseElapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

// Uniprocessor ablation: on 1 CPU the flusher steals cycles from the
// writer, so the no-lock enhancement helps less than on SMP.
func TestSMPvsUP(t *testing.T) {
	run := func(cpus int, cfg core.Config) float64 {
		tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler, Client: cfg, ClientCPUs: cpus})
		res := bonnie.Run(tb.Sim, "t", tb.Open, bonnie.Config{FileSize: 5 << 20, TimeLimit: time.Minute})
		return res.WriteMBps()
	}
	smp := run(2, core.EnhancedConfig())
	up := run(1, core.EnhancedConfig())
	if smp <= up {
		t.Fatalf("SMP write throughput %.1f <= UP %.1f; second CPU should help", smp, up)
	}
}

// O_SYNC writes: every write is a stable RPC that waits for the reply, so
// nothing is ever left cached and the linux server's page cache is clean
// after each call.
func TestSyncWrites(t *testing.T) {
	tb := newBed(t, nfssim.ServerLinux, core.EnhancedConfig())
	f := tb.OpenNFS()
	f.SetSync(true)
	var perCall time.Duration
	tb.Sim.Go("w", func(p *sim.Proc) {
		t0 := tb.Sim.Now()
		for i := 0; i < 8; i++ {
			f.Write(p, 8192)
		}
		perCall = (tb.Sim.Now() - t0) / 8
		if tb.Client.MountRequests() != 0 {
			t.Error("sync writes left cached requests")
		}
		if tb.Linux.Dirty() != 0 {
			t.Error("sync writes left server dirty data")
		}
	})
	tb.Sim.Run(time.Minute)
	// A sync write to the linux server includes a disk wait: orders of
	// magnitude slower than the ~65µs async path.
	if perCall < 500*time.Microsecond {
		t.Fatalf("sync write per-call %v suspiciously fast", perCall)
	}
	if tb.Server.Commits != 0 {
		t.Fatal("sync writes should not need COMMIT")
	}
}

// §3.6: "applications regain control sooner after they flush or close a
// file when writing to a faster server" — compare close-inclusive
// throughput on sync-heavy workloads.
func TestFasterServerWinsWhenFlushing(t *testing.T) {
	run := func(srv nfssim.ServerKind) float64 {
		tb := newBed(t, srv, core.EnhancedConfig())
		res := runMB(t, tb, 20)
		return res.CloseMBps()
	}
	filer := run(nfssim.ServerFiler)
	linux := run(nfssim.ServerLinux)
	if filer <= linux {
		t.Fatalf("close-inclusive throughput: filer %.1f <= linux %.1f MB/s", filer, linux)
	}
}

// Incompatible sub-page writes force a flush before the new request (the
// paper's write-ordering example in §3.4).
func TestIncompatibleSubPageWriteFlushes(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.HashConfig())
	f := tb.OpenNFS()
	fh := f.Inode().FH
	tb.Sim.Go("w", func(p *sim.Proc) {
		f.WriteAt(p, 0, 100)    // bytes [0,100) of page 0
		f.WriteAt(p, 3000, 100) // disjoint range in the same page
		f.Close(p)
	})
	tb.Sim.Run(time.Minute)
	cov := tb.Server.Coverage(fh)
	if !cov.Contains(0, 100) || !cov.Contains(3000, 3100) {
		t.Fatalf("coverage = %v", cov)
	}
	// The hole must NOT be covered: the client never invented bytes.
	if cov.Contains(100, 3000) {
		t.Fatalf("server received bytes the app never wrote: %v", cov)
	}
}

// Two concurrent writers on separate files: aggregate improves without
// the BKL (§3.5's concurrency argument).
func TestConcurrentWritersBenefitFromLockFix(t *testing.T) {
	run := func(cfg core.Config) float64 {
		tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler, Client: cfg})
		res := bonnie.RunConcurrent(tb.Sim, "c", func(int) vfs.File { return tb.Open() }, 2, bonnie.Config{
			FileSize: 5 << 20, TimeLimit: 10 * time.Minute, SkipFlushClose: true,
		})
		return res.AggregateMBps()
	}
	lock := run(core.HashConfig())
	nolock := run(core.EnhancedConfig())
	if nolock <= lock {
		t.Fatalf("aggregate: no-lock %.1f <= lock %.1f MB/s", nolock, lock)
	}
}

// Regression for the FlushCacheAll dirty-accounting leak: rewriting one
// page must not inflate PageCache.Usage(). Before the fix, every
// WriteAt charged the full span even when commitPage merely updated the
// existing request, so 10,000 rewrites of one page accounted ~40 MB of
// phantom dirty memory that no writeback would ever credit back — until
// the writer throttled forever.
func TestOverwriteDirtyAccountingBounded(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	f := tb.OpenNFS()
	const rewrites = 10_000
	done := false
	tb.Sim.Go("w", func(p *sim.Proc) {
		for i := 0; i < rewrites; i++ {
			f.WriteAt(p, 0, vfs.PageSize)
		}
		// Bounded by one dirty page plus whatever writeback is in
		// flight at this instant.
		if got := tb.Cache.Usage(); got > vfs.PageSize+tb.Cache.Writeback() {
			t.Errorf("usage %d exceeds one page + writeback %d", got, tb.Cache.Writeback())
		}
		f.Close(p)
		done = true
	})
	tb.Sim.Run(20 * time.Minute)
	if !done {
		t.Fatal("run did not finish (writer throttled forever?)")
	}
	// The run never holds more than the one page dirty plus the RPCs the
	// flush pushed out; with the leak, peak usage was ~rewrites pages.
	maxInflight := int64(core.EnhancedConfig().WSize * 16) // full slot table
	if tb.Cache.PeakUsage > int64(vfs.PageSize)+maxInflight {
		t.Fatalf("peak usage %d, want <= one page + in-flight writeback %d",
			tb.Cache.PeakUsage, int64(vfs.PageSize)+maxInflight)
	}
	if tb.Cache.ThrottleEvents != 0 {
		t.Fatalf("%d throttle events while rewriting a single page", tb.Cache.ThrottleEvents)
	}
	if tb.Cache.Usage() != 0 {
		t.Fatalf("cache not drained after close: %d", tb.Cache.Usage())
	}
}

// Extending a cached request must charge only the net-new bytes: two
// adjacent 2 KB writes into one page dirty 4 KB total, not 6 KB.
func TestPartialPageExtensionChargesNetNew(t *testing.T) {
	tb := newBed(t, nfssim.ServerFiler, core.EnhancedConfig())
	f := tb.OpenNFS()
	tb.Sim.Go("w", func(p *sim.Proc) {
		f.WriteAt(p, 0, 2048)
		if got := tb.Cache.Usage(); got != 2048 {
			t.Errorf("after first half: usage = %d, want 2048", got)
		}
		f.WriteAt(p, 2048, 2048) // adjacent: extends the cached request
		if got := tb.Cache.Usage(); got != 4096 {
			t.Errorf("after extension: usage = %d, want 4096", got)
		}
		f.WriteAt(p, 1024, 2048) // overlap inside the dirty range: net 0
		if got := tb.Cache.Usage(); got != 4096 {
			t.Errorf("after overwrite: usage = %d, want 4096", got)
		}
	})
	tb.Sim.Run(time.Minute)
}

// Two client machines mounting the same server must present distinct
// file handles (per-machine FSIDs), and every byte each machine writes
// must arrive exactly once in that machine's file — the integrity check
// that identical handles used to corrupt.
func TestMultiClientIntegrity(t *testing.T) {
	tb := nfssim.NewTestbed(nfssim.Options{
		Server:  nfssim.ServerFiler,
		Client:  core.EnhancedConfig(),
		Clients: 2,
		Seed:    3,
	})
	const size = 2 << 20
	files := make([]*core.File, 2)
	finished := 0
	for i := 0; i < 2; i++ {
		i := i
		files[i] = tb.Machine(i).OpenNFS()
		tb.Sim.Go("w", func(p *sim.Proc) {
			for w := 0; w < size/8192; w++ {
				files[i].Write(p, 8192)
			}
			files[i].Close(p)
			finished++
		})
	}
	tb.Sim.Run(5 * time.Minute)
	if finished != 2 {
		t.Fatalf("%d of 2 writers finished", finished)
	}
	fh0, fh1 := files[0].Inode().FH, files[1].Inode().FH
	if fh0 == fh1 {
		t.Fatalf("file handles collide across machines: %v", fh0)
	}
	for i, f := range files {
		cov := tb.Server.Coverage(f.Inode().FH)
		if !cov.IsContiguousFromZero(size) {
			t.Fatalf("machine %d coverage %v, want [0,%d)", i, cov, size)
		}
	}
}

// Regression for the charge-after-queue race: a writer throttled on
// memory pressure used to park *after* its request was already visible
// to flushd, letting writeback start on bytes the cache had not
// admitted ("mm: writeback exceeds dirty" panic). The charge now lands
// before the request is queued. Sub-page writes against a tiny cache
// reproduce the original panic within milliseconds.
func TestThrottledSubPageWritesDoNotOutrunAccounting(t *testing.T) {
	tb := nfssim.NewTestbed(nfssim.Options{
		Server:     nfssim.ServerFiler,
		Client:     core.EnhancedConfig(),
		CacheLimit: 64 << 10,
		Seed:       3,
	})
	f := tb.OpenNFS()
	done := false
	tb.Sim.Go("w", func(p *sim.Proc) {
		for i := 0; i < 1024; i++ { // 2 MB of sequential 2 KB writes
			f.Write(p, 2048)
		}
		f.Close(p)
		done = true
	})
	tb.Sim.Run(10 * time.Minute)
	if !done {
		t.Fatal("run did not finish")
	}
	if tb.Cache.Usage() != 0 {
		t.Fatalf("cache not drained: %d", tb.Cache.Usage())
	}
	if !tb.Server.Coverage(f.Inode().FH).IsContiguousFromZero(2 << 20) {
		t.Fatal("server coverage incomplete")
	}
}

// Regression for the tiny-cache wedge: with a budget below the flushd
// watermark (8 pages), the writer used to block in ChargeDirty before
// anything had ever signaled the write-behind daemon — a deadlock. The
// writer now kicks flushd awake before parking on memory pressure.
func TestCacheSmallerThanWatermarkMakesProgress(t *testing.T) {
	// Both a page-aligned budget (the writer parks at exactly 100% of
	// the limit) and a misaligned one (the park point sits below the
	// 90% pressure threshold, so only the Throttled signal can wake
	// writeback) must make progress.
	for _, limit := range []int64{4 * vfs.PageSize, 4*vfs.PageSize + 2048} {
		tb := nfssim.NewTestbed(nfssim.Options{
			Server:     nfssim.ServerFiler,
			Client:     core.EnhancedConfig(),
			CacheLimit: limit, // well below the 8-page flushd watermark
			Seed:       3,
		})
		f := tb.OpenNFS()
		done := false
		tb.Sim.Go("w", func(p *sim.Proc) {
			for i := 0; i < 256; i++ { // 1 MB in page-sized writes
				f.Write(p, vfs.PageSize)
			}
			f.Close(p)
			done = true
		})
		tb.Sim.Run(10 * time.Minute)
		if !done {
			t.Fatalf("limit %d: writer wedged, cache below the flushd watermark never drained", limit)
		}
		if tb.Cache.ThrottleEvents == 0 {
			t.Fatalf("limit %d: expected memory-pressure throttling", limit)
		}
	}
}
