package core

import (
	"sort"

	"repro/internal/sim"
)

// Request is one page-sized pending write (struct nfs_page in the
// kernel): the byte range [Offset, Offset+Count) within page Page of one
// inode, not yet acknowledged by the server.
type Request struct {
	// Page is the page index within the file.
	Page int64
	// Offset is the byte offset within the page.
	Offset int
	// Count is the number of dirty bytes.
	Count int
	// CreatedAt is when the request entered the list (for flushd aging).
	CreatedAt sim.Time
}

// Start returns the request's absolute byte offset in the file.
func (r *Request) Start() int64 { return r.Page*pageSize + int64(r.Offset) }

// End returns the absolute byte offset one past the request's data.
func (r *Request) End() int64 { return r.Start() + int64(r.Count) }

const pageSize = 4096

// reqList is the per-inode request list, "maintained in order of
// increasing page offset" (§3.4). The Go implementation uses binary
// search so the simulator itself stays fast; the *modeled* cost of each
// operation — how many entries the 2.4.4 code would have traversed — is
// returned to the caller, which charges it as virtual CPU time.
type reqList struct {
	items []*Request
}

// Len returns the number of queued requests.
func (l *reqList) Len() int { return len(l.items) }

// Empty reports whether the list has no requests.
func (l *reqList) Empty() bool { return len(l.items) == 0 }

// search returns the index of the first request with page >= pg.
func (l *reqList) search(pg int64) int {
	return sort.Search(len(l.items), func(i int) bool { return l.items[i].Page >= pg })
}

// Find returns the request covering page pg, if any, plus the number of
// entries _nfs_find_request would have traversed to learn the answer:
// the scan walks the sorted list from the head until it reaches a page
// >= pg, so a sequential workload writing past the end traverses the
// entire list and finds nothing — the §3.4 pathology.
func (l *reqList) Find(pg int64) (req *Request, scanned int) {
	i := l.search(pg)
	scanned = i
	if i < len(l.items) && l.items[i].Page == pg {
		return l.items[i], scanned + 1
	}
	return nil, scanned
}

// Insert adds a request in sorted position and returns the entries the
// 2.4.4 insertion scan would have traversed.
func (l *reqList) Insert(r *Request) (scanned int) {
	i := l.search(r.Page)
	l.items = append(l.items, nil)
	copy(l.items[i+1:], l.items[i:])
	l.items[i] = r
	return i
}

// Front returns the first (lowest-page) request, or nil.
func (l *reqList) Front() *Request {
	if len(l.items) == 0 {
		return nil
	}
	return l.items[0]
}

// PopRun removes and returns the longest byte-contiguous run of requests
// from the front of the list, capped at maxBytes total — this is the
// "coalesced into wsize chunks just before the client generates write
// RPCs" step of §3.4. The second result is the number of entries the
// coalescing scan examined.
func (l *reqList) PopRun(maxBytes int) (run []*Request, scanned int) {
	if len(l.items) == 0 {
		return nil, 0
	}
	total := 0
	n := 0
	for n < len(l.items) {
		r := l.items[n]
		if total+r.Count > maxBytes {
			break
		}
		if n > 0 && l.items[n-1].End() != r.Start() {
			break
		}
		total += r.Count
		n++
	}
	if n == 0 {
		// A single request larger than maxBytes cannot happen (requests
		// are at most a page and wsize >= a page), but guard anyway.
		n = 1
	}
	run = make([]*Request, n)
	copy(run, l.items[:n])
	l.items = append(l.items[:0], l.items[n:]...)
	return run, n + 1
}

// At returns the i'th request.
func (l *reqList) At(i int) *Request { return l.items[i] }
