package core_test

import (
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/core"
	"repro/internal/sim"
)

// sharedBed builds a two-machine test bed mounted on one export, so
// names opened on either machine resolve to the same server files.
func sharedBed(t *testing.T, mode core.ConsistencyMode) *nfssim.Testbed {
	t.Helper()
	cfg := core.EnhancedConfig()
	cfg.Consistency = mode
	return nfssim.NewTestbed(nfssim.Options{
		Server:          nfssim.ServerFiler,
		Client:          cfg,
		Clients:         2,
		SharedNamespace: true,
		Seed:            3,
	})
}

// TestNamedInodePersistsAcrossOpenClose pins the inode-cache behavior
// the coherence workloads depend on: closing a file opened by name
// keeps its pages resident, so a reopen reads from memory — while the
// flushd scan table still drains to zero.
func TestNamedInodePersistsAcrossOpenClose(t *testing.T) {
	tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler, Client: core.EnhancedConfig(), Seed: 3})
	c := tb.Client
	tb.Sim.Go("w", func(p *sim.Proc) {
		f := c.OpenByName(p, "shared0")
		f.(*core.File).WriteAt(p, 0, 8*4096)
		f.Close(p)
		if got := c.OpenInodes(); got != 0 {
			t.Errorf("%d inodes in the scan table after close, want 0", got)
		}

		g := c.OpenByName(p, "shared0")
		if got := g.(*core.File).Inode().CachedPages(); got != 8 {
			t.Errorf("reopen found %d resident pages, want 8", got)
		}
		before := c.ReadRPCs
		if got := g.Read(p, 8*4096); got != 8*4096 {
			t.Errorf("short read: %d", got)
		}
		if c.ReadRPCs != before {
			t.Errorf("reread of cached pages issued %d READ RPCs", c.ReadRPCs-before)
		}
		g.Close(p)
	})
	tb.Sim.Run(time.Hour)
}

// TestStrictOpenNeverServesStale pins the strict mode's contract: every
// open revalidates at the server, a foreign write is therefore noticed
// at the next open (pages invalidated, refetched), and no read is ever
// served from superseded cache.
func TestStrictOpenNeverServesStale(t *testing.T) {
	tb := sharedBed(t, core.ConsistencyStrict)
	reader, writer := tb.Machine(0).Client, tb.Machine(1).Client
	const size = 8 * 4096
	tb.Sim.Go("rw", func(p *sim.Proc) {
		// Writer populates the file; reader pulls it into cache.
		w := writer.OpenByName(p, "hot")
		w.(*core.File).WriteAt(p, 0, size)
		w.Close(p)
		r := reader.OpenByName(p, "hot")
		r.Read(p, size)
		r.Close(p)

		// Foreign write; strict reader must refetch on reopen.
		w = writer.OpenByName(p, "hot")
		w.(*core.File).WriteAt(p, 0, size)
		w.Close(p)

		coldReads := reader.ReadRPCs
		r = reader.OpenByName(p, "hot")
		r.Read(p, size)
		r.Close(p)
		if reader.ReadRPCs == coldReads {
			t.Error("strict reopen after a foreign write served superseded pages from cache")
		}
		if reader.Invalidations == 0 {
			t.Error("strict reopen did not invalidate after a foreign write")
		}
	})
	tb.Sim.Run(time.Hour)
	if reader.StaleReads != 0 {
		t.Errorf("strict client counted %d stale reads, want 0", reader.StaleReads)
	}
	if reader.GetattrRPCs == 0 {
		t.Error("strict client never issued a GETATTR")
	}
}

// TestNoacServesStaleReads pins the opposite extreme: a client that
// never revalidates keeps serving its cached pages after a foreign
// write, and every such hit is counted against the ground-truth probe.
func TestNoacServesStaleReads(t *testing.T) {
	tb := sharedBed(t, core.ConsistencyNoac)
	reader, writer := tb.Machine(0).Client, tb.Machine(1).Client
	const size = 8 * 4096
	tb.Sim.Go("rw", func(p *sim.Proc) {
		w := writer.OpenByName(p, "hot")
		w.(*core.File).WriteAt(p, 0, size)
		w.Close(p)
		r := reader.OpenByName(p, "hot")
		r.Read(p, size)
		r.Close(p)

		w = writer.OpenByName(p, "hot")
		w.(*core.File).WriteAt(p, 0, size)
		w.Close(p)

		warmReads := reader.ReadRPCs
		r = reader.OpenByName(p, "hot")
		r.Read(p, size)
		r.Close(p)
		if reader.ReadRPCs != warmReads {
			t.Error("noac reopen went back to the server")
		}
	})
	tb.Sim.Run(time.Hour)
	if reader.StaleReads != 8 {
		t.Errorf("noac client counted %d stale reads, want 8 (every cached page of the second pass)", reader.StaleReads)
	}
	if reader.Invalidations != 0 {
		t.Errorf("noac client invalidated %d times, want 0", reader.Invalidations)
	}
}

// TestWccPreOpInvalidatesBetweenWriters pins weak cache consistency on
// the write path itself: when a WRITE reply's pre-op change attribute
// is newer than everything this client has seen, a foreign writer got
// in between, and the cached pages must drop — except the span the
// reply itself covered and anything durability still needs.
func TestWccPreOpInvalidatesBetweenWriters(t *testing.T) {
	tb := sharedBed(t, core.ConsistencyTTL)
	a, b := tb.Machine(0).Client, tb.Machine(1).Client
	tb.Sim.Go("ab", func(p *sim.Proc) {
		// A writes and fully commits four pages; its changeSeen is the
		// server's current counter and its unstable set is empty.
		fa := a.OpenByName(p, "both")
		fa.(*core.File).WriteAt(p, 0, 4*4096)
		fa.Flush(p)

		// B sneaks a write into the same file.
		fb := b.OpenByName(p, "both")
		fb.(*core.File).WriteAt(p, 10*4096, 4096)
		fb.Close(p)

		// A's next write reply carries B's counter in its pre-op arm.
		if a.Invalidations != 0 {
			t.Errorf("premature invalidation: %d", a.Invalidations)
		}
		fa.(*core.File).WriteAt(p, 5*4096, 4096)
		fa.Flush(p)
		if a.Invalidations == 0 {
			t.Error("wcc pre-op mismatch did not invalidate")
		}
		// Pages 0-3 dropped; page 5 (the reply's own span) kept.
		ino := fa.(*core.File).Inode()
		if got := ino.CachedPages(); got != 1 {
			t.Errorf("%d pages resident after wcc invalidation, want 1 (the write's own span)", got)
		}
		fa.Close(p)
	})
	tb.Sim.Run(time.Hour)
	if a.ChangeRegressions != 0 || b.ChangeRegressions != 0 {
		t.Errorf("change regressions counted on a healthy server: a=%d b=%d", a.ChangeRegressions, b.ChangeRegressions)
	}
}
