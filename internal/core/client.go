package core

import (
	"fmt"

	"repro/internal/mm"
	"repro/internal/nfsproto"
	"repro/internal/rangeset"
	"repro/internal/rpcsim"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// Client is one NFS mount's client state: the per-inode request queues,
// the mount-wide request count the hard limit applies to, and the
// write-behind daemon.
type Client struct {
	s     *sim.Sim
	cpu   *sim.CPUPool
	bkl   *sim.Mutex
	cache *mm.PageCache
	tr    *rpcsim.Transport
	cfg   Config

	inodes []*Inode
	nextFH uint64

	// rootFH is the mount's root directory handle; attrCache maps names
	// under it to cached LOOKUP/GETATTR results (lazily allocated, so
	// workloads that never touch the metadata path carry none of it).
	rootFH    nfsproto.FileHandle
	attrCache map[string]*attrEntry

	// namedInodes keeps one persistent inode per namespace name, the
	// moral equivalent of the kernel's inode cache: the last close takes
	// a named file out of flushd's scan table but keeps its resident
	// pages and change-attribute state, so a reopen starts warm. Keyed by
	// name rather than handle so REMOVE + re-CREATE (which mints a new
	// handle) naturally misses the dead inode. Lazily allocated.
	namedInodes map[string]*Inode

	// changeProbe, when set, reads a file's current server-side change
	// counter without an RPC — omniscient ground truth the harness wires
	// in so stale reads can be counted exactly. Never used to make
	// client decisions; only to judge them.
	changeProbe func(nfsproto.FileHandle) (uint64, bool)

	// mountRequests counts outstanding (queued + in-flight) page requests
	// across the mount — the quantity MAX_REQUEST_HARD bounds.
	mountRequests int
	hardWait      *sim.WaitQueue

	flushWork *sim.WaitQueue

	// Statistics. RPCsSent/PagesSent count the write path; the read path
	// has its own counters.
	SoftFlushes int64 // writer-forced whole-inode flushes (soft limit)
	HardBlocks  int64 // writer sleeps on the per-mount hard limit
	RPCsSent    int64
	PagesSent   int64
	// ReadRPCs counts READ calls issued (demand and readahead);
	// PagesReadRPC counts the pages they fetched.
	ReadRPCs     int64
	PagesReadRPC int64
	// CommitRPCs counts COMMIT calls issued (fsync/close durability after
	// UNSTABLE write replies — the group-commit cost §3.6 is about).
	CommitRPCs int64
	// Metadata-path counters: RPCs by procedure, plus how often the
	// attribute cache answered a name resolution without one.
	LookupRPCs      int64
	GetattrRPCs     int64
	CreateRPCs      int64
	RemoveRPCs      int64
	AttrCacheHits   int64
	AttrCacheMisses int64
	// Crash-recovery counters: VerfChanges counts observed write-verifier
	// changes (server reboots); RewrittenBytes counts unstable bytes
	// re-queued for rewrite because the acking server instance died.
	VerfChanges    int64
	RewrittenBytes int64
	// Coherence counters. StaleReads counts page-cache hits served while
	// the open had skipped revalidation and the server ground truth
	// (changeProbe) already held a newer change attribute — reads a
	// strict client would have refetched. Invalidations counts cached
	// page drops triggered by an observed foreign write (wcc pre-op or
	// revalidation change mismatch). ChangeRegressions counts replies
	// whose change attribute ran backwards from what this client had
	// already seen (out-of-order replies; a server losing state would
	// also show up here).
	StaleReads        int64
	Invalidations     int64
	ChangeRegressions int64
}

// Inode is one file's client-side write state (struct inode + nfs_inode).
type Inode struct {
	c    *Client
	FH   nfsproto.FileHandle
	size int64

	// name is the namespace name for inodes opened through OpenByName
	// ("" for anonymous Open inodes); refs counts the open File handles
	// sharing the inode.
	name string
	refs int

	// changeSeen is the newest server change attribute this client has
	// observed for the file (via GETATTR, LOOKUP, CREATE or wcc_data);
	// hasChange gates the first observation. staleOpen marks the current
	// open as trusting cached pages the server has already superseded —
	// set at open time when revalidation was skipped while the ground
	// truth probe held a newer counter, cleared by any revalidation.
	changeSeen uint64
	hasChange  bool
	staleOpen  bool

	// reqs is the sorted pending-request list; hash is the fix-2 index.
	reqs reqList
	hash map[int64]*Request

	inflightPages int
	flushWait     *sim.WaitQueue

	// unstable records that some WRITE reply was not FILE_SYNC since the
	// last COMMIT, so durability requires a COMMIT RPC. unstableSet holds
	// the byte ranges those UNSTABLE replies acked: if the verifier
	// changes (server reboot), exactly these ranges must be re-queued and
	// rewritten (RFC 1813 §3.3.7).
	unstable    bool
	unstableSet rangeset.Set
	verf        nfsproto.WriteVerf
	hasVerf     bool

	// Read-side state. cached is the resident-page set: pages filled by
	// READ replies or dirtied by the write path (read-after-write
	// coherence), kept as page-index ranges so a 1 GB sequential read
	// holds one span instead of ~131k map entries (random workloads
	// fragment it, but coverage coalesces as the holes fill). The rest —
	// in-flight READ set, reply waiters, and the sequential readahead
	// window — is allocated lazily on first read, so write-only workloads
	// carry none of it. pendingReads stays a per-page map: it is bounded
	// by the in-flight READ window, and replies must remove single pages
	// (rangeset only supports insertion).
	cached       rangeset.Set
	pendingReads map[int64]bool
	readWait     *sim.WaitQueue
	ra           mm.Readahead
}

// NewClient builds a client on the given simulator resources. cpu and bkl
// are the client machine's processors and big kernel lock; cache is its
// page cache; tr is the RPC transport to the server.
func NewClient(s *sim.Sim, cpu *sim.CPUPool, bkl *sim.Mutex, cache *mm.PageCache, tr *rpcsim.Transport, cfg Config) *Client {
	if cfg.WSize < pageSize || cfg.WSize%pageSize != 0 {
		panic("core: wsize must be a positive multiple of the page size")
	}
	if cfg.RSize == 0 {
		cfg.RSize = cfg.WSize // the paper mounts with rsize=wsize
	}
	if cfg.RSize < pageSize || cfg.RSize%pageSize != 0 {
		panic("core: rsize must be a positive multiple of the page size")
	}
	if cfg.ReadaheadMinPages == 0 && cfg.ReadaheadMaxPages == 0 {
		cfg.ReadaheadMinPages = StockReadaheadMinPages
		cfg.ReadaheadMaxPages = StockReadaheadMaxPages
	}
	// A half-specified window defaults the other bound instead of
	// silently disabling readahead (Max <= 0 means "off" to the window).
	if cfg.ReadaheadMaxPages == 0 {
		cfg.ReadaheadMaxPages = max(cfg.ReadaheadMinPages, StockReadaheadMaxPages)
	}
	if cfg.ReadaheadMinPages == 0 {
		cfg.ReadaheadMinPages = min(StockReadaheadMinPages, cfg.ReadaheadMaxPages)
	}
	if cfg.FSID == 0 {
		cfg.FSID = 1
	}
	if cfg.AcRegMin == 0 {
		cfg.AcRegMin = DefaultAcRegMin
	}
	if cfg.AcRegMax == 0 {
		cfg.AcRegMax = DefaultAcRegMax
	}
	if cfg.AcRegMax < cfg.AcRegMin {
		cfg.AcRegMax = cfg.AcRegMin
	}
	c := &Client{
		s: s, cpu: cpu, bkl: bkl, cache: cache, tr: tr, cfg: cfg,
		rootFH:    nfsproto.RootHandle(cfg.FSID),
		hardWait:  s.NewWaitQueue("nfs-hard-limit"),
		flushWork: s.NewWaitQueue("nfs-flushd"),
	}
	s.Go("nfs_flushd", c.flushd)
	return c
}

// Config returns the client's configuration.
func (c *Client) Config() Config { return c.cfg }

// SetChangeProbe installs the server-side ground-truth probe used to
// classify cache hits as stale (see StaleReads). The probe must be
// cheap and side-effect free; it is consulted only at open time.
func (c *Client) SetChangeProbe(probe func(nfsproto.FileHandle) (uint64, bool)) {
	c.changeProbe = probe
}

// Transport returns the client's RPC transport.
func (c *Client) Transport() *rpcsim.Transport { return c.tr }

// MountRequests returns the outstanding page-request count for the mount.
func (c *Client) MountRequests() int { return c.mountRequests }

// Open creates a fresh file on the mount (the benchmark always writes
// into a fresh file so that no reads are needed, §2.3).
func (c *Client) Open() *File {
	c.nextFH++
	ino := &Inode{
		c:         c,
		FH:        nfsproto.MakeFileHandle(c.cfg.FSID, c.nextFH),
		flushWait: c.s.NewWaitQueue("nfs-inode-flush"),
	}
	if c.cfg.IndexPolicy == IndexHashTable {
		ino.hash = make(map[int64]*Request)
	}
	c.inodes = append(c.inodes, ino)
	return &File{c: c, ino: ino}
}

// OpenExisting opens a file that already holds size bytes on the server
// with no pages resident client-side — the read workloads' cold target,
// standing in for a file written by another client or evicted from this
// one's memory.
func (c *Client) OpenExisting(size int64) *File {
	if size < 0 {
		panic("core: negative file size")
	}
	f := c.Open()
	f.ino.size = size
	return f
}

// OpenInodes returns how many inodes the client currently tracks — the
// set flushd's pickFlushable/queuedAnywhere scans. Closed files leave it
// (for tests pinning the last-close release).
func (c *Client) OpenInodes() int { return len(c.inodes) }

// releaseInode drops an inode from the client's inode table on last
// close, kernel-style: the final close releases the page-cache pages and
// flushd stops scanning the file. The caller (File.Close) has already
// flushed, so the inode holds no queued or in-flight requests. Without
// this release every file ever opened stayed in Client.inodes forever —
// flushd's scan was O(total files) per wakeup and closed inodes pinned
// their resident-page sets live for the whole run.
func (c *Client) releaseInode(ino *Inode) {
	if ino.Outstanding() != 0 {
		panic("core: releasing an inode with outstanding requests")
	}
	c.removeFromTable(ino)
	// Drop the resident-page set and the fix-2 index even if the File
	// object lingers in caller hands (reads/writes after close panic
	// anyway). pendingReads and readWait stay: trailing readahead RPCs
	// the reader never waited for may still be in flight, and their
	// readDone completions must land harmlessly.
	ino.cached = rangeset.Set{}
	ino.hash = nil
}

// removeFromTable takes an inode out of the flushd scan table. Ordered
// removal: flushd services inodes in table order, so a swap-with-last
// delete would perturb the deterministic schedule. The vacated tail
// slot is nil'd so the backing array does not keep the shifted last
// inode reachable twice.
func (c *Client) removeFromTable(ino *Inode) {
	for i, other := range c.inodes {
		if other == ino {
			last := len(c.inodes) - 1
			copy(c.inodes[i:], c.inodes[i+1:])
			c.inodes[last] = nil
			c.inodes = c.inodes[:last]
			break
		}
	}
}

// closeInode is the last-close bookkeeping. Anonymous inodes (Open)
// are fully released: pages dropped, index freed. Named inodes
// (OpenByName) behave like the kernel's inode cache instead: the final
// close removes the file from flushd's scan table but keeps its
// resident pages, fix-2 index and change-attribute state for the next
// open of the same name — which is what makes cross-client staleness
// observable at all. A named inode whose name no longer resolves to it
// (unlinked, possibly re-created, while open) is released like an
// anonymous one.
func (c *Client) closeInode(ino *Inode) {
	if ino.refs > 1 {
		ino.refs--
		return
	}
	ino.refs = 0
	if ino.name != "" && c.namedInodes[ino.name] == ino {
		if ino.Outstanding() != 0 {
			panic("core: closing an inode with outstanding requests")
		}
		c.removeFromTable(ino)
		return
	}
	c.releaseInode(ino)
}

// namedInode returns the persistent inode behind a namespace name,
// reviving the cached one when the handle still matches and minting a
// fresh inode otherwise (first open, or the name was unlinked and
// re-created so the old pages describe a dead handle). The returned
// inode is referenced and present in the flushd scan table.
func (c *Client) namedInode(name string, fh nfsproto.FileHandle) *Inode {
	if c.namedInodes == nil {
		c.namedInodes = make(map[string]*Inode)
	}
	if ino, ok := c.namedInodes[name]; ok && ino.FH == fh {
		if ino.refs == 0 {
			c.inodes = append(c.inodes, ino)
		}
		ino.refs++
		return ino
	}
	ino := &Inode{
		c:         c,
		FH:        fh,
		name:      name,
		refs:      1,
		flushWait: c.s.NewWaitQueue("nfs-inode-flush"),
	}
	if c.cfg.IndexPolicy == IndexHashTable {
		ino.hash = make(map[int64]*Request)
	}
	c.namedInodes[name] = ino
	c.inodes = append(c.inodes, ino)
	return ino
}

// invalidateInode drops an inode's cached pages in response to an
// observed foreign write, keeping only the pages that back
// UNSTABLE-acked byte ranges — a verifier change may yet force those
// exact bytes to be rewritten from the page cache, so discarding them
// would break crash recovery — plus the span in [keepStart, keepEnd)
// that the triggering reply itself just wrote. Safe in event context.
func (c *Client) invalidateInode(ino *Inode, keepStart, keepEnd int64) {
	c.Invalidations++
	var kept rangeset.Set
	addPages := func(s, e int64) {
		if e > s {
			kept.Add(s/pageSize, (e+pageSize-1)/pageSize)
		}
	}
	for _, r := range ino.unstableSet.Ranges() {
		addPages(r.Start, r.End)
	}
	addPages(keepStart, keepEnd)
	ino.cached = kept
}

// noteChange folds a server-reported change attribute (from GETATTR or
// LOOKUP revalidation) into the inode. A counter newer than anything
// this client has seen means a foreign writer touched the file: cached
// pages are invalidated before the counter is adopted. An older one is
// counted as a regression and not adopted.
func (c *Client) noteChange(ino *Inode, attrs nfsproto.FileAttrs) {
	if ino.hasChange && attrs.Change < ino.changeSeen {
		c.ChangeRegressions++
		return
	}
	if ino.hasChange && attrs.Change > ino.changeSeen {
		c.invalidateInode(ino, 0, 0)
	}
	ino.changeSeen, ino.hasChange = attrs.Change, true
	if s := int64(attrs.Size); s > ino.size {
		ino.size = s
	}
}

// Outstanding returns an inode's queued plus in-flight page requests —
// the per-inode count MAX_REQUEST_SOFT bounds.
func (ino *Inode) Outstanding() int { return ino.reqs.Len() + ino.inflightPages }

// lookupCost charges one _nfs_find_request-equivalent lookup for the
// given inode and returns the located request, if any.
func (c *Client) lookup(p *sim.Proc, ino *Inode, page int64) *Request {
	switch c.cfg.IndexPolicy {
	case IndexHashTable:
		c.cpu.Use(p, "nfs_find_request(hash)", c.cfg.Costs.HashLookup)
		return ino.hash[page]
	default:
		r, scanned := ino.reqs.Find(page)
		c.cpu.Use(p, "nfs_find_request", sim.Time(scanned)*c.cfg.Costs.ListScanPerEntry)
		return r
	}
}

// commitPage is nfs_commit_write: record one page-sized request under the
// BKL, performing the two lookups the paper describes ("The client
// attempts to find a matching previous write request twice during each
// write() system call", §3.4). A cached request for the same page that
// the new data neither overlaps nor extends is "incompatible" and must be
// flushed before the current request, to preserve write ordering.
//
// It returns the net-new dirty bytes this write added to the cache: the
// full count for a fresh request, only the growth when an existing
// request was extended, and zero for a pure overwrite. Each queued
// request's Count therefore always equals the dirty bytes charged for it,
// so EndWriteback's credit exactly balances the charges.
func (c *Client) commitPage(p *sim.Proc, ino *Inode, page int64, offset, count int) int {
	for {
		c.bkl.Lock(p, "nfs_commit_write")
		c.cpu.Use(p, "nfs_commit_write", c.cfg.Costs.CommitWriteBase)

		// First search: incompatible requests that would need flushing.
		existing := c.lookup(p, ino, page)

		// Second search + update/insert: nfs_update_request. Either way
		// the page ends up in the page cache, readable without an RPC.
		c.cpu.Use(p, "nfs_update_request", c.cfg.Costs.UpdateRequestBase)
		ino.markResident(page)
		if existing == nil {
			r := &Request{Page: page, Offset: offset, Count: count, CreatedAt: c.s.Now()}
			if c.cfg.IndexPolicy == IndexHashTable {
				ino.hash[page] = r
				ino.reqs.Insert(r)
			} else {
				// The real code walks the sorted list again to insert.
				scanned := ino.reqs.Insert(r)
				c.cpu.Use(p, "nfs_update_request(scan)", sim.Time(scanned)*c.cfg.Costs.ListScanPerEntry)
			}
			c.mountRequests++
			c.bkl.Unlock(p)
			return count
		}
		if offset <= existing.Offset+existing.Count && existing.Offset <= offset+count {
			// Overlapping or adjacent: extend the cached request in place
			// (the client "usually caches only a single write request per
			// page to maintain write ordering").
			before := existing.Count
			if offset < existing.Offset {
				existing.Count += existing.Offset - offset
				existing.Offset = offset
			}
			if end := offset + count; end > existing.Offset+existing.Count {
				existing.Count = end - existing.Offset
			}
			grown := existing.Count - before
			c.bkl.Unlock(p)
			return grown
		}
		// Incompatible request on the same page: flush it first, then
		// retry. (Rare: disjoint sub-page writes.)
		c.bkl.Unlock(p)
		c.flushInodeSync(p, ino)
	}
}

// chargeSpan accounts one page span under FlushCacheAll before the
// request is committed — and therefore before flushd can see it. A
// pessimistic charge of the full span blocks the writer under real
// memory pressure; charging after the queue insert instead would let
// flushd start writeback on bytes the cache had not admitted yet
// (StartWriteback outrunning the dirty counter), and a writer parked in
// ChargeDirty with the daemon asleep would wedge forever, so the writer
// kicks flushd awake before blocking.
func (c *Client) chargeSpan(p *sim.Proc, count int) {
	if c.cfg.FlushPolicy != FlushCacheAll {
		return
	}
	if c.cache.Usage()+int64(count) > c.cache.Limit() {
		c.flushWork.Signal()
	}
	c.cache.ChargeDirty(p, int64(count))
}

// creditSurplus refunds the pessimistically charged bytes commitPage
// found were not net-new (overwrites and partial extensions), so each
// queued request's Count always equals the dirty bytes held for it.
func (c *Client) creditSurplus(count, netNew int) {
	if c.cfg.FlushPolicy != FlushCacheAll {
		return
	}
	if surplus := int64(count - netNew); surplus > 0 {
		c.cache.CreditDirty(surplus)
	}
}

// enforceLimits applies the 2.4.4 write-path flushing rules after a page
// is queued (FlushLimits24), or the write-behind watermark kick
// (FlushCacheAll; the memory accounting itself happens in chargeSpan,
// before the request becomes visible to flushd).
func (c *Client) enforceLimits(p *sim.Proc, ino *Inode) {
	switch c.cfg.FlushPolicy {
	case FlushLimits24:
		// "When the per-inode request count grows larger than
		// MAX_REQUEST_SOFT the NFS client forces the writer thread to
		// schedule all pending writes for that inode and wait for their
		// completion" (§3.3).
		if ino.Outstanding() > c.cfg.MaxRequestSoft {
			c.SoftFlushes++
			c.flushInodeSync(p, ino)
		}
		// "When the per-mount request count grows larger than
		// MAX_REQUEST_HARD the NFS client puts any thread writing to that
		// file system to sleep" (§3.3).
		// Keep flushd's aging poll alive while requests are queued.
		c.flushWork.Signal()
		if c.mountRequests > c.cfg.MaxRequestHard {
			c.HardBlocks++
			for c.mountRequests > c.cfg.MaxRequestHard {
				c.hardWait.Wait(p)
			}
		}
	case FlushCacheAll:
		// Fix 1: no arbitrary limits; let flushd write behind once the
		// inode passes the watermark.
		if ino.reqs.Len() >= c.cfg.FlushdWatermarkPages {
			c.flushWork.Signal()
		}
	}
}

// flushTicket lets a sender wait for one specific RPC's completion.
type flushTicket struct {
	done bool
	wq   *sim.WaitQueue
}

// sendOne coalesces the front run of an inode's queued requests into one
// WRITE RPC and hands it to the transport. Returns the number of pages
// sent (0 if the inode had nothing queued). If ticket is non-nil it is
// completed when this RPC's reply arrives. The caller must not hold the
// BKL.
func (c *Client) sendOne(p *sim.Proc, ino *Inode, ticket *flushTicket) int {
	c.bkl.Lock(p, "nfs_coalesce")
	run, scanned := ino.reqs.PopRun(c.cfg.WSize)
	c.cpu.Use(p, "nfs_coalesce",
		c.cfg.Costs.CoalesceBase+sim.Time(scanned)*c.cfg.Costs.ListScanPerEntry)
	if len(run) == 0 {
		c.bkl.Unlock(p)
		return 0
	}
	if c.cfg.IndexPolicy == IndexHashTable {
		for _, r := range run {
			delete(ino.hash, r.Page)
		}
	}
	ino.inflightPages += len(run)
	c.bkl.Unlock(p)

	start := run[0].Start()
	var total int
	for _, r := range run {
		total += r.Count
	}
	if c.cfg.FlushPolicy == FlushCacheAll {
		c.cache.StartWriteback(int64(total))
	}

	args := nfsproto.WriteArgs{
		File:   ino.FH,
		Offset: uint64(start),
		Count:  uint32(total),
		Stable: nfsproto.Unstable,
		Data:   nfsproto.Zeroes(total),
	}
	pages := len(run)
	c.RPCsSent++
	c.PagesSent += int64(pages)
	c.tr.Call(p, nfsproto.ProcWrite, args.Encode, func(d *xdr.Decoder) {
		c.writeDone(ino, pages, total, start, d)
		if ticket != nil {
			ticket.done = true
			ticket.wq.Broadcast()
		}
	})
	return pages
}

// writeDone runs in softirq context when a WRITE reply arrives. start is
// the file byte offset of the RPC's coalesced run, recorded so unstable
// replies can be re-queued byte-exactly if the server later reboots.
func (c *Client) writeDone(ino *Inode, pages, bytes int, start int64, d *xdr.Decoder) {
	res, err := nfsproto.DecodeWriteRes(d)
	if err != nil {
		panic(fmt.Sprintf("core: bad WRITE reply: %v", err))
	}
	if res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: WRITE failed: %v", res.Status))
	}
	if int(res.Count) != bytes {
		panic(fmt.Sprintf("core: short WRITE: %d of %d", res.Count, bytes))
	}
	requeued := false
	if ino.hasVerf && res.Verf != ino.verf {
		// The server rebooted: every byte acked UNSTABLE under the old
		// verifier may be gone from the server. Re-queue those ranges for
		// rewrite before adopting the new verifier.
		requeued = c.redirtyUnstable(ino) > 0
	}
	ino.verf, ino.hasVerf = res.Verf, true
	if res.Committed == nfsproto.Unstable {
		ino.unstable = true
		ino.unstableSet.Add(start, start+int64(bytes))
	}

	// Weak cache consistency: the reply's pre-op change attribute tells
	// us what the file looked like just before our write landed. The
	// comparison is only meaningful when this reply is the client's sole
	// outstanding write — with several WRITEs in flight the server
	// interleaves them, and each one's pre-op legitimately reflects its
	// siblings, not a foreign writer. In the gated case a pre-op newer
	// than everything we have seen can only be someone else's write:
	// drop cached pages (except what durability still needs). The
	// post-op arm is adopted as a high-water mark either way.
	if res.Wcc.HavePre && ino.hasChange && ino.inflightPages == pages && ino.reqs.Empty() {
		switch {
		case res.Wcc.Pre.Change > ino.changeSeen:
			c.invalidateInode(ino, start, start+int64(bytes))
		case res.Wcc.Pre.Change < ino.changeSeen:
			c.ChangeRegressions++
		}
	}
	if res.Wcc.HavePost && (!ino.hasChange || res.Wcc.Post.Change > ino.changeSeen) {
		ino.changeSeen, ino.hasChange = res.Wcc.Post.Change, true
	}

	ino.inflightPages -= pages
	c.mountRequests -= pages
	if c.cfg.FlushPolicy == FlushCacheAll {
		c.cache.EndWriteback(int64(bytes))
	}
	if c.mountRequests <= c.cfg.MaxRequestHard {
		c.hardWait.Broadcast()
	}
	if ino.Outstanding() == 0 || requeued {
		// A requeue refills the request list: flushers parked in
		// flushWait must wake and see the new work.
		ino.flushWait.Broadcast()
	}
	if requeued {
		c.flushWork.Signal()
	}
}

// redirtyUnstable re-queues every byte range acked UNSTABLE under the old
// write verifier: the server instance that acked them is gone, so the
// only copy is the client's page cache (pages stay resident until COMMIT
// succeeds — that is what makes this recovery possible). Runs in event
// context: no CPU or BKL charges, no blocking. Returns the bytes
// re-queued.
func (c *Client) redirtyUnstable(ino *Inode) int64 {
	c.VerfChanges++
	total := ino.unstableSet.Total()
	if total == 0 {
		return 0
	}
	c.RewrittenBytes += total
	for _, r := range ino.unstableSet.Ranges() {
		for off := r.Start; off < r.End; {
			page := off / pageSize
			end := (page + 1) * pageSize
			if end > r.End {
				end = r.End
			}
			c.queueRewrite(ino, page, int(off-page*pageSize), int(end-off))
			off = end
		}
	}
	ino.unstableSet = rangeset.Set{}
	ino.unstable = false
	return total
}

// queueRewrite re-inserts one page-sized span into the inode's request
// queue — the kernel re-marking pages dirty from an RPC completion. Any
// existing request on the page is widened to the union (no flush of
// "incompatible" requests is possible in event context).
func (c *Client) queueRewrite(ino *Inode, page int64, offset, count int) {
	var existing *Request
	if c.cfg.IndexPolicy == IndexHashTable {
		existing = ino.hash[page]
	} else {
		existing, _ = ino.reqs.Find(page)
	}
	if existing != nil {
		before := existing.Count
		if offset < existing.Offset {
			existing.Count += existing.Offset - offset
			existing.Offset = offset
		}
		if end := offset + count; end > existing.Offset+existing.Count {
			existing.Count = end - existing.Offset
		}
		if grown := existing.Count - before; grown > 0 && c.cfg.FlushPolicy == FlushCacheAll {
			c.cache.ForceDirty(int64(grown))
		}
		return
	}
	r := &Request{Page: page, Offset: offset, Count: count, CreatedAt: c.s.Now()}
	if c.cfg.IndexPolicy == IndexHashTable {
		ino.hash[page] = r
	}
	ino.reqs.Insert(r)
	c.mountRequests++
	if c.cfg.FlushPolicy == FlushCacheAll {
		c.cache.ForceDirty(int64(count))
	}
}

// flushInodeSync schedules every queued request of the inode and waits
// for all outstanding requests to complete — the writer-side whole-inode
// flush behind the Figure 2 latency spikes, and the mechanism of fsync.
func (c *Client) flushInodeSync(p *sim.Proc, ino *Inode) {
	for ino.Outstanding() > 0 {
		if ino.reqs.Len() > 0 {
			c.sendOne(p, ino, nil) // blocks when the slot table is full
			continue
		}
		ino.flushWait.Wait(p)
	}
}

// writeSyncSpan is nfs_writepage_sync: an O_SYNC page write, sent as a
// stable WRITE that blocks until the server has made it durable. The
// page stays resident afterwards like any other written page.
func (c *Client) writeSyncSpan(p *sim.Proc, ino *Inode, span vfs.PageSpan) {
	ino.markResident(span.Page)
	args := nfsproto.WriteArgs{
		File:   ino.FH,
		Offset: uint64(span.Page)*uint64(pageSize) + uint64(span.Offset),
		Count:  uint32(span.Count),
		Stable: nfsproto.FileSync,
		Data:   nfsproto.Zeroes(span.Count),
	}
	c.RPCsSent++
	c.PagesSent++
	d := c.tr.CallSync(p, nfsproto.ProcWrite, args.Encode)
	res, err := nfsproto.DecodeWriteRes(d)
	if err != nil || res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: sync WRITE failed: %v %v", res, err))
	}
	if res.Committed == nfsproto.Unstable {
		panic("core: server answered a FILE_SYNC write with UNSTABLE")
	}
}

// commitSync issues a COMMIT for the whole file and waits for the reply.
// It returns false when the commit discovered a server reboot (verifier
// mismatch): the unstable ranges were re-queued for rewrite and the
// caller must flush and commit again.
func (c *Client) commitSync(p *sim.Proc, ino *Inode) bool {
	c.CommitRPCs++
	args := nfsproto.CommitArgs{File: ino.FH, Offset: 0, Count: 0}
	d := c.tr.CallSync(p, nfsproto.ProcCommit, args.Encode)
	res, err := nfsproto.DecodeCommitRes(d)
	if err != nil || res.Status != nfsproto.NFS3OK {
		panic(fmt.Sprintf("core: COMMIT failed: %v %v", res, err))
	}
	if ino.hasVerf && res.Verf != ino.verf {
		ino.verf = res.Verf
		c.redirtyUnstable(ino)
		c.flushWork.Signal()
		return false
	}
	ino.unstable = false
	ino.unstableSet = rangeset.Set{}
	return true
}

// flushd is nfs_flushd, the write-behind daemon. Under FlushCacheAll it
// writes behind the application once the watermark is reached, normally
// one async RPC at a time (2.4's single rpciod), opening up to
// MemoryPressureWindow slots when the page cache nears its limit. Under
// FlushLimits24 it only writes back requests older than FlushdAge, as
// fs/nfs/flushd.c did — during the benchmark the write-path limits fire
// long before any request grows that old.
func (c *Client) flushd(p *sim.Proc) {
	for {
		ino := c.pickFlushable()
		if ino == nil {
			if c.cfg.FlushPolicy == FlushLimits24 && c.queuedAnywhere() {
				// Requests exist but none are old enough yet; poll.
				p.Sleep(c.cfg.FlushdAge / 4)
				continue
			}
			c.flushWork.Wait(p)
			continue
		}
		if c.cfg.FlushPolicy == FlushCacheAll && c.underMemoryPressure() {
			// Urgent writeback: fill the slot table.
			for i := 0; i < c.cfg.MemoryPressureWindow; i++ {
				if ino.reqs.Len() == 0 {
					break
				}
				c.sendOne(p, ino, nil)
			}
			continue
		}
		// Paced write-behind: one async task outstanding at a time.
		c.sendOneAndAwait(p, ino)
	}
}

// sendOneAndAwait sends one RPC and waits for its reply, pacing flushd at
// one in-flight async task (2.4's single rpciod worker).
func (c *Client) sendOneAndAwait(p *sim.Proc, ino *Inode) {
	ticket := &flushTicket{wq: c.s.NewWaitQueue("flushd-ticket")}
	if c.sendOne(p, ino, ticket) == 0 {
		return
	}
	for !ticket.done {
		ticket.wq.Wait(p)
	}
}

// queuedAnywhere reports whether any inode has queued requests.
func (c *Client) queuedAnywhere() bool {
	for _, ino := range c.inodes {
		if !ino.reqs.Empty() {
			return true
		}
	}
	return false
}

func (c *Client) underMemoryPressure() bool {
	// A parked writer is definitive pressure: its pending charge is not
	// yet in Usage, so with a cache limit that is not a multiple of the
	// write size the 90% threshold alone can sit just below the park
	// point and never trip.
	return c.cache.Usage() >= c.cache.Limit()*9/10 || c.cache.Throttled()
}

// pickFlushable returns an inode flushd should service now, or nil.
func (c *Client) pickFlushable() *Inode {
	for _, ino := range c.inodes {
		if ino.reqs.Empty() {
			continue
		}
		switch c.cfg.FlushPolicy {
		case FlushCacheAll:
			if ino.reqs.Len() >= c.cfg.FlushdWatermarkPages || c.underMemoryPressure() {
				return ino
			}
		case FlushLimits24:
			if oldest := ino.reqs.Front(); c.s.Now()-oldest.CreatedAt >= c.cfg.FlushdAge {
				return ino
			}
		}
	}
	return nil
}
