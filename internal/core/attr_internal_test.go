package core

import (
	"testing"

	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// TestRefreshKeyedOnChange is the regression test for the adaptive
// attribute-timeout bug: two writes landing in the same virtual tick
// leave mtime identical, so aging keyed on mtime would read the second
// write as "file unchanged" and double the trust window right after a
// modification. Aging must key on the change attribute instead.
func TestRefreshKeyedOnChange(t *testing.T) {
	s := sim.New(1)
	c := &Client{s: s, cfg: Config{AcRegMin: DefaultAcRegMin, AcRegMax: DefaultAcRegMax}}
	e := &attrEntry{attrs: nfsproto.FileAttrs{MTime: 100, Change: 1}, timeout: c.cfg.AcRegMin}

	// Second write in the same tick: same mtime, bumped change. The
	// window must reset to acregmin, not double.
	e.refresh(c, nfsproto.FileAttrs{MTime: 100, Change: 2})
	if e.timeout != c.cfg.AcRegMin {
		t.Fatalf("timeout = %d after a same-tick change; want acregmin %d (mtime-keyed aging doubles here)",
			e.timeout, c.cfg.AcRegMin)
	}

	// Genuinely unchanged file: the window doubles toward acregmax.
	e.refresh(c, nfsproto.FileAttrs{MTime: 100, Change: 2})
	if e.timeout != 2*c.cfg.AcRegMin {
		t.Fatalf("timeout = %d after an unchanged revalidation, want %d", e.timeout, 2*c.cfg.AcRegMin)
	}

	// And clamps at acregmax.
	for i := 0; i < 20; i++ {
		e.refresh(c, nfsproto.FileAttrs{MTime: 100, Change: 2})
	}
	if e.timeout != c.cfg.AcRegMax {
		t.Fatalf("timeout = %d after many unchanged revalidations, want acregmax %d", e.timeout, c.cfg.AcRegMax)
	}
}
