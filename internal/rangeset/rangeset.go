// Package rangeset maintains sets of half-open byte ranges [start, end).
// The simulated servers use it to track exactly which bytes of each file
// have arrived, so integration tests can assert that a benchmark run
// delivered every byte exactly where the client claimed it would —
// end-to-end validation that request splitting, coalescing and
// retransmission never lose or misplace data.
package rangeset

import (
	"fmt"
	"sort"
	"strings"
)

// Range is a half-open interval [Start, End).
type Range struct {
	Start int64
	End   int64
}

// Len returns the range's length.
func (r Range) Len() int64 { return r.End - r.Start }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// Set is a set of non-overlapping, non-adjacent ranges kept in ascending
// order. The zero value is an empty set.
type Set struct {
	ranges []Range
}

// Add inserts [start, end), merging with overlapping or adjacent ranges.
// Empty or inverted ranges are ignored.
func (s *Set) Add(start, end int64) {
	if end <= start {
		return
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End >= start })
	j := i
	for j < len(s.ranges) && s.ranges[j].Start <= end {
		if s.ranges[j].Start < start {
			start = s.ranges[j].Start
		}
		if s.ranges[j].End > end {
			end = s.ranges[j].End
		}
		j++
	}
	if i == j {
		// Pure insertion at i: grow by one and shift the tail right,
		// reusing the backing array.
		s.ranges = append(s.ranges, Range{})
		copy(s.ranges[i+1:], s.ranges[i:])
		s.ranges[i] = Range{start, end}
		return
	}
	// Collapse [i, j) into the single merged range in place.
	s.ranges[i] = Range{start, end}
	s.ranges = append(s.ranges[:i+1], s.ranges[j:]...)
}

// Contains reports whether every byte of [start, end) is in the set.
func (s *Set) Contains(start, end int64) bool {
	if end <= start {
		return true
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End > start })
	return i < len(s.ranges) && s.ranges[i].Start <= start && s.ranges[i].End >= end
}

// Total returns the number of bytes covered.
func (s *Set) Total() int64 {
	var t int64
	for _, r := range s.ranges {
		t += r.Len()
	}
	return t
}

// Spans returns the number of disjoint ranges.
func (s *Set) Spans() int { return len(s.ranges) }

// Ranges returns a copy of the ranges in ascending order.
func (s *Set) Ranges() []Range {
	out := make([]Range, len(s.ranges))
	copy(out, s.ranges)
	return out
}

// IsContiguousFromZero reports whether the set is exactly [0, n).
func (s *Set) IsContiguousFromZero(n int64) bool {
	if n == 0 {
		return len(s.ranges) == 0
	}
	return len(s.ranges) == 1 && s.ranges[0].Start == 0 && s.ranges[0].End == n
}

func (s *Set) String() string {
	parts := make([]string, len(s.ranges))
	for i, r := range s.ranges {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
