package rangeset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAndContains(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Add(20, 30)
	if !s.Contains(0, 10) || !s.Contains(5, 8) {
		t.Fatal("missing added range")
	}
	if s.Contains(0, 11) || s.Contains(10, 20) || s.Contains(15, 16) {
		t.Fatal("contains bytes never added")
	}
	if s.Total() != 20 || s.Spans() != 2 {
		t.Fatalf("total=%d spans=%d", s.Total(), s.Spans())
	}
}

func TestMergeAdjacent(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Add(10, 20) // adjacent: must merge
	if s.Spans() != 1 || !s.Contains(0, 20) {
		t.Fatalf("adjacent ranges not merged: %v", s.String())
	}
}

func TestMergeOverlapping(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Add(5, 15)
	s.Add(30, 40)
	s.Add(12, 32) // bridges two ranges
	if s.Spans() != 1 || s.Total() != 40 {
		t.Fatalf("overlap merge wrong: %v", s.String())
	}
}

func TestAddContained(t *testing.T) {
	var s Set
	s.Add(0, 100)
	s.Add(10, 20)
	if s.Spans() != 1 || s.Total() != 100 {
		t.Fatalf("contained add changed set: %v", s.String())
	}
}

func TestEmptyAndInvertedIgnored(t *testing.T) {
	var s Set
	s.Add(5, 5)
	s.Add(10, 3)
	if s.Spans() != 0 || s.Total() != 0 {
		t.Fatalf("degenerate adds changed set: %v", s.String())
	}
	if !s.Contains(7, 7) {
		t.Fatal("empty interval should be trivially contained")
	}
}

func TestIsContiguousFromZero(t *testing.T) {
	var s Set
	if !s.IsContiguousFromZero(0) {
		t.Fatal("empty set should be contiguous [0,0)")
	}
	s.Add(0, 4096)
	s.Add(4096, 8192)
	if !s.IsContiguousFromZero(8192) {
		t.Fatal("should be contiguous")
	}
	if s.IsContiguousFromZero(10000) {
		t.Fatal("not that long")
	}
	var gap Set
	gap.Add(0, 10)
	gap.Add(20, 30)
	if gap.IsContiguousFromZero(30) {
		t.Fatal("has a hole")
	}
}

func TestRangesCopy(t *testing.T) {
	var s Set
	s.Add(1, 2)
	rs := s.Ranges()
	rs[0].End = 99
	if s.Contains(2, 99) {
		t.Fatal("Ranges() exposed internal state")
	}
	if rs[0].Len() != 98 || rs[0].String() == "" {
		t.Fatal("Range helpers wrong")
	}
}

// Property: adding pages in any order yields exactly [0, n*pageSize) when
// every page is added once.
func TestSequentialCoverageProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int64(nRaw%64) + 1
		perm := rand.New(rand.NewSource(seed)).Perm(int(n))
		var s Set
		for _, pg := range perm {
			s.Add(int64(pg)*4096, int64(pg+1)*4096)
		}
		return s.IsContiguousFromZero(n*4096) && s.Total() == n*4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: invariants hold for arbitrary add sequences — ranges stay
// sorted, disjoint, non-adjacent; every added byte is contained.
func TestInvariantProperty(t *testing.T) {
	type add struct{ Start, Len uint16 }
	f := func(adds []add) bool {
		var s Set
		for _, a := range adds {
			s.Add(int64(a.Start), int64(a.Start)+int64(a.Len%512))
		}
		rs := s.Ranges()
		for i, r := range rs {
			if r.End <= r.Start {
				return false
			}
			if i > 0 && rs[i-1].End >= r.Start {
				return false // overlapping or adjacent (should have merged)
			}
		}
		for _, a := range adds {
			end := int64(a.Start) + int64(a.Len%512)
			if end > int64(a.Start) && !s.Contains(int64(a.Start), end) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
