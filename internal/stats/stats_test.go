package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

func TestTraceBasics(t *testing.T) {
	tr := NewTrace("w")
	for _, v := range []int{100, 200, 300} {
		tr.Add(us(v))
	}
	if tr.Name() != "w" || tr.Len() != 3 || tr.At(1) != us(200) {
		t.Fatalf("trace basics wrong: %v", tr.Samples())
	}
	s := tr.Summary()
	if s.Mean != us(200) || s.Min != us(100) || s.Max != us(300) {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummaryPercentiles(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, us(i))
	}
	s := Summarize(samples)
	if s.Median != us(50) {
		t.Fatalf("median = %v", s.Median)
	}
	if s.P95 != us(95) {
		t.Fatalf("p95 = %v", s.P95)
	}
	if s.P99 != us(99) {
		t.Fatalf("p99 = %v", s.P99)
	}
}

// Reproduces the paper's §3.3 arithmetic: 37 spikes of >19 ms out of 2560
// calls inflate the mean from ~140 µs to ~482 µs (3.45x).
func TestSummaryExcludingMatchesPaperArithmetic(t *testing.T) {
	tr := NewTrace("fig2")
	for i := 0; i < 2560; i++ {
		tr.Add(us(140))
	}
	spikes := 37
	for i := 0; i < spikes; i++ {
		// "over 19 milliseconds"; ~24 ms reproduces the reported means.
		tr.samples[i*(2560/spikes)] = 24 * time.Millisecond
	}
	all := tr.Summary().Mean
	excl := tr.SummaryExcluding(time.Millisecond).Mean
	ratio := float64(all) / float64(excl)
	if ratio < 3.0 || ratio > 4.0 {
		t.Fatalf("inflation ratio = %.2f, want ~3.45", ratio)
	}
	if got := tr.CountAbove(time.Millisecond); got != spikes {
		t.Fatalf("CountAbove = %d, want %d", got, spikes)
	}
}

func TestSpikePeriod(t *testing.T) {
	tr := NewTrace("spiky")
	for i := 0; i < 500; i++ {
		if i%85 == 0 && i > 0 {
			tr.Add(20 * time.Millisecond)
		} else {
			tr.Add(us(150))
		}
	}
	p := tr.SpikePeriod(time.Millisecond)
	if p != 85 {
		t.Fatalf("spike period = %v, want 85", p)
	}
	if got := len(tr.SpikeIndices(time.Millisecond)); got != 5 {
		t.Fatalf("spikes = %d, want 5", got)
	}
	if NewTrace("x").SpikePeriod(time.Millisecond) != 0 {
		t.Fatal("empty trace should have period 0")
	}
}

func TestSlopeDetectsGrowth(t *testing.T) {
	grow := NewTrace("fig3")
	flat := NewTrace("fig4")
	for i := 0; i < 1000; i++ {
		grow.Add(us(100 + i))
		flat.Add(us(140))
	}
	if s := grow.Slope(); math.Abs(s-1000) > 1 { // 1µs per call = 1000ns
		t.Fatalf("grow slope = %v, want ~1000 ns/call", s)
	}
	if s := flat.Slope(); s != 0 {
		t.Fatalf("flat slope = %v, want 0", s)
	}
	if NewTrace("tiny").Slope() != 0 {
		t.Fatal("short trace slope should be 0")
	}
}

func TestTraceCSV(t *testing.T) {
	tr := NewTrace("t")
	tr.Add(us(150))
	csv := tr.CSV()
	if !strings.HasPrefix(csv, "call,latency_us\n0,150.0\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewPaperHistogram("fig5")
	h.Add(us(0))
	h.Add(us(59))
	h.Add(us(60))
	h.Add(us(530))
	h.Add(us(1000)) // overflow
	h.Add(-us(5))   // clamped to bucket 0
	b := h.Buckets()
	if b[0] != 3 { // 0, 59, -5
		t.Fatalf("bucket0 = %d", b[0])
	}
	if b[1] != 1 || b[8] != 1 {
		t.Fatalf("buckets = %v", b)
	}
	if h.Overflow() != 1 || h.Total() != 6 {
		t.Fatalf("overflow=%d total=%d", h.Overflow(), h.Total())
	}
	if h.BucketWidth() != 60*time.Microsecond {
		t.Fatalf("width = %v", h.BucketWidth())
	}
}

func TestHistogramTailCount(t *testing.T) {
	h := NewPaperHistogram("h")
	for _, v := range []int{50, 100, 200, 300, 400, 700} {
		h.Add(us(v))
	}
	if got := h.TailCount(us(180)); got != 4 { // 200,300,400,700
		t.Fatalf("tail = %d, want 4", got)
	}
}

func TestHistogramAddTraceAndRender(t *testing.T) {
	tr := NewTrace("t")
	for i := 0; i < 10; i++ {
		tr.Add(us(i * 70))
	}
	h := NewPaperHistogram("h")
	h.AddTrace(tr)
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	if len(h.Rows()) != 10 { // 9 buckets + overflow
		t.Fatalf("rows = %v", h.Rows())
	}
	if !strings.Contains(h.String(), "overflow") {
		t.Fatal("String() missing overflow row")
	}
}

func TestHistogramBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram("bad", 0, 5)
}

// Property: histogram total always equals samples added, and bucket sums
// plus overflow equal the total.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewPaperHistogram("p")
		for _, r := range raw {
			h.Add(time.Duration(r) * time.Microsecond)
		}
		sum := h.Overflow()
		for _, c := range h.Buckets() {
			sum += c
		}
		return sum == len(raw) && h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize bounds — min <= median <= mean is not generally true,
// but min <= median <= max and min <= mean <= max always hold.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, r := range raw {
			samples[i] = time.Duration(r)
		}
		s := Summarize(samples)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P95 && s.P95 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "filer"}
	s.Add(25, 28000)
	s.Add(50, 27000)
	if s.YAt(50) != 27000 || s.YAt(999) != 0 {
		t.Fatalf("YAt wrong")
	}
	if s.MaxY() != 28000 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestSeriesCSV(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(1, 10)
	b.Add(1, 20)
	got := CSV(a, b)
	want := "x,a,b\n1,10.0,20.0\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestSeriesCSVMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := &Series{Name: "a"}
	a.Add(1, 1)
	b := &Series{Name: "b"}
	CSV(a, b)
}

func TestTable(t *testing.T) {
	tb := NewTable("Table 1", "", "Normal", "No lock")
	tb.AddRow("NetApp filer", "115 MBps", "140 MBps")
	tb.AddRow("Linux NFS server", "138 MBps", "147 MBps")
	if tb.Rows() != 2 || tb.Cell(0, 1) != "115 MBps" {
		t.Fatalf("table wrong: %v", tb)
	}
	out := tb.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "147 MBps") {
		t.Fatalf("render = %q", out)
	}
}

func TestRateHelpers(t *testing.T) {
	if got := MBps(1e6, time.Second); got != 1 {
		t.Fatalf("MBps = %v", got)
	}
	if got := KBps(1e6, time.Second); got != 1000 {
		t.Fatalf("KBps = %v", got)
	}
	if MBps(100, 0) != 0 || KBps(100, -time.Second) != 0 {
		t.Fatal("zero/negative elapsed should yield 0")
	}
}

func TestQuietGap(t *testing.T) {
	tr := NewTrace("g")
	// Noisy segments around a quiet middle window.
	for i := 0; i < 3000; i++ {
		switch {
		case i >= 1200 && i < 1800:
			tr.Add(us(100)) // quiet: zero variance
		case i%2 == 0:
			tr.Add(us(80))
		default:
			tr.Add(us(220))
		}
	}
	start, end, ok := tr.QuietGap(100, 0.5)
	if !ok {
		t.Fatal("quiet gap not found")
	}
	if start < 1100 || start > 1300 || end < 1700 || end > 1900 {
		t.Fatalf("gap = [%d,%d), want ~[1200,1800)", start, end)
	}
}

func TestQuietGapNone(t *testing.T) {
	tr := NewTrace("g")
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			tr.Add(us(80))
		} else {
			tr.Add(us(220))
		}
	}
	if _, _, ok := tr.QuietGap(100, 0.3); ok {
		t.Fatal("found a gap in uniformly noisy data")
	}
	if _, _, ok := tr.QuietGap(100, 0.5); ok {
		t.Fatal("found a gap in uniformly noisy data")
	}
	if _, _, ok := NewTrace("short").QuietGap(100, 0.5); ok {
		t.Fatal("gap in empty trace")
	}
	// Zero-variance whole trace: no gap (base stddev 0).
	flat := NewTrace("flat")
	for i := 0; i < 1000; i++ {
		flat.Add(us(100))
	}
	if _, _, ok := flat.QuietGap(100, 0.5); ok {
		t.Fatal("gap in zero-variance trace")
	}
}

func TestMeanStddev(t *testing.T) {
	if m, sd := MeanStddev(nil); m != 0 || sd != 0 {
		t.Fatalf("empty: %g, %g", m, sd)
	}
	if m, sd := MeanStddev([]float64{5}); m != 5 || sd != 0 {
		t.Fatalf("single: %g, %g", m, sd)
	}
	// {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population stddev 2.
	m, sd := MeanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || sd != 2 {
		t.Fatalf("got %g, %g, want 5, 2", m, sd)
	}
}

func TestJainFairness(t *testing.T) {
	for _, tc := range []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 1},
		{[]float64{3, 3, 3, 3}, 1},
		{[]float64{0, 0}, 1},           // everyone equally starved
		{[]float64{10, 0, 0, 0}, 0.25}, // one-hot: 1/n
		{[]float64{4, 2}, 36.0 / 40.0}, // (4+2)^2 / (2 * (16+4))
	} {
		if got := JainFairness(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("JainFairness(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
	// Bounds: always within [1/n, 1] for non-degenerate inputs.
	xs := []float64{1, 7, 2, 9, 4}
	f := JainFairness(xs)
	if f < 1.0/float64(len(xs)) || f > 1 {
		t.Fatalf("fairness %v out of [1/n, 1]", f)
	}
}
