// Package stats provides the measurement machinery the paper's benchmark
// relies on: per-call latency traces (Figures 2–4), fixed-width latency
// histograms (Figures 5–6), summary statistics with outlier-excluded means
// (§3.3's 139.6 µs vs 482.1 µs comparison) and (x, y) series for the
// throughput-vs-file-size plots (Figures 1 and 7).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Trace is an append-only record of per-call latencies, in call order.
// This is the "actual, not average" latency record §2.3 argues for: jitter
// is invisible in means but obvious in the raw trace.
type Trace struct {
	name    string
	samples []time.Duration
}

// NewTrace returns an empty named trace.
func NewTrace(name string) *Trace { return &Trace{name: name} }

// Name returns the trace's name.
func (t *Trace) Name() string { return t.name }

// Add appends one latency sample.
func (t *Trace) Add(d time.Duration) { t.samples = append(t.samples, d) }

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.samples) }

// At returns the i'th sample.
func (t *Trace) At(i int) time.Duration { return t.samples[i] }

// Samples returns the underlying samples (not a copy; callers must not
// modify it).
func (t *Trace) Samples() []time.Duration { return t.samples }

// Summary computes summary statistics over the whole trace.
func (t *Trace) Summary() Summary { return Summarize(t.samples) }

// SummaryExcluding computes summary statistics over samples strictly below
// cutoff, mirroring the paper's "excluding the 37 calls exceeding
// 1 millisecond" methodology.
func (t *Trace) SummaryExcluding(cutoff time.Duration) Summary {
	kept := make([]time.Duration, 0, len(t.samples))
	for _, s := range t.samples {
		if s < cutoff {
			kept = append(kept, s)
		}
	}
	return Summarize(kept)
}

// CountAbove returns how many samples are >= cutoff.
func (t *Trace) CountAbove(cutoff time.Duration) int {
	n := 0
	for _, s := range t.samples {
		if s >= cutoff {
			n++
		}
	}
	return n
}

// SpikeIndices returns the indices of samples >= cutoff, in order. The
// fig2 analysis uses this to verify the ~every-85-calls periodicity.
func (t *Trace) SpikeIndices(cutoff time.Duration) []int {
	var idx []int
	for i, s := range t.samples {
		if s >= cutoff {
			idx = append(idx, i)
		}
	}
	return idx
}

// SpikePeriod returns the mean gap, in calls, between successive spikes
// (>= cutoff), or 0 if there are fewer than two spikes.
func (t *Trace) SpikePeriod(cutoff time.Duration) float64 {
	idx := t.SpikeIndices(cutoff)
	if len(idx) < 2 {
		return 0
	}
	return float64(idx[len(idx)-1]-idx[0]) / float64(len(idx)-1)
}

// Slope returns the least-squares slope of latency versus call index, in
// nanoseconds per call. Figure 3's "latency grows over time" shows up as a
// clearly positive slope; Figure 4's flat trace as a near-zero one.
func (t *Trace) Slope() float64 {
	n := float64(len(t.samples))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i, s := range t.samples {
		x, y := float64(i), float64(s)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// QuietGap scans the trace in windows of the given size and returns the
// first window run whose latency standard deviation falls below frac of
// the whole-trace standard deviation, as (startCall, endCall, true).
// Figure 4 shows such a "gap of greatly reduced jitter for a few hundred
// calls" when the filer stops responding during a checkpoint and the
// flush daemon goes quiet (§3.5 explains the mechanism).
func (t *Trace) QuietGap(window int, frac float64) (start, end int, ok bool) {
	if window <= 0 || t.Len() < 4*window {
		return 0, 0, false
	}
	base := float64(Summarize(t.samples).Stddev)
	if base == 0 {
		return 0, 0, false
	}
	inGap := false
	for i := 0; i+window <= t.Len(); i += window {
		sd := float64(Summarize(t.samples[i : i+window]).Stddev)
		quiet := sd < frac*base
		switch {
		case quiet && !inGap:
			start, inGap = i, true
		case quiet && inGap:
			// extend
		case !quiet && inGap:
			return start, i, true
		}
	}
	if inGap {
		return start, t.Len(), true
	}
	return 0, 0, false
}

// CSV renders the trace as "call,latency_us" rows, the format the paper's
// scatter plots (Figures 2–4) are built from.
func (t *Trace) CSV() string {
	var b strings.Builder
	b.WriteString("call,latency_us\n")
	for i, s := range t.samples {
		fmt.Fprintf(&b, "%d,%.1f\n", i, float64(s)/float64(time.Microsecond))
	}
	return b.String()
}

// Summary holds aggregate statistics over a set of latency samples.
type Summary struct {
	Count  int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	Stddev time.Duration
}

// Summarize computes a Summary from samples.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, s := range sorted {
		sum += float64(s)
	}
	mean := sum / float64(len(sorted))
	var varsum float64
	for _, s := range sorted {
		d := float64(s) - mean
		varsum += d * d
	}
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   time.Duration(mean),
		Median: percentile(sorted, 0.50),
		P95:    percentile(sorted, 0.95),
		P99:    percentile(sorted, 0.99),
		Stddev: time.Duration(math.Sqrt(varsum / float64(len(sorted)))),
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%v mean=%v median=%v p95=%v p99=%v max=%v",
		s.Count, s.Min, s.Mean, s.Median, s.P95, s.P99, s.Max)
}

// Histogram is a fixed-bucket-width latency histogram. Figures 5 and 6 use
// 60 µs buckets from 0 to 0.48 ms with an implicit overflow bucket; that
// is the default shape produced by NewPaperHistogram.
type Histogram struct {
	name     string
	width    time.Duration
	counts   []int
	overflow int
	total    int
}

// NewHistogram returns a histogram with n buckets of the given width plus
// an overflow bucket.
func NewHistogram(name string, width time.Duration, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("stats: histogram needs positive width and bucket count")
	}
	return &Histogram{name: name, width: width, counts: make([]int, n)}
}

// NewPaperHistogram returns the Figures 5/6 shape: 60 µs buckets covering
// 0–540 µs plus overflow.
func NewPaperHistogram(name string) *Histogram {
	return NewHistogram(name, 60*time.Microsecond, 9)
}

// Name returns the histogram's name.
func (h *Histogram) Name() string { return h.name }

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.total++
	i := int(d / h.width)
	if d < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// AddTrace records every sample in tr.
func (h *Histogram) AddTrace(tr *Trace) {
	for _, s := range tr.Samples() {
		h.Add(s)
	}
}

// Buckets returns a copy of the per-bucket counts (overflow excluded).
func (h *Histogram) Buckets() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Overflow returns the count of samples beyond the last bucket.
func (h *Histogram) Overflow() int { return h.overflow }

// Total returns the total number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BucketWidth returns the bucket width.
func (h *Histogram) BucketWidth() time.Duration { return h.width }

// TailCount returns the number of samples at or above from; the paper's
// "jitter" comparison is the relative size of this tail.
func (h *Histogram) TailCount(from time.Duration) int {
	n := h.overflow
	start := int(from / h.width)
	for i := start; i < len(h.counts); i++ {
		n += h.counts[i]
	}
	return n
}

// Rows renders "bucket_start_ms count" rows like the paper's bar charts.
func (h *Histogram) Rows() []string {
	rows := make([]string, 0, len(h.counts)+1)
	for i, c := range h.counts {
		start := time.Duration(i) * h.width
		rows = append(rows, fmt.Sprintf("%.2f %d", float64(start)/float64(time.Millisecond), c))
	}
	rows = append(rows, fmt.Sprintf(">%.2f %d", float64(len(h.counts))*float64(h.width)/float64(time.Millisecond), h.overflow))
	return rows
}

func (h *Histogram) String() string {
	max := 1
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, bucket=%v)\n", h.name, h.total, h.width)
	for i, c := range h.counts {
		bar := strings.Repeat("#", c*50/max)
		fmt.Fprintf(&b, "%7.2fms %6d %s\n", float64(i)*float64(h.width)/float64(time.Millisecond), c, bar)
	}
	fmt.Fprintf(&b, " overflow %6d\n", h.overflow)
	return b.String()
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, e.g. one curve of Figure 1
// (x = file size in MB, y = write throughput in KB/s).
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value for the first point with the given x, or 0.
func (s *Series) YAt(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return 0
}

// MaxY returns the largest y value in the series (0 when empty).
func (s *Series) MaxY() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// CSV renders one or more series with a shared x column. Series are
// aligned by point index; all series must have equal length.
func CSV(series ...*Series) string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		b.WriteString("," + s.Name)
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	n := len(series[0].Points)
	for _, s := range series {
		if len(s.Points) != n {
			panic("stats: CSV series length mismatch")
		}
	}
	for i := 0; i < n; i++ {
		// Byte-identical to the old %g, but the encoding is pinned
		// explicitly so goldens survive fmt changes (keyfmt).
		b.WriteString(strconv.FormatFloat(series[0].Points[i].X, 'g', -1, 64))
		for _, s := range series {
			fmt.Fprintf(&b, ",%.1f", s.Points[i].Y)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table is a simple labeled-rows/columns table used to print the paper's
// Table 1.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MeanStddev returns the mean and population standard deviation of xs
// (0, 0 for an empty slice). The sweep harness uses it to fold repeated
// runs of one scenario into a summary.
func MeanStddev(xs []float64) (mean, stddev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	var varsum float64
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	return mean, math.Sqrt(varsum / float64(len(xs)))
}

// JainFairness returns Jain's fairness index over xs:
// (Σx)² / (n·Σx²). It is 1 when every share is equal and 1/n when one
// participant takes everything — the scale-out experiments use it to
// check that N client machines split a shared server evenly. An empty
// slice yields 0; an all-zero slice (everyone equally starved) yields 1.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// MBps converts bytes moved in elapsed virtual time to MB/s (MB = 1e6
// bytes, the unit the paper's "MBps" figures use).
func MBps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / elapsed.Seconds()
}

// KBps converts bytes moved in elapsed virtual time to KB/s (KB = 1e3
// bytes), the y-axis unit of Figures 1 and 7.
func KBps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / 1e3 / elapsed.Seconds()
}
