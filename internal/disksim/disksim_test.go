package disksim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestSequentialWriteNoSeek(t *testing.T) {
	s := sim.New(1)
	d := New(s, "d", 10*time.Millisecond, 10_000_000) // 10 MB/s
	var elapsed sim.Time
	s.Go("w", func(p *sim.Proc) {
		d.Write(p, 0, 1_000_000) // first write seeks
		d.Write(p, 1_000_000, 1_000_000)
		elapsed = s.Now()
	})
	s.Run(0)
	// 2 MB at 10 MB/s = 200ms + one initial seek of 10ms.
	want := 210 * time.Millisecond
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if d.Seeks != 1 {
		t.Fatalf("seeks = %d, want 1", d.Seeks)
	}
}

func TestSequentialReadStreamsAfterOneSeek(t *testing.T) {
	s := sim.New(1)
	d := New(s, "d", 10*time.Millisecond, 10_000_000)
	var elapsed sim.Time
	s.Go("r", func(p *sim.Proc) {
		d.Read(p, 0, 1_000_000) // first read positions the head
		d.Read(p, 1_000_000, 1_000_000)
		elapsed = s.Now()
	})
	s.Run(0)
	want := 210 * time.Millisecond // 2 MB at 10 MB/s + one 10ms seek
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if d.Seeks != 1 || d.BytesRead != 2_000_000 || d.BytesWritten != 0 {
		t.Fatalf("seeks=%d read=%d written=%d", d.Seeks, d.BytesRead, d.BytesWritten)
	}
}

func TestReadsAndWritesShareTheHead(t *testing.T) {
	s := sim.New(1)
	d := New(s, "d", 5*time.Millisecond, 10_000_000)
	s.Go("rw", func(p *sim.Proc) {
		d.Write(p, 0, 4096)
		d.Read(p, 4096, 4096) // sequential with the write: no seek
		d.Read(p, 1_000_000, 4096)
		d.Write(p, 1_000_000+4096, 4096) // sequential with the read
	})
	s.Run(0)
	if d.Seeks != 2 {
		t.Fatalf("seeks = %d, want 2 (initial position + the jump)", d.Seeks)
	}
	if d.BytesRead != 8192 || d.BytesWritten != 8192 {
		t.Fatalf("read=%d written=%d", d.BytesRead, d.BytesWritten)
	}
}

func TestRandomWriteSeeks(t *testing.T) {
	s := sim.New(1)
	d := New(s, "d", 5*time.Millisecond, 10_000_000)
	s.Go("w", func(p *sim.Proc) {
		d.Write(p, 0, 4096)
		d.Write(p, 1_000_000, 4096) // jump
		d.Write(p, 0, 4096)         // jump back
	})
	s.Run(0)
	if d.Seeks != 3 {
		t.Fatalf("seeks = %d, want 3", d.Seeks)
	}
}

func TestFIFOQueueing(t *testing.T) {
	s := sim.New(1)
	d := New(s, "d", 0, 1_000_000) // 1 MB/s, no seek
	var t1, t2 sim.Time
	s.Go("a", func(p *sim.Proc) {
		d.Write(p, 0, 1_000_000)
		t1 = s.Now()
	})
	s.Go("b", func(p *sim.Proc) {
		d.Write(p, 1_000_000, 1_000_000)
		t2 = s.Now()
	})
	s.Run(0)
	if t1 != time.Second || t2 != 2*time.Second {
		t.Fatalf("t1=%v t2=%v; want 1s and 2s", t1, t2)
	}
}

func TestWriteAsync(t *testing.T) {
	s := sim.New(1)
	d := New(s, "d", 0, 1_000_000)
	var doneAt sim.Time
	d.WriteAsync(0, 500_000, func() { doneAt = s.Now() })
	d.WriteAsync(500_000, 0, nil) // zero-size, nil callback: no crash
	s.Run(0)
	if doneAt != 500*time.Millisecond {
		t.Fatalf("async done at %v, want 500ms", doneAt)
	}
}

func TestQueueDelay(t *testing.T) {
	s := sim.New(1)
	d := New(s, "d", 0, 1_000_000)
	d.WriteAsync(0, 1_000_000, nil)
	if d.QueueDelay() != time.Second {
		t.Fatalf("queue delay = %v", d.QueueDelay())
	}
	s.Run(0)
	if d.QueueDelay() != 0 {
		t.Fatalf("queue delay after drain = %v", d.QueueDelay())
	}
}

func TestStatsAndString(t *testing.T) {
	s := sim.New(1)
	d := New(s, "d", 0, 1_000_000)
	d.WriteAsync(0, 100, nil)
	s.Run(0)
	if d.BytesWritten != 100 || d.Requests != 1 {
		t.Fatalf("stats: %v", d)
	}
	if d.String() == "" || d.Name() != "d" || d.Bandwidth() != 1_000_000 {
		t.Fatal("accessors wrong")
	}
}

func TestRAID4Bandwidth(t *testing.T) {
	s := sim.New(1)
	r := NewRAID4(s, "vol", 8, 0, 5_000_000)
	if r.Bandwidth() != 40_000_000 {
		t.Fatalf("raid bandwidth = %d", r.Bandwidth())
	}
	if r.DataDisks() != 8 {
		t.Fatalf("data disks = %d", r.DataDisks())
	}
}

func TestPresets(t *testing.T) {
	s := sim.New(1)
	if NewDeskstarEIDE(s).Bandwidth() != 16_600_000 {
		t.Fatal("deskstar preset wrong")
	}
	if NewSeagateSCSI(s, "sda").Bandwidth() != 35_000_000 {
		t.Fatal("seagate preset wrong")
	}
	v := NewFilerVolume(s)
	if v.Bandwidth() != 48_000_000 {
		t.Fatalf("filer volume bandwidth = %d", v.Bandwidth())
	}
}

func TestBadArgsPanic(t *testing.T) {
	s := sim.New(1)
	for _, fn := range []func(){
		func() { New(s, "x", 0, 0) },
		func() { NewRAID4(s, "x", 0, 0, 1) },
		func() { New(s, "x", 0, 1).WriteAsync(0, -1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: busy time equals bytes/bandwidth plus seeks*seekTime, and the
// device never serves two requests at once (freeAt is monotone).
func TestAccountingProperty(t *testing.T) {
	f := func(sizes []uint16, gap uint8) bool {
		s := sim.New(1)
		seek := 3 * time.Millisecond
		d := New(s, "d", seek, 8_000_000)
		var total int64
		off := int64(0)
		for i, sz := range sizes {
			n := int64(sz)
			if i%int(gap%3+1) == 0 {
				off += 1 << 20 // force a seek
			}
			d.WriteAsync(off, n, nil)
			off += n
			total += n
		}
		s.Run(0)
		want := sim.Time(total*1e9/8_000_000) + time.Duration(d.Seeks)*seek
		return d.BusyTime == want && d.BytesWritten == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
