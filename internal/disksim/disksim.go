// Package disksim models the rotating storage behind the paper's three
// data sinks: the client's IBM Deskstar EIDE drive (interface-capped at
// multiword DMA mode 2, §3.1), the Linux server's single Seagate SCSI
// drive, and the filer's RAID-4 volume of eight data spindles that WAFL
// writes to in full sequential stripes.
//
// The model is deliberately simple — positioning cost plus media transfer
// at a sequential rate, FIFO-serialized per device — because the paper's
// benchmark is constructed to "minimize disk latency (i.e., seek time) on
// the server" (§2.3); the disk only matters as the eventual drain rate
// once caches fill (Figures 1 and 7's right-hand side).
package disksim

import (
	"fmt"

	"repro/internal/sim"
)

// Disk is a FIFO-served storage device.
type Disk struct {
	s    *sim.Sim
	name string
	// seek is the positioning cost charged when a request is not
	// sequential with the previous one.
	seek sim.Time
	// bandwidth is the sequential media/interface rate in bytes/s.
	bandwidth int64

	freeAt  sim.Time
	nextPos int64 // byte position a sequential request would start at
	// slow is a service-time multiplier on subsequent requests (0 or 1 =
	// healthy). Chaos disk_degrade events raise it mid-run to model a
	// failing or rebuilding device.
	slow float64

	// Statistics.
	BytesWritten int64
	BytesRead    int64
	Requests     int64
	Seeks        int64
	BusyTime     sim.Time
}

// New returns a disk with the given positioning cost and sequential
// bandwidth (bytes per second).
func New(s *sim.Sim, name string, seek sim.Time, bandwidth int64) *Disk {
	if bandwidth <= 0 {
		panic("disksim: bandwidth must be positive")
	}
	// nextPos starts at -1 so the first request always positions the head.
	return &Disk{s: s, name: name, seek: seek, bandwidth: bandwidth, nextPos: -1}
}

// Name returns the disk's diagnostic name.
func (d *Disk) Name() string { return d.name }

// Bandwidth returns the sequential transfer rate in bytes/s.
func (d *Disk) Bandwidth() int64 { return d.bandwidth }

// Write performs a blocking write of n bytes at byte offset off,
// serialized FIFO behind earlier requests. It charges a positioning cost
// when off does not continue the previous request.
func (d *Disk) Write(p *sim.Proc, off, n int64) {
	at := d.service(off, n)
	d.BytesWritten += n
	d.waitFor(p, at)
}

// WriteAsync schedules a write and invokes done (in event context) when it
// completes, without blocking a process. Used by server elements like the
// filer's NVRAM drain that are modeled as callbacks.
func (d *Disk) WriteAsync(off, n int64, done func()) {
	at := d.service(off, n)
	d.BytesWritten += n
	d.s.At(at, func() {
		if done != nil {
			done()
		}
	})
}

// Read performs a blocking read of n bytes at byte offset off, sharing
// the same FIFO queue, head position, and sequential bandwidth as writes
// (the model has no zone or direction asymmetry). Sequential reads stream
// at media rate; any jump charges the positioning cost.
func (d *Disk) Read(p *sim.Proc, off, n int64) {
	at := d.service(off, n)
	d.BytesRead += n
	d.waitFor(p, at)
}

// service books a request into the FIFO queue and returns its completion
// time. Callers account the bytes as read or written.
func (d *Disk) service(off, n int64) sim.Time {
	if n < 0 {
		panic("disksim: negative request size")
	}
	start := d.s.Now()
	if d.freeAt > start {
		start = d.freeAt
	}
	cost := sim.Time(n * 1e9 / d.bandwidth)
	if off != d.nextPos {
		cost += d.seek
		d.Seeks++
	}
	if d.slow > 1 {
		cost = sim.Time(float64(cost) * d.slow)
	}
	d.nextPos = off + n
	d.freeAt = start + cost
	d.Requests++
	d.BusyTime += cost
	return d.freeAt
}

// SetSlowFactor scales the service time of subsequent requests by f
// (f >= 1; 1 restores healthy service). Requests already booked keep
// their original completion times.
func (d *Disk) SetSlowFactor(f float64) {
	if f < 1 {
		panic("disksim: slow factor must be >= 1")
	}
	d.slow = f
}

func (d *Disk) waitFor(p *sim.Proc, t sim.Time) {
	if dt := t - d.s.Now(); dt > 0 {
		p.Sleep(dt)
	}
}

// QueueDelay returns how long a request issued now would wait before
// service begins.
func (d *Disk) QueueDelay() sim.Time {
	if d.freeAt > d.s.Now() {
		return d.freeAt - d.s.Now()
	}
	return 0
}

func (d *Disk) String() string {
	return fmt.Sprintf("%s: %d B in %d reqs (%d seeks), busy %v",
		d.name, d.BytesWritten, d.Requests, d.Seeks, d.BusyTime)
}

// RAID4 models the filer's parity-protected volume. WAFL turns incoming
// writes into full-stripe sequential writes, so the effective bandwidth is
// the sum of the data spindles; parity is computed on the fly and written
// in parallel, so it does not reduce stripe bandwidth.
type RAID4 struct {
	*Disk
	dataDisks int
}

// NewRAID4 returns a RAID-4 group of dataDisks spindles (plus an implied
// parity disk) each with the given per-spindle seek and bandwidth.
func NewRAID4(s *sim.Sim, name string, dataDisks int, seek sim.Time, perDisk int64) *RAID4 {
	if dataDisks < 1 {
		panic("disksim: RAID4 needs at least one data disk")
	}
	return &RAID4{
		Disk:      New(s, name, seek, perDisk*int64(dataDisks)),
		dataDisks: dataDisks,
	}
}

// DataDisks returns the number of data spindles.
func (r *RAID4) DataDisks() int { return r.dataDisks }

// Paper-era device presets.

// NewDeskstarEIDE returns the client's IBM Deskstar 70GXP as configured in
// §3.1: the ServerWorks south bridge limits the interface to multiword DMA
// mode 2, 16.7 MB/s, which dominates the media rate.
func NewDeskstarEIDE(s *sim.Sim) *Disk {
	return New(s, "deskstar-eide", 8_500_000, 16_600_000) // 8.5 ms seek, 16.6 MB/s
}

// NewSeagateSCSI returns one of the Linux server's Seagate LVD drives:
// ~5 ms positioning, ~35 MB/s sequential.
func NewSeagateSCSI(s *sim.Sim, name string) *Disk {
	return New(s, name, 5_000_000, 35_000_000)
}

// NewFilerVolume returns the F85 test volume: eight data disks in RAID 4
// written in WAFL full stripes. Per-spindle sequential rate ~23 MB/s
// sustained gives ~46 MB/s of NVRAM drain after ONTAP overheads; we use
// 6 MB/s per spindle for a conservative 48 MB/s aggregate, comfortably
// above the filer's measured 38 MB/s network ingest.
func NewFilerVolume(s *sim.Sim) *RAID4 {
	return NewRAID4(s, "f85-vol", 8, 4_000_000, 6_000_000)
}
