package sim_test

import (
	"container/heap"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// These tests pin the event queue's contract: events fire in (time,
// schedule-order) order — the exact total order the old container/heap
// kernel used — and Cancel is safe before, after, and long after an
// event fires, including once its pooled object has been recycled.

// TestSameTimestampFIFO schedules batches at equal timestamps in several
// interleavings; within a timestamp, firing order must be insertion
// order regardless of how timestamps interleave at insert time.
func TestSameTimestampFIFO(t *testing.T) {
	// Each case lists (timestamp, id) pairs in insertion order.
	cases := [][][2]int{
		{{5, 0}, {5, 1}, {5, 2}, {5, 3}},
		{{5, 0}, {3, 1}, {5, 2}, {3, 3}, {5, 4}},
		{{9, 0}, {1, 1}, {9, 2}, {1, 3}, {5, 4}, {5, 5}, {9, 6}},
		{{2, 0}, {2, 1}, {1, 2}, {1, 3}, {2, 4}, {1, 5}},
	}
	for ci, ins := range cases {
		s := sim.New(1)
		var fired [][2]int
		for _, pair := range ins {
			at, id := pair[0], pair[1]
			s.At(sim.Time(at)*time.Microsecond, func() { fired = append(fired, [2]int{at, id}) })
		}
		s.Run(0)
		// Expected: stable sort of the insertion list by timestamp.
		want := make([][2]int, len(ins))
		copy(want, ins)
		for i := 1; i < len(want); i++ { // insertion sort = stable
			for j := i; j > 0 && want[j-1][0] > want[j][0]; j-- {
				want[j-1], want[j] = want[j], want[j-1]
			}
		}
		if !reflect.DeepEqual(fired, want) {
			t.Fatalf("case %d: fired %v, want %v", ci, fired, want)
		}
	}
}

// TestCancelThenFire covers the cancellation lifecycle: cancel before
// fire suppresses the event, cancel after fire is a no-op, and a stale
// handle must not kill a later event that recycled the same pooled
// object (the generation check).
func TestCancelThenFire(t *testing.T) {
	s := sim.New(1)
	var fired []string
	a := s.At(1*time.Microsecond, func() { fired = append(fired, "a") })
	b := s.At(2*time.Microsecond, func() { fired = append(fired, "b") })
	s.At(3*time.Microsecond, func() { fired = append(fired, "c") })
	b.Cancel()
	b.Cancel() // double cancel is fine
	s.Run(0)
	if want := []string{"a", "c"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}

	// a's event object is back in the pool; new events reuse it with a
	// bumped generation. The stale handle must be inert.
	fired = nil
	for i := 0; i < 8; i++ {
		s.At(time.Microsecond, func() { fired = append(fired, "d") })
	}
	a.Cancel()
	s.Run(0)
	if len(fired) != 8 {
		t.Fatalf("stale Cancel killed a recycled event: fired %v", fired)
	}

	// Cancelling from within an earlier event at the same timestamp
	// still suppresses the later one (it has not run yet).
	fired = nil
	var victim sim.Event
	s.At(time.Microsecond, func() {
		fired = append(fired, "e")
		victim.Cancel()
	})
	victim = s.At(time.Microsecond, func() { fired = append(fired, "f") })
	s.Run(0)
	if want := []string{"e"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// refHeap is the old kernel's event queue: a container/heap binary heap
// ordered by (at, seq) with lazy-cancelled dead events. The randomized
// cross-check below replays identical schedules through it.
type refEvent struct {
	at   int64
	seq  int
	id   int
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestRandomizedScheduleMatchesReferenceHeap drives the kernel with a
// pseudo-random schedule — every fired event may spawn children at
// random future offsets and cancel a pending sibling — and replays the
// same decision stream through the container/heap reference. The firing
// sequences must match exactly.
func TestRandomizedScheduleMatchesReferenceHeap(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		const initial = 40
		const maxID = 400

		// decisions(id) derives an event's behaviour purely from its id,
		// so the sim run and the reference replay make identical choices.
		type decision struct {
			children []int64 // child delays in microseconds
			cancel   int     // id of the event to cancel, -1 for none
		}
		decisions := func(id int) decision {
			rng := rand.New(rand.NewSource(seed*1_000_003 + int64(id)))
			var d decision
			for i, n := 0, rng.Intn(3); i < n; i++ {
				d.children = append(d.children, int64(rng.Intn(7))) // 0 delays exercise same-timestamp ties
			}
			d.cancel = -1
			if rng.Intn(4) == 0 {
				d.cancel = rng.Intn(maxID)
			}
			return d
		}

		// Simulation run.
		s := sim.New(seed)
		var simFired []int
		handles := make(map[int]sim.Event)
		nextID := 0
		var schedule func(delay int64) // schedules the next id at now+delay
		schedule = func(delay int64) {
			id := nextID
			nextID++
			if id >= maxID {
				return
			}
			handles[id] = s.At(s.Now()+sim.Time(delay)*time.Microsecond, func() {
				simFired = append(simFired, id)
				d := decisions(id)
				if d.cancel >= 0 {
					if h, ok := handles[d.cancel]; ok {
						h.Cancel()
					}
				}
				for _, cd := range d.children {
					schedule(cd)
				}
			})
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < initial; i++ {
			schedule(int64(rng.Intn(10)))
		}
		s.Run(0)

		// Reference replay with the identical decision stream.
		var h refHeap
		byID := make(map[int]*refEvent)
		var refFired []int
		refNext := 0
		seq := 0
		var now int64
		push := func(delay int64) {
			id := refNext
			refNext++
			if id >= maxID {
				return
			}
			e := &refEvent{at: now + delay, seq: seq, id: id}
			seq++
			byID[id] = e
			heap.Push(&h, e)
		}
		rng = rand.New(rand.NewSource(seed))
		for i := 0; i < initial; i++ {
			push(int64(rng.Intn(10)))
		}
		for h.Len() > 0 {
			e := heap.Pop(&h).(*refEvent)
			if e.dead {
				continue
			}
			now = e.at
			refFired = append(refFired, e.id)
			d := decisions(e.id)
			if d.cancel >= 0 {
				if victim, ok := byID[d.cancel]; ok {
					victim.dead = true
				}
			}
			for _, cd := range d.children {
				push(cd)
			}
		}

		if !reflect.DeepEqual(simFired, refFired) {
			i := 0
			for i < len(simFired) && i < len(refFired) && simFired[i] == refFired[i] {
				i++
			}
			t.Fatalf("seed %d: firing order diverges from the reference heap at position %d (sim %v..., ref %v...)",
				seed, i, tailof(simFired, i), tailof(refFired, i))
		}
	}
}

func tailof(xs []int, i int) []int {
	if i >= len(xs) {
		return nil
	}
	if len(xs) > i+5 {
		return xs[i : i+5]
	}
	return xs[i:]
}
