package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Microsecond, func() { got = append(got, 3) })
	s.At(10*time.Microsecond, func() { got = append(got, 1) })
	s.At(20*time.Microsecond, func() { got = append(got, 2) })
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30*time.Microsecond {
		t.Fatalf("final time = %v, want 30µs", s.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", got)
		}
	}
}

// Property: regardless of insertion order, events fire sorted by time, and
// equal times preserve insertion order.
func TestEventOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		s := New(1)
		type fired struct {
			at  Time
			ins int
		}
		var got []fired
		for i, r := range raw {
			i, at := i, Time(r%50)*time.Microsecond
			s.At(at, func() { got = append(got, fired{at, i}) })
		}
		s.Run(0)
		if len(got) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].ins < got[j].ins
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLimit(t *testing.T) {
	s := New(1)
	fired := false
	s.At(time.Second, func() { fired = true })
	s.Run(100 * time.Millisecond)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if s.Now() != 100*time.Millisecond {
		t.Fatalf("now = %v, want limit", s.Now())
	}
	s.Run(0)
	if !fired {
		t.Fatal("event did not fire after limit lifted")
	}
}

func TestEventCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.At(time.Millisecond, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // double-cancel is a no-op
	s.Run(0)
	if fired {
		t.Fatal("canceled event fired")
	}
	var zero Event
	zero.Cancel() // zero-value handle is a no-op
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake Time
	s.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		wake = s.Now()
	})
	s.Run(0)
	if wake != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", wake)
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d, want 0", s.Live())
	}
}

func TestProcSleepZeroAndNegative(t *testing.T) {
	s := New(1)
	steps := 0
	s.Go("p", func(p *Proc) {
		p.Sleep(0)
		steps++
		p.Sleep(-time.Second)
		steps++
	})
	s.Run(0)
	if steps != 2 {
		t.Fatalf("steps = %d, want 2", steps)
	}
	if s.Now() != 0 {
		t.Fatalf("time advanced by non-positive sleeps: %v", s.Now())
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	s := New(1)
	var order []string
	s.Go("a", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, "a1")
		p.Sleep(2 * time.Millisecond)
		order = append(order, "a3")
	})
	s.Go("b", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		order = append(order, "b2")
	})
	s.Run(0)
	want := []string{"a1", "b2", "a3"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Run")
		}
	}()
	s := New(1)
	s.Go("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaboom")
	})
	s.Run(0)
}

func TestMutexExclusionAndFIFO(t *testing.T) {
	s := New(1)
	m := s.NewMutex("bkl")
	var order []string
	hold := func(name string, start, dur Time) {
		s.Go(name, func(p *Proc) {
			p.Sleep(start)
			m.Lock(p, name)
			order = append(order, name+"+")
			p.Sleep(dur)
			order = append(order, name+"-")
			m.Unlock(p)
		})
	}
	hold("a", 0, 10*time.Microsecond)
	hold("b", 1*time.Microsecond, 10*time.Microsecond)
	hold("c", 2*time.Microsecond, 10*time.Microsecond)
	s.Run(0)
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (FIFO violated)", order, want)
		}
	}
	if m.Acquisitions != 3 || m.Contentions != 2 {
		t.Fatalf("acq=%d cont=%d, want 3, 2", m.Acquisitions, m.Contentions)
	}
	if m.Held() {
		t.Fatal("mutex still held after all procs done")
	}
}

func TestMutexWaitAttribution(t *testing.T) {
	s := New(1)
	m := s.NewMutex("bkl")
	s.Go("sender", func(p *Proc) {
		m.Lock(p, "sock_sendmsg")
		p.Sleep(50 * time.Microsecond)
		m.Unlock(p)
	})
	s.Go("writer", func(p *Proc) {
		p.Sleep(time.Microsecond)
		m.Lock(p, "nfs_commit_write")
		m.Unlock(p)
	})
	s.Run(0)
	wb := m.WaitBreakdown()
	if wb["sock_sendmsg"] != 49*time.Microsecond {
		t.Fatalf("wait attributed to sock_sendmsg = %v, want 49µs", wb["sock_sendmsg"])
	}
	if m.TotalWait != 49*time.Microsecond {
		t.Fatalf("TotalWait = %v", m.TotalWait)
	}
}

func TestMutexWrongUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(1)
	m := s.NewMutex("m")
	s.Go("a", func(p *Proc) { m.Lock(p, "a"); p.Sleep(time.Second) })
	s.Go("b", func(p *Proc) { p.Sleep(time.Millisecond); m.Unlock(p) })
	s.Run(0)
}

func TestSemaphoreCapacity(t *testing.T) {
	s := New(1)
	sem := s.NewSemaphore("cpus", 2)
	var concurrent, maxConcurrent int
	for i := 0; i < 5; i++ {
		s.Go("w", func(p *Proc) {
			sem.Acquire(p)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			p.Sleep(time.Millisecond)
			concurrent--
			sem.Release()
		})
	}
	end := s.Run(0)
	if maxConcurrent != 2 {
		t.Fatalf("max concurrency = %d, want 2", maxConcurrent)
	}
	// 5 jobs of 1ms on 2 cpus: 3 rounds => 3ms.
	if end != 3*time.Millisecond {
		t.Fatalf("end = %v, want 3ms", end)
	}
}

func TestSemaphoreInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).NewSemaphore("bad", 0)
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(1)
	sem := s.NewSemaphore("s", 1)
	sem.Release()
}

func TestWaitQueueSignalAndBroadcast(t *testing.T) {
	s := New(1)
	q := s.NewWaitQueue("q")
	woken := 0
	for i := 0; i < 3; i++ {
		s.Go("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	s.Go("signaler", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Signal()
		p.Sleep(time.Millisecond)
		q.Broadcast()
	})
	s.Run(0)
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
	if q.Waiting() != 0 {
		t.Fatalf("waiting = %d, want 0", q.Waiting())
	}
}

func TestWaitQueueSignalEmpty(t *testing.T) {
	s := New(1)
	q := s.NewWaitQueue("q")
	q.Signal() // no-op
	q.Broadcast()
	s.Run(0)
}

func TestCPUPoolSerializesOnUniprocessor(t *testing.T) {
	s := New(1)
	cpu := s.NewCPUPool("cpu", 1)
	for i := 0; i < 2; i++ {
		s.Go("w", func(p *Proc) { cpu.Use(p, "work", time.Millisecond) })
	}
	end := s.Run(0)
	if end != 2*time.Millisecond {
		t.Fatalf("end = %v, want 2ms (serialized)", end)
	}
	if cpu.Busy != 2*time.Millisecond {
		t.Fatalf("busy = %v", cpu.Busy)
	}
}

func TestCPUPoolOverlapsOnSMP(t *testing.T) {
	s := New(1)
	cpu := s.NewCPUPool("cpu", 2)
	for i := 0; i < 2; i++ {
		s.Go("w", func(p *Proc) { cpu.Use(p, "work", time.Millisecond) })
	}
	end := s.Run(0)
	if end != time.Millisecond {
		t.Fatalf("end = %v, want 1ms (overlapped)", end)
	}
}

func TestCPUUseZeroIsFree(t *testing.T) {
	s := New(1)
	cpu := s.NewCPUPool("cpu", 1)
	s.Go("w", func(p *Proc) { cpu.Use(p, "noop", 0) })
	if end := s.Run(0); end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
}

func TestProfilerAccounting(t *testing.T) {
	pr := NewProfiler()
	pr.Add("a", 2*time.Microsecond)
	pr.Add("a", 3*time.Microsecond)
	pr.Add("b", 10*time.Microsecond)
	if pr.Total("a") != 5*time.Microsecond || pr.Calls("a") != 2 {
		t.Fatalf("a: %v/%d", pr.Total("a"), pr.Calls("a"))
	}
	top := pr.Top(1)
	if len(top) != 1 || top[0].Label != "b" {
		t.Fatalf("top = %+v", top)
	}
	if pr.String() == "" {
		t.Fatal("empty report")
	}
	pr.Reset()
	if pr.Total("a") != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(42)
		m := s.NewMutex("m")
		var stamps []Time
		for i := 0; i < 4; i++ {
			s.Go("p", func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(s.Rand().Intn(100)) * time.Microsecond)
					m.Lock(p, "x")
					p.Sleep(5 * time.Microsecond)
					m.Unlock(p)
					stamps = append(stamps, s.Now())
				}
			})
		}
		s.Run(0)
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestYield(t *testing.T) {
	s := New(1)
	var order []string
	s.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Go("b", func(p *Proc) { order = append(order, "b1") })
	s.Run(0)
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: a semaphore never admits more than its capacity, for random
// workloads.
func TestSemaphorePropertyNeverOversubscribed(t *testing.T) {
	f := func(seed int64, capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		n := int(nRaw%20) + 1
		s := New(seed)
		sem := s.NewSemaphore("s", capacity)
		inside, bad := 0, false
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			d := Time(rng.Intn(50)+1) * time.Microsecond
			s.Go("w", func(p *Proc) {
				sem.Acquire(p)
				inside++
				if inside > capacity {
					bad = true
				}
				p.Sleep(d)
				inside--
				sem.Release()
			})
		}
		s.Run(0)
		return !bad && s.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMutexHeldByAndRelabel(t *testing.T) {
	s := New(1)
	m := s.NewMutex("m")
	s.Go("holder", func(p *Proc) {
		m.Lock(p, "phase1")
		if !m.HeldBy(p) {
			t.Error("HeldBy false for holder")
		}
		m.Relabel(p, "phase2")
		p.Sleep(10 * time.Microsecond)
		m.Unlock(p)
		if m.HeldBy(p) {
			t.Error("HeldBy true after unlock")
		}
	})
	s.Go("waiter", func(p *Proc) {
		p.Sleep(time.Microsecond)
		m.Lock(p, "w")
		m.Unlock(p)
	})
	s.Run(0)
	// The waiter's wait must be attributed to the relabeled section.
	if m.WaitBreakdown()["phase2"] == 0 {
		t.Fatalf("wait not attributed to relabeled section: %v", m.WaitBreakdown())
	}
	if m.WaitBreakdown()["phase1"] != 0 {
		t.Fatal("wait attributed to stale label")
	}
}

func TestMutexRelabelByNonHolderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(1)
	m := s.NewMutex("m")
	s.Go("a", func(p *Proc) { m.Relabel(p, "x") })
	s.Run(0)
}

func TestCPUJitterBounded(t *testing.T) {
	s := New(7)
	cpu := s.NewCPUPool("cpu", 1)
	cpu.Jitter = 0.1
	var min, max Time
	s.Go("w", func(p *Proc) {
		for i := 0; i < 200; i++ {
			t0 := s.Now()
			cpu.Use(p, "work", 100*time.Microsecond)
			d := s.Now() - t0
			if min == 0 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
	})
	s.Run(0)
	if min < 90*time.Microsecond || max > 110*time.Microsecond {
		t.Fatalf("jitter out of bounds: [%v, %v]", min, max)
	}
	if min == max {
		t.Fatal("jitter had no effect")
	}
}
