package sim_test

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkKernelSchedule measures the raw event-queue path: schedule a
// timer, pop it, run its callback, schedule the next — no processes, no
// handoffs. This is the floor every simulated microsecond pays, so the
// CI wall-clock gate watches its ns/op.
func BenchmarkKernelSchedule(b *testing.B) {
	s := sim.New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(time.Microsecond, tick)
	b.ResetTimer()
	s.Run(0)
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkKernelFleetHandoff measures the scheduler↔process handoff at
// fleet shape: 1000 processes sleeping staggered intervals, so every
// event is a cross-goroutine baton pass (the dominant kernel cost of a
// thousand-client simulation).
func BenchmarkKernelFleetHandoff(b *testing.B) {
	const procs = 1000
	s := sim.New(1)
	each := b.N/procs + 1
	total := 0
	for i := 0; i < procs; i++ {
		d := time.Duration(i%7+1) * time.Microsecond
		s.Go("proc", func(p *sim.Proc) {
			for j := 0; j < each; j++ {
				p.Sleep(d)
				total++
			}
		})
	}
	b.ResetTimer()
	s.Run(0)
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
}
