package sim

import (
	"fmt"
	"sort"
	"strings"
)

// CPUPool models a machine's processors. Executing code costs virtual time
// while occupying one CPU slot; on a 1-CPU machine the writer thread and
// nfs_flushd serialize, on the paper's 2-CPU client they overlap. This is
// the mechanism behind §3.5's observation that "even a single writer
// thread uses more than one CPU".
type CPUPool struct {
	s    *Sim
	sem  *Semaphore
	prof *Profiler
	Busy Time // aggregate CPU time consumed across all processors

	// Jitter adds a deterministic pseudo-random factor in
	// [1-Jitter, 1+Jitter] to every execution, standing in for the cache,
	// TLB and interrupt noise real kernels exhibit (§2.2 discusses how
	// noisy Linux measurements are; a little modeled noise keeps latency
	// histograms from collapsing to single buckets).
	Jitter float64
}

// NewCPUPool returns a pool of n processors whose execution time is
// attributed to the simulation's profiler.
func (s *Sim) NewCPUPool(name string, n int) *CPUPool {
	return &CPUPool{s: s, sem: s.NewSemaphore(name, n), prof: s.prof}
}

// CPUs returns the number of processors in the pool.
func (c *CPUPool) CPUs() int { return c.sem.Capacity() }

// Use executes d of CPU work on some processor, blocking first if all
// processors are busy. The label attributes the cost in the profiler,
// mirroring the sample-driven kernel profiler the paper uses in §3.4.
func (c *CPUPool) Use(p *Proc, label string, d Time) {
	if d <= 0 {
		return
	}
	if c.Jitter > 0 {
		f := 1 + c.Jitter*(2*c.s.rng.Float64()-1)
		d = Time(float64(d) * f)
	}
	c.sem.Acquire(p)
	p.Sleep(d)
	c.sem.Release()
	c.Busy += d
	c.prof.Add(label, d)
}

// Profiler accumulates virtual CPU time per code-path label. It stands in
// for the sample-driven histogram profiler the paper used to find
// nfs_find_request / nfs_update_request (§3.4) and the lock section
// (§3.5) among the kernel's top CPU consumers.
type Profiler struct {
	byLabel map[string]Time
	calls   map[string]int
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{byLabel: make(map[string]Time), calls: make(map[string]int)}
}

// Add records d of CPU time against label.
func (pr *Profiler) Add(label string, d Time) {
	pr.byLabel[label] += d
	pr.calls[label]++
}

// Total returns the accumulated CPU time for label.
func (pr *Profiler) Total(label string) Time { return pr.byLabel[label] }

// Calls returns how many times label was recorded.
func (pr *Profiler) Calls(label string) int { return pr.calls[label] }

// Reset clears all accumulated data.
func (pr *Profiler) Reset() {
	pr.byLabel = make(map[string]Time)
	pr.calls = make(map[string]int)
}

// ProfileEntry is one row of a profile report.
type ProfileEntry struct {
	Label string
	Total Time
	Calls int
}

// Top returns the n largest CPU consumers, descending; n <= 0 means all.
func (pr *Profiler) Top(n int) []ProfileEntry {
	out := make([]ProfileEntry, 0, len(pr.byLabel))
	for l, t := range pr.byLabel {
		out = append(out, ProfileEntry{Label: l, Total: t, Calls: pr.calls[l]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// String formats the full profile as a table.
func (pr *Profiler) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %14s %10s\n", "label", "cpu time", "calls")
	for _, e := range pr.Top(0) {
		fmt.Fprintf(&b, "%-36s %14v %10d\n", e.Label, e.Total, e.Calls)
	}
	return b.String()
}
