package sim_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestProfilerTopDeterministic pins the profile report's order: Top
// sorts by (total desc, label asc), a total order, so the report is
// identical on every call even though the accumulator is a map and
// sort.Slice is unstable. Equal totals — common when the same cost
// constant is charged under different labels, and sensitive to event
// tie-breaking — must fall back to the label.
func TestProfilerTopDeterministic(t *testing.T) {
	s := sim.New(1)
	cpus := s.NewCPUPool("cpus", 2)
	// Three labels with identical totals via identical charge sequences,
	// interleaved across two procs, plus one clearly-largest label.
	s.Go("a", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			cpus.Use(p, "tie_c", 5*time.Microsecond)
			cpus.Use(p, "tie_a", 5*time.Microsecond)
			cpus.Use(p, "big", 50*time.Microsecond)
		}
	})
	s.Go("b", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			cpus.Use(p, "tie_b", 5*time.Microsecond)
		}
	})
	s.Run(0)

	first := s.Profiler().Top(0)
	if first[0].Label != "big" {
		t.Fatalf("largest consumer not first: %+v", first)
	}
	ties := first[1:]
	if want := []string{"tie_a", "tie_b", "tie_c"}; !(ties[0].Label == want[0] && ties[1].Label == want[1] && ties[2].Label == want[2]) {
		t.Fatalf("equal totals not in label order: %+v", ties)
	}
	if ties[0].Total != ties[1].Total || ties[1].Total != ties[2].Total {
		t.Fatalf("setup broken, totals differ: %+v", ties)
	}
	// Re-reading must reproduce the report bit for bit: map iteration
	// order varies run to run, the output may not.
	for i := 0; i < 32; i++ {
		if got := s.Profiler().Top(0); !reflect.DeepEqual(got, first) {
			t.Fatalf("Top changed between calls:\n%+v\nvs\n%+v", got, first)
		}
	}
}
