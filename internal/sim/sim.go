// Package sim implements a deterministic discrete-event simulation kernel.
//
// The reproduction models the Linux 2.4.4 kernel's NFS client write path as
// a set of cooperating processes (application writer threads, nfs_flushd,
// network softirq handlers, server daemons) that execute on a virtual clock.
// Exactly one process runs at a time; control is handed between the
// scheduler goroutine and process goroutines through channels, so a given
// seed and workload always produce bit-identical schedules. This is what
// lets us reproduce the paper's queueing and lock-contention phenomena
// without the run-to-run variance the authors complain about in §2.2.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time since the start of the simulation.
type Time = time.Duration

// event is a scheduled callback. Events fire in (at, seq) order, so
// same-timestamp events run in the order they were scheduled (FIFO).
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int  // heap index, -1 once popped or canceled
	dead  bool // canceled
}

// Event is a handle to a scheduled callback; it can be canceled before it
// fires (used for retransmit timers).
type Event struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil && e.ev != nil {
		e.ev.dead = true
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulation instance. It is not safe for use from
// multiple OS threads; all interaction happens from the scheduler goroutine
// or from process goroutines that the scheduler has handed control to.
type Sim struct {
	now    Time
	seq    uint64
	seed   int64
	events eventHeap
	done   chan struct{} // process -> scheduler control handoff
	rng    *rand.Rand
	prof   *Profiler
	fail   any // panic value captured from a process

	procSeq int
	live    int // live (spawned, unterminated) processes
}

// New returns a simulator with the given deterministic seed.
func New(seed int64) *Sim {
	return &Sim{
		done: make(chan struct{}),
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
		prof: NewProfiler(),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Seed returns the seed the simulator was created with. Subsystems that
// need their own random stream (e.g. the network's loss model) derive it
// from this value instead of drawing from Rand, so enabling them never
// perturbs the draw sequence other components see.
func (s *Sim) Seed() int64 { return s.seed }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Profiler returns the simulation's CPU profiler.
func (s *Sim) Profiler() *Profiler { return s.prof }

// At schedules fn to run at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Event{ev: ev}
}

// After schedules fn to run d from now.
func (s *Sim) After(d Time, fn func()) *Event { return s.At(s.now+d, fn) }

// Run executes events until the event queue is empty or the virtual clock
// would pass limit (limit <= 0 means no limit). It returns the final
// virtual time. Run panics if any process panicked, preserving the value.
func (s *Sim) Run(limit Time) Time {
	for len(s.events) > 0 {
		next := s.events[0]
		if limit > 0 && next.at > limit {
			s.now = limit
			return s.now
		}
		heap.Pop(&s.events)
		if next.dead {
			continue
		}
		s.now = next.at
		next.fn()
		if s.fail != nil {
			panic(fmt.Sprintf("sim: process panicked at t=%v: %v", s.now, s.fail))
		}
	}
	return s.now
}

// Idle reports whether no events remain.
func (s *Sim) Idle() bool { return len(s.events) == 0 }

// Live returns the number of spawned processes that have not terminated.
func (s *Sim) Live() int { return s.live }

// Proc is a simulated thread of control. Every blocking primitive takes the
// Proc so the scheduler knows which goroutine to park and resume.
type Proc struct {
	s      *Sim
	id     int
	name   string
	resume chan struct{}
	ended  bool
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator the process belongs to.
func (p *Proc) Sim() *Sim { return p.s }

// Go spawns a process that begins running at the current virtual time.
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	s.procSeq++
	s.live++
	p := &Proc{s: s, id: s.procSeq, name: name, resume: make(chan struct{})}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.fail = r
			}
			p.ended = true
			s.live--
			s.done <- struct{}{}
		}()
		<-p.resume
		fn(p)
	}()
	s.At(s.now, func() { s.dispatch(p) })
	return p
}

// dispatch hands control to p and waits for it to park or terminate.
func (s *Sim) dispatch(p *Proc) {
	if p.ended {
		return
	}
	p.resume <- struct{}{}
	<-s.done
}

// park yields control back to the scheduler until something dispatches p.
func (p *Proc) park() {
	p.s.done <- struct{}{}
	<-p.resume
}

// Sleep advances the process's virtual time by d without consuming a CPU
// (used for pure waiting: wire propagation, timers).
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		return
	}
	p.s.After(d, func() { p.s.dispatch(p) })
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// runnable process scheduled at this instant run first.
func (p *Proc) Yield() {
	p.s.After(0, func() { p.s.dispatch(p) })
	p.park()
}

// Mutex is a FIFO-fair sleeping mutex. The simulation's "big kernel lock"
// is one of these; FIFO ordering matches the 2.4 kernel's lock semantics
// closely enough for the contention phenomena under study and keeps the
// simulation deterministic.
type Mutex struct {
	s       *Sim
	name    string
	holder  *Proc
	because string // profiling label the holder supplied
	waiters []*Proc

	// Contention statistics, used to reproduce the paper's kernel-profile
	// observations (§3.5: the lock section is the 4th largest CPU consumer;
	// ~90% of write-path lock wait is attributable to sock_sendmsg).
	Acquisitions int
	Contentions  int
	TotalWait    Time
	TotalHold    Time
	waitBy       map[string]Time // wait time attributed to the holder's label
	lockedAt     Time
}

// NewMutex returns a named FIFO mutex.
func (s *Sim) NewMutex(name string) *Mutex {
	return &Mutex{s: s, name: name, waitBy: make(map[string]Time)}
}

// Name returns the mutex's diagnostic name.
func (m *Mutex) Name() string { return m.name }

// Lock acquires the mutex for p, blocking in virtual time if it is held.
// The label names the critical section for contention attribution.
func (m *Mutex) Lock(p *Proc, label string) {
	m.Acquisitions++
	if m.holder == nil {
		m.holder = p
		m.because = label
		m.lockedAt = m.s.now
		return
	}
	m.Contentions++
	blame := m.because
	t0 := m.s.now
	m.waiters = append(m.waiters, p)
	p.park()
	// Unlock made us the holder before dispatching us.
	w := m.s.now - t0
	m.TotalWait += w
	m.waitBy[blame] += w
	m.because = label
}

// Unlock releases the mutex; ownership passes FIFO to the oldest waiter.
func (m *Mutex) Unlock(p *Proc) {
	if m.holder != p {
		panic(fmt.Sprintf("sim: %s unlocked by %s, held by %v", m.name, p.name, m.holder))
	}
	m.TotalHold += m.s.now - m.lockedAt
	if len(m.waiters) == 0 {
		m.holder = nil
		m.because = ""
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.holder = next
	m.lockedAt = m.s.now
	m.s.After(0, func() { m.s.dispatch(next) })
}

// Held reports whether the mutex is currently held.
func (m *Mutex) Held() bool { return m.holder != nil }

// HeldBy reports whether p currently holds the mutex.
func (m *Mutex) HeldBy(p *Proc) bool { return m.holder == p }

// Relabel renames the critical section p is executing while holding the
// mutex, so contention is attributed to the right code path (e.g. the
// send path relabels to "sock_sendmsg" for the duration of the network
// call).
func (m *Mutex) Relabel(p *Proc, label string) {
	if m.holder != p {
		panic(fmt.Sprintf("sim: %s relabeled by %s, held by %v", m.name, p.name, m.holder))
	}
	m.because = label
}

// WaitBreakdown returns, per critical-section label, the total time other
// processes spent waiting while that label held the mutex.
func (m *Mutex) WaitBreakdown() map[string]Time {
	out := make(map[string]Time, len(m.waitBy))
	for k, v := range m.waitBy {
		out[k] = v
	}
	return out
}

// Semaphore is a counting semaphore with FIFO wakeup; a capacity-k
// semaphore models a k-CPU machine.
type Semaphore struct {
	s       *Sim
	name    string
	free    int
	cap     int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with the given capacity.
func (s *Sim) NewSemaphore(name string, capacity int) *Semaphore {
	if capacity < 1 {
		panic("sim: semaphore capacity must be >= 1")
	}
	return &Semaphore{s: s, name: name, free: capacity, cap: capacity}
}

// Capacity returns the semaphore's capacity.
func (sem *Semaphore) Capacity() int { return sem.cap }

// Acquire takes one unit, blocking in virtual time if none are free.
func (sem *Semaphore) Acquire(p *Proc) {
	if sem.free > 0 {
		sem.free--
		return
	}
	sem.waiters = append(sem.waiters, p)
	p.park()
}

// Release returns one unit, waking the oldest waiter if any.
func (sem *Semaphore) Release() {
	if len(sem.waiters) > 0 {
		next := sem.waiters[0]
		sem.waiters = sem.waiters[1:]
		sem.s.After(0, func() { sem.s.dispatch(next) })
		return
	}
	sem.free++
	if sem.free > sem.cap {
		panic("sim: semaphore over-released")
	}
}

// WaitQueue parks processes until they are signaled, like the kernel's
// wait_event/wake_up pairs. Callers must re-check their predicate after
// Wait returns (standard condition-variable discipline).
type WaitQueue struct {
	s       *Sim
	name    string
	waiters []*Proc
}

// NewWaitQueue returns a named wait queue.
func (s *Sim) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{s: s, name: name}
}

// Wait parks p until Signal or Broadcast wakes it.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.park()
}

// Signal wakes the oldest waiter, if any.
func (q *WaitQueue) Signal() {
	if len(q.waiters) == 0 {
		return
	}
	next := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.s.After(0, func() { q.s.dispatch(next) })
}

// Broadcast wakes every waiter.
func (q *WaitQueue) Broadcast() {
	ws := q.waiters
	q.waiters = nil
	for _, p := range ws {
		p := p
		q.s.After(0, func() { q.s.dispatch(p) })
	}
}

// Waiting returns the number of parked processes.
func (q *WaitQueue) Waiting() int { return len(q.waiters) }
