// Package sim implements a deterministic discrete-event simulation kernel.
//
// The reproduction models the Linux 2.4.4 kernel's NFS client write path as
// a set of cooperating processes (application writer threads, nfs_flushd,
// network softirq handlers, server daemons) that execute on a virtual clock.
// Exactly one process runs at a time; control is handed between goroutines
// through a single "baton" so a given seed and workload always produce
// bit-identical schedules. This is what lets us reproduce the paper's
// queueing and lock-contention phenomena without the run-to-run variance
// the authors complain about in §2.2.
//
// The kernel is built for thousand-client fleets (DESIGN.md §12): events
// live in a pooled 4-ary heap keyed on (time, sequence) so same-timestamp
// events fire in scheduling order, process wakeups are heap entries rather
// than closures, and the event loop itself migrates to whichever process
// goroutine parks — a process whose own wakeup is the next event resumes
// without touching a channel at all.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time since the start of the simulation.
type Time = time.Duration

// event is a scheduled callback or process wakeup. Events fire in
// (at, seq) order, so same-timestamp events run in the order they were
// scheduled (FIFO). Fired and canceled events return to the simulator's
// pool; gen distinguishes a recycled event from the scheduling an Event
// handle refers to.
type event struct {
	at   Time
	seq  uint64
	gen  uint32
	dead bool  // canceled
	proc *Proc // wakeup target; nil for callback events
	fn   func()
}

// Event is a handle to a scheduled callback; it can be canceled before it
// fires (used for retransmit timers). The zero value is a valid no-op
// handle.
type Event struct {
	ev  *event
	gen uint32
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op (the underlying entry has been
// recycled under a new generation by then).
func (e Event) Cancel() {
	if e.ev != nil && e.ev.gen == e.gen {
		e.ev.dead = true
	}
}

// eventQueue is a 4-ary min-heap on (at, seq). Four-way fanout halves the
// tree depth of a binary heap and keeps sibling comparisons inside one
// cache line of pointers, and the hand-rolled sift paths avoid
// container/heap's interface boxing on every operation.
type eventQueue []*event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(ev *event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	*q = h
}

func (q *eventQueue) pop() *event {
	h := *q
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		min := h[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], min) {
				min = h[j]
				c = j
			}
		}
		// c now indexes the smallest child; walk last down past it.
		if !eventLess(min, last) {
			break
		}
		h[i] = min
		i = c
	}
	h[i] = last
	return top
}

// eventBlock is how many events one pool refill allocates: a single
// backing array keeps pooled events cache-adjacent.
const eventBlock = 128

// Sim is a discrete-event simulation instance. It is not safe for use from
// multiple OS threads; all interaction happens from the goroutine that
// currently holds the scheduling baton (the Run caller or a process the
// kernel handed control to).
type Sim struct {
	now    Time
	seq    uint64
	seed   int64
	events eventQueue
	pool   []*event // recycled event entries
	limit  Time     // current Run's time limit (0 = none)
	rng    *rand.Rand
	prof   *Profiler
	fail   any // panic value captured from a process

	// mainWake returns the baton to the Run caller when the queue drains,
	// the limit is reached, or a process panics.
	mainWake chan struct{}

	procSeq int
	live    int // live (spawned, unterminated) processes
}

// New returns a simulator with the given deterministic seed.
func New(seed int64) *Sim {
	return &Sim{
		mainWake: make(chan struct{}),
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		prof:     NewProfiler(),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Seed returns the seed the simulator was created with. Subsystems that
// need their own random stream (e.g. the network's loss model) derive it
// from this value instead of drawing from Rand, so enabling them never
// perturbs the draw sequence other components see.
func (s *Sim) Seed() int64 { return s.seed }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Profiler returns the simulation's CPU profiler.
func (s *Sim) Profiler() *Profiler { return s.prof }

// alloc takes an event from the pool, refilling it in blocks.
func (s *Sim) alloc() *event {
	if len(s.pool) == 0 {
		block := make([]event, eventBlock)
		for i := range block {
			s.pool = append(s.pool, &block[i])
		}
	}
	ev := s.pool[len(s.pool)-1]
	s.pool = s.pool[:len(s.pool)-1]
	return ev
}

// recycle returns a popped event to the pool under a new generation, so
// stale Event handles can no longer cancel it.
func (s *Sim) recycle(ev *event) {
	ev.gen++
	ev.dead = false
	ev.proc = nil
	ev.fn = nil
	s.pool = append(s.pool, ev)
}

// At schedules fn to run at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) Event {
	if t < s.now {
		t = s.now
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn = t, s.seq, fn
	s.seq++
	s.events.push(ev)
	return Event{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (s *Sim) After(d Time, fn func()) Event { return s.At(s.now+d, fn) }

// wake schedules a process wakeup at absolute time t — the allocation-free
// fast path behind Sleep, Yield, and every unpark.
func (s *Sim) wake(t Time, p *Proc) {
	if t < s.now {
		t = s.now
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.proc = t, s.seq, p
	s.seq++
	s.events.push(ev)
}

// schedule runs the event loop on the calling goroutine: it pops and
// executes events until control must transfer to a process goroutine
// (returning that process), or until the queue drains, the limit is
// reached, or a process has panicked (returning nil, meaning the baton
// goes back to the Run caller).
func (s *Sim) schedule() *Proc {
	for len(s.events) > 0 {
		next := s.events[0]
		if s.limit > 0 && next.at > s.limit {
			s.now = s.limit
			return nil
		}
		s.events.pop()
		if next.dead {
			s.recycle(next)
			continue
		}
		s.now = next.at
		p, fn := next.proc, next.fn
		s.recycle(next)
		if p != nil {
			if p.ended {
				continue
			}
			return p
		}
		fn()
		if s.fail != nil {
			return nil
		}
	}
	return nil
}

// handoff passes the baton: to a process goroutine, or back to the Run
// caller when next is nil.
func (s *Sim) handoff(next *Proc) {
	if next != nil {
		next.resume <- struct{}{}
	} else {
		s.mainWake <- struct{}{}
	}
}

// Run executes events until the event queue is empty or the virtual clock
// would pass limit (limit <= 0 means no limit). It returns the final
// virtual time. Run panics if any process panicked, preserving the value.
func (s *Sim) Run(limit Time) Time {
	s.limit = limit
	for {
		next := s.schedule()
		if next == nil {
			if s.fail != nil {
				panic(fmt.Sprintf("sim: process panicked at t=%v: %v", s.now, s.fail))
			}
			return s.now
		}
		next.resume <- struct{}{}
		<-s.mainWake
		if s.fail != nil {
			panic(fmt.Sprintf("sim: process panicked at t=%v: %v", s.now, s.fail))
		}
	}
}

// Idle reports whether no events remain.
func (s *Sim) Idle() bool { return len(s.events) == 0 }

// Live returns the number of spawned processes that have not terminated.
func (s *Sim) Live() int { return s.live }

// Proc is a simulated thread of control. Every blocking primitive takes the
// Proc so the scheduler knows which goroutine to park and resume.
type Proc struct {
	s      *Sim
	id     int
	name   string
	resume chan struct{}
	ended  bool
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator the process belongs to.
func (p *Proc) Sim() *Sim { return p.s }

// Go spawns a process that begins running at the current virtual time.
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	s.procSeq++
	s.live++
	p := &Proc{s: s, id: s.procSeq, name: name, resume: make(chan struct{})}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.fail = r
			}
			p.ended = true
			s.live--
			var next *Proc
			if s.fail == nil {
				// Keep driving the event loop from the dying goroutine;
				// a panic in a callback here must still reach Run.
				func() {
					defer func() {
						if r := recover(); r != nil {
							s.fail = r
						}
					}()
					next = s.schedule()
				}()
				if s.fail != nil {
					next = nil
				}
			}
			s.handoff(next)
		}()
		<-p.resume
		fn(p)
	}()
	s.wake(s.now, p)
	return p
}

// park yields control until something schedules a wakeup for p. The
// parking goroutine itself runs the event loop: when p's own wakeup is the
// next transfer of control — the common case for a process sleeping
// through its service time — it simply returns, with no channel traffic.
func (p *Proc) park() {
	next := p.s.schedule()
	if next == p {
		return
	}
	p.s.handoff(next)
	<-p.resume
}

// Sleep advances the process's virtual time by d without consuming a CPU
// (used for pure waiting: wire propagation, timers).
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		return
	}
	p.s.wake(p.s.now+d, p)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// runnable process scheduled at this instant run first.
func (p *Proc) Yield() {
	p.s.wake(p.s.now, p)
	p.park()
}

// popWaiter removes and returns the oldest waiter, shifting in place so
// the backing array is reused instead of re-allocated by later appends.
func popWaiter(ws *[]*Proc) *Proc {
	old := *ws
	next := old[0]
	n := copy(old, old[1:])
	old[n] = nil
	*ws = old[:n]
	return next
}

// Mutex is a FIFO-fair sleeping mutex. The simulation's "big kernel lock"
// is one of these; FIFO ordering matches the 2.4 kernel's lock semantics
// closely enough for the contention phenomena under study and keeps the
// simulation deterministic.
type Mutex struct {
	s       *Sim
	name    string
	holder  *Proc
	because string // profiling label the holder supplied
	waiters []*Proc

	// Contention statistics, used to reproduce the paper's kernel-profile
	// observations (§3.5: the lock section is the 4th largest CPU consumer;
	// ~90% of write-path lock wait is attributable to sock_sendmsg).
	Acquisitions int
	Contentions  int
	TotalWait    Time
	TotalHold    Time
	waitBy       map[string]Time // wait time attributed to the holder's label
	lockedAt     Time
}

// NewMutex returns a named FIFO mutex.
func (s *Sim) NewMutex(name string) *Mutex {
	return &Mutex{s: s, name: name, waitBy: make(map[string]Time)}
}

// Name returns the mutex's diagnostic name.
func (m *Mutex) Name() string { return m.name }

// Lock acquires the mutex for p, blocking in virtual time if it is held.
// The label names the critical section for contention attribution.
func (m *Mutex) Lock(p *Proc, label string) {
	m.Acquisitions++
	if m.holder == nil {
		m.holder = p
		m.because = label
		m.lockedAt = m.s.now
		return
	}
	m.Contentions++
	blame := m.because
	t0 := m.s.now
	m.waiters = append(m.waiters, p)
	p.park()
	// Unlock made us the holder before dispatching us.
	w := m.s.now - t0
	m.TotalWait += w
	m.waitBy[blame] += w
	m.because = label
}

// Unlock releases the mutex; ownership passes FIFO to the oldest waiter.
func (m *Mutex) Unlock(p *Proc) {
	if m.holder != p {
		panic(fmt.Sprintf("sim: %s unlocked by %s, held by %v", m.name, p.name, m.holder))
	}
	m.TotalHold += m.s.now - m.lockedAt
	if len(m.waiters) == 0 {
		m.holder = nil
		m.because = ""
		return
	}
	next := popWaiter(&m.waiters)
	m.holder = next
	m.lockedAt = m.s.now
	m.s.wake(m.s.now, next)
}

// Held reports whether the mutex is currently held.
func (m *Mutex) Held() bool { return m.holder != nil }

// HeldBy reports whether p currently holds the mutex.
func (m *Mutex) HeldBy(p *Proc) bool { return m.holder == p }

// Relabel renames the critical section p is executing while holding the
// mutex, so contention is attributed to the right code path (e.g. the
// send path relabels to "sock_sendmsg" for the duration of the network
// call).
func (m *Mutex) Relabel(p *Proc, label string) {
	if m.holder != p {
		panic(fmt.Sprintf("sim: %s relabeled by %s, held by %v", m.name, p.name, m.holder))
	}
	m.because = label
}

// WaitBreakdown returns, per critical-section label, the total time other
// processes spent waiting while that label held the mutex.
func (m *Mutex) WaitBreakdown() map[string]Time {
	out := make(map[string]Time, len(m.waitBy))
	for k, v := range m.waitBy {
		out[k] = v
	}
	return out
}

// Semaphore is a counting semaphore with FIFO wakeup; a capacity-k
// semaphore models a k-CPU machine.
type Semaphore struct {
	s       *Sim
	name    string
	free    int
	cap     int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with the given capacity.
func (s *Sim) NewSemaphore(name string, capacity int) *Semaphore {
	if capacity < 1 {
		panic("sim: semaphore capacity must be >= 1")
	}
	return &Semaphore{s: s, name: name, free: capacity, cap: capacity}
}

// Capacity returns the semaphore's capacity.
func (sem *Semaphore) Capacity() int { return sem.cap }

// Acquire takes one unit, blocking in virtual time if none are free.
func (sem *Semaphore) Acquire(p *Proc) {
	if sem.free > 0 {
		sem.free--
		return
	}
	sem.waiters = append(sem.waiters, p)
	p.park()
}

// Release returns one unit, waking the oldest waiter if any.
func (sem *Semaphore) Release() {
	if len(sem.waiters) > 0 {
		next := popWaiter(&sem.waiters)
		sem.s.wake(sem.s.now, next)
		return
	}
	sem.free++
	if sem.free > sem.cap {
		panic("sim: semaphore over-released")
	}
}

// WaitQueue parks processes until they are signaled, like the kernel's
// wait_event/wake_up pairs. Callers must re-check their predicate after
// Wait returns (standard condition-variable discipline).
type WaitQueue struct {
	s       *Sim
	name    string
	waiters []*Proc
}

// NewWaitQueue returns a named wait queue.
func (s *Sim) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{s: s, name: name}
}

// Wait parks p until Signal or Broadcast wakes it.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.park()
}

// Signal wakes the oldest waiter, if any.
func (q *WaitQueue) Signal() {
	if len(q.waiters) == 0 {
		return
	}
	next := popWaiter(&q.waiters)
	q.s.wake(q.s.now, next)
}

// Broadcast wakes every waiter.
func (q *WaitQueue) Broadcast() {
	ws := q.waiters
	q.waiters = nil
	for _, p := range ws {
		q.s.wake(q.s.now, p)
	}
}

// Waiting returns the number of parked processes.
func (q *WaitQueue) Waiting() int { return len(q.waiters) }
