// Package streamsim is a TCP-style reliable byte-stream transport layered
// on netsim, built for the lossy-network scenarios the paper motivates:
// NFS over UDP loses a whole 8 KB WRITE when one 1500-byte fragment is
// dropped and then stalls on a fixed retransmit timer, while a stream
// transport sends MTU-sized segments that each fit in a single IP
// fragment, retransmits only what was lost, and adapts its timeout to the
// measured round-trip time.
//
// An Endpoint is one side of an established connection (no handshake is
// modeled; both sides start at sequence 0). It carries record-marked
// messages — each record is prefixed with a 4-byte length, as RPC over
// TCP frames calls (RFC 1831 §10) — and implements:
//
//   - segmentation at the connection MSS, so segments never fragment;
//   - cumulative acknowledgements, with out-of-order segment buffering;
//   - Jacobson RTT estimation (SRTT/RTTVAR) driving the RTO;
//   - Karn's algorithm: no RTT samples from retransmitted segments, and
//     exponential RTO backoff on timeout;
//   - fast retransmit after three duplicate ACKs, so an isolated loss in
//     a busy stream recovers in about a round trip instead of an RTO.
//
// Endpoints run entirely in event context on the virtual clock: sending
// never blocks, and delivery happens through the onRecord callback. CPU
// costs are charged by the layers above (rpcsim, server), not here —
// exactly as netsim leaves sock_sendmsg accounting to its callers.
package streamsim

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Segment header layout: flags (4 bytes), seq (8), ack (8), then payload.
// Close to a real 20-byte TCP header, so wire sizes stay honest.
const HeaderSize = 20

const flagAck = 1 // pure acknowledgement, no payload

// Config holds the stream transport's tuning knobs.
type Config struct {
	// MSS is the maximum data bytes per segment. DefaultConfig sizes it
	// so header + MSS + UDP/IP framing exactly fills one MTU.
	MSS int
	// InitialRTO applies until the first RTT sample (RFC 6298 uses 1 s).
	InitialRTO sim.Time
	// MinRTO / MaxRTO clamp the computed RTO (Linux: 200 ms / 120 s).
	MinRTO sim.Time
	MaxRTO sim.Time
	// DupAckThreshold triggers fast retransmit (classically 3).
	DupAckThreshold int
}

// MSSForMTU returns the largest segment payload that fits in one fragment
// at the given MTU, accounting for the stream header and netsim's UDP/IP
// framing.
func MSSForMTU(mtu int) int {
	return mtu - netsim.IPHeader - netsim.UDPHeader - HeaderSize
}

// DefaultConfig returns the calibrated stream config for a path MTU.
func DefaultConfig(mtu int) Config {
	return Config{
		MSS:             MSSForMTU(mtu),
		InitialRTO:      time.Second,
		MinRTO:          200 * time.Millisecond,
		MaxRTO:          60 * time.Second,
		DupAckThreshold: 3,
	}
}

// SegmentCount returns how many MSS-sized segments n stream bytes need.
func SegmentCount(n, mss int) int {
	if n <= 0 {
		return 1
	}
	return (n + mss - 1) / mss
}

// Stats counts one endpoint's activity.
type Stats struct {
	SegmentsSent     int64
	SegmentsRecv     int64
	AcksSent         int64
	Retransmits      int64 // all data retransmissions (timeout + fast)
	FastRetransmits  int64
	Timeouts         int64
	RecordsSent      int64
	RecordsDelivered int64
	WireBytes        int64 // total on-the-wire bytes sent, framing included
	RTTSamples       int64
}

// Endpoint is one side of a reliable stream connection. The owner routes
// datagrams arriving at the local host into HandleDatagram (endpoints do
// not install netsim handlers themselves, so a server can demultiplex
// many connections on one host).
type Endpoint struct {
	s        *sim.Sim
	net      *netsim.Network
	cfg      Config
	local    string
	remote   string
	onRecord func([]byte)

	// Sender state. sndBuf holds the unacknowledged window: byte i of
	// sndBuf is stream sequence sndUna+i. segs records the original
	// segment cuts of the window, front first: retransmissions must
	// reproduce those cuts exactly, because the receiver's out-of-order
	// buffer is keyed by segment start sequence — a retransmission that
	// re-sliced the stream (e.g. a short record-tail segment regrown to
	// a full MSS once more data was queued) would land mid-boundary and
	// wedge reassembly.
	sndBuf   []byte
	segs     []sndSeg
	sndUna   int64
	sndNxt   int64
	rtxTimer sim.Event
	rto      sim.Time
	srtt     sim.Time
	rttvar   sim.Time
	hasSRTT  bool
	backoff  uint

	// Karn timing: one segment is timed at a time; any retransmission
	// invalidates the sample.
	timedEnd   int64
	timedAt    sim.Time
	timedValid bool

	dupAcks int

	// Receiver state.
	rcvNxt int64
	ooo    map[int64][]byte // out-of-order segments keyed by start seq
	asm    []byte           // contiguous bytes not yet parsed into records

	stats Stats
}

// sndSeg is one transmitted-but-unacknowledged segment.
type sndSeg struct {
	seq int64
	n   int
}

// NewEndpoint creates one side of a connection between local and remote.
// Complete records arriving from the peer are handed to onRecord in event
// context.
func NewEndpoint(s *sim.Sim, net *netsim.Network, cfg Config, local, remote string, onRecord func([]byte)) *Endpoint {
	if cfg.MSS < 1 {
		panic("streamsim: MSS must be positive")
	}
	if cfg.InitialRTO <= 0 || cfg.MinRTO <= 0 || cfg.MaxRTO < cfg.MinRTO {
		panic("streamsim: bad RTO bounds")
	}
	if cfg.DupAckThreshold < 1 {
		panic("streamsim: DupAckThreshold must be positive")
	}
	return &Endpoint{
		s: s, net: net, cfg: cfg, local: local, remote: remote,
		onRecord: onRecord,
		rto:      cfg.InitialRTO,
		ooo:      make(map[int64][]byte),
	}
}

// Stats returns a copy of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Outstanding returns the number of sent-but-unacknowledged stream bytes.
func (e *Endpoint) Outstanding() int64 { return e.sndNxt - e.sndUna }

// RTO returns the current (backed-off) retransmission timeout.
func (e *Endpoint) RTO() sim.Time { return e.curRTO() }

// SendRecord queues one record (4-byte length mark + payload) on the
// stream and transmits every new segment immediately. It returns the
// number of segments generated, so callers can charge per-segment CPU.
func (e *Endpoint) SendRecord(rec []byte) int {
	var mark [4]byte
	binary.BigEndian.PutUint32(mark[:], uint32(len(rec)))
	e.sndBuf = append(e.sndBuf, mark[:]...)
	e.sndBuf = append(e.sndBuf, rec...)
	e.stats.RecordsSent++
	sent := 0
	for end := e.sndUna + int64(len(e.sndBuf)); e.sndNxt < end; {
		n := int(end - e.sndNxt)
		if n > e.cfg.MSS {
			n = e.cfg.MSS
		}
		e.segs = append(e.segs, sndSeg{seq: e.sndNxt, n: n})
		e.sendSegment(e.sndNxt, n, false)
		e.sndNxt += int64(n)
		sent++
	}
	return sent
}

// sendSegment transmits stream bytes [seq, seq+n) (or a pure ACK when
// n == 0) and manages the Karn timing state and the retransmit timer.
func (e *Endpoint) sendSegment(seq int64, n int, isRtx bool) {
	payload := make([]byte, HeaderSize+n)
	var flags uint32
	if n == 0 {
		flags = flagAck
	}
	binary.BigEndian.PutUint32(payload[0:4], flags)
	binary.BigEndian.PutUint64(payload[4:12], uint64(seq))
	binary.BigEndian.PutUint64(payload[12:20], uint64(e.rcvNxt))
	if n > 0 {
		copy(payload[HeaderSize:], e.sndBuf[seq-e.sndUna:seq-e.sndUna+int64(n)])
	}
	res := e.net.Send(netsim.Datagram{From: e.local, To: e.remote, Payload: payload})
	e.stats.WireBytes += res.WireBytes
	if n == 0 {
		e.stats.AcksSent++
		return
	}
	e.stats.SegmentsSent++
	if isRtx {
		e.stats.Retransmits++
		// Karn: an ACK covering a retransmitted range is ambiguous.
		e.timedValid = false
	} else if !e.timedValid {
		e.timedEnd = seq + int64(n)
		e.timedAt = e.s.Now()
		e.timedValid = true
	}
	if e.rtxTimer == (sim.Event{}) {
		e.armTimer()
	}
}

func (e *Endpoint) curRTO() sim.Time {
	rto := e.rto << e.backoff
	if rto > e.cfg.MaxRTO || rto < e.rto { // clamp, guard shift overflow
		rto = e.cfg.MaxRTO
	}
	return rto
}

func (e *Endpoint) armTimer() {
	e.rtxTimer = e.s.After(e.curRTO(), e.onTimeout)
}

func (e *Endpoint) stopTimer() {
	if e.rtxTimer != (sim.Event{}) {
		e.rtxTimer.Cancel()
		e.rtxTimer = sim.Event{}
	}
}

// onTimeout retransmits the oldest unacknowledged segment and backs the
// RTO off exponentially (Karn's second rule). The retransmission itself
// re-arms the timer (sendSegment arms whenever none is pending), at the
// backed-off RTO.
func (e *Endpoint) onTimeout() {
	e.rtxTimer = sim.Event{}
	if e.sndUna >= e.sndNxt {
		return // everything acked while the timer was in flight
	}
	e.stats.Timeouts++
	e.backoff++
	e.dupAcks = 0
	e.retransmitFront()
}

// retransmitFront resends the oldest unacknowledged segment with its
// original cut.
func (e *Endpoint) retransmitFront() {
	if len(e.segs) == 0 {
		return
	}
	front := e.segs[0]
	e.sendSegment(front.seq, front.n, true)
}

// sampleRTT folds one measurement into SRTT/RTTVAR (RFC 6298 §2).
func (e *Endpoint) sampleRTT(r sim.Time) {
	e.stats.RTTSamples++
	if !e.hasSRTT {
		e.srtt = r
		e.rttvar = r / 2
		e.hasSRTT = true
	} else {
		d := e.srtt - r
		if d < 0 {
			d = -d
		}
		e.rttvar = (3*e.rttvar + d) / 4
		e.srtt = (7*e.srtt + r) / 8
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	e.rto = rto
}

// HandleDatagram processes one segment arriving at the local host. The
// owner's netsim handler must route datagrams from the peer here.
func (e *Endpoint) HandleDatagram(payload []byte) {
	if len(payload) < HeaderSize {
		panic(fmt.Sprintf("streamsim %s<-%s: short segment (%d bytes)", e.local, e.remote, len(payload)))
	}
	flags := binary.BigEndian.Uint32(payload[0:4])
	seq := int64(binary.BigEndian.Uint64(payload[4:12]))
	ack := int64(binary.BigEndian.Uint64(payload[12:20]))
	data := payload[HeaderSize:]
	e.stats.SegmentsRecv++

	e.handleAck(ack, flags&flagAck != 0 && len(data) == 0)
	if len(data) > 0 {
		e.acceptData(seq, data)
		// Acknowledge every data segment immediately; duplicate ACKs are
		// what lets the peer fast-retransmit.
		e.sendSegment(0, 0, false)
	}
}

// handleAck advances the send window and runs fast retransmit.
func (e *Endpoint) handleAck(ack int64, pure bool) {
	switch {
	case ack > e.sndUna:
		if e.timedValid && ack >= e.timedEnd {
			e.sampleRTT(e.s.Now() - e.timedAt)
			e.timedValid = false
		}
		e.sndBuf = e.sndBuf[ack-e.sndUna:]
		e.sndUna = ack
		for len(e.segs) > 0 && e.segs[0].seq+int64(e.segs[0].n) <= ack {
			e.segs = e.segs[1:]
		}
		e.dupAcks = 0
		e.backoff = 0
		e.stopTimer()
		if e.sndUna < e.sndNxt {
			e.armTimer()
		}
	case pure && ack == e.sndUna && e.sndUna < e.sndNxt:
		// Duplicate ACK with data outstanding: the peer is receiving
		// segments beyond a hole.
		e.dupAcks++
		if e.dupAcks == e.cfg.DupAckThreshold {
			e.stats.FastRetransmits++
			e.retransmitFront()
		}
	}
}

// acceptData integrates one data segment into the receive stream.
func (e *Endpoint) acceptData(seq int64, data []byte) {
	switch {
	case seq == e.rcvNxt:
		e.asm = append(e.asm, data...)
		e.rcvNxt += int64(len(data))
		for {
			next, ok := e.ooo[e.rcvNxt]
			if !ok {
				break
			}
			delete(e.ooo, e.rcvNxt)
			e.asm = append(e.asm, next...)
			e.rcvNxt += int64(len(next))
		}
		e.parseRecords()
	case seq > e.rcvNxt:
		if _, dup := e.ooo[seq]; !dup {
			buf := make([]byte, len(data))
			copy(buf, data)
			e.ooo[seq] = buf
		}
	}
	// seq < rcvNxt: spurious retransmission of delivered data; drop.
}

// parseRecords delivers every complete record sitting in the assembly
// buffer.
func (e *Endpoint) parseRecords() {
	for len(e.asm) >= 4 {
		n := int(binary.BigEndian.Uint32(e.asm[0:4]))
		if len(e.asm) < 4+n {
			return
		}
		rec := make([]byte, n)
		copy(rec, e.asm[4:4+n])
		e.asm = e.asm[4+n:]
		e.stats.RecordsDelivered++
		if e.onRecord != nil {
			e.onRecord(rec)
		}
	}
}
