package streamsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// pair wires two endpoints over a gigabit switch and routes datagrams
// between them.
type pair struct {
	s    *sim.Sim
	net  *netsim.Network
	a, b *Endpoint
	// recvA / recvB collect records delivered to each side.
	recvA, recvB [][]byte
}

func newPair(seed int64, loss netsim.LossConfig) *pair {
	s := sim.New(seed)
	n := netsim.New(s)
	cfg := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 20 * time.Microsecond, MTU: netsim.MTUEthernet}
	n.AddHost("a", cfg, nil)
	n.AddHost("b", cfg, nil)
	if loss.Rate > 0 || loss.DelayJitter > 0 {
		n.SetLoss(loss)
	}
	p := &pair{s: s, net: n}
	p.a = NewEndpoint(s, n, DefaultConfig(netsim.MTUEthernet), "a", "b",
		func(rec []byte) { p.recvA = append(p.recvA, rec) })
	p.b = NewEndpoint(s, n, DefaultConfig(netsim.MTUEthernet), "b", "a",
		func(rec []byte) { p.recvB = append(p.recvB, rec) })
	n.SetHandler("a", func(dg netsim.Datagram) { p.a.HandleDatagram(dg.Payload) })
	n.SetHandler("b", func(dg netsim.Datagram) { p.b.HandleDatagram(dg.Payload) })
	return p
}

func record(i, size int) []byte {
	rec := make([]byte, size)
	for j := range rec {
		rec[j] = byte(i + j)
	}
	return rec
}

func TestRecordRoundTrip(t *testing.T) {
	p := newPair(1, netsim.LossConfig{})
	small := record(1, 100)
	big := record(2, 8300) // an 8 KB WRITE: spans 6 segments
	if n := p.a.SendRecord(small); n != 1 {
		t.Fatalf("small record took %d segments", n)
	}
	if n := p.a.SendRecord(big); n != SegmentCount(8304, MSSForMTU(netsim.MTUEthernet)) {
		t.Fatalf("big record took %d segments", n)
	}
	p.s.Run(time.Second)
	if len(p.recvB) != 2 {
		t.Fatalf("delivered %d records, want 2", len(p.recvB))
	}
	if !bytes.Equal(p.recvB[0], small) || !bytes.Equal(p.recvB[1], big) {
		t.Fatal("records corrupted in transit")
	}
	if p.a.Outstanding() != 0 {
		t.Fatalf("%d bytes still unacked after drain", p.a.Outstanding())
	}
	if st := p.a.Stats(); st.Retransmits != 0 || st.RTTSamples == 0 {
		t.Fatalf("lossless stats: %+v", st)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	p := newPair(2, netsim.LossConfig{})
	for i := 0; i < 20; i++ {
		p.a.SendRecord(record(i, 500+i*37))
		p.b.SendRecord(record(100+i, 900+i*11))
	}
	p.s.Run(time.Second)
	if len(p.recvA) != 20 || len(p.recvB) != 20 {
		t.Fatalf("delivered %d/%d records, want 20/20", len(p.recvA), len(p.recvB))
	}
}

// The core reliability property: every record arrives intact, in order,
// exactly once, under heavy fragment loss in both directions.
func TestLossyDeliveryReliable(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := newPair(seed, netsim.LossConfig{Rate: 0.05})
		const records = 40
		var want [][]byte
		for i := 0; i < records; i++ {
			rec := record(i, 2000+i*301)
			want = append(want, rec)
			p.a.SendRecord(rec)
		}
		p.s.Run(10 * time.Minute)
		if len(p.recvB) != records {
			t.Fatalf("seed %d: delivered %d records, want %d", seed, len(p.recvB), records)
		}
		for i, rec := range p.recvB {
			if !bytes.Equal(rec, want[i]) {
				t.Fatalf("seed %d: record %d corrupted or reordered", seed, i)
			}
		}
		st := p.a.Stats()
		if st.Retransmits == 0 {
			t.Fatalf("seed %d: no retransmissions at 5%% loss", seed)
		}
		if p.a.Outstanding() != 0 {
			t.Fatalf("seed %d: %d bytes unacked at end", seed, p.a.Outstanding())
		}
	}
}

// Retransmissions must reproduce the original segment cuts: a short
// record-tail segment stays short even when later data was queued after
// it (regression for a reassembly wedge).
func TestRetransmitPreservesSegmentBoundaries(t *testing.T) {
	p := newPair(7, netsim.LossConfig{Rate: 0.15})
	// Records sized so the stream is full of partial tail segments.
	const records = 60
	for i := 0; i < records; i++ {
		p.a.SendRecord(record(i, 1500))
	}
	p.s.Run(10 * time.Minute)
	if len(p.recvB) != records {
		t.Fatalf("delivered %d records, want %d", len(p.recvB), records)
	}
}

// Fast retransmit: with a busy stream, an isolated loss should usually
// recover via duplicate ACKs rather than a timeout stall.
func TestFastRetransmitEngages(t *testing.T) {
	p := newPair(11, netsim.LossConfig{Rate: 0.02})
	for i := 0; i < 100; i++ {
		p.a.SendRecord(record(i, 8300))
	}
	end := p.s.Run(10 * time.Minute)
	if len(p.recvB) != 100 {
		t.Fatalf("delivered %d records", len(p.recvB))
	}
	st := p.a.Stats()
	if st.FastRetransmits == 0 {
		t.Fatalf("no fast retransmits in a busy lossy stream: %+v", st)
	}
	// A mostly-fast-recovering stream finishes far quicker than one RTO
	// per loss would allow.
	if end > 30*time.Second {
		t.Fatalf("transfer took %v; fast retransmit not effective", end)
	}
}

// Karn: RTO backs off exponentially while retransmissions fail, and RTT
// samples are never taken from retransmitted segments.
func TestRTOBackoffUnderBlackout(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s)
	cfg := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 20 * time.Microsecond, MTU: netsim.MTUEthernet}
	n.AddHost("a", cfg, nil)
	n.AddHost("b", cfg, func(netsim.Datagram) {}) // black hole: no endpoint, no acks
	ep := NewEndpoint(s, n, DefaultConfig(netsim.MTUEthernet), "a", "b", nil)
	ep.SendRecord(record(1, 100))
	s.Run(10 * time.Second)
	st := ep.Stats()
	// 10 s of blackout with MinRTO 200 ms and doubling: 200ms, 400, 800,
	// 1.6s, 3.2s ... -> about 5 timeouts, far fewer than the 50 a fixed
	// 200 ms timer would fire.
	if st.Timeouts < 3 || st.Timeouts > 10 {
		t.Fatalf("timeouts = %d, want exponential backoff (3..10)", st.Timeouts)
	}
	if ep.RTO() <= ep.cfg.MinRTO {
		t.Fatalf("RTO %v did not back off", ep.RTO())
	}
	if st.RTTSamples != 0 {
		t.Fatal("sampled RTT from a retransmitted segment")
	}
}

func TestAdaptiveRTOTracksRTT(t *testing.T) {
	p := newPair(3, netsim.LossConfig{})
	for i := 0; i < 10; i++ {
		p.a.SendRecord(record(i, 1000))
	}
	p.s.Run(time.Second)
	// RTT here is ~100µs; the RTO must clamp at MinRTO, far below the
	// 1.1 s fixed UDP timer this transport replaces.
	if got := p.a.RTO(); got != p.a.cfg.MinRTO {
		t.Fatalf("RTO = %v, want MinRTO %v for a fast LAN", got, p.a.cfg.MinRTO)
	}
	if p.a.Stats().RTTSamples == 0 {
		t.Fatal("no RTT samples on a clean stream")
	}
}

// Determinism: identical seeds must produce identical stats under loss.
func TestDeterministicUnderLoss(t *testing.T) {
	run := func() Stats {
		p := newPair(5, netsim.LossConfig{Rate: 0.03, DelayJitter: 100 * time.Microsecond})
		for i := 0; i < 30; i++ {
			p.a.SendRecord(record(i, 3000))
		}
		p.s.Run(10 * time.Minute)
		return p.a.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different stats:\n%+v\nvs\n%+v", a, b)
	}
}

func TestMSSForMTU(t *testing.T) {
	mss := MSSForMTU(netsim.MTUEthernet)
	// A full segment (header + MSS) plus UDP/IP framing must fit exactly
	// one fragment.
	if got := netsim.FragmentCount(HeaderSize+mss, netsim.MTUEthernet); got != 1 {
		t.Fatalf("full segment fragments = %d, want 1", got)
	}
	if got := netsim.FragmentCount(HeaderSize+mss+1, netsim.MTUEthernet); got != 2 {
		t.Fatalf("oversized segment fragments = %d, want 2", got)
	}
}

func TestSegmentCount(t *testing.T) {
	for _, tc := range []struct{ n, mss, want int }{
		{0, 1452, 1}, {1, 1452, 1}, {1452, 1452, 1}, {1453, 1452, 2}, {8304, 1452, 6},
	} {
		if got := SegmentCount(tc.n, tc.mss); got != tc.want {
			t.Fatalf("SegmentCount(%d, %d) = %d, want %d", tc.n, tc.mss, got, tc.want)
		}
	}
}

func TestBadConfigPanics(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s)
	n.AddHost("a", netsim.DefaultGigabit(), nil)
	for i, cfg := range []Config{
		{MSS: 0, InitialRTO: 1, MinRTO: 1, MaxRTO: 1, DupAckThreshold: 1},
		{MSS: 100, InitialRTO: 0, MinRTO: 1, MaxRTO: 1, DupAckThreshold: 1},
		{MSS: 100, InitialRTO: 1, MinRTO: 2, MaxRTO: 1, DupAckThreshold: 1},
		{MSS: 100, InitialRTO: 1, MinRTO: 1, MaxRTO: 1, DupAckThreshold: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d should panic", i)
				}
			}()
			NewEndpoint(s, n, cfg, "a", "a", nil)
		}()
	}
}

func TestShortSegmentPanics(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s)
	n.AddHost("a", netsim.DefaultGigabit(), nil)
	ep := NewEndpoint(s, n, DefaultConfig(netsim.MTUEthernet), "a", "a", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ep.HandleDatagram([]byte{1, 2, 3})
}

// Sanity-print one lossy run's stats when -v is set (documentation aid).
func TestStatsShape(t *testing.T) {
	p := newPair(1, netsim.LossConfig{Rate: 0.02})
	for i := 0; i < 20; i++ {
		p.a.SendRecord(record(i, 8300))
	}
	p.s.Run(10 * time.Minute)
	st := p.a.Stats()
	if st.RecordsSent != 20 || p.b.Stats().RecordsDelivered != 20 {
		t.Fatalf("record accounting: %+v / %+v", st, p.b.Stats())
	}
	if st.WireBytes == 0 || st.SegmentsSent < 20 {
		t.Fatalf("wire accounting: %+v", st)
	}
	t.Log(fmt.Sprintf("%+v", st))
}
