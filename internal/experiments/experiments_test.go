package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// These are the integration tests that pin the paper's shapes. Sweeps use
// a reduced size grid to stay fast; trace/table experiments run at the
// paper's own parameters.

func TestFig1Shape(t *testing.T) {
	r := Fig1([]int{25, 100, 250, 450})
	// Local peaks at memory speed (>150 MB/s), NFS stays at network
	// speed (<40 MB/s) at every size.
	if r.Local.MaxY() < 150_000 {
		t.Fatalf("local peak = %.0f KB/s, want > 150 MB/s", r.Local.MaxY())
	}
	for _, p := range r.Filer.Points {
		if p.Y > 40_000 || p.Y < 15_000 {
			t.Fatalf("filer NFS throughput %.0f KB/s at %g MB outside 15-40 MB/s", p.Y, p.X)
		}
	}
	for _, p := range r.Linux.Points {
		if p.Y > 35_000 || p.Y < 10_000 {
			t.Fatalf("linux NFS throughput %.0f KB/s at %g MB outside 10-35 MB/s", p.Y, p.X)
		}
	}
	// "the large peak in memory write performance for local files does
	// not appear for NFS files": NFS curves are flat (max/min < 1.5x)
	// while local varies by > 3x.
	if flat := r.Filer.MaxY() / minY(r.Filer); flat > 1.5 {
		t.Fatalf("filer curve not flat: max/min = %.2f", flat)
	}
	if dyn := r.Local.MaxY() / minY(r.Local); dyn < 3 {
		t.Fatalf("local curve should peak then collapse: max/min = %.2f", dyn)
	}
	// Local writes beat NFS while memory lasts.
	if r.Local.YAt(25) < 3*r.Filer.YAt(25) {
		t.Fatal("local memory writes should dwarf stock NFS writes")
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Fatal("render missing title")
	}
}

func minY(s *stats.Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Y
	for _, p := range s.Points {
		if p.Y < m {
			m = p.Y
		}
	}
	return m
}

func TestFig2Shape(t *testing.T) {
	r := Fig2()
	if r.Result.Calls != 5120 {
		t.Fatalf("calls = %d, want 5120 (40 MB / 8 KB)", r.Result.Calls)
	}
	if r.Spikes < 30 {
		t.Fatalf("spikes = %d, want dozens", r.Spikes)
	}
	if r.SpikePeriod < 80 || r.SpikePeriod > 105 {
		t.Fatalf("spike period = %.1f, want ~96 (soft limit / 2 pages per call)", r.SpikePeriod)
	}
	// Spikes exceed 10 ms (paper: >19 ms at its drain rate).
	if r.Result.Trace.Summary().Max < 10*time.Millisecond {
		t.Fatalf("max spike = %v", r.Result.Trace.Summary().Max)
	}
	// Mean inflation factor (paper: 3.45x).
	ratio := float64(r.MeanAll) / float64(r.MeanBelow)
	if ratio < 2 || ratio > 6 {
		t.Fatalf("mean inflation = %.2f, want 2-6", ratio)
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Fatal("render missing title")
	}
}

func TestFig3Fig4Shapes(t *testing.T) {
	f3 := Fig3()
	f4 := Fig4()

	// Figure 3: no spikes, but strong positive slope and mean well above
	// the fast path.
	if f3.Spikes != 0 {
		t.Fatalf("fig3 has %d >1ms spikes; flush removal should kill them", f3.Spikes)
	}
	if f3.SlopeNsCall <= 5 {
		t.Fatalf("fig3 slope = %.1f ns/call, want clearly positive", f3.SlopeNsCall)
	}
	// Figure 4: flat and fast.
	if f4.SlopeNsCall > 5 {
		t.Fatalf("fig4 slope = %.1f ns/call, want ~0", f4.SlopeNsCall)
	}
	if f3.MeanAll < 3*f4.MeanAll {
		t.Fatalf("fig3 mean %v should be >3x fig4 mean %v", f3.MeanAll, f4.MeanAll)
	}
	// Paper: fig4 sustains ~115 MB/s vs 28 MB/s before the fixes.
	if f4.Result.WriteMBps() < 90 {
		t.Fatalf("fig4 write throughput = %.1f MB/s, want >90", f4.Result.WriteMBps())
	}
	// The paper's §3.3 result: removing the flushes alone does NOT
	// improve mean latency (484.7 vs 482.1 µs there).
	f2 := Fig2()
	lo, hi := f2.MeanAll/2, f2.MeanAll*2
	if f3.MeanAll < lo || f3.MeanAll > hi {
		t.Fatalf("fig3 mean %v should be comparable to fig2 mean %v", f3.MeanAll, f2.MeanAll)
	}
}

func TestFig5Fig6Shapes(t *testing.T) {
	f5 := Fig5()
	f6 := Fig6()

	// Figure 5: the faster filer has MORE slow calls than the Linux
	// server when the BKL is held across sends.
	if f5.FilerTail <= f5.LinuxTail {
		t.Fatalf("fig5: filer tail %d <= linux tail %d; faster server should contend more",
			f5.FilerTail, f5.LinuxTail)
	}
	// Figure 6: the lock fix shrinks the tail on both servers...
	if f6.FilerTail >= f5.FilerTail {
		t.Fatalf("fig6 filer tail %d >= fig5 %d", f6.FilerTail, f5.FilerTail)
	}
	if f6.LinuxTail > f5.LinuxTail {
		t.Fatalf("fig6 linux tail %d > fig5 %d", f6.LinuxTail, f5.LinuxTail)
	}
	// ...means drop...
	if f6.FilerMean >= f5.FilerMean || f6.LinuxMean >= f5.LinuxMean {
		t.Fatalf("means did not drop: filer %v->%v linux %v->%v",
			f5.FilerMean, f6.FilerMean, f5.LinuxMean, f6.LinuxMean)
	}
	// ...and maximum latency drops for the filer (381 -> 292 µs in §3.5).
	if f6.FilerMax >= f5.FilerMax {
		t.Fatalf("filer max did not drop: %v -> %v", f5.FilerMax, f6.FilerMax)
	}
	// "minimum latency hardly changes" (±20%).
	if f6.FilerMin < f5.FilerMin*8/10 || f6.FilerMin > f5.FilerMin*12/10 {
		t.Fatalf("filer min moved: %v -> %v", f5.FilerMin, f6.FilerMin)
	}
	// Figure 5: filer writes take longer than Linux-server writes on
	// average. Figure 6: "the difference is small" — the gap shrinks and
	// stays within a few percent.
	if f5.FilerMean <= f5.LinuxMean {
		t.Fatalf("fig5: filer mean %v <= linux mean %v", f5.FilerMean, f5.LinuxMean)
	}
	gap5 := f5.FilerMean - f5.LinuxMean
	gap6 := f6.FilerMean - f6.LinuxMean
	if gap6 >= gap5 {
		t.Fatalf("filer-linux mean gap did not shrink: %v -> %v", gap5, gap6)
	}
	if gap6 > f6.LinuxMean*3/100 || gap6 < -f6.LinuxMean*3/100 {
		t.Fatalf("fig6 gap %v not small relative to %v", gap6, f6.LinuxMean)
	}
	if !strings.Contains(f5.Render(), "histogram") {
		t.Fatal("render broken")
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1()
	// Both servers improve without the lock.
	if r.FilerNoLockMBps <= r.FilerLockMBps {
		t.Fatalf("filer: %0.1f -> %0.1f; lock removal should help",
			r.FilerLockMBps, r.FilerNoLockMBps)
	}
	if r.LinuxNoLockMBps <= r.LinuxLockMBps {
		t.Fatalf("linux: %0.1f -> %0.1f; lock removal should help",
			r.LinuxLockMBps, r.LinuxNoLockMBps)
	}
	// The filer (faster server) gains more (+22% vs +6.5% in Table 1).
	fGain := r.FilerNoLockMBps / r.FilerLockMBps
	lGain := r.LinuxNoLockMBps / r.LinuxLockMBps
	if fGain <= lGain {
		t.Fatalf("filer gain %.3f <= linux gain %.3f", fGain, lGain)
	}
	// With the lock, memory writes to the faster filer are SLOWER.
	if r.FilerLockMBps >= r.LinuxLockMBps {
		t.Fatalf("with BKL: filer %.1f >= linux %.1f MBps", r.FilerLockMBps, r.LinuxLockMBps)
	}
	// §3.5 framing: filer sustains more network throughput than linux.
	if r.FilerNetMBps <= r.LinuxNetMBps {
		t.Fatalf("filer net %.1f <= linux net %.1f", r.FilerNetMBps, r.LinuxNetMBps)
	}
	// Linux server's ingest is in the paper's ballpark (26 MBps).
	if r.LinuxNetMBps < 18 || r.LinuxNetMBps > 33 {
		t.Fatalf("linux ingest %.1f MBps, want ~26", r.LinuxNetMBps)
	}
	tbl := r.Table()
	if tbl.Rows() != 2 {
		t.Fatal("table should have 2 rows")
	}
	if !strings.Contains(r.Render(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestSlow100Shape(t *testing.T) {
	r := Slow100()
	if r.SlowMBps <= r.FilerMBps {
		t.Fatalf("slow-server memory writes %.1f <= filer %.1f", r.SlowMBps, r.FilerMBps)
	}
	if r.SlowNetMBps >= 10.5 {
		t.Fatalf("slow server ingest %.1f, want <10 MBps", r.SlowNetMBps)
	}
	if !strings.Contains(r.Render(), "Slow-server") {
		t.Fatal("render broken")
	}
}

func TestProfileShape(t *testing.T) {
	r := Profile()
	// Pre-fix: list scans among top consumers.
	found := false
	for _, e := range r.TopPreFix {
		if strings.HasPrefix(e.Label, "nfs_find_request") || e.Label == "nfs_update_request(scan)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("list scans not in pre-fix top consumers: %+v", r.TopPreFix)
	}
	// Post-fix: the scan entries vanish from the top.
	for _, e := range r.TopPostFix[:3] {
		if e.Label == "nfs_find_request" || e.Label == "nfs_update_request(scan)" {
			t.Fatalf("scan still a top-3 consumer after the hash fix: %+v", r.TopPostFix)
		}
	}
	// §3.5: ~90% of BKL waiting is sock_sendmsg; accept >=60%.
	if r.SendFraction < 0.6 {
		t.Fatalf("sock_sendmsg BKL-wait share = %.2f", r.SendFraction)
	}
	if !strings.Contains(r.Render(), "sock_sendmsg") {
		t.Fatal("render broken")
	}
}

func TestJumboShape(t *testing.T) {
	r := Jumbo()
	// Jumbo frames must reduce sock_sendmsg CPU per §3.5's conjecture.
	if r.JumboSendCPU >= r.StandardSendCPU {
		t.Fatalf("jumbo send CPU %v >= standard %v", r.JumboSendCPU, r.StandardSendCPU)
	}
	// End-to-end throughput should not get worse.
	if r.JumboMBps < r.StandardMBps*95/100 {
		t.Fatalf("jumbo throughput %.1f well below standard %.1f", r.JumboMBps, r.StandardMBps)
	}
	if !strings.Contains(r.Render(), "Jumbo") {
		t.Fatal("render broken")
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7([]int{25, 200, 450})
	// Enhanced NFS memory writes approach local speed for small files
	// (same order of magnitude; paper: 115-150 vs ~170-200 MB/s)...
	if r.Filer.YAt(25) < 90_000 {
		t.Fatalf("enhanced filer writes %.0f KB/s at 25 MB, want >90 MB/s", r.Filer.YAt(25))
	}
	// ...NFS no longer tracks network throughput...
	if r.Filer.YAt(25) < 2.5*35_000 {
		t.Fatal("enhanced client still pinned to network speed")
	}
	// ...and the filer sustains high throughput longer than the Linux
	// server as memory runs out (NVRAM + faster ingest).
	if r.Filer.YAt(450) <= r.Linux.YAt(450) {
		t.Fatalf("at 450 MB filer %.0f <= linux %.0f KB/s", r.Filer.YAt(450), r.Linux.YAt(450))
	}
	// Local ext2 trails off hardest (EIDE disk).
	if r.Local.YAt(450) >= r.Linux.YAt(450) {
		t.Fatalf("local %.0f should trail linux %.0f at 450 MB", r.Local.YAt(450), r.Linux.YAt(450))
	}
	// Throughput at 25 MB far exceeds throughput at 450 MB (memory cliff).
	if r.Filer.YAt(25) < 15*r.Filer.YAt(450)/10 {
		t.Fatal("no memory cliff visible for the filer curve")
	}
}

func TestConcurrencyShape(t *testing.T) {
	r := Concurrency()
	if r.NoLockMBps <= r.LockMBps {
		t.Fatalf("aggregate no-lock %.1f <= lock %.1f MBps", r.NoLockMBps, r.LockMBps)
	}
	if r.NoLockMean >= r.LockMeanLat {
		t.Fatalf("no-lock mean %v >= lock mean %v", r.NoLockMean, r.LockMeanLat)
	}
	if !strings.Contains(r.Render(), "Concurrent") {
		t.Fatal("render broken")
	}
}

func TestScalingShape(t *testing.T) {
	r := Scaling()
	if len(r.Rows) != 8 { // 2 configs x {1, 2, 4, 8} clients
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	byConfig := map[string][]ScalingRow{}
	for _, row := range r.Rows {
		if row.PerClient <= 0 || row.Aggregate <= 0 {
			t.Fatalf("empty throughput in row %+v", row)
		}
		if row.Fairness <= 0 || row.Fairness > 1 {
			t.Fatalf("fairness %v out of (0, 1] in row %+v", row.Fairness, row)
		}
		byConfig[row.Config] = append(byConfig[row.Config], row)
	}
	for cfg, rows := range byConfig {
		if len(rows) != 4 {
			t.Fatalf("%s has %d client counts, want 4", cfg, len(rows))
		}
		// Two clients outrun one: the shared server is not saturated by a
		// single client machine's full write+flush+close run.
		if rows[1].Aggregate <= rows[0].Aggregate {
			t.Fatalf("%s: 2-client aggregate %.1f <= 1-client %.1f",
				cfg, rows[1].Aggregate, rows[0].Aggregate)
		}
		// Identical machines split the server evenly.
		for _, row := range rows {
			if row.Clients > 1 && row.Fairness < 0.9 {
				t.Fatalf("%s x%d: fairness %.3f, want >= 0.9", cfg, row.Clients, row.Fairness)
			}
		}
		// Per-client share shrinks once the fleet shares the ingest ceiling.
		if rows[3].PerClient >= rows[0].PerClient {
			t.Fatalf("%s: 8-client per-client %.1f >= 1-client %.1f",
				cfg, rows[3].PerClient, rows[0].PerClient)
		}
	}
	out := r.Render()
	for _, want := range []string{"scale-out", "fairness", "stock", "enhanced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// The lossy-network experiment enforces the transport claim end to end:
// at 1% and 5% fragment loss, TCP's end-to-end throughput degrades
// strictly less than UDP's, for both the stock and the enhanced client.
func TestLossSweepShape(t *testing.T) {
	r := LossSweep()
	if len(r.Rows) != 16 { // 2 configs x 2 transports x 4 loss rates
		t.Fatalf("rows = %d, want 16", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AggMBps <= 0 {
			t.Fatalf("empty throughput in row %+v", row)
		}
		if row.Loss == 0 && row.Retransmits != 0 {
			t.Fatalf("lossless row has retransmissions: %+v", row)
		}
		if row.Loss >= 0.01 && row.Retransmits == 0 {
			t.Fatalf("lossy row repaired nothing: %+v", row)
		}
	}
	for _, cfg := range []string{"stock", "enhanced"} {
		for _, loss := range []float64{0.01, 0.05} {
			udp := r.degradation(cfg, "udp", loss)
			tcp := r.degradation(cfg, "tcp", loss)
			if udp < 0 || tcp < 0 {
				t.Fatalf("%s @ %g: missing baseline", cfg, loss)
			}
			// The acceptance criterion: TCP degrades strictly less.
			if tcp >= udp {
				t.Fatalf("%s @ %g%% loss: TCP degradation %.3f not strictly below UDP %.3f",
					cfg, loss*100, tcp, udp)
			}
		}
		// And UDP at >= 1% loss must show the paper's catastrophe: more
		// than half the throughput gone to loss amplification + timer
		// stalls.
		if d := r.degradation(cfg, "udp", 0.01); d < 0.5 {
			t.Fatalf("%s: UDP degradation at 1%% loss only %.3f; loss amplification missing", cfg, d)
		}
	}
	out := r.Render()
	for _, want := range []string{"Lossy network", "udp", "tcp", "strictly better: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "strictly better: false") {
		t.Fatalf("render reports a violated comparison:\n%s", out)
	}
}

// The random-access experiment enforces fix 2's headline end to end: the
// hash client beats both the stock client and the unbounded linear list
// on random writes — the access pattern where list-scan CPU dominates —
// while staying within noise of its own sequential rate, and random
// reads defeat the sequential readahead window.
func TestRandomSweepShape(t *testing.T) {
	r := RandomSweep()
	if len(r.Rows) != 16 { // 4 configs x 4 workloads
		t.Fatalf("rows = %d, want 16", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MBps <= 0 {
			t.Fatalf("empty throughput in row %+v", row)
		}
		if row.RPCs == 0 {
			t.Fatalf("row moved no RPCs: %+v", row)
		}
	}
	// The acceptance criterion: the hash client beats the stock client on
	// random writes, by the margin the fix progression promises.
	hashRand := r.Throughput("hash", "randwrite")
	stockRand := r.Throughput("stock", "randwrite")
	if hashRand <= 2*stockRand {
		t.Fatalf("hash random writes %.1f MBps not > 2x stock %.1f", hashRand, stockRand)
	}
	// Fix 2 in isolation: against the same cache-all flushing, the hash
	// table beats the linear list on random writes, where every lookup
	// rescans a non-adjacent backlog (figure-3/4 divergence).
	listRand := r.Throughput("nolimits", "randwrite")
	if hashRand <= 1.3*listRand {
		t.Fatalf("hash random writes %.1f MBps not >= 1.3x linear list %.1f", hashRand, listRand)
	}
	// Parity sequentially: random access costs the hash client nothing —
	// its random-write rate stays within noise of its sequential rate.
	hashSeq := r.Throughput("hash", "write")
	if ratio := hashRand / hashSeq; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("hash random/sequential ratio %.3f outside [0.9, 1.1] (%.1f vs %.1f MBps)",
			ratio, hashRand, hashSeq)
	}
	// The stock client is also at parity with itself: its request-count
	// limits bound the list, so the scans never grow — random access is
	// only expensive once fix 1 removes the limits and the list is long.
	stockSeq := r.Throughput("stock", "write")
	if ratio := stockRand / stockSeq; ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("stock random/sequential ratio %.3f outside [0.85, 1.15]", ratio)
	}
	// Random reads defeat readahead: every seek collapses the window, so
	// the reader pays a round trip per miss instead of streaming.
	seqRead, randRead := r.Throughput("enhanced", "read"), r.Throughput("enhanced", "randread")
	if seqRead <= 3*randRead {
		t.Fatalf("sequential read %.1f MBps not > 3x random read %.1f", seqRead, randRead)
	}
	// The stock client's write-family rows hit the soft limit (random
	// requests count against MAX_REQUEST_SOFT like any other).
	for _, row := range r.Rows {
		wantSoft := row.Config == "stock" && (row.Workload == "write" || row.Workload == "randwrite")
		if wantSoft && row.SoftFlushes == 0 {
			t.Fatalf("stock %s row recorded no soft flushes", row.Workload)
		}
		if !wantSoft && row.SoftFlushes != 0 {
			t.Fatalf("%s/%s row recorded %d soft flushes", row.Config, row.Workload, row.SoftFlushes)
		}
	}
	out := r.Render()
	for _, want := range []string{"Random access", "randwrite", "parity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// The database-load experiment enforces §3.6 end to end: group commits
// cost strictly less against the filer (NVRAM, zero COMMITs) than
// against the Linux server (UNSTABLE replies, a COMMIT per fsync that
// waits on the disk), and the patched client beats the stock client on
// both servers even under a fsync-bound transactional load.
func TestDBLoadShape(t *testing.T) {
	r := DBLoad()
	if len(r.Rows) != 4 { // 2 servers x 2 configs
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MBps <= 0 || row.TxPerSec <= 0 {
			t.Fatalf("empty throughput in row %+v", row)
		}
		// 20 MB / 8 KB chunks = 2560 writes, one fsync per 50.
		if want := int64(2560 / 50); row.FsyncCount != want {
			t.Fatalf("fsync count = %d, want %d: %+v", row.FsyncCount, want, row)
		}
		if row.FsyncTime == 0 {
			t.Fatalf("no fsync time recorded: %+v", row)
		}
		switch row.Server {
		case "filer":
			if row.CommitRPCs != 0 {
				t.Fatalf("filer run sent %d COMMITs (NVRAM should make them unnecessary)", row.CommitRPCs)
			}
		case "linux":
			// One COMMIT per fsync (plus the final close).
			if row.CommitRPCs < row.FsyncCount {
				t.Fatalf("linux run sent %d COMMITs for %d fsyncs", row.CommitRPCs, row.FsyncCount)
			}
		}
	}
	for _, cfg := range []string{"stock", "enhanced"} {
		f, l := r.Row("filer", cfg), r.Row("linux", cfg)
		if f == nil || l == nil {
			t.Fatalf("missing %s rows", cfg)
		}
		if f.FsyncTime >= l.FsyncTime {
			t.Fatalf("%s: filer fsync %v not below linux %v", cfg, f.FsyncTime, l.FsyncTime)
		}
		if f.TxPerSec <= l.TxPerSec {
			t.Fatalf("%s: filer tx/sec %.0f not above linux %.0f", cfg, f.TxPerSec, l.TxPerSec)
		}
	}
	for _, srv := range []string{"filer", "linux"} {
		stock, enh := r.Row(srv, "stock"), r.Row(srv, "enhanced")
		if enh.MBps <= stock.MBps {
			t.Fatalf("%s: enhanced %.1f MBps not above stock %.1f", srv, enh.MBps, stock.MBps)
		}
	}
	out := r.Render()
	for _, want := range []string{"Database load", "COMMIT", "filer faster: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "filer faster: false") {
		t.Fatalf("render reports a violated comparison:\n%s", out)
	}
}

func TestReadSweepShape(t *testing.T) {
	r := ReadSweep()
	if len(r.Rows) != 9 { // 3 configs x 3 workloads
		t.Fatalf("rows = %d, want 9", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MBps <= 0 || row.AggMBps <= 0 {
			t.Fatalf("empty throughput in row %+v", row)
		}
		if row.ReadRPCs == 0 {
			t.Fatalf("row fetched nothing over READ RPCs: %+v", row)
		}
		if row.HitRate <= 0 || row.HitRate >= 1 {
			t.Fatalf("hit rate %.3f outside (0, 1): %+v", row.HitRate, row)
		}
	}
	// The acceptance criterion: on sequential reads, enhanced readahead
	// strictly outperforms readahead-off.
	on, off := r.Throughput("enhanced", "read"), r.Throughput("ra-off", "read")
	if on <= off {
		t.Fatalf("enhanced readahead %.2f MBps not strictly above readahead-off %.2f", on, off)
	}
	// And by a wide margin: the whole point of the window is hiding the
	// per-chunk round trip, which costs demand paging most of its rate.
	if on < 2*off {
		t.Fatalf("readahead speedup only %.2fx, want >= 2x", on/off)
	}
	// The enhanced window must also turn most lookups into hits, while
	// readahead-off misses on every chunk's first page.
	for _, row := range r.Rows {
		switch {
		case row.Config == "enhanced" && row.HitRate < 0.9:
			t.Fatalf("enhanced hit rate %.3f, want >= 0.9: %+v", row.HitRate, row)
		case row.Config == "ra-off" && row.HitRate > 0.6:
			t.Fatalf("ra-off hit rate %.3f, want <= 0.6: %+v", row.HitRate, row)
		}
	}
	out := r.Render()
	for _, want := range []string{"Read path", "readahead", "strictly better: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestZipfSweepShape(t *testing.T) {
	r := ZipfSweep()
	if len(r.Rows) != 4 { // {zipf, uniform} x {ac on, ac off}
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, skew := range []string{"zipf", "uniform"} {
		on, off := r.Cell(skew, "on"), r.Cell(skew, "off")
		if on == nil || off == nil {
			t.Fatalf("missing %s cells", skew)
		}
		// Every cell does real work across the whole op mix.
		for _, row := range []*ZipfRow{on, off} {
			if row.AggMBps <= 0 || row.Lookups == 0 || row.Creates == 0 || row.Removes == 0 {
				t.Fatalf("hollow cell %+v", row)
			}
		}
		// The acceptance criterion: attribute caching cuts GETATTR RPCs
		// and raises aggregate throughput vs. ac=0, at either skew.
		if on.Getattrs >= off.Getattrs {
			t.Fatalf("%s: %d GETATTRs with the cache, %d without", skew, on.Getattrs, off.Getattrs)
		}
		if on.AggMBps <= off.AggMBps {
			t.Fatalf("%s: cache-on %.2f MBps not above cache-off %.2f", skew, on.AggMBps, off.AggMBps)
		}
		if on.HitRate <= 0 {
			t.Fatalf("%s: cache on but hit rate %.3f", skew, on.HitRate)
		}
		if off.HitRate != 0 {
			t.Fatalf("%s: cache off but hit rate %.3f", skew, off.HitRate)
		}
	}
	// Hot-set skew: the popular files keep their cache entries warm, so
	// Zipfian access hits more often and spends fewer metadata RPCs than
	// uniform access over the same op count. (Throughput is not compared
	// across skews — the hot set's real data confounds it; see the
	// ZipfSweepResult doc.)
	z, u := r.Cell("zipf", "on"), r.Cell("uniform", "on")
	if z.HitRate <= u.HitRate {
		t.Fatalf("zipf hit rate %.3f not above uniform %.3f", z.HitRate, u.HitRate)
	}
	zMeta := z.Lookups + z.Getattrs + z.Creates
	uMeta := u.Lookups + u.Getattrs + u.Creates
	if zMeta >= uMeta {
		t.Fatalf("zipf spent %d metadata RPCs, uniform %d; skew should save RPCs", zMeta, uMeta)
	}
	out := r.Render()
	for _, want := range []string{"Many-file metadata", "attribute cache:", "hot-set skew:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Fatalf("render reports a violated comparison:\n%s", out)
	}
}

func TestCoherenceSweepShape(t *testing.T) {
	r := CoherenceSweep()
	if len(r.Rows) != 3 { // strict, ttl, noac
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	strict, ttl, noac := r.Cell("strict"), r.Cell("ttl"), r.Cell("noac")
	if strict == nil || ttl == nil || noac == nil {
		t.Fatalf("missing mode cells: %+v", r.Rows)
	}
	// Every mode moves real data and the writers bump the server's
	// change attribute; the write mix is identical across modes, so the
	// bump counts must match exactly.
	for _, row := range []*CoherenceRow{strict, ttl, noac} {
		if row.AggMBps <= 0 || row.ChangeBumps == 0 {
			t.Fatalf("hollow cell %+v", row)
		}
	}
	if strict.ChangeBumps != ttl.ChangeBumps || ttl.ChangeBumps != noac.ChangeBumps {
		t.Fatalf("change bumps differ across modes: strict %d, ttl %d, noac %d",
			strict.ChangeBumps, ttl.ChangeBumps, noac.ChangeBumps)
	}
	// The acceptance criteria. Strict revalidates every open, so no
	// read is ever served off a stale cache — and it pays for that in
	// GETATTR traffic the ttl window saves.
	if strict.StaleReads != 0 {
		t.Fatalf("strict mode served %d stale reads, want 0", strict.StaleReads)
	}
	if strict.Getattrs <= ttl.Getattrs {
		t.Fatalf("strict spent %d GETATTRs, not above ttl's %d", strict.Getattrs, ttl.Getattrs)
	}
	// The ttl window bounds staleness strictly below noac's unbounded
	// trust, without giving up strict's throughput.
	if noac.StaleReads <= ttl.StaleReads {
		t.Fatalf("noac served %d stale reads, not above ttl's %d", noac.StaleReads, ttl.StaleReads)
	}
	if ttl.AggMBps < strict.AggMBps {
		t.Fatalf("ttl %.2f MBps below strict %.2f", ttl.AggMBps, strict.AggMBps)
	}
	// ttl is the middle of the trade-off, not a degenerate endpoint: it
	// does serve some stale reads (else it collapsed into strict) and
	// strict's revalidations do find foreign changes to invalidate.
	if ttl.StaleReads == 0 {
		t.Fatalf("ttl mode served no stale reads; window degenerated to strict")
	}
	if strict.Invalidations == 0 {
		t.Fatalf("strict revalidations never invalidated a cache")
	}
	out := r.Render()
	for _, want := range []string{"Cache coherence", "strict close-to-open:", "ttl window:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Fatalf("render reports a violated comparison:\n%s", out)
	}
}

// TestCoherenceSweepDeterminism pins the whole rendered coherence table
// byte-identical across harness worker counts and reruns — the same
// guarantee the golden CSVs give the write sweeps, for the experiment
// whose workload has the most scheduling freedom (writers and readers
// racing on one file).
func TestCoherenceSweepDeterminism(t *testing.T) {
	defer func(w int) { Workers = w }(Workers)
	Workers = 1
	first := CoherenceSweep().Render()
	Workers = 8
	second := CoherenceSweep().Render()
	if first != second {
		t.Fatalf("coherence sweep differs between -workers 1 and 8:\n--- workers=1\n%s\n--- workers=8\n%s", first, second)
	}
}

func TestFleetShape(t *testing.T) {
	// Reduced fleet sizes keep the test fast; the 1000-client row runs
	// in CI's smoke step and in BenchmarkFleet1000.
	r := FleetAt([]int{10, 100}, 1)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	small, big := r.Rows[0], r.Rows[1]
	if small.Clients != 10 || big.Clients != 100 {
		t.Fatalf("client counts %d, %d; want 10, 100", small.Clients, big.Clients)
	}
	for _, row := range r.Rows {
		if row.PerClient <= 0 || row.Aggregate <= 0 || row.ServerNet <= 0 {
			t.Fatalf("empty throughput in row %+v", row)
		}
		if row.Fairness <= 0 || row.Fairness > 1 {
			t.Fatalf("fairness %v out of (0, 1] in row %+v", row.Fairness, row)
		}
		if row.SlotWaitShare < 0 || row.SlotWaitShare > 1 {
			t.Fatalf("slot-wait share %v out of [0, 1] in row %+v", row.SlotWaitShare, row)
		}
	}
	// The server's ingest ceiling is fixed, so ten times the clients get
	// roughly a tenth of the bandwidth each...
	if big.PerClient >= small.PerClient/2 {
		t.Fatalf("per-client did not collapse: %d clients %.2f, %d clients %.2f MBps",
			small.Clients, small.PerClient, big.Clients, big.PerClient)
	}
	// ...and requests convoy longer behind the slot table as replies
	// slow down under the larger fleet.
	if big.SlotWaitUs <= small.SlotWaitUs {
		t.Fatalf("slot-wait did not grow: %d clients %.0fus, %d clients %.0fus",
			small.Clients, small.SlotWaitUs, big.Clients, big.SlotWaitUs)
	}
	out := r.Render()
	for _, want := range []string{"Thousand-client fleet", "slot-wait share"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
