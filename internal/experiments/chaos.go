package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/stats"
)

// chaosScenarios is the canonical failure battery, written in the
// scenario DSL itself so the sweep exercises the same parse/validate
// path as `nfssweep -scenario` (see examples/chaos/ for the on-disk
// copies and docs/experiments.md for the schema).
const chaosScenarios = `
scenarios:
  - name: filer-crash
    description: filer reboots mid-write; NVRAM replay, zero loss
    fleet:
      server: filer
      config: enhanced
      file_mb: 8
      seed: 1
    events:
      - at: 100ms
        action: server_crash
      - at: 400ms
        action: server_restart
      - action: assert_completes
      - action: assert_no_data_loss
      - action: assert_replayed_min
        bytes: 1
      - action: assert_lost_max
        bytes: 0
  - name: knfsd-crash
    description: knfsd reboots mid-write; async bytes lost, client rewrites
    fleet:
      server: linux
      config: enhanced
      file_mb: 8
      seed: 1
    events:
      - at: 100ms
        action: server_crash
      - at: 400ms
        action: server_restart
      - action: assert_completes
      - action: assert_no_data_loss
      - action: assert_lost_min
        bytes: 1
      - action: assert_rewritten_min
        bytes: 1
  - name: shared-crash
    description: filer reboots mid-shared-write; change counters survive, staleness bounded
    fleet:
      server: filer
      config: enhanced
      clients: 4
      file_mb: 2
      workload: shared
      seed: 1
    events:
      - at: 40ms
        action: server_crash
      - at: 120ms
        action: server_restart
      - action: assert_completes
      - action: assert_no_data_loss
      - action: assert_lost_max
        bytes: 0
      - action: assert_stale_max
        max_stale: 1024
  - name: dead-server
    description: permanent crash; bounded retry turns a hang into an error
    fleet:
      server: filer
      config: enhanced
      file_mb: 4
      max_retries: 5
      time_limit: 5m
      seed: 1
    events:
      - at: 50ms
        action: server_crash
      - action: assert_error
`

// ChaosRow is one scenario's outcome in the chaos table.
type ChaosRow struct {
	Name      string
	Server    string
	Status    string // PASS or FAIL across the scenario's assertions
	AggMBps   float64
	Lost      int64
	Replayed  int64
	Rewritten int64
	Verf      int64 // client-observed write-verifier changes
}

// ChaosSweepResult is the failure-injection experiment: the crash/reboot
// and dead-server scenarios run through the chaos engine, contrasting
// the two backends' durability stories — the filer's NVRAM log replays
// acked data after a reboot, while knfsd's page cache loses it and the
// client must detect the verifier change and rewrite (RFC 1813 §3.3.7).
type ChaosSweepResult struct {
	Rows    []ChaosRow
	Reports []*chaos.Report
}

// Table renders the chaos table.
func (r *ChaosSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		"Chaos scenarios - server crash/reboot and dead-server failure injection",
		"scenario", "server", "status", "agg MBps", "lost B", "replayed B", "rewritten B", "verf chg")
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Server, row.Status,
			fmt.Sprintf("%.2f", row.AggMBps), fmt.Sprint(row.Lost),
			fmt.Sprint(row.Replayed), fmt.Sprint(row.Rewritten), fmt.Sprint(row.Verf))
	}
	return t
}

// Render formats the table, the per-scenario reports, and the headline
// durability contrast.
func (r *ChaosSweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	for _, rep := range r.Reports {
		b.WriteString(rep.Render())
	}
	b.WriteString("same crash, two durability stories: the filer replays its NVRAM log\n")
	b.WriteString("(lost=0), knfsd drops its page cache and the client rewrites every\n")
	b.WriteString("unstable byte after seeing the new write verifier\n")
	return b.String()
}

// ChaosSweep runs the canonical chaos battery on the worker pool. Each
// scenario is one deterministic simulation; the table and reports are
// byte-identical at any Workers value.
func ChaosSweep() *ChaosSweepResult {
	scs, err := chaos.Parse([]byte(chaosScenarios))
	if err != nil {
		panic("experiments: bad built-in chaos scenarios: " + err.Error())
	}
	r := &ChaosSweepResult{Reports: chaos.RunAll(scs, Workers)}
	for _, rep := range r.Reports {
		status := "PASS"
		if rep.Failed {
			status = "FAIL"
		}
		r.Rows = append(r.Rows, ChaosRow{
			Name:      rep.Scenario.Name,
			Server:    rep.Scenario.Fleet.Server,
			Status:    status,
			AggMBps:   rep.Result.AggMBps,
			Lost:      rep.LostBytes,
			Replayed:  rep.ReplayedBytes,
			Rewritten: rep.RewrittenBytes,
			Verf:      rep.VerfChanges,
		})
	}
	return r
}
