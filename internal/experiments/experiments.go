// Package experiments regenerates every table and figure in the paper's
// evaluation (§3). Each runner assembles the right test bed + client
// configuration, drives the Bonnie-derived benchmark, and returns the
// series/traces/histograms the corresponding artifact plots, plus a
// textual rendering for the CLI.
//
// Artifact index (see DESIGN.md §4 for the full mapping):
//
//	Fig1    local vs NFS write throughput, stock 2.4.4 client
//	Fig2    per-call latency trace: periodic flush spikes (stock client)
//	Fig3    trace after flush removal: latency grows with the list
//	Fig4    trace with the hash table: flat latency (+ checkpoint gap)
//	Fig5/6  latency histograms, filer vs Linux, BKL held vs released
//	Table1  memory write throughput before/after the lock fix
//	Fig7    local vs NFS write throughput, enhanced client
//	Slow100 §3.5 verification: slower server, faster memory writes
//	Profile §3.4/§3.5 kernel-profile findings
//	Jumbo   §3.5 future work: jumbo frames ablation
//	Scaling beyond the paper: N client machines against one server
//	Loss    beyond the paper: UDP vs TCP under fragment loss
//	Read    beyond the paper: sequential read, rewrite and mixed
//	        workloads with a client readahead ablation
//	Random  beyond the paper: sequential vs random chunk I/O across the
//	        fix progression — fix 2's figure-3/4 divergence under the
//	        access pattern that actually stresses the request lookup
//	DBLoad  §3.6: random page updates with group-commit fsync — the
//	        filer-vs-Linux durability story as a tested table
//	Zipf    beyond the paper: Zipfian many-file metadata workload with
//	        an attribute-cache (noac) and skew (uniform) ablation
//	Coherence beyond the paper: writers and readers sharing one file
//	        under strict/ttl/noac consistency — staleness vs throughput
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/rpcsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// Workers is the harness worker-pool size for the grid-shaped
// experiments (Fig1/Fig7 sweeps, Table1, Slow100, Jumbo); 0 means one
// worker per CPU. cmd/nfsbench's -workers flag sets it. Results are
// identical for every value — only wall-clock time changes.
var Workers int

func runGrid(g harness.Grid) []harness.Result {
	return (&harness.Runner{Workers: Workers}).Run(g.Expand())
}

// PaperSizesMB is the Figure 1/7 x-axis: 25–450 MB in 25 MB steps.
func PaperSizesMB() []int {
	sizes := make([]int, 0, 18)
	for mb := 25; mb <= 450; mb += 25 {
		sizes = append(sizes, mb)
	}
	return sizes
}

// runOne executes a single benchmark run on a fresh test bed.
func runOne(srv nfssim.ServerKind, cfg core.Config, fileMB int, full bool) (*nfssim.Testbed, *bonnie.Result) {
	tb := nfssim.NewTestbed(nfssim.Options{Server: srv, Client: cfg})
	res := bonnie.Run(tb.Sim, fmt.Sprintf("%s/%dMB", srv, fileMB), tb.Open, bonnie.Config{
		FileSize:       int64(fileMB) << 20,
		TimeLimit:      30 * time.Minute,
		SkipFlushClose: !full,
	})
	return tb, res
}

// SweepResult is a Figure 1 or Figure 7 dataset: write-phase throughput
// (KB/s, the paper's y-axis) versus file size (MB) for the three targets.
type SweepResult struct {
	Title string
	Local *stats.Series
	Filer *stats.Series
	Linux *stats.Series
}

// Series returns the three curves in plot order.
func (r *SweepResult) Series() []*stats.Series {
	return []*stats.Series{r.Linux, r.Filer, r.Local}
}

// Render formats the dataset as the paper's plot data.
func (r *SweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	b.WriteString("write throughput (KB/s) vs file size (MB)\n")
	b.WriteString(stats.CSV(r.Series()...))
	return b.String()
}

// sweep runs the Figure 1/7 grid — three targets x the size axis,
// write-phase throughput only — on the parallel harness. Scenario order
// (and hence series point order) is the grid's deterministic expansion.
func sweep(title, cfgName string, cfg core.Config, sizesMB []int) *SweepResult {
	r := &SweepResult{
		Title: title,
		Local: &stats.Series{Name: "local ext2", XLabel: "MB", YLabel: "KB/s"},
		Filer: &stats.Series{Name: "Netapp filer", XLabel: "MB", YLabel: "KB/s"},
		Linux: &stats.Series{Name: "Linux NFS server", XLabel: "MB", YLabel: "KB/s"},
	}
	results := runGrid(harness.Grid{
		Servers:        []nfssim.ServerKind{nfssim.ServerNone, nfssim.ServerFiler, nfssim.ServerLinux},
		Configs:        []harness.ClientConfig{{Name: cfgName, Config: cfg}},
		FileSizesMB:    sizesMB,
		SkipFlushClose: true,
	})
	for _, res := range results {
		switch res.Server {
		case "local":
			r.Local.Add(float64(res.FileMB), res.WriteKBps)
		case "filer":
			r.Filer.Add(float64(res.FileMB), res.WriteKBps)
		case "linux":
			r.Linux.Add(float64(res.FileMB), res.WriteKBps)
		}
	}
	return r
}

// Fig1 reproduces Figure 1: the stock client's NFS write throughput is
// pinned to network/server speed at every file size, while local ext2
// writes at memory speed until RAM runs out.
func Fig1(sizesMB []int) *SweepResult {
	if sizesMB == nil {
		sizesMB = PaperSizesMB()
	}
	return sweep("Figure 1 - Local v. NFS write throughput (stock 2.4.4 client)",
		"stock", core.Stock244Config(), sizesMB)
}

// Fig7 reproduces Figure 7: with all three fixes, NFS memory write
// throughput rivals local ext2 until client memory is exhausted, and the
// filer sustains high throughput longest.
func Fig7(sizesMB []int) *SweepResult {
	if sizesMB == nil {
		sizesMB = PaperSizesMB()
	}
	return sweep("Figure 7 - Local v. NFS write throughput (enhanced client)",
		"enhanced", core.EnhancedConfig(), sizesMB)
}

// TraceResult is a Figures 2–4 dataset: one run's per-call latency trace
// plus the derived spike/growth statistics.
type TraceResult struct {
	Title  string
	Result *bonnie.Result

	SpikeCutoff time.Duration
	Spikes      int
	SpikePeriod float64
	MeanAll     time.Duration
	MeanBelow   time.Duration // mean excluding spikes (paper's comparison)
	SlopeNsCall float64

	// QuietGap marks the Figure 4 checkpoint signature: a window of
	// strongly reduced jitter while the filer stops responding and the
	// flush daemon stalls.
	QuietGapStart int
	QuietGapEnd   int
	HasQuietGap   bool
}

func newTraceResult(title string, res *bonnie.Result) *TraceResult {
	cutoff := time.Millisecond
	return &TraceResult{
		Title:       title,
		Result:      res,
		SpikeCutoff: cutoff,
		Spikes:      res.Trace.CountAbove(cutoff),
		SpikePeriod: res.Trace.SpikePeriod(cutoff),
		MeanAll:     res.Trace.Summary().Mean,
		MeanBelow:   res.Trace.SummaryExcluding(cutoff).Mean,
		SlopeNsCall: res.Trace.Slope(),
	}
}

// Render formats the trace statistics (the full trace is available via
// Result.Trace.CSV()).
func (r *TraceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "  calls:                %d\n", r.Result.Calls)
	fmt.Fprintf(&b, "  mean latency:         %v\n", r.MeanAll)
	fmt.Fprintf(&b, "  mean excluding >%v: %v\n", r.SpikeCutoff, r.MeanBelow)
	fmt.Fprintf(&b, "  spikes >%v:          %d (every ~%.0f calls)\n", r.SpikeCutoff, r.Spikes, r.SpikePeriod)
	fmt.Fprintf(&b, "  latency slope:        %.1f ns/call\n", r.SlopeNsCall)
	fmt.Fprintf(&b, "  max latency:          %v\n", r.Result.Trace.Summary().Max)
	fmt.Fprintf(&b, "  write throughput:     %.1f MB/s\n", r.Result.WriteMBps())
	if r.HasQuietGap {
		fmt.Fprintf(&b, "  quiet gap (checkpoint): calls %d-%d\n", r.QuietGapStart, r.QuietGapEnd)
	}
	return b.String()
}

// Fig2 reproduces Figure 2: a 40 MB run against the filer on the stock
// client, showing periodic multi-millisecond spikes roughly every
// MAX_REQUEST_SOFT/2 calls.
func Fig2() *TraceResult {
	_, res := runOne(nfssim.ServerFiler, core.Stock244Config(), 40, true)
	return newTraceResult("Figure 2 - Actual write latency over time (stock 2.4.4, filer)", res)
}

// Fig3 reproduces Figure 3: the same run with limit-flushing removed —
// no spikes, but latency grows as the per-inode list lengthens.
func Fig3() *TraceResult {
	_, res := runOne(nfssim.ServerFiler, core.NoLimitsConfig(), 100, true)
	return newTraceResult("Figure 3 - Actual write latency over time (no flushing, linear list)", res)
}

// Fig4 reproduces Figure 4: with the hash table, latency stays low for
// the whole run. A consistency point from the warm-up file's data lands
// mid-run, reproducing the paper's "gap of greatly reduced jitter".
func Fig4() *TraceResult {
	tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler, Client: core.HashConfig()})
	// Warm-up: a previous benchmark file, fully flushed to the filer, so
	// NVRAM is partially charged — as on a real, repeatedly-used filer.
	warm := bonnie.Run(tb.Sim, "warmup", tb.Open, bonnie.Config{FileSize: 30 << 20, TimeLimit: 10 * time.Minute})
	_ = warm
	res := bonnie.Run(tb.Sim, "fig4", tb.Open, bonnie.Config{
		FileSize: 100 << 20, TimeLimit: 30 * time.Minute, SkipFlushClose: true,
	})
	tr := newTraceResult("Figure 4 - Actual write latency over time (scalable data structures)", res)
	tr.QuietGapStart, tr.QuietGapEnd, tr.HasQuietGap = res.Trace.QuietGap(200, 0.5)
	return tr
}

// HistResult is the Figures 5/6 dataset: write() latency histograms for
// the same run against the two servers, under one lock policy.
type HistResult struct {
	Title      string
	FilerHist  *stats.Histogram
	LinuxHist  *stats.Histogram
	FilerMean  time.Duration
	LinuxMean  time.Duration
	FilerMin   time.Duration
	LinuxMin   time.Duration
	FilerMax   time.Duration
	LinuxMax   time.Duration
	FilerMBps  float64
	LinuxMBps  float64
	TailCutoff time.Duration
	FilerTail  int
	LinuxTail  int
}

func hist(title string, cfg core.Config) *HistResult {
	_, filer := runOne(nfssim.ServerFiler, cfg, 30, true)
	_, linux := runOne(nfssim.ServerLinux, cfg, 30, true)
	r := &HistResult{
		Title:      title,
		FilerHist:  stats.NewHistogram("Network Appliance F85", 30*time.Microsecond, 9),
		LinuxHist:  stats.NewHistogram("Linux 2.4 NFS server", 30*time.Microsecond, 9),
		TailCutoff: 90 * time.Microsecond,
	}
	r.FilerHist.AddTrace(filer.Trace)
	r.LinuxHist.AddTrace(linux.Trace)
	fs, ls := filer.Trace.Summary(), linux.Trace.Summary()
	r.FilerMean, r.LinuxMean = fs.Mean, ls.Mean
	r.FilerMin, r.LinuxMin = fs.Min, ls.Min
	r.FilerMax, r.LinuxMax = fs.Max, ls.Max
	r.FilerMBps, r.LinuxMBps = filer.WriteMBps(), linux.WriteMBps()
	r.FilerTail = r.FilerHist.TailCount(r.TailCutoff)
	r.LinuxTail = r.LinuxHist.TailCount(r.TailCutoff)
	return r
}

// Render formats both histograms side by side.
func (r *HistResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	b.WriteString(r.FilerHist.String())
	b.WriteString(r.LinuxHist.String())
	fmt.Fprintf(&b, "filer: mean %v min %v max %v tail(>=%v) %d\n",
		r.FilerMean, r.FilerMin, r.FilerMax, r.TailCutoff, r.FilerTail)
	fmt.Fprintf(&b, "linux: mean %v min %v max %v tail(>=%v) %d\n",
		r.LinuxMean, r.LinuxMin, r.LinuxMax, r.TailCutoff, r.LinuxTail)
	return b.String()
}

// Fig5 reproduces Figure 5: with the BKL held across sock_sendmsg, the
// faster filer produces more slow write() calls than the Linux server.
// (Bucket width is 30 µs rather than the paper's 60 µs because our 8 KB
// write path is ~2x faster than the paper's measured calls; see
// DESIGN.md §2 on the paper's internal 8 KB/16 KB inconsistency.)
func Fig5() *HistResult {
	return hist("Figure 5 - Latency histogram (BKL across sock_sendmsg)", core.HashConfig())
}

// Fig6 reproduces Figure 6: releasing the BKL around sock_sendmsg shrinks
// the tail on both servers; minimum latency barely moves.
func Fig6() *HistResult {
	return hist("Figure 6 - Latency histogram (BKL released around sock_sendmsg)", core.EnhancedConfig())
}

// Table1Result is the paper's Table 1 plus the network-throughput
// observations of §3.5 that frame it.
type Table1Result struct {
	FilerLockMBps   float64
	FilerNoLockMBps float64
	LinuxLockMBps   float64
	LinuxNoLockMBps float64

	// Sustained server-side ingest during the runs ("the filer sustains
	// about 38 MBps of network throughput ... the Linux NFS server can
	// sustain only 26 MBps").
	FilerNetMBps float64
	LinuxNetMBps float64
}

// Table renders the paper's Table 1.
func (r *Table1Result) Table() *stats.Table {
	t := stats.NewTable("Table 1 - Client memory write throughput, before and after lock modification",
		"", "Normal", "No lock")
	t.AddRow("NetApp filer",
		fmt.Sprintf("%.0f MBps", r.FilerLockMBps), fmt.Sprintf("%.0f MBps", r.FilerNoLockMBps))
	t.AddRow("Linux NFS server",
		fmt.Sprintf("%.0f MBps", r.LinuxLockMBps), fmt.Sprintf("%.0f MBps", r.LinuxNoLockMBps))
	return t
}

// Render formats the table and the framing observations.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	fmt.Fprintf(&b, "sustained network write throughput: filer %.1f MBps, linux %.1f MBps\n",
		r.FilerNetMBps, r.LinuxNetMBps)
	return b.String()
}

// Table1 reproduces Table 1 as a harness grid: 5 MB runs on the
// hash-table client with the BKL held ("hash") versus released
// ("enhanced"), against both servers — a 2x2 cell sweep.
func Table1() *Table1Result {
	results := runGrid(harness.Grid{
		Servers: []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux},
		Configs: []harness.ClientConfig{
			{Name: "hash", Config: core.HashConfig()},
			{Name: "enhanced", Config: core.EnhancedConfig()},
		},
		FileSizesMB: []int{5},
	})
	r := &Table1Result{}
	for _, res := range results {
		switch {
		case res.Server == "filer" && res.Config == "hash":
			r.FilerLockMBps, r.FilerNetMBps = res.WriteMBps, res.ServerNetMBps
		case res.Server == "filer" && res.Config == "enhanced":
			r.FilerNoLockMBps = res.WriteMBps
		case res.Server == "linux" && res.Config == "hash":
			r.LinuxLockMBps, r.LinuxNetMBps = res.WriteMBps, res.ServerNetMBps
		case res.Server == "linux" && res.Config == "enhanced":
			r.LinuxNoLockMBps = res.WriteMBps
		}
	}
	return r
}

// Slow100Result is §3.5's verification experiment.
type Slow100Result struct {
	SlowMBps     float64 // client memory write throughput, 100 Mb/s server
	FilerMBps    float64 // same against the gigabit filer
	SlowNetMBps  float64 // slow server's sustained ingest
	FilerNetMBps float64
}

// Render formats the comparison.
func (r *Slow100Result) Render() string {
	return fmt.Sprintf(`Slow-server verification (§3.5)
  memory write throughput: 100Mb server %.1f MBps vs filer %.1f MBps
  network ingest:          100Mb server %.1f MBps vs filer %.1f MBps
  (the slower server leaves the writer less impeded: %v)
`, r.SlowMBps, r.FilerMBps, r.SlowNetMBps, r.FilerNetMBps, r.SlowMBps > r.FilerMBps)
}

// Slow100 reproduces the §3.5 check as a harness grid over the server
// axis: a server on 100 Mb/s Ethernet sustains <10 MB/s on the wire yet
// yields *faster* client memory writes.
func Slow100() *Slow100Result {
	results := runGrid(harness.Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerSlow100, nfssim.ServerFiler},
		Configs:     []harness.ClientConfig{{Name: "hash", Config: core.HashConfig()}},
		FileSizesMB: []int{5},
	})
	r := &Slow100Result{}
	for _, res := range results {
		if res.Server == "slow100" {
			r.SlowMBps, r.SlowNetMBps = res.WriteMBps, res.ServerNetMBps
		} else {
			r.FilerMBps, r.FilerNetMBps = res.WriteMBps, res.ServerNetMBps
		}
	}
	return r
}

// ProfileResult carries the §3.4/§3.5 kernel-profile findings.
type ProfileResult struct {
	// TopPreFix is the top CPU consumers during a linear-list run; the
	// paper's profiler finds nfs_find_request/nfs_update_request here.
	TopPreFix []sim.ProfileEntry
	// TopPostFix is the same with the hash table.
	TopPostFix []sim.ProfileEntry
	// BKLWaitBySection attributes BKL wait time to the critical section
	// holding it; ~90% should be sock_sendmsg.
	BKLWaitBySection map[string]time.Duration
	// SendFraction is sock_sendmsg's share of total BKL wait.
	SendFraction float64
}

// Render formats the findings.
func (r *ProfileResult) Render() string {
	var b strings.Builder
	b.WriteString("Kernel profile, linear-list run (top CPU consumers):\n")
	for _, e := range r.TopPreFix {
		fmt.Fprintf(&b, "  %-32s %12v (%d calls)\n", e.Label, e.Total, e.Calls)
	}
	b.WriteString("Kernel profile, hash-table run:\n")
	for _, e := range r.TopPostFix {
		fmt.Fprintf(&b, "  %-32s %12v (%d calls)\n", e.Label, e.Total, e.Calls)
	}
	fmt.Fprintf(&b, "BKL wait attribution (hash-table run, lock held across send):\n")
	sections := make([]string, 0, len(r.BKLWaitBySection))
	for sec := range r.BKLWaitBySection {
		sections = append(sections, sec)
	}
	sort.Strings(sections)
	for _, sec := range sections {
		fmt.Fprintf(&b, "  %-32s %12v\n", sec, r.BKLWaitBySection[sec])
	}
	fmt.Fprintf(&b, "sock_sendmsg share of BKL wait: %.0f%%\n", 100*r.SendFraction)
	return b.String()
}

// Profile reproduces the profiler findings of §3.4 and §3.5.
func Profile() *ProfileResult {
	tbList, _ := runOne(nfssim.ServerFiler, core.NoLimitsConfig(), 40, true)
	tbHash, _ := runOne(nfssim.ServerFiler, core.HashConfig(), 40, true)
	r := &ProfileResult{
		TopPreFix:        tbList.Sim.Profiler().Top(6),
		TopPostFix:       tbHash.Sim.Profiler().Top(6),
		BKLWaitBySection: tbHash.BKL.WaitBreakdown(),
	}
	var total, send time.Duration
	for sec, d := range r.BKLWaitBySection {
		total += d
		if sec == "sock_sendmsg" {
			send += d
		}
	}
	if total > 0 {
		r.SendFraction = float64(send) / float64(total)
	}
	return r
}

// ConcurrencyResult is §3.5's forward-looking claim: without the BKL in
// the send path, concurrent writers to separate files on separate CPUs
// make better aggregate progress.
type ConcurrencyResult struct {
	Writers     int
	LockMBps    float64 // aggregate, BKL across sends
	NoLockMBps  float64 // aggregate, lock released
	LockMeanLat time.Duration
	NoLockMean  time.Duration
}

// Render formats the comparison.
func (r *ConcurrencyResult) Render() string {
	return fmt.Sprintf(`Concurrent writers (§3.5), %d writers x 5 MB files, filer
  aggregate write throughput: BKL %.1f MBps -> no lock %.1f MBps
  mean write() latency:       BKL %v -> no lock %v
`, r.Writers, r.LockMBps, r.NoLockMBps, r.LockMeanLat, r.NoLockMean)
}

// Concurrency runs the multi-writer comparison.
func Concurrency() *ConcurrencyResult {
	const writers = 2
	run := func(cfg core.Config) *bonnie.ConcurrentResult {
		tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler, Client: cfg})
		return bonnie.RunConcurrent(tb.Sim, "conc", func(int) vfs.File { return tb.Open() }, writers, bonnie.Config{
			FileSize: 5 << 20, TimeLimit: 10 * time.Minute, SkipFlushClose: true,
		})
	}
	lock := run(core.HashConfig())
	nolock := run(core.EnhancedConfig())
	mean := func(r *bonnie.ConcurrentResult) time.Duration {
		var sum time.Duration
		var n int
		for _, w := range r.PerWriter {
			s := w.Trace.Summary()
			sum += s.Mean * time.Duration(s.Count)
			n += s.Count
		}
		return sum / time.Duration(n)
	}
	return &ConcurrencyResult{
		Writers:     writers,
		LockMBps:    lock.AggregateMBps(),
		NoLockMBps:  nolock.AggregateMBps(),
		LockMeanLat: mean(lock),
		NoLockMean:  mean(nolock),
	}
}

// ScalingRow is one cell of the multi-client scale-out table.
type ScalingRow struct {
	Config    string
	Clients   int
	PerClient float64 // mean per-client throughput through close, MBps
	Aggregate float64 // fleet bytes over the span to the last close, MBps
	Fairness  float64 // Jain's index over per-client throughputs
	ServerNet float64 // sustained server ingest, MBps
}

// ScalingResult is the scale-out experiment the paper's single-client
// test bed could not run: N client machines against one server.
type ScalingResult struct {
	Server string
	FileMB int
	Rows   []ScalingRow
}

// Table renders the scale-out table.
func (r *ScalingResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Multi-client scale-out - %d MB per client, full runs, %s", r.FileMB, r.Server),
		"config", "clients", "per-client MBps", "aggregate MBps", "fairness", "server MBps")
	for _, row := range r.Rows {
		t.AddRow(row.Config, fmt.Sprint(row.Clients),
			fmt.Sprintf("%.1f", row.PerClient), fmt.Sprintf("%.1f", row.Aggregate),
			fmt.Sprintf("%.3f", row.Fairness), fmt.Sprintf("%.1f", row.ServerNet))
	}
	return t
}

// Render formats the table plus the headline observation.
func (r *ScalingResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	b.WriteString("aggregate throughput converges on the server's sustained ingest as\n")
	b.WriteString("clients are added; the fairness column shows the server's FIFO request\n")
	b.WriteString("queue splitting that ceiling evenly across client machines\n")
	return b.String()
}

// Scaling runs the scale-out grid: stock vs enhanced clients, 1-8 client
// machines, full write+flush+close runs against the filer, all on the
// parallel harness. Per-client and aggregate throughput plus the Jain
// fairness index come straight from the harness's multi-client columns.
func Scaling() *ScalingResult {
	const fileMB = 5
	results := runGrid(harness.Grid{
		Servers: []nfssim.ServerKind{nfssim.ServerFiler},
		Configs: []harness.ClientConfig{
			{Name: "stock", Config: core.Stock244Config()},
			{Name: "enhanced", Config: core.EnhancedConfig()},
		},
		FileSizesMB: []int{fileMB},
		Clients:     []int{1, 2, 4, 8},
		TimeLimit:   10 * time.Minute,
	})
	r := &ScalingResult{Server: nfssim.ServerFiler.String(), FileMB: fileMB}
	for _, res := range results {
		r.Rows = append(r.Rows, ScalingRow{
			Config:    res.Config,
			Clients:   res.Clients,
			PerClient: res.CloseMBps,
			Aggregate: res.AggMBps,
			Fairness:  res.Fairness,
			ServerNet: res.ServerNetMBps,
		})
	}
	return r
}

// LossRow is one cell of the lossy-network table.
type LossRow struct {
	Config      string
	Transport   string
	Loss        float64 // per-fragment drop probability
	WriteMBps   float64 // memory write throughput
	AggMBps     float64 // end-to-end throughput through close
	Retransmits int64   // whole-RPC resends (UDP) / segment resends (TCP)
	DupReplies  int64   // suppressed duplicate replies (UDP only)
}

// LossResult is the lossy-network experiment the paper motivates but
// never runs: the same full write+flush+close benchmark over UDP and a
// TCP-style stream while the network drops IP fragments. Under UDP one
// lost 1500-byte fragment discards a whole 8 KB WRITE and the client
// stalls on its retransmit timer; the stream transport retransmits only
// the lost MTU-sized segment after an RTT-adaptive timeout.
type LossResult struct {
	Server string
	FileMB int
	Rows   []LossRow
}

// Table renders the loss table.
func (r *LossResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Lossy network - %d MB full runs, %s, UDP vs TCP", r.FileMB, r.Server),
		"config", "transport", "loss %", "write MBps", "end-to-end MBps", "rexmt", "dup replies")
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.Transport, fmt.Sprintf("%g", row.Loss*100),
			fmt.Sprintf("%.1f", row.WriteMBps), fmt.Sprintf("%.2f", row.AggMBps),
			fmt.Sprint(row.Retransmits), fmt.Sprint(row.DupReplies))
	}
	return t
}

// degradation returns 1 - (throughput at loss)/(throughput at loss 0)
// for one config/transport pair, or -1 if the baseline is missing.
func (r *LossResult) degradation(config, transport string, loss float64) float64 {
	var base, at float64
	for _, row := range r.Rows {
		if row.Config != config || row.Transport != transport {
			continue
		}
		if row.Loss == 0 {
			base = row.AggMBps
		}
		if row.Loss == loss {
			at = row.AggMBps
		}
	}
	if base <= 0 {
		return -1
	}
	return 1 - at/base
}

// Render formats the table plus the headline comparison: at every loss
// rate of 1% and above, TCP's end-to-end throughput degrades strictly
// less than UDP's.
func (r *LossResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	for _, cfg := range []string{"stock", "enhanced"} {
		for _, loss := range []float64{0.01, 0.05} {
			u, t := r.degradation(cfg, "udp", loss), r.degradation(cfg, "tcp", loss)
			if u < 0 || t < 0 {
				continue
			}
			fmt.Fprintf(&b, "%s @ %g%% fragment loss: UDP loses %.1f%% of its throughput, TCP %.1f%% (TCP strictly better: %v)\n",
				cfg, loss*100, u*100, t*100, t < u)
		}
	}
	b.WriteString("one lost fragment costs UDP the whole 8 KB WRITE plus a backed-off\n")
	b.WriteString("retransmit timeout; TCP resends only the missing segment\n")
	return b.String()
}

// LossSweep runs the lossy-network grid: stock and enhanced clients over
// UDP and TCP at 0/0.1/1/5 % per-fragment loss, full runs against the
// filer, all on the parallel harness.
func LossSweep() *LossResult {
	const fileMB = 5
	results := runGrid(harness.Grid{
		Servers: []nfssim.ServerKind{nfssim.ServerFiler},
		Configs: []harness.ClientConfig{
			{Name: "stock", Config: core.Stock244Config()},
			{Name: "enhanced", Config: core.EnhancedConfig()},
		},
		FileSizesMB: []int{fileMB},
		Transports:  []rpcsim.TransportKind{rpcsim.TransportUDP, rpcsim.TransportTCP},
		LossRates:   []float64{0, 0.001, 0.01, 0.05},
		TimeLimit:   10 * time.Minute,
	})
	r := &LossResult{Server: nfssim.ServerFiler.String(), FileMB: fileMB}
	for _, res := range results {
		r.Rows = append(r.Rows, LossRow{
			Config:      res.Config,
			Transport:   res.Transport,
			Loss:        res.Loss,
			WriteMBps:   res.WriteMBps,
			AggMBps:     res.AggMBps,
			Retransmits: res.Retransmits,
			DupReplies:  res.DupReplies,
		})
	}
	return r
}

// ReadRow is one cell of the read-path table.
type ReadRow struct {
	Config   string
	Workload string
	MBps     float64 // I/O-phase throughput (read rate for read workloads)
	AggMBps  float64 // end-to-end throughput through close
	ReadRPCs int64
	HitRate  float64 // page-cache read hits / lookups
}

// ReadSweepResult is the read-path experiment the paper's write-only
// benchmark never ran: sequential read, rewrite, and mixed read/write
// workloads, with the client readahead window as the ablation axis —
// the read-side dual of the paper's write-behind study.
type ReadSweepResult struct {
	Server string
	FileMB int
	Rows   []ReadRow
}

// Throughput returns the I/O-phase throughput for one config/workload
// cell (0 if absent).
func (r *ReadSweepResult) Throughput(config, workload string) float64 {
	for _, row := range r.Rows {
		if row.Config == config && row.Workload == workload {
			return row.MBps
		}
	}
	return 0
}

// Table renders the read-path table.
func (r *ReadSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Read path - %d MB full runs, %s, readahead ablation", r.FileMB, r.Server),
		"config", "workload", "MBps", "end-to-end MBps", "read RPCs", "hit rate")
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.Workload,
			fmt.Sprintf("%.1f", row.MBps), fmt.Sprintf("%.1f", row.AggMBps),
			fmt.Sprint(row.ReadRPCs), fmt.Sprintf("%.3f", row.HitRate))
	}
	return t
}

// Render formats the table plus the headline observation: on sequential
// reads the enhanced readahead window strictly outperforms readahead
// off, because the window keeps rsize READs in flight ahead of the
// reader instead of stalling a full round trip per chunk.
func (r *ReadSweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	on, off := r.Throughput("enhanced", "read"), r.Throughput("ra-off", "read")
	if off > 0 {
		fmt.Fprintf(&b, "sequential read: enhanced readahead %.1f MBps vs readahead-off %.1f MBps (%.1fx, strictly better: %v)\n",
			on, off, on/off, on > off)
	}
	b.WriteString("readahead hides the per-chunk round trip the same way write-behind\n")
	b.WriteString("hides the WRITE RPC; the mixed rows show both daemons sharing the mount\n")
	return b.String()
}

// ReadSweep runs the read-path grid on the parallel harness: stock and
// enhanced readahead sizing plus a readahead-off ablation, each driving
// the sequential-read, rewrite, and mixed workloads against the filer.
func ReadSweep() *ReadSweepResult {
	const fileMB = 10
	raOff := core.EnhancedConfig()
	raOff.ReadaheadMaxPages = core.ReadaheadOff
	results := runGrid(harness.Grid{
		Servers: []nfssim.ServerKind{nfssim.ServerFiler},
		Configs: []harness.ClientConfig{
			{Name: "stock", Config: core.Stock244Config()},
			{Name: "enhanced", Config: core.EnhancedConfig()},
			{Name: "ra-off", Config: raOff},
		},
		FileSizesMB: []int{fileMB},
		Workloads: []bonnie.Workload{bonnie.WorkloadRead, bonnie.WorkloadRewrite,
			bonnie.WorkloadMixed},
		TimeLimit: 10 * time.Minute,
	})
	r := &ReadSweepResult{Server: nfssim.ServerFiler.String(), FileMB: fileMB}
	for _, res := range results {
		var hitRate float64
		if lookups := res.ReadHits + res.ReadMisses; lookups > 0 {
			hitRate = float64(res.ReadHits) / float64(lookups)
		}
		r.Rows = append(r.Rows, ReadRow{
			Config:   res.Config,
			Workload: res.Workload,
			MBps:     res.WriteMBps,
			AggMBps:  res.AggMBps,
			ReadRPCs: res.ReadRPCs,
			HitRate:  hitRate,
		})
	}
	return r
}

// RandomRow is one cell of the random-access table.
type RandomRow struct {
	Config      string
	Workload    string
	MBps        float64 // I/O-phase throughput
	RPCs        int64   // WRITE + READ RPCs
	SoftFlushes int64
	HitRate     float64 // page-cache read hits / lookups (read workloads)
}

// RandomSweepResult is the random-access experiment the paper's
// sequential benchmark never ran: the same total I/O delivered front to
// back versus in a seeded random permutation, for reads and writes,
// across the fix progression. Random writes never coalesce beyond one
// chunk and pile thousands of non-adjacent requests into the pending
// list, so the O(n) scans of the linear list (fix 2's target) dominate —
// the figure-3/4 divergence under a workload that actually stresses it.
type RandomSweepResult struct {
	Server string
	FileMB int
	Rows   []RandomRow
}

// Throughput returns the I/O-phase throughput for one config/workload
// cell (0 if absent).
func (r *RandomSweepResult) Throughput(config, workload string) float64 {
	for _, row := range r.Rows {
		if row.Config == config && row.Workload == workload {
			return row.MBps
		}
	}
	return 0
}

// Table renders the random-access table.
func (r *RandomSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Random access - %d MB write-phase runs, %s, seq vs random", r.FileMB, r.Server),
		"config", "workload", "MBps", "RPCs", "soft flushes", "hit rate")
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.Workload,
			fmt.Sprintf("%.1f", row.MBps), fmt.Sprint(row.RPCs),
			fmt.Sprint(row.SoftFlushes), fmt.Sprintf("%.3f", row.HitRate))
	}
	return t
}

// Render formats the table plus the headline observations: the hash
// client pays no random-write penalty (parity with its own sequential
// rate) and beats both the stock client and the linear-list client on
// random writes, where the list scans dominate.
func (r *RandomSweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	hashSeq, hashRand := r.Throughput("hash", "write"), r.Throughput("hash", "randwrite")
	listRand := r.Throughput("nolimits", "randwrite")
	stockRand := r.Throughput("stock", "randwrite")
	if hashSeq > 0 && listRand > 0 && stockRand > 0 {
		fmt.Fprintf(&b, "random writes: hash %.1f MBps vs linear list %.1f (%.2fx) vs stock %.1f (%.2fx)\n",
			hashRand, listRand, hashRand/listRand, stockRand, hashRand/stockRand)
		fmt.Fprintf(&b, "hash client random/sequential parity: %.1f vs %.1f MBps (ratio %.3f)\n",
			hashRand, hashSeq, hashRand/hashSeq)
	}
	if seqRead, randRead := r.Throughput("enhanced", "read"), r.Throughput("enhanced", "randread"); randRead > 0 {
		fmt.Fprintf(&b, "random reads defeat readahead: %.1f MBps vs %.1f sequential (enhanced)\n",
			randRead, seqRead)
	}
	b.WriteString("random chunk updates never coalesce past one chunk, so the pending list\n")
	b.WriteString("grows non-adjacent and every lookup rescans it; the hash table makes the\n")
	b.WriteString("same workload indistinguishable from a sequential one\n")
	return b.String()
}

// RandomSweep runs the random-access grid on the parallel harness: the
// fix progression (stock, nolimits = fix 1's unbounded linear list, hash,
// enhanced) x sequential/random x read/write, write-phase throughput
// against the filer. The random workloads visit every chunk exactly once
// in a permutation derived from the scenario seed, so reruns and worker
// counts reproduce the same I/O order.
func RandomSweep() *RandomSweepResult {
	const fileMB = 25
	results := runGrid(harness.Grid{
		Servers: []nfssim.ServerKind{nfssim.ServerFiler},
		Configs: []harness.ClientConfig{
			{Name: "stock", Config: core.Stock244Config()},
			{Name: "nolimits", Config: core.NoLimitsConfig()},
			{Name: "hash", Config: core.HashConfig()},
			{Name: "enhanced", Config: core.EnhancedConfig()},
		},
		FileSizesMB: []int{fileMB},
		Workloads: []bonnie.Workload{bonnie.WorkloadWrite, bonnie.WorkloadRandWrite,
			bonnie.WorkloadRead, bonnie.WorkloadRandRead},
		SkipFlushClose: true,
		TimeLimit:      20 * time.Minute,
	})
	r := &RandomSweepResult{Server: nfssim.ServerFiler.String(), FileMB: fileMB}
	for _, res := range results {
		var hitRate float64
		if lookups := res.ReadHits + res.ReadMisses; lookups > 0 {
			hitRate = float64(res.ReadHits) / float64(lookups)
		}
		r.Rows = append(r.Rows, RandomRow{
			Config:      res.Config,
			Workload:    res.Workload,
			MBps:        res.WriteMBps,
			RPCs:        res.RPCsSent + res.ReadRPCs,
			SoftFlushes: res.SoftFlushes,
			HitRate:     hitRate,
		})
	}
	return r
}

// DBRow is one cell of the database-load table.
type DBRow struct {
	Server     string
	Config     string
	MBps       float64       // durable write rate (group commits included)
	FsyncCount int64         // group commits issued
	FsyncTime  time.Duration // total time inside fsync
	CommitRPCs int64         // COMMIT RPCs (0 when the server syncs writes)
	TxPerSec   float64       // chunk updates per second, fsync included
}

// DBLoadResult is the §3.6 durability experiment: random page updates in
// a preallocated table file with a group-commit fsync every FsyncEvery
// chunks — the access pattern of the "complex corporate applications
// such as database and mail services" the paper's introduction
// motivates. The filer acknowledges WRITEs from NVRAM and never needs a
// COMMIT, so its group commits return as soon as the queue drains; the
// Linux server answers UNSTABLE and makes fsync wait on its disk.
type DBLoadResult struct {
	FileMB     int
	FsyncEvery int
	Rows       []DBRow
}

// Row returns one server/config cell (nil if absent).
func (r *DBLoadResult) Row(server, config string) *DBRow {
	for i := range r.Rows {
		if r.Rows[i].Server == server && r.Rows[i].Config == config {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the database-load table.
func (r *DBLoadResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Database load - %d MB random page updates, fsync every %d chunks",
			r.FileMB, r.FsyncEvery),
		"server", "config", "MBps", "fsyncs", "in fsync", "COMMITs", "tx/sec")
	for _, row := range r.Rows {
		t.AddRow(row.Server, row.Config,
			fmt.Sprintf("%.1f", row.MBps), fmt.Sprint(row.FsyncCount),
			row.FsyncTime.Round(time.Millisecond).String(), fmt.Sprint(row.CommitRPCs),
			fmt.Sprintf("%.0f", row.TxPerSec))
	}
	return t
}

// Render formats the table plus the §3.6 headline: "where applications
// require data permanence before a write() system call returns, the
// Network Appliance filer ... performs better".
func (r *DBLoadResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	for _, cfg := range []string{"stock", "enhanced"} {
		f, l := r.Row("filer", cfg), r.Row("linux", cfg)
		if f == nil || l == nil {
			continue
		}
		fmt.Fprintf(&b, "%s: fsync costs %v on the filer vs %v on the Linux server (filer faster: %v)\n",
			cfg, f.FsyncTime.Round(time.Millisecond), l.FsyncTime.Round(time.Millisecond),
			f.FsyncTime < l.FsyncTime)
	}
	b.WriteString("the filer never needs COMMIT (NVRAM): group commits return once the\n")
	b.WriteString("WRITE queue drains; the Linux server answers UNSTABLE and every fsync\n")
	b.WriteString("pays a COMMIT that waits on the server's disk\n")
	return b.String()
}

// DBLoad runs the database-style durability grid on the parallel
// harness: stock vs enhanced clients against the filer and the Linux
// server, random chunk updates with group commit (bonnie.WorkloadDB).
func DBLoad() *DBLoadResult {
	const fileMB = 20
	const fsyncEvery = 50
	results := runGrid(harness.Grid{
		Servers: []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux},
		Configs: []harness.ClientConfig{
			{Name: "stock", Config: core.Stock244Config()},
			{Name: "enhanced", Config: core.EnhancedConfig()},
		},
		FileSizesMB: []int{fileMB},
		Workloads:   []bonnie.Workload{bonnie.WorkloadDB},
		FsyncEvery:  fsyncEvery,
		TimeLimit:   20 * time.Minute,
	})
	r := &DBLoadResult{FileMB: fileMB, FsyncEvery: fsyncEvery}
	for _, res := range results {
		var tps float64
		if res.WriteMBps > 0 {
			elapsedSec := float64(int64(res.FileMB)<<20) / (res.WriteMBps * 1e6)
			tps = float64(res.Calls) / elapsedSec
		}
		r.Rows = append(r.Rows, DBRow{
			Server:     res.Server,
			Config:     res.Config,
			MBps:       res.WriteMBps,
			FsyncCount: res.FsyncCount,
			FsyncTime:  time.Duration(res.FsyncUs * float64(time.Microsecond)),
			CommitRPCs: res.CommitRPCs,
			TxPerSec:   tps,
		})
	}
	return r
}

// ZipfRow is one cell of the many-file metadata table.
type ZipfRow struct {
	Skew     string  // "zipf" (default skew) or "uniform"
	Ac       string  // "on" (adaptive defaults) or "off" (mount -o noac)
	AggMBps  float64 // aggregate data throughput across the op stream
	Lookups  int64   // LOOKUP RPCs
	Getattrs int64   // GETATTR RPCs (open-time revalidation)
	Creates  int64   // CREATE RPCs
	Removes  int64   // REMOVE RPCs
	HitRate  float64 // attribute-cache hits / consultations
}

// ZipfSweepResult is the many-file metadata experiment the paper's
// single-file benchmark never ran: each op opens/writes/reads/stats/
// removes a file drawn from a Zipfian popularity distribution, crossed
// with the client attribute cache on/off and skewed vs uniform file
// choice. The attribute cache converts repeat opens of hot files into
// cache hits, cutting GETATTR/LOOKUP RPCs and raising aggregate
// throughput; skew concentrates ops on a hot set, so zipf beats uniform
// on cache hit rate and total metadata RPCs. (Throughput is not the
// skew comparison's metric: local writes invalidate cached attributes,
// and the hot set's files carry real data whose reads cost wire time,
// so MBps confounds cache savings with bytes moved.)
type ZipfSweepResult struct {
	Server    string
	FileMB    int
	FileCount int
	Rows      []ZipfRow
}

// Cell returns one skew/ac cell (nil if absent).
func (r *ZipfSweepResult) Cell(skew, ac string) *ZipfRow {
	for i := range r.Rows {
		if r.Rows[i].Skew == skew && r.Rows[i].Ac == ac {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the many-file metadata table.
func (r *ZipfSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Many-file metadata - %d MB op budget over %d files, %s, enhanced client",
			r.FileMB, r.FileCount, r.Server),
		"skew", "attr cache", "agg MBps", "LOOKUPs", "GETATTRs", "CREATEs", "REMOVEs", "hit rate")
	for _, row := range r.Rows {
		t.AddRow(row.Skew, row.Ac,
			fmt.Sprintf("%.2f", row.AggMBps), fmt.Sprint(row.Lookups),
			fmt.Sprint(row.Getattrs), fmt.Sprint(row.Creates),
			fmt.Sprint(row.Removes), fmt.Sprintf("%.3f", row.HitRate))
	}
	return t
}

// Render formats the table plus the headline comparisons: the attribute
// cache strictly cuts GETATTR revalidations and raises throughput vs
// noac, and the Zipfian hot set beats uniform access.
func (r *ZipfSweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	if on, off := r.Cell("zipf", "on"), r.Cell("zipf", "off"); on != nil && off != nil {
		fmt.Fprintf(&b, "attribute cache: %d GETATTRs vs %d with noac (fewer: %v); %.2f vs %.2f MBps (faster: %v)\n",
			on.Getattrs, off.Getattrs, on.Getattrs < off.Getattrs,
			on.AggMBps, off.AggMBps, on.AggMBps > off.AggMBps)
	}
	if z, u := r.Cell("zipf", "on"), r.Cell("uniform", "on"); z != nil && u != nil {
		zm, um := z.Lookups+z.Getattrs+z.Creates, u.Lookups+u.Getattrs+u.Creates
		fmt.Fprintf(&b, "hot-set skew: hit rate %.3f vs uniform %.3f (higher: %v); %d metadata RPCs vs %d (fewer: %v)\n",
			z.HitRate, u.HitRate, z.HitRate > u.HitRate, zm, um, zm < um)
	}
	b.WriteString("every op resolves its name through the attribute cache; hot files stay\n")
	b.WriteString("fresh between opens, so the cache saves the per-open GETATTR the way\n")
	b.WriteString("write-behind saves per-write round trips\n")
	return b.String()
}

// ZipfSweep runs the many-file metadata grid on the parallel harness:
// the enhanced client against the filer, the zipf workload at the
// default skew and at uniform, with the attribute cache at its adaptive
// defaults and disabled (mount -o noac).
func ZipfSweep() *ZipfSweepResult {
	const fileMB = 4
	const fileCount = 100
	results := runGrid(harness.Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []harness.ClientConfig{{Name: "enhanced", Config: core.EnhancedConfig()}},
		FileSizesMB: []int{fileMB},
		Workloads:   []bonnie.Workload{bonnie.WorkloadZipf},
		FileCounts:  []int{fileCount},
		ZipfSs:      []float64{bonnie.DefaultZipfS, bonnie.ZipfUniform},
		AcTimeouts:  []sim.Time{0, core.AcOff},
		TimeLimit:   10 * time.Minute,
	})
	r := &ZipfSweepResult{Server: nfssim.ServerFiler.String(), FileMB: fileMB, FileCount: fileCount}
	for _, res := range results {
		skew := "zipf"
		if res.Scenario.ZipfS == bonnie.ZipfUniform {
			skew = "uniform"
		}
		ac := "on"
		if res.Scenario.AcTimeout < 0 {
			ac = "off"
		}
		r.Rows = append(r.Rows, ZipfRow{
			Skew:     skew,
			Ac:       ac,
			AggMBps:  res.AggMBps,
			Lookups:  res.LookupRPCs,
			Getattrs: res.GetattrRPCs,
			Creates:  res.CreateRPCs,
			Removes:  res.RemoveRPCs,
			HitRate:  res.AttrCacheHitRate,
		})
	}
	return r
}

// CoherenceRow is one consistency mode's cell of the cache-coherence
// table.
type CoherenceRow struct {
	Mode          string  // "strict", "ttl" or "noac"
	AggMBps       float64 // aggregate throughput across writers and readers
	StaleReads    int64   // cached reads served during a stale open
	Invalidations int64   // page-cache invalidations from foreign changes
	Getattrs      int64   // GETATTR RPCs (open-time revalidation)
	ChangeBumps   int64   // server-side change-attribute increments
}

// CoherenceSweepResult is the cache-coherence experiment: half the
// clients rewrite one shared file while the other half re-open and
// re-read it, under each consistency mode. Strict mode revalidates
// every open with a GETATTR, so no read is ever served from a stale
// cache — at the cost of per-open round trips and invalidation-driven
// refetches. The ttl mode bounds staleness by the attribute-cache
// window and recovers most of the throughput; noac (in the sense of
// "never revalidate an open") tops the throughput table by trusting
// cached pages unboundedly, and pays in stale reads.
type CoherenceSweepResult struct {
	Server  string
	FileMB  int
	Clients int
	Window  sim.Time // ttl mode's attribute-cache window
	Rows    []CoherenceRow
}

// Cell returns one mode's row (nil if absent).
func (r *CoherenceSweepResult) Cell(mode string) *CoherenceRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the coherence table.
func (r *CoherenceSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Cache coherence - %d clients sharing one %d MB file, %s, enhanced client, ttl window %v",
			r.Clients, r.FileMB, r.Server, time.Duration(r.Window)),
		"mode", "agg MBps", "stale reads", "invalidations", "GETATTRs", "change bumps")
	for _, row := range r.Rows {
		t.AddRow(row.Mode,
			fmt.Sprintf("%.2f", row.AggMBps), fmt.Sprint(row.StaleReads),
			fmt.Sprint(row.Invalidations), fmt.Sprint(row.Getattrs),
			fmt.Sprint(row.ChangeBumps))
	}
	return t
}

// Render formats the table plus the headline trade-off: strict buys
// zero staleness with GETATTR traffic, ttl bounds staleness below noac
// while giving up none of strict's throughput, noac reads fastest and
// stalest.
func (r *CoherenceSweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	strict, ttl, noac := r.Cell("strict"), r.Cell("ttl"), r.Cell("noac")
	if strict != nil && ttl != nil {
		fmt.Fprintf(&b, "strict close-to-open: %d stale reads (zero: %v); %d GETATTRs vs ttl's %d (more: %v)\n",
			strict.StaleReads, strict.StaleReads == 0,
			strict.Getattrs, ttl.Getattrs, strict.Getattrs > ttl.Getattrs)
	}
	if strict != nil && ttl != nil && noac != nil {
		fmt.Fprintf(&b, "ttl window: %d stale reads vs noac's %d (bounded: %v); %.2f vs strict's %.2f MBps (no slower: %v)\n",
			ttl.StaleReads, noac.StaleReads, ttl.StaleReads < noac.StaleReads,
			ttl.AggMBps, strict.AggMBps, ttl.AggMBps >= strict.AggMBps)
	}
	b.WriteString("every GETATTR a mode skips is a round trip saved and a chance to serve\n")
	b.WriteString("a page the writers already replaced; the change attribute is what turns\n")
	b.WriteString("the revalidation that is issued into an actual invalidation\n")
	return b.String()
}

// CoherenceWindow is the ttl attribute-cache window the coherence sweep
// pins. It must sit between one reader pass over the shared span
// (shorter and ttl degenerates to strict: every open ages out) and the
// full run (longer and ttl degenerates to noac: no open ever ages out).
const CoherenceWindow = sim.Time(40 * time.Millisecond)

// CoherenceSweep runs the cache-coherence grid on the parallel harness:
// four enhanced clients against the filer, the shared workload (two
// writers, two readers on one file) under strict, ttl and noac
// consistency.
func CoherenceSweep() *CoherenceSweepResult {
	const fileMB = 2
	const clients = 4
	results := runGrid(harness.Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []harness.ClientConfig{{Name: "enhanced", Config: core.EnhancedConfig()}},
		FileSizesMB: []int{fileMB},
		Clients:     []int{clients},
		Workloads:   []bonnie.Workload{bonnie.WorkloadShared},
		AcTimeouts:  []sim.Time{CoherenceWindow},
		Consistencies: []core.ConsistencyMode{
			core.ConsistencyStrict, core.ConsistencyTTL, core.ConsistencyNoac,
		},
		TimeLimit: 10 * time.Minute,
	})
	r := &CoherenceSweepResult{
		Server: nfssim.ServerFiler.String(), FileMB: fileMB,
		Clients: clients, Window: CoherenceWindow,
	}
	for _, res := range results {
		r.Rows = append(r.Rows, CoherenceRow{
			Mode:          res.Consistency,
			AggMBps:       res.AggMBps,
			StaleReads:    res.StaleReads,
			Invalidations: res.Invalidations,
			Getattrs:      res.GetattrRPCs,
			ChangeBumps:   res.ChangeBumps,
		})
	}
	return r
}

// JumboResult is the §3.5 future-work ablation: jumbo frames cut IP
// fragmentation, reducing per-RPC sock_sendmsg CPU.
type JumboResult struct {
	StandardMBps    float64
	JumboMBps       float64
	StandardSendCPU time.Duration // total sock_sendmsg CPU, standard MTU
	JumboSendCPU    time.Duration
}

// Render formats the ablation.
func (r *JumboResult) Render() string {
	return fmt.Sprintf(`Jumbo-frame ablation (§3.5 future work), filer, enhanced client, 20 MB
  write throughput: MTU 1500 %.1f MBps -> MTU 9000 %.1f MBps
  sock_sendmsg CPU: MTU 1500 %v -> MTU 9000 %v
`, r.StandardMBps, r.JumboMBps, r.StandardSendCPU, r.JumboSendCPU)
}

// Jumbo runs the jumbo-frame ablation as a harness grid over the MTU
// axis: filer, enhanced client, 20 MB, standard versus jumbo frames.
func Jumbo() *JumboResult {
	results := runGrid(harness.Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []harness.ClientConfig{{Name: "enhanced", Config: core.EnhancedConfig()}},
		FileSizesMB: []int{20},
		Jumbo:       []bool{false, true},
		TimeLimit:   10 * time.Minute,
	})
	r := &JumboResult{}
	for _, res := range results {
		if res.Jumbo {
			r.JumboMBps, r.JumboSendCPU = res.FlushMBps, res.SendCPU
		} else {
			r.StandardMBps, r.StandardSendCPU = res.FlushMBps, res.SendCPU
		}
	}
	return r
}

// FleetRow is one cell of the thousand-client fleet table.
type FleetRow struct {
	Clients   int
	PerClient float64 // mean per-client throughput through close, MBps
	Aggregate float64 // fleet bytes over the span to the last close, MBps
	Fairness  float64 // Jain's index over per-client throughputs
	ServerNet float64 // sustained server ingest, MBps
	// Slot-table convoying: the share of RPCs that found their client's
	// slot table full, and the mean time such an RPC spent queued. As
	// the fleet grows the server becomes the bottleneck, replies slow
	// down, slots stay occupied longer, and new requests convoy behind
	// them — the client-visible signature of server saturation.
	SlotWaitShare float64
	SlotWaitUs    float64 // mean queue time per waiting RPC, microseconds
}

// FleetResult is the fleet experiment: the Clients axis extended past
// the paper's hardware to 10/100/1000 client machines in one
// deterministic simulation (ROADMAP item 2).
type FleetResult struct {
	Server string
	Config string
	FileMB int
	Rows   []FleetRow
}

// Table renders the fleet table.
func (r *FleetResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Thousand-client fleet - %d MB per client, full runs, %s/%s", r.FileMB, r.Server, r.Config),
		"clients", "per-client MBps", "aggregate MBps", "fairness", "server MBps", "slot-wait share", "slot-wait us")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Clients),
			fmt.Sprintf("%.2f", row.PerClient), fmt.Sprintf("%.1f", row.Aggregate),
			fmt.Sprintf("%.3f", row.Fairness), fmt.Sprintf("%.1f", row.ServerNet),
			fmt.Sprintf("%.3f", row.SlotWaitShare), fmt.Sprintf("%.0f", row.SlotWaitUs))
	}
	return t
}

// Render formats the table plus the headline observation.
func (r *FleetResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	b.WriteString("the server's sustained ingest is a fixed ceiling, so per-client\n")
	b.WriteString("throughput falls as 1/N while fairness holds near 1.0; the slot-wait\n")
	b.WriteString("columns show requests convoying behind occupied slots as replies slow\n")
	return b.String()
}

// Fleet runs the fleet grid: an enhanced client fleet of 10/100/1000
// machines, each writing a small file through close against the filer.
// Kept affordable by the kernel's event-queue and allocation work — a
// thousand-client run is a single simulation with ~3000 live processes.
func Fleet() *FleetResult {
	return FleetAt([]int{10, 100, 1000}, 1)
}

// FleetAt runs the fleet table at explicit client counts and per-client
// file size — the parameterized form behind Fleet, the shape test, and
// BenchmarkFleet1000.
func FleetAt(clients []int, fileMB int) *FleetResult {
	results := runGrid(harness.Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []harness.ClientConfig{{Name: "enhanced", Config: core.EnhancedConfig()}},
		FileSizesMB: []int{fileMB},
		Clients:     clients,
		TimeLimit:   2 * time.Hour,
	})
	r := &FleetResult{Server: nfssim.ServerFiler.String(), Config: "enhanced", FileMB: fileMB}
	for _, res := range results {
		row := FleetRow{
			Clients:   res.Clients,
			PerClient: res.CloseMBps,
			Aggregate: res.AggMBps,
			Fairness:  res.Fairness,
			ServerNet: res.ServerNetMBps,
		}
		total := res.RPCsSent + res.ReadRPCs + res.CommitRPCs +
			res.LookupRPCs + res.GetattrRPCs + res.CreateRPCs + res.RemoveRPCs
		if total > 0 {
			row.SlotWaitShare = float64(res.SlotWaits) / float64(total)
		}
		if res.SlotWaits > 0 {
			row.SlotWaitUs = res.SlotWaitUs / float64(res.SlotWaits)
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}
