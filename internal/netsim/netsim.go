// Package netsim models the paper's test network: hosts attached to a
// single Extreme Summit7i-style full-duplex switch over links with
// configurable bandwidth and propagation delay, carrying UDP datagrams
// that fragment at the IP layer when they exceed the MTU.
//
// NFS over UDP with wsize=8192 puts ~8.3 KB datagrams on a 1500-byte-MTU
// wire, so every WRITE RPC becomes six IP fragments; the paper suspects
// this fragmentation/reassembly work is where the 50 µs per sock_sendmsg
// goes and suggests jumbo packets as future work (§3.5). Fragment counts
// are first-class results here so the RPC layer can charge per-fragment
// CPU and the jumbo-frame ablation can show the saving.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Wire and protocol overhead constants (bytes).
const (
	// EthernetOverhead counts preamble+SFD (8), MAC header (14), FCS (4)
	// and minimum inter-frame gap (12) — what each frame costs on the wire
	// beyond its IP payload.
	EthernetOverhead = 38
	// IPHeader is the IPv4 header carried by every fragment.
	IPHeader = 20
	// UDPHeader is carried only by the first fragment of a datagram.
	UDPHeader = 8

	// MTUEthernet is the standard MTU; the paper's switch and hosts run
	// without jumbo frames (§3.1).
	MTUEthernet = 1500
	// MTUJumbo is the gigabit jumbo-frame MTU for the §3.5 ablation.
	MTUJumbo = 9000
)

// Gigabit and fast-ethernet link bandwidths in bytes per second.
const (
	BandwidthGigabit = 125_000_000 // 1000base-T, 1 Gb/s
	Bandwidth100Mbit = 12_500_000  // 100base-T (§3.5 slow-server check)
)

// Datagram is one UDP datagram traversing the network.
type Datagram struct {
	From    string
	To      string
	Payload []byte
}

// Handler receives datagrams delivered to a host. It runs in event
// context on the virtual clock; implementations typically hand the
// datagram to a simulated process.
type Handler func(dg Datagram)

// LinkConfig describes one host's attachment to the switch.
type LinkConfig struct {
	// Bandwidth in bytes per second, per direction (full duplex).
	Bandwidth int64
	// Propagation is the one-way latency to the switch (cable + switch
	// forwarding).
	Propagation sim.Time
	// MTU is the link MTU; datagrams larger than MTU-28 fragment.
	MTU int
}

// DefaultGigabit returns the paper's client/server attachment: gigabit,
// standard MTU, ~20 µs one-way through the switch.
func DefaultGigabit() LinkConfig {
	return LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 20_000, MTU: MTUEthernet}
}

type host struct {
	name    string
	cfg     LinkConfig
	handler Handler
	// down marks the host's link administratively down (chaos link_down):
	// nothing is sent and anything arriving is discarded at the NIC.
	down bool
	// txFreeAt / rxFreeAt serialize this host's uplink and downlink.
	txFreeAt sim.Time
	rxFreeAt sim.Time

	// Statistics. FramesRecv counts every fragment that physically
	// arrived — including fragments of datagrams later discarded at
	// reassembly — so FramesSent = FramesRecv + FramesDropped across a
	// path. BytesReceived counts only fully reassembled datagrams;
	// LostDatagrams counts the discards. DownDrops counts datagrams that
	// died against a downed link (at either end).
	BytesSent     int64
	BytesReceived int64
	FramesSent    int64
	FramesRecv    int64
	FramesDropped int64
	LostDatagrams int64
	DownDrops     int64
}

// LossConfig degrades the network: every IP fragment is independently
// dropped with probability Rate, and every delivered datagram picks up a
// uniform extra delay in [0, DelayJitter]. Both draws come from a
// dedicated random stream derived from the simulation seed, so the same
// seed always produces the same drop pattern and enabling loss never
// perturbs the draw sequence other components (e.g. CPU-cost jitter) see.
//
// Dropping at fragment granularity is what makes the transports diverge:
// an NFS/UDP WRITE is one 8 KB datagram in six fragments, and losing any
// one of them discards the whole datagram at reassembly (the paper's §1
// pain point), while a TCP-style stream sends MTU-sized segments that
// each fit in a single fragment and are retransmitted individually.
type LossConfig struct {
	// Rate is the per-fragment drop probability, in [0, 1]. Rate 1 is a
	// black hole: every fragment dies, so the link is effectively down
	// while still charging wire time on the sender's side.
	Rate float64
	// DelayJitter is the maximum extra delivery delay per datagram.
	DelayJitter sim.Time
}

// Network is a star topology around one switch.
type Network struct {
	s     *sim.Sim
	hosts map[string]*host
	loss  LossConfig
	lrng  *rand.Rand // loss/jitter stream; seeded eagerly at New
}

// New returns an empty network on the given simulator. The loss/jitter
// random stream is seeded here, unconditionally: draws are only consumed
// while a LossConfig is active, so a chaos scenario that enables loss
// mid-run sees exactly the stream a loss-from-start run would have seen,
// with no lazy-creation point to shift it.
func New(s *sim.Sim) *Network {
	return &Network{
		s:     s,
		hosts: make(map[string]*host),
		// A fixed odd multiplier decorrelates this stream from sims whose
		// seeds differ by small deltas (repeat seeds are seed, seed+1, ...).
		lrng: rand.New(rand.NewSource(s.Seed()*0x9E3779B1 + 0x6C6F7373)),
	}
}

// SetLoss installs (or, with a zero config, removes) the network's loss
// and delay-jitter model; it may be called mid-run (chaos loss_burst /
// jitter_burst windows). The random stream is seeded from the simulation
// seed at New, so loss patterns are deterministic per seed and
// independent of every other random draw in the simulation.
func (n *Network) SetLoss(cfg LossConfig) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		panic("netsim: loss rate must be in [0, 1]")
	}
	if cfg.DelayJitter < 0 {
		panic("netsim: delay jitter must be non-negative")
	}
	n.loss = cfg
}

// SetDown marks a host's link administratively down (or back up). While
// down, datagrams the host sends are dropped at its NIC without touching
// the wire, and datagrams addressed to it are discarded — including ones
// already in flight when the link went down.
func (n *Network) SetDown(name string, down bool) {
	n.mustHost(name).down = down
}

// Down reports whether a host's link is administratively down.
func (n *Network) Down(name string) bool { return n.mustHost(name).down }

// Loss returns the network's current loss model.
func (n *Network) Loss() LossConfig { return n.loss }

// AddHost attaches a host to the switch. The handler receives datagrams
// addressed to it.
func (n *Network) AddHost(name string, cfg LinkConfig, h Handler) {
	if _, dup := n.hosts[name]; dup {
		panic("netsim: duplicate host " + name)
	}
	if cfg.Bandwidth <= 0 || cfg.MTU <= IPHeader+UDPHeader {
		panic("netsim: bad link config for " + name)
	}
	n.hosts[name] = &host{name: name, cfg: cfg, handler: h}
}

// SetHandler replaces a host's delivery handler.
func (n *Network) SetHandler(name string, h Handler) {
	n.mustHost(name).handler = h
}

func (n *Network) mustHost(name string) *host {
	h, ok := n.hosts[name]
	if !ok {
		panic("netsim: unknown host " + name)
	}
	return h
}

// FragmentCount returns how many IP fragments a UDP payload of n bytes
// needs at the given MTU. The first fragment carries the UDP header; each
// fragment's payload is a multiple of 8 bytes except the last.
func FragmentCount(n, mtu int) int {
	if n <= 0 {
		return 1
	}
	capacity := mtu - IPHeader // bytes of (UDP hdr + payload) per fragment
	total := n + UDPHeader
	if total <= capacity {
		return 1
	}
	per := capacity / 8 * 8 // fragment offsets are in 8-byte units
	frags := 0
	for total > 0 {
		take := per
		if total <= capacity {
			take = total
		}
		total -= take
		frags++
	}
	return frags
}

// WireBytes returns the total on-the-wire size (ethernet framing included)
// of a UDP payload of n bytes at the given MTU.
func WireBytes(n, mtu int) int64 {
	frags := FragmentCount(n, mtu)
	return int64(n + UDPHeader + frags*(IPHeader+EthernetOverhead))
}

// SendResult reports what a Send did, so callers can charge CPU.
type SendResult struct {
	Fragments int
	WireBytes int64
	// TxTime is how long the sender's uplink was occupied.
	TxTime sim.Time
	// DeliverAt is when the datagram lands at the receiver (meaningless
	// when Dropped).
	DeliverAt sim.Time
	// Dropped reports that the loss model discarded at least one fragment,
	// so the datagram never reassembles and the handler never runs.
	Dropped bool
	// DroppedFragments is how many of the datagram's fragments were lost.
	DroppedFragments int
}

// Send transmits a UDP datagram from one host to another. The sender's
// uplink and the receiver's downlink are FIFO-serialized; delivery happens
// when the last fragment clears the receiver's link, at which point the
// receiving host's handler runs. Send does not block the caller; the
// caller models its own CPU cost (the sock_sendmsg time) separately.
//
// Under a LossConfig each fragment is independently dropped with the
// configured probability; losing any fragment loses the whole datagram
// (IP reassembly never completes), and the wire time the fragments
// consumed is still charged to both links — lost traffic is not free.
func (n *Network) Send(dg Datagram) SendResult {
	src := n.mustHost(dg.From)
	dst := n.mustHost(dg.To)
	mtu := src.cfg.MTU
	if dst.cfg.MTU < mtu {
		mtu = dst.cfg.MTU // path MTU
	}
	frags := FragmentCount(len(dg.Payload), mtu)
	wire := WireBytes(len(dg.Payload), mtu)

	if src.down || dst.down {
		// A downed link at either end kills the datagram before it costs
		// any wire time (the sender's driver drops, or the switch port is
		// dead). No loss-model draws are consumed: the link state, not
		// chance, decided.
		if src.down {
			src.DownDrops++
		} else {
			dst.DownDrops++
		}
		// WireBytes is zero: nothing reached the wire, unlike loss-model
		// drops, which consume wire time for the fragments they carried.
		return SendResult{Fragments: frags, Dropped: true, DroppedFragments: frags}
	}

	dropped := 0
	if n.loss.Rate > 0 {
		for i := 0; i < frags; i++ {
			if n.lrng.Float64() < n.loss.Rate {
				dropped++
			}
		}
	}

	now := n.s.Now()
	txStart := now
	if src.txFreeAt > txStart {
		txStart = src.txFreeAt
	}
	txTime := sim.Time(wire * 1e9 / src.cfg.Bandwidth)
	txDone := txStart + txTime
	src.txFreeAt = txDone

	atSwitch := txDone + src.cfg.Propagation

	rxStart := atSwitch
	if dst.rxFreeAt > rxStart {
		rxStart = dst.rxFreeAt
	}
	rxTime := sim.Time(wire * 1e9 / dst.cfg.Bandwidth)
	deliverAt := rxStart + rxTime + dst.cfg.Propagation
	dst.rxFreeAt = rxStart + rxTime

	src.BytesSent += wire
	src.FramesSent += int64(frags)

	res := SendResult{Fragments: frags, WireBytes: wire, TxTime: txDone - txStart}
	if dropped > 0 {
		dst.FramesRecv += int64(frags - dropped)
		dst.FramesDropped += int64(dropped)
		dst.LostDatagrams++
		res.Dropped = true
		res.DroppedFragments = dropped
		return res
	}
	if n.loss.DelayJitter > 0 {
		deliverAt += sim.Time(n.lrng.Int63n(int64(n.loss.DelayJitter) + 1))
	}

	// Receive accounting happens at delivery time: a datagram in flight
	// when the destination link goes down dies at the dead port instead of
	// reassembling.
	n.s.At(deliverAt, func() {
		if dst.down {
			dst.FramesDropped += int64(frags)
			dst.LostDatagrams++
			dst.DownDrops++
			return
		}
		dst.BytesReceived += wire
		dst.FramesRecv += int64(frags)
		if dst.handler != nil {
			dst.handler(dg)
		}
	})
	res.DeliverAt = deliverAt
	return res
}

// Stats describes a host's traffic counters.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	FramesSent    int64
	FramesRecv    int64
	FramesDropped int64
	LostDatagrams int64
	DownDrops     int64
}

// HostStats returns the traffic counters for a host.
func (n *Network) HostStats(name string) Stats {
	h := n.mustHost(name)
	return Stats{h.BytesSent, h.BytesReceived, h.FramesSent, h.FramesRecv,
		h.FramesDropped, h.LostDatagrams, h.DownDrops}
}

// Totals returns the network-wide sums of every host's counters.
// (Summation is order-independent, so map iteration is safe here.)
func (n *Network) Totals() Stats {
	var t Stats
	for _, h := range n.hosts {
		t.BytesSent += h.BytesSent
		t.BytesReceived += h.BytesReceived
		t.FramesSent += h.FramesSent
		t.FramesRecv += h.FramesRecv
		t.FramesDropped += h.FramesDropped
		t.LostDatagrams += h.LostDatagrams
		t.DownDrops += h.DownDrops
	}
	return t
}

func (s Stats) String() string {
	return fmt.Sprintf("tx %d B/%d frames, rx %d B/%d frames",
		s.BytesSent, s.FramesSent, s.BytesReceived, s.FramesRecv)
}
