package netsim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// A downed destination link drops sends without consuming wire time; the
// drop is counted and delivery resumes when the link comes back.
func TestSetDownDropsAndRecovers(t *testing.T) {
	s, n, got := twoHosts(t, DefaultGigabit())
	n.SetDown("server", true)
	if !n.Down("server") {
		t.Fatal("Down not reported after SetDown")
	}
	res := n.Send(Datagram{From: "client", To: "server", Payload: make([]byte, 100)})
	if !res.Dropped || res.WireBytes != 0 {
		t.Fatalf("send to a downed host: %+v, want dropped with no wire bytes", res)
	}
	s.Run(time.Second)
	if len(*got) != 0 {
		t.Fatalf("%d datagrams delivered to a downed host", len(*got))
	}
	if st := n.HostStats("server"); st.DownDrops != 1 {
		t.Fatalf("server DownDrops = %d, want 1", st.DownDrops)
	}
	n.SetDown("server", false)
	if res := n.Send(Datagram{From: "client", To: "server", Payload: make([]byte, 100)}); res.Dropped {
		t.Fatal("send dropped after link came back up")
	}
	s.Run(time.Second)
	if len(*got) != 1 {
		t.Fatalf("delivered %d datagrams after link up, want 1", len(*got))
	}
}

// A downed source drops at its own NIC and is charged the drop.
func TestSetDownSourceDrops(t *testing.T) {
	_, n, _ := twoHosts(t, DefaultGigabit())
	n.SetDown("client", true)
	if res := n.Send(Datagram{From: "client", To: "server", Payload: make([]byte, 100)}); !res.Dropped {
		t.Fatal("send from a downed host not dropped")
	}
	if st := n.HostStats("client"); st.DownDrops != 1 {
		t.Fatalf("client DownDrops = %d, want 1", st.DownDrops)
	}
}

// A datagram already in flight dies if the destination link goes down
// before delivery — the chaos link_down event must kill it.
func TestDownKillsInFlightDatagram(t *testing.T) {
	s, n, got := twoHosts(t, DefaultGigabit())
	res := n.Send(Datagram{From: "client", To: "server", Payload: make([]byte, 100)})
	if res.Dropped {
		t.Fatal("send dropped with both links up")
	}
	s.At(res.DeliverAt-1, func() { n.SetDown("server", true) })
	s.Run(time.Second)
	if len(*got) != 0 {
		t.Fatal("in-flight datagram delivered to a downed link")
	}
	st := n.HostStats("server")
	if st.DownDrops != 1 || st.LostDatagrams != 1 {
		t.Fatalf("stats = %+v, want the in-flight datagram counted dead", st)
	}
}

// Rate 1 is legal — a black hole that still charges the sender's wire
// time, unlike an administratively-down link.
func TestFullLossRateBlackHole(t *testing.T) {
	s, n, got := twoHosts(t, DefaultGigabit())
	n.SetLoss(LossConfig{Rate: 1})
	for i := 0; i < 10; i++ {
		if res := n.Send(Datagram{From: "client", To: "server", Payload: make([]byte, 2000)}); !res.Dropped {
			t.Fatal("datagram survived rate-1 loss")
		}
	}
	s.Run(time.Second)
	if len(*got) != 0 {
		t.Fatalf("%d datagrams delivered through a black hole", len(*got))
	}
	st := n.HostStats("client")
	if st.BytesSent == 0 {
		t.Fatal("rate-1 loss charged no wire time; that is SetDown's job")
	}
	if n.HostStats("server").LostDatagrams != 10 {
		t.Fatalf("lost = %d, want 10", n.HostStats("server").LostDatagrams)
	}
}

func TestSetLossRejectsOutOfRange(t *testing.T) {
	for _, bad := range []LossConfig{{Rate: -0.1}, {Rate: 1.1}, {DelayJitter: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetLoss(%+v) did not panic", bad)
				}
			}()
			_, n, _ := twoHosts(t, DefaultGigabit())
			n.SetLoss(bad)
		}()
	}
}

// The loss stream is seeded eagerly at New and draws are consumed only
// while loss is active, so a scenario that enables loss mid-run sees
// exactly the drop pattern a loss-from-start run sees. This pins the
// chaos loss_burst determinism contract.
func TestLossStreamIndependentOfEnableTime(t *testing.T) {
	pattern := func(warmup int) []bool {
		s := sim.New(42)
		n := New(s)
		n.AddHost("a", DefaultGigabit(), nil)
		n.AddHost("b", DefaultGigabit(), nil)
		for i := 0; i < warmup; i++ {
			// Lossless traffic before the burst must not consume draws.
			n.Send(Datagram{From: "a", To: "b", Payload: make([]byte, 2000)})
		}
		n.SetLoss(LossConfig{Rate: 0.3})
		drops := make([]bool, 0, 50)
		for i := 0; i < 50; i++ {
			res := n.Send(Datagram{From: "a", To: "b", Payload: make([]byte, 2000)})
			drops = append(drops, res.Dropped)
		}
		return drops
	}
	cold, warm := pattern(0), pattern(25)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("drop pattern depends on when loss was enabled; lrng seeding is not eager")
	}
	any := false
	for _, d := range cold {
		any = any || d
	}
	if !any {
		t.Fatal("no drops at 30% loss; the pattern comparison is vacuous")
	}
}
