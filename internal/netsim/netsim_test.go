package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/nfsproto"
	"repro/internal/sim"
)

func twoHosts(t *testing.T, cfg LinkConfig) (*sim.Sim, *Network, *[]Datagram) {
	t.Helper()
	s := sim.New(1)
	n := New(s)
	var got []Datagram
	n.AddHost("client", cfg, nil)
	n.AddHost("server", cfg, func(dg Datagram) { got = append(got, dg) })
	return s, n, &got
}

func TestFragmentCountStandardMTU(t *testing.T) {
	// An 8 KB NFS WRITE over UDP at MTU 1500: payload+UDP = 8420ish bytes,
	// 1472 usable per fragment -> 6 fragments, as on the paper's network.
	sz := nfsproto.WriteCallSize(8192)
	if got := FragmentCount(sz, MTUEthernet); got != 6 {
		t.Fatalf("fragments(%d, 1500) = %d, want 6", sz, got)
	}
}

func TestFragmentCountJumbo(t *testing.T) {
	sz := nfsproto.WriteCallSize(8192)
	if got := FragmentCount(sz, MTUJumbo); got != 1 {
		t.Fatalf("fragments(%d, 9000) = %d, want 1", sz, got)
	}
}

func TestFragmentCountSmall(t *testing.T) {
	if FragmentCount(0, MTUEthernet) != 1 {
		t.Fatal("empty datagram should be 1 fragment")
	}
	if FragmentCount(100, MTUEthernet) != 1 {
		t.Fatal("small datagram should be 1 fragment")
	}
	if FragmentCount(1473, MTUEthernet) != 2 {
		t.Fatal("just-over-MTU datagram should be 2 fragments")
	}
}

// Property: fragment payloads must cover the datagram exactly — count is
// ceil-ish and consistent with per-fragment capacity.
func TestFragmentCountProperty(t *testing.T) {
	f := func(nRaw uint16, jumbo bool) bool {
		n := int(nRaw)
		mtu := MTUEthernet
		if jumbo {
			mtu = MTUJumbo
		}
		frags := FragmentCount(n, mtu)
		if frags < 1 {
			return false
		}
		// All fragments fit within MTU and carry the whole payload.
		capTotal := frags * (mtu - IPHeader)
		return capTotal >= n+UDPHeader
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireBytesMonotonicInFragments(t *testing.T) {
	// Jumbo frames must reduce total wire bytes for an 8 KB write.
	sz := nfsproto.WriteCallSize(8192)
	std := WireBytes(sz, MTUEthernet)
	jmb := WireBytes(sz, MTUJumbo)
	if jmb >= std {
		t.Fatalf("jumbo wire bytes %d >= standard %d", jmb, std)
	}
}

func TestDeliveryAndTiming(t *testing.T) {
	cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 20 * time.Microsecond, MTU: MTUEthernet}
	s, n, got := twoHosts(t, cfg)
	payload := make([]byte, 1000)
	res := n.Send(Datagram{From: "client", To: "server", Payload: payload})
	s.Run(0)
	if len(*got) != 1 {
		t.Fatalf("delivered %d datagrams", len(*got))
	}
	if res.Fragments != 1 {
		t.Fatalf("fragments = %d", res.Fragments)
	}
	// 1000+8+20+38 = 1066 wire bytes at 125 MB/s = 8.528µs tx, twice
	// (uplink + downlink) plus 2x20µs propagation.
	wantWire := int64(1066)
	if res.WireBytes != wantWire {
		t.Fatalf("wire bytes = %d, want %d", res.WireBytes, wantWire)
	}
	wantDeliver := sim.Time(2*(wantWire*1e9/BandwidthGigabit)) + 40*time.Microsecond
	if res.DeliverAt != wantDeliver {
		t.Fatalf("deliver at %v, want %v", res.DeliverAt, wantDeliver)
	}
}

func TestUplinkSerialization(t *testing.T) {
	cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUEthernet}
	s, n, got := twoHosts(t, cfg)
	p := make([]byte, 1434) // 1434+8+20+38 = 1500 wire bytes = 12µs at 1Gb
	r1 := n.Send(Datagram{From: "client", To: "server", Payload: p})
	r2 := n.Send(Datagram{From: "client", To: "server", Payload: p})
	s.Run(0)
	if len(*got) != 2 {
		t.Fatalf("delivered %d", len(*got))
	}
	if r2.DeliverAt <= r1.DeliverAt {
		t.Fatal("second datagram did not queue behind first")
	}
	if r2.DeliverAt-r1.DeliverAt != 12*time.Microsecond {
		t.Fatalf("spacing = %v, want 12µs", r2.DeliverAt-r1.DeliverAt)
	}
}

func TestFullDuplex(t *testing.T) {
	cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUEthernet}
	s := sim.New(1)
	n := New(s)
	delivered := 0
	n.AddHost("a", cfg, func(Datagram) { delivered++ })
	n.AddHost("b", cfg, func(Datagram) { delivered++ })
	p := make([]byte, 1434)
	ra := n.Send(Datagram{From: "a", To: "b", Payload: p})
	rb := n.Send(Datagram{From: "b", To: "a", Payload: p})
	s.Run(0)
	if delivered != 2 {
		t.Fatalf("delivered = %d", delivered)
	}
	if ra.DeliverAt != rb.DeliverAt {
		t.Fatalf("full duplex broken: %v vs %v", ra.DeliverAt, rb.DeliverAt)
	}
}

func TestPathMTUIsMinimum(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	jumboCfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUJumbo}
	stdCfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUEthernet}
	n.AddHost("jumbohost", jumboCfg, nil)
	n.AddHost("stdhost", stdCfg, nil)
	res := n.Send(Datagram{From: "jumbohost", To: "stdhost", Payload: make([]byte, 8192)})
	s.Run(0)
	if res.Fragments < 6 {
		t.Fatalf("fragments = %d; path MTU should clamp to 1500", res.Fragments)
	}
}

func TestSlowLink(t *testing.T) {
	fast := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUEthernet}
	slow := LinkConfig{Bandwidth: Bandwidth100Mbit, Propagation: 0, MTU: MTUEthernet}
	s := sim.New(1)
	n := New(s)
	n.AddHost("client", fast, nil)
	n.AddHost("slowsrv", slow, nil)
	res := n.Send(Datagram{From: "client", To: "slowsrv", Payload: make([]byte, 8192)})
	s.Run(0)
	// Receive time dominated by the 100 Mb downlink: ~8.5 KB at 12.5 MB/s
	// is ~685µs.
	if res.DeliverAt < 600*time.Microsecond {
		t.Fatalf("delivery over 100Mb link too fast: %v", res.DeliverAt)
	}
}

func TestHostStats(t *testing.T) {
	cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUEthernet}
	s, n, _ := twoHosts(t, cfg)
	n.Send(Datagram{From: "client", To: "server", Payload: make([]byte, 8192)})
	s.Run(0)
	cs := n.HostStats("client")
	ss := n.HostStats("server")
	if cs.BytesSent == 0 || cs.BytesSent != ss.BytesReceived {
		t.Fatalf("stats mismatch: %v vs %v", cs, ss)
	}
	if cs.FramesSent != 6 {
		t.Fatalf("frames = %d, want 6", cs.FramesSent)
	}
	if cs.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestSetHandler(t *testing.T) {
	cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUEthernet}
	s, n, _ := twoHosts(t, cfg)
	hit := false
	n.SetHandler("server", func(Datagram) { hit = true })
	n.Send(Datagram{From: "client", To: "server", Payload: []byte{1}})
	s.Run(0)
	if !hit {
		t.Fatal("replacement handler not called")
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	n := New(s)
	n.AddHost("x", DefaultGigabit(), nil)
	n.AddHost("x", DefaultGigabit(), nil)
}

func TestUnknownHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	n := New(s)
	n.AddHost("x", DefaultGigabit(), nil)
	n.Send(Datagram{From: "x", To: "nope", Payload: nil})
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	n := New(s)
	n.AddHost("x", LinkConfig{Bandwidth: 0, MTU: 1500}, nil)
}

// dropPattern sends count 8 KB datagrams through a lossy network and
// returns which were delivered.
func dropPattern(seed int64, rate float64, count int) []bool {
	s := sim.New(seed)
	n := New(s)
	cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 20 * time.Microsecond, MTU: MTUEthernet}
	n.AddHost("client", cfg, nil)
	n.AddHost("server", cfg, nil)
	n.SetLoss(LossConfig{Rate: rate})
	pattern := make([]bool, count)
	payload := make([]byte, nfsproto.WriteCallSize(8192))
	for i := 0; i < count; i++ {
		pattern[i] = !n.Send(Datagram{From: "client", To: "server", Payload: payload}).Dropped
	}
	s.Run(0)
	return pattern
}

// Loss determinism: the same seed must reproduce the exact drop pattern;
// different seeds must produce different ones.
func TestLossDeterministicPerSeed(t *testing.T) {
	const n = 400
	a := dropPattern(3, 0.05, n)
	b := dropPattern(3, 0.05, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at datagram %d", i)
		}
	}
	c := dropPattern(4, 0.05, n)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 3 and 4 produced identical drop patterns")
	}
	dropped := 0
	for _, ok := range a {
		if !ok {
			dropped++
		}
	}
	// 6 fragments at 5%: P(datagram lost) = 1-0.95^6 ~ 26%.
	if dropped == 0 || dropped == n {
		t.Fatalf("dropped %d of %d, expected a lossy-but-not-dead pattern", dropped, n)
	}
}

func TestLossZeroIsLossless(t *testing.T) {
	for _, ok := range dropPattern(1, 0, 200) {
		if !ok {
			t.Fatal("datagram dropped with loss disabled")
		}
	}
}

// A dropped datagram must never reach the handler, and the drop counters
// must record it.
func TestLossDropsNeverDeliver(t *testing.T) {
	s := sim.New(9)
	n := New(s)
	cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUEthernet}
	delivered := 0
	n.AddHost("client", cfg, nil)
	n.AddHost("server", cfg, func(Datagram) { delivered++ })
	n.SetLoss(LossConfig{Rate: 0.2})
	payload := make([]byte, nfsproto.WriteCallSize(8192))
	sent, droppedDgrams := 200, 0
	for i := 0; i < sent; i++ {
		if n.Send(Datagram{From: "client", To: "server", Payload: payload}).Dropped {
			droppedDgrams++
		}
	}
	s.Run(0)
	if delivered+droppedDgrams != sent {
		t.Fatalf("delivered %d + dropped %d != sent %d", delivered, droppedDgrams, sent)
	}
	if droppedDgrams == 0 {
		t.Fatal("expected drops at 20% fragment loss")
	}
	ss := n.HostStats("server")
	if ss.LostDatagrams != int64(droppedDgrams) || ss.FramesDropped == 0 {
		t.Fatalf("server stats %+v, want %d lost datagrams", ss, droppedDgrams)
	}
	if tot := n.Totals(); tot.FramesDropped != ss.FramesDropped {
		t.Fatalf("totals %+v disagree with server stats %+v", tot, ss)
	}
}

// Delay jitter must spread deliveries without dropping anything, and be
// reproducible per seed.
func TestDelayJitterDeterministic(t *testing.T) {
	run := func(seed int64) []sim.Time {
		s := sim.New(seed)
		n := New(s)
		cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 0, MTU: MTUEthernet}
		n.AddHost("client", cfg, nil)
		n.AddHost("server", cfg, nil)
		n.SetLoss(LossConfig{DelayJitter: 500 * time.Microsecond})
		var at []sim.Time
		for i := 0; i < 50; i++ {
			res := n.Send(Datagram{From: "client", To: "server", Payload: make([]byte, 100)})
			if res.Dropped {
				t.Fatal("jitter-only config dropped a datagram")
			}
			at = append(at, res.DeliverAt)
		}
		s.Run(0)
		return at
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different delivery time at %d: %v vs %v", i, a[i], b[i])
		}
	}
	varied := false
	for i := 1; i < len(a); i++ {
		if a[i]-a[i-1] != a[1]-a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter did not vary delivery spacing")
	}
}

func TestBadLossConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	n := New(s)
	n.SetLoss(LossConfig{Rate: 1.5})
}

func TestGigabitThroughputCeiling(t *testing.T) {
	// Blasting 1000 8 KB writes back to back should take at least
	// payload/bandwidth and approach wire saturation, never exceed it.
	cfg := LinkConfig{Bandwidth: BandwidthGigabit, Propagation: 20 * time.Microsecond, MTU: MTUEthernet}
	s, n, got := twoHosts(t, cfg)
	sz := nfsproto.WriteCallSize(8192)
	payload := make([]byte, sz)
	for i := 0; i < 1000; i++ {
		n.Send(Datagram{From: "client", To: "server", Payload: payload})
	}
	end := s.Run(0)
	if len(*got) != 1000 {
		t.Fatalf("delivered %d", len(*got))
	}
	gbps := float64(1000*sz) * 8 / end.Seconds() / 1e9
	if gbps > 1.0 {
		t.Fatalf("throughput %v Gb/s exceeds wire speed", gbps)
	}
	if gbps < 0.85 {
		t.Fatalf("throughput %v Gb/s; back-to-back sends should near-saturate", gbps)
	}
}
