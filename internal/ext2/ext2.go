// Package ext2 models the paper's local-filesystem comparison target: an
// ext2 filesystem on the client's EIDE disk. Writes land in the page
// cache at memory speed; a kflushd-style daemon writes dirty pages back
// to the disk; and — the detail the paper's methodology hinges on — ext2
// does NOT flush on close, so "dirty data remains in the system's data
// cache after the final close()" (§2.3). Flush (fsync) does force
// writeback.
package ext2

import (
	"repro/internal/disksim"
	"repro/internal/mm"
	"repro/internal/rangeset"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// File is a local ext2 file.
type File struct {
	s     *sim.Sim
	cpu   *sim.CPUPool
	cache *mm.PageCache
	disk  *disksim.Disk
	costs vfs.Costs

	size    int64
	dirty   int64 // bytes dirtied by this file, not yet under writeback
	inFlush int64 // bytes under writeback
	diskOff int64
	work    *sim.WaitQueue
	clean   *sim.WaitQueue
	closed  bool

	readPos int64
	// resident tracks the byte ranges present in the page cache, at
	// page granularity: everything written through this handle plus
	// everything pulled in by reads. Clean pages are never reclaimed.
	resident rangeset.Set
}

// ext2CommitCPU is ext2_commit_write + block allocation per page.
const ext2CommitCPU = 1_000 // 1 µs

// flushChunk is the writeback granularity.
const flushChunk = 512 << 10

// readChunk is the cluster size the kernel's readahead pulls from disk
// per miss on a sequential scan.
const readChunk = 128 << 10

// NewFile creates an ext2 file backed by the given disk, charging memory
// to cache and CPU to cpu, and starts its writeback daemon.
func NewFile(s *sim.Sim, cpu *sim.CPUPool, cache *mm.PageCache, disk *disksim.Disk) *File {
	f := &File{
		s: s, cpu: cpu, cache: cache, disk: disk,
		costs: vfs.DefaultCosts(),
		work:  s.NewWaitQueue("ext2-work"),
		clean: s.NewWaitQueue("ext2-clean"),
	}
	s.Go("kflushd/ext2", f.writeback)
	return f
}

// OpenExisting returns an ext2 file already holding size bytes on disk
// with nothing resident in the page cache — the read workloads' cold
// local target.
func OpenExisting(s *sim.Sim, cpu *sim.CPUPool, cache *mm.PageCache, disk *disksim.Disk, size int64) *File {
	if size < 0 {
		panic("ext2: negative file size")
	}
	f := NewFile(s, cpu, cache, disk)
	f.size = size
	return f
}

// Write implements vfs.File: page-cache writes at memory speed, blocking
// only under memory pressure. Appends at the current end of file.
func (f *File) Write(p *sim.Proc, n int) {
	f.WriteAt(p, f.size, n)
}

// WriteAt implements vfs.File: dirty n bytes in place at offset off
// (pwrite), extending the file if the write passes its end. The page
// cache charge and commit cost match Write; only the offset bookkeeping
// differs. The touched pages become resident for read-back.
func (f *File) WriteAt(p *sim.Proc, off int64, n int) {
	if f.closed {
		panic("ext2: write after close")
	}
	if off < 0 || n < 0 {
		panic("ext2: negative write offset or length")
	}
	vfs.WriteSyscall(p, f.cpu, f.costs, off, n, func(span vfs.PageSpan) {
		f.cpu.Use(p, "ext2_commit_write", ext2CommitCPU)
		f.cache.ChargeDirty(p, int64(span.Count))
		f.dirty += int64(span.Count)
	})
	if n > 0 {
		f.resident.Add(pageFloor(off), pageCeil(off+int64(n)))
	}
	if end := off + int64(n); end > f.size {
		f.size = end
	}
	if f.dirty >= flushChunk {
		f.work.Signal()
	}
}

func pageFloor(off int64) int64 { return off &^ (vfs.PageSize - 1) }
func pageCeil(off int64) int64  { return (off + vfs.PageSize - 1) &^ (vfs.PageSize - 1) }

// Read implements vfs.File: page-cache reads at memory speed for
// resident data (anything written through this handle, or pulled in by
// an earlier read); cold pages are fetched from the disk in readahead
// clusters, so a sequential scan streams at media rate after one
// positioning cost.
func (f *File) Read(p *sim.Proc, n int) int {
	got := f.ReadAt(p, f.readPos, n)
	f.readPos += int64(got)
	return got
}

// ReadAt implements vfs.File: pread — the same page-cache/disk read path
// at an arbitrary offset, without moving the read position. Random reads
// still pull whole readahead clusters from the disk, so a random scan of
// a cold file pays one positioning cost per cluster-sized region.
func (f *File) ReadAt(p *sim.Proc, off int64, n int) int {
	if f.closed {
		panic("ext2: read after close")
	}
	if off < 0 || n < 0 {
		panic("ext2: negative read offset or length")
	}
	if off >= f.size {
		return 0
	}
	if rem := f.size - off; int64(n) > rem {
		n = int(rem)
	}
	if n <= 0 {
		return 0
	}
	vfs.ReadSyscall(p, f.cpu, f.costs, off, n, func(span vfs.PageSpan) {
		start := span.Page*vfs.PageSize + int64(span.Offset)
		end := start + int64(span.Count)
		if f.resident.Contains(pageFloor(start), pageCeil(end)) {
			f.cache.NoteRead(true)
			return
		}
		f.cache.NoteRead(false)
		off := pageFloor(start)
		chunk := int64(readChunk)
		if rem := f.size - off; rem < chunk {
			chunk = rem
		}
		f.disk.Read(p, off, chunk)
		f.resident.Add(off, pageCeil(off+chunk))
	})
	return n
}

// Flush implements vfs.File: fsync — force out all dirty data and wait.
func (f *File) Flush(p *sim.Proc) {
	for f.dirty > 0 || f.inFlush > 0 {
		f.work.Signal()
		f.clean.Wait(p)
	}
}

// Close implements vfs.File. Faithful to ext2: close does NOT flush; the
// data stays dirty in the page cache (§2.3's fairness discussion).
func (f *File) Close(p *sim.Proc) {
	f.closed = true
}

// Size implements vfs.File.
func (f *File) Size() int64 { return f.size }

// Dirty returns bytes not yet under writeback (for tests).
func (f *File) Dirty() int64 { return f.dirty }

// writeback is the kflushd-style daemon: drain dirty pages to disk.
func (f *File) writeback(p *sim.Proc) {
	for {
		for f.dirty == 0 {
			f.work.Wait(p)
		}
		chunk := int64(flushChunk)
		if f.dirty < chunk {
			chunk = f.dirty
		}
		f.dirty -= chunk
		f.inFlush += chunk
		f.cache.StartWriteback(chunk)
		f.disk.Write(p, f.diskOff, chunk)
		f.diskOff += chunk
		f.inFlush -= chunk
		f.cache.EndWriteback(chunk)
		if f.dirty == 0 && f.inFlush == 0 {
			f.clean.Broadcast()
		}
	}
}
