// Package ext2 models the paper's local-filesystem comparison target: an
// ext2 filesystem on the client's EIDE disk. Writes land in the page
// cache at memory speed; a kflushd-style daemon writes dirty pages back
// to the disk; and — the detail the paper's methodology hinges on — ext2
// does NOT flush on close, so "dirty data remains in the system's data
// cache after the final close()" (§2.3). Flush (fsync) does force
// writeback.
package ext2

import (
	"repro/internal/disksim"
	"repro/internal/mm"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// File is a local ext2 file.
type File struct {
	s     *sim.Sim
	cpu   *sim.CPUPool
	cache *mm.PageCache
	disk  *disksim.Disk
	costs vfs.Costs

	size    int64
	dirty   int64 // bytes dirtied by this file, not yet under writeback
	inFlush int64 // bytes under writeback
	diskOff int64
	work    *sim.WaitQueue
	clean   *sim.WaitQueue
	closed  bool
}

// ext2CommitCPU is ext2_commit_write + block allocation per page.
const ext2CommitCPU = 1_000 // 1 µs

// flushChunk is the writeback granularity.
const flushChunk = 512 << 10

// NewFile creates an ext2 file backed by the given disk, charging memory
// to cache and CPU to cpu, and starts its writeback daemon.
func NewFile(s *sim.Sim, cpu *sim.CPUPool, cache *mm.PageCache, disk *disksim.Disk) *File {
	f := &File{
		s: s, cpu: cpu, cache: cache, disk: disk,
		costs: vfs.DefaultCosts(),
		work:  s.NewWaitQueue("ext2-work"),
		clean: s.NewWaitQueue("ext2-clean"),
	}
	s.Go("kflushd/ext2", f.writeback)
	return f
}

// Write implements vfs.File: page-cache writes at memory speed, blocking
// only under memory pressure.
func (f *File) Write(p *sim.Proc, n int) {
	if f.closed {
		panic("ext2: write after close")
	}
	vfs.WriteSyscall(p, f.cpu, f.costs, f.size, n, func(span vfs.PageSpan) {
		f.cpu.Use(p, "ext2_commit_write", ext2CommitCPU)
		f.cache.ChargeDirty(p, int64(span.Count))
		f.dirty += int64(span.Count)
	})
	f.size += int64(n)
	// Kick background writeback once a reasonable batch exists, like
	// bdflush waking on dirty ratio.
	if f.dirty >= flushChunk {
		f.work.Signal()
	}
}

// Flush implements vfs.File: fsync — force out all dirty data and wait.
func (f *File) Flush(p *sim.Proc) {
	for f.dirty > 0 || f.inFlush > 0 {
		f.work.Signal()
		f.clean.Wait(p)
	}
}

// Close implements vfs.File. Faithful to ext2: close does NOT flush; the
// data stays dirty in the page cache (§2.3's fairness discussion).
func (f *File) Close(p *sim.Proc) {
	f.closed = true
}

// Size implements vfs.File.
func (f *File) Size() int64 { return f.size }

// Dirty returns bytes not yet under writeback (for tests).
func (f *File) Dirty() int64 { return f.dirty }

// writeback is the kflushd-style daemon: drain dirty pages to disk.
func (f *File) writeback(p *sim.Proc) {
	for {
		for f.dirty == 0 {
			f.work.Wait(p)
		}
		chunk := int64(flushChunk)
		if f.dirty < chunk {
			chunk = f.dirty
		}
		f.dirty -= chunk
		f.inFlush += chunk
		f.cache.StartWriteback(chunk)
		f.disk.Write(p, f.diskOff, chunk)
		f.diskOff += chunk
		f.inFlush -= chunk
		f.cache.EndWriteback(chunk)
		if f.dirty == 0 && f.inFlush == 0 {
			f.clean.Broadcast()
		}
	}
}
