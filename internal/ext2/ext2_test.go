package ext2

import (
	"testing"
	"time"

	"repro/internal/disksim"
	"repro/internal/mm"
	"repro/internal/sim"
)

func newRig(seed int64, cacheLimit int64) (*sim.Sim, *File, *mm.PageCache) {
	s := sim.New(seed)
	cpu := s.NewCPUPool("cpu", 2)
	cache := mm.New(s, cacheLimit)
	disk := disksim.NewDeskstarEIDE(s)
	return s, NewFile(s, cpu, cache, disk), cache
}

func TestMemorySpeedWrites(t *testing.T) {
	s, f, _ := newRig(1, 64<<20)
	var elapsed sim.Time
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 1024; i++ { // 8 MB, well within cache
			f.Write(p, 8192)
		}
		elapsed = s.Now()
	})
	s.Run(time.Minute)
	mbps := float64(8<<20) / 1e6 / elapsed.Seconds()
	// Figure 1's local plateau is ~170-200 MB/s.
	if mbps < 150 || mbps > 260 {
		t.Fatalf("local memory write = %.1f MB/s, want ~150-260", mbps)
	}
	if f.Size() != 8<<20 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestCloseDoesNotFlush(t *testing.T) {
	s, f, cache := newRig(1, 64<<20)
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			f.Write(p, 8192)
		}
		f.Close(p)
	})
	s.Run(time.Second)
	// "dirty data remains in the system's data cache after the final
	// close() operation" (§2.3). 128 KB < flushChunk, so writeback never
	// even started.
	if cache.Dirty() == 0 && f.Dirty() == 0 {
		t.Fatal("close flushed the page cache; ext2 must not")
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	s, f, cache := newRig(1, 64<<20)
	var after int64 = -1
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 512; i++ { // 4 MB
			f.Write(p, 8192)
		}
		f.Flush(p)
		after = cache.Usage()
	})
	s.Run(time.Minute)
	if after != 0 {
		t.Fatalf("cache usage after fsync = %d", after)
	}
	if f.Dirty() != 0 {
		t.Fatalf("file dirty after fsync = %d", f.Dirty())
	}
}

func TestThrottledAtCacheLimit(t *testing.T) {
	s, f, cache := newRig(1, 4<<20)
	var elapsed sim.Time
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 2048; i++ { // 16 MB into a 4 MB budget
			f.Write(p, 8192)
		}
		elapsed = s.Now()
	})
	s.Run(10 * time.Minute)
	if cache.ThrottleEvents == 0 {
		t.Fatal("writer never throttled")
	}
	// Disk-bound at ~16.6 MB/s: 16 MB takes ~1 s; memory speed would be
	// ~80 ms.
	if elapsed < 500*time.Millisecond {
		t.Fatalf("elapsed %v too fast for a disk-bound run", elapsed)
	}
}

func TestWriteAfterClosePanics(t *testing.T) {
	s, f, _ := newRig(1, 4<<20)
	panicked := false
	s.Go("w", func(p *sim.Proc) {
		f.Close(p)
		defer func() { panicked = recover() != nil }()
		f.Write(p, 10)
	})
	s.Run(time.Second)
	if !panicked {
		t.Fatal("no panic on write after close")
	}
}

// A cold OpenExisting file must pull reads from the local disk, while a
// re-read and a read-back of written bytes hit the cache.
func TestColdReadsHitDiskThenCache(t *testing.T) {
	s := sim.New(1)
	cpu := s.NewCPUPool("cpu", 2)
	cache := mm.New(s, 64<<20)
	disk := disksim.NewDeskstarEIDE(s)
	const size = 1 << 20
	f := OpenExisting(s, cpu, cache, disk, size)
	s.Go("r", func(p *sim.Proc) {
		var total int
		for {
			got := f.Read(p, 8192)
			if got == 0 {
				break
			}
			total += got
		}
		if total != size {
			t.Errorf("read %d bytes, want %d", total, size)
		}
		if disk.BytesRead != size {
			t.Errorf("disk read %d bytes, want %d", disk.BytesRead, size)
		}
		if cache.ReadMisses == 0 {
			t.Error("cold reads recorded no misses")
		}
		// Second pass: everything resident, no further disk traffic.
		f.readPos = 0
		misses := cache.ReadMisses
		for f.Read(p, 8192) > 0 {
		}
		if disk.BytesRead != size || cache.ReadMisses != misses {
			t.Errorf("re-read went to disk: bytes=%d misses=%d", disk.BytesRead, cache.ReadMisses-misses)
		}
	})
	s.Run(time.Minute)
}

// Appending to a cold existing file must not mark its unread prefix
// resident: only the written pages skip the disk.
func TestAppendDoesNotMarkColdPrefixResident(t *testing.T) {
	s := sim.New(1)
	cpu := s.NewCPUPool("cpu", 2)
	cache := mm.New(s, 64<<20)
	disk := disksim.NewDeskstarEIDE(s)
	const size = 1 << 20
	f := OpenExisting(s, cpu, cache, disk, size)
	s.Go("rw", func(p *sim.Proc) {
		f.Write(p, 8192) // append at offset size
		if f.Size() != size+8192 {
			t.Errorf("size = %d", f.Size())
		}
		// The cold prefix still reads from disk...
		if f.Read(p, 8192) != 8192 {
			t.Error("prefix read failed")
		}
		if disk.BytesRead == 0 || cache.ReadMisses == 0 {
			t.Errorf("cold prefix served from nowhere: diskRead=%d misses=%d",
				disk.BytesRead, cache.ReadMisses)
		}
		// ...while the appended bytes are resident.
		before := disk.BytesRead
		f.readPos = size
		if f.Read(p, 8192) != 8192 {
			t.Error("append read failed")
		}
		if disk.BytesRead != before {
			t.Errorf("reading back the append went to disk (%d bytes)", disk.BytesRead-before)
		}
	})
	s.Run(time.Minute)
}
