package ext2

import (
	"testing"
	"time"

	"repro/internal/disksim"
	"repro/internal/mm"
	"repro/internal/sim"
)

func newRig(seed int64, cacheLimit int64) (*sim.Sim, *File, *mm.PageCache) {
	s := sim.New(seed)
	cpu := s.NewCPUPool("cpu", 2)
	cache := mm.New(s, cacheLimit)
	disk := disksim.NewDeskstarEIDE(s)
	return s, NewFile(s, cpu, cache, disk), cache
}

func TestMemorySpeedWrites(t *testing.T) {
	s, f, _ := newRig(1, 64<<20)
	var elapsed sim.Time
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 1024; i++ { // 8 MB, well within cache
			f.Write(p, 8192)
		}
		elapsed = s.Now()
	})
	s.Run(time.Minute)
	mbps := float64(8<<20) / 1e6 / elapsed.Seconds()
	// Figure 1's local plateau is ~170-200 MB/s.
	if mbps < 150 || mbps > 260 {
		t.Fatalf("local memory write = %.1f MB/s, want ~150-260", mbps)
	}
	if f.Size() != 8<<20 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestCloseDoesNotFlush(t *testing.T) {
	s, f, cache := newRig(1, 64<<20)
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			f.Write(p, 8192)
		}
		f.Close(p)
	})
	s.Run(time.Second)
	// "dirty data remains in the system's data cache after the final
	// close() operation" (§2.3). 128 KB < flushChunk, so writeback never
	// even started.
	if cache.Dirty() == 0 && f.Dirty() == 0 {
		t.Fatal("close flushed the page cache; ext2 must not")
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	s, f, cache := newRig(1, 64<<20)
	var after int64 = -1
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 512; i++ { // 4 MB
			f.Write(p, 8192)
		}
		f.Flush(p)
		after = cache.Usage()
	})
	s.Run(time.Minute)
	if after != 0 {
		t.Fatalf("cache usage after fsync = %d", after)
	}
	if f.Dirty() != 0 {
		t.Fatalf("file dirty after fsync = %d", f.Dirty())
	}
}

func TestThrottledAtCacheLimit(t *testing.T) {
	s, f, cache := newRig(1, 4<<20)
	var elapsed sim.Time
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 2048; i++ { // 16 MB into a 4 MB budget
			f.Write(p, 8192)
		}
		elapsed = s.Now()
	})
	s.Run(10 * time.Minute)
	if cache.ThrottleEvents == 0 {
		t.Fatal("writer never throttled")
	}
	// Disk-bound at ~16.6 MB/s: 16 MB takes ~1 s; memory speed would be
	// ~80 ms.
	if elapsed < 500*time.Millisecond {
		t.Fatalf("elapsed %v too fast for a disk-bound run", elapsed)
	}
}

func TestWriteAfterClosePanics(t *testing.T) {
	s, f, _ := newRig(1, 4<<20)
	panicked := false
	s.Go("w", func(p *sim.Proc) {
		f.Close(p)
		defer func() { panicked = recover() != nil }()
		f.Write(p, 10)
	})
	s.Run(time.Second)
	if !panicked {
		t.Fatal("no panic on write after close")
	}
}
