// Package analysis is a self-contained stand-in for the subset of
// golang.org/x/tools/go/analysis that nfslint's analyzers use. The repo
// deliberately has no module dependencies (every build must work from a
// bare Go toolchain, offline), so rather than vendoring x/tools this
// package re-declares the three types an analyzer touches — Analyzer,
// Pass, Diagnostic — with field-compatible shapes. Migrating an analyzer
// to the real x/tools API is a one-line import change; the driver in
// internal/lint and cmd/nfslint plays the role of multichecker and
// unitchecker.
//
// Facts, Requires-ordering, and SuggestedFixes are not implemented:
// nfslint's analyzers are independent and repo-wide state (the
// seededrand salt registry) is aggregated by the driver from analyzer
// results instead of exported facts.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one named check. Run inspects a single package and
// reports diagnostics through the Pass; its result value (may be nil) is
// collected by the driver for cross-package checks.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name>" suppression comments.
	Name string
	// Doc is the one-paragraph description shown by nfslint -help:
	// the invariant, why it exists, and how to suppress it.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding, positioned in Pass.Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Callee resolves the static *types.Func a call expression invokes
// (package function or method), or nil for calls through function
// values, builtins, and type conversions. Stands in for
// x/tools/go/types/typeutil.Callee.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsTestFile reports whether the file node comes from a _test.go file.
// The determinism invariants bind simulation and output paths, not
// tests, which are free to use wall time and ad-hoc randomness.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
