package keyfmt_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/keyfmt"
)

func TestKeyFmt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), keyfmt.Analyzer, "a")
}
