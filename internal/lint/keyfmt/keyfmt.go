// Package keyfmt freezes the byte encoding of floats in scenario keys
// and CSV emitters.
//
// Scenario.Key() is the identity under which runs are grouped, diffed
// against golden files, and compared across -workers counts; the CSV
// schema is pinned by checked-in goldens. Both must produce identical
// bytes forever. fmt's %v and %g render floats at "smallest precision
// that round-trips" — a representation chosen by the runtime, not the
// code. Any future change to that algorithm (it already changed once,
// in Go 1.12) would silently rewrite every key and golden file. Inside
// key and CSV functions, floats must be formatted with an explicit
// precision (%.2f, %.3e, %.4g) or an explicit strconv.FormatFloat call,
// which states the chosen encoding in the source where review can see
// it.
package keyfmt

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags default %v/%g float formatting inside Key() methods
// and CSV-emitting functions (any function whose name contains "csv").
// Suppress a deliberate case with "//lint:allow keyfmt".
var Analyzer = &analysis.Analyzer{
	Name: "keyfmt",
	Doc: "forbid default %v/%g float formatting in Scenario.Key and CSV " +
		"emitters: key and schema bytes are frozen by golden files, so " +
		"floats there need an explicit precision or strconv.FormatFloat",
	Run: run,
}

// formatted maps fmt formatting functions to the index of their format
// string argument.
var formatted = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
}

// unformatted fmt functions render every operand as %v; any float
// operand is a violation in scope. The int is the first operand index
// (skipping io.Writer / append-destination arguments).
var unformatted = map[string]int{
	"Sprint": 0, "Sprintln": 0, "Print": 0, "Println": 0,
	"Fprint": 1, "Fprintln": 1, "Append": 1, "Appendln": 1,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !inScope(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
					return true
				}
				if idx, ok := formatted[fn.Name()]; ok {
					checkFormatted(pass, call, idx)
				} else if idx, ok := unformatted[fn.Name()]; ok {
					checkUnformatted(pass, fn.Name(), call, idx)
				}
				return true
			})
		}
	}
	return nil, nil
}

// inScope reports whether fd's output bytes are frozen: Key methods and
// anything CSV-shaped by name.
func inScope(fd *ast.FuncDecl) bool {
	return (fd.Name.Name == "Key" && fd.Recv != nil) ||
		strings.Contains(strings.ToLower(fd.Name.Name), "csv")
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func checkFormatted(pass *analysis.Pass, call *ast.CallExpr, fmtIdx int) {
	if len(call.Args) <= fmtIdx {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[fmtIdx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	operands := call.Args[fmtIdx+1:]
	for _, v := range defaultVerbOperands(format) {
		if v.operand < len(operands) && isFloat(pass, operands[v.operand]) {
			pass.Reportf(call.Pos(),
				"%%%c formats a float with runtime-chosen precision in frozen key/CSV bytes; use an explicit-precision verb or strconv.FormatFloat",
				v.verb)
		}
	}
}

func checkUnformatted(pass *analysis.Pass, name string, call *ast.CallExpr, firstOperand int) {
	for _, arg := range call.Args[min(firstOperand, len(call.Args)):] {
		if isFloat(pass, arg) {
			pass.Reportf(call.Pos(),
				"fmt.%s formats a float as %%v (runtime-chosen precision) in frozen key/CSV bytes; use an explicit-precision verb or strconv.FormatFloat",
				name)
		}
	}
}

// verbUse is one %v/%g/%G verb without explicit precision and the
// operand index it consumes.
type verbUse struct {
	verb    byte
	operand int
}

// defaultVerbOperands scans a fmt format string and returns the operand
// indexes consumed by precision-less %v, %g, and %G verbs, accounting
// for flags, *-widths, *-precisions, and explicit [n] argument indexes.
func defaultVerbOperands(format string) []verbUse {
	var out []verbUse
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && strings.IndexByte("+-# 0'", format[i]) >= 0 {
			i++
		}
		// Explicit argument index: %[n]v.
		if i < len(format) && format[i] == '[' {
			j, n := i+1, 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		hasPrec := false
		if i < len(format) && format[i] == '.' {
			hasPrec = true
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		if (verb == 'v' || verb == 'g' || verb == 'G') && !hasPrec {
			out = append(out, verbUse{verb: verb, operand: arg})
		}
		arg++
	}
	return out
}
