// Package a exercises the keyfmt analyzer: default %v/%g float
// formatting is flagged inside Key methods and CSV-named functions,
// explicit precision and strconv.FormatFloat stay clean, and functions
// outside the frozen-bytes scope are ignored.
package a

import (
	"fmt"
	"strconv"
	"strings"
)

type Scenario struct {
	Loss      float64
	Size      int
	WriterPct int
	ReadLag   int64 // duration-shaped: integer nanoseconds
	Mode      string
}

func (sc Scenario) Key() string {
	key := fmt.Sprintf("s%d", sc.Size)                      // ints are exact: clean
	key += fmt.Sprintf("/l%v", sc.Loss)                     // want `%v formats a float with runtime-chosen precision`
	key += fmt.Sprintf("/g%g", sc.Loss)                     // want `%g formats a float with runtime-chosen precision`
	key += fmt.Sprintf("/p%.3f", sc.Loss)                   // explicit precision: clean
	key += fmt.Sprintf("/q%.4g", sc.Loss)                   // explicit precision: clean
	key += "/x" + strconv.FormatFloat(sc.Loss, 'g', -1, 64) // explicit encoding: clean
	// The sharing axis segments (/sw<pct>, /rl<lag>, /<mode>): ints,
	// integer durations and plain strings are exact encodings — clean.
	key += fmt.Sprintf("/sw%d", sc.WriterPct)
	key += fmt.Sprintf("/rl%v", sc.ReadLag)
	key += "/" + sc.Mode
	return key
}

// String is out of scope: human-readable output is not frozen.
func (sc Scenario) String() string {
	return fmt.Sprintf("%v at %g", sc.Loss, sc.Loss)
}

func rowCSV(vals []float64, b *strings.Builder) {
	for _, v := range vals {
		fmt.Fprintf(b, "%g,", v) // want `%g formats a float with runtime-chosen precision`
	}
	fmt.Fprint(b, vals[0]) // want `fmt.Fprint formats a float as %v`
}

// starCSV: *-widths consume an operand; the %v still lands on the float.
func starCSV(v float64, w int) string {
	return fmt.Sprintf("%*v", w, v) // want `%v formats a float with runtime-chosen precision`
}

// indexCSV: explicit [n] argument indexes are tracked.
func indexCSV(v float64) string {
	return fmt.Sprintf("%8.2f|%[1]v", v) // want `%v formats a float with runtime-chosen precision`
}

func deliberateCSV(v float64) string {
	return fmt.Sprintf("%v", v) //lint:allow keyfmt fixture proves suppression works
}
