package seededrand_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), seededrand.Analyzer, "a")
}
