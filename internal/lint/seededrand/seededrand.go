// Package seededrand enforces the repo's rng-derivation discipline in
// non-test code.
//
// Every random stream in the simulator must be (a) derived from the
// scenario seed, so a (grid, seed) pair replays bit-identically, and
// (b) salted uniquely, so enabling one subsystem's stream never shifts
// the draws another subsystem sees. The canonical derivation — used by
// netsim's loss stream and bonnie's permutation/zipf streams — is
//
//	rand.NewSource(s.Seed()*0x9E3779B1 + salt + int64(worker)*0x10001)
//
// with a repo-unique salt per stream. This analyzer rejects the global
// math/rand functions (rand.Intn and friends draw from a process-global
// stream no scenario seed controls), rejects sources whose seed
// expression derives from neither a Seed() call nor an explicit seed
// parameter, rejects Seed()-derived expressions with no salt at all
// (they collide with the root rng), and collects every salt constant so
// the driver can reject duplicates repo-wide.
package seededrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// Derivation multipliers that are not salts: the golden-ratio hash
// constant spreading the seed, and the per-worker stride. Matched by
// value, so decimal spellings are excluded too.
const (
	seedMultiplier = 0x9E3779B1
	workerStride   = 0x10001
)

// SaltUse records one salt constant in a seed derivation. The analyzer
// returns []SaltUse so the driver can enforce repo-wide uniqueness
// across packages (in-package duplicates are reported directly).
type SaltUse struct {
	Value int64
	Pos   token.Pos
}

// Analyzer enforces the seed-derivation discipline. Suppress a
// deliberate exception with "//lint:allow seededrand".
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid unseeded randomness: no package-level math/rand calls, " +
		"every rand.NewSource must derive from sim.Seed() or an explicit " +
		"seed parameter, Seed()-derived streams must carry a salt, and " +
		"salts must be unique repo-wide so streams never collide",
	Run: run,
}

// constructors are the math/rand package-level functions that build
// values instead of drawing from the global stream. NewSource-style
// seed-takers get their arguments checked; the rest pass through.
var seedTakers = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}
var otherConstructors = map[string]bool{"New": true, "NewZipf": true}

func run(pass *analysis.Pass) (any, error) {
	var salts []SaltUse
	first := make(map[int64]token.Pos)
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an already-derived *rand.Rand are the point
			}
			switch {
			case otherConstructors[fn.Name()]:
				// rand.New / rand.NewZipf wrap a source checked elsewhere.
			case seedTakers[fn.Name()]:
				checkDerivation(pass, call, fn.Name(), first, &salts)
			default:
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global stream no scenario seed controls; derive a source from sim.Seed()",
					fn.Name())
			}
			return true
		})
	}
	return salts, nil
}

// checkDerivation validates the seed expression(s) of one
// NewSource-style call and records its salt constants.
func checkDerivation(pass *analysis.Pass, call *ast.CallExpr, name string, first map[int64]token.Pos, salts *[]SaltUse) {
	derives, hasSeedCall := false, false
	var lits []*ast.BasicLit
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.SelectorExpr:
					if fun.Sel.Name == "Seed" {
						derives, hasSeedCall = true, true
					}
				case *ast.Ident:
					if fun.Name == "Seed" {
						derives, hasSeedCall = true, true
					}
				}
			case *ast.Ident:
				if strings.Contains(strings.ToLower(n.Name), "seed") {
					derives = true
				}
			case *ast.BasicLit:
				if n.Kind == token.INT {
					lits = append(lits, n)
				}
			}
			return true
		})
	}
	if !derives {
		pass.Reportf(call.Pos(),
			"rand.%s seed derives from neither sim.Seed() nor an explicit seed parameter; the stream will not replay with the scenario",
			name)
		return
	}
	var saltVals []*ast.BasicLit
	for _, lit := range lits {
		v, err := strconv.ParseInt(lit.Value, 0, 64)
		if err != nil || v == seedMultiplier || v == workerStride {
			continue
		}
		saltVals = append(saltVals, lit)
	}
	if hasSeedCall && len(saltVals) == 0 {
		pass.Reportf(call.Pos(),
			"seed derivation has no salt constant; the stream collides with the root rng (add a repo-unique salt)")
		return
	}
	for _, lit := range saltVals {
		v, _ := strconv.ParseInt(lit.Value, 0, 64)
		if prev, ok := first[v]; ok {
			pass.Reportf(lit.Pos(),
				"salt %#x reused (first used at %s); derivation salts must be unique repo-wide so streams never collide",
				v, pass.Fset.Position(prev))
			continue
		}
		first[v] = lit.Pos()
		*salts = append(*salts, SaltUse{Value: v, Pos: lit.Pos()})
	}
}
