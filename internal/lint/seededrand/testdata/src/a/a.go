// Package a exercises the seededrand analyzer: global draws,
// underived and unsalted sources, and duplicate salts are flagged; the
// canonical PR-5 derivation and the root-rng pattern stay clean.
package a

import "math/rand"

// simT stands in for *sim.Sim: any receiver with a Seed method counts
// as the scenario seed source.
type simT struct{ seed int64 }

func (s simT) Seed() int64 { return s.seed }

func globalDraws() {
	_ = rand.Intn(6)   // want `rand.Intn draws from the process-global stream`
	_ = rand.Float64() // want `rand.Float64 draws from the process-global stream`
	_ = rand.Perm(10)  // want `rand.Perm draws from the process-global stream`
}

func underived() {
	_ = rand.NewSource(42) // want `derives from neither sim.Seed\(\) nor an explicit seed parameter`
}

func unsalted(s simT) {
	_ = rand.NewSource(s.Seed())              // want `no salt constant`
	_ = rand.NewSource(s.Seed() * 0x9E3779B1) // want `no salt constant`
}

// canonical is the PR-5 discipline: seed spread by the golden-ratio
// constant, a repo-unique salt, a per-worker stride.
func canonical(s simT, worker int) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed()*0x9E3779B1 + 0x01020304 + int64(worker)*0x10001))
}

// methodsAreFine: draws from an already-derived source are the point.
func methodsAreFine(s simT) int {
	rng := rand.New(rand.NewSource(s.Seed()*0x9E3779B1 + 0x05060708))
	return rng.Intn(6)
}

// rootRNG is internal/sim's pattern: a bare explicit seed parameter is
// a legal derivation (it IS the scenario seed).
func rootRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func duplicateSalt(s simT) {
	_ = rand.NewSource(s.Seed()*0x9E3779B1 + 0x0a0b0c0d)
	_ = rand.NewSource(s.Seed()*0x9E3779B1 + 0x0a0b0c0d) // want `salt 0xa0b0c0d reused`
}

func deliberate() {
	_ = rand.NewSource(1) //lint:allow seededrand fixture proves suppression works
}
