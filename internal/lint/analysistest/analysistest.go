// Package analysistest runs one analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against the fixtures'
// "// want" comments — the same convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on
// internal/lint's own loader since the repo carries no module
// dependencies.
//
// A fixture line that should trigger a diagnostic carries a trailing
// comment with one or more quoted regular expressions:
//
//	for k := range m { // want `map iteration order is randomized`
//
// Each regexp must match exactly one diagnostic reported on that line,
// and every diagnostic must be claimed by a regexp. Fixtures must
// type-check (they run through the real loader), and //lint:allow
// suppression is honored, so a fixture can also prove an allow comment
// silences its analyzer.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// wantRe extracts the quoted regexps of a "// want" comment: Go string
// literals, double-quoted or backquoted.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// TestData returns the absolute path of the calling test's testdata
// directory (the go tool runs tests with the package directory as the
// working directory).
func TestData(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Run loads each named fixture package from testdata/src/<pkg>, runs
// the analyzer through the lint driver (so suppression and the
// in-package salt check apply), and matches diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		loaded, err := loader.Load(dir, ".")
		if err != nil {
			t.Errorf("%s: loading fixture: %v", name, err)
			continue
		}
		for _, pkg := range loaded {
			checkPackage(t, pkg, a)
		}
	}
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

func checkPackage(t *testing.T, pkg *loader.Package, a *analysis.Analyzer) {
	t.Helper()
	diags, err := lint.Check([]*loader.Package{pkg}, a)
	if err != nil {
		t.Errorf("%s: %v", pkg.ImportPath, err)
		return
	}

	// file -> line -> pending expectations.
	wants := make(map[string]map[int][]*expectation)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range wantRe.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						continue
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
						continue
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*expectation)
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		claimed := false
		for _, exp := range wants[d.Pos.Filename][d.Pos.Line] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", file, line, exp.rx)
				}
			}
		}
	}
}
