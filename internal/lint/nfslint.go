// Package lint is nfslint's multichecker: it runs the determinism
// analyzers over loaded packages, applies //lint:allow suppression, and
// performs the one repo-wide check (seededrand salt uniqueness) that a
// per-package analyzer cannot see.
//
// The four analyzers codify the invariants DESIGN.md §11 documents:
//
//	walltime    virtual time only — no time.Now/Sleep/..., no os.Getenv
//	seededrand  every rng derives from sim.Seed() with a repo-unique salt
//	maporder    map iteration order must never reach output
//	keyfmt      no default %v/%g floats in Scenario.Key or CSV emitters
//
// A diagnostic is suppressed by a comment "//lint:allow <name> [why]"
// on the same line or the line directly above; "//lint:allow all"
// suppresses every analyzer there. Suppressions are for genuinely
// deliberate exceptions and should say why.
package lint

import (
	"fmt"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/keyfmt"
	"repro/internal/lint/loader"
	"repro/internal/lint/maporder"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/walltime"
)

// Analyzers returns the full determinism suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.Analyzer,
		seededrand.Analyzer,
		maporder.Analyzer,
		keyfmt.Analyzer,
	}
}

// Diagnostic is one resolved finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Check runs the given analyzers (default: all) over pkgs in order,
// filters suppressed findings, and appends the repo-wide salt
// uniqueness check. All packages must share one token.FileSet (as
// loader.Load guarantees).
func Check(pkgs []*loader.Package, analyzers ...*analysis.Analyzer) ([]Diagnostic, error) {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	var out []Diagnostic
	saltFirst := make(map[int64]token.Position)
	for _, pkg := range pkgs {
		allow := allowedLines(pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
			if a == seededrand.Analyzer {
				if salts, ok := res.([]seededrand.SaltUse); ok {
					crossCheckSalts(pkg, salts, saltFirst, allow, &out)
				}
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if allowed(allow, a.Name, pos) {
					continue
				}
				out = append(out, Diagnostic{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	return out, nil
}

// crossCheckSalts reports salts already claimed by an earlier package.
// In-package duplicates are seededrand's own job; this catches the
// cross-package collisions a modular analyzer cannot see.
func crossCheckSalts(pkg *loader.Package, salts []seededrand.SaltUse, first map[int64]token.Position, allow map[string]map[int]map[string]bool, out *[]Diagnostic) {
	for _, s := range salts {
		pos := pkg.Fset.Position(s.Pos)
		if prev, ok := first[s.Value]; ok {
			if allowed(allow, "seededrand", pos) {
				continue
			}
			*out = append(*out, Diagnostic{
				Analyzer: "seededrand",
				Pos:      pos,
				Message: fmt.Sprintf("salt %#x reused (first used at %s); derivation salts must be unique repo-wide so streams never collide",
					s.Value, prev),
			})
			continue
		}
		first[s.Value] = pos
	}
}

// allowedLines maps file -> line -> analyzer names suppressed there by
// //lint:allow comments. A comment suppresses its own line (trailing
// form) and the next line (preceding form).
func allowedLines(pkg *loader.Package) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:allow ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow "))
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names := out[pos.Filename]
				if names == nil {
					names = make(map[int]map[string]bool)
					out[pos.Filename] = names
				}
				set := names[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					names[pos.Line] = set
				}
				// First field is the analyzer name; the rest is the reason.
				set[fields[0]] = true
			}
		}
	}
	return out
}

func allowed(allow map[string]map[int]map[string]bool, analyzer string, pos token.Position) bool {
	lines := allow[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set := lines[line]; set != nil && (set[analyzer] || set["all"]) {
			return true
		}
	}
	return false
}
