// Package walltime forbids wall-clock and environment reads in
// non-test simulator code.
//
// Every result in this reproduction rests on bit-identical replay: a
// (grid, seed) pair must produce the same bytes at any -workers count,
// on any host, in any environment. The simulator therefore runs on
// virtual time (sim.Now) exclusively. One stray time.Now() in a result
// path — a timestamp in a CSV row, a duration measured around a phase —
// silently varies across runs and breaks the CI determinism gates that
// diff -workers 1 against -workers 8; os.Getenv smuggles in host state
// the scenario key never captures.
package walltime

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer rejects calls to wall-clock time sources and environment
// reads outside _test.go files. Suppress a deliberate use with
// "//lint:allow walltime" on (or directly above) the offending line.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock and environment reads in simulator code: " +
		"results must depend only on the scenario and its seed, so virtual " +
		"time (sim.Now, Proc.Sleep, sim.At) replaces time.Now/Since/Sleep " +
		"and explicit flags replace os.Getenv",
	Run: run,
}

// forbidden maps package path -> function name -> the deterministic
// replacement named in the diagnostic.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":       "the virtual clock (sim.Now)",
		"Since":     "differences of sim.Now timestamps",
		"Until":     "differences of sim.Now timestamps",
		"Sleep":     "Proc.Sleep on the virtual clock",
		"After":     "a sim.At-scheduled event",
		"Tick":      "a sim.At-scheduled event",
		"NewTimer":  "a sim.At-scheduled event",
		"NewTicker": "a sim.At-scheduled event",
	},
	"os": {
		"Getenv":    "an explicit flag or config field",
		"LookupEnv": "an explicit flag or config field",
		"Environ":   "an explicit flag or config field",
	},
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (t.Sub, d.Round, ...) are fine
			}
			if hint, ok := forbidden[fn.Pkg().Path()][fn.Name()]; ok {
				pass.Reportf(call.Pos(),
					"call to %s.%s breaks virtual-time determinism; use %s",
					fn.Pkg().Name(), fn.Name(), hint)
			}
			return true
		})
	}
	return nil, nil
}
