// Package a exercises the walltime analyzer: wall-clock and
// environment reads are flagged, virtual-time idioms stay clean, and a
// lint:allow comment suppresses a deliberate exception.
package a

import (
	"os"
	"time"
)

func clockReads() time.Duration {
	start := time.Now()                 // want `call to time.Now breaks virtual-time determinism`
	time.Sleep(time.Millisecond)        // want `call to time.Sleep breaks virtual-time determinism`
	if _, ok := os.LookupEnv("X"); ok { // want `call to os.LookupEnv breaks virtual-time determinism`
		_ = os.Getenv("HOME") // want `call to os.Getenv breaks virtual-time determinism`
	}
	return time.Since(start) // want `call to time.Since breaks virtual-time determinism`
}

var bootstamp = time.Now() // want `call to time.Now breaks virtual-time determinism`

func timers() {
	<-time.After(time.Second)       // want `call to time.After breaks virtual-time determinism`
	_ = time.NewTicker(time.Second) // want `call to time.NewTicker breaks virtual-time determinism`
}

// virtualTime shows the clean idioms: durations are values, not clock
// reads, and arithmetic on a virtual now is exactly the point.
func virtualTime(now time.Duration) time.Duration {
	d, err := time.ParseDuration("30m")
	if err != nil {
		return now
	}
	return now + d + 3*time.Second
}

// methodsAreFine: only the package-level clock readers are forbidden.
func methodsAreFine(t time.Time, u time.Time) time.Duration {
	return t.Sub(u).Round(time.Millisecond)
}

func deliberate() time.Time {
	return time.Now() //lint:allow walltime fixture proves suppression works
}
