package maporder_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "a")
}
