// Package maporder flags map iteration whose order can leak into
// output.
//
// Go randomizes map iteration order per run. A `range` over a map is
// fine for order-independent work (sums, copies, membership) but
// corrupts the harness's byte-identical-output contract the moment the
// body writes anywhere a reader can see — a fmt.Fprintf into a result
// table, a csv/json encoder, a slice that is returned unsorted. The
// classic repair is collect-sort-emit:
//
//	keys := make([]string, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//	for _, k := range keys { fmt.Fprintf(w, ...) }
//
// The analyzer reports a map range when (a) its body calls an output
// sink directly, or (b) its body appends to a slice that the enclosing
// function returns without ever passing it to a sort/slices call.
// Order-independent iteration (like netsim's Totals summation) is not
// flagged.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags nondeterministic map iteration reaching output.
// Suppress a deliberate case with "//lint:allow maporder".
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map whose body reaches an output sink " +
		"(fmt.Fprint*, Write*/Encode methods, append to a returned slice) " +
		"without an intervening sort: map order is randomized per run and " +
		"would break byte-identical sweep output",
	Run: run,
}

// sinkMethods are method names that commit bytes to an output stream:
// io.Writer/strings.Builder writes, csv.Writer.Write/WriteAll,
// json.Encoder.Encode, stats.Table.AddRow.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteAll": true, "Encode": true, "AddRow": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				checkMapRange(pass, fd, rs)
				return true
			})
		}
	}
	return nil, nil
}

func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	var appended []*types.Var
	seen := make(map[*types.Var]bool)
	sink := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
			sink = true
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sinkMethods[sel.Sel.Name] {
			sink = true
			return true
		}
		// append(x, ...): remember x for the sorted/returned check.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[target].(*types.Var); ok && !seen[v] {
						seen[v] = true
						appended = append(appended, v)
					}
				}
			}
		}
		return true
	})
	if sink {
		pass.Reportf(rs.Pos(),
			"map iteration order is randomized per run; collect and sort the keys before writing output")
		return
	}
	for _, v := range appended {
		if usesVarInSortCall(pass, fd, v) {
			continue
		}
		if returnsVar(pass, fd, v) {
			pass.Reportf(rs.Pos(),
				"slice %q is built from unsorted map iteration and returned; sort it (or the keys) first",
				v.Name())
		}
	}
}

// usesVarInSortCall reports whether fd passes v (anywhere in an
// argument expression) to a function from package sort or slices.
func usesVarInSortCall(pass *analysis.Pass, fd *ast.FuncDecl, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// returnsVar reports whether fd returns v directly in any return
// statement.
func returnsVar(pass *analysis.Pass, fd *ast.FuncDecl, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				found = true
			}
		}
		return !found
	})
	return found
}
