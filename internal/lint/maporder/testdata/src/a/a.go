// Package a exercises the maporder analyzer: map ranges that reach an
// output sink (directly, or through a returned slice) without a sort
// are flagged; order-independent iteration stays clean.
package a

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

func printUnsorted(m map[string]int, w io.Writer) {
	for k, v := range m { // want `map iteration order is randomized`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func buildUnsorted(m map[string]int, b *strings.Builder) {
	for k := range m { // want `map iteration order is randomized`
		b.WriteString(k)
	}
}

func encodeUnsorted(m map[string][]int, enc *json.Encoder) error {
	for _, v := range m { // want `map iteration order is randomized`
		if err := enc.Encode(v); err != nil {
			return err
		}
	}
	return nil
}

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `built from unsorted map iteration and returned`
		keys = append(keys, k)
	}
	return keys
}

// keysSorted is the canonical repair: collect, sort, then emit.
func keysSorted(m map[string]int, w io.Writer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// valuesSorted: sort.Slice on the collected slice also counts.
func valuesSorted(m map[string]float64) []float64 {
	var xs []float64
	for _, v := range m {
		xs = append(xs, v)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs
}

// sum is order-independent and clean (netsim.Totals's pattern).
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// copyMap writes only into another map: clean.
func copyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func deliberate(m map[string]int, b *strings.Builder) {
	//lint:allow maporder fixture proves suppression works
	for k := range m {
		b.WriteString(k)
	}
}
