// Package loader turns Go package patterns into type-checked syntax
// trees without depending on golang.org/x/tools/go/packages. It shells
// out to `go list -export -deps -json`, which compiles every dependency
// into the build cache and reports the path of each package's export
// data; target packages are then parsed from source and type-checked
// against that export data with the standard go/importer. This is the
// same division of labor as a vet unitchecker invocation, so the result
// feeds both nfslint's standalone mode and its `go vet -vettool` mode.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one type-checked target package. Every Package returned by
// a single Load call shares one *token.FileSet, so positions (and the
// driver's cross-package diagnostics) are comparable.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, non-test files only
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
}

func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Dir,Export,Standard,GoFiles,ImportMap"

// Load resolves patterns (relative to dir) to packages, compiles their
// dependencies' export data, and returns the matched packages parsed
// and type-checked from source, in `go list` order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, append([]string{"-export", "-deps", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exportFile := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, nil, exportFile)
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		imp.ImportMap = t.ImportMap
		pkg, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// TypeCheck parses goFiles and type-checks them as one package resolving
// imports through imp. Shared by Load and the vet-unitchecker mode,
// which supplies an importer built from the vet.cfg's PackageFile map.
func TypeCheck(fset *token.FileSet, importPath string, goFiles []string, imp types.Importer) (*Package, error) {
	syntax := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		GoFiles:    goFiles,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Importer resolves imports from gc export data files. ImportMap
// translates source-level import paths to canonical package paths (the
// vendoring and test-variant mapping `go list` reports); it may be
// swapped between TypeCheck calls that share the underlying cache.
type Importer struct {
	ImportMap map[string]string
	base      types.ImporterFrom
}

// NewImporter builds an Importer reading export data from the files in
// packageFile (package path -> export data path).
func NewImporter(fset *token.FileSet, importMap, packageFile map[string]string) *Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &Importer{
		ImportMap: importMap,
		base:      importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
	}
}

// Import implements types.Importer.
func (im *Importer) Import(path string) (*types.Package, error) {
	if mapped, ok := im.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.base.ImportFrom(path, "", 0)
}
