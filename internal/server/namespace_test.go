package server

import (
	"testing"
	"time"

	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// TestApplyWriteWccChain pins the per-file mutation contract: every
// accepted write bumps the change counter by exactly one, each wcc
// pre-op equals the previous write's post-op (no interleaving inside
// the locked capture), and size is a high-water mark.
func TestApplyWriteWccChain(t *testing.T) {
	s := sim.New(1)
	ns := NewNamespace(s)
	fh := nfsproto.MakeFileHandle(1, 7)

	w1 := ns.ApplyWrite(fh, 8192)
	if !w1.HavePre || !w1.HavePost {
		t.Fatalf("wcc arms missing: %+v", w1)
	}
	if w1.Pre.Change != 0 || w1.Post.Change != 1 {
		t.Fatalf("first write change pre=%d post=%d, want 0/1", w1.Pre.Change, w1.Post.Change)
	}
	if w1.Post.Size != 8192 {
		t.Fatalf("post size %d, want 8192", w1.Post.Size)
	}
	w2 := ns.ApplyWrite(fh, 4096) // shorter write: size must not shrink
	if w2.Pre != (nfsproto.WccAttr{Size: w1.Post.Size, MTime: w1.Post.MTime, Change: w1.Post.Change}) {
		t.Fatalf("second write pre %+v does not chain from first post %+v", w2.Pre, w1.Post)
	}
	if w2.Post.Size != 8192 || w2.Post.Change != 2 {
		t.Fatalf("post after short write: %+v", w2.Post)
	}
	if ns.ChangeBumps != 2 {
		t.Fatalf("ChangeBumps = %d, want 2", ns.ChangeBumps)
	}
	if c, ok := ns.Change(fh); !ok || c != 2 {
		t.Fatalf("Change(fh) = %d,%v", c, ok)
	}
}

// TestSharedFileChangeAcrossClients pins that writes from different
// clients against one handle serialize on the same per-file state: the
// change counter counts all writers, not per-client.
func TestSharedFileChangeAcrossClients(t *testing.T) {
	s := sim.New(1)
	ns := NewNamespace(s)
	fh := nfsproto.MakeFileHandle(1, 9)
	for i := 0; i < 3; i++ { // client A
		ns.ApplyWrite(fh, uint64(8192*(i+1)))
	}
	for i := 0; i < 2; i++ { // client B, same handle
		ns.ApplyWrite(fh, uint64(4096*(i+1)))
	}
	if c, _ := ns.Change(fh); c != 5 {
		t.Fatalf("change after 3+2 writes = %d, want 5", c)
	}
}

// TestDirectoryWccOnCreateRemove pins the directory's own inode state:
// CREATE and REMOVE mutate it (entry count as size, change bumped),
// UNCHECKED re-create of an existing name does not.
func TestDirectoryWccOnCreateRemove(t *testing.T) {
	s := sim.New(1)
	ns := NewNamespace(s)
	dir := nfsproto.RootHandle(4)

	_, w1 := ns.Create(dir, "a")
	if w1.Pre.Change != 0 || w1.Post.Change != 1 || w1.Post.Size != 1 {
		t.Fatalf("create wcc: %+v", w1)
	}
	_, w2 := ns.Create(dir, "a") // UNCHECKED hit: no mutation
	if w2.Pre.Change != 1 || w2.Post.Change != 1 {
		t.Fatalf("re-create wcc should be a snapshot: %+v", w2)
	}
	st, w3 := ns.Remove(dir, "a")
	if st != nfsproto.NFS3OK || w3.Post.Change != 2 || w3.Post.Size != 0 {
		t.Fatalf("remove: st=%v wcc=%+v", st, w3)
	}
	if st, _ := ns.Remove(dir, "a"); st != nfsproto.NFS3ErrNoEnt {
		t.Fatalf("double remove st=%v", st)
	}
}

// TestChangeSurvivesCrashRestart drives WRITEs over the wire against the
// filer, crashes it mid-life, restarts it, writes again, and requires
// the change attribute to continue monotonically — the NVRAM replay
// restores attribute state, so a rebooted server must never hand out a
// counter the fleet has already seen.
func TestChangeSurvivesCrashRestart(t *testing.T) {
	r, _ := newRig(t, "filer")
	fh := nfsproto.MakeFileHandle(1, 3)

	var before, after *nfsproto.WriteRes
	r.s.Go("w", func(p *sim.Proc) {
		write := func() *nfsproto.WriteRes {
			args := nfsproto.WriteArgs{File: fh, Offset: 0, Count: 8192, Stable: nfsproto.Unstable, Data: make([]byte, 8192)}
			d := r.tr.CallSync(p, nfsproto.ProcWrite, args.Encode)
			res, err := nfsproto.DecodeWriteRes(d)
			if err != nil {
				t.Errorf("decode: %v", err)
			}
			return res
		}
		before = write()
		r.srv.Crash()
		r.srv.Restart()
		after = write()
	})
	r.s.Run(time.Minute)

	if before == nil || before.Status != nfsproto.NFS3OK || !before.Wcc.HavePost {
		t.Fatalf("pre-crash write: %+v", before)
	}
	if after == nil || after.Status != nfsproto.NFS3OK {
		t.Fatalf("post-restart write: %+v", after)
	}
	if after.Wcc.Pre.Change != before.Wcc.Post.Change {
		t.Fatalf("change regressed across restart: pre-crash post=%d, post-restart pre=%d",
			before.Wcc.Post.Change, after.Wcc.Pre.Change)
	}
	if after.Wcc.Post.Change <= before.Wcc.Post.Change {
		t.Fatalf("change not monotonic across restart: %d then %d",
			before.Wcc.Post.Change, after.Wcc.Post.Change)
	}
}

// TestWriteReplyCarriesWccOnWire pins that the encoded WRITE3 reply a
// client decodes carries both wcc arms with the post-op size covering
// the write.
func TestWriteReplyCarriesWccOnWire(t *testing.T) {
	r, _ := newRig(t, "linux")
	fh := nfsproto.MakeFileHandle(1, 5)
	var res *nfsproto.WriteRes
	r.s.Go("w", func(p *sim.Proc) {
		args := nfsproto.WriteArgs{File: fh, Offset: 8192, Count: 8192, Stable: nfsproto.Unstable, Data: make([]byte, 8192)}
		d := r.tr.CallSync(p, nfsproto.ProcWrite, args.Encode)
		var err error
		res, err = nfsproto.DecodeWriteRes(d)
		if err != nil {
			t.Errorf("decode: %v", err)
		}
	})
	r.s.Run(time.Minute)
	if res == nil || res.Status != nfsproto.NFS3OK {
		t.Fatalf("write failed: %+v", res)
	}
	if !res.Wcc.HavePre || !res.Wcc.HavePost {
		t.Fatalf("wcc arms missing on the wire: %+v", res.Wcc)
	}
	if res.Wcc.Post.Size != 16384 || res.Wcc.Post.Change == 0 {
		t.Fatalf("post-op attrs: %+v", res.Wcc.Post)
	}
}
