package server

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/rpcsim"
	"repro/internal/sim"
	"repro/internal/xdr"
)

type rig struct {
	s   *sim.Sim
	net *netsim.Network
	tr  *rpcsim.Transport
	srv *Server
}

// newRig builds client + server of the requested kind. kind is one of
// "filer", "linux", "slow".
func newRig(t *testing.T, kind string) (*rig, any) {
	t.Helper()
	s := sim.New(11)
	net := netsim.New(s)
	net.AddHost(HostClient, netsim.DefaultGigabit(), nil)
	var srv *Server
	var backend any
	var host string
	switch kind {
	case "filer":
		srv, backend = asAny(NewF85(s, net, 0, rpcsim.TransportUDP))
		host = HostFiler
	case "linux":
		srv, backend = asAny(NewLinuxNFS(s, net, 0, rpcsim.TransportUDP))
		host = HostLinux
	case "slow":
		srv, backend = asAny(NewSlow100(s, net, 0, rpcsim.TransportUDP))
		host = HostSlow
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	cpu := s.NewCPUPool("client-cpus", 2)
	bkl := s.NewMutex("bkl")
	tr := rpcsim.New(s, net, cpu, bkl, rpcsim.DefaultConfig(), HostClient, host)
	return &rig{s: s, net: net, tr: tr, srv: srv}, backend
}

func asAny[T any](srv *Server, backend T) (*Server, any) { return srv, backend }

// writeFile writes total bytes in 8 KB stable-UNSTABLE WRITEs, pipelined
// through the transport, then optionally COMMITs. Returns elapsed time.
func writeFile(r *rig, fh nfsproto.FileHandle, total int64, commit bool) sim.Time {
	var elapsed sim.Time
	r.s.Go("writer", func(p *sim.Proc) {
		data := make([]byte, 8192)
		outstanding := 0
		done := r.s.NewWaitQueue("writer-done")
		for off := int64(0); off < total; off += 8192 {
			n := total - off
			if n > 8192 {
				n = 8192
			}
			args := nfsproto.WriteArgs{File: fh, Offset: uint64(off), Count: uint32(n), Stable: nfsproto.Unstable, Data: data[:n]}
			outstanding++
			r.tr.Call(p, nfsproto.ProcWrite, args.Encode, func(d *xdr.Decoder) {
				res, err := nfsproto.DecodeWriteRes(d)
				if err != nil || res.Status != nfsproto.NFS3OK {
					panic("bad write result")
				}
				outstanding--
				done.Broadcast()
			})
		}
		for outstanding > 0 {
			done.Wait(p)
		}
		if commit {
			args := nfsproto.CommitArgs{File: fh, Offset: 0, Count: 0}
			d := r.tr.CallSync(p, nfsproto.ProcCommit, args.Encode)
			if res, err := nfsproto.DecodeCommitRes(d); err != nil || res.Status != nfsproto.NFS3OK {
				panic("bad commit result")
			}
		}
		elapsed = r.s.Now()
	})
	r.s.Run(5 * time.Minute)
	return elapsed
}

func TestFilerWriteRepliesFileSync(t *testing.T) {
	r, _ := newRig(t, "filer")
	fh := nfsproto.MakeFileHandle(1, 1)
	var committed nfsproto.StableHow
	r.s.Go("w", func(p *sim.Proc) {
		args := nfsproto.WriteArgs{File: fh, Offset: 0, Count: 8192, Stable: nfsproto.Unstable, Data: make([]byte, 8192)}
		d := r.tr.CallSync(p, nfsproto.ProcWrite, args.Encode)
		res, err := nfsproto.DecodeWriteRes(d)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		committed = res.Committed
	})
	r.s.Run(time.Second)
	if committed != nfsproto.FileSync {
		t.Fatalf("filer committed = %v, want FILE_SYNC (NVRAM)", committed)
	}
}

func TestLinuxWriteRepliesUnstableAndCommitWorks(t *testing.T) {
	r, backend := newRig(t, "linux")
	l := backend.(*LinuxServer)
	fh := nfsproto.MakeFileHandle(1, 2)
	var committed nfsproto.StableHow
	r.s.Go("w", func(p *sim.Proc) {
		args := nfsproto.WriteArgs{File: fh, Offset: 0, Count: 8192, Stable: nfsproto.Unstable, Data: make([]byte, 8192)}
		d := r.tr.CallSync(p, nfsproto.ProcWrite, args.Encode)
		res, _ := nfsproto.DecodeWriteRes(d)
		committed = res.Committed
		if l.Dirty() != 8192 {
			t.Errorf("dirty = %d after unstable write", l.Dirty())
		}
		cd := r.tr.CallSync(p, nfsproto.ProcCommit, (&nfsproto.CommitArgs{File: fh}).Encode)
		if res, err := nfsproto.DecodeCommitRes(cd); err != nil || res.Status != nfsproto.NFS3OK {
			t.Errorf("commit failed: %v %v", res, err)
		}
		if l.Dirty() != 0 {
			t.Errorf("dirty = %d after commit", l.Dirty())
		}
	})
	r.s.Run(time.Minute)
	if committed != nfsproto.Unstable {
		t.Fatalf("linux committed = %v, want UNSTABLE", committed)
	}
}

func TestLinuxStableWriteWaitsForDisk(t *testing.T) {
	r, _ := newRig(t, "linux")
	fh := nfsproto.MakeFileHandle(1, 3)
	var fastRTT, syncRTT sim.Time
	r.s.Go("w", func(p *sim.Proc) {
		t0 := r.s.Now()
		args := nfsproto.WriteArgs{File: fh, Offset: 0, Count: 8192, Stable: nfsproto.Unstable, Data: make([]byte, 8192)}
		r.tr.CallSync(p, nfsproto.ProcWrite, args.Encode)
		fastRTT = r.s.Now() - t0

		t0 = r.s.Now()
		args2 := nfsproto.WriteArgs{File: fh, Offset: 8192, Count: 8192, Stable: nfsproto.FileSync, Data: make([]byte, 8192)}
		d := r.tr.CallSync(p, nfsproto.ProcWrite, args2.Encode)
		res, _ := nfsproto.DecodeWriteRes(d)
		if res.Committed != nfsproto.FileSync {
			t.Errorf("stable write committed = %v", res.Committed)
		}
		syncRTT = r.s.Now() - t0
	})
	r.s.Run(time.Minute)
	if syncRTT <= fastRTT {
		t.Fatalf("stable write RTT %v should exceed unstable %v (disk wait)", syncRTT, fastRTT)
	}
}

func TestServerCoverageTracksBytes(t *testing.T) {
	r, _ := newRig(t, "filer")
	fh := nfsproto.MakeFileHandle(9, 9)
	total := int64(1 << 20)
	writeFile(r, fh, total, false)
	cov := r.srv.Coverage(fh)
	if !cov.IsContiguousFromZero(total) {
		t.Fatalf("coverage = %v, want [0,%d)", cov, total)
	}
	if r.srv.BytesWritten != total || r.srv.Writes != total/8192 {
		t.Fatalf("bytes=%d writes=%d", r.srv.BytesWritten, r.srv.Writes)
	}
}

func TestFilerFasterIngestThanLinux(t *testing.T) {
	const total = 4 << 20
	fr, _ := newRig(t, "filer")
	ft := writeFile(fr, nfsproto.MakeFileHandle(1, 1), total, false)
	lr, _ := newRig(t, "linux")
	lt := writeFile(lr, nfsproto.MakeFileHandle(1, 1), total, true)
	if ft >= lt {
		t.Fatalf("filer (%v) should ingest 4 MB faster than linux+commit (%v)", ft, lt)
	}
	if fr.srv.NetworkThroughputMBps() <= lr.srv.NetworkThroughputMBps() {
		t.Fatalf("filer throughput %.1f <= linux %.1f",
			fr.srv.NetworkThroughputMBps(), lr.srv.NetworkThroughputMBps())
	}
}

func TestSlowServerWellUnder10MBps(t *testing.T) {
	r, _ := newRig(t, "slow")
	writeFile(r, nfsproto.MakeFileHandle(1, 1), 2<<20, false)
	mbps := r.srv.NetworkThroughputMBps()
	if mbps <= 0 || mbps >= 11 {
		t.Fatalf("100Mb server ingest = %.1f MB/s, want < ~10", mbps)
	}
}

func TestFilerCheckpointPausesService(t *testing.T) {
	// Write more than half the NVRAM: a consistency point must trigger
	// and the filer must stall at least one write during the CP pause.
	r, backend := newRig(t, "filer")
	f := backend.(*Filer)
	writeFile(r, nfsproto.MakeFileHandle(2, 2), 48<<20, false) // > 32 MB half
	if f.Checkpoints == 0 {
		t.Fatal("no consistency point despite exceeding NVRAM half")
	}
}

func TestFilerTimerCheckpoint(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultFilerConfig()
	cfg.CPInterval = 100 * time.Millisecond
	f := NewFiler(s, cfg, newTestVolume(s))
	s.Go("w", func(p *sim.Proc) {
		f.HandleWrite(p, &nfsproto.WriteArgs{Count: 8192})
	})
	s.Run(300 * time.Millisecond)
	if f.Checkpoints == 0 {
		t.Fatal("timer checkpoint never fired")
	}
	if f.NVRAMActive() != 0 {
		t.Fatalf("NVRAM active = %d after CP", f.NVRAMActive())
	}
}

func TestFilerCommitImmediate(t *testing.T) {
	s := sim.New(1)
	f := NewFiler(s, DefaultFilerConfig(), newTestVolume(s))
	s.Go("w", func(p *sim.Proc) {
		t0 := s.Now()
		res := f.HandleCommit(p, &nfsproto.CommitArgs{})
		if res.Status != nfsproto.NFS3OK {
			t.Errorf("commit status %v", res.Status)
		}
		if s.Now() != t0 {
			t.Error("filer commit should not block")
		}
	})
	s.Run(time.Second)
}

func TestLinuxDirtyThrottling(t *testing.T) {
	s := sim.New(1)
	cfg := LinuxConfig{RAMBytes: 4 << 20, DirtyLimit: 1 << 20, DrainChunk: 64 << 10}
	l := NewLinuxServer(s, cfg, newTestDisk(s))
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 512; i++ { // 4 MB total, 4x the dirty limit
			l.HandleWrite(p, &nfsproto.WriteArgs{Count: 8192, Stable: nfsproto.Unstable})
		}
	})
	s.Run(time.Minute)
	if l.Throttled == 0 {
		t.Fatal("writer never throttled despite exceeding dirty limit")
	}
	if l.Flushed == 0 {
		t.Fatal("writeback never ran")
	}
}

func TestBadFrontEndConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	net := netsim.New(s)
	New(s, net, netsim.DefaultGigabit(), Config{Host: "x", Workers: 0, CPUs: 1}, nil)
}

// Both backends must serve READ over the front-end: correct status and
// byte count, data sized for wire-time accounting, and server read
// statistics advancing.
func TestReadServedByBothBackends(t *testing.T) {
	for _, kind := range []string{"filer", "linux"} {
		r, _ := newRig(t, kind)
		fh := nfsproto.MakeFileHandle(1, 3)
		var got *nfsproto.ReadRes
		r.s.Go("r", func(p *sim.Proc) {
			args := nfsproto.ReadArgs{File: fh, Offset: 16384, Count: 8192}
			d := r.tr.CallSync(p, nfsproto.ProcRead, args.Encode)
			res, err := nfsproto.DecodeReadRes(d)
			if err != nil {
				t.Errorf("%s: decode: %v", kind, err)
				return
			}
			got = res
		})
		r.s.Run(time.Minute)
		if got == nil || got.Status != nfsproto.NFS3OK || got.Count != 8192 {
			t.Fatalf("%s: READ reply %+v", kind, got)
		}
		if len(got.Data) != 8192 {
			t.Fatalf("%s: reply carries %d data bytes, want 8192", kind, len(got.Data))
		}
		if r.srv.Reads != 1 || r.srv.BytesRead != 8192 {
			t.Fatalf("%s: server stats reads=%d bytes=%d", kind, r.srv.Reads, r.srv.BytesRead)
		}
	}
}

// Sequential READs must stream from the backend disk: the second of two
// adjacent reads pays no positioning cost, so doubling the bytes must
// not double the elapsed time by more than the media transfer.
func TestSequentialReadsAvoidSeeks(t *testing.T) {
	r, backend := newRig(t, "linux")
	l := backend.(*LinuxServer)
	r.s.Go("r", func(p *sim.Proc) {
		for off := int64(0); off < 10*8192; off += 8192 {
			args := nfsproto.ReadArgs{File: nfsproto.MakeFileHandle(1, 4), Offset: uint64(off), Count: 8192}
			if res, err := nfsproto.DecodeReadRes(r.tr.CallSync(p, nfsproto.ProcRead, args.Encode)); err != nil || res.Status != nfsproto.NFS3OK {
				t.Errorf("read failed: %v %v", res, err)
			}
		}
	})
	r.s.Run(time.Minute)
	if l.disk.Seeks != 1 {
		t.Fatalf("10 sequential READs cost %d seeks, want 1 (initial position)", l.disk.Seeks)
	}
	if l.disk.BytesRead != 10*8192 {
		t.Fatalf("disk read %d bytes", l.disk.BytesRead)
	}
}

func TestBadBackendConfigPanics(t *testing.T) {
	s := sim.New(1)
	for _, fn := range []func(){
		func() { NewFiler(s, FilerConfig{NVRAMBytes: 0}, newTestVolume(s)) },
		func() { NewLinuxServer(s, LinuxConfig{DirtyLimit: 0, DrainChunk: 1}, newTestDisk(s)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
