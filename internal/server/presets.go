package server

import (
	"fmt"

	"repro/internal/disksim"
	"repro/internal/netsim"
	"repro/internal/rpcsim"
	"repro/internal/sim"
)

// Canonical host names for the paper's test bed. Client machines are
// numbered client0, client1, ... (ClientHost); HostClient is machine 0.
const (
	HostClient = "client0"
	HostFiler  = "filer"
	HostLinux  = "linuxsrv"
	HostSlow   = "slowsrv"
)

// ClientHost returns the canonical host name of the i'th client machine.
func ClientHost(i int) string { return fmt.Sprintf("client%d", i) }

// NewF85 builds the prototype Network Appliance F85: single 833 MHz CPU,
// fiber gigabit NIC on fast PCI, 64 MB NVRAM, RAID-4 volume of eight data
// disks. Its WRITE service path is CPU-bound at ~42 MB/s of 8 KB requests
// (the paper measures the filer sustaining "about 38 MBps of network
// throughput", §3.5) and every write is stable on arrival because it
// lands in NVRAM — "the filer's NVRAM acts as an extension of the
// client's page cache" (§3.6) in the sense that nothing waits for disk
// until a consistency point.
func NewF85(s *sim.Sim, net *netsim.Network, mtu int, transport rpcsim.TransportKind) (*Server, *Filer) {
	if mtu <= 0 {
		mtu = netsim.MTUEthernet
	}
	backend := NewFiler(s, DefaultFilerConfig(), disksim.NewFilerVolume(s))
	link := netsim.LinkConfig{
		Bandwidth:   netsim.BandwidthGigabit,
		Propagation: 20_000, // 20 µs through the switch
		MTU:         mtu,
	}
	cfg := Config{
		Host:               HostFiler,
		Workers:            8,
		CPUs:               1,
		RecvCPUBase:        5_000,
		RecvCPUPerFragment: 2_000,
		ServiceCPU:         170_000, // ONTAP WRITE path + NVRAM log copy
		SendCPU:            5_000,
		MTU:                mtu,
		Transport:          transport,
	}
	return New(s, net, link, cfg, backend), backend
}

// NewLinuxNFS builds the four-way Linux 2.4.4 knfsd: plenty of CPU, but
// its Netgear NIC sits in a 32-bit/33 MHz PCI slot (§3.1), capping the
// network path well below gigabit — the reason the paper measures only
// ~26 MB/s of network throughput against it.
func NewLinuxNFS(s *sim.Sim, net *netsim.Network, mtu int, transport rpcsim.TransportKind) (*Server, *LinuxServer) {
	if mtu <= 0 {
		mtu = netsim.MTUEthernet
	}
	backend := NewLinuxServer(s, DefaultLinuxConfig(), disksim.NewSeagateSCSI(s, "knfsd-sda"))
	link := netsim.LinkConfig{
		Bandwidth:   30_000_000, // PCI-constrained effective NIC rate
		Propagation: 20_000,
		MTU:         mtu,
	}
	cfg := Config{
		Host:               HostLinux,
		Workers:            8,
		CPUs:               4,
		RecvCPUBase:        6_000,
		RecvCPUPerFragment: 2_500,
		ServiceCPU:         60_000, // knfsd WRITE path per request
		SendCPU:            6_000,
		MTU:                mtu,
		Transport:          transport,
	}
	return New(s, net, link, cfg, backend), backend
}

// NewSlow100 builds the §3.5 verification server: the same knfsd stack
// behind a 100 Mb/s link ("The benchmark writes to memory even faster
// with this server, which sustains less than 10 MBps").
func NewSlow100(s *sim.Sim, net *netsim.Network, mtu int, transport rpcsim.TransportKind) (*Server, *LinuxServer) {
	if mtu <= 0 {
		mtu = netsim.MTUEthernet
	}
	backend := NewLinuxServer(s, DefaultLinuxConfig(), disksim.NewSeagateSCSI(s, "slow-sda"))
	link := netsim.LinkConfig{
		// 100base-T nominal is 12.5 MB/s; NFS/UDP with fragmentation and
		// half-duplex-era switch overheads sustains ~10 MB/s of wire rate,
		// keeping payload ingest "less than 10 MBps" as the paper measured.
		Bandwidth:   10_500_000,
		Propagation: 30_000,
		MTU:         mtu,
	}
	cfg := Config{
		Host:               HostSlow,
		Workers:            8,
		CPUs:               1,
		RecvCPUBase:        6_000,
		RecvCPUPerFragment: 2_500,
		ServiceCPU:         60_000,
		SendCPU:            6_000,
		MTU:                mtu,
		Transport:          transport,
	}
	return New(s, net, link, cfg, backend), backend
}
