package server

import (
	"strings"
	"testing"
	"time"

	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// A restarted filer must end up with exactly one live timer-CP chain: the
// chain armed before the crash fires once, sees the stale generation, and
// dies without rescheduling. (This pins the fix for the uncancellable
// scheduleTimerCP chain — before it, every crash/restart cycle leaked a
// whole extra chain firing checkpoints forever.)
func TestFilerRestartSingleLiveCPTimer(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultFilerConfig()
	cfg.CPInterval = 100 * time.Millisecond
	f := NewFiler(s, cfg, newTestVolume(s))
	s.Go("w", func(p *sim.Proc) {
		f.HandleWrite(p, &nfsproto.WriteArgs{Count: 8192})
		p.Sleep(30 * time.Millisecond)
		f.Crash()
		f.Restart()
	})
	// Run long enough for the orphaned pre-crash chain to fire and die and
	// for the fresh chain to reschedule several times.
	s.Run(time.Second)
	if n := f.LiveCPTimers(); n != 1 {
		t.Fatalf("live CP timers after crash+restart = %d, want exactly 1", n)
	}
}

// A crashed filer that never restarts must wind down to zero live timers.
func TestFilerCrashOrphansTimerChain(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultFilerConfig()
	cfg.CPInterval = 100 * time.Millisecond
	f := NewFiler(s, cfg, newTestVolume(s))
	s.Go("w", func(p *sim.Proc) {
		p.Sleep(30 * time.Millisecond)
		f.Crash()
	})
	s.Run(time.Second)
	if n := f.LiveCPTimers(); n != 0 {
		t.Fatalf("live CP timers after unrecovered crash = %d, want 0", n)
	}
}

// The filer's NVRAM is battery-backed: everything acked before the crash
// is replayed at restart and nothing is ever lost.
func TestFilerCrashReplaysNVRAM(t *testing.T) {
	s := sim.New(1)
	f := NewFiler(s, DefaultFilerConfig(), newTestVolume(s))
	fh := nfsproto.MakeFileHandle(3, 3)
	const total = 1 << 20
	s.Go("w", func(p *sim.Proc) {
		for off := int64(0); off < total; off += 8192 {
			f.HandleWrite(p, &nfsproto.WriteArgs{File: fh, Offset: uint64(off), Count: 8192})
		}
		f.Crash()
		f.Restart()
	})
	s.Run(time.Minute)
	if f.Replayed != total {
		t.Fatalf("replayed = %d, want %d (the whole NVRAM log)", f.Replayed, total)
	}
	if f.LostBytes() != 0 {
		t.Fatalf("filer lost %d bytes; NVRAM must never lose acked data", f.LostBytes())
	}
	if !f.StableCoverage(fh).IsContiguousFromZero(total) {
		t.Fatalf("stable coverage = %v, want [0,%d)", f.StableCoverage(fh), total)
	}
	if f.NVRAMActive() != 0 {
		t.Fatalf("NVRAM active = %d after replay drained", f.NVRAMActive())
	}
	if f.Crashes != 1 {
		t.Fatalf("crashes = %d", f.Crashes)
	}
}

// knfsd's page cache is volatile: acked UNSTABLE bytes that have not been
// written back die with the crash, and the restart changes the write
// verifier so clients can detect it.
func TestLinuxCrashLosesDirtyAndBumpsVerf(t *testing.T) {
	s := sim.New(1)
	cfg := LinuxConfig{RAMBytes: 4 << 20, DirtyLimit: 2 << 20, DrainChunk: 256 << 10}
	l := NewLinuxServer(s, cfg, newTestDisk(s))
	fh := nfsproto.MakeFileHandle(4, 4)
	const total = 512 << 10
	var verfBefore, verfAfter nfsproto.WriteVerf
	s.Go("w", func(p *sim.Proc) {
		for off := int64(0); off < total; off += 8192 {
			res := l.HandleWrite(p, &nfsproto.WriteArgs{
				File: fh, Offset: uint64(off), Count: 8192, Stable: nfsproto.Unstable})
			verfBefore = res.Verf
		}
		// All writes land at one instant; the writeback daemon has not had
		// the CPU yet, so the whole file is dirty when the power goes out.
		l.Crash()
		l.Restart()
		res := l.HandleWrite(p, &nfsproto.WriteArgs{
			File: fh, Offset: 0, Count: 8192, Stable: nfsproto.Unstable})
		verfAfter = res.Verf
	})
	s.Run(time.Minute)
	if l.Lost != total {
		t.Fatalf("lost = %d, want %d (everything dirty at the crash)", l.Lost, total)
	}
	if l.LostBytes() != l.Lost {
		t.Fatalf("LostBytes() = %d != Lost %d", l.LostBytes(), l.Lost)
	}
	if verfAfter == verfBefore {
		t.Fatal("restart did not change the write verifier")
	}
	// Only the post-restart write should have reached stable storage.
	if !l.StableCoverage(fh).Contains(0, 8192) {
		t.Fatalf("post-restart write not stable: %v", l.StableCoverage(fh))
	}
	if got := l.StableCoverage(fh).Total(); got != 8192 {
		t.Fatalf("stable bytes = %d, want 8192 (pre-crash dirty data is gone)", got)
	}
	if l.Dirty() != 0 {
		t.Fatalf("dirty = %d after final drain", l.Dirty())
	}
}

// The server front end drops requests while down and the client's
// retransmissions complete the call once the server is back.
func TestServerFrontEndDropsWhileDownThenRecovers(t *testing.T) {
	r, _ := newRig(t, "filer")
	fh := nfsproto.MakeFileHandle(5, 5)
	r.srv.Crash()
	if !r.srv.Down() {
		t.Fatal("server not down after Crash")
	}
	r.s.At(3*time.Second, func() { r.srv.Restart() })
	done := false
	r.s.Go("w", func(p *sim.Proc) {
		args := nfsproto.WriteArgs{File: fh, Count: 8192, Stable: nfsproto.Unstable,
			Data: make([]byte, 8192)}
		r.tr.CallSync(p, nfsproto.ProcWrite, args.Encode)
		done = true
	})
	r.s.Run(time.Minute)
	if !done {
		t.Fatal("write never completed after the server came back")
	}
	if r.srv.Crashes != 1 {
		t.Fatalf("crashes = %d", r.srv.Crashes)
	}
	if r.srv.DroppedWhileDown == 0 {
		t.Fatal("no requests counted as dropped while the server was down")
	}
	if got := r.srv.Coverage(fh).Total(); got != 8192 {
		t.Fatalf("coverage = %d bytes, want 8192", got)
	}
}

// Crash on an already-down server (and Restart on an up one) are scenario
// bugs and must panic loudly rather than corrupt lifecycle state.
func TestServerCrashRestartStatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), name) {
				t.Fatalf("%s: panic = %v", name, r)
			}
		}()
		fn()
	}
	r, _ := newRig(t, "filer")
	mustPanic("restart", func() { r.srv.Restart() })
	r.srv.Crash()
	mustPanic("crash", func() { r.srv.Crash() })
}
