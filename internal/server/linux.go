package server

import (
	"repro/internal/disksim"
	"repro/internal/nfsproto"
	"repro/internal/rangeset"
	"repro/internal/sim"
)

// LinuxConfig describes the four-way Linux 2.4.4 knfsd backend.
type LinuxConfig struct {
	// RAMBytes is server memory (512 MB in §3.1).
	RAMBytes int64
	// DirtyLimit is how much unstable write data the page cache will hold
	// before the server throttles incoming writes behind the disk
	// (bdflush-style, ~40% of RAM).
	DirtyLimit int64
	// DrainChunk is the writeback granularity.
	DrainChunk int64
}

// DefaultLinuxConfig returns the paper's Linux server parameters.
func DefaultLinuxConfig() LinuxConfig {
	return LinuxConfig{
		RAMBytes:   512 << 20,
		DirtyLimit: 200 << 20,
		DrainChunk: 1 << 20,
	}
}

// LinuxServer is the knfsd backend: UNSTABLE writes land in the page
// cache and a writeback process drains them to a single SCSI disk; COMMIT
// blocks until the dirty data it covers is on disk. This is the durability
// contract the client pays for at close() — the filer never makes it wait.
type LinuxServer struct {
	s    *sim.Sim
	cfg  LinuxConfig
	disk *disksim.Disk

	dirty     int64
	diskOff   int64
	drainWork *sim.WaitQueue // wakes the writeback process
	dirtyWait *sim.WaitQueue // writers throttled on DirtyLimit
	cleanWait *sim.WaitQueue // COMMIT waiters
	verf      nfsproto.WriteVerf

	// gen is the lifecycle generation, bumped by Crash; the writeback
	// process captures it around each disk write so a chunk that was in
	// flight when the cache was discarded is not retired against the new
	// instance's accounting.
	gen int
	// queue is the FIFO of acked-but-unstable page-cache ranges awaiting
	// writeback; its byte total always equals dirty. A crash discards it —
	// that is exactly the data knfsd loses.
	queue []unstableEntry
	// stable is the per-file byte coverage confirmed on disk.
	stable map[nfsproto.FileHandle]*rangeset.Set

	// Throttled counts writes that blocked on the dirty limit.
	Throttled int64
	// Flushed counts bytes written back to disk.
	Flushed int64
	// Crashes counts Crash calls; Lost counts bytes of acked UNSTABLE data
	// dropped by crashes (the client must detect the verifier change and
	// rewrite them).
	Crashes int64
	Lost    int64
}

// unstableEntry is one acked write sitting dirty in the page cache.
type unstableEntry struct {
	fh  nfsproto.FileHandle
	off int64
	n   int64
}

// NewLinuxServer creates the backend draining to the given disk and
// starts its writeback process.
func NewLinuxServer(s *sim.Sim, cfg LinuxConfig, disk *disksim.Disk) *LinuxServer {
	if cfg.DirtyLimit <= 0 || cfg.DrainChunk <= 0 {
		panic("server: bad linux config")
	}
	l := &LinuxServer{
		s:         s,
		cfg:       cfg,
		disk:      disk,
		drainWork: s.NewWaitQueue("knfsd-drain"),
		dirtyWait: s.NewWaitQueue("knfsd-dirty"),
		cleanWait: s.NewWaitQueue("knfsd-clean"),
		verf:      0x11c4411c44,
		stable:    make(map[nfsproto.FileHandle]*rangeset.Set),
	}
	s.Go("kupdate/knfsd", l.writeback)
	return l
}

// writeback is the server-side flush daemon: whenever dirty data exists,
// write it to disk in DrainChunk units and wake throttled writers and
// COMMIT waiters.
func (l *LinuxServer) writeback(p *sim.Proc) {
	for {
		for l.dirty == 0 {
			l.drainWork.Wait(p)
		}
		chunk := l.cfg.DrainChunk
		if l.dirty < chunk {
			chunk = l.dirty
		}
		gen := l.gen
		l.disk.Write(p, l.diskOff, chunk)
		if gen != l.gen {
			// The server rebooted while this chunk was at the disk; the
			// crash already discarded the cache it was drawn from.
			continue
		}
		l.diskOff += chunk
		l.dirty -= chunk
		l.Flushed += chunk
		l.markStable(chunk)
		l.dirtyWait.Broadcast()
		if l.dirty == 0 {
			l.cleanWait.Broadcast()
		}
	}
}

// markStable retires n bytes from the front of the unstable FIFO into the
// per-file stable coverage, splitting the front entry when a writeback
// chunk ends inside it.
func (l *LinuxServer) markStable(n int64) {
	for n > 0 && len(l.queue) > 0 {
		e := &l.queue[0]
		take := e.n
		if take > n {
			take = n
		}
		l.stableSet(e.fh).Add(e.off, e.off+take)
		e.off += take
		e.n -= take
		n -= take
		if e.n == 0 {
			l.queue = l.queue[1:]
		}
	}
}

// Crash models a server panic/power cut: the page cache — every acked
// UNSTABLE write not yet written back — is gone. The client discovers
// this through the changed write verifier and must rewrite the lost
// ranges (RFC 1813 §3.3.7).
func (l *LinuxServer) Crash() {
	l.gen++
	l.Crashes++
	for _, e := range l.queue {
		l.Lost += e.n
	}
	l.queue = nil
	l.dirty = 0
	l.dirtyWait.Broadcast()
	l.cleanWait.Broadcast()
}

// Restart brings knfsd back with a new write verifier; there is no log to
// replay.
func (l *LinuxServer) Restart() {
	l.verf++
}

// HandleWrite implements Backend.
func (l *LinuxServer) HandleWrite(p *sim.Proc, args *nfsproto.WriteArgs) *nfsproto.WriteRes {
	n := int64(args.Count)
	for l.dirty+n > l.cfg.DirtyLimit {
		l.Throttled++
		l.drainWork.Signal()
		l.dirtyWait.Wait(p)
	}
	l.dirty += n
	l.queue = append(l.queue, unstableEntry{fh: args.File, off: int64(args.Offset), n: n})
	l.drainWork.Signal()

	committed := nfsproto.Unstable
	if args.Stable != nfsproto.Unstable {
		// Synchronous write: wait until the page cache is clean again.
		// (Coarse — real knfsd waits for just this range — but our client
		// only uses stable writes in targeted tests.)
		for l.dirty > 0 {
			l.cleanWait.Wait(p)
		}
		committed = nfsproto.FileSync
	}
	return &nfsproto.WriteRes{
		Status:    nfsproto.NFS3OK,
		Count:     args.Count,
		Committed: committed,
		Verf:      l.verf,
	}
}

// HandleRead implements Backend: a cold-file read served from the SCSI
// disk at the file's byte offset. Sequential client READs arrive as
// sequential disk reads and stream at media rate after one positioning
// cost; a read interleaved with the writeback drain (or a client seek)
// repositions the head. The returned data is Count zero bytes — content
// is not modeled, but the reply's wire size is.
func (l *LinuxServer) HandleRead(p *sim.Proc, args *nfsproto.ReadArgs) *nfsproto.ReadRes {
	l.disk.Read(p, int64(args.Offset), int64(args.Count))
	return &nfsproto.ReadRes{
		Status: nfsproto.NFS3OK,
		Count:  args.Count,
		Data:   nfsproto.Zeroes(int(args.Count)),
	}
}

// HandleCommit implements Backend: block until dirty data reaches disk.
func (l *LinuxServer) HandleCommit(p *sim.Proc, args *nfsproto.CommitArgs) *nfsproto.CommitRes {
	for l.dirty > 0 {
		l.drainWork.Signal()
		l.cleanWait.Wait(p)
	}
	return &nfsproto.CommitRes{Status: nfsproto.NFS3OK, Verf: l.verf}
}

// Dirty returns the bytes of unstable data held in the page cache.
func (l *LinuxServer) Dirty() int64 { return l.dirty }

// Disk returns the SCSI disk the writeback process drains to (chaos
// disk_degrade events slow it mid-run).
func (l *LinuxServer) Disk() *disksim.Disk { return l.disk }

func (l *LinuxServer) stableSet(fh nfsproto.FileHandle) *rangeset.Set {
	set, ok := l.stable[fh]
	if !ok {
		set = &rangeset.Set{}
		l.stable[fh] = set
	}
	return set
}

// StableCoverage implements DurabilityTracker: the byte ranges confirmed
// on the server's disk.
func (l *LinuxServer) StableCoverage(fh nfsproto.FileHandle) *rangeset.Set {
	return l.stableSet(fh)
}

// LostBytes implements DurabilityTracker.
func (l *LinuxServer) LostBytes() int64 { return l.Lost }

// ReplayedBytes implements DurabilityTracker: knfsd has no NVRAM log.
func (l *LinuxServer) ReplayedBytes() int64 { return 0 }
