package server

import (
	"sync"

	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// Inode is one file's (or export root directory's) shared server-side
// state: the attributes every client sees, mutated only under the
// per-file lock so concurrent writers from different clients serialize
// their pre/post attribute captures. The change counter bumps on every
// mutation from any client — it is the value weak-cache-consistency
// comparisons key on, and unlike mtime it distinguishes two writes that
// land in the same virtual tick.
type Inode struct {
	mu    sync.Mutex
	fh    nfsproto.FileHandle
	attrs nfsproto.FileAttrs
}

// Attrs returns a consistent snapshot of the inode's attributes.
func (ino *Inode) Attrs() nfsproto.FileAttrs {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	return ino.attrs
}

// nsExport is one export's flat namespace: every client machine mounts
// its own export (distinct FSID — or a shared one, for shared-file
// workloads), whose root directory holds the files the metadata
// procedures create and look up. The root directory is itself an Inode
// so CREATE/REMOVE replies carry real directory wcc_data.
type nsExport struct {
	names  map[string]*Inode
	dir    *Inode
	nextID uint64
}

// Namespace is the server's per-file shared state across all exports,
// keyed by the fsid carried in each handle. It lives in the front-end,
// not the backend, and deliberately survives Crash/Restart: the filer
// replays attribute mutations from its NVRAM log during recovery, and
// knfsd writes inode metadata through synchronously — either way the
// change counter must never run backwards across a reboot, or clients
// would mistake old data for fresh.
type Namespace struct {
	s       *sim.Sim
	exports map[uint64]*nsExport
	byFH    map[nfsproto.FileHandle]*Inode

	// ChangeBumps counts change-attribute increments across all files —
	// the server-side ground truth the coherence experiments report.
	ChangeBumps int64
}

// NewNamespace returns an empty namespace.
func NewNamespace(s *sim.Sim) *Namespace {
	return &Namespace{
		s:       s,
		exports: make(map[uint64]*nsExport),
		byFH:    make(map[nfsproto.FileHandle]*Inode),
	}
}

func (ns *Namespace) export(dir nfsproto.FileHandle) *nsExport {
	fsid := nfsproto.HandleFSID(dir)
	ex, ok := ns.exports[fsid]
	if !ok {
		root := &Inode{
			fh: nfsproto.RootHandle(fsid),
			attrs: nfsproto.FileAttrs{
				FileID: nfsproto.RootFileID,
				MTime:  uint64(ns.s.Now()),
			},
		}
		ex = &nsExport{names: make(map[string]*Inode), dir: root, nextID: nfsproto.ServerFileIDBase}
		ns.exports[fsid] = ex
		ns.byFH[root.fh] = root
	}
	return ex
}

// inode returns the per-file state for a handle, registering handles the
// namespace has not seen (client-minted write-path handles) on first
// touch so every written file carries a change counter.
func (ns *Namespace) inode(fh nfsproto.FileHandle) *Inode {
	ino, ok := ns.byFH[fh]
	if !ok {
		ino = &Inode{
			fh:    fh,
			attrs: nfsproto.FileAttrs{FileID: nfsproto.HandleFileID(fh)},
		}
		ns.byFH[fh] = ino
	}
	return ino
}

// mutate applies fn to the inode's attributes under its lock, bumping
// mtime and the change counter and capturing the wcc_data pre/post pair
// atomically around the mutation — no other writer can interleave
// between the pre capture and the post capture.
func (ns *Namespace) mutate(ino *Inode, fn func(a *nfsproto.FileAttrs)) nfsproto.WccData {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	pre := nfsproto.WccAttr{Size: ino.attrs.Size, MTime: ino.attrs.MTime, Change: ino.attrs.Change}
	fn(&ino.attrs)
	ino.attrs.MTime = uint64(ns.s.Now())
	ino.attrs.Change++
	ns.ChangeBumps++
	return nfsproto.WccData{HavePre: true, Pre: pre, HavePost: true, Post: ino.attrs}
}

// snapshot returns wcc_data describing an unmutated inode: pre and post
// both reflect the current attributes.
func (ns *Namespace) snapshot(ino *Inode) nfsproto.WccData {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	pre := nfsproto.WccAttr{Size: ino.attrs.Size, MTime: ino.attrs.MTime, Change: ino.attrs.Change}
	return nfsproto.WccData{HavePre: true, Pre: pre, HavePost: true, Post: ino.attrs}
}

// Lookup resolves name in the export dir belongs to.
func (ns *Namespace) Lookup(dir nfsproto.FileHandle, name string) (*Inode, nfsproto.Status) {
	ino, ok := ns.export(dir).names[name]
	if !ok {
		return nil, nfsproto.NFS3ErrNoEnt
	}
	return ino, nfsproto.NFS3OK
}

// Create makes (or, UNCHECKED semantics, returns the existing) name in
// the export dir belongs to, stamping the current virtual time as mtime
// on a fresh file. The returned wcc_data describes the directory: a
// fresh file mutates it (entry count up, change bumped); hitting an
// existing name leaves it untouched.
func (ns *Namespace) Create(dir nfsproto.FileHandle, name string) (*Inode, nfsproto.WccData) {
	ex := ns.export(dir)
	if ino, ok := ex.names[name]; ok {
		return ino, ns.snapshot(ex.dir)
	}
	fsid := nfsproto.HandleFSID(dir)
	id := ex.nextID
	ex.nextID++
	ino := &Inode{
		fh: nfsproto.MakeFileHandle(fsid, id),
		attrs: nfsproto.FileAttrs{
			FileID: id,
			MTime:  uint64(ns.s.Now()),
		},
	}
	ex.names[name] = ino
	ns.byFH[ino.fh] = ino
	wcc := ns.mutate(ex.dir, func(a *nfsproto.FileAttrs) {
		a.Size = uint64(len(ex.names))
	})
	return ino, wcc
}

// Remove unlinks name from the export dir belongs to, returning the
// directory wcc_data alongside the status.
func (ns *Namespace) Remove(dir nfsproto.FileHandle, name string) (nfsproto.Status, nfsproto.WccData) {
	ex := ns.export(dir)
	ino, ok := ex.names[name]
	if !ok {
		return nfsproto.NFS3ErrNoEnt, ns.snapshot(ex.dir)
	}
	delete(ex.names, name)
	delete(ns.byFH, ino.fh)
	wcc := ns.mutate(ex.dir, func(a *nfsproto.FileAttrs) {
		a.Size = uint64(len(ex.names))
	})
	return nfsproto.NFS3OK, wcc
}

// Getattr returns the attributes of a handle. Handles the namespace
// never saw (not created, never written) answer with synthesized
// attributes so GETATTR against them is still well-formed.
func (ns *Namespace) Getattr(fh nfsproto.FileHandle) (nfsproto.FileAttrs, nfsproto.Status) {
	if ino, ok := ns.byFH[fh]; ok {
		return ino.Attrs(), nfsproto.NFS3OK
	}
	return nfsproto.FileAttrs{MTime: uint64(ns.s.Now())}, nfsproto.NFS3OK
}

// Change returns a file's current change counter and whether the
// namespace tracks the handle. It is the omniscient ground-truth probe
// the harness uses to count stale reads; servers never answer with it
// directly (clients learn the counter only via GETATTR and wcc_data).
func (ns *Namespace) Change(fh nfsproto.FileHandle) (uint64, bool) {
	ino, ok := ns.byFH[fh]
	if !ok {
		return 0, false
	}
	ino.mu.Lock()
	defer ino.mu.Unlock()
	return ino.attrs.Change, true
}

// ApplyWrite folds an accepted WRITE into the handle's per-file state —
// size high-water mark, mtime, change — and returns the wcc_data pair
// captured atomically around the mutation.
func (ns *Namespace) ApplyWrite(fh nfsproto.FileHandle, end uint64) nfsproto.WccData {
	return ns.mutate(ns.inode(fh), func(a *nfsproto.FileAttrs) {
		if end > a.Size {
			a.Size = end
		}
	})
}

// Files returns how many files currently exist in the export that dir
// belongs to (test accessor).
func (ns *Namespace) Files(dir nfsproto.FileHandle) int {
	return len(ns.export(dir).names)
}
