package server

import (
	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// nsEntry is one name in an export's root directory.
type nsEntry struct {
	fh    nfsproto.FileHandle
	attrs nfsproto.FileAttrs
}

// nsExport is one export's flat namespace: every client machine mounts
// its own export (distinct FSID), whose root directory holds the files
// the metadata procedures create and look up.
type nsExport struct {
	names  map[string]*nsEntry
	nextID uint64
}

// Namespace is the server's directory state across all exports, keyed by
// the fsid carried in each directory handle. The paper's servers export
// a single volume per client; a flat root directory per export is all
// the metadata workloads need.
type Namespace struct {
	s       *sim.Sim
	exports map[uint64]*nsExport
	byFH    map[nfsproto.FileHandle]*nsEntry
}

// NewNamespace returns an empty namespace.
func NewNamespace(s *sim.Sim) *Namespace {
	return &Namespace{
		s:       s,
		exports: make(map[uint64]*nsExport),
		byFH:    make(map[nfsproto.FileHandle]*nsEntry),
	}
}

func (ns *Namespace) export(dir nfsproto.FileHandle) *nsExport {
	fsid := nfsproto.HandleFSID(dir)
	ex, ok := ns.exports[fsid]
	if !ok {
		ex = &nsExport{names: make(map[string]*nsEntry), nextID: nfsproto.ServerFileIDBase}
		ns.exports[fsid] = ex
	}
	return ex
}

// Lookup resolves name in the export dir belongs to.
func (ns *Namespace) Lookup(dir nfsproto.FileHandle, name string) (*nsEntry, nfsproto.Status) {
	ent, ok := ns.export(dir).names[name]
	if !ok {
		return nil, nfsproto.NFS3ErrNoEnt
	}
	return ent, nfsproto.NFS3OK
}

// Create makes (or, UNCHECKED semantics, returns the existing) name in
// the export dir belongs to, stamping the current virtual time as mtime
// on a fresh file.
func (ns *Namespace) Create(dir nfsproto.FileHandle, name string) *nsEntry {
	ex := ns.export(dir)
	if ent, ok := ex.names[name]; ok {
		return ent
	}
	fsid := nfsproto.HandleFSID(dir)
	id := ex.nextID
	ex.nextID++
	ent := &nsEntry{
		fh: nfsproto.MakeFileHandle(fsid, id),
		attrs: nfsproto.FileAttrs{
			FileID: id,
			MTime:  uint64(ns.s.Now()),
		},
	}
	ex.names[name] = ent
	ns.byFH[ent.fh] = ent
	return ent
}

// Remove unlinks name from the export dir belongs to.
func (ns *Namespace) Remove(dir nfsproto.FileHandle, name string) nfsproto.Status {
	ex := ns.export(dir)
	ent, ok := ex.names[name]
	if !ok {
		return nfsproto.NFS3ErrNoEnt
	}
	delete(ex.names, name)
	delete(ns.byFH, ent.fh)
	return nfsproto.NFS3OK
}

// Getattr returns the attributes of a handle. Handles the namespace
// never saw (client-minted write-path handles) answer with synthesized
// attributes so GETATTR against them is still well-formed.
func (ns *Namespace) Getattr(fh nfsproto.FileHandle) (nfsproto.FileAttrs, nfsproto.Status) {
	if ent, ok := ns.byFH[fh]; ok {
		return ent.attrs, nfsproto.NFS3OK
	}
	return nfsproto.FileAttrs{MTime: uint64(ns.s.Now())}, nfsproto.NFS3OK
}

// NoteWrite folds a committed WRITE into the handle's attributes: size
// high-water mark and mtime, the fields the client's attribute cache
// revalidates against.
func (ns *Namespace) NoteWrite(fh nfsproto.FileHandle, end uint64) {
	ent, ok := ns.byFH[fh]
	if !ok {
		return
	}
	if end > ent.attrs.Size {
		ent.attrs.Size = end
	}
	ent.attrs.MTime = uint64(ns.s.Now())
}

// Files returns how many files currently exist in the export that dir
// belongs to (test accessor).
func (ns *Namespace) Files(dir nfsproto.FileHandle) int {
	return len(ns.export(dir).names)
}
