package server

import (
	"repro/internal/disksim"
	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// FilerConfig describes the F85 backend.
type FilerConfig struct {
	// NVRAMBytes is the write log capacity (64 MB on the F85, §3.1),
	// managed as two halves: one fills while the other drains to disk at a
	// consistency point, WAFL-style.
	NVRAMBytes int64
	// CPPause is how long the filer stops responding to writes when a
	// consistency point begins — the cause of the Figure 4 quiet gap and
	// of §3.5's "the filer briefly stops responding to network write
	// requests during a file system checkpoint".
	CPPause sim.Time
	// CPInterval forces a consistency point after this much time even if
	// the NVRAM half is not full (ONTAP checkpoints every ~10 s).
	CPInterval sim.Time
}

// DefaultFilerConfig returns the F85 parameters.
func DefaultFilerConfig() FilerConfig {
	return FilerConfig{
		NVRAMBytes: 64 << 20,
		CPPause:    60_000_000,     // 60 ms
		CPInterval: 10_000_000_000, // 10 s
	}
}

// Filer is the NetApp-style backend: writes land in NVRAM and are
// immediately stable (FILE_SYNC), so clients skip COMMIT; NVRAM drains to
// a RAID-4 volume in big sequential consistency points.
type Filer struct {
	s    *sim.Sim
	cfg  FilerConfig
	disk *disksim.RAID4

	halfCap    int64 // capacity of the filling half
	active     int64 // bytes logged in the filling half
	draining   bool  // the other half is being written to disk
	pauseUntil sim.Time
	spaceWait  *sim.WaitQueue
	diskOff    int64 // WAFL writes sequentially; next stripe offset
	verf       nfsproto.WriteVerf

	// Checkpoints counts consistency points taken.
	Checkpoints int64
	// Stalls counts writes that blocked on a back-to-back checkpoint
	// (both NVRAM halves busy).
	Stalls int64
}

// NewFiler creates the backend draining to the given RAID volume.
func NewFiler(s *sim.Sim, cfg FilerConfig, vol *disksim.RAID4) *Filer {
	if cfg.NVRAMBytes <= 0 {
		panic("server: filer needs NVRAM")
	}
	f := &Filer{
		s:         s,
		cfg:       cfg,
		disk:      vol,
		halfCap:   cfg.NVRAMBytes / 2,
		spaceWait: s.NewWaitQueue("filer-nvram"),
		verf:      0xf85f85f85,
	}
	f.scheduleTimerCP()
	return f
}

func (f *Filer) scheduleTimerCP() {
	if f.cfg.CPInterval <= 0 {
		return
	}
	f.s.After(f.cfg.CPInterval, func() {
		if f.active > 0 && !f.draining {
			f.startCP()
		}
		f.scheduleTimerCP()
	})
}

// startCP swaps NVRAM halves and begins draining the full one. The filer
// stops accepting writes for CPPause while the consistency point is set
// up.
func (f *Filer) startCP() {
	bytes := f.active
	f.active = 0
	f.draining = true
	f.Checkpoints++
	f.pauseUntil = f.s.Now() + f.cfg.CPPause
	f.disk.WriteAsync(f.diskOff, bytes, func() {
		f.draining = false
		f.spaceWait.Broadcast()
	})
	f.diskOff += bytes
}

// HandleWrite implements Backend: log to NVRAM, reply FILE_SYNC.
func (f *Filer) HandleWrite(p *sim.Proc, args *nfsproto.WriteArgs) *nfsproto.WriteRes {
	n := int64(args.Count)
	for {
		// Stop responding while a consistency point starts.
		if wait := f.pauseUntil - f.s.Now(); wait > 0 {
			p.Sleep(wait)
			continue
		}
		if f.active+n <= f.halfCap {
			break
		}
		if !f.draining {
			f.startCP()
			continue
		}
		// Back-to-back checkpoint: the filling half is full and the other
		// half has not finished draining. The client sees this as the
		// server's sustained (disk-limited) ingest rate.
		f.Stalls++
		f.spaceWait.Wait(p)
	}
	f.active += n
	return &nfsproto.WriteRes{
		Status:    nfsproto.NFS3OK,
		Count:     args.Count,
		Committed: nfsproto.FileSync,
		Verf:      f.verf,
	}
}

// HandleRead implements Backend: a cold-file read served from the RAID-4
// volume. Consistency points pause only network *write* requests (§3.5),
// so reads proceed during a CP — but they share the volume's FIFO queue
// with the NVRAM drain, so a read issued mid-checkpoint waits behind the
// stripe writes.
func (f *Filer) HandleRead(p *sim.Proc, args *nfsproto.ReadArgs) *nfsproto.ReadRes {
	f.disk.Read(p, int64(args.Offset), int64(args.Count))
	return &nfsproto.ReadRes{
		Status: nfsproto.NFS3OK,
		Count:  args.Count,
		Data:   nfsproto.Zeroes(int(args.Count)),
	}
}

// HandleCommit implements Backend: everything is already in NVRAM, so a
// COMMIT (clients rarely send one to a filer) completes immediately.
func (f *Filer) HandleCommit(p *sim.Proc, args *nfsproto.CommitArgs) *nfsproto.CommitRes {
	return &nfsproto.CommitRes{Status: nfsproto.NFS3OK, Verf: f.verf}
}

// NVRAMActive returns the bytes currently logged in the filling half.
func (f *Filer) NVRAMActive() int64 { return f.active }
