package server

import (
	"repro/internal/disksim"
	"repro/internal/nfsproto"
	"repro/internal/rangeset"
	"repro/internal/sim"
)

// FilerConfig describes the F85 backend.
type FilerConfig struct {
	// NVRAMBytes is the write log capacity (64 MB on the F85, §3.1),
	// managed as two halves: one fills while the other drains to disk at a
	// consistency point, WAFL-style.
	NVRAMBytes int64
	// CPPause is how long the filer stops responding to writes when a
	// consistency point begins — the cause of the Figure 4 quiet gap and
	// of §3.5's "the filer briefly stops responding to network write
	// requests during a file system checkpoint".
	CPPause sim.Time
	// CPInterval forces a consistency point after this much time even if
	// the NVRAM half is not full (ONTAP checkpoints every ~10 s).
	CPInterval sim.Time
}

// DefaultFilerConfig returns the F85 parameters.
func DefaultFilerConfig() FilerConfig {
	return FilerConfig{
		NVRAMBytes: 64 << 20,
		CPPause:    60_000_000,     // 60 ms
		CPInterval: 10_000_000_000, // 10 s
	}
}

// Filer is the NetApp-style backend: writes land in NVRAM and are
// immediately stable (FILE_SYNC), so clients skip COMMIT; NVRAM drains to
// a RAID-4 volume in big sequential consistency points.
type Filer struct {
	s    *sim.Sim
	cfg  FilerConfig
	disk *disksim.RAID4

	halfCap    int64 // capacity of the filling half
	active     int64 // bytes logged in the filling half
	draining   bool  // the other half is being written to disk
	drainBytes int64 // bytes in the draining half, not yet confirmed on disk
	pauseUntil sim.Time
	spaceWait  *sim.WaitQueue
	diskOff    int64 // WAFL writes sequentially; next stripe offset
	verf       nfsproto.WriteVerf

	// gen is the lifecycle generation, bumped by Crash. Timer-CP closures
	// and disk completions capture it when scheduled and die quietly if the
	// filer has rebooted underneath them.
	gen int
	// cpLive counts scheduled-but-unfired timer-CP closures (test hook for
	// the one-live-timer invariant across restarts).
	cpLive int

	// stable is the per-file byte coverage that has reached NVRAM — on a
	// filer every acked write is immediately durable.
	stable map[nfsproto.FileHandle]*rangeset.Set

	// Checkpoints counts consistency points taken.
	Checkpoints int64
	// Stalls counts writes that blocked on a back-to-back checkpoint
	// (both NVRAM halves busy).
	Stalls int64
	// Crashes counts Crash calls; Replayed counts bytes recovered from the
	// NVRAM log at restart.
	Crashes  int64
	Replayed int64
}

// NewFiler creates the backend draining to the given RAID volume.
func NewFiler(s *sim.Sim, cfg FilerConfig, vol *disksim.RAID4) *Filer {
	if cfg.NVRAMBytes <= 0 {
		panic("server: filer needs NVRAM")
	}
	f := &Filer{
		s:         s,
		cfg:       cfg,
		disk:      vol,
		halfCap:   cfg.NVRAMBytes / 2,
		spaceWait: s.NewWaitQueue("filer-nvram"),
		verf:      0xf85f85f85,
		stable:    make(map[nfsproto.FileHandle]*rangeset.Set),
	}
	f.scheduleTimerCP()
	return f
}

// scheduleTimerCP arms the next timer-driven consistency point. The chain
// is tied to the filer's lifecycle generation: a closure armed before a
// crash fires once after it, sees the generation mismatch, and dies
// without rescheduling — so a restarted filer always ends up with exactly
// one live chain (the one Restart armed).
func (f *Filer) scheduleTimerCP() {
	if f.cfg.CPInterval <= 0 {
		return
	}
	gen := f.gen
	f.cpLive++
	f.s.After(f.cfg.CPInterval, func() {
		f.cpLive--
		if gen != f.gen {
			return
		}
		if f.active > 0 && !f.draining {
			f.startCP()
		}
		f.scheduleTimerCP()
	})
}

// LiveCPTimers returns the number of scheduled-but-unfired timer-CP
// closures (test accessor).
func (f *Filer) LiveCPTimers() int { return f.cpLive }

// startCP swaps NVRAM halves and begins draining the full one. The filer
// stops accepting writes for CPPause while the consistency point is set
// up.
func (f *Filer) startCP() {
	bytes := f.active
	f.active = 0
	f.draining = true
	f.drainBytes = bytes
	f.Checkpoints++
	f.pauseUntil = f.s.Now() + f.cfg.CPPause
	gen := f.gen
	f.disk.WriteAsync(f.diskOff, bytes, func() {
		if gen != f.gen {
			// The filer rebooted while this stripe was in flight; the
			// restart replay re-covers these bytes from the NVRAM log.
			return
		}
		f.draining = false
		f.drainBytes = 0
		f.spaceWait.Broadcast()
	})
	f.diskOff += bytes
}

// Crash models a filer panic/power cut. NVRAM is battery-backed, so the
// log contents (the filling half plus any half mid-drain whose completion
// we can no longer trust) survive and are replayed at Restart; nothing
// acked is ever lost. Pending timer chains and disk completions are
// orphaned via the generation bump.
func (f *Filer) Crash() {
	f.gen++
	f.Crashes++
	f.pauseUntil = 0
	// The in-flight CP's completion is orphaned; its bytes stay in
	// drainBytes for the restart replay. Clear draining so recovery does
	// not wait on a completion that will never be delivered.
	f.draining = false
	f.spaceWait.Broadcast()
}

// Restart brings the filer back: replay the NVRAM log as one recovery
// consistency point, bump the write verifier (RFC 1813 §3.3.7), and arm a
// fresh timer-CP chain.
func (f *Filer) Restart() {
	f.verf++
	if replay := f.active + f.drainBytes; replay > 0 {
		f.Replayed += replay
		f.active = 0
		f.draining = true
		f.drainBytes = replay
		f.Checkpoints++
		f.pauseUntil = f.s.Now() + f.cfg.CPPause
		gen := f.gen
		f.disk.WriteAsync(f.diskOff, replay, func() {
			if gen != f.gen {
				return
			}
			f.draining = false
			f.drainBytes = 0
			f.spaceWait.Broadcast()
		})
		f.diskOff += replay
	}
	f.scheduleTimerCP()
}

// HandleWrite implements Backend: log to NVRAM, reply FILE_SYNC.
func (f *Filer) HandleWrite(p *sim.Proc, args *nfsproto.WriteArgs) *nfsproto.WriteRes {
	n := int64(args.Count)
	for {
		// Stop responding while a consistency point starts.
		if wait := f.pauseUntil - f.s.Now(); wait > 0 {
			p.Sleep(wait)
			continue
		}
		if f.active+n <= f.halfCap {
			break
		}
		if !f.draining {
			f.startCP()
			continue
		}
		// Back-to-back checkpoint: the filling half is full and the other
		// half has not finished draining. The client sees this as the
		// server's sustained (disk-limited) ingest rate.
		f.Stalls++
		f.spaceWait.Wait(p)
	}
	f.active += n
	f.stableSet(args.File).Add(int64(args.Offset), int64(args.Offset)+n)
	return &nfsproto.WriteRes{
		Status:    nfsproto.NFS3OK,
		Count:     args.Count,
		Committed: nfsproto.FileSync,
		Verf:      f.verf,
	}
}

// HandleRead implements Backend: a cold-file read served from the RAID-4
// volume. Consistency points pause only network *write* requests (§3.5),
// so reads proceed during a CP — but they share the volume's FIFO queue
// with the NVRAM drain, so a read issued mid-checkpoint waits behind the
// stripe writes.
func (f *Filer) HandleRead(p *sim.Proc, args *nfsproto.ReadArgs) *nfsproto.ReadRes {
	f.disk.Read(p, int64(args.Offset), int64(args.Count))
	return &nfsproto.ReadRes{
		Status: nfsproto.NFS3OK,
		Count:  args.Count,
		Data:   nfsproto.Zeroes(int(args.Count)),
	}
}

// HandleCommit implements Backend: everything is already in NVRAM, so a
// COMMIT (clients rarely send one to a filer) completes immediately.
func (f *Filer) HandleCommit(p *sim.Proc, args *nfsproto.CommitArgs) *nfsproto.CommitRes {
	return &nfsproto.CommitRes{Status: nfsproto.NFS3OK, Verf: f.verf}
}

// NVRAMActive returns the bytes currently logged in the filling half.
func (f *Filer) NVRAMActive() int64 { return f.active }

// Disk returns the RAID-4 volume the NVRAM log drains to (chaos
// disk_degrade events slow it mid-run).
func (f *Filer) Disk() *disksim.RAID4 { return f.disk }

func (f *Filer) stableSet(fh nfsproto.FileHandle) *rangeset.Set {
	set, ok := f.stable[fh]
	if !ok {
		set = &rangeset.Set{}
		f.stable[fh] = set
	}
	return set
}

// StableCoverage implements DurabilityTracker: on a filer every acked
// byte is in battery-backed NVRAM, so acked coverage is stable coverage.
func (f *Filer) StableCoverage(fh nfsproto.FileHandle) *rangeset.Set {
	return f.stableSet(fh)
}

// LostBytes implements DurabilityTracker: NVRAM never loses acked data.
func (f *Filer) LostBytes() int64 { return 0 }

// ReplayedBytes implements DurabilityTracker.
func (f *Filer) ReplayedBytes() int64 { return f.Replayed }
