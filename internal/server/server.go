// Package server implements the two NFS servers the paper benchmarks
// against — a prototype Network Appliance F85 filer and a four-way Linux
// 2.4.4 knfsd — plus the shared RPC service front-end they hang off.
//
// The behavioural contrasts the paper leans on are modeled explicitly:
//
//   - The filer logs every write to NVRAM and replies FILE_SYNC, so the
//     client never needs a COMMIT (§3.5); a WAFL-style consistency point
//     periodically makes the filer "briefly stop responding to network
//     write requests" (the Figure 4 quiet gap).
//   - The Linux server accepts UNSTABLE writes into its page cache and
//     makes the client pay for durability at COMMIT time, with a slower
//     network path (its NIC sits on a 32-bit/33 MHz PCI bus, §3.1).
package server

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/rangeset"
	"repro/internal/rpcsim"
	"repro/internal/sim"
	"repro/internal/streamsim"
	"repro/internal/xdr"
)

// Backend is an NFS read/write/commit implementation behind the RPC
// front-end. Handlers run on an nfsd worker process and may block in
// virtual time.
type Backend interface {
	// HandleRead services a READ3 request. The returned Data must be
	// Count bytes long — its length is what puts read wire time on the
	// reply path.
	HandleRead(p *sim.Proc, args *nfsproto.ReadArgs) *nfsproto.ReadRes
	// HandleWrite services a WRITE3 request.
	HandleWrite(p *sim.Proc, args *nfsproto.WriteArgs) *nfsproto.WriteRes
	// HandleCommit services a COMMIT3 request.
	HandleCommit(p *sim.Proc, args *nfsproto.CommitArgs) *nfsproto.CommitRes
}

// CrashRestarter is implemented by backends with a crash/restart
// lifecycle; Server.Crash/Restart forward to it.
type CrashRestarter interface {
	Crash()
	Restart()
}

// DurabilityTracker is implemented by backends that can report which byte
// ranges of each file have reached stable storage. Chaos integrity
// asserts compare it against the front-end's received coverage.
type DurabilityTracker interface {
	StableCoverage(fh nfsproto.FileHandle) *rangeset.Set
	LostBytes() int64
	ReplayedBytes() int64
}

// Config describes the server front-end.
type Config struct {
	// Host is the server's network name.
	Host string
	// Workers is the number of nfsd service threads.
	Workers int
	// CPUs is the number of processors.
	CPUs int
	// RecvCPUBase/PerFragment model interrupt + IP reassembly per request.
	RecvCPUBase        sim.Time
	RecvCPUPerFragment sim.Time
	// ServiceCPU is per-request protocol processing (decode, cache/NVRAM
	// management, reply construction). This is the knob that sets a
	// server's peak ingest rate.
	ServiceCPU sim.Time
	// ReadServiceCPU is the READ path's per-request processing (no NVRAM
	// log or dirty accounting, but a buffer-cache lookup and reply data
	// setup). Zero falls back to ServiceCPU/2.
	ReadServiceCPU sim.Time
	// MetaServiceCPU is the metadata path's per-request processing
	// (LOOKUP/GETATTR/CREATE/REMOVE: a directory or inode-cache probe and
	// a small reply, no data movement). Zero falls back to ServiceCPU/4.
	MetaServiceCPU sim.Time
	// SendCPU is the reply transmit cost.
	SendCPU sim.Time
	// MTU for fragment-count computation; must match the network's.
	MTU int
	// Transport selects how RPC messages reach this server: UDP datagrams
	// (default) or one streamsim connection per client host.
	Transport rpcsim.TransportKind
}

// Server is the RPC service front-end: NIC handler, request queue, worker
// processes, and per-file coverage tracking for integrity checks.
type Server struct {
	s       *sim.Sim
	net     *netsim.Network
	cpu     *sim.CPUPool
	cfg     Config
	backend Backend

	rxq    []rxItem
	rxWait *sim.WaitQueue

	// down marks the server crashed; requests are dropped at the NIC. gen
	// is bumped by Crash so replies computed by the dead instance are
	// suppressed rather than sent by its successor.
	down bool
	gen  int

	// conns holds one stream endpoint per client host (TransportTCP).
	conns map[string]*streamsim.Endpoint

	coverage map[nfsproto.FileHandle]*rangeset.Set

	// ns is the directory state behind the metadata procedures.
	ns *Namespace

	// Statistics.
	Writes        int64
	Commits       int64
	Reads         int64
	Lookups       int64
	Getattrs      int64
	Creates       int64
	Removes       int64
	BytesWritten  int64
	BytesRead     int64
	BusyWorkers   int
	MaxBusy       int
	firstWriteAt  sim.Time
	lastWriteDone sim.Time

	// Crash statistics.
	Crashes          int64
	DroppedWhileDown int64 // requests discarded at the NIC or from rxq
	DroppedReplies   int64 // replies suppressed because their instance died
}

type rxItem struct {
	from    string
	payload []byte
	frags   int
}

// New creates a server, registers its host on the network with the given
// link configuration, and starts its worker processes.
func New(s *sim.Sim, net *netsim.Network, link netsim.LinkConfig, cfg Config, backend Backend) *Server {
	if cfg.Workers < 1 || cfg.CPUs < 1 {
		panic("server: need at least one worker and one CPU")
	}
	srv := &Server{
		s:        s,
		net:      net,
		cpu:      s.NewCPUPool(cfg.Host+"-cpus", cfg.CPUs),
		cfg:      cfg,
		backend:  backend,
		rxWait:   s.NewWaitQueue(cfg.Host + "-rxq"),
		conns:    make(map[string]*streamsim.Endpoint),
		coverage: make(map[nfsproto.FileHandle]*rangeset.Set),
		ns:       NewNamespace(s),
	}
	if cfg.Transport == rpcsim.TransportTCP {
		// Demultiplex by source host: one stream connection per client.
		net.AddHost(cfg.Host, link, func(dg netsim.Datagram) {
			srv.conn(dg.From).HandleDatagram(dg.Payload)
		})
	} else {
		net.AddHost(cfg.Host, link, func(dg netsim.Datagram) {
			if srv.down {
				srv.DroppedWhileDown++
				return
			}
			srv.rxq = append(srv.rxq, rxItem{
				from:    dg.From,
				payload: dg.Payload,
				frags:   netsim.FragmentCount(len(dg.Payload), cfg.MTU),
			})
			srv.rxWait.Signal()
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		s.Go(fmt.Sprintf("nfsd/%s/%d", cfg.Host, i), srv.worker)
	}
	return srv
}

// conn returns (creating on first contact) the stream endpoint for one
// client host. Reassembled records enter the same request queue the UDP
// path uses, with the receive cost expressed in stream segments instead
// of IP fragments.
func (srv *Server) conn(from string) *streamsim.Endpoint {
	ep, ok := srv.conns[from]
	if !ok {
		scfg := streamsim.DefaultConfig(srv.cfg.MTU)
		ep = streamsim.NewEndpoint(srv.s, srv.net, scfg, srv.cfg.Host, from,
			func(rec []byte) {
				srv.rxq = append(srv.rxq, rxItem{
					from:    from,
					payload: rec,
					frags:   streamsim.SegmentCount(len(rec)+4, scfg.MSS),
				})
				srv.rxWait.Signal()
			})
		srv.conns[from] = ep
	}
	return ep
}

// Names returns the server's directory state (test accessor).
func (srv *Server) Names() *Namespace { return srv.ns }

// Crash takes the server down: queued requests vanish, replies to
// requests already in service are suppressed, and the backend loses (or
// preserves) its state per its own crash semantics. Front-end statistics
// and coverage survive — they are simulator-side accounting of what the
// clients were acked, which is exactly what integrity asserts compare
// against post-crash stable storage.
func (srv *Server) Crash() {
	if srv.down {
		panic("server: crash while already down")
	}
	srv.down = true
	srv.gen++
	srv.Crashes++
	srv.DroppedWhileDown += int64(len(srv.rxq))
	srv.rxq = nil
	if cr, ok := srv.backend.(CrashRestarter); ok {
		cr.Crash()
	}
}

// Restart brings a crashed server back into service.
func (srv *Server) Restart() {
	if !srv.down {
		panic("server: restart while up")
	}
	srv.down = false
	if cr, ok := srv.backend.(CrashRestarter); ok {
		cr.Restart()
	}
}

// Down reports whether the server is crashed.
func (srv *Server) Down() bool { return srv.down }

// CoverageFiles returns the file handles with received write coverage in
// deterministic (byte-wise handle) order.
func (srv *Server) CoverageFiles() []nfsproto.FileHandle {
	fhs := make([]nfsproto.FileHandle, 0, len(srv.coverage))
	for fh := range srv.coverage {
		fhs = append(fhs, fh)
	}
	sort.Slice(fhs, func(i, j int) bool {
		return bytes.Compare(fhs[i][:], fhs[j][:]) < 0
	})
	return fhs
}

// Coverage returns the set of byte ranges received for a file handle.
func (srv *Server) Coverage(fh nfsproto.FileHandle) *rangeset.Set {
	set, ok := srv.coverage[fh]
	if !ok {
		set = &rangeset.Set{}
		srv.coverage[fh] = set
	}
	return set
}

// IngestWindow returns the time between the first write arriving and the
// last write completing, used to compute sustained network throughput.
func (srv *Server) IngestWindow() sim.Time {
	if srv.lastWriteDone <= srv.firstWriteAt {
		return 0
	}
	return srv.lastWriteDone - srv.firstWriteAt
}

// NetworkThroughputMBps returns the sustained server-side write ingest in
// MB/s — the "network throughput" rows of §3.5.
func (srv *Server) NetworkThroughputMBps() float64 {
	w := srv.IngestWindow()
	if w <= 0 {
		return 0
	}
	return float64(srv.BytesWritten) / 1e6 / w.Seconds()
}

func (srv *Server) worker(p *sim.Proc) {
	for {
		for len(srv.rxq) == 0 {
			srv.rxWait.Wait(p)
		}
		item := srv.rxq[0]
		srv.rxq = srv.rxq[1:]

		srv.BusyWorkers++
		if srv.BusyWorkers > srv.MaxBusy {
			srv.MaxBusy = srv.BusyWorkers
		}
		srv.serve(p, item, srv.gen)
		if srv.cfg.Transport == rpcsim.TransportTCP {
			// TCP requests are fresh record copies from the stream
			// reassembler; all decoded aliases died with serve. (UDP
			// payloads belong to the client's pending call — it recycles
			// them when the reply lands.)
			xdr.RecycleBuffer(item.payload)
		}
		srv.BusyWorkers--
	}
}

// metaCPU is the per-request charge for a metadata procedure.
func (srv *Server) metaCPU() sim.Time {
	if srv.cfg.MetaServiceCPU != 0 {
		return srv.cfg.MetaServiceCPU
	}
	return srv.cfg.ServiceCPU / 4
}

// serve handles one request. gen is the server generation that dequeued
// it: if the server crashes while the request is in service, the computed
// reply is discarded instead of being sent by the restarted instance.
func (srv *Server) serve(p *sim.Proc, item rxItem, gen int) {
	srv.cpu.Use(p, "nfsd_recv", srv.cfg.RecvCPUBase+sim.Time(item.frags)*srv.cfg.RecvCPUPerFragment)

	d := xdr.NewDecoder(item.payload)
	hdr, err := nfsproto.DecodeCall(d)
	if err != nil {
		panic(fmt.Sprintf("server %s: bad call: %v", srv.cfg.Host, err))
	}

	reply := xdr.AcquireEncoder()
	nfsproto.ReplyHeader{XID: hdr.XID}.Encode(reply)

	switch hdr.Proc {
	case nfsproto.ProcRead:
		args, err := nfsproto.DecodeReadArgs(d)
		if err != nil {
			panic(fmt.Sprintf("server %s: bad READ args: %v", srv.cfg.Host, err))
		}
		readCPU := srv.cfg.ReadServiceCPU
		if readCPU == 0 {
			readCPU = srv.cfg.ServiceCPU / 2
		}
		srv.cpu.Use(p, "nfsd_read", readCPU)
		res := srv.backend.HandleRead(p, args)
		if res.Status == nfsproto.NFS3OK {
			srv.Reads++
			srv.BytesRead += int64(res.Count)
		}
		res.Encode(reply)
	case nfsproto.ProcWrite:
		args, err := nfsproto.DecodeWriteArgs(d)
		if err != nil {
			panic(fmt.Sprintf("server %s: bad WRITE args: %v", srv.cfg.Host, err))
		}
		if srv.firstWriteAt == 0 && srv.Writes == 0 {
			srv.firstWriteAt = srv.s.Now()
		}
		srv.cpu.Use(p, "nfsd_write", srv.cfg.ServiceCPU)
		res := srv.backend.HandleWrite(p, args)
		if res.Status == nfsproto.NFS3OK {
			srv.Writes++
			srv.BytesWritten += int64(res.Count)
			srv.Coverage(args.File).Add(int64(args.Offset), int64(args.Offset)+int64(res.Count))
			res.Wcc = srv.ns.ApplyWrite(args.File, args.Offset+uint64(res.Count))
			srv.lastWriteDone = srv.s.Now()
		}
		res.Encode(reply)
	case nfsproto.ProcLookup:
		args, err := nfsproto.DecodeLookupArgs(d)
		if err != nil {
			panic(fmt.Sprintf("server %s: bad LOOKUP args: %v", srv.cfg.Host, err))
		}
		srv.cpu.Use(p, "nfsd_lookup", srv.metaCPU())
		srv.Lookups++
		res := nfsproto.LookupRes{Status: nfsproto.NFS3ErrNoEnt}
		if ino, st := srv.ns.Lookup(args.Dir, args.Name); st == nfsproto.NFS3OK {
			res = nfsproto.LookupRes{Status: st, File: ino.fh, Attrs: ino.Attrs()}
		}
		res.Encode(reply)
	case nfsproto.ProcGetattr:
		args, err := nfsproto.DecodeGetattrArgs(d)
		if err != nil {
			panic(fmt.Sprintf("server %s: bad GETATTR args: %v", srv.cfg.Host, err))
		}
		srv.cpu.Use(p, "nfsd_getattr", srv.metaCPU())
		srv.Getattrs++
		attrs, st := srv.ns.Getattr(args.File)
		res := nfsproto.GetattrRes{Status: st, Attrs: attrs}
		res.Encode(reply)
	case nfsproto.ProcCreate:
		args, err := nfsproto.DecodeCreateArgs(d)
		if err != nil {
			panic(fmt.Sprintf("server %s: bad CREATE args: %v", srv.cfg.Host, err))
		}
		srv.cpu.Use(p, "nfsd_create", srv.metaCPU())
		srv.Creates++
		ino, wcc := srv.ns.Create(args.Dir, args.Name)
		res := nfsproto.CreateRes{Status: nfsproto.NFS3OK, File: ino.fh, Attrs: ino.Attrs(), Wcc: wcc}
		res.Encode(reply)
	case nfsproto.ProcRemove:
		args, err := nfsproto.DecodeRemoveArgs(d)
		if err != nil {
			panic(fmt.Sprintf("server %s: bad REMOVE args: %v", srv.cfg.Host, err))
		}
		srv.cpu.Use(p, "nfsd_remove", srv.metaCPU())
		srv.Removes++
		st, wcc := srv.ns.Remove(args.Dir, args.Name)
		res := nfsproto.RemoveRes{Status: st, Wcc: wcc}
		res.Encode(reply)
	case nfsproto.ProcCommit:
		args, err := nfsproto.DecodeCommitArgs(d)
		if err != nil {
			panic(fmt.Sprintf("server %s: bad COMMIT args: %v", srv.cfg.Host, err))
		}
		srv.cpu.Use(p, "nfsd_commit", srv.cfg.ServiceCPU/2)
		res := srv.backend.HandleCommit(p, args)
		srv.Commits++
		res.Encode(reply)
	case nfsproto.ProcNull:
		// NULL returns the bare accepted reply.
	default:
		panic(fmt.Sprintf("server %s: unsupported proc %d", srv.cfg.Host, hdr.Proc))
	}

	if srv.down || gen != srv.gen {
		// The instance that accepted this request died before its reply
		// hit the wire; the client will retransmit against the new one.
		srv.DroppedReplies++
		reply.Release()
		return
	}
	srv.cpu.Use(p, "nfsd_send", srv.cfg.SendCPU)
	if srv.cfg.Transport == rpcsim.TransportTCP {
		// SendRecord copies, so the reply encoder is immediately dead.
		srv.conn(item.from).SendRecord(reply.Bytes())
		reply.Release()
	} else {
		// Ownership of the reply buffer moves to the datagram; the
		// client's softirq loop recycles it after the completion callback.
		srv.net.Send(netsim.Datagram{From: srv.cfg.Host, To: item.from, Payload: reply.Bytes()})
	}
}
