package server

import (
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
)

func newTestVolume(s *sim.Sim) *disksim.RAID4 {
	return disksim.NewRAID4(s, "testvol", 4, time.Millisecond, 10_000_000)
}

func newTestDisk(s *sim.Sim) *disksim.Disk {
	return disksim.New(s, "testdisk", time.Millisecond, 20_000_000)
}
