package vfs

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestSplitPagesAligned8K(t *testing.T) {
	spans := SplitPages(0, 8192)
	if len(spans) != 2 {
		t.Fatalf("8 KB write = %d spans, want 2 (\"two pages, thus two requests\")", len(spans))
	}
	for i, sp := range spans {
		if sp.Page != int64(i) || sp.Offset != 0 || sp.Count != PageSize {
			t.Fatalf("span %d = %+v", i, sp)
		}
	}
}

func TestSplitPagesUnaligned(t *testing.T) {
	// 8000 bytes starting at byte 1000: crosses three pages.
	spans := SplitPages(1000, 8000)
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Offset != 1000 || spans[0].Count != 3096 {
		t.Fatalf("first span = %+v", spans[0])
	}
	if spans[1].Offset != 0 || spans[1].Count != PageSize {
		t.Fatalf("middle span = %+v", spans[1])
	}
	if spans[2].Count != 8000-3096-4096 {
		t.Fatalf("last span = %+v", spans[2])
	}
}

func TestSplitPagesEmpty(t *testing.T) {
	if SplitPages(0, 0) != nil || SplitPages(100, -5) != nil {
		t.Fatal("degenerate writes should produce no spans")
	}
}

// Property: spans exactly tile [off, off+n), in order, none crossing a
// page boundary.
func TestSplitPagesProperty(t *testing.T) {
	f := func(offRaw uint32, nRaw uint16) bool {
		off, n := int64(offRaw), int(nRaw)
		if n == 0 {
			return SplitPages(off, n) == nil
		}
		spans := SplitPages(off, n)
		pos := off
		total := 0
		for _, sp := range spans {
			if sp.Page*PageSize+int64(sp.Offset) != pos {
				return false
			}
			if sp.Count <= 0 || sp.Offset+sp.Count > PageSize {
				return false
			}
			pos += int64(sp.Count)
			total += sp.Count
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSyscallChargesCPUAndCommits(t *testing.T) {
	s := sim.New(1)
	cpu := s.NewCPUPool("cpu", 1)
	costs := DefaultCosts()
	var committed []PageSpan
	var elapsed sim.Time
	s.Go("w", func(p *sim.Proc) {
		WriteSyscall(p, cpu, costs, 0, 8192, func(sp PageSpan) {
			committed = append(committed, sp)
		})
		elapsed = s.Now()
	})
	s.Run(time.Second)
	if len(committed) != 2 {
		t.Fatalf("committed %d pages", len(committed))
	}
	want := costs.SyscallEntry + 2*(costs.PerPageCopy+costs.PerPagePrepare)
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if s.Profiler().Total("generic_file_write") == 0 {
		t.Fatal("generic_file_write not profiled")
	}
}

func TestReadSyscallChargesCPUAndFetches(t *testing.T) {
	s := sim.New(1)
	cpu := s.NewCPUPool("cpu", 1)
	costs := DefaultCosts()
	var fetched []PageSpan
	var elapsed sim.Time
	s.Go("r", func(p *sim.Proc) {
		ReadSyscall(p, cpu, costs, 0, 8192, func(sp PageSpan) {
			fetched = append(fetched, sp)
		})
		elapsed = s.Now()
	})
	s.Run(time.Second)
	if len(fetched) != 2 {
		t.Fatalf("fetched %d pages", len(fetched))
	}
	// Reads copy to user space but skip the write path's prepare_write.
	want := costs.SyscallEntry + 2*costs.PerPageCopy
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if s.Profiler().Total("generic_file_read") == 0 {
		t.Fatal("generic_file_read not profiled")
	}
}

func TestDefaultCostsCalibration(t *testing.T) {
	// ~42 µs per 8 KB write at the syscall layer -> ~195 MB/s peak local
	// memory write bandwidth, Figure 1's ext2 plateau.
	c := DefaultCosts()
	per8k := c.SyscallEntry + 2*(c.PerPageCopy+c.PerPagePrepare)
	if per8k < 30*time.Microsecond || per8k > 60*time.Microsecond {
		t.Fatalf("8 KB syscall cost = %v, want 30-60µs", per8k)
	}
}
