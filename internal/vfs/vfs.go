// Package vfs models the Linux 2.4 VFS I/O paths shared by every
// filesystem in the simulation. The write path: the write() system call
// splits user buffers into page-sized pieces ("The Linux VFS layer passes
// write requests no larger than a page to file systems, one at a time",
// §3.4), charges per-page copy and bookkeeping CPU, and hands each page
// to the filesystem's commit_write implementation. The read path is its
// dual: read() walks the same page spans, asks the filesystem to make
// each page resident (generic_file_read -> readpage), and charges the
// copy_to_user cost per page.
package vfs

import (
	"repro/internal/sim"
)

// PageSize is the i386 page size; an 8 KB benchmark write is two pages
// ("8192 bytes is two pages, thus two requests", §3.3).
const PageSize = 4096

// File is what the benchmark drives: a readable and writable file with
// explicit flush and close, all blocking in virtual time.
type File interface {
	// Write appends n bytes at the file's current write position.
	Write(p *sim.Proc, n int)
	// WriteAt writes n bytes at an arbitrary offset (pwrite), dirtying
	// existing pages in place — the rewrite workload's second half.
	WriteAt(p *sim.Proc, off int64, n int)
	// Read reads up to n bytes at the file's current read position and
	// returns the bytes actually read (0 at end of file). The read and
	// write positions are independent, like separate file descriptors on
	// one file.
	Read(p *sim.Proc, n int) int
	// ReadAt reads up to n bytes at an arbitrary offset (pread) without
	// moving the read position — the random-access workloads' read path.
	// Returns the bytes read, clamped at end of file.
	ReadAt(p *sim.Proc, off int64, n int) int
	// Flush makes all written data durable (fsync semantics).
	Flush(p *sim.Proc)
	// Close flushes remaining state and releases the file.
	Close(p *sim.Proc)
	// Size returns the file's size in bytes.
	Size() int64
}

// Namespace is the metadata face of a target: name-based open (creating
// on first use), stat and remove against a flat directory. NFS targets
// back it with LOOKUP/CREATE/GETATTR/REMOVE RPCs through the client's
// attribute cache; targets without a namespace (local ext2 test beds)
// leave OpenSet.Names nil.
type Namespace interface {
	// OpenByName opens name, creating it empty if it does not exist.
	OpenByName(p *sim.Proc, name string) File
	// Stat returns name's size and whether it exists.
	Stat(p *sim.Proc, name string) (int64, bool)
	// Remove unlinks name, reporting whether it existed.
	Remove(p *sim.Proc, name string) bool
}

// OpenSet provides the ways a workload can open files on one target:
// Fresh creates a new empty file (the write benchmark's fresh file),
// Existing opens a file that already holds size bytes of data with no
// pages resident in the client's cache (the read benchmark's cold file).
// Names, when non-nil, adds the name-based metadata operations the
// many-file workloads drive.
type OpenSet struct {
	Fresh    func() File
	Existing func(size int64) File
	Names    Namespace
}

// Costs is the syscall-layer CPU model, calibrated to the paper's client:
// a 933 MHz Pentium III copying from user space through the page cache.
type Costs struct {
	// SyscallEntry covers user/kernel transition and fd lookup.
	SyscallEntry sim.Time
	// PerPageCopy is copy_from_user for one page.
	PerPageCopy sim.Time
	// PerPagePrepare is __grab_cache_page + prepare_write for one page.
	PerPagePrepare sim.Time
}

// DefaultCosts returns the calibrated cost model (~42 µs per 8 KB write
// before filesystem-specific work, ~195 MB/s peak local memory write
// bandwidth as in Figure 1).
func DefaultCosts() Costs {
	return Costs{
		SyscallEntry:   2_000,  // 2 µs
		PerPageCopy:    15_000, // 15 µs
		PerPagePrepare: 5_000,  // 5 µs
	}
}

// PageSpan describes one page-sized piece of a write.
type PageSpan struct {
	// Page is the page index within the file.
	Page int64
	// Offset is the byte offset within the page.
	Offset int
	// Count is the number of bytes in this piece.
	Count int
}

// SplitPages splits a write of n bytes at file offset off into page-sized
// spans, the way generic_file_write iterates.
func SplitPages(off int64, n int) []PageSpan {
	if n <= 0 {
		return nil
	}
	spans := make([]PageSpan, 0, n/PageSize+2)
	for n > 0 {
		page := off / PageSize
		po := int(off % PageSize)
		c := PageSize - po
		if c > n {
			c = n
		}
		spans = append(spans, PageSpan{Page: page, Offset: po, Count: c})
		off += int64(c)
		n -= c
	}
	return spans
}

// WriteSyscall charges the generic write-path CPU for a write of n bytes
// at offset off and invokes commit for each page span in order. It
// returns the spans processed. This is the shared skeleton of
// sys_write -> generic_file_write for both ext2 and NFS files.
func WriteSyscall(p *sim.Proc, cpu *sim.CPUPool, costs Costs, off int64, n int, commit func(PageSpan)) []PageSpan {
	cpu.Use(p, "sys_write", costs.SyscallEntry)
	spans := SplitPages(off, n)
	for _, span := range spans {
		cpu.Use(p, "generic_file_write", costs.PerPagePrepare+costs.PerPageCopy)
		commit(span)
	}
	return spans
}

// ReadSyscall charges the generic read-path CPU for a read of n bytes at
// offset off: syscall entry, then per page a fetch callback (the
// filesystem's readpage — it blocks until the page is resident) followed
// by the copy_to_user charge. This is the shared skeleton of
// sys_read -> generic_file_read for both ext2 and NFS files.
func ReadSyscall(p *sim.Proc, cpu *sim.CPUPool, costs Costs, off int64, n int, fetch func(PageSpan)) []PageSpan {
	cpu.Use(p, "sys_read", costs.SyscallEntry)
	spans := SplitPages(off, n)
	for _, span := range spans {
		fetch(span)
		cpu.Use(p, "generic_file_read", costs.PerPageCopy)
	}
	return spans
}
