// Package nfsproto defines the NFS version 3 protocol messages (RFC 1813)
// and the SunRPC envelope (RFC 1831) used by the client I/O paths: READ,
// WRITE and COMMIT, with real XDR wire encodings. The paper's systems
// mount with NFSv3, rsize=wsize=8192 (§3.1); message sizes computed here
// drive wire transmission times and IP fragment counts in the network
// model — a READ reply carrying rsize bytes of data fragments exactly
// like a WRITE call carrying wsize bytes.
package nfsproto

import (
	"errors"
	"fmt"

	"repro/internal/xdr"
)

// RPC constants (RFC 1831 / RFC 1813).
const (
	RPCVersion  = 2
	ProgramNFS  = 100003
	NFSVersion3 = 3

	MsgCall  = 0
	MsgReply = 1

	AuthNull = 0
	AuthUnix = 1
)

// NFSv3 procedure numbers used by the read and write paths.
const (
	ProcNull   = 0
	ProcRead   = 6
	ProcWrite  = 7
	ProcCommit = 21
)

// StableHow is the WRITE3 stability level (RFC 1813 §3.3.7). The filer
// commits every write to NVRAM and can reply FileSync immediately, which
// is why "filer writes ... don't require an additional COMMIT RPC" (§3.5).
type StableHow uint32

// Stability levels.
const (
	Unstable StableHow = 0
	DataSync StableHow = 1
	FileSync StableHow = 2
)

func (s StableHow) String() string {
	switch s {
	case Unstable:
		return "UNSTABLE"
	case DataSync:
		return "DATA_SYNC"
	case FileSync:
		return "FILE_SYNC"
	default:
		return fmt.Sprintf("StableHow(%d)", uint32(s))
	}
}

// Status is an nfsstat3 result code.
type Status uint32

// Result codes used by the simulation.
const (
	NFS3OK          Status = 0
	NFS3ErrIO       Status = 5
	NFS3ErrStale    Status = 70
	NFS3ErrJukebox  Status = 10008
	NFS3ErrBadThing Status = 10001
)

func (s Status) String() string {
	switch s {
	case NFS3OK:
		return "NFS3_OK"
	case NFS3ErrIO:
		return "NFS3ERR_IO"
	case NFS3ErrStale:
		return "NFS3ERR_STALE"
	case NFS3ErrJukebox:
		return "NFS3ERR_JUKEBOX"
	default:
		return fmt.Sprintf("nfsstat3(%d)", uint32(s))
	}
}

// FHSize is the file handle size our servers issue. NFSv3 allows up to 64
// bytes; Linux knfsd and ONTAP both used 32-byte handles in this era.
const FHSize = 32

// zeroes backs Zeroes(): payload content is not modeled (only wire
// size), so every bulk-data slice can alias one shared read-only buffer
// instead of allocating per RPC. 1 MiB covers any wsize/rsize the
// harness configures; larger requests fall back to a fresh allocation.
var zeroes = make([]byte, 1<<20)

// Zeroes returns an all-zero payload of n bytes. The slice aliases a
// shared buffer and must never be written to.
func Zeroes(n int) []byte {
	if n <= len(zeroes) {
		return zeroes[:n:n]
	}
	return make([]byte, n)
}

// FileHandle identifies a file on a server.
type FileHandle [FHSize]byte

// MakeFileHandle builds a deterministic handle from a file id.
func MakeFileHandle(fsid, fileid uint64) FileHandle {
	var fh FileHandle
	for i := 0; i < 8; i++ {
		fh[i] = byte(fsid >> (8 * i))
		fh[8+i] = byte(fileid >> (8 * i))
	}
	fh[16] = 0x6e // "nfs!"
	fh[17] = 0x66
	fh[18] = 0x73
	fh[19] = 0x21
	return fh
}

// WriteVerf is the write verifier servers return; it changes on server
// reboot so clients know to re-send uncommitted data.
type WriteVerf uint64

// CallHeader is the SunRPC call envelope.
type CallHeader struct {
	XID  uint32
	Proc uint32
}

// authUnixBody is a fixed AUTH_UNIX credential: stamp, machinename
// ("client"), uid, gid, 1 supplementary gid. Matches what the 2.4 client
// sends by default.
func encodeAuthUnix(e *xdr.Encoder) {
	body := xdr.NewEncoder(64)
	body.Uint32(0)        // stamp
	body.String("client") // machine name
	body.Uint32(0)        // uid
	body.Uint32(0)        // gid
	body.Uint32(1)        // gids count
	body.Uint32(0)        // gid[0]
	e.Uint32(AuthUnix)
	e.Opaque(body.Bytes())
}

func skipAuth(d *xdr.Decoder) error {
	_, err := d.Uint32()
	if err != nil {
		return err
	}
	_, err = d.Opaque()
	return err
}

// EncodeCall encodes the RPC call header (xid, call, rpcvers, prog, vers,
// proc, AUTH_UNIX cred, AUTH_NULL verf).
func (h CallHeader) Encode(e *xdr.Encoder) {
	e.Uint32(h.XID)
	e.Uint32(MsgCall)
	e.Uint32(RPCVersion)
	e.Uint32(ProgramNFS)
	e.Uint32(NFSVersion3)
	e.Uint32(h.Proc)
	encodeAuthUnix(e)
	e.Uint32(AuthNull) // verf flavor
	e.Uint32(0)        // verf length
}

// DecodeCall decodes an RPC call header.
func DecodeCall(d *xdr.Decoder) (CallHeader, error) {
	var h CallHeader
	xid, err := d.Uint32()
	if err != nil {
		return h, err
	}
	mtype, err := d.Uint32()
	if err != nil {
		return h, err
	}
	if mtype != MsgCall {
		return h, errors.New("nfsproto: not a call")
	}
	rv, e1 := d.Uint32()
	prog, e2 := d.Uint32()
	vers, e3 := d.Uint32()
	proc, e4 := d.Uint32()
	if err := xdr.Check(e1, e2, e3, e4); err != nil {
		return h, err
	}
	if rv != RPCVersion || prog != ProgramNFS || vers != NFSVersion3 {
		return h, fmt.Errorf("nfsproto: bad rpc header rpcvers=%d prog=%d vers=%d", rv, prog, vers)
	}
	if err := skipAuth(d); err != nil {
		return h, err
	}
	if err := skipAuth(d); err != nil { // verf is flavor+opaque too
		return h, err
	}
	h.XID = xid
	h.Proc = proc
	return h, nil
}

// ReplyHeader is the SunRPC accepted-reply envelope.
type ReplyHeader struct {
	XID uint32
}

// Encode encodes the reply header (xid, reply, accepted, AUTH_NULL verf,
// success).
func (h ReplyHeader) Encode(e *xdr.Encoder) {
	e.Uint32(h.XID)
	e.Uint32(MsgReply)
	e.Uint32(0) // MSG_ACCEPTED
	e.Uint32(AuthNull)
	e.Uint32(0)
	e.Uint32(0) // SUCCESS
}

// DecodeReply decodes a reply header.
func DecodeReply(d *xdr.Decoder) (ReplyHeader, error) {
	var h ReplyHeader
	xid, err := d.Uint32()
	if err != nil {
		return h, err
	}
	mtype, err := d.Uint32()
	if err != nil {
		return h, err
	}
	if mtype != MsgReply {
		return h, errors.New("nfsproto: not a reply")
	}
	stat, err := d.Uint32()
	if err != nil {
		return h, err
	}
	if stat != 0 {
		return h, errors.New("nfsproto: rpc denied")
	}
	if err := skipAuth(d); err != nil {
		return h, err
	}
	astat, err := d.Uint32()
	if err != nil {
		return h, err
	}
	if astat != 0 {
		return h, fmt.Errorf("nfsproto: accept_stat=%d", astat)
	}
	h.XID = xid
	return h, nil
}

// WriteArgs is WRITE3args (RFC 1813 §3.3.7).
type WriteArgs struct {
	File   FileHandle
	Offset uint64
	Count  uint32
	Stable StableHow
	Data   []byte
}

// Encode appends the XDR form of the arguments.
func (a *WriteArgs) Encode(e *xdr.Encoder) {
	e.Grow(xdr.OpaqueLen(FHSize) + 16 + xdr.OpaqueLen(len(a.Data)))
	e.Opaque(a.File[:])
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	e.Uint32(uint32(a.Stable))
	e.Opaque(a.Data)
}

// DecodeWriteArgs decodes WRITE3args.
func DecodeWriteArgs(d *xdr.Decoder) (*WriteArgs, error) {
	fh, err := d.Opaque()
	if err != nil {
		return nil, err
	}
	if len(fh) != FHSize {
		return nil, fmt.Errorf("nfsproto: file handle size %d", len(fh))
	}
	var a WriteArgs
	copy(a.File[:], fh)
	off, e1 := d.Uint64()
	count, e2 := d.Uint32()
	stable, e3 := d.Uint32()
	// The payload is aliased, not copied: servers model WRITE data by
	// size only and never inspect or retain the bytes.
	data, e4 := d.OpaqueRef()
	if err := xdr.Check(e1, e2, e3, e4); err != nil {
		return nil, err
	}
	a.Offset = off
	a.Count = count
	a.Stable = StableHow(stable)
	a.Data = data
	return &a, nil
}

// WriteRes is WRITE3res with the file's wcc_data: pre-op size/mtime/
// change sampled under the per-file lock before the mutation, post-op
// fattr3 after it. The weak-cache-consistency payload is what lets a
// client detect concurrent writers without an extra GETATTR.
type WriteRes struct {
	Status    Status
	Wcc       WccData
	Count     uint32
	Committed StableHow
	Verf      WriteVerf
}

// Encode appends the XDR form of the result.
func (r *WriteRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Wcc.Encode(e)
	if r.Status == NFS3OK {
		e.Uint32(r.Count)
		e.Uint32(uint32(r.Committed))
		e.Uint64(uint64(r.Verf))
	}
}

// DecodeWriteRes decodes WRITE3res.
func DecodeWriteRes(d *xdr.Decoder) (*WriteRes, error) {
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	wcc, err := DecodeWccData(d)
	if err != nil {
		return nil, err
	}
	r := &WriteRes{Status: Status(st), Wcc: wcc}
	if r.Status != NFS3OK {
		return r, nil
	}
	count, e1 := d.Uint32()
	committed, e2 := d.Uint32()
	verf, e3 := d.Uint64()
	if err := xdr.Check(e1, e2, e3); err != nil {
		return nil, err
	}
	r.Count = count
	r.Committed = StableHow(committed)
	r.Verf = WriteVerf(verf)
	return r, nil
}

// ReadArgs is READ3args (RFC 1813 §3.3.6).
type ReadArgs struct {
	File   FileHandle
	Offset uint64
	Count  uint32
}

// Encode appends the XDR form of the arguments.
func (a *ReadArgs) Encode(e *xdr.Encoder) {
	e.Opaque(a.File[:])
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
}

// DecodeReadArgs decodes READ3args.
func DecodeReadArgs(d *xdr.Decoder) (*ReadArgs, error) {
	fh, err := d.Opaque()
	if err != nil {
		return nil, err
	}
	if len(fh) != FHSize {
		return nil, fmt.Errorf("nfsproto: file handle size %d", len(fh))
	}
	var a ReadArgs
	copy(a.File[:], fh)
	off, e1 := d.Uint64()
	count, e2 := d.Uint32()
	if err := xdr.Check(e1, e2); err != nil {
		return nil, err
	}
	a.Offset = off
	a.Count = count
	return &a, nil
}

// ReadRes is READ3res (success arm; post-op attributes elided as "not
// present", a legal server choice). Data is the file content returned;
// its length on the wire is what makes READ replies fragment like WRITE
// calls.
type ReadRes struct {
	Status Status
	Count  uint32
	EOF    bool
	Data   []byte
}

// Encode appends the XDR form of the result.
func (r *ReadRes) Encode(e *xdr.Encoder) {
	e.Grow(16 + xdr.OpaqueLen(len(r.Data)))
	e.Uint32(uint32(r.Status))
	e.Bool(false) // post-op attributes not present
	if r.Status == NFS3OK {
		e.Uint32(r.Count)
		e.Bool(r.EOF)
		e.Opaque(r.Data)
	}
}

// DecodeReadRes decodes READ3res.
func DecodeReadRes(d *xdr.Decoder) (*ReadRes, error) {
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if _, err := d.Bool(); err != nil {
		return nil, err
	}
	r := &ReadRes{Status: Status(st)}
	if r.Status != NFS3OK {
		return r, nil
	}
	count, e1 := d.Uint32()
	eof, e2 := d.Bool()
	// Aliased, not copied: clients count READ bytes, they never look at
	// the (all-zero) payload.
	data, e3 := d.OpaqueRef()
	if err := xdr.Check(e1, e2, e3); err != nil {
		return nil, err
	}
	r.Count = count
	r.EOF = eof
	r.Data = data
	return r, nil
}

// CommitArgs is COMMIT3args (RFC 1813 §3.3.21). Count == 0 means "commit
// everything from Offset to end of file", which is how the client commits
// a whole file at close.
type CommitArgs struct {
	File   FileHandle
	Offset uint64
	Count  uint32
}

// Encode appends the XDR form of the arguments.
func (a *CommitArgs) Encode(e *xdr.Encoder) {
	e.Opaque(a.File[:])
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
}

// DecodeCommitArgs decodes COMMIT3args.
func DecodeCommitArgs(d *xdr.Decoder) (*CommitArgs, error) {
	fh, err := d.Opaque()
	if err != nil {
		return nil, err
	}
	if len(fh) != FHSize {
		return nil, fmt.Errorf("nfsproto: file handle size %d", len(fh))
	}
	var a CommitArgs
	copy(a.File[:], fh)
	off, e1 := d.Uint64()
	count, e2 := d.Uint32()
	if err := xdr.Check(e1, e2); err != nil {
		return nil, err
	}
	a.Offset = off
	a.Count = count
	return &a, nil
}

// CommitRes is COMMIT3res.
type CommitRes struct {
	Status Status
	Verf   WriteVerf
}

// Encode appends the XDR form of the result.
func (r *CommitRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	e.Bool(false)
	e.Bool(false)
	if r.Status == NFS3OK {
		e.Uint64(uint64(r.Verf))
	}
}

// DecodeCommitRes decodes COMMIT3res.
func DecodeCommitRes(d *xdr.Decoder) (*CommitRes, error) {
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if _, err := d.Bool(); err != nil {
		return nil, err
	}
	if _, err := d.Bool(); err != nil {
		return nil, err
	}
	r := &CommitRes{Status: Status(st)}
	if r.Status != NFS3OK {
		return r, nil
	}
	verf, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	r.Verf = WriteVerf(verf)
	return r, nil
}

// WriteCallSize returns the full encoded size of a WRITE call carrying n
// data bytes, envelope included. Used for wire-time estimation without
// building the message.
func WriteCallSize(n int) int {
	e := xdr.NewEncoder(128)
	CallHeader{XID: 1, Proc: ProcWrite}.Encode(e)
	hdr := e.Len()
	return hdr + xdr.OpaqueLen(FHSize) + 8 + 4 + 4 + xdr.OpaqueLen(n)
}

// ReadReplySize returns the full encoded size of a READ reply carrying n
// data bytes, envelope included. Used for wire-time estimation without
// building the message.
func ReadReplySize(n int) int {
	e := xdr.NewEncoder(64)
	ReplyHeader{XID: 1}.Encode(e)
	hdr := e.Len()
	return hdr + 4 + 4 + 4 + 4 + xdr.OpaqueLen(n)
}
