package nfsproto

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/xdr"
)

func TestCallHeaderRoundTrip(t *testing.T) {
	e := xdr.NewEncoder(128)
	CallHeader{XID: 42, Proc: ProcWrite}.Encode(e)
	d := xdr.NewDecoder(e.Bytes())
	h, err := DecodeCall(d)
	if err != nil {
		t.Fatal(err)
	}
	if h.XID != 42 || h.Proc != ProcWrite {
		t.Fatalf("h = %+v", h)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestReplyHeaderRoundTrip(t *testing.T) {
	e := xdr.NewEncoder(64)
	ReplyHeader{XID: 7}.Encode(e)
	h, err := DecodeReply(xdr.NewDecoder(e.Bytes()))
	if err != nil || h.XID != 7 {
		t.Fatalf("h=%+v err=%v", h, err)
	}
}

func TestDecodeCallRejectsReply(t *testing.T) {
	e := xdr.NewEncoder(64)
	ReplyHeader{XID: 7}.Encode(e)
	if _, err := DecodeCall(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected error decoding reply as call")
	}
}

func TestDecodeReplyRejectsCall(t *testing.T) {
	e := xdr.NewEncoder(64)
	CallHeader{XID: 7, Proc: ProcWrite}.Encode(e)
	if _, err := DecodeReply(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected error decoding call as reply")
	}
}

func TestDecodeCallBadVersion(t *testing.T) {
	e := xdr.NewEncoder(64)
	e.Uint32(1) // xid
	e.Uint32(MsgCall)
	e.Uint32(RPCVersion)
	e.Uint32(ProgramNFS)
	e.Uint32(2) // NFSv2: not supported here
	e.Uint32(ProcWrite)
	e.Uint32(AuthNull)
	e.Uint32(0)
	e.Uint32(AuthNull)
	e.Uint32(0)
	if _, err := DecodeCall(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected version error")
	}
}

func TestWriteArgsRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte{0x5a}, 8192)
	a := &WriteArgs{
		File:   MakeFileHandle(1, 99),
		Offset: 12345,
		Count:  8192,
		Stable: Unstable,
		Data:   data,
	}
	e := xdr.NewEncoder(9000)
	a.Encode(e)
	got, err := DecodeWriteArgs(xdr.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.File != a.File || got.Offset != a.Offset || got.Count != a.Count ||
		got.Stable != a.Stable || !bytes.Equal(got.Data, a.Data) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWriteResRoundTrip(t *testing.T) {
	r := &WriteRes{Status: NFS3OK, Count: 8192, Committed: FileSync, Verf: 0xfeed}
	e := xdr.NewEncoder(64)
	r.Encode(e)
	got, err := DecodeWriteRes(xdr.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("got %+v want %+v", got, r)
	}
}

func TestWriteResError(t *testing.T) {
	r := &WriteRes{Status: NFS3ErrIO}
	e := xdr.NewEncoder(64)
	r.Encode(e)
	got, err := DecodeWriteRes(xdr.NewDecoder(e.Bytes()))
	if err != nil || got.Status != NFS3ErrIO {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestCommitRoundTrip(t *testing.T) {
	a := &CommitArgs{File: MakeFileHandle(1, 2), Offset: 0, Count: 0}
	e := xdr.NewEncoder(64)
	a.Encode(e)
	got, err := DecodeCommitArgs(xdr.NewDecoder(e.Bytes()))
	if err != nil || *got != *a {
		t.Fatalf("got %+v err %v", got, err)
	}
	r := &CommitRes{Status: NFS3OK, Verf: 0xbeef}
	e2 := xdr.NewEncoder(64)
	r.Encode(e2)
	gr, err := DecodeCommitRes(xdr.NewDecoder(e2.Bytes()))
	if err != nil || *gr != *r {
		t.Fatalf("gr %+v err %v", gr, err)
	}
}

func TestCommitResError(t *testing.T) {
	r := &CommitRes{Status: NFS3ErrStale}
	e := xdr.NewEncoder(64)
	r.Encode(e)
	gr, err := DecodeCommitRes(xdr.NewDecoder(e.Bytes()))
	if err != nil || gr.Status != NFS3ErrStale {
		t.Fatalf("gr %+v err %v", gr, err)
	}
}

func TestReadArgsRoundTrip(t *testing.T) {
	a := &ReadArgs{File: MakeFileHandle(2, 17), Offset: 65536, Count: 8192}
	e := xdr.NewEncoder(64)
	a.Encode(e)
	got, err := DecodeReadArgs(xdr.NewDecoder(e.Bytes()))
	if err != nil || *got != *a {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestReadArgsBadHandle(t *testing.T) {
	e := xdr.NewEncoder(64)
	e.Opaque([]byte{1, 2, 3})
	e.Uint64(0)
	e.Uint32(0)
	if _, err := DecodeReadArgs(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected handle-size error")
	}
}

func TestReadResRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte{0xa5}, 8192)
	r := &ReadRes{Status: NFS3OK, Count: 8192, EOF: true, Data: data}
	e := xdr.NewEncoder(9000)
	r.Encode(e)
	got, err := DecodeReadRes(xdr.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != r.Status || got.Count != r.Count || got.EOF != r.EOF ||
		!bytes.Equal(got.Data, r.Data) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadResError(t *testing.T) {
	r := &ReadRes{Status: NFS3ErrStale}
	e := xdr.NewEncoder(64)
	r.Encode(e)
	got, err := DecodeReadRes(xdr.NewDecoder(e.Bytes()))
	if err != nil || got.Status != NFS3ErrStale || got.Data != nil {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestReadReplySizeMatchesEncoding(t *testing.T) {
	for _, n := range []int{0, 1, 4096, 8192} {
		r := &ReadRes{Status: NFS3OK, Count: uint32(n), Data: make([]byte, n)}
		e := xdr.NewEncoder(n + 256)
		ReplyHeader{XID: 1}.Encode(e)
		r.Encode(e)
		if e.Len() != ReadReplySize(n) {
			t.Fatalf("n=%d: encoded %d, ReadReplySize %d", n, e.Len(), ReadReplySize(n))
		}
	}
}

// An rsize READ reply must fragment on the wire like a wsize WRITE call:
// its payload exceeds one ethernet MTU by the data it carries.
func TestReadReplySizeIs8KPlusEnvelope(t *testing.T) {
	sz := ReadReplySize(8192)
	if sz <= 8192 || sz > 8192+300 {
		t.Fatalf("ReadReplySize(8192) = %d, want 8192 + small envelope", sz)
	}
}

func TestMakeFileHandleDistinct(t *testing.T) {
	a := MakeFileHandle(1, 1)
	b := MakeFileHandle(1, 2)
	c := MakeFileHandle(2, 1)
	if a == b || a == c || b == c {
		t.Fatal("handles collide")
	}
}

func TestWriteCallSizeMatchesEncoding(t *testing.T) {
	for _, n := range []int{0, 1, 4096, 8192} {
		a := &WriteArgs{File: MakeFileHandle(1, 1), Count: uint32(n), Data: make([]byte, n)}
		e := xdr.NewEncoder(n + 256)
		CallHeader{XID: 1, Proc: ProcWrite}.Encode(e)
		a.Encode(e)
		if e.Len() != WriteCallSize(n) {
			t.Fatalf("n=%d: encoded %d, WriteCallSize %d", n, e.Len(), WriteCallSize(n))
		}
	}
}

// An 8 KB WRITE over UDP must exceed one ethernet MTU (it fragments into
// ~6 packets on the paper's no-jumbo network).
func TestWriteCallSizeIs8KPlusEnvelope(t *testing.T) {
	sz := WriteCallSize(8192)
	if sz <= 8192 || sz > 8192+300 {
		t.Fatalf("WriteCallSize(8192) = %d, want 8192 + small envelope", sz)
	}
}

func TestStringers(t *testing.T) {
	if Unstable.String() != "UNSTABLE" || FileSync.String() != "FILE_SYNC" || DataSync.String() != "DATA_SYNC" {
		t.Fatal("StableHow strings wrong")
	}
	if StableHow(9).String() == "" || Status(12345).String() == "" {
		t.Fatal("unknown values should still format")
	}
	if NFS3OK.String() != "NFS3_OK" || NFS3ErrIO.String() != "NFS3ERR_IO" || NFS3ErrStale.String() != "NFS3ERR_STALE" || NFS3ErrJukebox.String() != "NFS3ERR_JUKEBOX" {
		t.Fatal("status strings wrong")
	}
}

// Property: WRITE args of any size round-trip and the envelope size
// formula holds.
func TestWriteArgsProperty(t *testing.T) {
	f := func(off uint64, data []byte, stable uint8) bool {
		a := &WriteArgs{
			File:   MakeFileHandle(3, 4),
			Offset: off,
			Count:  uint32(len(data)),
			Stable: StableHow(stable % 3),
			Data:   data,
		}
		e := xdr.NewEncoder(len(data) + 64)
		a.Encode(e)
		got, err := DecodeWriteArgs(xdr.NewDecoder(e.Bytes()))
		if err != nil {
			return false
		}
		return got.Offset == off && bytes.Equal(got.Data, data) && got.Stable == a.Stable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWriteArgsBadHandle(t *testing.T) {
	e := xdr.NewEncoder(64)
	e.Opaque([]byte{1, 2, 3}) // wrong fh size
	e.Uint64(0)
	e.Uint32(0)
	e.Uint32(0)
	e.Opaque(nil)
	if _, err := DecodeWriteArgs(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected handle-size error")
	}
	e2 := xdr.NewEncoder(64)
	e2.Opaque([]byte{1, 2, 3})
	e2.Uint64(0)
	e2.Uint32(0)
	if _, err := DecodeCommitArgs(xdr.NewDecoder(e2.Bytes())); err == nil {
		t.Fatal("expected handle-size error")
	}
}
