package nfsproto

import (
	"bytes"
	"testing"

	"repro/internal/xdr"
)

// The fuzz targets check two properties on arbitrary bytes:
//
//  1. No decoder panics or over-reads — every malformed input is turned
//     into an error (PR 6's garbage-vector tests, generalized).
//  2. Canonicalization is idempotent: if garbage happens to decode,
//     re-encoding the decoded message and decoding again must succeed
//     and reproduce the same bytes. (The first re-encode may legally
//     differ from the input: decoders tolerate foreign auth blobs and
//     nonzero opaque padding that encoders always write canonically.)

// encoder is any args/res message; all nfsproto messages append
// themselves to an *xdr.Encoder.
type encoder interface{ Encode(e *xdr.Encoder) }

// decodeArgsFor dispatches to the per-procedure call-args decoder.
func decodeArgsFor(proc uint32, d *xdr.Decoder) (encoder, bool, error) {
	switch proc {
	case ProcWrite:
		a, err := DecodeWriteArgs(d)
		return a, true, err
	case ProcRead:
		a, err := DecodeReadArgs(d)
		return a, true, err
	case ProcCommit:
		a, err := DecodeCommitArgs(d)
		return a, true, err
	case ProcGetattr:
		a, err := DecodeGetattrArgs(d)
		return a, true, err
	case ProcLookup:
		a, err := DecodeLookupArgs(d)
		return a, true, err
	case ProcCreate:
		a, err := DecodeCreateArgs(d)
		return a, true, err
	case ProcRemove:
		a, err := DecodeRemoveArgs(d)
		return a, true, err
	}
	return nil, false, nil
}

// decodeResFor dispatches to the per-procedure reply-result decoder.
func decodeResFor(proc uint32, d *xdr.Decoder) (encoder, bool, error) {
	switch proc {
	case ProcWrite:
		r, err := DecodeWriteRes(d)
		return r, true, err
	case ProcRead:
		r, err := DecodeReadRes(d)
		return r, true, err
	case ProcCommit:
		r, err := DecodeCommitRes(d)
		return r, true, err
	case ProcGetattr:
		r, err := DecodeGetattrRes(d)
		return r, true, err
	case ProcLookup:
		r, err := DecodeLookupRes(d)
		return r, true, err
	case ProcCreate:
		r, err := DecodeCreateRes(d)
		return r, true, err
	case ProcRemove:
		r, err := DecodeRemoveRes(d)
		return r, true, err
	}
	return nil, false, nil
}

// garbageSeeds are PR 6's hand-written garbage-decode vectors, promoted
// to fuzz corpus entries.
func garbageSeeds() [][]byte {
	return [][]byte{
		bytes.Repeat([]byte{0xff}, 7),
		bytes.Repeat([]byte{0xff}, 256),
		{0, 0, 0},
	}
}

func FuzzDecodeCall(f *testing.F) {
	fh := MakeFileHandle(3, 77)
	seeds := []struct {
		h    CallHeader
		body encoder
	}{
		{CallHeader{XID: 1, Proc: ProcWrite}, &WriteArgs{File: fh, Offset: 4096, Count: 5, Stable: Unstable, Data: []byte("hello")}},
		{CallHeader{XID: 2, Proc: ProcRead}, &ReadArgs{File: fh, Offset: 0, Count: 32768}},
		{CallHeader{XID: 3, Proc: ProcCommit}, &CommitArgs{File: fh, Offset: 0, Count: 0}},
		{CallHeader{XID: 4, Proc: ProcGetattr}, &GetattrArgs{File: fh}},
		{CallHeader{XID: 5, Proc: ProcLookup}, &LookupArgs{Dir: RootHandle(3), Name: "f00042"}},
		{CallHeader{XID: 6, Proc: ProcCreate}, &CreateArgs{Dir: RootHandle(3), Name: "fresh"}},
		{CallHeader{XID: 7, Proc: ProcRemove}, &RemoveArgs{Dir: RootHandle(3), Name: "gone"}},
	}
	for _, s := range seeds {
		e := xdr.NewEncoder(256)
		s.h.Encode(e)
		s.body.Encode(e)
		f.Add(append([]byte(nil), e.Bytes()...))
	}
	for _, g := range garbageSeeds() {
		f.Add(g)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := xdr.NewDecoder(data)
		h, err := DecodeCall(d)
		if err != nil {
			return
		}
		args, known, err := decodeArgsFor(h.Proc, d)
		if !known || err != nil {
			return
		}
		e1 := xdr.NewEncoder(len(data))
		h.Encode(e1)
		args.Encode(e1)
		canon := append([]byte(nil), e1.Bytes()...)

		d2 := xdr.NewDecoder(canon)
		h2, err := DecodeCall(d2)
		if err != nil {
			t.Fatalf("canonical call header does not re-decode: %v", err)
		}
		args2, _, err := decodeArgsFor(h2.Proc, d2)
		if err != nil {
			t.Fatalf("canonical proc=%d args do not re-decode: %v", h2.Proc, err)
		}
		if d2.Remaining() != 0 {
			t.Fatalf("canonical call left %d undecoded bytes", d2.Remaining())
		}
		e2 := xdr.NewEncoder(len(canon))
		h2.Encode(e2)
		args2.Encode(e2)
		if !bytes.Equal(canon, e2.Bytes()) {
			t.Fatalf("canonicalization not idempotent:\n first %x\nsecond %x", canon, e2.Bytes())
		}
	})
}

func FuzzDecodeReply(f *testing.F) {
	fh := MakeFileHandle(3, 77)
	attrs := FileAttrs{Size: 1 << 20, FileID: 42, MTime: 987654321, Change: 17}
	wcc := WccData{HavePre: true, Pre: WccAttr{Size: 1 << 19, MTime: 123456789, Change: 16}, HavePost: true, Post: attrs}
	seeds := []struct {
		proc uint32
		body encoder
	}{
		{ProcWrite, &WriteRes{Status: NFS3OK, Count: 5, Committed: FileSync, Verf: 0xdead}},
		{ProcWrite, &WriteRes{Status: NFS3OK, Wcc: wcc, Count: 5, Committed: FileSync, Verf: 0xdead}},
		{ProcWrite, &WriteRes{Status: NFS3ErrJukebox}},
		{ProcRead, &ReadRes{Status: NFS3OK, Count: 5, EOF: true, Data: []byte("hello")}},
		{ProcCommit, &CommitRes{Status: NFS3OK, Verf: 0xbeef}},
		{ProcGetattr, &GetattrRes{Status: NFS3OK, Attrs: attrs}},
		{ProcLookup, &LookupRes{Status: NFS3ErrNoEnt}},
		{ProcCreate, &CreateRes{Status: NFS3OK, File: fh, Attrs: attrs, Wcc: wcc}},
		{ProcRemove, &RemoveRes{Status: NFS3OK, Wcc: wcc}},
	}
	for i, s := range seeds {
		e := xdr.NewEncoder(256)
		ReplyHeader{XID: uint32(i + 1)}.Encode(e)
		s.body.Encode(e)
		f.Add(s.proc, append([]byte(nil), e.Bytes()...))
	}
	for _, g := range garbageSeeds() {
		f.Add(uint32(ProcWrite), g)
	}
	f.Fuzz(func(t *testing.T, proc uint32, data []byte) {
		d := xdr.NewDecoder(data)
		h, err := DecodeReply(d)
		if err != nil {
			return
		}
		res, known, err := decodeResFor(proc, d)
		if !known || err != nil {
			return
		}
		e1 := xdr.NewEncoder(len(data))
		h.Encode(e1)
		res.Encode(e1)
		canon := append([]byte(nil), e1.Bytes()...)

		d2 := xdr.NewDecoder(canon)
		h2, err := DecodeReply(d2)
		if err != nil {
			t.Fatalf("canonical reply header does not re-decode: %v", err)
		}
		res2, _, err := decodeResFor(proc, d2)
		if err != nil {
			t.Fatalf("canonical proc=%d result does not re-decode: %v", proc, err)
		}
		if d2.Remaining() != 0 {
			t.Fatalf("canonical reply left %d undecoded bytes", d2.Remaining())
		}
		e2 := xdr.NewEncoder(len(canon))
		h2.Encode(e2)
		res2.Encode(e2)
		if !bytes.Equal(canon, e2.Bytes()) {
			t.Fatalf("canonicalization not idempotent:\n first %x\nsecond %x", canon, e2.Bytes())
		}
	})
}
