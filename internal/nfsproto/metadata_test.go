package nfsproto

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/xdr"
)

// codecCase is one message type in the parametrized XDR suite: encode
// produces the wire bytes, decode parses them and verifies the result
// matches what was encoded, returning the decoded status (args types
// report NFS3OK on success). The same table drives the round-trip,
// truncated-buffer, and garbage-input subtests for every procedure —
// the new metadata calls and the pre-existing WRITE/READ/COMMIT ones.
type codecCase struct {
	name   string
	encode func(e *xdr.Encoder)
	decode func(d *xdr.Decoder) (Status, error)
}

func codecCases() []codecCase {
	fh := MakeFileHandle(3, 77)
	dir := RootHandle(3)
	attrs := FileAttrs{Size: 1 << 20, FileID: 42, MTime: 987654321, Change: 17}
	wcc := WccData{
		HavePre:  true,
		Pre:      WccAttr{Size: 1 << 19, MTime: 123456789, Change: 16},
		HavePost: true,
		Post:     attrs,
	}
	data := bytes.Repeat([]byte{0xa5}, 1000)
	return []codecCase{
		{"getattr-args",
			func(e *xdr.Encoder) { (&GetattrArgs{File: fh}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeGetattrArgs(d)
				if err != nil {
					return 0, err
				}
				if got.File != fh {
					return 0, fmt.Errorf("file %v", got.File)
				}
				return NFS3OK, nil
			}},
		{"getattr-res-ok",
			func(e *xdr.Encoder) { (&GetattrRes{Status: NFS3OK, Attrs: attrs}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeGetattrRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && got.Attrs != attrs {
					return 0, fmt.Errorf("attrs %+v", got.Attrs)
				}
				return got.Status, nil
			}},
		{"getattr-res-err",
			func(e *xdr.Encoder) { (&GetattrRes{Status: NFS3ErrStale}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeGetattrRes(d)
				if err != nil {
					return 0, err
				}
				return got.Status, nil
			}},
		{"lookup-args",
			func(e *xdr.Encoder) { (&LookupArgs{Dir: dir, Name: "f00042"}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeLookupArgs(d)
				if err != nil {
					return 0, err
				}
				if got.Dir != dir || got.Name != "f00042" {
					return 0, fmt.Errorf("got %+v", got)
				}
				return NFS3OK, nil
			}},
		{"lookup-res-ok",
			func(e *xdr.Encoder) { (&LookupRes{Status: NFS3OK, File: fh, Attrs: attrs}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeLookupRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && (got.File != fh || got.Attrs != attrs) {
					return 0, fmt.Errorf("got %+v", got)
				}
				return got.Status, nil
			}},
		{"lookup-res-noent",
			func(e *xdr.Encoder) { (&LookupRes{Status: NFS3ErrNoEnt}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeLookupRes(d)
				if err != nil {
					return 0, err
				}
				return got.Status, nil
			}},
		{"create-args",
			func(e *xdr.Encoder) { (&CreateArgs{Dir: dir, Name: "fresh"}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeCreateArgs(d)
				if err != nil {
					return 0, err
				}
				if got.Dir != dir || got.Name != "fresh" {
					return 0, fmt.Errorf("got %+v", got)
				}
				return NFS3OK, nil
			}},
		{"create-res-ok",
			func(e *xdr.Encoder) { (&CreateRes{Status: NFS3OK, File: fh, Attrs: attrs}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeCreateRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && (got.File != fh || got.Attrs != attrs) {
					return 0, fmt.Errorf("got %+v", got)
				}
				return got.Status, nil
			}},
		{"create-res-exist",
			func(e *xdr.Encoder) { (&CreateRes{Status: NFS3ErrExist}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeCreateRes(d)
				if err != nil {
					return 0, err
				}
				return got.Status, nil
			}},
		{"remove-args",
			func(e *xdr.Encoder) { (&RemoveArgs{Dir: dir, Name: "gone"}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeRemoveArgs(d)
				if err != nil {
					return 0, err
				}
				if got.Dir != dir || got.Name != "gone" {
					return 0, fmt.Errorf("got %+v", got)
				}
				return NFS3OK, nil
			}},
		{"remove-res",
			func(e *xdr.Encoder) { (&RemoveRes{Status: NFS3OK}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeRemoveRes(d)
				if err != nil {
					return 0, err
				}
				return got.Status, nil
			}},
		{"remove-res-wcc",
			func(e *xdr.Encoder) { (&RemoveRes{Status: NFS3OK, Wcc: wcc}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeRemoveRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && got.Wcc != wcc {
					return 0, fmt.Errorf("wcc %+v", got.Wcc)
				}
				return got.Status, nil
			}},
		{"create-res-wcc",
			func(e *xdr.Encoder) { (&CreateRes{Status: NFS3OK, File: fh, Attrs: attrs, Wcc: wcc}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeCreateRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && (got.File != fh || got.Attrs != attrs || got.Wcc != wcc) {
					return 0, fmt.Errorf("got %+v", got)
				}
				return got.Status, nil
			}},
		{"write-args",
			func(e *xdr.Encoder) {
				(&WriteArgs{File: fh, Offset: 8192, Count: 1000, Stable: Unstable, Data: data}).Encode(e)
			},
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeWriteArgs(d)
				if err != nil {
					return 0, err
				}
				if got.File != fh || got.Offset != 8192 || !bytes.Equal(got.Data, data) {
					return 0, fmt.Errorf("got %+v", got)
				}
				return NFS3OK, nil
			}},
		{"write-res",
			func(e *xdr.Encoder) {
				(&WriteRes{Status: NFS3OK, Count: 1000, Committed: FileSync, Verf: 0xbeef}).Encode(e)
			},
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeWriteRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && (got.Count != 1000 || got.Verf != 0xbeef) {
					return 0, fmt.Errorf("got %+v", got)
				}
				return got.Status, nil
			}},
		{"write-res-wcc",
			func(e *xdr.Encoder) {
				(&WriteRes{Status: NFS3OK, Wcc: wcc, Count: 1000, Committed: FileSync, Verf: 0xbeef}).Encode(e)
			},
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeWriteRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && (got.Count != 1000 || got.Wcc != wcc) {
					return 0, fmt.Errorf("got %+v", got)
				}
				return got.Status, nil
			}},
		{"write-res-wcc-pre-only",
			// A crashed-and-restarted server can supply pre-op attrs while
			// the post-op arm is absent; the optional arms must decode
			// independently.
			func(e *xdr.Encoder) {
				(&WriteRes{Status: NFS3ErrIO, Wcc: WccData{HavePre: true, Pre: wcc.Pre}}).Encode(e)
			},
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeWriteRes(d)
				if err != nil {
					return 0, err
				}
				if got.Wcc.HavePre != true || got.Wcc.HavePost || got.Wcc.Pre != wcc.Pre {
					return 0, fmt.Errorf("wcc %+v", got.Wcc)
				}
				return got.Status, nil
			}},
		{"read-args",
			func(e *xdr.Encoder) { (&ReadArgs{File: fh, Offset: 4096, Count: 8192}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeReadArgs(d)
				if err != nil {
					return 0, err
				}
				if got.File != fh || got.Offset != 4096 || got.Count != 8192 {
					return 0, fmt.Errorf("got %+v", got)
				}
				return NFS3OK, nil
			}},
		{"read-res",
			func(e *xdr.Encoder) {
				(&ReadRes{Status: NFS3OK, Count: 1000, EOF: true, Data: data}).Encode(e)
			},
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeReadRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && (got.Count != 1000 || !got.EOF || !bytes.Equal(got.Data, data)) {
					return 0, fmt.Errorf("got %+v", got)
				}
				return got.Status, nil
			}},
		{"commit-args",
			func(e *xdr.Encoder) { (&CommitArgs{File: fh, Offset: 0, Count: 1 << 20}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeCommitArgs(d)
				if err != nil {
					return 0, err
				}
				if got.File != fh || got.Count != 1<<20 {
					return 0, fmt.Errorf("got %+v", got)
				}
				return NFS3OK, nil
			}},
		{"commit-res",
			func(e *xdr.Encoder) { (&CommitRes{Status: NFS3OK, Verf: 0xfeed}).Encode(e) },
			func(d *xdr.Decoder) (Status, error) {
				got, err := DecodeCommitRes(d)
				if err != nil {
					return 0, err
				}
				if got.Status == NFS3OK && got.Verf != 0xfeed {
					return 0, fmt.Errorf("got %+v", got)
				}
				return got.Status, nil
			}},
	}
}

func encodeCase(c codecCase) []byte {
	e := xdr.NewEncoder(2048)
	c.encode(e)
	return e.Bytes()
}

// TestCodecRoundTrip drives every procedure's args and reply through an
// encode/decode round trip and requires the decoder to consume the
// buffer exactly.
func TestCodecRoundTrip(t *testing.T) {
	for _, c := range codecCases() {
		t.Run(c.name, func(t *testing.T) {
			buf := encodeCase(c)
			d := xdr.NewDecoder(buf)
			if _, err := c.decode(d); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if d.Remaining() != 0 {
				t.Fatalf("decoder left %d bytes unread of %d", d.Remaining(), len(buf))
			}
		})
	}
}

// TestCodecTruncated feeds every strict prefix of every message to its
// decoder: all must fail cleanly (no panic, non-nil error) because each
// message needs exactly its full encoding.
func TestCodecTruncated(t *testing.T) {
	for _, c := range codecCases() {
		t.Run(c.name, func(t *testing.T) {
			buf := encodeCase(c)
			for n := 0; n < len(buf); n++ {
				if _, err := c.decode(xdr.NewDecoder(buf[:n])); err == nil {
					t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(buf))
				}
			}
		})
	}
}

// TestCodecGarbage feeds arbitrary non-message bytes to every decoder.
// A decoder must never panic; it must either report an error or — for
// reply types, whose leading word is a status discriminant — decode the
// garbage as a legal error reply (status != OK), never as a successful
// one.
func TestCodecGarbage(t *testing.T) {
	vectors := [][]byte{
		bytes.Repeat([]byte{0xff}, 7),   // huge lengths, odd size
		bytes.Repeat([]byte{0xff}, 256), // huge lengths, plenty of bytes
		{0, 0, 0},                       // too short for even one word
	}
	for _, c := range codecCases() {
		t.Run(c.name, func(t *testing.T) {
			for i, g := range vectors {
				st, err := c.decode(xdr.NewDecoder(g))
				if err == nil && st == NFS3OK {
					t.Fatalf("vector %d decoded garbage as a successful message", i)
				}
			}
		})
	}
}

// TestFileAttrsFullFattr3 pins the fattr3 wire size: the RFC's 21 XDR
// words (type, mode, nlink, uid, gid, size, used, rdev, fsid, fileid,
// three times) plus one hyper for the change counter = 92 bytes, so
// simulated GETATTR replies carry the real protocol's byte weight.
func TestFileAttrsFullFattr3(t *testing.T) {
	e := xdr.NewEncoder(128)
	a := FileAttrs{Size: 5, FileID: 6, MTime: 7, Change: 8}
	a.Encode(e)
	if got, want := len(e.Bytes()), 92; got != want {
		t.Fatalf("fattr3 encodes to %d bytes, want %d", got, want)
	}
	got, err := DecodeFileAttrs(xdr.NewDecoder(e.Bytes()))
	if err != nil || got != a {
		t.Fatalf("round trip: %+v err %v", got, err)
	}
}

// TestWccAttrWire pins wcc_attr at 24 bytes: size hyper, mtime nfstime3,
// and the change counter riding the ctime slot.
func TestWccAttrWire(t *testing.T) {
	e := xdr.NewEncoder(64)
	w := WccAttr{Size: 9, MTime: 3e9 + 14, Change: 21}
	w.Encode(e)
	if got, want := len(e.Bytes()), 24; got != want {
		t.Fatalf("wcc_attr encodes to %d bytes, want %d", got, want)
	}
	got, err := DecodeWccAttr(xdr.NewDecoder(e.Bytes()))
	if err != nil || got != w {
		t.Fatalf("round trip: %+v err %v", got, err)
	}
}

// TestRootHandleFSID pins the handle layout the server's per-export
// namespaces rely on: the fsid lands in the handle and HandleFSID
// recovers it, for root and regular handles alike.
func TestRootHandleFSID(t *testing.T) {
	for _, fsid := range []uint64{0, 1, 7, 1 << 40} {
		if got := HandleFSID(RootHandle(fsid)); got != fsid {
			t.Fatalf("HandleFSID(RootHandle(%d)) = %d", fsid, got)
		}
		if got := HandleFSID(MakeFileHandle(fsid, 999)); got != fsid {
			t.Fatalf("HandleFSID(MakeFileHandle(%d, 999)) = %d", fsid, got)
		}
	}
	if RootHandle(1) == MakeFileHandle(1, ServerFileIDBase) {
		t.Fatal("root handle collides with first server-minted handle")
	}
}
