// Metadata procedures (RFC 1813): GETATTR, LOOKUP, CREATE and REMOVE,
// the namespace half of the protocol. The paper's benchmark is one big
// file per writer, but a real client spends much of its RPC budget on
// this tail — LOOKUP and GETATTR against many small files — so the
// simulation carries the real XDR encodings here too: a full fattr3 on
// every attribute-bearing reply, wcc_data arms on the
// directory-modifying procedures, and an sattr3 in CREATE, exactly as
// the 2.4 client put them on the wire.

package nfsproto

import (
	"fmt"

	"repro/internal/xdr"
)

// NFSv3 metadata procedure numbers (RFC 1813 §3.3).
const (
	ProcGetattr = 1
	ProcLookup  = 3
	ProcCreate  = 8
	ProcRemove  = 12
)

// Result codes used by the metadata path.
const (
	NFS3ErrNoEnt Status = 2
	NFS3ErrExist Status = 17
)

// RootFileID is the well-known file id of an export's root directory.
// It sits at the top of the id space so it can never collide with
// client-minted write-path ids (small integers) or server-allocated
// CREATE ids (which grow up from ServerFileIDBase).
const RootFileID = ^uint64(0)

// ServerFileIDBase is the first file id a server allocates for CREATE;
// ids below it belong to client-minted handles.
const ServerFileIDBase = 1 << 32

// RootHandle returns the file handle of an export's root directory.
func RootHandle(fsid uint64) FileHandle { return MakeFileHandle(fsid, RootFileID) }

// HandleFSID extracts the fsid a handle was minted with.
func HandleFSID(fh FileHandle) uint64 {
	var fsid uint64
	for i := 0; i < 8; i++ {
		fsid |= uint64(fh[i]) << (8 * i)
	}
	return fsid
}

// HandleFileID extracts the file id a handle was minted with.
func HandleFileID(fh FileHandle) uint64 {
	var id uint64
	for i := 0; i < 8; i++ {
		id |= uint64(fh[8+i]) << (8 * i)
	}
	return id
}

// FileAttrs is the subset of fattr3 the simulation models: size, file
// id, modification time and the change counter. Encode/Decode carry the
// full fattr3 wire form so reply sizes on the wire are faithful; the
// unmodeled fields encode as a regular file owned by root.
type FileAttrs struct {
	Size   uint64
	FileID uint64
	// MTime is the modification time in nanoseconds of virtual time.
	MTime uint64
	// Change is the server's per-file change counter, bumped under the
	// per-file lock on every mutation from any client. NFSv3 has no
	// change attribute (clients synthesize one from ctime); the
	// simulation carries NFSv4's monotonic counter explicitly so
	// same-tick writes stay distinguishable.
	Change uint64
}

// Encode appends the fattr3 wire form: the 84 RFC bytes plus one hyper
// for the change counter (92 bytes).
func (a *FileAttrs) Encode(e *xdr.Encoder) {
	e.Uint32(1)    // type NF3REG
	e.Uint32(0644) // mode
	e.Uint32(1)    // nlink
	e.Uint32(0)    // uid
	e.Uint32(0)    // gid
	e.Uint64(a.Size)
	e.Uint64(a.Size) // used
	e.Uint32(0)      // rdev major
	e.Uint32(0)      // rdev minor
	e.Uint64(0)      // fsid
	e.Uint64(a.FileID)
	e.Uint64(a.Change)
	encodeTime(e, a.MTime) // atime (mirrors mtime)
	encodeTime(e, a.MTime) // mtime
	encodeTime(e, a.MTime) // ctime
}

func encodeTime(e *xdr.Encoder, ns uint64) {
	e.Uint32(uint32(ns / 1e9))
	e.Uint32(uint32(ns % 1e9))
}

func decodeTime(d *xdr.Decoder) (uint64, error) {
	sec, e1 := d.Uint32()
	nsec, e2 := d.Uint32()
	if err := xdr.Check(e1, e2); err != nil {
		return 0, err
	}
	return uint64(sec)*1e9 + uint64(nsec), nil
}

// DecodeFileAttrs decodes a fattr3, keeping the modeled fields.
func DecodeFileAttrs(d *xdr.Decoder) (FileAttrs, error) {
	var a FileAttrs
	_, e1 := d.Uint32() // type
	_, e2 := d.Uint32() // mode
	_, e3 := d.Uint32() // nlink
	_, e4 := d.Uint32() // uid
	_, e5 := d.Uint32() // gid
	size, e6 := d.Uint64()
	_, e7 := d.Uint64()  // used
	_, e8 := d.Uint32()  // rdev major
	_, e9 := d.Uint32()  // rdev minor
	_, e10 := d.Uint64() // fsid
	fileid, e11 := d.Uint64()
	change, e12 := d.Uint64()
	if err := xdr.Check(e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12); err != nil {
		return a, err
	}
	if _, err := decodeTime(d); err != nil { // atime
		return a, err
	}
	mtime, err := decodeTime(d)
	if err != nil {
		return a, err
	}
	if _, err := decodeTime(d); err != nil { // ctime
		return a, err
	}
	a.Size = size
	a.FileID = fileid
	a.MTime = mtime
	a.Change = change
	return a, nil
}

// WccAttr is the pre-op attribute subset of wcc_data (RFC 1813 §2.6
// wcc_attr): size and mtime sampled under the per-file lock immediately
// before the mutation, with the change counter riding in the ctime slot
// (same wire weight: one nfstime3 = one hyper).
type WccAttr struct {
	Size   uint64
	MTime  uint64
	Change uint64
}

// Encode appends the wcc_attr wire form (24 bytes).
func (w *WccAttr) Encode(e *xdr.Encoder) {
	e.Uint64(w.Size)
	encodeTime(e, w.MTime)
	e.Uint64(w.Change) // ctime slot carries the change counter
}

// DecodeWccAttr decodes a wcc_attr.
func DecodeWccAttr(d *xdr.Decoder) (WccAttr, error) {
	var w WccAttr
	size, err := d.Uint64()
	if err != nil {
		return w, err
	}
	mtime, err := decodeTime(d)
	if err != nil {
		return w, err
	}
	change, err := d.Uint64()
	if err != nil {
		return w, err
	}
	w.Size, w.MTime, w.Change = size, mtime, change
	return w, nil
}

// WccData is the weak-cache-consistency payload on mutating replies:
// optional pre-op size/mtime/change plus optional post-op fattr3. The
// client compares the pre-op values against its cache to decide whether
// anyone else touched the file, then adopts the post-op attributes
// without a separate GETATTR.
type WccData struct {
	HavePre  bool
	Pre      WccAttr
	HavePost bool
	Post     FileAttrs
}

// Encode appends the wcc_data wire form.
func (w *WccData) Encode(e *xdr.Encoder) {
	e.Bool(w.HavePre)
	if w.HavePre {
		w.Pre.Encode(e)
	}
	e.Bool(w.HavePost)
	if w.HavePost {
		w.Post.Encode(e)
	}
}

// DecodeWccData decodes a wcc_data.
func DecodeWccData(d *xdr.Decoder) (WccData, error) {
	var w WccData
	havePre, err := d.Bool()
	if err != nil {
		return w, err
	}
	if havePre {
		w.HavePre = true
		if w.Pre, err = DecodeWccAttr(d); err != nil {
			return w, err
		}
	}
	havePost, err := d.Bool()
	if err != nil {
		return w, err
	}
	if havePost {
		w.HavePost = true
		if w.Post, err = DecodeFileAttrs(d); err != nil {
			return w, err
		}
	}
	return w, nil
}

func decodeFH(d *xdr.Decoder) (FileHandle, error) {
	var out FileHandle
	fh, err := d.Opaque()
	if err != nil {
		return out, err
	}
	if len(fh) != FHSize {
		return out, fmt.Errorf("nfsproto: file handle size %d", len(fh))
	}
	copy(out[:], fh)
	return out, nil
}

// GetattrArgs is GETATTR3args: just the object handle.
type GetattrArgs struct {
	File FileHandle
}

// Encode appends the XDR form of the arguments.
func (a *GetattrArgs) Encode(e *xdr.Encoder) {
	e.Opaque(a.File[:])
}

// DecodeGetattrArgs decodes GETATTR3args.
func DecodeGetattrArgs(d *xdr.Decoder) (*GetattrArgs, error) {
	fh, err := decodeFH(d)
	if err != nil {
		return nil, err
	}
	return &GetattrArgs{File: fh}, nil
}

// GetattrRes is GETATTR3res. The success arm carries a mandatory fattr3
// (no "present" discriminator, unlike post-op attributes).
type GetattrRes struct {
	Status Status
	Attrs  FileAttrs
}

// Encode appends the XDR form of the result.
func (r *GetattrRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == NFS3OK {
		r.Attrs.Encode(e)
	}
}

// DecodeGetattrRes decodes GETATTR3res.
func DecodeGetattrRes(d *xdr.Decoder) (*GetattrRes, error) {
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &GetattrRes{Status: Status(st)}
	if r.Status != NFS3OK {
		return r, nil
	}
	r.Attrs, err = DecodeFileAttrs(d)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// LookupArgs is LOOKUP3args: directory handle plus name.
type LookupArgs struct {
	Dir  FileHandle
	Name string
}

// Encode appends the XDR form of the arguments.
func (a *LookupArgs) Encode(e *xdr.Encoder) {
	e.Opaque(a.Dir[:])
	e.String(a.Name)
}

// DecodeLookupArgs decodes LOOKUP3args.
func DecodeLookupArgs(d *xdr.Decoder) (*LookupArgs, error) {
	fh, err := decodeFH(d)
	if err != nil {
		return nil, err
	}
	name, err := d.String()
	if err != nil {
		return nil, err
	}
	return &LookupArgs{Dir: fh, Name: name}, nil
}

// LookupRes is LOOKUP3res: on success the object handle plus post-op
// object attributes (always present from our servers); directory post-op
// attributes are elided as "not present" on both arms.
type LookupRes struct {
	Status Status
	File   FileHandle
	Attrs  FileAttrs
}

// Encode appends the XDR form of the result.
func (r *LookupRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == NFS3OK {
		e.Opaque(r.File[:])
		e.Bool(true) // object post-op attributes present
		r.Attrs.Encode(e)
	}
	e.Bool(false) // dir post-op attributes not present
}

// DecodeLookupRes decodes LOOKUP3res.
func DecodeLookupRes(d *xdr.Decoder) (*LookupRes, error) {
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &LookupRes{Status: Status(st)}
	if r.Status == NFS3OK {
		r.File, err = decodeFH(d)
		if err != nil {
			return nil, err
		}
		present, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if present {
			r.Attrs, err = DecodeFileAttrs(d)
			if err != nil {
				return nil, err
			}
		}
	}
	if _, err := d.Bool(); err != nil { // dir attributes arm
		return nil, err
	}
	return r, nil
}

// CreateArgs is CREATE3args in UNCHECKED mode with the 2.4 client's
// sattr3 (mode set to 0644, everything else don't-change).
type CreateArgs struct {
	Dir  FileHandle
	Name string
}

// Encode appends the XDR form of the arguments.
func (a *CreateArgs) Encode(e *xdr.Encoder) {
	e.Opaque(a.Dir[:])
	e.String(a.Name)
	e.Uint32(0) // createhow3 UNCHECKED
	// sattr3: mode set, uid/gid/size don't-change, times DONT_CHANGE.
	e.Bool(true)
	e.Uint32(0644)
	e.Bool(false) // uid
	e.Bool(false) // gid
	e.Bool(false) // size
	e.Uint32(0)   // atime DONT_CHANGE
	e.Uint32(0)   // mtime DONT_CHANGE
}

// DecodeCreateArgs decodes CREATE3args.
func DecodeCreateArgs(d *xdr.Decoder) (*CreateArgs, error) {
	fh, err := decodeFH(d)
	if err != nil {
		return nil, err
	}
	name, err := d.String()
	if err != nil {
		return nil, err
	}
	how, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if how > 2 {
		return nil, fmt.Errorf("nfsproto: createhow3 %d", how)
	}
	// Consume the sattr3 (EXCLUSIVE carries a verifier instead; we only
	// model UNCHECKED/GUARDED).
	if how != 2 {
		if err := skipSattr(d); err != nil {
			return nil, err
		}
	} else if _, err := d.Uint64(); err != nil {
		return nil, err
	}
	return &CreateArgs{Dir: fh, Name: name}, nil
}

func skipSattr(d *xdr.Decoder) error {
	for i := 0; i < 3; i++ { // mode, uid, gid
		set, err := d.Bool()
		if err != nil {
			return err
		}
		if set {
			if _, err := d.Uint32(); err != nil {
				return err
			}
		}
	}
	set, err := d.Bool() // size
	if err != nil {
		return err
	}
	if set {
		if _, err := d.Uint64(); err != nil {
			return err
		}
	}
	for i := 0; i < 2; i++ { // atime, mtime set_time enums
		how, err := d.Uint32()
		if err != nil {
			return err
		}
		if how > 2 {
			return fmt.Errorf("nfsproto: set_time %d", how)
		}
		if how == 2 { // SET_TO_CLIENT_TIME carries an nfstime3
			if _, err := decodeTime(d); err != nil {
				return err
			}
		}
	}
	return nil
}

// CreateRes is CREATE3res: on success the post-op handle and attributes
// of the new file (always present from our servers), plus the directory
// wcc_data on both arms.
type CreateRes struct {
	Status Status
	File   FileHandle
	Attrs  FileAttrs
	Wcc    WccData
}

// Encode appends the XDR form of the result.
func (r *CreateRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == NFS3OK {
		e.Bool(true) // post-op handle present
		e.Opaque(r.File[:])
		e.Bool(true) // post-op attributes present
		r.Attrs.Encode(e)
	}
	r.Wcc.Encode(e)
}

// DecodeCreateRes decodes CREATE3res.
func DecodeCreateRes(d *xdr.Decoder) (*CreateRes, error) {
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &CreateRes{Status: Status(st)}
	if r.Status == NFS3OK {
		present, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if present {
			r.File, err = decodeFH(d)
			if err != nil {
				return nil, err
			}
		}
		present, err = d.Bool()
		if err != nil {
			return nil, err
		}
		if present {
			r.Attrs, err = DecodeFileAttrs(d)
			if err != nil {
				return nil, err
			}
		}
	}
	r.Wcc, err = DecodeWccData(d)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// RemoveArgs is REMOVE3args: directory handle plus name.
type RemoveArgs struct {
	Dir  FileHandle
	Name string
}

// Encode appends the XDR form of the arguments.
func (a *RemoveArgs) Encode(e *xdr.Encoder) {
	e.Opaque(a.Dir[:])
	e.String(a.Name)
}

// DecodeRemoveArgs decodes REMOVE3args.
func DecodeRemoveArgs(d *xdr.Decoder) (*RemoveArgs, error) {
	fh, err := decodeFH(d)
	if err != nil {
		return nil, err
	}
	name, err := d.String()
	if err != nil {
		return nil, err
	}
	return &RemoveArgs{Dir: fh, Name: name}, nil
}

// RemoveRes is REMOVE3res: status plus directory wcc_data carrying the
// removed file's last pre-op attributes.
type RemoveRes struct {
	Status Status
	Wcc    WccData
}

// Encode appends the XDR form of the result.
func (r *RemoveRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Wcc.Encode(e)
}

// DecodeRemoveRes decodes REMOVE3res.
func DecodeRemoveRes(d *xdr.Decoder) (*RemoveRes, error) {
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &RemoveRes{Status: Status(st)}
	var err2 error
	r.Wcc, err2 = DecodeWccData(d)
	if err2 != nil {
		return nil, err2
	}
	return r, nil
}
