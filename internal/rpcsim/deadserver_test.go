package rpcsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/xdr"
)

// Regression for the retransmit-forever hang: with MaxRetries set, a call
// against a permanently-dead server must be abandoned with a
// DeadServerError instead of retransmitting on a saturated backoff timer
// until the heat death of the run.
func TestDeadServerGivesUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetransmitTimeout = 10 * time.Millisecond
	cfg.MaxRetries = 3
	rig := newRig(t, cfg, 100*time.Microsecond, 1<<30) // server never answers
	completed := false
	rig.s.Go("caller", func(p *sim.Proc) {
		rig.tr.CallSync(p, nfsproto.ProcNull, nullArgs)
		completed = true
	})
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		rig.s.Run(time.Minute)
	}()
	if msg == "" {
		t.Fatal("run ended without the give-up error; transport hung or retried forever")
	}
	if !strings.Contains(msg, "gave up after 3 retransmits") {
		t.Fatalf("error = %q, want the DeadServerError text", msg)
	}
	if completed {
		t.Fatal("CallSync returned against a dead server")
	}
	st := rig.tr.Stats()
	if st.MajorTimeouts != 1 {
		t.Fatalf("major timeouts = %d, want 1", st.MajorTimeouts)
	}
	if st.Retransmits != 3 {
		t.Fatalf("retransmits = %d, want exactly MaxRetries", st.Retransmits)
	}
	if rig.tr.InFlight() != 0 {
		t.Fatalf("%d calls still pending; the abandoned slot leaked", rig.tr.InFlight())
	}
}

// MaxRetries 0 is the classic hard mount: the transport must keep
// retransmitting without ever raising the give-up error.
func TestZeroMaxRetriesRetriesForever(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetransmitTimeout = 10 * time.Millisecond
	cfg.MaxRetransmitTimeout = 40 * time.Millisecond
	rig := newRig(t, cfg, 100*time.Microsecond, 1<<30)
	rig.s.Go("caller", func(p *sim.Proc) {
		rig.tr.Call(p, nfsproto.ProcNull, nullArgs, nil)
	})
	rig.s.Run(2 * time.Second) // must not panic
	st := rig.tr.Stats()
	if st.MajorTimeouts != 0 {
		t.Fatalf("major timeouts = %d on a hard mount", st.MajorTimeouts)
	}
	if st.Retransmits < 10 {
		t.Fatalf("retransmits = %d, want an ongoing retry stream", st.Retransmits)
	}
	if rig.tr.InFlight() != 1 {
		t.Fatalf("in flight = %d, want the call still pending", rig.tr.InFlight())
	}
}

// SetMaxRetries must take effect on calls issued after it — the chaos
// engine sets the cap on an already-assembled test bed.
func TestSetMaxRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetransmitTimeout = 10 * time.Millisecond
	rig := newRig(t, cfg, 100*time.Microsecond, 1<<30)
	rig.tr.SetMaxRetries(2)
	rig.s.Go("caller", func(p *sim.Proc) {
		rig.tr.Call(p, nfsproto.ProcNull, nullArgs, nil)
	})
	var msg string
	func() {
		defer func() { msg = fmt.Sprint(recover()) }()
		rig.s.Run(time.Minute)
	}()
	if !strings.Contains(msg, "gave up after 2 retransmits") {
		t.Fatalf("error = %q", msg)
	}
}

// Regression for the softirq decode panic: an undecodable datagram (stale
// or truncated traffic, e.g. from around a server reboot) must be counted
// and dropped, not kill the receive path.
func TestBadReplyCountedAndDropped(t *testing.T) {
	s := sim.New(7)
	net := netsim.New(s)
	link := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 10 * time.Microsecond, MTU: netsim.MTUEthernet}
	net.AddHost("c", link, nil)
	net.AddHost("srv", link, func(dg netsim.Datagram) {
		d := xdr.NewDecoder(dg.Payload)
		hdr, err := nfsproto.DecodeCall(d)
		if err != nil {
			t.Fatalf("responder: %v", err)
		}
		// Garbage first — a truncated reply the decoder cannot parse —
		// then the real answer.
		net.Send(netsim.Datagram{From: "srv", To: "c", Payload: []byte{0xde, 0xad}})
		e := xdr.NewEncoder(64)
		nfsproto.ReplyHeader{XID: hdr.XID}.Encode(e)
		net.Send(netsim.Datagram{From: "srv", To: "c", Payload: e.Bytes()})
	})
	tr := New(s, net, s.NewCPUPool("cpus", 2), s.NewMutex("bkl"), DefaultConfig(), "c", "srv")
	done := false
	s.Go("caller", func(p *sim.Proc) {
		tr.CallSync(p, nfsproto.ProcNull, nullArgs)
		done = true
	})
	s.Run(time.Second)
	if !done {
		t.Fatal("call never completed; the bad reply killed the softirq loop")
	}
	st := tr.Stats()
	if st.BadReplies != 1 {
		t.Fatalf("bad replies = %d, want 1", st.BadReplies)
	}
	if st.Replies != 1 {
		t.Fatalf("replies = %d, want 1", st.Replies)
	}
}
