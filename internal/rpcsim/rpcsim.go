// Package rpcsim models the Linux 2.4 SunRPC client transport: a bounded
// slot table of in-flight requests, xid assignment and reply matching,
// retransmission timers, and — critically for this paper — the global
// kernel lock discipline around the socket send path.
//
// In the stock 2.4.4 kernel the RPC layer holds the big kernel lock (BKL)
// across sock_sendmsg(), which the paper measures at ~50 µs of
// network-layer CPU per 8 KB WRITE ("almost 90% of the time per request
// spent waiting ... to acquire the kernel lock", §3.5). Because the
// network stack stopped needing the BKL in 2.3, the paper's fix releases
// the lock around sock_sendmsg() and reacquires it afterwards. Both
// disciplines are implemented here as LockPolicy values.
package rpcsim

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/streamsim"
	"repro/internal/xdr"
)

// TransportKind selects the wire protocol under the RPC layer.
type TransportKind int

const (
	// TransportUDP is the classic NFSv3/UDP transport: one datagram per
	// RPC message, fragmented by IP, with whole-message retransmission on
	// an exponentially backed-off timer. Losing one fragment loses the
	// whole message.
	TransportUDP TransportKind = iota
	// TransportTCP runs RPC over a streamsim reliable byte stream:
	// record-marked messages in MTU-sized segments, per-segment
	// retransmission with an adaptive (Karn/Jacobson) RTO, and no
	// loss amplification.
	TransportTCP
)

func (k TransportKind) String() string {
	if k == TransportTCP {
		return "tcp"
	}
	return "udp"
}

// ParseTransport resolves a transport name as printed by String.
func ParseTransport(name string) (TransportKind, error) {
	switch name {
	case "udp":
		return TransportUDP, nil
	case "tcp":
		return TransportTCP, nil
	}
	return 0, fmt.Errorf("rpcsim: unknown transport %q (have udp, tcp)", name)
}

// defaultMaxRetransmitTimeout caps UDP retransmit backoff (the 2.4
// xprt's to_maxval): applied by DefaultConfig and by New when the
// config leaves MaxRetransmitTimeout zero.
const defaultMaxRetransmitTimeout sim.Time = 60_000_000_000

// LockPolicy selects the BKL discipline around sock_sendmsg.
type LockPolicy int

const (
	// HoldBKLAcrossSend is the stock 2.4.4 behaviour: the BKL is held for
	// the whole transmit path including the network layer.
	HoldBKLAcrossSend LockPolicy = iota
	// ReleaseBKLForSend is the paper's fix: drop the BKL before calling
	// into the network layer, reacquire it on return.
	ReleaseBKLForSend
)

func (l LockPolicy) String() string {
	if l == ReleaseBKLForSend {
		return "no-lock"
	}
	return "bkl"
}

// Config holds the transport's cost model and policy.
type Config struct {
	// MaxSlots bounds concurrently outstanding RPCs (the 2.4 xprt slot
	// table holds 16 entries).
	MaxSlots int
	// SendCPUBase + SendCPUPerFragment model the sock_sendmsg cost: UDP
	// send, IP fragmentation and driver work, per datagram and per
	// fragment. At six fragments per 8 KB WRITE these default to the
	// paper's ~50 µs.
	SendCPUBase        sim.Time
	SendCPUPerFragment sim.Time
	// RPCPrepCPU is the xprt/xdr work outside the socket call (slot setup,
	// header marshaling). Held under BKL in both policies.
	RPCPrepCPU sim.Time
	// ReplyCPUBase + ReplyCPUPerFragment model softirq receive processing
	// (IP reassembly + UDP delivery) per reply.
	ReplyCPUBase        sim.Time
	ReplyCPUPerFragment sim.Time
	// ReplyBKLHold is the time the reply path holds the BKL to update RPC
	// state (not removed by the paper's fix).
	ReplyBKLHold sim.Time
	// RetransmitTimeout is the initial timeout for resending an
	// unanswered call (classic UDP NFS). Each retransmission doubles it,
	// Karn-style, up to MaxRetransmitTimeout.
	RetransmitTimeout sim.Time
	// MaxRetransmitTimeout caps the exponential backoff (the 2.4 xprt's
	// to_maxval; 0 means the New default of 60 s).
	MaxRetransmitTimeout sim.Time
	// MaxRetries bounds how many times one call is retransmitted before
	// the transport declares a major timeout and gives up with a
	// DeadServerError. 0 retries forever — the classic "hard" NFS mount,
	// and the historical default. Chaos scenarios set a cap so a
	// permanently-dead server ends the run with an error instead of
	// wedging it behind a saturated backoff timer.
	MaxRetries int
	// LockPolicy selects the send-path BKL discipline.
	LockPolicy LockPolicy
	// Transport selects UDP datagrams or the TCP-style stream.
	Transport TransportKind
	// MTU is the path MTU used to compute fragment counts for CPU
	// charging (must match the network's).
	MTU int
}

// DefaultConfig returns the 2.4.4-calibrated cost model: ~50 µs of
// network-layer CPU per 8 KB WRITE (6 fragments), 16 slots, 1.1 s
// retransmit.
func DefaultConfig() Config {
	return Config{
		MaxSlots:             16,
		SendCPUBase:          8_000, // 8 µs
		SendCPUPerFragment:   7_000, // 7 µs × 6 frags + 8 = 50 µs per 8 KB WRITE
		RPCPrepCPU:           5_000, // 5 µs
		ReplyCPUBase:         6_000, // 6 µs
		ReplyCPUPerFragment:  1_500, // small replies are one fragment
		ReplyBKLHold:         4_000, // 4 µs
		RetransmitTimeout:    1_100_000_000,
		MaxRetransmitTimeout: defaultMaxRetransmitTimeout,
		LockPolicy:           HoldBKLAcrossSend,
		Transport:            TransportUDP,
		MTU:                  netsim.MTUEthernet,
	}
}

// Stats counts transport activity. For TransportTCP, Retransmits counts
// stream segment retransmissions and BytesSent counts the stream's wire
// bytes, so the column means "repair traffic" under both transports.
type Stats struct {
	Calls       int64
	Replies     int64
	Retransmits int64
	// DuplicateReplies counts replies that arrived for an already
	// completed xid (the reply raced a retransmission) and were
	// suppressed.
	DuplicateReplies int64
	BytesSent        int64
	TotalRTT         sim.Time
	// RTTSamples is how many calls contributed to TotalRTT. Calls that
	// were retransmitted are excluded, Karn-style: their RTT is ambiguous.
	RTTSamples int64
	// SlotWaits counts Calls that found the slot table full and had to
	// sleep; SlotWaitTime is the total time those calls spent queued.
	// Together they measure slot-table convoying as fleets grow.
	SlotWaits    int64
	SlotWaitTime sim.Time
	// BadReplies counts datagrams that failed reply decoding (truncated
	// or stale traffic, e.g. around a server restart) and were dropped.
	BadReplies int64
	// MajorTimeouts counts calls abandoned after MaxRetries
	// retransmissions (each one raised a DeadServerError).
	MajorTimeouts int64
}

// DeadServerError is the major-timeout give-up: a call exhausted its
// retransmit budget against an unresponsive server. It is raised as a
// panic from the retransmit timer (event context — the transport has no
// caller to return to), so it surfaces out of sim.Run for the scenario
// runner or test to recover.
type DeadServerError struct {
	// Server is the unresponsive remote host.
	Server string
	// XID identifies the abandoned call.
	XID uint32
	// Retries is how many retransmissions were attempted.
	Retries int
}

func (e *DeadServerError) Error() string {
	return fmt.Sprintf("rpcsim: server %s not responding: xid %d gave up after %d retransmits",
		e.Server, e.XID, e.Retries)
}

type pendingCall struct {
	xid     uint32
	payload []byte
	enc     *xdr.Encoder // pooled encoder backing payload; nil once released
	onReply func(body *xdr.Decoder)
	timer   sim.Event
	sentAt  sim.Time
	rto     sim.Time
	retrans int
	// sync marks CallSync: its decoder outlives the softirq iteration, so
	// the reply buffer must not be recycled there.
	sync bool
}

// Transport is a client-side RPC transport bound to one server.
type Transport struct {
	s   *sim.Sim
	net *netsim.Network
	cpu *sim.CPUPool
	bkl *sim.Mutex
	cfg Config

	local, remote string

	nextXID  uint32
	pending  map[uint32]*pendingCall
	slotWait *sim.WaitQueue

	rxq     [][]byte
	rxWait  *sim.WaitQueue
	softirq *sim.Proc

	// stream is the TCP-style connection (nil under TransportUDP).
	stream *streamsim.Endpoint

	stats Stats
}

// New creates a transport between local and remote hosts. It installs
// itself as the local host's datagram handler and starts a softirq
// process that drains received replies. Under TransportTCP the handler
// feeds a streamsim endpoint whose reassembled records become replies.
func New(s *sim.Sim, net *netsim.Network, cpu *sim.CPUPool, bkl *sim.Mutex, cfg Config, local, remote string) *Transport {
	if cfg.MaxSlots < 1 {
		panic("rpcsim: MaxSlots must be >= 1")
	}
	if cfg.MaxRetransmitTimeout == 0 {
		cfg.MaxRetransmitTimeout = defaultMaxRetransmitTimeout
	}
	t := &Transport{
		s: s, net: net, cpu: cpu, bkl: bkl, cfg: cfg,
		local: local, remote: remote,
		pending:  make(map[uint32]*pendingCall),
		slotWait: s.NewWaitQueue("rpc-slots"),
		rxWait:   s.NewWaitQueue("rpc-rx"),
	}
	if cfg.Transport == TransportTCP {
		t.stream = streamsim.NewEndpoint(s, net, streamsim.DefaultConfig(cfg.MTU), local, remote,
			func(rec []byte) {
				t.rxq = append(t.rxq, rec)
				t.rxWait.Signal()
			})
		net.SetHandler(local, func(dg netsim.Datagram) { t.stream.HandleDatagram(dg.Payload) })
	} else {
		net.SetHandler(local, func(dg netsim.Datagram) {
			t.rxq = append(t.rxq, dg.Payload)
			t.rxWait.Signal()
		})
	}
	t.softirq = s.Go("softirq/"+local, t.softirqLoop)
	return t
}

// Stats returns a copy of the transport's counters, folding in the
// stream's repair traffic under TransportTCP.
func (t *Transport) Stats() Stats {
	st := t.stats
	if t.stream != nil {
		ss := t.stream.Stats()
		st.Retransmits += ss.Retransmits
		st.BytesSent += ss.WireBytes
	}
	return st
}

// Stream returns the TCP-style endpoint (nil under TransportUDP).
func (t *Transport) Stream() *streamsim.Endpoint { return t.stream }

// SetMaxRetries adjusts the per-call retransmit cap (0 = retry forever).
// Chaos scenarios set it after test-bed assembly so a dead server
// terminates the run with a DeadServerError instead of hanging.
func (t *Transport) SetMaxRetries(n int) { t.cfg.MaxRetries = n }

// InFlight returns the number of outstanding calls.
func (t *Transport) InFlight() int { return len(t.pending) }

// SlotsAvailable reports whether a Call would start without blocking.
func (t *Transport) SlotsAvailable() bool { return len(t.pending) < t.cfg.MaxSlots }

// Call issues an RPC. It blocks the calling process until a transport
// slot is free and the request is handed to the network, then returns;
// the reply callback runs later in softirq context with the decoder
// positioned after the reply header. The caller must NOT hold the BKL
// (kernel sleeping paths drop it); Call manages the BKL internally
// according to the configured LockPolicy.
func (t *Transport) Call(p *sim.Proc, proc uint32, encodeArgs func(*xdr.Encoder), onReply func(*xdr.Decoder)) {
	t.call(p, proc, encodeArgs, onReply, false)
}

func (t *Transport) call(p *sim.Proc, proc uint32, encodeArgs func(*xdr.Encoder), onReply func(*xdr.Decoder), sync bool) {
	// Reserve a slot; sleeping here does not hold the BKL, which is why a
	// slow server (slots always full) leaves the writer thread unimpeded
	// — the paper's §3.5 paradox.
	if len(t.pending) >= t.cfg.MaxSlots {
		t.stats.SlotWaits++
		queued := t.s.Now()
		for len(t.pending) >= t.cfg.MaxSlots {
			t.slotWait.Wait(p)
		}
		t.stats.SlotWaitTime += t.s.Now() - queued
	}

	t.nextXID++
	xid := t.nextXID
	enc := xdr.AcquireEncoder()
	nfsproto.CallHeader{XID: xid, Proc: proc}.Encode(enc)
	encodeArgs(enc)
	payload := enc.Bytes()

	pc := &pendingCall{xid: xid, payload: payload, enc: enc, onReply: onReply, sentAt: t.s.Now(), sync: sync}
	t.pending[xid] = pc
	t.stats.Calls++

	// xprt_transmit: RPC bookkeeping under the BKL in both policies.
	t.bkl.Lock(p, "xprt_transmit")
	t.cpu.Use(p, "xprt_transmit", t.cfg.RPCPrepCPU)
	t.transmit(p, pc)
	t.bkl.Unlock(p)
}

// msgUnits returns how many wire units an RPC message costs the CPU:
// IP fragments under UDP, stream segments (record mark included) under
// TCP. Both feed the same per-fragment cost model — segmentation work is
// what the paper's per-fragment sock_sendmsg cost measures.
func (t *Transport) msgUnits(msgLen int) int {
	if t.cfg.Transport == TransportTCP {
		return streamsim.SegmentCount(msgLen+4, streamsim.MSSForMTU(t.cfg.MTU))
	}
	return netsim.FragmentCount(msgLen, t.cfg.MTU)
}

// transmit performs the sock_sendmsg portion; caller holds the BKL.
func (t *Transport) transmit(p *sim.Proc, pc *pendingCall) {
	sendCPU := t.cfg.SendCPUBase + sim.Time(t.msgUnits(len(pc.payload)))*t.cfg.SendCPUPerFragment

	switch t.cfg.LockPolicy {
	case HoldBKLAcrossSend:
		// Stock 2.4.4: the network layer runs entirely under the BKL.
		t.bkl.Relabel(p, "sock_sendmsg")
		t.cpu.Use(p, "sock_sendmsg", sendCPU)
		t.bkl.Relabel(p, "xprt_transmit")
	case ReleaseBKLForSend:
		// The fix: "release the lock before calling sock_sendmsg, then
		// reacquire the lock when it returns" (§3.5).
		t.bkl.Unlock(p)
		t.cpu.Use(p, "sock_sendmsg", sendCPU)
		t.bkl.Lock(p, "xprt_transmit")
	}

	if t.cfg.Transport == TransportTCP {
		// The stream owns reliability: per-segment retransmission with an
		// adaptive RTO. No whole-message timer, no duplicate replies.
		// SendRecord copies the record into the stream buffer, so the
		// encode buffer is dead as soon as it returns.
		t.stream.SendRecord(pc.payload)
		pc.payload = nil
		pc.enc.Release()
		pc.enc = nil
		return
	}
	res := t.net.Send(netsim.Datagram{From: t.local, To: t.remote, Payload: pc.payload})
	t.stats.BytesSent += res.WireBytes
	xid := pc.xid
	pc.rto = t.cfg.RetransmitTimeout
	pc.timer = t.s.After(pc.rto, func() { t.retransmit(xid) })
}

// retransmit resends an unanswered call and doubles its timeout,
// Karn-style, up to MaxRetransmitTimeout (event context; models the RPC
// timer firing. The resend's CPU cost is not charged — under loss the
// stall, not the CPU, dominates). With MaxRetries set, a call that has
// exhausted its budget is abandoned: the slot is freed and a
// DeadServerError raised instead of retransmitting forever.
func (t *Transport) retransmit(xid uint32) {
	pc, ok := t.pending[xid]
	if !ok {
		return
	}
	if t.cfg.MaxRetries > 0 && pc.retrans >= t.cfg.MaxRetries {
		delete(t.pending, xid)
		t.stats.MajorTimeouts++
		t.slotWait.Signal()
		panic(&DeadServerError{Server: t.remote, XID: xid, Retries: pc.retrans})
	}
	t.stats.Retransmits++
	pc.retrans++
	res := t.net.Send(netsim.Datagram{From: t.local, To: t.remote, Payload: pc.payload})
	t.stats.BytesSent += res.WireBytes
	pc.rto *= 2
	if pc.rto > t.cfg.MaxRetransmitTimeout {
		pc.rto = t.cfg.MaxRetransmitTimeout
	}
	pc.timer = t.s.After(pc.rto, func() { t.retransmit(xid) })
}

// softirqLoop drains received datagrams: IP reassembly + UDP receive CPU,
// then RPC reply matching under a short BKL hold, then the completion
// callback.
func (t *Transport) softirqLoop(p *sim.Proc) {
	for {
		for len(t.rxq) == 0 {
			t.rxWait.Wait(p)
		}
		payload := t.rxq[0]
		t.rxq = t.rxq[1:]

		t.cpu.Use(p, "udp_rcv",
			t.cfg.ReplyCPUBase+sim.Time(t.msgUnits(len(payload)))*t.cfg.ReplyCPUPerFragment)

		d := xdr.NewDecoder(payload)
		hdr, err := nfsproto.DecodeReply(d)
		if err != nil {
			// A truncated or stale datagram (possible around a server
			// restart) must not kill the run: count it and drop it.
			t.stats.BadReplies++
			xdr.RecycleBuffer(payload)
			continue
		}
		pc, ok := t.pending[hdr.XID]
		if !ok {
			// Duplicate reply: the original answer raced a retransmission.
			t.stats.DuplicateReplies++
			xdr.RecycleBuffer(payload)
			continue
		}

		// rpc reply state update holds the BKL briefly in both policies.
		t.bkl.Lock(p, "rpc_reply")
		t.cpu.Use(p, "rpc_reply", t.cfg.ReplyBKLHold)
		pc.timer.Cancel()
		delete(t.pending, hdr.XID)
		t.stats.Replies++
		if pc.retrans == 0 {
			// Karn: a retransmitted call's RTT is ambiguous — the reply
			// could answer either transmission — so it contributes no
			// sample.
			t.stats.TotalRTT += t.s.Now() - pc.sentAt
			t.stats.RTTSamples++
		}
		t.bkl.Unlock(p)

		t.slotWait.Signal()
		if pc.onReply != nil {
			pc.onReply(d)
		}
		// The call's encode buffer: with zero retransmissions exactly one
		// request datagram existed and the server is done with it (the
		// reply proves delivery and service), so it can be recycled. A
		// retransmitted call may still have copies in flight — leak those
		// to the GC.
		if pc.enc != nil && pc.retrans == 0 {
			pc.payload = nil
			pc.enc.Release()
			pc.enc = nil
		}
		// The reply buffer is uniquely ours (UDP: the server's encode
		// buffer, delivered once; TCP: a fresh record copy) and decoded
		// aliases die with the callback — except under CallSync, whose
		// caller reads the decoder after we loop on.
		if !pc.sync {
			xdr.RecycleBuffer(payload)
		}
	}
}

// CallSync issues an RPC and blocks the calling process until the reply
// arrives, returning the positioned decoder. Used for COMMIT and for
// synchronous flush waits.
func (t *Transport) CallSync(p *sim.Proc, proc uint32, encodeArgs func(*xdr.Encoder)) *xdr.Decoder {
	var reply *xdr.Decoder
	done := t.s.NewWaitQueue("rpc-sync")
	t.call(p, proc, encodeArgs, func(d *xdr.Decoder) {
		reply = d
		done.Broadcast()
	}, true)
	for reply == nil {
		done.Wait(p)
	}
	return reply
}
