package rpcsim

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/streamsim"
	"repro/internal/xdr"
)

// testRig wires a client transport to a scripted responder host.
type testRig struct {
	s   *sim.Sim
	net *netsim.Network
	cpu *sim.CPUPool
	bkl *sim.Mutex
	tr  *Transport
}

// newRig builds a client and a responder that answers every call after
// delay with a bare reply header (valid for ProcNull-style calls).
// dropFirst makes the responder swallow the first n requests (for
// retransmission tests).
func newRig(t *testing.T, cfg Config, delay sim.Time, dropFirst int) *testRig {
	t.Helper()
	s := sim.New(7)
	net := netsim.New(s)
	link := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 10 * time.Microsecond, MTU: netsim.MTUEthernet}
	net.AddHost("c", link, nil)
	dropped := 0
	net.AddHost("srv", link, func(dg netsim.Datagram) {
		if dropped < dropFirst {
			dropped++
			return
		}
		d := xdr.NewDecoder(dg.Payload)
		hdr, err := nfsproto.DecodeCall(d)
		if err != nil {
			t.Fatalf("responder: %v", err)
		}
		s.After(delay, func() {
			e := xdr.NewEncoder(64)
			nfsproto.ReplyHeader{XID: hdr.XID}.Encode(e)
			net.Send(netsim.Datagram{From: "srv", To: "c", Payload: e.Bytes()})
		})
	})
	cpu := s.NewCPUPool("client-cpus", 2)
	bkl := s.NewMutex("bkl")
	tr := New(s, net, cpu, bkl, cfg, "c", "srv")
	return &testRig{s: s, net: net, cpu: cpu, bkl: bkl, tr: tr}
}

func nullArgs(*xdr.Encoder) {}

func TestCallSyncRoundTrip(t *testing.T) {
	rig := newRig(t, DefaultConfig(), 100*time.Microsecond, 0)
	done := false
	rig.s.Go("caller", func(p *sim.Proc) {
		d := rig.tr.CallSync(p, nfsproto.ProcNull, nullArgs)
		if d == nil {
			t.Error("nil reply decoder")
		}
		done = true
	})
	rig.s.Run(time.Second)
	if !done {
		t.Fatal("call never completed")
	}
	st := rig.tr.Stats()
	if st.Calls != 1 || st.Replies != 1 || st.Retransmits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalRTT < 100*time.Microsecond {
		t.Fatalf("rtt = %v, should include server delay", st.TotalRTT)
	}
}

func TestSlotLimiting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSlots = 2
	rig := newRig(t, cfg, 500*time.Microsecond, 0)
	maxInFlight := 0
	completed := 0
	rig.s.Go("caller", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			rig.tr.Call(p, nfsproto.ProcNull, nullArgs, func(*xdr.Decoder) { completed++ })
			if rig.tr.InFlight() > maxInFlight {
				maxInFlight = rig.tr.InFlight()
			}
		}
	})
	rig.s.Run(time.Second)
	if completed != 6 {
		t.Fatalf("completed = %d", completed)
	}
	if maxInFlight > 2 {
		t.Fatalf("in flight reached %d with 2 slots", maxInFlight)
	}
}

func TestSlotsAvailable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSlots = 1
	rig := newRig(t, cfg, time.Millisecond, 0)
	var during bool
	rig.s.Go("caller", func(p *sim.Proc) {
		rig.tr.Call(p, nfsproto.ProcNull, nullArgs, nil)
		during = rig.tr.SlotsAvailable()
	})
	rig.s.Run(time.Second)
	if during {
		t.Fatal("slots reported available while the only slot was in flight")
	}
	if !rig.tr.SlotsAvailable() {
		t.Fatal("slots not available after completion")
	}
}

func TestRetransmit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetransmitTimeout = 10 * time.Millisecond
	rig := newRig(t, cfg, 100*time.Microsecond, 1) // drop first request
	done := false
	rig.s.Go("caller", func(p *sim.Proc) {
		rig.tr.CallSync(p, nfsproto.ProcNull, nullArgs)
		done = true
	})
	rig.s.Run(time.Second)
	if !done {
		t.Fatal("call never completed despite retransmission")
	}
	st := rig.tr.Stats()
	if st.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", st.Retransmits)
	}
}

func TestDuplicateReplyDropped(t *testing.T) {
	// Server answers twice; the second reply must be ignored.
	s := sim.New(7)
	net := netsim.New(s)
	link := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 10 * time.Microsecond, MTU: netsim.MTUEthernet}
	net.AddHost("c", link, nil)
	net.AddHost("srv", link, func(dg netsim.Datagram) {
		d := xdr.NewDecoder(dg.Payload)
		hdr, _ := nfsproto.DecodeCall(d)
		for i := 0; i < 2; i++ {
			e := xdr.NewEncoder(64)
			nfsproto.ReplyHeader{XID: hdr.XID}.Encode(e)
			net.Send(netsim.Datagram{From: "srv", To: "c", Payload: e.Bytes()})
		}
	})
	tr := New(s, net, s.NewCPUPool("cpus", 2), s.NewMutex("bkl"), DefaultConfig(), "c", "srv")
	replies := 0
	s.Go("caller", func(p *sim.Proc) {
		tr.Call(p, nfsproto.ProcNull, nullArgs, func(*xdr.Decoder) { replies++ })
	})
	s.Run(time.Second)
	if replies != 1 {
		t.Fatalf("callback ran %d times", replies)
	}
	if tr.Stats().Replies != 1 {
		t.Fatalf("stats replies = %d", tr.Stats().Replies)
	}
}

// The heart of §3.5: with HoldBKLAcrossSend another thread wanting the
// BKL waits out the ~50 µs sock_sendmsg; with ReleaseBKLForSend it gets
// the lock almost immediately.
func TestLockPolicyContention(t *testing.T) {
	measure := func(policy LockPolicy) sim.Time {
		cfg := DefaultConfig()
		cfg.LockPolicy = policy
		rig := newRig(t, cfg, 200*time.Microsecond, 0)
		// Build an 8 KB WRITE-sized payload so sock_sendmsg costs ~50 µs.
		body := make([]byte, 8192)
		writeArgs := func(e *xdr.Encoder) {
			a := nfsproto.WriteArgs{File: nfsproto.MakeFileHandle(1, 1), Count: 8192, Data: body}
			a.Encode(e)
		}
		var waited sim.Time
		rig.s.Go("sender", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				rig.tr.Call(p, nfsproto.ProcWrite, writeArgs, nil)
			}
		})
		rig.s.Go("writer", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				p.Sleep(30 * time.Microsecond)
				t0 := rig.s.Now()
				rig.bkl.Lock(p, "nfs_commit_write")
				waited += rig.s.Now() - t0
				p.Sleep(2 * time.Microsecond)
				rig.bkl.Unlock(p)
			}
		})
		rig.s.Run(time.Second)
		return waited
	}
	held := measure(HoldBKLAcrossSend)
	released := measure(ReleaseBKLForSend)
	if held <= released*2 {
		t.Fatalf("BKL wait with lock held (%v) should far exceed released (%v)", held, released)
	}
}

// With the stock policy, the BKL wait must be dominated by sock_sendmsg —
// the paper attributes ~90% of write-path lock waiting to it.
func TestWaitAttributionDominatedBySend(t *testing.T) {
	cfg := DefaultConfig()
	rig := newRig(t, cfg, 200*time.Microsecond, 0)
	body := make([]byte, 8192)
	writeArgs := func(e *xdr.Encoder) {
		a := nfsproto.WriteArgs{File: nfsproto.MakeFileHandle(1, 1), Count: 8192, Data: body}
		a.Encode(e)
	}
	rig.s.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			rig.tr.Call(p, nfsproto.ProcWrite, writeArgs, nil)
		}
	})
	rig.s.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(25 * time.Microsecond)
			rig.bkl.Lock(p, "nfs_commit_write")
			rig.bkl.Unlock(p)
		}
	})
	rig.s.Run(time.Second)
	wb := rig.bkl.WaitBreakdown()
	var total sim.Time
	for _, v := range wb {
		total += v
	}
	if total == 0 {
		t.Fatal("no contention observed")
	}
	frac := float64(wb["sock_sendmsg"]) / float64(total)
	if frac < 0.7 {
		t.Fatalf("sock_sendmsg fraction of BKL wait = %.2f, want dominant", frac)
	}
}

func TestSendCPUProfiled(t *testing.T) {
	rig := newRig(t, DefaultConfig(), 50*time.Microsecond, 0)
	rig.s.Go("caller", func(p *sim.Proc) {
		rig.tr.CallSync(p, nfsproto.ProcNull, nullArgs)
	})
	rig.s.Run(time.Second)
	prof := rig.s.Profiler()
	if prof.Total("sock_sendmsg") == 0 {
		t.Fatal("sock_sendmsg not profiled")
	}
	if prof.Total("udp_rcv") == 0 {
		t.Fatal("udp_rcv not profiled")
	}
}

func TestEightKWriteCostsFiftyMicroseconds(t *testing.T) {
	// Validate the calibration: an 8 KB WRITE fragments into 6 packets
	// and costs 8 + 6*7 = 50 µs of sock_sendmsg CPU.
	cfg := DefaultConfig()
	sz := nfsproto.WriteCallSize(8192)
	frags := netsim.FragmentCount(sz, cfg.MTU)
	cost := cfg.SendCPUBase + sim.Time(frags)*cfg.SendCPUPerFragment
	if cost != 50*time.Microsecond {
		t.Fatalf("8 KB WRITE sock_sendmsg cost = %v, want 50µs", cost)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	net := netsim.New(s)
	net.AddHost("c", netsim.DefaultGigabit(), nil)
	cfg := DefaultConfig()
	cfg.MaxSlots = 0
	New(s, net, s.NewCPUPool("c", 1), s.NewMutex("bkl"), cfg, "c", "c")
}

func TestLockPolicyString(t *testing.T) {
	if HoldBKLAcrossSend.String() != "bkl" || ReleaseBKLForSend.String() != "no-lock" {
		t.Fatal("LockPolicy strings wrong")
	}
}

// The retransmit timer must back off exponentially: a server that
// swallows the first four transmissions answers the fifth, and the gaps
// between retransmissions double.
func TestRetransmitExponentialBackoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetransmitTimeout = 10 * time.Millisecond
	s := sim.New(7)
	net := netsim.New(s)
	link := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 10 * time.Microsecond, MTU: netsim.MTUEthernet}
	net.AddHost("c", link, nil)
	var arrivals []sim.Time
	net.AddHost("srv", link, func(dg netsim.Datagram) {
		arrivals = append(arrivals, s.Now())
		if len(arrivals) < 5 {
			return // swallow
		}
		d := xdr.NewDecoder(dg.Payload)
		hdr, _ := nfsproto.DecodeCall(d)
		e := xdr.NewEncoder(64)
		nfsproto.ReplyHeader{XID: hdr.XID}.Encode(e)
		net.Send(netsim.Datagram{From: "srv", To: "c", Payload: e.Bytes()})
	})
	tr := New(s, net, s.NewCPUPool("cpus", 2), s.NewMutex("bkl"), cfg, "c", "srv")
	done := false
	s.Go("caller", func(p *sim.Proc) {
		tr.CallSync(p, nfsproto.ProcNull, nullArgs)
		done = true
	})
	s.Run(time.Minute)
	if !done {
		t.Fatal("call never completed")
	}
	if len(arrivals) != 5 {
		t.Fatalf("server saw %d transmissions, want 5", len(arrivals))
	}
	for i := 2; i < len(arrivals); i++ {
		prev := arrivals[i-1] - arrivals[i-2]
		cur := arrivals[i] - arrivals[i-1]
		// Doubling, modulo sub-millisecond wire-time noise.
		if cur < prev*3/2 {
			t.Fatalf("gap %d = %v after %v; retransmit timer did not back off", i, cur, prev)
		}
	}
	st := tr.Stats()
	if st.Retransmits != 4 {
		t.Fatalf("retransmits = %d, want 4", st.Retransmits)
	}
	// Karn: the retransmitted call contributes no RTT sample.
	if st.RTTSamples != 0 || st.TotalRTT != 0 {
		t.Fatalf("retransmitted call sampled RTT: %+v", st)
	}
}

// Backoff must clamp at MaxRetransmitTimeout.
func TestRetransmitBackoffClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetransmitTimeout = 10 * time.Millisecond
	cfg.MaxRetransmitTimeout = 40 * time.Millisecond
	rig := newRig(t, cfg, 100*time.Microsecond, 1000) // server never answers
	rig.s.Go("caller", func(p *sim.Proc) {
		rig.tr.Call(p, nfsproto.ProcNull, nullArgs, nil)
	})
	rig.s.Run(time.Second)
	// 1 s with timeouts 10+20+40+40+... -> about (1000-70)/40 + 3 ~ 26.
	n := rig.tr.Stats().Retransmits
	if n < 20 || n > 30 {
		t.Fatalf("retransmits = %d, want ~26 with a 40 ms clamp", n)
	}
}

func TestDuplicateReplyCounted(t *testing.T) {
	// Server answers twice; the duplicate must be suppressed AND counted.
	s := sim.New(7)
	net := netsim.New(s)
	link := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 10 * time.Microsecond, MTU: netsim.MTUEthernet}
	net.AddHost("c", link, nil)
	net.AddHost("srv", link, func(dg netsim.Datagram) {
		d := xdr.NewDecoder(dg.Payload)
		hdr, _ := nfsproto.DecodeCall(d)
		for i := 0; i < 2; i++ {
			e := xdr.NewEncoder(64)
			nfsproto.ReplyHeader{XID: hdr.XID}.Encode(e)
			net.Send(netsim.Datagram{From: "srv", To: "c", Payload: e.Bytes()})
		}
	})
	tr := New(s, net, s.NewCPUPool("cpus", 2), s.NewMutex("bkl"), DefaultConfig(), "c", "srv")
	s.Go("caller", func(p *sim.Proc) {
		tr.Call(p, nfsproto.ProcNull, nullArgs, nil)
	})
	s.Run(time.Second)
	st := tr.Stats()
	if st.Replies != 1 || st.DuplicateReplies != 1 {
		t.Fatalf("stats = %+v, want 1 reply + 1 suppressed duplicate", st)
	}
}

func TestTransportKindStringAndParse(t *testing.T) {
	if TransportUDP.String() != "udp" || TransportTCP.String() != "tcp" {
		t.Fatal("TransportKind strings wrong")
	}
	for _, name := range []string{"udp", "tcp"} {
		k, err := ParseTransport(name)
		if err != nil || k.String() != name {
			t.Fatalf("ParseTransport(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := ParseTransport("sctp"); err == nil {
		t.Fatal("bad transport name should fail")
	}
}

// tcpRig wires a TransportTCP client to a scripted stream responder.
func tcpRig(t *testing.T, seed int64, loss float64, delay sim.Time) (*sim.Sim, *Transport) {
	t.Helper()
	s := sim.New(seed)
	net := netsim.New(s)
	link := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 10 * time.Microsecond, MTU: netsim.MTUEthernet}
	net.AddHost("c", link, nil)
	net.AddHost("srv", link, nil)
	if loss > 0 {
		net.SetLoss(netsim.LossConfig{Rate: loss})
	}
	var srvEp *streamsim.Endpoint
	srvEp = streamsim.NewEndpoint(s, net, streamsim.DefaultConfig(netsim.MTUEthernet), "srv", "c",
		func(rec []byte) {
			d := xdr.NewDecoder(rec)
			hdr, err := nfsproto.DecodeCall(d)
			if err != nil {
				t.Fatalf("responder: %v", err)
			}
			s.After(delay, func() {
				e := xdr.NewEncoder(64)
				nfsproto.ReplyHeader{XID: hdr.XID}.Encode(e)
				srvEp.SendRecord(e.Bytes())
			})
		})
	net.SetHandler("srv", func(dg netsim.Datagram) { srvEp.HandleDatagram(dg.Payload) })
	cfg := DefaultConfig()
	cfg.Transport = TransportTCP
	tr := New(s, net, s.NewCPUPool("cpus", 2), s.NewMutex("bkl"), cfg, "c", "srv")
	return s, tr
}

func TestTCPCallRoundTrip(t *testing.T) {
	s, tr := tcpRig(t, 7, 0, 100*time.Microsecond)
	done := false
	s.Go("caller", func(p *sim.Proc) {
		if d := tr.CallSync(p, nfsproto.ProcNull, nullArgs); d == nil {
			t.Error("nil reply decoder")
		}
		done = true
	})
	s.Run(time.Second)
	if !done {
		t.Fatal("call never completed")
	}
	st := tr.Stats()
	if st.Calls != 1 || st.Replies != 1 || st.Retransmits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Over a lossy network the stream transport must complete every call with
// no whole-RPC retransmissions and no duplicate replies — the stream
// repairs segment loss below the RPC layer.
func TestTCPLossyCallsAllComplete(t *testing.T) {
	s, tr := tcpRig(t, 3, 0.05, 100*time.Microsecond)
	const calls = 40
	completed := 0
	body := make([]byte, 8192)
	writeArgs := func(e *xdr.Encoder) {
		a := nfsproto.WriteArgs{File: nfsproto.MakeFileHandle(1, 1), Count: 8192, Data: body}
		a.Encode(e)
	}
	s.Go("caller", func(p *sim.Proc) {
		for i := 0; i < calls; i++ {
			tr.Call(p, nfsproto.ProcWrite, writeArgs, func(*xdr.Decoder) { completed++ })
		}
	})
	s.Run(10 * time.Minute)
	if completed != calls {
		t.Fatalf("completed %d of %d calls at 5%% loss", completed, calls)
	}
	st := tr.Stats()
	if st.DuplicateReplies != 0 {
		t.Fatalf("stream transport produced duplicate replies: %+v", st)
	}
	if st.Retransmits == 0 {
		t.Fatal("no segment retransmissions at 5% loss")
	}
	if tr.InFlight() != 0 {
		t.Fatalf("%d calls still pending", tr.InFlight())
	}
}

// Property: under many concurrent callers with random server delays,
// every call completes exactly once, slots are never oversubscribed, and
// the transport ends the run drained.
func TestManyCallersProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		cfg := DefaultConfig()
		cfg.MaxSlots = 4
		s := sim.New(seed)
		net := netsim.New(s)
		link := netsim.LinkConfig{Bandwidth: netsim.BandwidthGigabit, Propagation: 10 * time.Microsecond, MTU: netsim.MTUEthernet}
		net.AddHost("c", link, nil)
		net.AddHost("srv", link, func(dg netsim.Datagram) {
			d := xdr.NewDecoder(dg.Payload)
			hdr, err := nfsproto.DecodeCall(d)
			if err != nil {
				t.Fatal(err)
			}
			delay := sim.Time(s.Rand().Intn(500)) * time.Microsecond
			s.After(delay, func() {
				e := xdr.NewEncoder(64)
				nfsproto.ReplyHeader{XID: hdr.XID}.Encode(e)
				net.Send(netsim.Datagram{From: "srv", To: "c", Payload: e.Bytes()})
			})
		})
		tr := New(s, net, s.NewCPUPool("cpus", 2), s.NewMutex("bkl"), cfg, "c", "srv")
		const callers, perCaller = 6, 10
		completed := 0
		over := false
		for i := 0; i < callers; i++ {
			s.Go("caller", func(p *sim.Proc) {
				for j := 0; j < perCaller; j++ {
					tr.Call(p, nfsproto.ProcNull, nullArgs, func(*xdr.Decoder) { completed++ })
					if tr.InFlight() > cfg.MaxSlots {
						over = true
					}
					p.Sleep(sim.Time(s.Rand().Intn(200)) * time.Microsecond)
				}
			})
		}
		s.Run(time.Minute)
		if over {
			t.Fatalf("seed %d: slot table oversubscribed", seed)
		}
		if completed != callers*perCaller {
			t.Fatalf("seed %d: %d of %d calls completed", seed, completed, callers*perCaller)
		}
		if tr.InFlight() != 0 {
			t.Fatalf("seed %d: %d calls still pending", seed, tr.InFlight())
		}
		st := tr.Stats()
		if st.Calls != callers*perCaller || st.Replies != st.Calls || st.Retransmits != 0 {
			t.Fatalf("seed %d: stats %+v", seed, st)
		}
	}
}
