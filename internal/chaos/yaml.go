package chaos

// A hand-written parser for the YAML subset the scenario files use — the
// repository takes no dependencies, and the subset is small: nested maps
// by indentation, "- " list items (inline-map items included), scalar
// "key: value" pairs, comments, and blank lines. Every scalar stays a
// string; the typed decode layer in scenario.go interprets numbers,
// booleans, and durations. Anchors, multi-line scalars, flow collections,
// and tabs are rejected.

import (
	"fmt"
	"strings"
)

// yamlLine is one significant (non-blank, non-comment) input line.
type yamlLine struct {
	num    int // 1-based source line number
	indent int // leading spaces
	text   string
}

// yamlParser walks the significant lines once, recursing by indentation.
type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses src into the generic form the decode layer consumes:
// map[string]any / []any / string.
func parseYAML(src []byte) (any, error) {
	p := &yamlParser{}
	for i, raw := range strings.Split(string(src), "\n") {
		if strings.ContainsRune(raw, '\t') {
			return nil, fmt.Errorf("line %d: tabs are not allowed (use spaces)", i+1)
		}
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		p.lines = append(p.lines, yamlLine{
			num:    i + 1,
			indent: len(line) - len(strings.TrimLeft(line, " ")),
			text:   trimmed,
		})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	v, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
	}
	return v, nil
}

// stripComment removes a trailing "#..." comment. The scenario grammar has
// no quoted strings containing '#', so a comment is any '#' at the start
// of the line or preceded by a space.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == '#' && (i == 0 || line[i-1] == ' ') {
			return line[:i]
		}
	}
	return line
}

// parseBlock parses one block (map or list) whose entries sit at exactly
// the given indent.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("unexpected end of document")
	}
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *yamlParser) parseMap(indent int) (map[string]any, error) {
	out := make(map[string]any)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("line %d: list item inside a map", l.num)
		}
		key, rest, ok := strings.Cut(l.text, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: expected \"key: value\"", l.num)
		}
		key = strings.TrimSpace(key)
		if key == "" {
			return nil, fmt.Errorf("line %d: empty key", l.num)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		rest = strings.TrimSpace(rest)
		p.pos++
		if rest != "" {
			out[key] = unquote(rest)
			continue
		}
		// "key:" introduces a nested block at deeper indent (an empty
		// value at end-of-block is an error — the schema has no nulls).
		if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
			return nil, fmt.Errorf("line %d: key %q has no value", l.num, key)
		}
		child, err := p.parseBlock(p.lines[p.pos].indent)
		if err != nil {
			return nil, err
		}
		out[key] = child
	}
	return out, nil
}

func (p *yamlParser) parseList(indent int) ([]any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, fmt.Errorf("line %d: expected a \"- \" list item", l.num)
		}
		item := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if item == "" {
			return nil, fmt.Errorf("line %d: empty list item", l.num)
		}
		if !strings.Contains(item, ":") {
			// Scalar item.
			p.pos++
			out = append(out, unquote(item))
			continue
		}
		// Inline-map item: "- key: value" starts a map whose further keys
		// sit at the column of "key" (indent + 2).
		p.lines[p.pos] = yamlLine{num: l.num, indent: indent + 2, text: item}
		m, err := p.parseMap(indent + 2)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// unquote strips one level of matching single or double quotes.
func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
