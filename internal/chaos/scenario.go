// Package chaos is the failure-scenario engine: a declarative DSL (YAML
// or JSON files) describing a client fleet plus timed fault-injection
// events — server crash/restart, link flaps, loss and jitter bursts,
// degrading disks — and assertions over the outcome. Scenarios execute
// in virtual time on the deterministic simulator, so every chaos run
// replays bit-identically at any worker count.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/rpcsim"
	"repro/internal/server"
	"repro/internal/sim"
)

// Fleet describes the test bed a scenario runs its events against.
type Fleet struct {
	// Server is the backend kind: filer, linux, or slow100.
	Server string `json:"server"`
	// Config is the client configuration name (default "enhanced").
	Config string `json:"config,omitempty"`
	// Clients is the number of client machines (default 1).
	Clients int `json:"clients,omitempty"`
	// FileMB is the per-client file size in MB (default 8).
	FileMB int `json:"file_mb,omitempty"`
	// WSize overrides the configuration's write size (bytes).
	WSize int `json:"wsize,omitempty"`
	// Workload is the bonnie workload name (default "write").
	Workload string `json:"workload,omitempty"`
	// Consistency is the client consistency mode: "ttl" (default),
	// "strict", or "noac". It matters for the shared workload, where it
	// sets how eagerly readers revalidate against foreign writes.
	Consistency string `json:"consistency,omitempty"`
	// Transport is "udp" (default) or "tcp". Crash events require UDP:
	// stream connection state across a server reboot is not modeled.
	Transport string `json:"transport,omitempty"`
	// Loss is the baseline per-fragment drop probability, in [0, 1).
	Loss float64 `json:"loss,omitempty"`
	// Seed is the simulation seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// MaxRetries caps per-call RPC retransmits; past it the transport
	// surfaces a DeadServerError instead of retrying forever. 0 keeps the
	// classic hard-mount behavior (retry until the run's time limit).
	MaxRetries int `json:"max_retries,omitempty"`
	// TimeLimit bounds the run's virtual time (default 30m).
	TimeLimit sim.Time `json:"-"`
}

// Event is one timed fault injection or end-of-run assertion.
type Event struct {
	// At is the virtual time the event fires (ignored for assert_*
	// actions, which are evaluated when the run ends).
	At sim.Time `json:"-"`
	// Action names the event; see actionSpec for the catalogue.
	Action string `json:"action"`
	// Host targets link_down/link_up: "server" or "clientN".
	Host string `json:"host,omitempty"`
	// Rate is loss_burst's per-fragment drop probability, in [0, 1].
	Rate float64 `json:"rate,omitempty"`
	// Jitter is jitter_burst's max extra delivery delay.
	Jitter sim.Time `json:"-"`
	// For is how long a loss/jitter burst or disk_degrade lasts
	// (0 for disk_degrade means until the end of the run).
	For sim.Time `json:"-"`
	// Factor is disk_degrade's service-time multiplier (>= 1).
	Factor float64 `json:"factor,omitempty"`
	// MinMBps is assert_agg_mbps_min's threshold.
	MinMBps float64 `json:"min_mbps,omitempty"`
	// Bytes is the threshold for the byte-count asserts
	// (assert_lost_min/max, assert_rewritten_min, assert_replayed_min).
	Bytes int64 `json:"bytes,omitempty"`
	// MaxStale is assert_stale_max's ceiling on stale reads served
	// across the fleet. The assert also requires that no client ever saw
	// the server's change attribute run backwards — the monotonicity a
	// crash/restart must preserve.
	MaxStale int64 `json:"max_stale,omitempty"`
}

// Scenario is one parsed chaos scenario.
type Scenario struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Fleet       Fleet   `json:"fleet"`
	Events      []Event `json:"events"`
}

// actionSpec declares each action's allowed keys beyond "at"/"action";
// decode rejects unknown actions and misplaced keys against it.
var actionSpec = map[string][]string{
	"server_crash":         {},
	"server_restart":       {},
	"link_down":            {"host"},
	"link_up":              {"host"},
	"loss_burst":           {"rate", "for"},
	"jitter_burst":         {"jitter", "for"},
	"disk_degrade":         {"factor", "for"},
	"assert_completes":     {},
	"assert_error":         {},
	"assert_no_data_loss":  {},
	"assert_agg_mbps_min":  {"min_mbps"},
	"assert_lost_min":      {"bytes"},
	"assert_lost_max":      {"bytes"},
	"assert_rewritten_min": {"bytes"},
	"assert_replayed_min":  {"bytes"},
	"assert_stale_max":     {"max_stale"},
}

// IsAssert reports whether the event is an end-of-run assertion rather
// than a timed injection.
func (e *Event) IsAssert() bool { return strings.HasPrefix(e.Action, "assert_") }

// Load reads and parses a scenario file. Files whose first non-space byte
// is '{' or '[' parse as JSON; everything else parses as YAML. A file
// holds either one scenario or a top-level "scenarios:" list.
func Load(path string) ([]*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	scs, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return scs, nil
}

// Parse parses scenario source (YAML subset or JSON).
func Parse(src []byte) ([]*Scenario, error) {
	trimmed := strings.TrimSpace(string(src))
	var root any
	var err error
	if strings.HasPrefix(trimmed, "{") || strings.HasPrefix(trimmed, "[") {
		dec := json.NewDecoder(strings.NewReader(trimmed))
		err = dec.Decode(&root)
	} else {
		root, err = parseYAML(src)
	}
	if err != nil {
		return nil, err
	}
	return decodeRoot(root)
}

// EncodeJSON serializes the scenario to JSON that Parse round-trips,
// durations rendered as strings ("200ms").
func (sc *Scenario) EncodeJSON() ([]byte, error) {
	events := make([]map[string]any, 0, len(sc.Events))
	for i := range sc.Events {
		ev := &sc.Events[i]
		m := map[string]any{"action": ev.Action}
		if !ev.IsAssert() || ev.At != 0 {
			m["at"] = ev.At.String()
		}
		if ev.Host != "" {
			m["host"] = ev.Host
		}
		if ev.Rate != 0 {
			m["rate"] = ev.Rate
		}
		if ev.Jitter != 0 {
			m["jitter"] = ev.Jitter.String()
		}
		if ev.For != 0 {
			m["for"] = ev.For.String()
		}
		if ev.Factor != 0 {
			m["factor"] = ev.Factor
		}
		if ev.MinMBps != 0 {
			m["min_mbps"] = ev.MinMBps
		}
		if ev.Bytes != 0 {
			m["bytes"] = ev.Bytes
		}
		if ev.MaxStale != 0 {
			m["max_stale"] = ev.MaxStale
		}
		events = append(events, m)
	}
	fleet := map[string]any{"server": sc.Fleet.Server}
	if sc.Fleet.Config != "" {
		fleet["config"] = sc.Fleet.Config
	}
	if sc.Fleet.Clients != 0 {
		fleet["clients"] = sc.Fleet.Clients
	}
	if sc.Fleet.FileMB != 0 {
		fleet["file_mb"] = sc.Fleet.FileMB
	}
	if sc.Fleet.WSize != 0 {
		fleet["wsize"] = sc.Fleet.WSize
	}
	if sc.Fleet.Workload != "" {
		fleet["workload"] = sc.Fleet.Workload
	}
	if sc.Fleet.Consistency != "" {
		fleet["consistency"] = sc.Fleet.Consistency
	}
	if sc.Fleet.Transport != "" {
		fleet["transport"] = sc.Fleet.Transport
	}
	if sc.Fleet.Loss != 0 {
		fleet["loss"] = sc.Fleet.Loss
	}
	if sc.Fleet.Seed != 0 {
		fleet["seed"] = sc.Fleet.Seed
	}
	if sc.Fleet.MaxRetries != 0 {
		fleet["max_retries"] = sc.Fleet.MaxRetries
	}
	if sc.Fleet.TimeLimit != 0 {
		fleet["time_limit"] = sc.Fleet.TimeLimit.String()
	}
	doc := map[string]any{"name": sc.Name, "fleet": fleet, "events": events}
	if sc.Description != "" {
		doc["description"] = sc.Description
	}
	return json.MarshalIndent(doc, "", "  ")
}

func decodeRoot(root any) ([]*Scenario, error) {
	switch v := root.(type) {
	case []any:
		return decodeScenarioList(v)
	case map[string]any:
		if list, ok := v["scenarios"]; ok {
			if len(v) != 1 {
				return nil, fmt.Errorf("a \"scenarios:\" file must contain nothing else at top level")
			}
			items, ok := list.([]any)
			if !ok {
				return nil, fmt.Errorf("\"scenarios\" must be a list")
			}
			return decodeScenarioList(items)
		}
		sc, err := decodeScenario(v)
		if err != nil {
			return nil, err
		}
		return []*Scenario{sc}, nil
	default:
		return nil, fmt.Errorf("top level must be a scenario map or a scenario list")
	}
}

func decodeScenarioList(items []any) ([]*Scenario, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("empty scenario list")
	}
	out := make([]*Scenario, 0, len(items))
	seen := make(map[string]bool)
	for i, item := range items {
		m, ok := item.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("scenario %d: expected a map", i)
		}
		sc, err := decodeScenario(m)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		out = append(out, sc)
	}
	return out, nil
}

func decodeScenario(m map[string]any) (*Scenario, error) {
	sc := &Scenario{}
	for key, val := range m {
		switch key {
		case "name":
			s, err := asString(val)
			if err != nil {
				return nil, fmt.Errorf("name: %w", err)
			}
			sc.Name = s
		case "description":
			s, err := asString(val)
			if err != nil {
				return nil, fmt.Errorf("description: %w", err)
			}
			sc.Description = s
		case "fleet":
			fm, ok := val.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("fleet: expected a map")
			}
			fleet, err := decodeFleet(fm)
			if err != nil {
				return nil, err
			}
			sc.Fleet = fleet
		case "events":
			list, ok := val.([]any)
			if !ok {
				return nil, fmt.Errorf("events: expected a list")
			}
			for i, item := range list {
				em, ok := item.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("events[%d]: expected a map", i)
				}
				ev, err := decodeEvent(em)
				if err != nil {
					return nil, fmt.Errorf("events[%d]: %w", i, err)
				}
				sc.Events = append(sc.Events, ev)
			}
		default:
			return nil, fmt.Errorf("unknown scenario key %q", key)
		}
	}
	if sc.Name == "" {
		return nil, fmt.Errorf("scenario needs a name")
	}
	if err := sc.validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	return sc, nil
}

func decodeFleet(m map[string]any) (Fleet, error) {
	f := Fleet{}
	for key, val := range m {
		var err error
		switch key {
		case "server":
			f.Server, err = asString(val)
		case "config":
			f.Config, err = asString(val)
		case "clients":
			f.Clients, err = asInt(val)
		case "file_mb":
			f.FileMB, err = asInt(val)
		case "wsize":
			f.WSize, err = asInt(val)
		case "workload":
			f.Workload, err = asString(val)
		case "consistency":
			f.Consistency, err = asString(val)
		case "transport":
			f.Transport, err = asString(val)
		case "loss":
			f.Loss, err = asFloat(val)
		case "seed":
			var n int64
			n, err = asInt64(val)
			f.Seed = n
		case "max_retries":
			f.MaxRetries, err = asInt(val)
		case "time_limit":
			f.TimeLimit, err = asDuration(val)
		default:
			return f, fmt.Errorf("fleet: unknown key %q", key)
		}
		if err != nil {
			return f, fmt.Errorf("fleet.%s: %w", key, err)
		}
	}
	return f, nil
}

func decodeEvent(m map[string]any) (Event, error) {
	ev := Event{}
	for key, val := range m {
		var err error
		switch key {
		case "at":
			ev.At, err = asDuration(val)
		case "action":
			ev.Action, err = asString(val)
		case "host":
			ev.Host, err = asString(val)
		case "rate":
			ev.Rate, err = asFloat(val)
		case "jitter":
			ev.Jitter, err = asDuration(val)
		case "for":
			ev.For, err = asDuration(val)
		case "factor":
			ev.Factor, err = asFloat(val)
		case "min_mbps":
			ev.MinMBps, err = asFloat(val)
		case "bytes":
			var n int64
			n, err = asInt64(val)
			ev.Bytes = n
		case "max_stale":
			var n int64
			n, err = asInt64(val)
			ev.MaxStale = n
		default:
			return ev, fmt.Errorf("unknown event key %q", key)
		}
		if err != nil {
			return ev, fmt.Errorf("%s: %w", key, err)
		}
	}
	if ev.Action == "" {
		return ev, fmt.Errorf("event needs an action")
	}
	allowed, ok := actionSpec[ev.Action]
	if !ok {
		return ev, fmt.Errorf("unknown action %q", ev.Action)
	}
	for key := range m {
		if key == "at" || key == "action" {
			continue
		}
		permitted := false
		for _, a := range allowed {
			if key == a {
				permitted = true
				break
			}
		}
		if !permitted {
			return ev, fmt.Errorf("action %q does not take %q", ev.Action, key)
		}
	}
	return ev, nil
}

// validate applies the schema's semantic rules: defaults, ranges, host
// names, and crash/restart ordering.
func (sc *Scenario) validate() error {
	if len(sc.Events) == 0 {
		return fmt.Errorf("a scenario needs at least one entry under events: (an event or an assert)")
	}
	f := &sc.Fleet
	if f.Server == "" {
		return fmt.Errorf("fleet.server is required (filer, linux, or slow100)")
	}
	if _, err := harness.ServerByName(f.Server); err != nil || f.Server == "local" || f.Server == "none" {
		return fmt.Errorf("fleet.server: %q is not an NFS server kind (want filer, linux, or slow100)", f.Server)
	}
	if f.Config == "" {
		f.Config = "enhanced"
	}
	if _, err := harness.ConfigByName(f.Config); err != nil {
		return fmt.Errorf("fleet.config: %w", err)
	}
	if f.Clients == 0 {
		f.Clients = 1
	}
	if f.Clients < 1 {
		return fmt.Errorf("fleet.clients must be >= 1")
	}
	if f.FileMB == 0 {
		f.FileMB = 8
	}
	if f.FileMB < 1 {
		return fmt.Errorf("fleet.file_mb must be >= 1")
	}
	if f.Workload == "" {
		f.Workload = "write"
	}
	if _, err := bonnie.ParseWorkload(f.Workload); err != nil {
		return fmt.Errorf("fleet.workload: %w", err)
	}
	if _, ok := core.ParseConsistency(f.Consistency); !ok {
		return fmt.Errorf("fleet.consistency: unknown mode %q (want ttl, strict, or noac)", f.Consistency)
	}
	if f.Transport == "" {
		f.Transport = "udp"
	}
	transport, err := rpcsim.ParseTransport(f.Transport)
	if err != nil {
		return fmt.Errorf("fleet.transport: %w", err)
	}
	if f.Loss < 0 || f.Loss >= 1 {
		return fmt.Errorf("fleet.loss must be in [0, 1); use link_down for a dead link")
	}
	if f.Seed == 0 {
		f.Seed = 1
	}
	if f.MaxRetries < 0 {
		return fmt.Errorf("fleet.max_retries must be >= 0")
	}
	if f.TimeLimit == 0 {
		f.TimeLimit = 30 * time.Minute
	}
	if f.TimeLimit < 0 {
		return fmt.Errorf("fleet.time_limit must be positive")
	}

	crashed := false
	for i := range sc.Events {
		ev := &sc.Events[i]
		if ev.At < 0 {
			return fmt.Errorf("event %q: at must be non-negative", ev.Action)
		}
		switch ev.Action {
		case "server_crash":
			if transport == rpcsim.TransportTCP {
				return fmt.Errorf("server_crash requires transport udp (stream state across a reboot is not modeled)")
			}
			if crashed {
				return fmt.Errorf("server_crash while the server is already down")
			}
			crashed = true
		case "server_restart":
			if !crashed {
				return fmt.Errorf("server_restart without a preceding server_crash")
			}
			crashed = false
		case "link_down", "link_up":
			if err := validateHost(ev.Host, f.Clients); err != nil {
				return fmt.Errorf("%s: %w", ev.Action, err)
			}
		case "loss_burst":
			if ev.Rate < 0 || ev.Rate > 1 {
				return fmt.Errorf("loss_burst.rate must be in [0, 1]")
			}
			if ev.For <= 0 {
				return fmt.Errorf("loss_burst needs a positive \"for\" window")
			}
		case "jitter_burst":
			if ev.Jitter <= 0 {
				return fmt.Errorf("jitter_burst needs a positive jitter")
			}
			if ev.For <= 0 {
				return fmt.Errorf("jitter_burst needs a positive \"for\" window")
			}
		case "disk_degrade":
			if ev.Factor < 1 {
				return fmt.Errorf("disk_degrade.factor must be >= 1")
			}
		case "assert_agg_mbps_min":
			if ev.MinMBps <= 0 {
				return fmt.Errorf("assert_agg_mbps_min needs a positive min_mbps")
			}
		case "assert_lost_min", "assert_rewritten_min", "assert_replayed_min":
			if ev.Bytes <= 0 {
				return fmt.Errorf("%s needs positive bytes", ev.Action)
			}
		case "assert_lost_max":
			if ev.Bytes < 0 {
				return fmt.Errorf("assert_lost_max needs non-negative bytes")
			}
		case "assert_stale_max":
			if ev.MaxStale < 0 {
				return fmt.Errorf("assert_stale_max needs non-negative max_stale")
			}
		}
	}
	// Crash/restart ordering is checked in event-list order above; also
	// require the timed ordering to match once sorted by At (stable sort,
	// so same-time events keep list order).
	sorted := make([]Event, len(sc.Events))
	copy(sorted, sc.Events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	down := false
	for i := range sorted {
		switch sorted[i].Action {
		case "server_crash":
			if down {
				return fmt.Errorf("server_crash at %v fires while the server is already down", sorted[i].At)
			}
			down = true
		case "server_restart":
			if !down {
				return fmt.Errorf("server_restart at %v fires with the server up", sorted[i].At)
			}
			down = false
		}
	}
	return nil
}

func validateHost(host string, clients int) error {
	if host == "" {
		return fmt.Errorf("needs a host (\"server\" or \"clientN\")")
	}
	if host == "server" {
		return nil
	}
	n, ok := strings.CutPrefix(host, "client")
	if !ok {
		return fmt.Errorf("unknown host %q (want \"server\" or \"clientN\")", host)
	}
	idx, err := strconv.Atoi(n)
	if err != nil || idx < 0 {
		return fmt.Errorf("unknown host %q (want \"server\" or \"clientN\")", host)
	}
	if idx >= clients {
		return fmt.Errorf("host %q is outside the fleet (clients: %d)", host, clients)
	}
	return nil
}

// resolveHost maps a scenario host name to the netsim host name.
func resolveHost(host string, kind nfssim.ServerKind) string {
	if host != "server" {
		return host // clientN names are the netsim names
	}
	switch kind {
	case nfssim.ServerFiler:
		return server.HostFiler
	case nfssim.ServerLinux:
		return server.HostLinux
	default:
		return server.HostSlow
	}
}

// Typed accessors for the generic parse tree. YAML scalars arrive as
// strings; JSON numbers arrive as float64.

func asString(v any) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("expected a string, got %T", v)
	}
	return s, nil
}

func asInt(v any) (int, error) {
	n, err := asInt64(v)
	return int(n), err
}

func asInt64(v any) (int64, error) {
	switch x := v.(type) {
	case string:
		n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("expected an integer, got %q", x)
		}
		return n, nil
	case float64:
		if x != float64(int64(x)) {
			return 0, fmt.Errorf("expected an integer, got %v", x)
		}
		return int64(x), nil
	default:
		return 0, fmt.Errorf("expected an integer, got %T", v)
	}
}

func asFloat(v any) (float64, error) {
	switch x := v.(type) {
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, fmt.Errorf("expected a number, got %q", x)
		}
		return f, nil
	case float64:
		return x, nil
	default:
		return 0, fmt.Errorf("expected a number, got %T", v)
	}
}

func asDuration(v any) (sim.Time, error) {
	switch x := v.(type) {
	case string:
		d, err := time.ParseDuration(strings.TrimSpace(x))
		if err != nil {
			return 0, fmt.Errorf("expected a duration (\"200ms\"), got %q", x)
		}
		return d, nil
	case float64:
		// JSON numbers are nanoseconds.
		return sim.Time(x), nil
	default:
		return 0, fmt.Errorf("expected a duration, got %T", v)
	}
}
