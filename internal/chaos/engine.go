package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/rpcsim"
	"repro/internal/server"
	"repro/internal/sim"
)

// AssertResult is one assertion's verdict.
type AssertResult struct {
	Name   string
	Detail string
	Pass   bool
}

// Report is one scenario run's outcome: the fired-event log, the
// workload result, recovery accounting, and assertion verdicts. Render
// produces deterministic text — byte-identical across reruns and worker
// counts for the same scenario file.
type Report struct {
	Scenario *Scenario
	Result   harness.Result
	// Err is the terminal error for runs that did not complete (e.g. a
	// DeadServerError from a permanently-dead server), empty otherwise.
	Err      string
	EventLog []string
	Asserts  []AssertResult
	Failed   bool

	// Recovery accounting, gathered from the test bed after the run.
	LostBytes      int64
	ReplayedBytes  int64
	RewrittenBytes int64
	VerfChanges    int64
	Crashes        int64
	MajorTimeouts  int64
	BadReplies     int64
	Retransmits    int64

	// Coherence accounting for shared-file scenarios: cached reads served
	// under a stale open, page-cache invalidations, and client-observed
	// change-attribute regressions (which a crash/restart must keep at
	// zero — the counter never runs backwards).
	StaleReads        int64
	Invalidations     int64
	ChangeRegressions int64
}

// Run executes one scenario: build the fleet, schedule the timed events
// in virtual time, drive the workload, then evaluate the assertions.
func Run(sc *Scenario) *Report {
	rep := &Report{Scenario: sc}
	serverKind, _ := harness.ServerByName(sc.Fleet.Server)
	config, _ := harness.ConfigByName(sc.Fleet.Config)
	transport, _ := rpcsim.ParseTransport(sc.Fleet.Transport)
	workload, _ := bonnie.ParseWorkload(sc.Fleet.Workload)
	consistency, _ := core.ParseConsistency(sc.Fleet.Consistency)
	hsc := harness.Scenario{
		Server:      serverKind,
		Config:      config,
		FileMB:      sc.Fleet.FileMB,
		WSize:       sc.Fleet.WSize,
		Clients:     sc.Fleet.Clients,
		Transport:   transport,
		Loss:        sc.Fleet.Loss,
		Workload:    workload,
		Consistency: consistency,
		Seed:        sc.Fleet.Seed,
		TimeLimit:   sc.Fleet.TimeLimit,
	}

	// Timed events fire in At order; same-time events keep file order.
	timed := make([]Event, 0, len(sc.Events))
	for _, ev := range sc.Events {
		if !ev.IsAssert() {
			timed = append(timed, ev)
		}
	}
	sort.SliceStable(timed, func(i, j int) bool { return timed[i].At < timed[j].At })

	var tb *nfssim.Testbed
	prepare := func(t *nfssim.Testbed) {
		tb = t
		for _, m := range t.Machines {
			m.Transport.SetMaxRetries(sc.Fleet.MaxRetries)
		}
		for i := range timed {
			ev := timed[i] // copy: the closure must not share the loop slot
			t.Sim.At(ev.At, func() {
				rep.EventLog = append(rep.EventLog, fireEvent(t, serverKind, ev))
			})
		}
	}

	res, err := runGuarded(hsc, prepare)
	if err != nil {
		rep.Err = err.Error()
	} else {
		rep.Result = res
	}
	if tb != nil {
		rep.gather(tb)
	}
	rep.evaluate(tb, err)
	return rep
}

// runGuarded runs the scenario and converts terminal panics — a
// DeadServerError surfacing from the retransmit timer (event context), or
// the simulator's wrapped process panic — into an error. The virtual time
// an error fires at is deterministic, so reports stay byte-identical.
func runGuarded(hsc harness.Scenario, prepare func(*nfssim.Testbed)) (res harness.Result, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch v := r.(type) {
		case *rpcsim.DeadServerError:
			err = v
		case error:
			err = v
		default:
			err = fmt.Errorf("%v", v)
		}
	}()
	res = harness.RunScenarioOn(hsc, prepare)
	return res, nil
}

// fireEvent applies one injection and returns its log line.
func fireEvent(tb *nfssim.Testbed, kind nfssim.ServerKind, ev Event) string {
	line := "t=" + sim.Time(tb.Sim.Now()).String() + " " + ev.Action
	switch ev.Action {
	case "server_crash":
		tb.Server.Crash()
	case "server_restart":
		tb.Server.Restart()
	case "link_down":
		tb.Net.SetDown(resolveHost(ev.Host, kind), true)
		line += " host=" + ev.Host
	case "link_up":
		tb.Net.SetDown(resolveHost(ev.Host, kind), false)
		line += " host=" + ev.Host
	case "loss_burst":
		base := tb.Net.Loss()
		burst := base
		burst.Rate = ev.Rate
		tb.Net.SetLoss(burst)
		tb.Sim.After(ev.For, func() { tb.Net.SetLoss(base) })
		line += " rate=" + strconv.FormatFloat(ev.Rate, 'g', -1, 64) +
			" for=" + ev.For.String()
	case "jitter_burst":
		base := tb.Net.Loss()
		burst := base
		burst.DelayJitter = ev.Jitter
		tb.Net.SetLoss(burst)
		tb.Sim.After(ev.For, func() { tb.Net.SetLoss(base) })
		line += " jitter=" + ev.Jitter.String() + " for=" + ev.For.String()
	case "disk_degrade":
		disk := serverDisk(tb)
		disk.SetSlowFactor(ev.Factor)
		line += " factor=" + strconv.FormatFloat(ev.Factor, 'g', -1, 64)
		if ev.For > 0 {
			tb.Sim.After(ev.For, func() { disk.SetSlowFactor(1) })
			line += " for=" + ev.For.String()
		}
	}
	return line
}

// serverDisk returns the backend's drain device.
func serverDisk(tb *nfssim.Testbed) interface{ SetSlowFactor(float64) } {
	if tb.Filer != nil {
		return tb.Filer.Disk()
	}
	return tb.Linux.Disk()
}

// durability returns the backend's DurabilityTracker.
func durability(tb *nfssim.Testbed) server.DurabilityTracker {
	if tb.Filer != nil {
		return tb.Filer
	}
	return tb.Linux
}

// gather collects recovery accounting from the finished (or abandoned)
// test bed.
func (r *Report) gather(tb *nfssim.Testbed) {
	dt := durability(tb)
	r.LostBytes = dt.LostBytes()
	r.ReplayedBytes = dt.ReplayedBytes()
	r.Crashes = tb.Server.Crashes
	for _, m := range tb.Machines {
		if m.Client != nil {
			r.RewrittenBytes += m.Client.RewrittenBytes
			r.VerfChanges += m.Client.VerfChanges
			r.StaleReads += m.Client.StaleReads
			r.Invalidations += m.Client.Invalidations
			r.ChangeRegressions += m.Client.ChangeRegressions
		}
		if m.Transport != nil {
			st := m.Transport.Stats()
			r.MajorTimeouts += st.MajorTimeouts
			r.BadReplies += st.BadReplies
			r.Retransmits += st.Retransmits
		}
	}
}

// evaluate runs the scenario's assertions against the outcome.
func (r *Report) evaluate(tb *nfssim.Testbed, runErr error) {
	for _, ev := range r.Scenario.Events {
		if !ev.IsAssert() {
			continue
		}
		a := AssertResult{Name: ev.Action}
		switch ev.Action {
		case "assert_completes":
			a.Pass = runErr == nil
			if !a.Pass {
				a.Detail = "run errored: " + runErr.Error()
			}
		case "assert_error":
			a.Pass = runErr != nil
			if a.Pass {
				a.Detail = runErr.Error()
			} else {
				a.Detail = "run completed without an error"
			}
		case "assert_no_data_loss":
			a.Pass, a.Detail = r.checkNoDataLoss(tb, runErr)
		case "assert_agg_mbps_min":
			got := r.Result.AggMBps
			a.Pass = runErr == nil && got >= ev.MinMBps
			a.Detail = "agg_mbps=" + mbps(got) +
				" min=" + mbps(ev.MinMBps)
			if runErr != nil {
				a.Detail = "run errored: " + runErr.Error()
			}
		case "assert_lost_min":
			a.Pass = r.LostBytes >= ev.Bytes
			a.Detail = fmt.Sprintf("lost=%d min=%d", r.LostBytes, ev.Bytes)
		case "assert_lost_max":
			a.Pass = r.LostBytes <= ev.Bytes
			a.Detail = fmt.Sprintf("lost=%d max=%d", r.LostBytes, ev.Bytes)
		case "assert_rewritten_min":
			a.Pass = r.RewrittenBytes >= ev.Bytes
			a.Detail = fmt.Sprintf("rewritten=%d min=%d", r.RewrittenBytes, ev.Bytes)
		case "assert_replayed_min":
			a.Pass = r.ReplayedBytes >= ev.Bytes
			a.Detail = fmt.Sprintf("replayed=%d min=%d", r.ReplayedBytes, ev.Bytes)
		case "assert_stale_max":
			a.Pass = r.StaleReads <= ev.MaxStale && r.ChangeRegressions == 0
			a.Detail = fmt.Sprintf("stale=%d max=%d change_regressions=%d",
				r.StaleReads, ev.MaxStale, r.ChangeRegressions)
		}
		if !a.Pass {
			r.Failed = true
		}
		r.Asserts = append(r.Asserts, a)
	}
	// A run that errors without an assert_error expecting it is a failure
	// even with no assertions in the file.
	if runErr != nil && !r.expectsError() {
		r.Failed = true
	}
}

func (r *Report) expectsError() bool {
	for _, ev := range r.Scenario.Events {
		if ev.Action == "assert_error" {
			return true
		}
	}
	return false
}

// checkNoDataLoss verifies that every byte range the server ever acked is
// in the backend's stable storage by the end of the run — across a filer
// crash via NVRAM replay, across a knfsd crash via client rewrite.
func (r *Report) checkNoDataLoss(tb *nfssim.Testbed, runErr error) (bool, string) {
	if runErr != nil {
		return false, "run errored: " + runErr.Error()
	}
	dt := durability(tb)
	var files int
	var ackedBytes int64
	for _, fh := range tb.Server.CoverageFiles() {
		received := tb.Server.Coverage(fh)
		stable := dt.StableCoverage(fh)
		for _, rng := range received.Ranges() {
			if !stable.Contains(rng.Start, rng.End) {
				return false, fmt.Sprintf(
					"file %d: acked range %v not in stable storage (stable: %v)",
					files, rng, stable)
			}
		}
		files++
		ackedBytes += received.Total()
	}
	return true, fmt.Sprintf("%d files, %d acked bytes all stable", files, ackedBytes)
}

// mbps formats a throughput with two decimals (explicit FormatFloat so
// the rendering is pinned, not %v-dependent).
func mbps(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// Render produces the report's deterministic text form.
func (r *Report) Render() string {
	var b strings.Builder
	sc := r.Scenario
	fmt.Fprintf(&b, "scenario %s: server=%s config=%s clients=%d file_mb=%d seed=%d\n",
		sc.Name, sc.Fleet.Server, sc.Fleet.Config, sc.Fleet.Clients,
		sc.Fleet.FileMB, sc.Fleet.Seed)
	for _, line := range r.EventLog {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	if r.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", r.Err)
	} else {
		fmt.Fprintf(&b, "  result: agg_mbps=%s calls=%d retransmits=%d\n",
			mbps(r.Result.AggMBps), r.Result.Calls, r.Retransmits)
	}
	fmt.Fprintf(&b, "  recovery: crashes=%d lost=%d replayed=%d rewritten=%d verf_changes=%d major_timeouts=%d bad_replies=%d\n",
		r.Crashes, r.LostBytes, r.ReplayedBytes, r.RewrittenBytes,
		r.VerfChanges, r.MajorTimeouts, r.BadReplies)
	if r.StaleReads != 0 || r.Invalidations != 0 || r.ChangeRegressions != 0 {
		fmt.Fprintf(&b, "  coherence: stale_reads=%d invalidations=%d change_regressions=%d\n",
			r.StaleReads, r.Invalidations, r.ChangeRegressions)
	}
	for _, a := range r.Asserts {
		verdict := "PASS"
		if !a.Pass {
			verdict = "FAIL"
		}
		if a.Detail != "" {
			fmt.Fprintf(&b, "  %s %s (%s)\n", verdict, a.Name, a.Detail)
		} else {
			fmt.Fprintf(&b, "  %s %s\n", verdict, a.Name)
		}
	}
	status := "PASS"
	if r.Failed {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "  status: %s\n", status)
	return b.String()
}

// RunAll executes every scenario across a worker pool (workers <= 0 means
// one). Reports come back in scenario order regardless of worker count —
// each scenario is its own deterministic simulation, so the combined
// output is byte-identical at any pool size.
func RunAll(scs []*Scenario, workers int) []*Report {
	n := len(scs)
	reports := make([]*Report, n)
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i] = Run(scs[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return reports
}
