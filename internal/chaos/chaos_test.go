package chaos

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleYAML = `
# full-featured scenario exercising every field and action kind
scenarios:
  - name: kitchen-sink
    description: "every knob turned"
    fleet:
      server: linux
      config: enhanced
      clients: 2
      file_mb: 4
      wsize: 16384
      workload: write
      transport: udp
      loss: 0.05
      seed: 9
      max_retries: 12
      time_limit: 10m
    events:
      - at: 10ms
        action: link_down
        host: client1
      - at: 20ms
        action: link_up
        host: client1
      - at: 30ms
        action: loss_burst
        rate: 0.25
        for: 5ms
      - at: 40ms
        action: jitter_burst
        jitter: 200us
        for: 5ms
      - at: 50ms
        action: disk_degrade
        factor: 3.5
        for: 10ms
      - at: 60ms
        action: server_crash
      - at: 90ms
        action: server_restart
      - action: assert_completes
      - action: assert_no_data_loss
      - action: assert_agg_mbps_min
        min_mbps: 0.5
`

// YAML → EncodeJSON → Parse must round-trip to the identical Scenario,
// proving the two front ends decode to the same thing and EncodeJSON
// loses nothing.
func TestJSONRoundTrip(t *testing.T) {
	scs, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatalf("parse yaml: %v", err)
	}
	if len(scs) != 1 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	js, err := scs[0].EncodeJSON()
	if err != nil {
		t.Fatalf("encode json: %v", err)
	}
	back, err := Parse(js)
	if err != nil {
		t.Fatalf("re-parse json: %v\n%s", err, js)
	}
	if len(back) != 1 {
		t.Fatalf("re-parse produced %d scenarios", len(back))
	}
	if !reflect.DeepEqual(scs[0], back[0]) {
		t.Fatalf("round trip diverged:\nyaml: %+v\njson: %+v", scs[0], back[0])
	}
}

// Defaults fill in when the fleet block is minimal.
func TestFleetDefaults(t *testing.T) {
	scs, err := Parse([]byte(`
scenarios:
  - name: tiny
    fleet:
      server: filer
    events:
      - action: assert_completes
`))
	if err != nil {
		t.Fatal(err)
	}
	f := scs[0].Fleet
	if f.Config != "enhanced" || f.Clients != 1 || f.FileMB != 8 ||
		f.Workload != "write" || f.Transport != "udp" || f.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", f)
	}
	if f.TimeLimit == 0 {
		t.Fatal("time limit default not applied")
	}
}

func TestRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown action", `
scenarios:
  - name: x
    fleet:
      server: filer
    events:
      - action: server_explode
`, "unknown action"},
		{"misplaced key", `
scenarios:
  - name: x
    fleet:
      server: filer
    events:
      - action: server_crash
        at: 1ms
        rate: 0.5
`, `does not take "rate"`},
		{"unknown fleet key", `
scenarios:
  - name: x
    fleet:
      server: filer
      flavor: spicy
    events:
      - action: assert_completes
`, "flavor"},
		{"unknown scenario key", `
scenarios:
  - name: x
    fleet:
      server: filer
    priority: high
    events:
      - action: assert_completes
`, "priority"},
		{"unknown server", `
scenarios:
  - name: x
    fleet:
      server: netapp
    events:
      - action: assert_completes
`, "server"},
		{"restart without crash", `
scenarios:
  - name: x
    fleet:
      server: filer
    events:
      - at: 10ms
        action: server_restart
`, "server_restart"},
		{"crash over tcp", `
scenarios:
  - name: x
    fleet:
      server: filer
      transport: tcp
    events:
      - at: 10ms
        action: server_crash
      - at: 20ms
        action: server_restart
`, "udp"},
		{"loss out of range", `
scenarios:
  - name: x
    fleet:
      server: filer
      loss: 1.5
    events:
      - action: assert_completes
`, "loss"},
		{"bad host", `
scenarios:
  - name: x
    fleet:
      server: filer
    events:
      - at: 1ms
        action: link_down
        host: client5
`, "host"},
		{"duplicate scenario names", `
scenarios:
  - name: same
    fleet:
      server: filer
    events:
      - action: assert_completes
  - name: same
    fleet:
      server: filer
    events:
      - action: assert_completes
`, "duplicate"},
		{"extra top-level key", `
scenarios:
  - name: x
    fleet:
      server: filer
    events:
      - action: assert_completes
version: 2
`, "top level"},
		{"tab indentation", "scenarios:\n\t- name: x\n", "tab"},
		{"duplicate map keys", `
scenarios:
  - name: x
    fleet:
      server: filer
      server: linux
    events:
      - action: assert_completes
`, "duplicate"},
		{"no events", `
scenarios:
  - name: x
    fleet:
      server: filer
`, "events"},
		{"stale_max takes max_stale not bytes", `
scenarios:
  - name: x
    fleet:
      server: filer
    events:
      - action: assert_stale_max
        bytes: 100
`, "does not take"},
		{"negative max_stale", `
scenarios:
  - name: x
    fleet:
      server: filer
    events:
      - action: assert_stale_max
        max_stale: -1
`, "non-negative"},
		{"bad consistency mode", `
scenarios:
  - name: x
    fleet:
      server: filer
      consistency: eventual
    events:
      - action: assert_completes
`, "consistency"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.src))
			if err == nil {
				t.Fatalf("accepted invalid input")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// The checked-in example scenarios are the CLI's front door: they must
// load, run, and pass their own assertions, and the counters must show
// the two backends' contrasting durability stories.
func TestExampleScenarios(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "chaos")

	crash, err := Load(filepath.Join(dir, "crash.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	reps := RunAll(crash, 2)
	if len(reps) != 2 {
		t.Fatalf("crash.yaml: %d reports", len(reps))
	}
	filer, knfsd := reps[0], reps[1]
	if filer.Failed || knfsd.Failed {
		t.Fatalf("crash scenarios failed:\n%s%s", filer.Render(), knfsd.Render())
	}
	if filer.LostBytes != 0 || filer.ReplayedBytes == 0 {
		t.Fatalf("filer: lost=%d replayed=%d, want NVRAM replay with zero loss",
			filer.LostBytes, filer.ReplayedBytes)
	}
	if knfsd.LostBytes == 0 || knfsd.RewrittenBytes == 0 || knfsd.VerfChanges == 0 {
		t.Fatalf("knfsd: lost=%d rewritten=%d verf=%d, want lost async bytes detected and rewritten",
			knfsd.LostBytes, knfsd.RewrittenBytes, knfsd.VerfChanges)
	}

	dead, err := Load(filepath.Join(dir, "deadserver.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(dead[0])
	if rep.Failed {
		t.Fatalf("dead-server scenario failed:\n%s", rep.Render())
	}
	if rep.Err == "" || !strings.Contains(rep.Err, "gave up after") {
		t.Fatalf("dead server err = %q, want the bounded-retry give-up error", rep.Err)
	}

	flap, err := Load(filepath.Join(dir, "flap.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if rep := Run(flap[0]); rep.Failed {
		t.Fatalf("flap scenario failed:\n%s", rep.Render())
	}

	shared, err := Load(filepath.Join(dir, "sharedcrash.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	srep := Run(shared[0])
	if srep.Failed {
		t.Fatalf("shared-crash scenario failed:\n%s", srep.Render())
	}
	// The coherence story: the crash must not cost acked bytes or run
	// any change counter backwards, and the ttl readers do serve some
	// cached (stale) reads — that is what the assert bounds.
	if srep.LostBytes != 0 || srep.ChangeRegressions != 0 {
		t.Fatalf("shared-crash: lost=%d change_regressions=%d, want 0/0",
			srep.LostBytes, srep.ChangeRegressions)
	}
	if srep.StaleReads == 0 {
		t.Fatalf("shared-crash: no stale reads served; the stale_max assert is vacuous\n%s", srep.Render())
	}
}

// The acceptance criterion: a chaos run renders byte-identically on
// reruns and at any worker count.
func TestChaosRunByteIdentical(t *testing.T) {
	scs, err := Load(filepath.Join("..", "..", "examples", "chaos", "crash.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		var b strings.Builder
		for _, rep := range RunAll(scs, workers) {
			b.WriteString(rep.Render())
		}
		return b.String()
	}
	w1, w8, again := render(1), render(8), render(8)
	if w1 != w8 {
		t.Fatal("chaos output differs between -workers 1 and 8")
	}
	if w8 != again {
		t.Fatal("chaos output differs between identical reruns")
	}
}

// Events fire in At order even when written out of order in the file
// (crash/restart must already be listed in order — that pair is
// validated both ways — but everything else may be shuffled), and the
// event log records firings in simulation order.
func TestEventOrderIndependence(t *testing.T) {
	shuffled := `
scenarios:
  - name: order
    fleet:
      server: filer
      file_mb: 4
      seed: 3
    events:
      - at: 300ms
        action: disk_degrade
        factor: 2
        for: 50ms
      - action: assert_completes
      - at: 100ms
        action: loss_burst
        rate: 0.1
        for: 20ms
`
	sorted := `
scenarios:
  - name: order
    fleet:
      server: filer
      file_mb: 4
      seed: 3
    events:
      - at: 100ms
        action: loss_burst
        rate: 0.1
        for: 20ms
      - at: 300ms
        action: disk_degrade
        factor: 2
        for: 50ms
      - action: assert_completes
`
	run := func(src string) string {
		scs, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		return Run(scs[0]).Render()
	}
	a, b := run(shuffled), run(sorted)
	if a != b {
		t.Fatalf("event order in the file changed the run:\n%s\nvs\n%s", a, b)
	}
	if i := strings.Index(a, "loss_burst"); i < 0 || i > strings.Index(a, "disk_degrade") {
		t.Fatalf("event log not in simulation order:\n%s", a)
	}
}

// A failing assertion marks the report Failed and names the assert.
func TestFailingAssertReported(t *testing.T) {
	scs, err := Parse([]byte(`
scenarios:
  - name: greedy
    fleet:
      server: filer
      file_mb: 4
      seed: 1
    events:
      - action: assert_agg_mbps_min
        min_mbps: 10000
`))
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(scs[0])
	if !rep.Failed {
		t.Fatal("absurd throughput floor passed")
	}
	found := false
	for _, a := range rep.Asserts {
		if a.Name == "assert_agg_mbps_min" && !a.Pass {
			found = true
		}
	}
	if !found {
		t.Fatalf("failing assert not reported: %+v", rep.Asserts)
	}
	if !strings.Contains(rep.Render(), "FAIL") {
		t.Fatal("render does not show FAIL")
	}
}

// An unexpected run error with no assert_error marks the report Failed.
func TestUnexpectedErrorFails(t *testing.T) {
	scs, err := Parse([]byte(`
scenarios:
  - name: surprise
    fleet:
      server: filer
      file_mb: 4
      max_retries: 5
      time_limit: 5m
      seed: 1
    events:
      - at: 50ms
        action: server_crash
      - action: assert_completes
`))
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(scs[0])
	if !rep.Failed {
		t.Fatal("run errored (dead server) but the report passed")
	}
	if rep.Err == "" {
		t.Fatal("error not captured in the report")
	}
}

func ExampleParse() {
	scs, _ := Parse([]byte(`
scenarios:
  - name: demo
    fleet:
      server: filer
    events:
      - at: 100ms
        action: server_crash
      - at: 400ms
        action: server_restart
      - action: assert_no_data_loss
`))
	fmt.Println(scs[0].Name, scs[0].Fleet.Server, len(scs[0].Events))
	// Output: demo filer 3
}
