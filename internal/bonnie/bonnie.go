// Package bonnie implements the paper's benchmark (§2.3) — the block
// sequential write portion of Bonnie, refined to report what the paper
// needs — plus the Bonnie passes the paper never ran: rewrite, block
// sequential read, a mixed read/write mode, random chunk reads and
// writes over a preallocated file (the database-style access pattern the
// paper's introduction motivates), and a group-commit variant that
// fsyncs every FsyncEvery chunks. Each run drives fixed-size chunks
// through one I/O pattern (Workload) and reports:
//
//   - three cumulative throughputs — after the last I/O call, after
//     flush(), and after close() — each computed as total bytes divided
//     by the time from the start of the benchmark to just after that
//     operation ("to make fair comparisons between NFS (which always
//     flushes completely before last close) and local file systems");
//   - actual per-call latency, "and not average latency", because jitter
//     is invisible in means (Figures 2–4 are these traces).
package bonnie

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// DefaultChunk is the benchmark's write size: "how quickly an application
// can write 8 KB chunks into a fresh file" (§2.3).
const DefaultChunk = 8192

// DefaultDBFsyncEvery is the db workload's group-commit batch when
// Config.FsyncEvery is unset: flush after every 32 chunk writes.
const DefaultDBFsyncEvery = 32

// Workload selects the I/O pattern a run performs.
type Workload int

const (
	// WorkloadWrite is the paper's benchmark: sequential chunks written
	// into a fresh file.
	WorkloadWrite Workload = iota
	// WorkloadRewrite is Bonnie's rewrite pass: read each chunk of an
	// existing file and write it back in place.
	WorkloadRewrite
	// WorkloadRead is Bonnie's block read pass: sequentially read an
	// existing file front to back.
	WorkloadRead
	// WorkloadMixed alternates chunk reads of an existing file with
	// chunk writes appended to a fresh file, half the total each — the
	// pressure pattern that exercises readahead and write-behind at once.
	WorkloadMixed
	// WorkloadRandRead reads every chunk of an existing file exactly once
	// in a deterministic per-seed random order (pread) — the pattern that
	// defeats sequential readahead.
	WorkloadRandRead
	// WorkloadRandWrite updates every chunk of a preallocated file exactly
	// once in a deterministic per-seed random order (pwrite) — the
	// database-page-update pattern that defeats request coalescing and
	// stresses the pending-request lookup structure (§3.4).
	WorkloadRandWrite
	// WorkloadDB is WorkloadRandWrite with group commit: a Flush (fsync)
	// after every FsyncEvery chunk writes, the transactional durability
	// pattern §3.6 contrasts across servers.
	WorkloadDB
	// WorkloadZipf is the many-file metadata workload: each op draws a
	// file from a seed-deterministic Zipfian popularity distribution over
	// FileCount names and performs one of create/write/read/stat/remove
	// per the OpMix percentages, opening and closing around every data
	// op. It drives the target's Namespace (LOOKUP/GETATTR/CREATE/REMOVE
	// on NFS) and the client's attribute cache instead of streaming one
	// big file.
	WorkloadZipf
	// WorkloadShared is the cache-coherence workload: every worker opens
	// the same named file. Writers (SharedWriterPct of the workers, the
	// first of them priming the file front to back) rewrite it in place
	// with periodic flushes; readers loop open/read-pass/close over it,
	// pausing SharedReadLag between passes. Whether a reader's pass sees
	// the writers' updates is exactly the close-to-open consistency
	// question the client's Consistency mode answers.
	WorkloadShared
)

func (w Workload) String() string {
	switch w {
	case WorkloadRewrite:
		return "rewrite"
	case WorkloadRead:
		return "read"
	case WorkloadMixed:
		return "mixed"
	case WorkloadRandRead:
		return "randread"
	case WorkloadRandWrite:
		return "randwrite"
	case WorkloadDB:
		return "db"
	case WorkloadZipf:
		return "zipf"
	case WorkloadShared:
		return "shared"
	default:
		return "write"
	}
}

// ParseWorkload resolves a workload name as printed by String.
func ParseWorkload(name string) (Workload, error) {
	switch name {
	case "write":
		return WorkloadWrite, nil
	case "rewrite":
		return WorkloadRewrite, nil
	case "read":
		return WorkloadRead, nil
	case "mixed":
		return WorkloadMixed, nil
	case "randread":
		return WorkloadRandRead, nil
	case "randwrite":
		return WorkloadRandWrite, nil
	case "db":
		return WorkloadDB, nil
	case "zipf":
		return WorkloadZipf, nil
	case "shared":
		return WorkloadShared, nil
	}
	return 0, fmt.Errorf("bonnie: unknown workload %q (have write, rewrite, read, mixed, randread, randwrite, db, zipf, shared)", name)
}

// NeedsExisting reports whether the workload opens a pre-populated file
// (the read workloads' cold target, or the random writers' preallocated
// table). The zipf and shared workloads create their own files by name.
func (w Workload) NeedsExisting() bool {
	return w != WorkloadWrite && w != WorkloadZipf && w != WorkloadShared
}

// Random reports whether the workload visits chunks in a seeded random
// permutation instead of front to back.
func (w Workload) Random() bool {
	return w == WorkloadRandRead || w == WorkloadRandWrite || w == WorkloadDB
}

// DefaultSharedWriterPct is the shared workload's writer share when
// Config.SharedWriterPct is unset: half the workers write, half read.
const DefaultSharedWriterPct = 50

// DefaultSharedFsyncEvery is the shared workload's write-side flush
// cadence when Config.FsyncEvery is unset: without it a writer's
// updates sit in its cache until close and readers on other machines
// have nothing to be coherent about.
const DefaultSharedFsyncEvery = 8

// sharedFileName is the one file every shared-workload worker targets.
const sharedFileName = "shared0"

// sharedPasses sizes the shared file at 1/sharedPasses of each worker's
// byte budget (at least one chunk), so a writer rewrites it about
// sharedPasses times and a reader covers it in about sharedPasses
// open/read/close passes — enough reopens for the consistency modes to
// diverge measurably.
const sharedPasses = 8

// sharedPollInterval paces a reader that got ahead of the priming
// writer (the file is still empty): sleep, reopen, retry.
const sharedPollInterval = sim.Time(10 * time.Millisecond)

// DefaultZipfFiles is the zipf workload's file population when
// Config.FileCount is unset.
const DefaultZipfFiles = 100

// DefaultZipfS is the zipf workload's skew exponent when Config.ZipfS is
// unset: file i (0-based popularity rank) is drawn with weight
// 1/(i+1)^s, so 1.2 concentrates most ops on a small hot set.
const DefaultZipfS = 1.2

// ZipfUniform is a Config.ZipfS sentinel selecting uniform file choice
// (exponent 0) — the no-skew baseline the zipf sweeps compare against.
const ZipfUniform = -1

// OpMix is the zipf workload's operation mix, in percentages summing to
// 100. Each drawn op opens/acts/closes one file from the popularity
// distribution.
type OpMix struct {
	// Create opens the file by name (creating it server-side if absent)
	// and closes it — pure metadata.
	Create int
	// Write opens the file and appends one chunk.
	Write int
	// Read opens the file and reads up to one chunk from the front.
	Read int
	// Stat asks for the file's attributes without opening it.
	Stat int
	// Remove unlinks the file.
	Remove int
}

// DefaultOpMix is the standard many-file mix: mostly data ops with a
// steady metadata churn.
func DefaultOpMix() OpMix { return OpMix{Create: 10, Write: 30, Read: 40, Stat: 15, Remove: 5} }

// IsZero reports whether the mix is entirely unset (use the default).
func (m OpMix) IsZero() bool { return m == OpMix{} }

// String renders the mix compactly (c10w30r40s15d5), the form harness
// keys embed.
func (m OpMix) String() string {
	return fmt.Sprintf("c%dw%dr%ds%dd%d", m.Create, m.Write, m.Read, m.Stat, m.Remove)
}

// ParseOpMix parses "create/write/read/stat/remove" percentages, e.g.
// "10/30/40/15/5".
func ParseOpMix(s string) (OpMix, error) {
	var m OpMix
	n, err := fmt.Sscanf(s, "%d/%d/%d/%d/%d", &m.Create, &m.Write, &m.Read, &m.Stat, &m.Remove)
	if err != nil || n != 5 {
		return OpMix{}, fmt.Errorf("bonnie: bad op mix %q (want create/write/read/stat/remove percentages, e.g. 10/30/40/15/5)", s)
	}
	if m.Create < 0 || m.Write < 0 || m.Read < 0 || m.Stat < 0 || m.Remove < 0 ||
		m.Create+m.Write+m.Read+m.Stat+m.Remove != 100 {
		return OpMix{}, fmt.Errorf("bonnie: op mix %q must be non-negative and sum to 100", s)
	}
	return m, nil
}

// Config parameterizes one benchmark run.
type Config struct {
	// FileSize is the total bytes of I/O to perform. For write, rewrite
	// and read it is also the file's size; for mixed it splits evenly
	// between the read stream and the write stream.
	FileSize int64
	// ChunkSize is the per-call size (default 8 KB).
	ChunkSize int
	// Workload is the I/O pattern (default WorkloadWrite).
	Workload Workload
	// FsyncEvery flushes the write stream after every FsyncEvery chunk
	// calls during the I/O phase — group commit. 0 means never, except
	// for WorkloadDB, which defaults to DefaultDBFsyncEvery.
	FsyncEvery int
	// TimeLimit aborts a runaway simulation (default 30 virtual minutes).
	TimeLimit sim.Time
	// SkipFlushClose stops after the I/O phase (local-vs-NFS comparison
	// in Figure 1 uses write-only throughput).
	SkipFlushClose bool

	// FileCount is the zipf workload's file population (default
	// DefaultZipfFiles). Ignored by the single-file workloads.
	FileCount int
	// ZipfS is the zipf workload's skew exponent (default DefaultZipfS;
	// ZipfUniform selects uniform choice). Ignored by the single-file
	// workloads.
	ZipfS float64
	// Mix is the zipf workload's op mix (zero value means DefaultOpMix).
	// Ignored by the single-file workloads.
	Mix OpMix

	// SharedWriterPct is the shared workload's writer share of the
	// workers, in percent (default DefaultSharedWriterPct). Writers are
	// spread evenly across the worker indices; a run always has at least
	// one writer, so the shared file exists. Ignored by other workloads.
	SharedWriterPct int
	// SharedReadLag is how long a shared-workload reader pauses between
	// read passes — the consumer's polling cadence, and the window in
	// which its cached pages go stale. 0 means back-to-back passes.
	SharedReadLag sim.Time

	// workers is the concurrent worker count, set by the runners so the
	// shared workload can place its writers; not a caller knob.
	workers int
}

// Result is one benchmark run's measurements.
type Result struct {
	Target    string
	Workload  Workload
	FileSize  int64
	ChunkSize int
	Calls     int

	// Elapsed virtual time from benchmark start to just after each
	// phase. WriteElapsed is the I/O phase (named for the paper's
	// write-only benchmark; for read workloads it is the read phase). For
	// group-commit runs (FsyncEvery > 0) the I/O phase includes the
	// mid-run flushes, so WriteMBps reflects the durable rate.
	WriteElapsed sim.Time
	FlushElapsed sim.Time
	CloseElapsed sim.Time

	// FsyncCount is how many group-commit flushes the I/O phase issued
	// (FsyncEvery cadence); FsyncTime is the virtual time spent inside
	// them — the fsync-dominance signal §3.6 is about.
	FsyncCount int
	FsyncTime  sim.Time

	// Trace holds actual per-call latencies: one sample per write() or
	// read() (rewrite records one sample per read-modify-write pair);
	// group-commit flushes are tracked in FsyncTime, not the trace.
	Trace *stats.Trace
}

// WriteMBps is throughput counting only write() calls.
func (r *Result) WriteMBps() float64 { return stats.MBps(r.FileSize, r.WriteElapsed) }

// FlushMBps is throughput through the flush operation.
func (r *Result) FlushMBps() float64 { return stats.MBps(r.FileSize, r.FlushElapsed) }

// CloseMBps is throughput through the final close.
func (r *Result) CloseMBps() float64 { return stats.MBps(r.FileSize, r.CloseElapsed) }

// WriteKBps is the Figures 1/7 y-axis unit.
func (r *Result) WriteKBps() float64 { return stats.KBps(r.FileSize, r.WriteElapsed) }

func (r *Result) String() string {
	s := r.Trace.Summary()
	out := fmt.Sprintf("%s: %d MB in %d x %d B %s calls\n", r.Target, r.FileSize>>20, r.Calls, r.ChunkSize, r.Workload)
	out += fmt.Sprintf("  write:  %7.1f MB/s  (elapsed %v)\n", r.WriteMBps(), r.WriteElapsed)
	if r.FlushElapsed > 0 {
		out += fmt.Sprintf("  flush:  %7.1f MB/s  (elapsed %v)\n", r.FlushMBps(), r.FlushElapsed)
		out += fmt.Sprintf("  close:  %7.1f MB/s  (elapsed %v)\n", r.CloseMBps(), r.CloseElapsed)
	}
	out += fmt.Sprintf("  per-call latency: mean %v  median %v  max %v\n", s.Mean, s.Median, s.Max)
	return out
}

// ConcurrentResult aggregates a multi-writer run.
type ConcurrentResult struct {
	PerWriter []*Result
	// Elapsed is when the last writer finished (from simulation start of
	// the run).
	Elapsed sim.Time
	// TotalBytes across all writers.
	TotalBytes int64
}

// AggregateMBps is total bytes over the span until the last writer
// finished — the client-wide write bandwidth §3.5's concurrency argument
// is about.
func (r *ConcurrentResult) AggregateMBps() float64 {
	return stats.MBps(r.TotalBytes, r.Elapsed)
}

// ioFiles are one writer's open files: the workload's primary stream
// (the existing file for rewrite/read/mixed, the fresh file for write)
// and, for mixed, the fresh write-side file. The zipf workload opens
// files per op instead and carries the target's namespace.
type ioFiles struct {
	main  vfs.File
	aux   vfs.File
	names vfs.Namespace
}

// openFiles opens what the configured workload needs.
func openFiles(open vfs.OpenSet, cfg Config) ioFiles {
	if cfg.Workload.NeedsExisting() && open.Existing == nil {
		panic(fmt.Sprintf("bonnie: %s workload needs an Existing opener", cfg.Workload))
	}
	switch cfg.Workload {
	case WorkloadRewrite, WorkloadRead, WorkloadRandRead, WorkloadRandWrite, WorkloadDB:
		return ioFiles{main: open.Existing(cfg.FileSize)}
	case WorkloadMixed:
		return ioFiles{main: open.Existing(cfg.FileSize / 2), aux: open.Fresh()}
	case WorkloadZipf, WorkloadShared:
		if open.Names == nil {
			panic(fmt.Sprintf("bonnie: %s workload needs a Names opener (a target with a namespace)", cfg.Workload))
		}
		return ioFiles{names: open.Names}
	default:
		return ioFiles{main: open.Fresh()}
	}
}

// chunkPerm returns the order a random workload visits its chunks: a
// permutation of every chunk index, deterministic per (simulation seed,
// worker). The rng derives from sim.Seed() with its own salt, exactly
// like netsim.LossConfig's loss stream, so enabling a random workload
// never perturbs the draw sequence other components see, and the same
// scenario produces the same permutation at any harness worker count.
func chunkPerm(s *sim.Sim, worker, n int) []int {
	rng := rand.New(rand.NewSource(s.Seed()*0x9E3779B1 + 0x72616E64 + int64(worker)*0x10001))
	return rng.Perm(n)
}

// zipfRNG is the zipf workload's op stream source, deterministic per
// (simulation seed, worker) with its own salt ("zipf"), following the
// same discipline as chunkPerm: the stream is a pure function of seed
// and worker, so reruns and harness worker counts reproduce it exactly.
func zipfRNG(s *sim.Sim, worker int) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed()*0x9E3779B1 + 0x7a697066 + int64(worker)*0x10001))
}

// zipfPicker draws file indices from a Zipfian popularity distribution:
// rank i has weight 1/(i+1)^s. s = 0 is uniform. Inverse-CDF over the
// cumulative weights with binary search, so draws cost O(log n) and the
// distribution is exact for any n.
type zipfPicker struct {
	cum []float64 // cumulative weights, cum[n-1] is the total mass
}

func newZipfPicker(n int, s float64) *zipfPicker {
	if s < 0 {
		s = 0 // ZipfUniform sentinel
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &zipfPicker{cum: cum}
}

func (z *zipfPicker) pick(rng *rand.Rand) int {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}

// zipfOp maps a percentage roll in [0, 100) to an operation through the
// mix's cumulative thresholds.
type zipfOp int

const (
	zipfCreate zipfOp = iota
	zipfWrite
	zipfRead
	zipfStat
	zipfRemove
)

func (m OpMix) op(roll int) zipfOp {
	switch {
	case roll < m.Create:
		return zipfCreate
	case roll < m.Create+m.Write:
		return zipfWrite
	case roll < m.Create+m.Write+m.Read:
		return zipfRead
	case roll < m.Create+m.Write+m.Read+m.Stat:
		return zipfStat
	default:
		return zipfRemove
	}
}

// runZipf performs the many-file metadata workload: chunkCount(cfg) ops,
// each drawing a file from the popularity distribution and an operation
// from the mix (file first, then op — the draw order is part of the
// deterministic stream). Data ops open by name, act, and close, so every
// op exercises the open-time attribute revalidation path. The bytes a
// run actually moves replace res.FileSize so the throughput accessors
// report real data motion, not the op budget.
func runZipf(p *sim.Proc, s *sim.Sim, worker int, names vfs.Namespace, cfg Config, res *Result) {
	rng := zipfRNG(s, worker)
	picker := newZipfPicker(cfg.FileCount, cfg.ZipfS)
	ops := chunkCount(cfg)
	var moved int64
	for k := 0; k < ops; k++ {
		name := fmt.Sprintf("f%05d", picker.pick(rng))
		op := cfg.Mix.op(rng.Intn(100))
		t0 := s.Now()
		switch op {
		case zipfCreate:
			f := names.OpenByName(p, name)
			f.Close(p)
		case zipfWrite:
			f := names.OpenByName(p, name)
			f.Write(p, cfg.ChunkSize)
			f.Close(p)
			moved += int64(cfg.ChunkSize)
		case zipfRead:
			// Read the file's last chunk — the log-tail pattern: the
			// freshest data, and a read that never drags readahead
			// through a hot file's whole history.
			f := names.OpenByName(p, name)
			off := f.Size() - int64(cfg.ChunkSize)
			if off < 0 {
				off = 0
			}
			moved += int64(f.ReadAt(p, off, cfg.ChunkSize))
			f.Close(p)
		case zipfStat:
			names.Stat(p, name)
		case zipfRemove:
			names.Remove(p, name)
		}
		res.Trace.Add(s.Now() - t0)
		res.Calls++
	}
	res.FileSize = moved
}

// sharedIsWriter reports whether worker w of n is a shared-workload
// writer under pct. Writers are the indices where the floor of the
// cumulative writer share advances, which spreads them evenly across
// the worker range (pct=50 makes the odd indices write). When rounding
// assigns no writer at all — few workers, low pct — worker 0 writes,
// so the shared file always has a producer.
func sharedIsWriter(w, n, pct int) bool {
	if n*pct/100 == 0 {
		return w == 0
	}
	return (w+1)*pct/100 > w*pct/100
}

// sharedPrimer is the lowest writer index: the worker that creates the
// shared file and fills it front to back, establishing the size the
// readers' passes cover.
func sharedPrimer(n, pct int) int {
	for w := 0; w < n; w++ {
		if sharedIsWriter(w, n, pct) {
			return w
		}
	}
	return 0
}

// sharedSpanChunks is the shared file's size in whole chunks: each
// worker's chunk budget divided by sharedPasses, at least one.
func sharedSpanChunks(cfg Config) int {
	n := chunkCount(cfg) / sharedPasses
	if n < 1 {
		n = 1
	}
	return n
}

// runShared performs the cache-coherence workload: every worker targets
// the one shared file, a span of sharedSpanChunks whole chunks. The
// primer fills it front to back and keeps rewriting; other writers
// rewrite it in place too, wrapping, each from a worker-staggered start
// chunk so they don't march in lockstep; all flush on the maybeFsync
// cadence so their updates become server-visible mid-run. Readers wait
// for the primer to finish the first fill (the priming barrier), then
// loop open / full pass / close with SharedReadLag between passes until
// their byte budget is read — whether a pass sees the writers' updates
// or superseded cached pages is the consistency mode's call, and the
// client counts the latter as stale reads. Every worker's budget is
// FileSize bytes; the bytes actually moved replace res.FileSize so
// throughput reflects real data motion.
func runShared(p *sim.Proc, s *sim.Sim, worker int, names vfs.Namespace, cfg Config, res *Result, maybeFsync func(call int, f vfs.File)) {
	n := cfg.workers
	if n < 1 {
		n = 1
	}
	if !sharedIsWriter(worker, n, cfg.SharedWriterPct) {
		runSharedReader(p, s, names, cfg, res)
		return
	}
	chunks := chunkCount(cfg)
	span := sharedSpanChunks(cfg)
	start := 0
	if worker != sharedPrimer(n, cfg.SharedWriterPct) {
		start = (worker * 7) % span
	}
	f := names.OpenByName(p, sharedFileName)
	var moved int64
	for k := 0; k < chunks; k++ {
		idx := (start + k) % span
		off := int64(idx) * int64(cfg.ChunkSize)
		t0 := s.Now()
		f.WriteAt(p, off, cfg.ChunkSize)
		res.Trace.Add(s.Now() - t0)
		res.Calls++
		moved += int64(cfg.ChunkSize)
		maybeFsync(k+1, f)
	}
	f.Close(p)
	res.FileSize = moved
}

// runSharedReader is the consumer half of the shared workload. The
// priming barrier polls stat() until the file reports its full span —
// the explicit attribute query refreshes the cached entry once it ages
// out, which is the only escape for a client whose opens never
// revalidate. Then each pass reopens the file (the close-to-open
// revalidation point), reads the span front to back, closes, and waits
// out the lag. A pass that reads nothing — a cached size-zero attribute
// entry still masking the fill — backs off one poll interval so virtual
// time always advances.
func runSharedReader(p *sim.Proc, s *sim.Sim, names vfs.Namespace, cfg Config, res *Result) {
	span := int64(sharedSpanChunks(cfg)) * int64(cfg.ChunkSize)
	for {
		if size, ok := names.Stat(p, sharedFileName); ok && size >= span {
			break
		}
		p.Sleep(sharedPollInterval)
	}
	var moved int64
	for moved < cfg.FileSize {
		f := names.OpenByName(p, sharedFileName)
		var pos int64
		for pos < span && moved < cfg.FileSize {
			nb := chunkFor(cfg, span-pos)
			if rem := cfg.FileSize - moved; int64(nb) > rem {
				nb = int(rem)
			}
			t0 := s.Now()
			got := f.ReadAt(p, pos, nb)
			res.Trace.Add(s.Now() - t0)
			res.Calls++
			pos += int64(got)
			moved += int64(got)
			if got < nb {
				break
			}
		}
		f.Close(p)
		if moved >= cfg.FileSize {
			break
		}
		if pos == 0 {
			p.Sleep(sharedPollInterval)
			names.Stat(p, sharedFileName)
		} else if cfg.SharedReadLag > 0 {
			p.Sleep(cfg.SharedReadLag)
		}
	}
	res.FileSize = moved
}

// chunkCount is how many chunk-sized calls cover FileSize (the final
// chunk may be partial).
func chunkCount(cfg Config) int {
	return int((cfg.FileSize + int64(cfg.ChunkSize) - 1) / int64(cfg.ChunkSize))
}

// normalize fills Config defaults shared by RunWorkload and
// RunConcurrentWorkload.
func normalize(cfg Config) Config {
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = DefaultChunk
	}
	if cfg.TimeLimit == 0 {
		cfg.TimeLimit = 30 * time.Minute
	}
	if cfg.FsyncEvery < 0 {
		panic("bonnie: FsyncEvery must be non-negative")
	}
	if cfg.Workload == WorkloadDB && cfg.FsyncEvery == 0 {
		cfg.FsyncEvery = DefaultDBFsyncEvery
	}
	if cfg.Workload == WorkloadShared {
		if cfg.FsyncEvery == 0 {
			cfg.FsyncEvery = DefaultSharedFsyncEvery
		}
		if cfg.SharedWriterPct == 0 {
			cfg.SharedWriterPct = DefaultSharedWriterPct
		}
		if cfg.SharedWriterPct < 1 || cfg.SharedWriterPct > 100 {
			panic(fmt.Sprintf("bonnie: SharedWriterPct %d outside [1, 100]", cfg.SharedWriterPct))
		}
		if cfg.SharedReadLag < 0 {
			panic("bonnie: SharedReadLag must be non-negative")
		}
	}
	if cfg.Workload == WorkloadZipf {
		if cfg.FileCount == 0 {
			cfg.FileCount = DefaultZipfFiles
		}
		if cfg.FileCount < 1 {
			panic("bonnie: FileCount must be positive")
		}
		if cfg.ZipfS == 0 {
			cfg.ZipfS = DefaultZipfS
		}
		if cfg.Mix.IsZero() {
			cfg.Mix = DefaultOpMix()
		}
		if sum := cfg.Mix.Create + cfg.Mix.Write + cfg.Mix.Read + cfg.Mix.Stat + cfg.Mix.Remove; sum != 100 ||
			cfg.Mix.Create < 0 || cfg.Mix.Write < 0 || cfg.Mix.Read < 0 || cfg.Mix.Stat < 0 || cfg.Mix.Remove < 0 {
			panic(fmt.Sprintf("bonnie: op mix %v must be non-negative and sum to 100", cfg.Mix))
		}
	}
	return cfg
}

func chunkFor(cfg Config, rem int64) int {
	n := cfg.ChunkSize
	if rem < int64(n) {
		n = int(rem)
	}
	return n
}

// runIO performs the workload's I/O phase, recording per-call latencies
// and the call count. worker seeds the random workloads' permutation, so
// concurrent workers visit their files in distinct deterministic orders.
// After each chunk that dirtied data, maybeFsync applies the FsyncEvery
// group-commit cadence to the stream that was written.
func runIO(p *sim.Proc, s *sim.Sim, worker int, fs ioFiles, cfg Config, res *Result) {
	maybeFsync := func(call int, f vfs.File) {
		if cfg.FsyncEvery <= 0 || call%cfg.FsyncEvery != 0 {
			return
		}
		t0 := s.Now()
		f.Flush(p)
		res.FsyncTime += s.Now() - t0
		res.FsyncCount++
	}
	switch cfg.Workload {
	case WorkloadZipf:
		runZipf(p, s, worker, fs.names, cfg, res)
	case WorkloadShared:
		runShared(p, s, worker, fs.names, cfg, res, maybeFsync)
	case WorkloadRandRead:
		for _, idx := range chunkPerm(s, worker, chunkCount(cfg)) {
			off := int64(idx) * int64(cfg.ChunkSize)
			n := chunkFor(cfg, cfg.FileSize-off)
			t0 := s.Now()
			got := fs.main.ReadAt(p, off, n)
			res.Trace.Add(s.Now() - t0)
			res.Calls++
			if got != n {
				panic(fmt.Sprintf("bonnie: short random read %d of %d at %d", got, n, off))
			}
		}
	case WorkloadRandWrite, WorkloadDB:
		for k, idx := range chunkPerm(s, worker, chunkCount(cfg)) {
			off := int64(idx) * int64(cfg.ChunkSize)
			n := chunkFor(cfg, cfg.FileSize-off)
			t0 := s.Now()
			fs.main.WriteAt(p, off, n)
			res.Trace.Add(s.Now() - t0)
			res.Calls++
			maybeFsync(k+1, fs.main)
		}
	case WorkloadRead:
		var done int64
		for done < cfg.FileSize {
			n := chunkFor(cfg, cfg.FileSize-done)
			t0 := s.Now()
			got := fs.main.Read(p, n)
			res.Trace.Add(s.Now() - t0)
			res.Calls++
			if got != n {
				panic(fmt.Sprintf("bonnie: short read %d of %d at %d", got, n, done))
			}
			done += int64(got)
		}
	case WorkloadRewrite:
		var pos int64
		for pos < cfg.FileSize {
			n := chunkFor(cfg, cfg.FileSize-pos)
			t0 := s.Now()
			if got := fs.main.Read(p, n); got != n {
				panic(fmt.Sprintf("bonnie: short read %d of %d at %d", got, n, pos))
			}
			fs.main.WriteAt(p, pos, n)
			res.Trace.Add(s.Now() - t0)
			pos += int64(n)
			res.Calls++
			maybeFsync(res.Calls, fs.main)
		}
	case WorkloadMixed:
		readRem := cfg.FileSize / 2
		writeRem := cfg.FileSize - readRem
		writes := 0
		for i := 0; readRem > 0 || writeRem > 0; i++ {
			t0 := s.Now()
			if readRem > 0 && (i%2 == 0 || writeRem == 0) {
				n := chunkFor(cfg, readRem)
				if got := fs.main.Read(p, n); got != n {
					panic(fmt.Sprintf("bonnie: short read %d of %d", got, n))
				}
				readRem -= int64(n)
				res.Trace.Add(s.Now() - t0)
				res.Calls++
			} else {
				n := chunkFor(cfg, writeRem)
				fs.aux.Write(p, n)
				writeRem -= int64(n)
				res.Trace.Add(s.Now() - t0)
				res.Calls++
				writes++
				maybeFsync(writes, fs.aux)
			}
		}
	default: // WorkloadWrite
		var written int64
		for written < cfg.FileSize {
			n := chunkFor(cfg, cfg.FileSize-written)
			t0 := s.Now()
			fs.main.Write(p, n)
			res.Trace.Add(s.Now() - t0)
			written += int64(n)
			res.Calls++
			maybeFsync(res.Calls, fs.main)
		}
	}
}

// finishPhases stamps the I/O phase time and, unless skipped, runs the
// flush/close sequence (the fresh write-side file first for mixed, so
// the dirty data the workload created is what flush measures).
func finishPhases(p *sim.Proc, s *sim.Sim, fs ioFiles, cfg Config, res *Result, start sim.Time) {
	res.WriteElapsed = s.Now() - start
	if cfg.SkipFlushClose {
		return
	}
	if fs.main == nil {
		// The zipf and shared workloads open and close their files inside
		// the I/O phase; there is nothing left to flush, so the later
		// phases coincide with the I/O phase.
		res.FlushElapsed = res.WriteElapsed
		res.CloseElapsed = res.WriteElapsed
		return
	}
	if fs.aux != nil {
		fs.aux.Flush(p)
	}
	fs.main.Flush(p)
	res.FlushElapsed = s.Now() - start
	if fs.aux != nil {
		fs.aux.Close(p)
	}
	fs.main.Close(p)
	res.CloseElapsed = s.Now() - start
}

// RunConcurrentWorkload drives n workers simultaneously, each performing
// the configured workload against its own files (§3.5: removing the BKL
// from the RPC layer should "allow concurrent writes to separate files
// ... from separate client CPUs"). open receives the worker index, so
// workers can land on distinct files of one machine or on distinct
// client machines of a multi-client test bed. Each worker runs the full
// I/O/flush/close sequence.
func RunConcurrentWorkload(s *sim.Sim, target string, open func(worker int) vfs.OpenSet, n int, cfg Config) *ConcurrentResult {
	if n < 1 {
		panic("bonnie: need at least one writer")
	}
	cfg = normalize(cfg)
	cfg.workers = n
	out := &ConcurrentResult{PerWriter: make([]*Result, n)}
	finished := 0
	start := s.Now()
	for i := 0; i < n; i++ {
		i := i
		res := &Result{
			Target:    fmt.Sprintf("%s#%d", target, i),
			Workload:  cfg.Workload,
			FileSize:  cfg.FileSize,
			ChunkSize: cfg.ChunkSize,
			Trace:     stats.NewTrace(target),
		}
		out.PerWriter[i] = res
		s.Go(res.Target, func(p *sim.Proc) {
			fs := openFiles(open(i), cfg)
			runIO(p, s, i, fs, cfg, res)
			finishPhases(p, s, fs, cfg, res, start)
			out.TotalBytes += res.FileSize
			if t := s.Now() - start; t > out.Elapsed {
				out.Elapsed = t
			}
			finished++
		})
	}
	s.Run(cfg.TimeLimit)
	if finished != n {
		panic(fmt.Sprintf("bonnie: %d of %d concurrent workers finished within %v", finished, n, cfg.TimeLimit))
	}
	return out
}

// RunConcurrent drives n writers into n distinct fresh files (the
// write-only form RunConcurrentWorkload generalizes).
func RunConcurrent(s *sim.Sim, target string, open func(writer int) vfs.File, n int, cfg Config) *ConcurrentResult {
	return RunConcurrentWorkload(s, target, func(i int) vfs.OpenSet {
		return vfs.OpenSet{Fresh: func() vfs.File { return open(i) }}
	}, n, cfg)
}

// RunWorkload executes the configured workload on the given simulator
// against files opened from open, driving the virtual clock until the
// run completes.
func RunWorkload(s *sim.Sim, target string, open vfs.OpenSet, cfg Config) *Result {
	if cfg.FileSize <= 0 {
		panic("bonnie: FileSize must be positive")
	}
	cfg = normalize(cfg)
	cfg.workers = 1
	res := &Result{
		Target:    target,
		Workload:  cfg.Workload,
		FileSize:  cfg.FileSize,
		ChunkSize: cfg.ChunkSize,
		Trace:     stats.NewTrace(target),
	}
	finished := false
	s.Go("bonnie", func(p *sim.Proc) {
		fs := openFiles(open, cfg)
		start := s.Now()
		runIO(p, s, 0, fs, cfg, res)
		finishPhases(p, s, fs, cfg, res, start)
		finished = true
	})
	s.Run(cfg.TimeLimit)
	if !finished {
		panic(fmt.Sprintf("bonnie: %s run did not finish within %v (virtual)", target, cfg.TimeLimit))
	}
	return res
}

// Run executes the write benchmark against a fresh file opened by open
// (the write-only form RunWorkload generalizes).
func Run(s *sim.Sim, target string, open func() vfs.File, cfg Config) *Result {
	return RunWorkload(s, target, vfs.OpenSet{Fresh: open}, cfg)
}
