// Package bonnie implements the paper's benchmark (§2.3): the block
// sequential write portion of Bonnie, refined to report what the paper
// needs. It writes fixed-size chunks into a fresh file and reports:
//
//   - three cumulative throughputs — after the last write(), after
//     flush(), and after close() — each computed as total bytes divided
//     by the time from the start of the benchmark to just after that
//     operation ("to make fair comparisons between NFS (which always
//     flushes completely before last close) and local file systems");
//   - actual per-call write() latency, "and not average latency", because
//     jitter is invisible in means (Figures 2–4 are these traces).
package bonnie

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// DefaultChunk is the benchmark's write size: "how quickly an application
// can write 8 KB chunks into a fresh file" (§2.3).
const DefaultChunk = 8192

// Config parameterizes one benchmark run.
type Config struct {
	// FileSize is the total bytes to write.
	FileSize int64
	// ChunkSize is the per-write() size (default 8 KB).
	ChunkSize int
	// TimeLimit aborts a runaway simulation (default 30 virtual minutes).
	TimeLimit sim.Time
	// SkipFlushClose stops after the write phase (local-vs-NFS comparison
	// in Figure 1 uses write-only throughput).
	SkipFlushClose bool
}

// Result is one benchmark run's measurements.
type Result struct {
	Target    string
	FileSize  int64
	ChunkSize int
	Calls     int

	// Elapsed virtual time from benchmark start to just after each phase.
	WriteElapsed sim.Time
	FlushElapsed sim.Time
	CloseElapsed sim.Time

	// Trace holds actual per-call write() latencies.
	Trace *stats.Trace
}

// WriteMBps is throughput counting only write() calls.
func (r *Result) WriteMBps() float64 { return stats.MBps(r.FileSize, r.WriteElapsed) }

// FlushMBps is throughput through the flush operation.
func (r *Result) FlushMBps() float64 { return stats.MBps(r.FileSize, r.FlushElapsed) }

// CloseMBps is throughput through the final close.
func (r *Result) CloseMBps() float64 { return stats.MBps(r.FileSize, r.CloseElapsed) }

// WriteKBps is the Figures 1/7 y-axis unit.
func (r *Result) WriteKBps() float64 { return stats.KBps(r.FileSize, r.WriteElapsed) }

func (r *Result) String() string {
	s := r.Trace.Summary()
	out := fmt.Sprintf("%s: %d MB in %d x %d B writes\n", r.Target, r.FileSize>>20, r.Calls, r.ChunkSize)
	out += fmt.Sprintf("  write:  %7.1f MB/s  (elapsed %v)\n", r.WriteMBps(), r.WriteElapsed)
	if r.FlushElapsed > 0 {
		out += fmt.Sprintf("  flush:  %7.1f MB/s  (elapsed %v)\n", r.FlushMBps(), r.FlushElapsed)
		out += fmt.Sprintf("  close:  %7.1f MB/s  (elapsed %v)\n", r.CloseMBps(), r.CloseElapsed)
	}
	out += fmt.Sprintf("  write() latency: mean %v  median %v  max %v\n", s.Mean, s.Median, s.Max)
	return out
}

// ConcurrentResult aggregates a multi-writer run.
type ConcurrentResult struct {
	PerWriter []*Result
	// Elapsed is when the last writer finished (from simulation start of
	// the run).
	Elapsed sim.Time
	// TotalBytes across all writers.
	TotalBytes int64
}

// AggregateMBps is total bytes over the span until the last writer
// finished — the client-wide write bandwidth §3.5's concurrency argument
// is about.
func (r *ConcurrentResult) AggregateMBps() float64 {
	return stats.MBps(r.TotalBytes, r.Elapsed)
}

// RunConcurrent drives n writers into n distinct files simultaneously
// (§3.5: removing the BKL from the RPC layer should "allow concurrent
// writes to separate files ... from separate client CPUs"). open
// receives the writer index, so writers can land on distinct files of
// one machine or on distinct client machines of a multi-client test bed.
// Each writer runs the full write/flush/close sequence.
func RunConcurrent(s *sim.Sim, target string, open func(writer int) vfs.File, n int, cfg Config) *ConcurrentResult {
	if n < 1 {
		panic("bonnie: need at least one writer")
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = DefaultChunk
	}
	if cfg.TimeLimit == 0 {
		cfg.TimeLimit = 30 * time.Minute
	}
	out := &ConcurrentResult{PerWriter: make([]*Result, n)}
	finished := 0
	start := s.Now()
	for i := 0; i < n; i++ {
		i := i
		res := &Result{
			Target:    fmt.Sprintf("%s#%d", target, i),
			FileSize:  cfg.FileSize,
			ChunkSize: cfg.ChunkSize,
			Trace:     stats.NewTrace(target),
		}
		out.PerWriter[i] = res
		s.Go(res.Target, func(p *sim.Proc) {
			f := open(i)
			var written int64
			for written < cfg.FileSize {
				nb := cfg.ChunkSize
				if rem := cfg.FileSize - written; rem < int64(nb) {
					nb = int(rem)
				}
				t0 := s.Now()
				f.Write(p, nb)
				res.Trace.Add(s.Now() - t0)
				written += int64(nb)
				res.Calls++
			}
			res.WriteElapsed = s.Now() - start
			if !cfg.SkipFlushClose {
				f.Flush(p)
				res.FlushElapsed = s.Now() - start
				f.Close(p)
				res.CloseElapsed = s.Now() - start
			}
			out.TotalBytes += written
			if t := s.Now() - start; t > out.Elapsed {
				out.Elapsed = t
			}
			finished++
		})
	}
	s.Run(cfg.TimeLimit)
	if finished != n {
		panic(fmt.Sprintf("bonnie: %d of %d concurrent writers finished within %v", finished, n, cfg.TimeLimit))
	}
	return out
}

// Run executes the benchmark on the given simulator against a file opened
// by open, driving the virtual clock until the run completes.
func Run(s *sim.Sim, target string, open func() vfs.File, cfg Config) *Result {
	if cfg.FileSize <= 0 {
		panic("bonnie: FileSize must be positive")
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = DefaultChunk
	}
	if cfg.TimeLimit == 0 {
		cfg.TimeLimit = 30 * time.Minute
	}
	res := &Result{
		Target:    target,
		FileSize:  cfg.FileSize,
		ChunkSize: cfg.ChunkSize,
		Trace:     stats.NewTrace(target),
	}
	finished := false
	s.Go("bonnie", func(p *sim.Proc) {
		f := open()
		start := s.Now()
		var written int64
		for written < cfg.FileSize {
			n := cfg.ChunkSize
			if rem := cfg.FileSize - written; rem < int64(n) {
				n = int(rem)
			}
			t0 := s.Now()
			f.Write(p, n)
			res.Trace.Add(s.Now() - t0)
			written += int64(n)
			res.Calls++
		}
		res.WriteElapsed = s.Now() - start
		if !cfg.SkipFlushClose {
			f.Flush(p)
			res.FlushElapsed = s.Now() - start
			f.Close(p)
			res.CloseElapsed = s.Now() - start
		}
		finished = true
	})
	s.Run(cfg.TimeLimit)
	if !finished {
		panic(fmt.Sprintf("bonnie: %s run did not finish within %v (virtual)", target, cfg.TimeLimit))
	}
	return res
}
