package bonnie

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// fakeFile is a deterministic vfs.File: each operation costs a fixed
// latency, flush and close cost fixed extras.
type fakeFile struct {
	s          *sim.Sim
	perWrite   sim.Time
	perRead    sim.Time
	flushCost  sim.Time
	closeCost  sim.Time
	size       int64
	readPos    int64
	reads      int
	rewrites   int
	flushed    bool
	closedOnce bool
}

func (f *fakeFile) Write(p *sim.Proc, n int) {
	p.Sleep(f.perWrite)
	f.size += int64(n)
}
func (f *fakeFile) WriteAt(p *sim.Proc, off int64, n int) {
	p.Sleep(f.perWrite)
	f.rewrites++
	if end := off + int64(n); end > f.size {
		f.size = end
	}
}
func (f *fakeFile) Read(p *sim.Proc, n int) int {
	p.Sleep(f.perRead)
	f.reads++
	if rem := f.size - f.readPos; rem < int64(n) {
		n = int(rem)
	}
	if n < 0 {
		n = 0
	}
	f.readPos += int64(n)
	return n
}
func (f *fakeFile) Flush(p *sim.Proc) { p.Sleep(f.flushCost); f.flushed = true }
func (f *fakeFile) Close(p *sim.Proc) { p.Sleep(f.closeCost); f.closedOnce = true }
func (f *fakeFile) Size() int64       { return f.size }

// fakeOpenSet returns an OpenSet over fakeFiles, recording the files it
// opened.
func fakeOpenSet(s *sim.Sim, perWrite, perRead sim.Time, opened *[]*fakeFile) vfs.OpenSet {
	newFile := func(size int64) *fakeFile {
		ff := &fakeFile{s: s, perWrite: perWrite, perRead: perRead, size: size}
		*opened = append(*opened, ff)
		return ff
	}
	return vfs.OpenSet{
		Fresh:    func() vfs.File { return newFile(0) },
		Existing: func(size int64) vfs.File { return newFile(size) },
	}
}

func TestRunMeasuresPhases(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: 100 * time.Microsecond, flushCost: 10 * time.Millisecond, closeCost: 5 * time.Millisecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 1 << 20})
	if res.Calls != 128 {
		t.Fatalf("calls = %d, want 128", res.Calls)
	}
	if res.WriteElapsed != 128*100*time.Microsecond {
		t.Fatalf("write elapsed = %v", res.WriteElapsed)
	}
	if res.FlushElapsed != res.WriteElapsed+10*time.Millisecond {
		t.Fatalf("flush elapsed = %v", res.FlushElapsed)
	}
	if res.CloseElapsed != res.FlushElapsed+5*time.Millisecond {
		t.Fatalf("close elapsed = %v", res.CloseElapsed)
	}
	if !ff.flushed || !ff.closedOnce {
		t.Fatal("flush/close not invoked")
	}
	// Throughputs are cumulative-from-start, so write > flush > close.
	if !(res.WriteMBps() > res.FlushMBps() && res.FlushMBps() > res.CloseMBps()) {
		t.Fatalf("throughput ordering wrong: %v %v %v", res.WriteMBps(), res.FlushMBps(), res.CloseMBps())
	}
	if res.Trace.Len() != 128 {
		t.Fatalf("trace samples = %d", res.Trace.Len())
	}
	if res.Trace.At(0) != 100*time.Microsecond {
		t.Fatalf("latency sample = %v", res.Trace.At(0))
	}
}

func TestRunSkipFlushClose(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 16384, SkipFlushClose: true})
	if ff.flushed || ff.closedOnce {
		t.Fatal("flush/close should be skipped")
	}
	if res.FlushElapsed != 0 || res.CloseElapsed != 0 {
		t.Fatal("phase times recorded despite skip")
	}
}

func TestRunPartialFinalChunk(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 8192 + 100})
	if res.Calls != 2 {
		t.Fatalf("calls = %d", res.Calls)
	}
	if ff.size != 8292 {
		t.Fatalf("wrote %d bytes", ff.size)
	}
}

func TestRunCustomChunk(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 64 << 10, ChunkSize: 16384})
	if res.Calls != 4 {
		t.Fatalf("calls = %d, want 4 with 16 KB chunks", res.Calls)
	}
}

func TestRunTimeLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on timeout")
		}
	}()
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Hour}
	Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 1 << 20, TimeLimit: time.Second})
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(sim.New(1), "fake", nil, Config{FileSize: 0})
}

func TestResultString(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake-target", func() vfs.File { return ff }, Config{FileSize: 16384})
	out := res.String()
	for _, want := range []string{"fake-target", "write:", "flush:", "close:", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("result string missing %q: %s", want, out)
		}
	}
}

func TestRunConcurrent(t *testing.T) {
	s := sim.New(1)
	open := func(int) vfs.File {
		return &fakeFile{s: s, perWrite: 10 * time.Microsecond, flushCost: time.Millisecond}
	}
	res := RunConcurrent(s, "multi", open, 3, Config{FileSize: 1 << 20})
	if len(res.PerWriter) != 3 {
		t.Fatalf("writers = %d", len(res.PerWriter))
	}
	if res.TotalBytes != 3<<20 {
		t.Fatalf("total = %d", res.TotalBytes)
	}
	for _, w := range res.PerWriter {
		if w.Calls != 128 {
			t.Fatalf("writer calls = %d", w.Calls)
		}
	}
	if res.AggregateMBps() <= 0 {
		t.Fatal("no aggregate throughput")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestWorkloadStringsRoundTrip(t *testing.T) {
	for _, w := range []Workload{WorkloadWrite, WorkloadRewrite, WorkloadRead, WorkloadMixed} {
		got, err := ParseWorkload(w.String())
		if err != nil || got != w {
			t.Fatalf("ParseWorkload(%q) = %v, %v", w.String(), got, err)
		}
	}
	if _, err := ParseWorkload("scan"); err == nil {
		t.Fatal("bad workload name should fail")
	}
	if WorkloadWrite.NeedsExisting() {
		t.Fatal("write workload should not need an existing file")
	}
	for _, w := range []Workload{WorkloadRewrite, WorkloadRead, WorkloadMixed} {
		if !w.NeedsExisting() {
			t.Fatalf("%s workload should need an existing file", w)
		}
	}
}

func TestReadWorkload(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	open := fakeOpenSet(s, 0, 50*time.Microsecond, &opened)
	res := RunWorkload(s, "rd", open, Config{FileSize: 1 << 20, Workload: WorkloadRead})
	if len(opened) != 1 || opened[0].size != 1<<20 {
		t.Fatalf("opened = %+v", opened)
	}
	if res.Calls != 128 || opened[0].reads != 128 {
		t.Fatalf("calls = %d, reads = %d, want 128", res.Calls, opened[0].reads)
	}
	if res.WriteElapsed != 128*50*time.Microsecond {
		t.Fatalf("read phase elapsed = %v", res.WriteElapsed)
	}
	if !opened[0].flushed || !opened[0].closedOnce {
		t.Fatal("flush/close not invoked")
	}
	if res.Workload != WorkloadRead {
		t.Fatalf("workload = %v", res.Workload)
	}
}

func TestRewriteWorkload(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	open := fakeOpenSet(s, 30*time.Microsecond, 20*time.Microsecond, &opened)
	res := RunWorkload(s, "rw", open, Config{FileSize: 1 << 20, Workload: WorkloadRewrite})
	if res.Calls != 128 {
		t.Fatalf("calls = %d", res.Calls)
	}
	ff := opened[0]
	if ff.reads != 128 || ff.rewrites != 128 {
		t.Fatalf("reads = %d rewrites = %d, want 128 each", ff.reads, ff.rewrites)
	}
	// Each rewrite call is one read + one in-place write.
	if res.WriteElapsed != 128*50*time.Microsecond {
		t.Fatalf("rewrite phase elapsed = %v", res.WriteElapsed)
	}
	if ff.size != 1<<20 {
		t.Fatalf("rewrite grew the file to %d", ff.size)
	}
}

func TestMixedWorkload(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	open := fakeOpenSet(s, 30*time.Microsecond, 30*time.Microsecond, &opened)
	res := RunWorkload(s, "mx", open, Config{FileSize: 1 << 20, Workload: WorkloadMixed})
	if len(opened) != 2 {
		t.Fatalf("mixed opened %d files, want 2", len(opened))
	}
	rd, wr := opened[0], opened[1]
	if rd.size != 512<<10 {
		t.Fatalf("read file size = %d, want half the total", rd.size)
	}
	// Half the bytes read from the existing file, half written fresh.
	if rd.reads != 64 || wr.size != 512<<10 {
		t.Fatalf("reads = %d, written = %d", rd.reads, wr.size)
	}
	if res.Calls != 128 {
		t.Fatalf("calls = %d", res.Calls)
	}
	// Both files flush and close.
	if !rd.flushed || !wr.flushed || !rd.closedOnce || !wr.closedOnce {
		t.Fatal("flush/close not invoked on both files")
	}
}

func TestWorkloadWithoutExistingOpenerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	ff := &fakeFile{s: s}
	RunWorkload(s, "rd", vfs.OpenSet{Fresh: func() vfs.File { return ff }},
		Config{FileSize: 1 << 20, Workload: WorkloadRead})
}

func TestRunConcurrentWorkloadRead(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	res := RunConcurrentWorkload(s, "multi",
		func(int) vfs.OpenSet { return fakeOpenSet(s, 0, 10*time.Microsecond, &opened) },
		3, Config{FileSize: 1 << 20, Workload: WorkloadRead})
	if len(res.PerWriter) != 3 || len(opened) != 3 {
		t.Fatalf("writers = %d, opened = %d", len(res.PerWriter), len(opened))
	}
	if res.TotalBytes != 3<<20 {
		t.Fatalf("total = %d", res.TotalBytes)
	}
	for _, w := range res.PerWriter {
		if w.Calls != 128 {
			t.Fatalf("worker calls = %d", w.Calls)
		}
	}
}

func TestRunConcurrentBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunConcurrent(sim.New(1), "x", nil, 0, Config{FileSize: 1})
}
