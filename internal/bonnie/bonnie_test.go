package bonnie

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// fakeFile is a deterministic vfs.File: each operation costs a fixed
// latency, flush and close cost fixed extras.
type fakeFile struct {
	s          *sim.Sim
	perWrite   sim.Time
	perRead    sim.Time
	flushCost  sim.Time
	closeCost  sim.Time
	size       int64
	readPos    int64
	reads      int
	rewrites   int
	flushes    int
	flushed    bool
	closedOnce bool

	// writeOffsets/readOffsets record the per-call offsets, so the
	// random-workload tests can check permutation coverage and
	// determinism.
	writeOffsets []int64
	readOffsets  []int64
}

func (f *fakeFile) Write(p *sim.Proc, n int) {
	f.WriteAt(p, f.size, n)
}
func (f *fakeFile) WriteAt(p *sim.Proc, off int64, n int) {
	p.Sleep(f.perWrite)
	f.rewrites++
	f.writeOffsets = append(f.writeOffsets, off)
	if end := off + int64(n); end > f.size {
		f.size = end
	}
}
func (f *fakeFile) Read(p *sim.Proc, n int) int {
	got := f.ReadAt(p, f.readPos, n)
	f.readPos += int64(got)
	return got
}
func (f *fakeFile) ReadAt(p *sim.Proc, off int64, n int) int {
	p.Sleep(f.perRead)
	f.reads++
	f.readOffsets = append(f.readOffsets, off)
	if rem := f.size - off; rem < int64(n) {
		n = int(rem)
	}
	if n < 0 {
		n = 0
	}
	return n
}
func (f *fakeFile) Flush(p *sim.Proc) { p.Sleep(f.flushCost); f.flushes++; f.flushed = true }
func (f *fakeFile) Close(p *sim.Proc) { p.Sleep(f.closeCost); f.closedOnce = true }
func (f *fakeFile) Size() int64       { return f.size }

// fakeOpenSet returns an OpenSet over fakeFiles, recording the files it
// opened.
func fakeOpenSet(s *sim.Sim, perWrite, perRead sim.Time, opened *[]*fakeFile) vfs.OpenSet {
	newFile := func(size int64) *fakeFile {
		ff := &fakeFile{s: s, perWrite: perWrite, perRead: perRead, size: size}
		*opened = append(*opened, ff)
		return ff
	}
	return vfs.OpenSet{
		Fresh:    func() vfs.File { return newFile(0) },
		Existing: func(size int64) vfs.File { return newFile(size) },
	}
}

func TestRunMeasuresPhases(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: 100 * time.Microsecond, flushCost: 10 * time.Millisecond, closeCost: 5 * time.Millisecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 1 << 20})
	if res.Calls != 128 {
		t.Fatalf("calls = %d, want 128", res.Calls)
	}
	if res.WriteElapsed != 128*100*time.Microsecond {
		t.Fatalf("write elapsed = %v", res.WriteElapsed)
	}
	if res.FlushElapsed != res.WriteElapsed+10*time.Millisecond {
		t.Fatalf("flush elapsed = %v", res.FlushElapsed)
	}
	if res.CloseElapsed != res.FlushElapsed+5*time.Millisecond {
		t.Fatalf("close elapsed = %v", res.CloseElapsed)
	}
	if !ff.flushed || !ff.closedOnce {
		t.Fatal("flush/close not invoked")
	}
	// Throughputs are cumulative-from-start, so write > flush > close.
	if !(res.WriteMBps() > res.FlushMBps() && res.FlushMBps() > res.CloseMBps()) {
		t.Fatalf("throughput ordering wrong: %v %v %v", res.WriteMBps(), res.FlushMBps(), res.CloseMBps())
	}
	if res.Trace.Len() != 128 {
		t.Fatalf("trace samples = %d", res.Trace.Len())
	}
	if res.Trace.At(0) != 100*time.Microsecond {
		t.Fatalf("latency sample = %v", res.Trace.At(0))
	}
}

func TestRunSkipFlushClose(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 16384, SkipFlushClose: true})
	if ff.flushed || ff.closedOnce {
		t.Fatal("flush/close should be skipped")
	}
	if res.FlushElapsed != 0 || res.CloseElapsed != 0 {
		t.Fatal("phase times recorded despite skip")
	}
}

func TestRunPartialFinalChunk(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 8192 + 100})
	if res.Calls != 2 {
		t.Fatalf("calls = %d", res.Calls)
	}
	if ff.size != 8292 {
		t.Fatalf("wrote %d bytes", ff.size)
	}
}

func TestRunCustomChunk(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 64 << 10, ChunkSize: 16384})
	if res.Calls != 4 {
		t.Fatalf("calls = %d, want 4 with 16 KB chunks", res.Calls)
	}
}

func TestRunTimeLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on timeout")
		}
	}()
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Hour}
	Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 1 << 20, TimeLimit: time.Second})
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(sim.New(1), "fake", nil, Config{FileSize: 0})
}

func TestResultString(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake-target", func() vfs.File { return ff }, Config{FileSize: 16384})
	out := res.String()
	for _, want := range []string{"fake-target", "write:", "flush:", "close:", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("result string missing %q: %s", want, out)
		}
	}
}

func TestRunConcurrent(t *testing.T) {
	s := sim.New(1)
	open := func(int) vfs.File {
		return &fakeFile{s: s, perWrite: 10 * time.Microsecond, flushCost: time.Millisecond}
	}
	res := RunConcurrent(s, "multi", open, 3, Config{FileSize: 1 << 20})
	if len(res.PerWriter) != 3 {
		t.Fatalf("writers = %d", len(res.PerWriter))
	}
	if res.TotalBytes != 3<<20 {
		t.Fatalf("total = %d", res.TotalBytes)
	}
	for _, w := range res.PerWriter {
		if w.Calls != 128 {
			t.Fatalf("writer calls = %d", w.Calls)
		}
	}
	if res.AggregateMBps() <= 0 {
		t.Fatal("no aggregate throughput")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestWorkloadStringsRoundTrip(t *testing.T) {
	all := []Workload{WorkloadWrite, WorkloadRewrite, WorkloadRead, WorkloadMixed,
		WorkloadRandRead, WorkloadRandWrite, WorkloadDB}
	for _, w := range all {
		got, err := ParseWorkload(w.String())
		if err != nil || got != w {
			t.Fatalf("ParseWorkload(%q) = %v, %v", w.String(), got, err)
		}
	}
	if WorkloadWrite.NeedsExisting() {
		t.Fatal("write workload should not need an existing file")
	}
	for _, w := range all[1:] {
		if !w.NeedsExisting() {
			t.Fatalf("%s workload should need an existing file", w)
		}
	}
	for _, w := range all {
		random := w == WorkloadRandRead || w == WorkloadRandWrite || w == WorkloadDB
		if w.Random() != random {
			t.Fatalf("%s.Random() = %v", w, w.Random())
		}
	}
}

// ParseWorkload must reject unknown names with an error that names the
// full vocabulary, and never panic.
func TestParseWorkloadErrors(t *testing.T) {
	for _, bad := range []string{"", "scan", "WRITE", "rand", "random", "write,read", " write"} {
		w, err := ParseWorkload(bad)
		if err == nil {
			t.Fatalf("ParseWorkload(%q) = %v, want error", bad, w)
		}
		for _, name := range []string{"write", "rewrite", "read", "mixed", "randread", "randwrite", "db"} {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error %q does not name workload %q", err, name)
			}
		}
	}
}

// A random-write run must touch every chunk exactly once, in an order
// that is not sequential but is identical across reruns with the same
// seed — and differs across seeds and across workers.
func TestRandWriteWorkloadPermutation(t *testing.T) {
	offsets := func(seed int64, worker int) []int64 {
		s := sim.New(seed)
		var opened []*fakeFile
		open := fakeOpenSet(s, 10*time.Microsecond, 0, &opened)
		if worker == 0 {
			RunWorkload(s, "rw", open, Config{FileSize: 1 << 20, Workload: WorkloadRandWrite})
		} else {
			RunConcurrentWorkload(s, "rw", func(int) vfs.OpenSet { return open }, worker+1,
				Config{FileSize: 1 << 20, Workload: WorkloadRandWrite})
		}
		return opened[len(opened)-1].writeOffsets
	}
	a := offsets(1, 0)
	if len(a) != 128 {
		t.Fatalf("wrote %d chunks, want 128", len(a))
	}
	// Every chunk exactly once.
	seen := make(map[int64]bool, len(a))
	sequential := true
	for i, off := range a {
		if off%8192 != 0 || off < 0 || off >= 1<<20 {
			t.Fatalf("offset %d not chunk-aligned in file", off)
		}
		if seen[off] {
			t.Fatalf("chunk at %d written twice", off)
		}
		seen[off] = true
		if off != int64(i)*8192 {
			sequential = false
		}
	}
	if sequential {
		t.Fatal("random workload visited chunks in sequential order")
	}
	// Same seed, same permutation; different seed or worker, different.
	if b := offsets(1, 0); !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different permutations")
	}
	if b := offsets(2, 0); reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced the same permutation")
	}
	if b := offsets(1, 1); reflect.DeepEqual(a, b) {
		t.Fatal("different workers produced the same permutation")
	}
}

// A random read visits every chunk exactly once via ReadAt and never
// moves the sequential read position.
func TestRandReadWorkload(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	open := fakeOpenSet(s, 0, 10*time.Microsecond, &opened)
	res := RunWorkload(s, "rr", open, Config{FileSize: 1 << 20, Workload: WorkloadRandRead})
	if res.Calls != 128 {
		t.Fatalf("calls = %d", res.Calls)
	}
	ff := opened[0]
	if ff.reads != 128 || ff.readPos != 0 {
		t.Fatalf("reads = %d, readPos = %d; ReadAt must not move the position", ff.reads, ff.readPos)
	}
	seen := make(map[int64]bool)
	for _, off := range ff.readOffsets {
		if seen[off] {
			t.Fatalf("chunk at %d read twice", off)
		}
		seen[off] = true
	}
	if len(seen) != 128 {
		t.Fatalf("covered %d distinct chunks, want 128", len(seen))
	}
}

// The db workload must fsync on the FsyncEvery cadence, recording the
// count and the time spent, with the documented default.
func TestDBWorkloadFsyncCadence(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	open := fakeOpenSet(s, 10*time.Microsecond, 0, &opened)
	flushCost := 3 * time.Millisecond
	openWithFlush := vfs.OpenSet{
		Fresh: open.Fresh,
		Existing: func(size int64) vfs.File {
			f := open.Existing(size).(*fakeFile)
			f.flushCost = flushCost
			return f
		},
	}
	// 256 chunks, fsync every 64: 4 group commits during the I/O phase,
	// plus the final flush/close sequence.
	res := RunWorkload(s, "db", openWithFlush, Config{
		FileSize: 2 << 20, Workload: WorkloadDB, FsyncEvery: 64,
	})
	if res.FsyncCount != 4 {
		t.Fatalf("fsync count = %d, want 4", res.FsyncCount)
	}
	if res.FsyncTime != 4*flushCost {
		t.Fatalf("fsync time = %v, want %v", res.FsyncTime, 4*flushCost)
	}
	if got := opened[0].flushes; got != 5 { // 4 group commits + finishPhases
		t.Fatalf("file flushed %d times, want 5", got)
	}
	// The I/O phase includes the group commits; the trace does not.
	if res.WriteElapsed != 256*10*time.Microsecond+4*flushCost {
		t.Fatalf("write elapsed = %v", res.WriteElapsed)
	}
	if res.Trace.Summary().Max >= flushCost {
		t.Fatal("group-commit latency leaked into the per-call trace")
	}
	// Unset cadence defaults to DefaultDBFsyncEvery for db only.
	res = RunWorkload(s, "db", openWithFlush, Config{FileSize: 2 << 20, Workload: WorkloadDB})
	if want := 256 / DefaultDBFsyncEvery; res.FsyncCount != want {
		t.Fatalf("default cadence fsync count = %d, want %d", res.FsyncCount, want)
	}
	// Non-db workloads never fsync unless asked...
	res = RunWorkload(s, "w", openWithFlush, Config{FileSize: 2 << 20})
	if res.FsyncCount != 0 {
		t.Fatalf("write workload issued %d fsyncs without FsyncEvery", res.FsyncCount)
	}
	// ...and honor an explicit cadence.
	res = RunWorkload(s, "w", openWithFlush, Config{FileSize: 2 << 20, FsyncEvery: 128})
	if res.FsyncCount != 2 {
		t.Fatalf("write workload with FsyncEvery=128 issued %d fsyncs, want 2", res.FsyncCount)
	}
}

func TestNegativeFsyncEveryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	ff := &fakeFile{s: s}
	Run(s, "x", func() vfs.File { return ff }, Config{FileSize: 8192, FsyncEvery: -1})
}

func TestReadWorkload(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	open := fakeOpenSet(s, 0, 50*time.Microsecond, &opened)
	res := RunWorkload(s, "rd", open, Config{FileSize: 1 << 20, Workload: WorkloadRead})
	if len(opened) != 1 || opened[0].size != 1<<20 {
		t.Fatalf("opened = %+v", opened)
	}
	if res.Calls != 128 || opened[0].reads != 128 {
		t.Fatalf("calls = %d, reads = %d, want 128", res.Calls, opened[0].reads)
	}
	if res.WriteElapsed != 128*50*time.Microsecond {
		t.Fatalf("read phase elapsed = %v", res.WriteElapsed)
	}
	if !opened[0].flushed || !opened[0].closedOnce {
		t.Fatal("flush/close not invoked")
	}
	if res.Workload != WorkloadRead {
		t.Fatalf("workload = %v", res.Workload)
	}
}

func TestRewriteWorkload(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	open := fakeOpenSet(s, 30*time.Microsecond, 20*time.Microsecond, &opened)
	res := RunWorkload(s, "rw", open, Config{FileSize: 1 << 20, Workload: WorkloadRewrite})
	if res.Calls != 128 {
		t.Fatalf("calls = %d", res.Calls)
	}
	ff := opened[0]
	if ff.reads != 128 || ff.rewrites != 128 {
		t.Fatalf("reads = %d rewrites = %d, want 128 each", ff.reads, ff.rewrites)
	}
	// Each rewrite call is one read + one in-place write.
	if res.WriteElapsed != 128*50*time.Microsecond {
		t.Fatalf("rewrite phase elapsed = %v", res.WriteElapsed)
	}
	if ff.size != 1<<20 {
		t.Fatalf("rewrite grew the file to %d", ff.size)
	}
}

func TestMixedWorkload(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	open := fakeOpenSet(s, 30*time.Microsecond, 30*time.Microsecond, &opened)
	res := RunWorkload(s, "mx", open, Config{FileSize: 1 << 20, Workload: WorkloadMixed})
	if len(opened) != 2 {
		t.Fatalf("mixed opened %d files, want 2", len(opened))
	}
	rd, wr := opened[0], opened[1]
	if rd.size != 512<<10 {
		t.Fatalf("read file size = %d, want half the total", rd.size)
	}
	// Half the bytes read from the existing file, half written fresh.
	if rd.reads != 64 || wr.size != 512<<10 {
		t.Fatalf("reads = %d, written = %d", rd.reads, wr.size)
	}
	if res.Calls != 128 {
		t.Fatalf("calls = %d", res.Calls)
	}
	// Both files flush and close.
	if !rd.flushed || !wr.flushed || !rd.closedOnce || !wr.closedOnce {
		t.Fatal("flush/close not invoked on both files")
	}
}

func TestWorkloadWithoutExistingOpenerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	ff := &fakeFile{s: s}
	RunWorkload(s, "rd", vfs.OpenSet{Fresh: func() vfs.File { return ff }},
		Config{FileSize: 1 << 20, Workload: WorkloadRead})
}

func TestRunConcurrentWorkloadRead(t *testing.T) {
	s := sim.New(1)
	var opened []*fakeFile
	res := RunConcurrentWorkload(s, "multi",
		func(int) vfs.OpenSet { return fakeOpenSet(s, 0, 10*time.Microsecond, &opened) },
		3, Config{FileSize: 1 << 20, Workload: WorkloadRead})
	if len(res.PerWriter) != 3 || len(opened) != 3 {
		t.Fatalf("writers = %d, opened = %d", len(res.PerWriter), len(opened))
	}
	if res.TotalBytes != 3<<20 {
		t.Fatalf("total = %d", res.TotalBytes)
	}
	for _, w := range res.PerWriter {
		if w.Calls != 128 {
			t.Fatalf("worker calls = %d", w.Calls)
		}
	}
}

func TestRunConcurrentBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunConcurrent(sim.New(1), "x", nil, 0, Config{FileSize: 1})
}

// fakeNames is a deterministic vfs.Namespace over one flat directory of
// fakeFiles: OpenByName hands every caller the same file object, so the
// shared workload's workers genuinely collide on it.
type fakeNames struct {
	s        *sim.Sim
	perWrite sim.Time
	perRead  sim.Time
	files    map[string]*fakeFile
}

func (n *fakeNames) OpenByName(p *sim.Proc, name string) vfs.File {
	if n.files == nil {
		n.files = make(map[string]*fakeFile)
	}
	f, ok := n.files[name]
	if !ok {
		f = &fakeFile{s: n.s, perWrite: n.perWrite, perRead: n.perRead}
		n.files[name] = f
	}
	return f
}
func (n *fakeNames) Stat(p *sim.Proc, name string) (int64, bool) {
	f, ok := n.files[name]
	if !ok {
		return 0, false
	}
	return f.size, true
}
func (n *fakeNames) Remove(p *sim.Proc, name string) bool {
	_, ok := n.files[name]
	delete(n.files, name)
	return ok
}

func TestSharedWriterPlacement(t *testing.T) {
	cases := []struct {
		n, pct  int
		writers []int
	}{
		{1, 50, []int{0}}, // rounding yields no writer; worker 0 steps in
		{2, 50, []int{1}}, // odd indices write at 50%
		{4, 50, []int{1, 3}},
		{4, 25, []int{3}},
		{4, 100, []int{0, 1, 2, 3}},
		{3, 10, []int{0}}, // 3*10/100 = 0 writers; worker 0 steps in
	}
	for _, c := range cases {
		var got []int
		for w := 0; w < c.n; w++ {
			if sharedIsWriter(w, c.n, c.pct) {
				got = append(got, w)
			}
		}
		if !reflect.DeepEqual(got, c.writers) {
			t.Errorf("writers(n=%d, pct=%d) = %v, want %v", c.n, c.pct, got, c.writers)
		}
		if p := sharedPrimer(c.n, c.pct); p != c.writers[0] {
			t.Errorf("primer(n=%d, pct=%d) = %d, want %d", c.n, c.pct, p, c.writers[0])
		}
	}
}

// TestSharedWorkload drives four workers (two writers, two readers under
// the default 50% split) at one shared fakeFile and checks the collision
// actually happens: one file, writer bytes cover it front to back,
// readers consume their full budget, flushes follow the cadence.
func TestSharedWorkload(t *testing.T) {
	s := sim.New(1)
	names := &fakeNames{s: s, perWrite: 100 * time.Microsecond, perRead: 10 * time.Microsecond}
	const size = 1 << 20
	res := RunConcurrentWorkload(s, "shared",
		func(int) vfs.OpenSet { return vfs.OpenSet{Names: names} },
		4, Config{FileSize: size, Workload: WorkloadShared})
	if len(names.files) != 1 {
		t.Fatalf("%d files created, want 1 (everyone shares)", len(names.files))
	}
	f := names.files[sharedFileName]
	span := int64(sharedSpanChunks(Config{FileSize: size, ChunkSize: DefaultChunk})) * DefaultChunk
	if f.size != span {
		t.Fatalf("shared file size = %d, want the %d-byte span (budget/%d)", f.size, span, sharedPasses)
	}
	// Two writers x 128 chunks each, all offsets within the file.
	if f.rewrites != 2*128 {
		t.Fatalf("chunk writes = %d, want 256", f.rewrites)
	}
	for _, off := range f.writeOffsets {
		if off < 0 || off >= span {
			t.Fatalf("write offset %d outside the span [0, %d)", off, span)
		}
	}
	// Default cadence: flush every DefaultSharedFsyncEvery chunk writes.
	wantFlushes := 2 * (128 / DefaultSharedFsyncEvery)
	if f.flushes != wantFlushes {
		t.Fatalf("flushes = %d, want %d", f.flushes, wantFlushes)
	}
	if res.TotalBytes != 4*size {
		t.Fatalf("total bytes = %d, want %d (every worker moves its full budget)", res.TotalBytes, 4*size)
	}
	for i, w := range res.PerWriter {
		if w.FileSize != size {
			t.Errorf("worker %d moved %d bytes, want %d", i, w.FileSize, size)
		}
	}
}

// TestSharedSingleWorkerIsWriter pins the degenerate run: one worker
// must still produce the file (reader-only runs would hang polling).
func TestSharedSingleWorkerIsWriter(t *testing.T) {
	s := sim.New(1)
	names := &fakeNames{s: s, perWrite: 100 * time.Microsecond}
	res := RunWorkload(s, "shared1", vfs.OpenSet{Names: names},
		Config{FileSize: 1 << 18, Workload: WorkloadShared})
	span := int64(sharedSpanChunks(Config{FileSize: 1 << 18, ChunkSize: DefaultChunk})) * DefaultChunk
	if f := names.files[sharedFileName]; f == nil || f.size != span {
		t.Fatalf("single worker did not prime the shared file to its %d-byte span: %+v", span, f)
	}
	if res.FileSize != 1<<18 {
		t.Fatalf("moved %d bytes, want %d", res.FileSize, 1<<18)
	}
}

// TestSharedReaderLagPacing checks SharedReadLag inserts virtual time
// between reader passes: with a lag the run takes strictly longer than
// without, and both complete.
func TestSharedReaderLagPacing(t *testing.T) {
	elapsed := func(lag sim.Time) sim.Time {
		s := sim.New(1)
		// Slow writes: the file primes slowly, so the reader needs several
		// partial passes — the inter-pass gap where the lag applies.
		names := &fakeNames{s: s, perWrite: time.Millisecond, perRead: 10 * time.Microsecond}
		res := RunConcurrentWorkload(s, "shared",
			func(int) vfs.OpenSet { return vfs.OpenSet{Names: names} },
			2, Config{FileSize: 1 << 19, Workload: WorkloadShared, SharedReadLag: lag})
		// Worker 0 is the reader (worker 1 writes at the default 50%
		// split); its I/O phase is where the lag accumulates.
		return res.PerWriter[0].WriteElapsed
	}
	without, with := elapsed(0), elapsed(50*time.Millisecond)
	if with <= without {
		t.Fatalf("lagged run (%v) not slower than back-to-back run (%v)", with, without)
	}
}
