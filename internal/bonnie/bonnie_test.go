package bonnie

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// fakeFile is a deterministic vfs.File: each write costs a fixed latency,
// flush and close cost fixed extras.
type fakeFile struct {
	s          *sim.Sim
	perWrite   sim.Time
	flushCost  sim.Time
	closeCost  sim.Time
	size       int64
	flushed    bool
	closedOnce bool
}

func (f *fakeFile) Write(p *sim.Proc, n int) {
	p.Sleep(f.perWrite)
	f.size += int64(n)
}
func (f *fakeFile) Flush(p *sim.Proc) { p.Sleep(f.flushCost); f.flushed = true }
func (f *fakeFile) Close(p *sim.Proc) { p.Sleep(f.closeCost); f.closedOnce = true }
func (f *fakeFile) Size() int64       { return f.size }

func TestRunMeasuresPhases(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: 100 * time.Microsecond, flushCost: 10 * time.Millisecond, closeCost: 5 * time.Millisecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 1 << 20})
	if res.Calls != 128 {
		t.Fatalf("calls = %d, want 128", res.Calls)
	}
	if res.WriteElapsed != 128*100*time.Microsecond {
		t.Fatalf("write elapsed = %v", res.WriteElapsed)
	}
	if res.FlushElapsed != res.WriteElapsed+10*time.Millisecond {
		t.Fatalf("flush elapsed = %v", res.FlushElapsed)
	}
	if res.CloseElapsed != res.FlushElapsed+5*time.Millisecond {
		t.Fatalf("close elapsed = %v", res.CloseElapsed)
	}
	if !ff.flushed || !ff.closedOnce {
		t.Fatal("flush/close not invoked")
	}
	// Throughputs are cumulative-from-start, so write > flush > close.
	if !(res.WriteMBps() > res.FlushMBps() && res.FlushMBps() > res.CloseMBps()) {
		t.Fatalf("throughput ordering wrong: %v %v %v", res.WriteMBps(), res.FlushMBps(), res.CloseMBps())
	}
	if res.Trace.Len() != 128 {
		t.Fatalf("trace samples = %d", res.Trace.Len())
	}
	if res.Trace.At(0) != 100*time.Microsecond {
		t.Fatalf("latency sample = %v", res.Trace.At(0))
	}
}

func TestRunSkipFlushClose(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 16384, SkipFlushClose: true})
	if ff.flushed || ff.closedOnce {
		t.Fatal("flush/close should be skipped")
	}
	if res.FlushElapsed != 0 || res.CloseElapsed != 0 {
		t.Fatal("phase times recorded despite skip")
	}
}

func TestRunPartialFinalChunk(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 8192 + 100})
	if res.Calls != 2 {
		t.Fatalf("calls = %d", res.Calls)
	}
	if ff.size != 8292 {
		t.Fatalf("wrote %d bytes", ff.size)
	}
}

func TestRunCustomChunk(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 64 << 10, ChunkSize: 16384})
	if res.Calls != 4 {
		t.Fatalf("calls = %d, want 4 with 16 KB chunks", res.Calls)
	}
}

func TestRunTimeLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on timeout")
		}
	}()
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Hour}
	Run(s, "fake", func() vfs.File { return ff }, Config{FileSize: 1 << 20, TimeLimit: time.Second})
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(sim.New(1), "fake", nil, Config{FileSize: 0})
}

func TestResultString(t *testing.T) {
	s := sim.New(1)
	ff := &fakeFile{s: s, perWrite: time.Microsecond}
	res := Run(s, "fake-target", func() vfs.File { return ff }, Config{FileSize: 16384})
	out := res.String()
	for _, want := range []string{"fake-target", "write:", "flush:", "close:", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("result string missing %q: %s", want, out)
		}
	}
}

func TestRunConcurrent(t *testing.T) {
	s := sim.New(1)
	open := func(int) vfs.File {
		return &fakeFile{s: s, perWrite: 10 * time.Microsecond, flushCost: time.Millisecond}
	}
	res := RunConcurrent(s, "multi", open, 3, Config{FileSize: 1 << 20})
	if len(res.PerWriter) != 3 {
		t.Fatalf("writers = %d", len(res.PerWriter))
	}
	if res.TotalBytes != 3<<20 {
		t.Fatalf("total = %d", res.TotalBytes)
	}
	for _, w := range res.PerWriter {
		if w.Calls != 128 {
			t.Fatalf("writer calls = %d", w.Calls)
		}
	}
	if res.AggregateMBps() <= 0 {
		t.Fatal("no aggregate throughput")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestRunConcurrentBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunConcurrent(sim.New(1), "x", nil, 0, Config{FileSize: 1})
}
