package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/stats"
)

// resultColumns is the CSV column order for per-run Results. It is part
// of the output schema documented in docs/experiments.md — extend at the
// end, never reorder.
var resultColumns = []string{
	"name", "server", "config", "file_mb", "wsize", "cpus", "cache_mb",
	"jumbo", "seed", "repeat", "calls", "write_mbps", "write_kbps",
	"flush_mbps", "close_mbps", "mean_lat_us", "median_lat_us",
	"p95_lat_us", "p99_lat_us", "max_lat_us", "soft_flushes",
	"hard_blocks", "rpcs_sent", "retransmits", "server_net_mbps",
	"send_cpu_us", "clients", "cache_bytes", "agg_mbps", "fairness",
	"min_client_mbps", "max_client_mbps",
}

func (r Result) csvRow() []string {
	return []string{
		r.Name, r.Server, r.Config,
		fmt.Sprint(r.FileMB), fmt.Sprint(r.WSize), fmt.Sprint(r.CPUs),
		fmt.Sprint(r.CacheMB), fmt.Sprint(r.Jumbo), fmt.Sprint(r.Seed),
		fmt.Sprint(r.Repeat), fmt.Sprint(r.Calls),
		fmt.Sprintf("%.2f", r.WriteMBps), fmt.Sprintf("%.1f", r.WriteKBps),
		fmt.Sprintf("%.2f", r.FlushMBps), fmt.Sprintf("%.2f", r.CloseMBps),
		fmt.Sprintf("%.1f", r.MeanLatUs), fmt.Sprintf("%.1f", r.MedianLatUs),
		fmt.Sprintf("%.1f", r.P95LatUs), fmt.Sprintf("%.1f", r.P99LatUs),
		fmt.Sprintf("%.1f", r.MaxLatUs),
		fmt.Sprint(r.SoftFlushes), fmt.Sprint(r.HardBlocks),
		fmt.Sprint(r.RPCsSent), fmt.Sprint(r.Retransmits),
		fmt.Sprintf("%.2f", r.ServerNetMBps), fmt.Sprintf("%.1f", r.SendCPUUs),
		fmt.Sprint(r.Clients), fmt.Sprint(r.CacheBytes),
		fmt.Sprintf("%.2f", r.AggMBps), fmt.Sprintf("%.3f", r.Fairness),
		fmt.Sprintf("%.2f", r.MinClientMBps), fmt.Sprintf("%.2f", r.MaxClientMBps),
	}
}

// ResultsCSV renders results as CSV, one row per run, in input order.
func ResultsCSV(results []Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(resultColumns, ",") + "\n")
	for _, r := range results {
		b.WriteString(strings.Join(r.csvRow(), ",") + "\n")
	}
	return b.String()
}

// CSVHeader returns the results CSV header row (for streaming writers).
func CSVHeader() string { return strings.Join(resultColumns, ",") + "\n" }

// CSVRow returns one result's CSV row (for streaming writers).
func CSVRow(r Result) string { return strings.Join(r.csvRow(), ",") + "\n" }

// ResultsJSON renders results as an indented JSON array.
func ResultsJSON(results []Result) string {
	if results == nil {
		results = []Result{}
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		panic(err) // Result has no unmarshalable fields
	}
	return string(buf) + "\n"
}

// ResultsTable renders results as an aligned human-readable table with
// the high-signal columns.
func ResultsTable(results []Result) string {
	t := stats.NewTable("",
		"server", "config", "wl", "MB", "wsize", "cpus", "cl", "cacheMB", "jumbo", "tr", "loss", "seed",
		"write MB/s", "flush MB/s", "agg MB/s", "fair", "mean us", "p99 us", "soft", "rpcs", "rexmt")
	for _, r := range results {
		t.AddRow(r.Server, r.Config, r.Workload,
			fmt.Sprint(r.FileMB), fmt.Sprint(r.WSize), fmt.Sprint(r.CPUs),
			fmt.Sprint(r.Clients), fmt.Sprint(r.CacheMB), fmt.Sprint(r.Jumbo),
			r.Transport, fmt.Sprintf("%g", r.Loss),
			fmt.Sprint(r.Seed),
			fmt.Sprintf("%.1f", r.WriteMBps), fmt.Sprintf("%.1f", r.FlushMBps),
			fmt.Sprintf("%.1f", r.AggMBps), fmt.Sprintf("%.3f", r.Fairness),
			fmt.Sprintf("%.1f", r.MeanLatUs), fmt.Sprintf("%.1f", r.P99LatUs),
			fmt.Sprint(r.SoftFlushes), fmt.Sprint(r.RPCsSent), fmt.Sprint(r.Retransmits))
	}
	return t.String()
}

var aggregateColumns = []string{
	"key", "server", "config", "file_mb", "wsize", "cpus", "cache_mb",
	"jumbo", "n", "write_mbps_mean", "write_mbps_stddev",
	"flush_mbps_mean", "flush_mbps_stddev", "mean_lat_us_mean",
	"mean_lat_us_stddev", "p99_lat_us_mean", "p99_lat_us_stddev",
	"clients", "cache_bytes", "agg_mbps_mean", "agg_mbps_stddev",
	"fairness_mean", "fairness_stddev",
}

// AggregatesCSV renders per-cell summaries as CSV.
func AggregatesCSV(aggs []Aggregate) string {
	var b strings.Builder
	b.WriteString(strings.Join(aggregateColumns, ",") + "\n")
	for _, a := range aggs {
		row := []string{
			a.Key, a.Server, a.Config,
			fmt.Sprint(a.FileMB), fmt.Sprint(a.WSize), fmt.Sprint(a.CPUs),
			fmt.Sprint(a.CacheMB), fmt.Sprint(a.Jumbo), fmt.Sprint(a.N),
			fmt.Sprintf("%.2f", a.WriteMBpsMean), fmt.Sprintf("%.3f", a.WriteMBpsStddev),
			fmt.Sprintf("%.2f", a.FlushMBpsMean), fmt.Sprintf("%.3f", a.FlushMBpsStddev),
			fmt.Sprintf("%.1f", a.MeanLatUsMean), fmt.Sprintf("%.2f", a.MeanLatUsStddev),
			fmt.Sprintf("%.1f", a.P99LatUsMean), fmt.Sprintf("%.2f", a.P99LatUsStddev),
			fmt.Sprint(a.Clients), fmt.Sprint(a.CacheBytes),
			fmt.Sprintf("%.2f", a.AggMBpsMean), fmt.Sprintf("%.3f", a.AggMBpsStddev),
			fmt.Sprintf("%.3f", a.FairnessMean), fmt.Sprintf("%.4f", a.FairnessStddev),
		}
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

// AggregatesJSON renders per-cell summaries as an indented JSON array.
func AggregatesJSON(aggs []Aggregate) string {
	if aggs == nil {
		aggs = []Aggregate{}
	}
	buf, err := json.MarshalIndent(aggs, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(buf) + "\n"
}

// AggregatesTable renders per-cell summaries as an aligned table.
func AggregatesTable(aggs []Aggregate) string {
	t := stats.NewTable("",
		"server", "config", "wl", "MB", "cl", "cacheMB", "tr", "loss", "n",
		"write MB/s", "±", "agg MB/s", "±", "fair", "mean us", "±", "p99 us", "±")
	for _, a := range aggs {
		t.AddRow(a.Server, a.Config, a.Workload, fmt.Sprint(a.FileMB),
			fmt.Sprint(a.Clients), fmt.Sprint(a.CacheMB),
			a.Transport, fmt.Sprintf("%g", a.Loss), fmt.Sprint(a.N),
			fmt.Sprintf("%.1f", a.WriteMBpsMean), fmt.Sprintf("%.2f", a.WriteMBpsStddev),
			fmt.Sprintf("%.1f", a.AggMBpsMean), fmt.Sprintf("%.2f", a.AggMBpsStddev),
			fmt.Sprintf("%.3f", a.FairnessMean),
			fmt.Sprintf("%.1f", a.MeanLatUsMean), fmt.Sprintf("%.2f", a.MeanLatUsStddev),
			fmt.Sprintf("%.1f", a.P99LatUsMean), fmt.Sprintf("%.2f", a.P99LatUsStddev))
	}
	return t.String()
}
