package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/sim"
)

// The zipf axes land in distinct key cells at non-default values and
// keep every historical key byte-identical: a scenario that sets none of
// FileCount/ZipfS/Mix/AcTimeout must render exactly as before this PR.
func TestZipfKeyBackCompatAndNewAxes(t *testing.T) {
	base := Grid{FileSizesMB: []int{5}}.Expand()[0]
	for _, frag := range []string{"/fc", "/z", "/ac", "/c1"} {
		if strings.Contains(base.Key(), frag) {
			t.Fatalf("default key %q mentions a zipf axis (%q)", base.Key(), frag)
		}
	}
	zipf := base
	zipf.Workload = bonnie.WorkloadZipf
	if !strings.HasSuffix(zipf.Key(), "/zipf") {
		t.Fatalf("zipf key = %q", zipf.Key())
	}
	counted := zipf
	counted.FileCount = 1000
	if !strings.HasSuffix(counted.Key(), "/zipf/fc1000") {
		t.Fatalf("file-count key = %q", counted.Key())
	}
	skewed := zipf
	skewed.ZipfS = 0.8
	if !strings.HasSuffix(skewed.Key(), "/zipf/z0.8") {
		t.Fatalf("skew key = %q", skewed.Key())
	}
	uniform := zipf
	uniform.ZipfS = bonnie.ZipfUniform
	if !strings.HasSuffix(uniform.Key(), "/zipf/zuni") {
		t.Fatalf("uniform key = %q", uniform.Key())
	}
	mixed := zipf
	mixed.Mix = bonnie.OpMix{Create: 20, Write: 20, Read: 20, Stat: 20, Remove: 20}
	if !strings.HasSuffix(mixed.Key(), "/zipf/c20w20r20s20d20") {
		t.Fatalf("mix key = %q", mixed.Key())
	}
	noac := zipf
	noac.AcTimeout = core.AcOff
	if !strings.HasSuffix(noac.Key(), "/zipf/acoff") {
		t.Fatalf("noac key = %q", noac.Key())
	}
	pinned := zipf
	pinned.AcTimeout = 3 * time.Second
	if !strings.HasSuffix(pinned.Key(), "/zipf/ac3s") {
		t.Fatalf("pinned-ac key = %q", pinned.Key())
	}
	keys := map[string]bool{}
	for _, sc := range []Scenario{base, zipf, counted, skewed, uniform, mixed, noac, pinned} {
		keys[sc.Key()] = true
	}
	if len(keys) != 8 {
		t.Fatalf("axes collapsed into %d keys: %v", len(keys), keys)
	}
}

// Grid.Expand crosses the new axes like any other, and the scalar Mix
// knob reaches every scenario.
func TestZipfGridAxes(t *testing.T) {
	g := Grid{
		FileSizesMB: []int{4},
		Workloads:   []bonnie.Workload{bonnie.WorkloadZipf},
		FileCounts:  []int{100, 1000},
		ZipfSs:      []float64{bonnie.DefaultZipfS, bonnie.ZipfUniform},
		AcTimeouts:  []sim.Time{0, core.AcOff},
		Mix:         bonnie.OpMix{Create: 25, Write: 25, Read: 25, Stat: 25},
	}
	scens := g.Expand()
	if len(scens) != 8 {
		t.Fatalf("expanded %d scenarios, want 8", len(scens))
	}
	for _, sc := range scens {
		if sc.Mix != g.Mix {
			t.Fatalf("mix not threaded: %+v", sc)
		}
	}
}

// Zipf results must carry the metadata-path fields: LOOKUP/CREATE/REMOVE
// counters, attribute-cache accounting, and the JSON schema columns —
// while non-zipf runs keep them all zero (the CSV schema is frozen, so
// these fields are JSON-only).
func TestZipfResultFields(t *testing.T) {
	sc := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{1},
		Workloads:   []bonnie.Workload{bonnie.WorkloadZipf},
	}.Expand()[0]
	r := RunScenario(sc)
	if r.Workload != "zipf" {
		t.Fatalf("workload = %q", r.Workload)
	}
	if r.LookupRPCs == 0 || r.CreateRPCs == 0 || r.RemoveRPCs == 0 {
		t.Fatalf("metadata RPC counters empty: %+v", r)
	}
	if total := r.AttrCacheHits + r.AttrCacheMisses; total == 0 {
		t.Fatal("attribute cache never consulted")
	}
	if r.AttrCacheHitRate <= 0 || r.AttrCacheHitRate >= 1 {
		t.Fatalf("hit rate %.3f outside (0, 1)", r.AttrCacheHitRate)
	}
	js := ResultsJSON([]Result{r})
	for _, col := range []string{`"lookup_rpcs"`, `"getattr_rpcs"`, `"create_rpcs"`,
		`"remove_rpcs"`, `"attr_cache_hits"`, `"attr_cache_misses"`, `"attr_cache_hit_rate"`} {
		if !strings.Contains(js, col) {
			t.Fatalf("JSON schema missing %s", col)
		}
	}
	// Disabling the cache zeroes the hit side but still counts lookups.
	noac := sc
	noac.AcTimeout = core.AcOff
	rn := RunScenario(noac)
	if rn.AttrCacheHits != 0 || rn.AttrCacheHitRate != 0 {
		t.Fatalf("noac run recorded cache hits: %+v", rn)
	}
	if rn.GetattrRPCs <= r.GetattrRPCs {
		t.Fatalf("noac sent %d GETATTRs vs %d cached; revalidation should cost RPCs",
			rn.GetattrRPCs, r.GetattrRPCs)
	}
	// Plain write runs never touch the metadata path.
	sc.Workload = bonnie.WorkloadWrite
	rw := RunScenario(sc)
	if rw.LookupRPCs != 0 || rw.GetattrRPCs != 0 || rw.CreateRPCs != 0 ||
		rw.RemoveRPCs != 0 || rw.AttrCacheHits != 0 || rw.AttrCacheMisses != 0 {
		t.Fatalf("write-only run recorded metadata activity: %+v", rw)
	}
}

// The zipf op stream derives every draw from the scenario seed and the
// worker index, so results are byte-identical at any pool size — the CI
// determinism job diffs -workers 1 vs 8.
func TestZipfDeterministicAcrossWorkers(t *testing.T) {
	g := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{1},
		Clients:     []int{1, 2},
		Workloads:   []bonnie.Workload{bonnie.WorkloadZipf},
		AcTimeouts:  []sim.Time{0, core.AcOff},
	}
	scens := g.Expand()
	if len(scens) != 4 {
		t.Fatalf("expanded %d scenarios, want 4", len(scens))
	}
	r1 := (&Runner{Workers: 1}).Run(scens)
	r8 := (&Runner{Workers: 8}).Run(scens)
	if ResultsCSV(r1) != ResultsCSV(r8) {
		t.Fatal("zipf CSV differs between 1 and 8 workers")
	}
	if ResultsJSON(r1) != ResultsJSON(r8) {
		t.Fatal("zipf JSON differs between 1 and 8 workers")
	}
	// Rerunning the same scenarios reproduces the same bytes.
	again := (&Runner{Workers: 3}).Run(scens)
	if ResultsJSON(r1) != ResultsJSON(again) {
		t.Fatal("zipf JSON differs across reruns")
	}
}

// testdata/golden_zipf.csv pins the zipf workload's op stream: the file
// was re-captured after the weak-cache-consistency change (LOOKUP,
// GETATTR and CREATE replies carry the 92-byte fattr3 with the change
// attribute, shifting every metadata wire timing) with
//
//	nfssweep -workload zipf -sizes 4 -clients 1,2 -actimeout off,default \
//	    -format csv -quiet
//
// and any drift in the Zipfian draw order, the attribute-cache clock, or
// the metadata costs shows up as a byte diff here.
func TestZipfSweepMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight 4 MB zipf sims")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_zipf.csv"))
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{
		Servers:        []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:        []ClientConfig{{"stock", core.Stock244Config()}},
		FileSizesMB:    []int{4},
		Clients:        []int{1, 2},
		Workloads:      []bonnie.Workload{bonnie.WorkloadZipf},
		AcTimeouts:     []sim.Time{core.AcOff, 0},
		SkipFlushClose: true,
	}
	for _, workers := range []int{1, 8} {
		got := ResultsCSV((&Runner{Workers: workers}).Run(g.Expand()))
		if got != string(want) {
			t.Fatalf("zipf sweep (workers=%d) diverged from golden CSV:\n--- want ---\n%s--- got ---\n%s",
				workers, want, got)
		}
	}
}
