package harness

import (
	"repro/internal/stats"
)

// Aggregate is the summary of one grid cell's repeated runs: mean and
// population standard deviation over every repeat/seed of the cell.
type Aggregate struct {
	Key     string `json:"key"`
	Server  string `json:"server"`
	Config  string `json:"config"`
	FileMB  int    `json:"file_mb"`
	WSize   int    `json:"wsize"`
	CPUs    int    `json:"cpus"`
	CacheMB int    `json:"cache_mb"`
	Jumbo   bool   `json:"jumbo"`
	N       int    `json:"n"`

	WriteMBpsMean   float64 `json:"write_mbps_mean"`
	WriteMBpsStddev float64 `json:"write_mbps_stddev"`
	FlushMBpsMean   float64 `json:"flush_mbps_mean"`
	FlushMBpsStddev float64 `json:"flush_mbps_stddev"`
	MeanLatUsMean   float64 `json:"mean_lat_us_mean"`
	MeanLatUsStddev float64 `json:"mean_lat_us_stddev"`
	P99LatUsMean    float64 `json:"p99_lat_us_mean"`
	P99LatUsStddev  float64 `json:"p99_lat_us_stddev"`

	// Multi-client scale-out columns (appended after the original
	// schema). CacheBytes is exact; CacheMB above truncates.
	Clients        int     `json:"clients"`
	CacheBytes     int64   `json:"cache_bytes"`
	AggMBpsMean    float64 `json:"agg_mbps_mean"`
	AggMBpsStddev  float64 `json:"agg_mbps_stddev"`
	FairnessMean   float64 `json:"fairness_mean"`
	FairnessStddev float64 `json:"fairness_stddev"`

	// Transport and workload axes (JSON only; the CSV schema is frozen).
	Transport string  `json:"transport"`
	Loss      float64 `json:"loss"`
	Workload  string  `json:"workload"`
}

// AggregateResults folds per-run Results into one Aggregate per grid
// cell (grouping by Scenario.Key, i.e. every axis except seed and
// repeat), in the order cells first appear in results — which, for
// Runner output, is grid order.
func AggregateResults(results []Result) []Aggregate {
	byKey := make(map[string][]Result, len(results))
	order := make([]string, 0, len(results))
	for _, r := range results {
		k := r.Scenario.Key()
		byKey[k] = append(byKey[k], r)
		order = append(order, k)
	}
	out := make([]Aggregate, 0, len(byKey))
	for _, k := range appearanceOrder(order) {
		rs := byKey[k]
		pick := func(f func(Result) float64) (mean, sd float64) {
			xs := make([]float64, len(rs))
			for i, r := range rs {
				xs[i] = f(r)
			}
			return stats.MeanStddev(xs)
		}
		a := Aggregate{
			Key:        k,
			Server:     rs[0].Server,
			Config:     rs[0].Config,
			FileMB:     rs[0].FileMB,
			WSize:      rs[0].WSize,
			CPUs:       rs[0].CPUs,
			CacheMB:    rs[0].CacheMB,
			Jumbo:      rs[0].Jumbo,
			N:          len(rs),
			Clients:    rs[0].Clients,
			CacheBytes: rs[0].CacheBytes,
			Transport:  rs[0].Transport,
			Loss:       rs[0].Loss,
			Workload:   rs[0].Workload,
		}
		a.WriteMBpsMean, a.WriteMBpsStddev = pick(func(r Result) float64 { return r.WriteMBps })
		a.FlushMBpsMean, a.FlushMBpsStddev = pick(func(r Result) float64 { return r.FlushMBps })
		a.MeanLatUsMean, a.MeanLatUsStddev = pick(func(r Result) float64 { return r.MeanLatUs })
		a.P99LatUsMean, a.P99LatUsStddev = pick(func(r Result) float64 { return r.P99LatUs })
		a.AggMBpsMean, a.AggMBpsStddev = pick(func(r Result) float64 { return r.AggMBps })
		a.FairnessMean, a.FairnessStddev = pick(func(r Result) float64 { return r.Fairness })
		out = append(out, a)
	}
	return out
}
