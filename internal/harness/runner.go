package harness

import (
	"runtime"
	"sync"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/stats"
)

// Result is one scenario's measurements, flattened for machine-readable
// output. Latencies are microseconds (the paper's unit); throughputs use
// the paper's decimal MB/KB.
type Result struct {
	Name    string `json:"name"`
	Server  string `json:"server"`
	Config  string `json:"config"`
	FileMB  int    `json:"file_mb"`
	WSize   int    `json:"wsize"`
	CPUs    int    `json:"cpus"`
	CacheMB int    `json:"cache_mb"`
	Jumbo   bool   `json:"jumbo"`
	Seed    int64  `json:"seed"`
	Repeat  int    `json:"repeat"`

	Calls     int     `json:"calls"`
	WriteMBps float64 `json:"write_mbps"`
	WriteKBps float64 `json:"write_kbps"`
	FlushMBps float64 `json:"flush_mbps"` // 0 when SkipFlushClose
	CloseMBps float64 `json:"close_mbps"` // 0 when SkipFlushClose

	MeanLatUs   float64 `json:"mean_lat_us"`
	MedianLatUs float64 `json:"median_lat_us"`
	P95LatUs    float64 `json:"p95_lat_us"`
	P99LatUs    float64 `json:"p99_lat_us"`
	MaxLatUs    float64 `json:"max_lat_us"`

	SoftFlushes int64 `json:"soft_flushes"` // writer-forced whole-inode flushes
	HardBlocks  int64 `json:"hard_blocks"`  // writer sleeps on the mount hard limit
	RPCsSent    int64 `json:"rpcs_sent"`
	Retransmits int64 `json:"retransmits"`

	ServerNetMBps float64 `json:"server_net_mbps"` // sustained server ingest
	SendCPUUs     float64 `json:"send_cpu_us"`     // total sock_sendmsg CPU

	// Scenario, Trace, and SendCPU carry the full inputs, the raw
	// per-call latency trace, and the exact sock_sendmsg total for
	// programmatic consumers; they are excluded from serialized output.
	Scenario Scenario      `json:"-"`
	Trace    *stats.Trace  `json:"-"`
	SendCPU  time.Duration `json:"-"`
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// RunScenario executes one scenario on a fresh, private test bed. It is
// safe to call concurrently: nothing is shared between invocations.
func RunScenario(sc Scenario) Result {
	opts := nfssim.Options{
		Seed:       sc.Seed,
		Server:     sc.Server,
		Client:     sc.Config.Config,
		ClientCPUs: sc.ClientCPUs,
		CacheLimit: sc.CacheLimit,
		Jumbo:      sc.Jumbo,
	}
	if sc.WSize != 0 {
		opts.Client.WSize = sc.WSize
	}
	tb := nfssim.NewTestbed(opts)
	res := bonnie.Run(tb.Sim, sc.Name(), tb.Open, bonnie.Config{
		FileSize:       int64(sc.FileMB) << 20,
		TimeLimit:      sc.TimeLimit,
		SkipFlushClose: sc.SkipFlushClose,
	})
	sum := res.Trace.Summary()
	out := Result{
		Name:    sc.Name(),
		Server:  sc.Server.String(),
		Config:  sc.Config.Name,
		FileMB:  sc.FileMB,
		WSize:   opts.Client.WSize,
		CPUs:    sc.ClientCPUs,
		CacheMB: int(sc.CacheLimit >> 20),
		Jumbo:   sc.Jumbo,
		Seed:    sc.Seed,
		Repeat:  sc.Repeat,

		Calls:     res.Calls,
		WriteMBps: res.WriteMBps(),
		WriteKBps: res.WriteKBps(),
		FlushMBps: res.FlushMBps(),
		CloseMBps: res.CloseMBps(),

		MeanLatUs:   usec(sum.Mean),
		MedianLatUs: usec(sum.Median),
		P95LatUs:    usec(sum.P95),
		P99LatUs:    usec(sum.P99),
		MaxLatUs:    usec(sum.Max),

		SendCPUUs: usec(tb.Sim.Profiler().Total("sock_sendmsg")),

		Scenario: sc,
		Trace:    res.Trace,
		SendCPU:  tb.Sim.Profiler().Total("sock_sendmsg"),
	}
	if tb.Client != nil {
		out.SoftFlushes = tb.Client.SoftFlushes
		out.HardBlocks = tb.Client.HardBlocks
		out.RPCsSent = tb.Client.RPCsSent
	}
	if tb.Transport != nil {
		out.Retransmits = tb.Transport.Stats().Retransmits
	}
	if tb.Server != nil {
		out.ServerNetMBps = tb.Server.NetworkThroughputMBps()
	}
	return out
}

// Runner executes scenarios across a worker pool. Each worker builds its
// own test bed per scenario, so there is no shared simulator state; the
// result order is the scenario order regardless of worker count or
// completion interleaving.
type Runner struct {
	// Workers is the pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// OnResult, if set, is called with each Result in strict scenario
	// order as soon as it and all its predecessors have completed —
	// streaming output stays byte-identical across worker counts.
	OnResult func(Result)
	// KeepTraces retains each Result's raw per-call latency Trace (one
	// sample per write; ~460 KB for a 450 MB run). Off by default: the
	// latency percentiles are already flattened into the Result, and a
	// large grid would otherwise pin every trace until the sweep ends.
	// RunScenario always returns the trace for single-run callers.
	KeepTraces bool
}

// Run executes every scenario and returns the results in scenario order.
func (r *Runner) Run(scenarios []Scenario) []Result {
	n := len(scenarios)
	if n == 0 {
		return nil
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]Result, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = RunScenario(scenarios[i])
				if !r.KeepTraces {
					results[i].Trace = nil
				}
				close(done[i])
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	// Emit in order: wait for scenario i before touching i+1, so the
	// callback sees the same sequence whether workers is 1 or 64.
	for i := 0; i < n; i++ {
		<-done[i]
		if r.OnResult != nil {
			r.OnResult(results[i])
		}
	}
	wg.Wait()
	return results
}
