package harness

import (
	"runtime"
	"slices"
	"sync"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// Result is one scenario's measurements, flattened for machine-readable
// output. Latencies are microseconds (the paper's unit); throughputs use
// the paper's decimal MB/KB. For multi-client scenarios the write/flush/
// close throughputs are per-client means; AggMBps, Fairness, and the
// min/max client columns describe the fleet.
type Result struct {
	Name    string `json:"name"`
	Server  string `json:"server"`
	Config  string `json:"config"`
	FileMB  int    `json:"file_mb"`
	WSize   int    `json:"wsize"`
	CPUs    int    `json:"cpus"`
	CacheMB int    `json:"cache_mb"`
	Jumbo   bool   `json:"jumbo"`
	Seed    int64  `json:"seed"`
	Repeat  int    `json:"repeat"`

	Calls     int     `json:"calls"`
	WriteMBps float64 `json:"write_mbps"`
	WriteKBps float64 `json:"write_kbps"`
	FlushMBps float64 `json:"flush_mbps"` // 0 when SkipFlushClose
	CloseMBps float64 `json:"close_mbps"` // 0 when SkipFlushClose

	MeanLatUs   float64 `json:"mean_lat_us"`
	MedianLatUs float64 `json:"median_lat_us"`
	P95LatUs    float64 `json:"p95_lat_us"`
	P99LatUs    float64 `json:"p99_lat_us"`
	MaxLatUs    float64 `json:"max_lat_us"`

	SoftFlushes int64 `json:"soft_flushes"` // writer-forced whole-inode flushes
	HardBlocks  int64 `json:"hard_blocks"`  // writer sleeps on the mount hard limit
	RPCsSent    int64 `json:"rpcs_sent"`
	Retransmits int64 `json:"retransmits"`

	// Transport axes (JSON only; the CSV schema is frozen, and these
	// also appear in Name at non-default values). Retransmits above
	// counts whole-RPC resends under UDP and stream segment resends
	// under TCP; DupReplies counts suppressed duplicate replies.
	Transport  string  `json:"transport"`
	Loss       float64 `json:"loss"`
	DupReplies int64   `json:"dup_replies"`
	LostFrames int64   `json:"lost_frames"` // fragments the loss model dropped

	// Read-path results (JSON only; the CSV schema is frozen, and the
	// workload also appears in Name at non-default values). For read
	// workloads the write_* throughput columns carry the I/O phase —
	// i.e. read throughput — as documented in docs/experiments.md.
	// ReadHits/ReadMisses are page-cache read lookups across all client
	// machines; a miss includes pages whose fetch was already in flight.
	Workload   string `json:"workload"`
	ReadRPCs   int64  `json:"read_rpcs"`
	ReadHits   int64  `json:"read_hits"`
	ReadMisses int64  `json:"read_misses"`

	// Durability results (JSON only; the CSV schema is frozen).
	// CommitRPCs counts COMMIT calls across all client machines (fsync or
	// close after UNSTABLE write replies); FsyncCount/FsyncUs are the
	// group-commit flushes the FsyncEvery cadence issued during the I/O
	// phase and the total virtual time spent inside them, summed over
	// writers.
	CommitRPCs int64   `json:"commit_rpcs"`
	FsyncCount int64   `json:"fsync_count"`
	FsyncUs    float64 `json:"fsync_us"`

	// Metadata-path results (JSON only; the CSV schema is frozen). RPC
	// counters sum over all client machines; the hit rate is hits over
	// all attribute-cache consultations (0 when the workload never
	// consults it). The zipf axes (file count, skew, mix, ac timeout)
	// appear in Name at non-default values.
	LookupRPCs       int64   `json:"lookup_rpcs"`
	GetattrRPCs      int64   `json:"getattr_rpcs"`
	CreateRPCs       int64   `json:"create_rpcs"`
	RemoveRPCs       int64   `json:"remove_rpcs"`
	AttrCacheHits    int64   `json:"attr_cache_hits"`
	AttrCacheMisses  int64   `json:"attr_cache_misses"`
	AttrCacheHitRate float64 `json:"attr_cache_hit_rate"`

	ServerNetMBps float64 `json:"server_net_mbps"` // sustained server ingest
	SendCPUUs     float64 `json:"send_cpu_us"`     // total sock_sendmsg CPU

	// Multi-client scale-out metrics (CSV columns appended after the
	// original schema). CacheBytes is the exact per-machine cache limit
	// (CacheMB truncates sub-MiB limits). AggMBps is total bytes over
	// the span until the last client finished; Fairness is Jain's index
	// over the per-client throughputs. For Clients == 1 these collapse
	// to the single client's throughput and 1.0.
	Clients       int     `json:"clients"`
	CacheBytes    int64   `json:"cache_bytes"`
	AggMBps       float64 `json:"agg_mbps"`
	Fairness      float64 `json:"fairness"`
	MinClientMBps float64 `json:"min_client_mbps"`
	MaxClientMBps float64 `json:"max_client_mbps"`

	// Cache-coherence results (JSON only; the CSV schema is frozen). The
	// consistency mode, writer percentage, and read lag also appear in
	// Name at non-default values. StaleReads counts page-cache hits
	// served during opens that skipped revalidation while the server's
	// change counter had already moved on; Invalidations counts cached
	// inodes dropped on change mismatch (WCC pre-op or open-time
	// revalidation); ChangeBumps is the server's total change-attribute
	// increments — the ground-truth write traffic the clients' counters
	// are judged against.
	Consistency   string `json:"consistency"`
	StaleReads    int64  `json:"stale_reads"`
	Invalidations int64  `json:"invalidations"`
	ChangeBumps   int64  `json:"change_bumps"`

	// Slot-table convoying (JSON only; the CSV schema is frozen).
	// SlotWaits counts RPCs across all client machines that found their
	// transport's slot table full and queued; SlotWaitUs is the total
	// virtual time spent queued. At fleet scale these expose whether the
	// server or the per-client slot table is the bottleneck.
	SlotWaits  int64   `json:"slot_waits"`
	SlotWaitUs float64 `json:"slot_wait_us"`

	// PerClientMBps is each client machine's throughput (write-phase, or
	// through close when the scenario runs the full sequence), in
	// machine order.
	PerClientMBps []float64 `json:"per_client_mbps"`

	// Scenario, Trace, and SendCPU carry the full inputs, the raw
	// per-call latency trace, and the exact sock_sendmsg total for
	// programmatic consumers; they are excluded from serialized output.
	// For Clients > 1 the trace is the per-writer traces concatenated in
	// machine order: distribution statistics (Summary, histograms) are
	// valid, but order-sensitive analyses (Slope, SpikePeriod, QuietGap)
	// are not — each writer's call sequence restarts partway through.
	Scenario Scenario      `json:"-"`
	Trace    *stats.Trace  `json:"-"`
	SendCPU  time.Duration `json:"-"`
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// RunScenario executes one scenario on a fresh, private test bed. It is
// safe to call concurrently: nothing is shared between invocations. With
// Clients > 1 it drives one bonnie writer per client machine in a single
// simulation, all against the shared server.
func RunScenario(sc Scenario) Result {
	return RunScenarioOn(sc, nil)
}

// RunScenarioOn is RunScenario with a prepare hook: after the test bed is
// assembled and before the workload starts, prepare may schedule
// virtual-time events against it (the chaos engine injects faults this
// way). A nil prepare is RunScenario.
func RunScenarioOn(sc Scenario, prepare func(*nfssim.Testbed)) Result {
	clients := sc.Clients
	if clients < 1 {
		clients = 1
	}
	opts := nfssim.Options{
		Seed:       sc.Seed,
		Server:     sc.Server,
		Client:     sc.Config.Config,
		Clients:    clients,
		ClientCPUs: sc.ClientCPUs,
		CacheLimit: sc.CacheLimit,
		Jumbo:      sc.Jumbo,
		Transport:  sc.Transport,
		Loss:       sc.Loss,
		NetJitter:  sc.NetJitter,
		// The shared workload is only meaningful when every machine
		// mounts the same export.
		SharedNamespace: sc.Workload == bonnie.WorkloadShared,
	}
	opts.Client.Consistency = sc.Consistency
	if sc.WSize != 0 {
		opts.Client.WSize = sc.WSize
	}
	if sc.AcTimeout != 0 {
		if sc.AcTimeout < 0 {
			opts.Client.AcRegMin = core.AcOff
		} else {
			// A positive timeout pins the window: no adaptive aging.
			opts.Client.AcRegMin = sc.AcTimeout
			opts.Client.AcRegMax = sc.AcTimeout
		}
	}
	tb := nfssim.NewTestbed(opts)
	if prepare != nil {
		prepare(tb)
	}
	bcfg := bonnie.Config{
		FileSize:        int64(sc.FileMB) << 20,
		Workload:        sc.Workload,
		FsyncEvery:      sc.FsyncEvery,
		FileCount:       sc.FileCount,
		ZipfS:           sc.ZipfS,
		Mix:             sc.Mix,
		SharedWriterPct: sc.SharedWriterPct,
		SharedReadLag:   sc.SharedReadLag,
		TimeLimit:       sc.TimeLimit,
		SkipFlushClose:  sc.SkipFlushClose,
	}

	out := Result{
		Name:    sc.Name(),
		Server:  sc.Server.String(),
		Config:  sc.Config.Name,
		FileMB:  sc.FileMB,
		WSize:   opts.Client.WSize,
		CPUs:    sc.ClientCPUs,
		CacheMB: int(sc.CacheLimit >> 20),
		Jumbo:   sc.Jumbo,
		Seed:    sc.Seed,
		Repeat:  sc.Repeat,

		Clients:    clients,
		CacheBytes: sc.CacheLimit,

		Transport:   sc.Transport.String(),
		Loss:        sc.Loss,
		Workload:    sc.Workload.String(),
		Consistency: sc.Consistency.String(),

		Scenario: sc,
	}

	if clients == 1 {
		res := bonnie.RunWorkload(tb.Sim, sc.Name(), tb.OpenSet(), bcfg)
		out.Calls = res.Calls
		out.WriteMBps = res.WriteMBps()
		out.WriteKBps = res.WriteKBps()
		out.FlushMBps = res.FlushMBps()
		out.CloseMBps = res.CloseMBps()
		out.FsyncCount = int64(res.FsyncCount)
		out.FsyncUs = usec(res.FsyncTime)
		out.Trace = res.Trace
		out.AggMBps = clientMBps(res, sc.SkipFlushClose)
		out.PerClientMBps = []float64{out.AggMBps}
		out.MinClientMBps, out.MaxClientMBps = out.AggMBps, out.AggMBps
		out.Fairness = 1
	} else {
		res := bonnie.RunConcurrentWorkload(tb.Sim, sc.Name(),
			func(i int) vfs.OpenSet { return tb.Machine(i).OpenSet() }, clients, bcfg)
		trace := stats.NewTrace(sc.Name())
		var writeSum, kbSum, flushSum, closeSum float64
		for _, w := range res.PerWriter {
			out.Calls += w.Calls
			writeSum += w.WriteMBps()
			kbSum += w.WriteKBps()
			flushSum += w.FlushMBps()
			closeSum += w.CloseMBps()
			out.FsyncCount += int64(w.FsyncCount)
			out.FsyncUs += usec(w.FsyncTime)
			out.PerClientMBps = append(out.PerClientMBps, clientMBps(w, sc.SkipFlushClose))
			for _, s := range w.Trace.Samples() {
				trace.Add(s)
			}
		}
		n := float64(clients)
		out.WriteMBps = writeSum / n
		out.WriteKBps = kbSum / n
		out.FlushMBps = flushSum / n
		out.CloseMBps = closeSum / n
		out.Trace = trace
		out.AggMBps = res.AggregateMBps()
		out.Fairness = stats.JainFairness(out.PerClientMBps)
		out.MinClientMBps = slices.Min(out.PerClientMBps)
		out.MaxClientMBps = slices.Max(out.PerClientMBps)
	}

	sum := out.Trace.Summary()
	out.MeanLatUs = usec(sum.Mean)
	out.MedianLatUs = usec(sum.Median)
	out.P95LatUs = usec(sum.P95)
	out.P99LatUs = usec(sum.P99)
	out.MaxLatUs = usec(sum.Max)
	out.SendCPU = tb.Sim.Profiler().Total("sock_sendmsg")
	out.SendCPUUs = usec(out.SendCPU)

	for _, m := range tb.Machines {
		if m.Client != nil {
			out.SoftFlushes += m.Client.SoftFlushes
			out.HardBlocks += m.Client.HardBlocks
			out.RPCsSent += m.Client.RPCsSent
			out.ReadRPCs += m.Client.ReadRPCs
			out.CommitRPCs += m.Client.CommitRPCs
			out.LookupRPCs += m.Client.LookupRPCs
			out.GetattrRPCs += m.Client.GetattrRPCs
			out.CreateRPCs += m.Client.CreateRPCs
			out.RemoveRPCs += m.Client.RemoveRPCs
			out.AttrCacheHits += m.Client.AttrCacheHits
			out.AttrCacheMisses += m.Client.AttrCacheMisses
			out.StaleReads += m.Client.StaleReads
			out.Invalidations += m.Client.Invalidations
		}
		out.ReadHits += m.Cache.ReadHits
		out.ReadMisses += m.Cache.ReadMisses
		if m.Transport != nil {
			st := m.Transport.Stats()
			out.Retransmits += st.Retransmits
			out.DupReplies += st.DuplicateReplies
			out.SlotWaits += st.SlotWaits
			out.SlotWaitUs += usec(time.Duration(st.SlotWaitTime))
		}
	}
	if total := out.AttrCacheHits + out.AttrCacheMisses; total > 0 {
		out.AttrCacheHitRate = float64(out.AttrCacheHits) / float64(total)
	}
	out.LostFrames = tb.Net.Totals().FramesDropped
	if tb.Server != nil {
		out.ServerNetMBps = tb.Server.NetworkThroughputMBps()
		out.ChangeBumps = tb.Server.Names().ChangeBumps
	}
	return out
}

// clientMBps is one writer's end-to-end throughput: through close for
// full runs, write-phase only otherwise — the quantity the fairness
// index and per-client columns report.
func clientMBps(r *bonnie.Result, skipFlushClose bool) float64 {
	if skipFlushClose {
		return r.WriteMBps()
	}
	return r.CloseMBps()
}

// Runner executes scenarios across a worker pool. Each worker builds its
// own test bed per scenario, so there is no shared simulator state; the
// result order is the scenario order regardless of worker count or
// completion interleaving.
type Runner struct {
	// Workers is the pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// OnResult, if set, is called with each Result in strict scenario
	// order as soon as it and all its predecessors have completed —
	// streaming output stays byte-identical across worker counts.
	OnResult func(Result)
	// KeepTraces retains each Result's raw per-call latency Trace (one
	// sample per write; ~460 KB for a 450 MB run). Off by default: the
	// latency percentiles are already flattened into the Result, and a
	// large grid would otherwise pin every trace until the sweep ends.
	// RunScenario always returns the trace for single-run callers.
	KeepTraces bool
}

// Run executes every scenario and returns the results in scenario order.
func (r *Runner) Run(scenarios []Scenario) []Result {
	n := len(scenarios)
	if n == 0 {
		return nil
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]Result, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = RunScenario(scenarios[i])
				if !r.KeepTraces {
					results[i].Trace = nil
				}
				close(done[i])
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	// Emit in order: wait for scenario i before touching i+1, so the
	// callback sees the same sequence whether workers is 1 or 64.
	for i := 0; i < n; i++ {
		<-done[i]
		if r.OnResult != nil {
			r.OnResult(results[i])
		}
	}
	wg.Wait()
	return results
}
