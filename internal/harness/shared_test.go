package harness

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/sim"
)

// sharedGrid is the shared-workload sweep the golden CSV and the
// determinism test both expand: the enhanced client fleet on the filer,
// one 2 MB shared file among 4 clients, the writer share at its default
// and at 25%, crossed with the three consistency modes at a fixed 40 ms
// attribute-cache window.
func sharedGrid() Grid {
	return Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{2},
		Clients:     []int{4},
		Workloads:   []bonnie.Workload{bonnie.WorkloadShared},
		AcTimeouts:  []sim.Time{sim.Time(40 * time.Millisecond)},
		Sharings:    []int{50, 25},
		Consistencies: []core.ConsistencyMode{
			core.ConsistencyTTL, core.ConsistencyStrict, core.ConsistencyNoac,
		},
		SkipFlushClose: true,
	}
}

// The shared workload races writers against readers on one file, which
// is exactly where scheduling nondeterminism would show first: the CSV
// and JSON must come out byte-identical at any worker count and across
// reruns.
func TestSharedSweepDeterminism(t *testing.T) {
	scens := sharedGrid().Expand()
	r1 := (&Runner{Workers: 1}).Run(scens)
	r8 := (&Runner{Workers: 8}).Run(scens)
	if ResultsCSV(r1) != ResultsCSV(r8) {
		t.Fatal("shared CSV differs between 1 and 8 workers")
	}
	if ResultsJSON(r1) != ResultsJSON(r8) {
		t.Fatal("shared JSON differs between 1 and 8 workers")
	}
	again := (&Runner{Workers: 3}).Run(scens)
	if ResultsJSON(r1) != ResultsJSON(again) {
		t.Fatal("shared JSON differs across reruns")
	}
}

// testdata/golden_shared.csv pins the shared workload's wire behavior:
// the file was captured with
//
//	nfssweep -workload shared -sizes 2 -clients 4 -configs enhanced \
//	    -shared 50,25 -consistency ttl,strict,noac -actimeout 40ms \
//	    -format csv -quiet
//
// and any drift in the writer/reader interleaving, the revalidation
// clock, or the WCC plumbing shows up as a byte diff here.
func TestSharedSweepMatchesGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_shared.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		got := ResultsCSV((&Runner{Workers: workers}).Run(sharedGrid().Expand()))
		if got != string(want) {
			t.Fatalf("shared sweep (workers=%d) diverged from golden CSV:\n--- want ---\n%s--- got ---\n%s",
				workers, want, got)
		}
	}
}

// Writer/reader integrity under every consistency mode (run with -race
// in CI: the per-inode server locks and the worker pool are the shared
// state): the writers' whole span reaches the server with no holes, the
// server's change counter moves once per accepted mutation, and the
// stale-read accounting matches each mode's contract — zero under
// strict, nonzero under noac (and under ttl at this window).
func TestSharedWriterReaderIntegrity(t *testing.T) {
	const fileMB = 2
	const spanBytes = int64(fileMB) << 20 / 8 // bonnie's shared span: budget/8
	for _, mode := range []core.ConsistencyMode{
		core.ConsistencyTTL, core.ConsistencyStrict, core.ConsistencyNoac,
	} {
		sc := Scenario{
			Server:      nfssim.ServerFiler,
			Config:      ClientConfig{"enhanced", core.EnhancedConfig()},
			FileMB:      fileMB,
			Clients:     4,
			Workload:    bonnie.WorkloadShared,
			Consistency: mode,
			AcTimeout:   sim.Time(40 * time.Millisecond),
			Seed:        1,
		}
		var tb *nfssim.Testbed
		res := RunScenarioOn(sc, func(t *nfssim.Testbed) { tb = t })
		files := tb.Server.CoverageFiles()
		if len(files) != 1 {
			t.Fatalf("%v: %d files saw writes, want the one shared file", mode, len(files))
		}
		cov := tb.Server.Coverage(files[0])
		if !cov.Contains(0, spanBytes) || cov.Total() != spanBytes {
			t.Fatalf("%v: server coverage %v, want the contiguous span [0, %d)", mode, cov, spanBytes)
		}
		bumps := tb.Server.Names().ChangeBumps
		if bumps == 0 {
			t.Fatalf("%v: writers mutated the file but the change counter never moved", mode)
		}
		if mode == core.ConsistencyStrict && res.StaleReads != 0 {
			t.Fatalf("strict: %d stale reads, want 0", res.StaleReads)
		}
		if mode != core.ConsistencyStrict && res.StaleReads == 0 {
			t.Fatalf("%v: no stale reads at a 40ms window; the accounting went dark", mode)
		}
	}
}
