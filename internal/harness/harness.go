// Package harness is the parallel scenario-sweep engine. It treats each
// test bed as an independent, deterministic unit of work: a Scenario
// fully specifies one benchmark run (server kind, client configuration,
// file size, wsize, client CPUs, cache limit, jumbo frames, seed), a
// Grid expands axis lists into the exact cross-product of Scenarios, and
// a Runner executes them across a worker pool, streaming Result records
// in stable scenario order so output is byte-for-byte reproducible
// regardless of worker count.
//
// The paper's own figures are fixed grids (see internal/experiments),
// but the harness accepts arbitrary user-defined grids via cmd/nfssweep.
package harness

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/rpcsim"
	"repro/internal/sim"
)

// ClientConfig is a named client configuration, so results carry a
// human-readable label instead of a struct dump.
type ClientConfig struct {
	Name   string
	Config core.Config
}

// NamedConfigs maps the canonical configuration names — the progression
// of the paper's fixes — to their core.Config constructors.
func NamedConfigs() []ClientConfig {
	return []ClientConfig{
		{"stock", core.Stock244Config()},
		{"nolimits", core.NoLimitsConfig()},
		{"hash", core.HashConfig()},
		{"enhanced", core.EnhancedConfig()},
	}
}

// ConfigByName resolves one canonical configuration name.
func ConfigByName(name string) (ClientConfig, error) {
	for _, c := range NamedConfigs() {
		if c.Name == name {
			return c, nil
		}
	}
	names := make([]string, 0, 4)
	for _, c := range NamedConfigs() {
		names = append(names, c.Name)
	}
	return ClientConfig{}, fmt.Errorf("harness: unknown config %q (have %s)", name, strings.Join(names, ", "))
}

// ServerByName resolves a server-kind name as printed by
// nfssim.ServerKind.String.
func ServerByName(name string) (nfssim.ServerKind, error) {
	switch name {
	case "filer":
		return nfssim.ServerFiler, nil
	case "linux":
		return nfssim.ServerLinux, nil
	case "slow100":
		return nfssim.ServerSlow100, nil
	case "local", "none":
		return nfssim.ServerNone, nil
	}
	return 0, fmt.Errorf("harness: unknown server %q (have filer, linux, slow100, local)", name)
}

// Scenario is one fully-specified benchmark run. Expand fills every
// field, so two Scenarios with equal fields produce identical Results.
type Scenario struct {
	Server     nfssim.ServerKind
	Config     ClientConfig
	FileMB     int   // per-client file size
	WSize      int   // bytes; overrides Config's wsize
	ClientCPUs int   // per-machine client processor count
	Clients    int   // client machines writing concurrently (>= 1)
	CacheLimit int64 // per-machine page-cache budget, bytes
	Jumbo      bool
	// Transport selects the RPC wire protocol (default TransportUDP).
	Transport rpcsim.TransportKind
	// Loss is the per-fragment drop probability (default 0, lossless).
	Loss float64
	// NetJitter is the max extra random delivery delay per datagram.
	NetJitter sim.Time
	// Workload is the I/O pattern each client drives (default
	// bonnie.WorkloadWrite, the paper's benchmark). FileMB sizes the
	// workload's total I/O; read-family workloads open pre-populated
	// cold files of that size, and the random workloads visit chunks in
	// a deterministic per-seed permutation.
	Workload bonnie.Workload
	// FsyncEvery flushes the write stream every N chunks during the I/O
	// phase (group commit). 0 means never, except the db workload, which
	// defaults to bonnie.DefaultDBFsyncEvery.
	FsyncEvery int
	// FileCount is the zipf workload's file population (0 means
	// bonnie.DefaultZipfFiles; ignored by single-file workloads).
	FileCount int
	// ZipfS is the zipf workload's skew exponent (0 means
	// bonnie.DefaultZipfS; bonnie.ZipfUniform selects uniform access).
	ZipfS float64
	// Mix is the zipf workload's op mix (zero means bonnie.DefaultOpMix).
	Mix bonnie.OpMix
	// AcTimeout pins the client attribute cache's window: both acregmin
	// and acregmax are set to this value. 0 keeps the client's adaptive
	// defaults; core.AcOff (or any negative value) disables the cache
	// (mount -o noac).
	AcTimeout sim.Time
	// SharedWriterPct is the shared workload's writer share of the
	// per-run workers (0 means bonnie.DefaultSharedWriterPct; ignored by
	// other workloads).
	SharedWriterPct int
	// SharedReadLag is the shared workload's pause between reader passes
	// (0 means back-to-back; ignored by other workloads).
	SharedReadLag sim.Time
	// Consistency is the client's cache-consistency mode (default
	// core.ConsistencyTTL, the adaptive attribute-cache behavior every
	// pre-existing scenario ran under).
	Consistency core.ConsistencyMode
	Seed        int64
	Repeat      int // repeat index; Seed already includes the offset

	// SkipFlushClose stops each run after the write phase (the Figure
	// 1/7 memory-write comparison). When false the run flushes and
	// closes, as NFS semantics require before last close.
	SkipFlushClose bool
	// TimeLimit bounds one run's virtual time (default 30 minutes).
	TimeLimit sim.Time
}

// Key identifies the scenario's grid cell — every axis except seed and
// repeat — for grouping repeated runs. The cache limit appears in exact
// bytes: keying on truncated megabytes used to fold two cache limits
// differing by less than 1 MiB into one aggregation cell. The transport,
// loss, jitter, workload, file-count, Zipf-skew, op-mix, attribute-cache,
// sharing, read-lag, and consistency axes appear only at non-default
// values, so sweeps over the pre-existing axes keep byte-identical keys
// (and hence output) to the tree before those axes existed — pinned by
// the golden-CSV tests in harness_test.go.
func (sc Scenario) Key() string {
	clients := sc.Clients
	if clients < 1 {
		clients = 1 // hand-built pre-Clients scenarios; matches RunScenario
	}
	key := fmt.Sprintf("%s/%s/%dMB/w%d/c%d/n%d/m%dB/j%v",
		sc.Server, sc.Config.Name, sc.FileMB, sc.WSize, sc.ClientCPUs,
		clients, sc.CacheLimit, sc.Jumbo)
	if sc.Transport != rpcsim.TransportUDP {
		key += "/" + sc.Transport.String()
	}
	if sc.Loss > 0 {
		// FormatFloat 'g'/-1 is byte-identical to the old %v but pins
		// the encoding explicitly (keyfmt).
		key += "/l" + strconv.FormatFloat(sc.Loss, 'g', -1, 64)
	}
	if sc.NetJitter > 0 {
		key += fmt.Sprintf("/nj%v", sc.NetJitter)
	}
	if sc.Workload != bonnie.WorkloadWrite {
		key += "/" + sc.Workload.String()
	}
	if sc.FsyncEvery > 0 {
		key += fmt.Sprintf("/f%d", sc.FsyncEvery)
	}
	if sc.FileCount != 0 {
		key += fmt.Sprintf("/fc%d", sc.FileCount)
	}
	if sc.ZipfS != 0 {
		if sc.ZipfS == bonnie.ZipfUniform {
			key += "/zuni"
		} else {
			key += "/z" + strconv.FormatFloat(sc.ZipfS, 'g', -1, 64)
		}
	}
	if !sc.Mix.IsZero() {
		key += "/" + sc.Mix.String()
	}
	if sc.AcTimeout != 0 {
		if sc.AcTimeout < 0 {
			key += "/acoff"
		} else {
			key += fmt.Sprintf("/ac%v", sc.AcTimeout)
		}
	}
	if sc.SharedWriterPct != 0 && sc.SharedWriterPct != bonnie.DefaultSharedWriterPct {
		key += fmt.Sprintf("/sw%d", sc.SharedWriterPct)
	}
	if sc.SharedReadLag > 0 {
		key += fmt.Sprintf("/rl%v", sc.SharedReadLag)
	}
	if sc.Consistency != core.ConsistencyTTL {
		key += "/" + sc.Consistency.String()
	}
	return key
}

// Name is the scenario's full identity including seed and repeat.
func (sc Scenario) Name() string {
	return fmt.Sprintf("%s/s%d.%d", sc.Key(), sc.Seed, sc.Repeat)
}

// Grid declares the sweep axes. Expand produces the exact cross-product
// of every non-empty axis; empty axes fall back to the listed default.
type Grid struct {
	Servers     []nfssim.ServerKind    // default: filer
	Configs     []ClientConfig         // default: stock
	FileSizesMB []int                  // default: 40 (per client)
	WSizes      []int                  // default: each config's own wsize
	ClientCPUs  []int                  // default: 2 (the paper's dual P-III)
	Clients     []int                  // default: 1 (client machines per run)
	CacheLimits []int64                // default: mm.DefaultDirtyLimit
	Jumbo       []bool                 // default: false
	Transports  []rpcsim.TransportKind // default: udp
	LossRates   []float64              // default: 0 (lossless)
	Workloads   []bonnie.Workload      // default: write
	FileCounts  []int                  // default: 0 (bonnie's DefaultZipfFiles)
	ZipfSs      []float64              // default: 0 (bonnie's DefaultZipfS)
	AcTimeouts  []sim.Time             // default: 0 (client's adaptive defaults)
	// Sharings is the shared workload's writer-percentage axis (default:
	// 0, bonnie's DefaultSharedWriterPct; ignored by other workloads).
	Sharings []int
	// Consistencies is the client cache-consistency mode axis (default:
	// core.ConsistencyTTL).
	Consistencies []core.ConsistencyMode
	Seeds         []int64 // default: 1

	// NetJitter applies the same max delivery jitter to every scenario
	// (a scalar, not an axis).
	NetJitter sim.Time

	// FsyncEvery applies the same group-commit cadence to every scenario
	// (a scalar knob, not an axis; see Scenario.FsyncEvery).
	FsyncEvery int

	// Mix applies the same zipf op mix to every scenario (a scalar knob,
	// not an axis; see Scenario.Mix).
	Mix bonnie.OpMix

	// ReadLag applies the same shared-workload reader lag to every
	// scenario (a scalar knob, not an axis; see Scenario.SharedReadLag).
	ReadLag sim.Time

	// Repeats re-runs every cell Repeats times, offsetting each base
	// seed per repeat by the span of the Seeds list (max-min+1, so a
	// single base seed yields seed, seed+1, ...). Distinct base seeds
	// therefore never collide across repeats: every run in a cell has
	// a unique seed, and Aggregate folds genuinely independent runs
	// into its mean/stddev summaries.
	Repeats int

	SkipFlushClose bool
	TimeLimit      sim.Time
}

func orInts(xs []int, def int) []int {
	if len(xs) == 0 {
		return []int{def}
	}
	return xs
}

// Expand returns the cross-product of all axes in a fixed nesting order
// (config, server, file size, wsize, CPUs, clients, cache limit, jumbo,
// transport, loss, workload, file count, Zipf skew, ac timeout, sharing,
// consistency, seed, repeat — innermost last), with every Scenario field
// resolved to its concrete value. The order is deterministic: the same
// Grid always expands to the same slice.
func (g Grid) Expand() []Scenario {
	servers := g.Servers
	if len(servers) == 0 {
		servers = []nfssim.ServerKind{nfssim.ServerFiler}
	}
	configs := g.Configs
	if len(configs) == 0 {
		configs = []ClientConfig{{"stock", core.Stock244Config()}}
	}
	sizes := orInts(g.FileSizesMB, 40)
	cpus := orInts(g.ClientCPUs, 2)
	clients := orInts(g.Clients, 1)
	caches := g.CacheLimits
	if len(caches) == 0 {
		caches = []int64{mm.DefaultDirtyLimit}
	}
	jumbos := g.Jumbo
	if len(jumbos) == 0 {
		jumbos = []bool{false}
	}
	transports := g.Transports
	if len(transports) == 0 {
		transports = []rpcsim.TransportKind{rpcsim.TransportUDP}
	}
	losses := g.LossRates
	if len(losses) == 0 {
		losses = []float64{0}
	}
	workloads := g.Workloads
	if len(workloads) == 0 {
		workloads = []bonnie.Workload{bonnie.WorkloadWrite}
	}
	fileCounts := orInts(g.FileCounts, 0)
	zipfSs := g.ZipfSs
	if len(zipfSs) == 0 {
		zipfSs = []float64{0}
	}
	acTimeouts := g.AcTimeouts
	if len(acTimeouts) == 0 {
		acTimeouts = []sim.Time{0}
	}
	sharings := orInts(g.Sharings, 0)
	consistencies := g.Consistencies
	if len(consistencies) == 0 {
		consistencies = []core.ConsistencyMode{core.ConsistencyTTL}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	// Repeat r shifts every base seed by r*span; span covers the whole
	// base-seed range, so no two (seed, repeat) pairs share a seed.
	minSeed, maxSeed := seeds[0], seeds[0]
	for _, s := range seeds {
		if s < minSeed {
			minSeed = s
		}
		if s > maxSeed {
			maxSeed = s
		}
	}
	span := maxSeed - minSeed + 1
	repeats := g.Repeats
	if repeats < 1 {
		repeats = 1
	}
	timeLimit := g.TimeLimit
	if timeLimit == 0 {
		timeLimit = 30 * time.Minute
	}

	var out []Scenario
	for _, cfg := range configs {
		wsizes := orInts(g.WSizes, cfg.Config.WSize)
		for _, srv := range servers {
			for _, mb := range sizes {
				for _, ws := range wsizes {
					for _, ncpu := range cpus {
						for _, ncli := range clients {
							for _, cache := range caches {
								for _, jumbo := range jumbos {
									for _, tr := range transports {
										for _, loss := range losses {
											for _, wl := range workloads {
												for _, fc := range fileCounts {
													for _, zs := range zipfSs {
														for _, ac := range acTimeouts {
															for _, sw := range sharings {
																for _, cons := range consistencies {
																	for _, seed := range seeds {
																		for rep := 0; rep < repeats; rep++ {
																			out = append(out, Scenario{
																				Server:          srv,
																				Config:          cfg,
																				FileMB:          mb,
																				WSize:           ws,
																				ClientCPUs:      ncpu,
																				Clients:         ncli,
																				CacheLimit:      cache,
																				Jumbo:           jumbo,
																				Transport:       tr,
																				Loss:            loss,
																				NetJitter:       g.NetJitter,
																				Workload:        wl,
																				FsyncEvery:      g.FsyncEvery,
																				FileCount:       fc,
																				ZipfS:           zs,
																				Mix:             g.Mix,
																				AcTimeout:       ac,
																				SharedWriterPct: sw,
																				SharedReadLag:   g.ReadLag,
																				Consistency:     cons,
																				Seed:            seed + int64(rep)*span,
																				Repeat:          rep,
																				SkipFlushClose:  g.SkipFlushClose,
																				TimeLimit:       timeLimit,
																			})
																		}
																	}
																}
															}
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// ParseSizes parses a file-size axis spec: either a comma list
// ("25,100,450") or a range with step ("25..450:25", step defaulting
// to 25). Values are megabytes.
func ParseSizes(spec string) ([]int, error) {
	if spec == "" {
		return nil, fmt.Errorf("harness: empty size spec")
	}
	if lo, rest, ok := strings.Cut(spec, ".."); ok {
		hi, stepStr, _ := strings.Cut(rest, ":")
		step := 25
		var err error
		if stepStr != "" {
			if step, err = strconv.Atoi(stepStr); err != nil || step <= 0 {
				return nil, fmt.Errorf("harness: bad size step %q", stepStr)
			}
		}
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("harness: bad size %q", lo)
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, fmt.Errorf("harness: bad size %q", hi)
		}
		if a <= 0 || b < a {
			return nil, fmt.Errorf("harness: bad size range %d..%d", a, b)
		}
		var out []int
		for mb := a; mb <= b; mb += step {
			out = append(out, mb)
		}
		return out, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		mb, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || mb <= 0 {
			return nil, fmt.Errorf("harness: bad size %q", f)
		}
		out = append(out, mb)
	}
	return out, nil
}

// ParseServers parses a comma list of server names.
func ParseServers(spec string) ([]nfssim.ServerKind, error) {
	var out []nfssim.ServerKind
	for _, f := range strings.Split(spec, ",") {
		k, err := ServerByName(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// ParseConfigs parses a comma list of canonical configuration names.
func ParseConfigs(spec string) ([]ClientConfig, error) {
	var out []ClientConfig
	for _, f := range strings.Split(spec, ",") {
		c, err := ConfigByName(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ParseTransports parses a comma list of transport names ("udp,tcp").
func ParseTransports(spec string) ([]rpcsim.TransportKind, error) {
	var out []rpcsim.TransportKind
	for _, f := range strings.Split(spec, ",") {
		k, err := rpcsim.ParseTransport(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// ParseLossRates parses a comma list of per-fragment drop probabilities
// ("0,0.01,0.05"), each in [0, 1).
func ParseLossRates(spec string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, fmt.Errorf("harness: bad loss rate %q (want a probability in [0, 1))", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseWorkloads parses a comma list of workload names
// ("write,rewrite,read,mixed").
func ParseWorkloads(spec string) ([]bonnie.Workload, error) {
	var out []bonnie.Workload
	for _, f := range strings.Split(spec, ",") {
		w, err := bonnie.ParseWorkload(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// ParseFileCounts parses a comma list of zipf file populations
// ("100,1000"), each positive.
func ParseFileCounts(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("harness: bad file count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseZipfSs parses a comma list of Zipf skew exponents
// ("0.8,1.2,uniform"); "uniform" (or bonnie.ZipfUniform's -1) selects
// uniform file choice.
func ParseZipfSs(spec string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "uniform" {
			out = append(out, bonnie.ZipfUniform)
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || (v < 0 && v != bonnie.ZipfUniform) {
			return nil, fmt.Errorf("harness: bad zipf exponent %q (want a non-negative number or \"uniform\")", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseAcTimeouts parses a comma list of attribute-cache windows
// ("off,3s,60s"); "off" disables the cache (mount -o noac), "default"
// (or 0) keeps the client's adaptive acregmin/acregmax aging.
func ParseAcTimeouts(spec string) ([]sim.Time, error) {
	var out []sim.Time
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		switch f {
		case "off":
			out = append(out, core.AcOff)
			continue
		case "default", "0":
			out = append(out, 0)
			continue
		}
		d, err := time.ParseDuration(f)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("harness: bad attribute-cache timeout %q (want a duration, \"off\", or \"default\")", f)
		}
		out = append(out, d)
	}
	return out, nil
}

// ParseSharings parses a comma list of shared-workload writer
// percentages ("25,50,75"); "default" (or 0) keeps bonnie's
// DefaultSharedWriterPct.
func ParseSharings(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "default" || f == "0" {
			out = append(out, 0)
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 || n > 100 {
			return nil, fmt.Errorf("harness: bad writer percentage %q (want 1-100 or \"default\")", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseConsistencies parses a comma list of cache-consistency modes
// ("ttl,strict,noac").
func ParseConsistencies(spec string) ([]core.ConsistencyMode, error) {
	var out []core.ConsistencyMode
	for _, f := range strings.Split(spec, ",") {
		m, ok := core.ParseConsistency(strings.TrimSpace(f))
		if !ok {
			return nil, fmt.Errorf("harness: unknown consistency mode %q (have ttl, strict, noac)", f)
		}
		out = append(out, m)
	}
	return out, nil
}

// appearanceOrder deduplicates keys preserving first appearance, so
// aggregation output follows scenario order, not map order.
func appearanceOrder(order []string) []string {
	seen := make(map[string]bool, len(order))
	out := make([]string, 0, len(order))
	for _, k := range order {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
