package harness

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/rpcsim"
)

func TestGridExpandIsExactCrossProduct(t *testing.T) {
	g := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux, nfssim.ServerNone},
		Configs:     []ClientConfig{{"stock", core.Stock244Config()}, {"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{5, 10},
		WSizes:      []int{8192, 16384},
		ClientCPUs:  []int{1, 2},
		Clients:     []int{1, 4},
		Jumbo:       []bool{false, true},
		Seeds:       []int64{1, 7},
		Repeats:     3,
	}
	scens := g.Expand()
	want := 3 * 2 * 2 * 2 * 2 * 2 * 2 * 2 * 3
	if len(scens) != want {
		t.Fatalf("expanded %d scenarios, want %d", len(scens), want)
	}
	// Every combination appears exactly once.
	seen := make(map[string]bool, len(scens))
	for _, sc := range scens {
		n := sc.Name()
		if seen[n] {
			t.Fatalf("duplicate scenario %s", n)
		}
		seen[n] = true
	}
	// Spot-check axis values survive into the scenario.
	for _, sc := range scens {
		if sc.WSize != 8192 && sc.WSize != 16384 {
			t.Fatalf("unexpected wsize %d", sc.WSize)
		}
		if sc.Clients != 1 && sc.Clients != 4 {
			t.Fatalf("unexpected clients %d", sc.Clients)
		}
		if sc.Repeat < 0 || sc.Repeat > 2 {
			t.Fatalf("unexpected repeat %d", sc.Repeat)
		}
		// Seed carries the repeat offset (stride = the base-seed span,
		// here 7-1+1) from its base seed.
		stride := int64(7 * sc.Repeat)
		if sc.Seed != 1+stride && sc.Seed != 7+stride {
			t.Fatalf("seed %d inconsistent with repeat %d", sc.Seed, sc.Repeat)
		}
	}
	// No cell aggregates two runs of the same seed: (cell, seed) pairs
	// are unique, so repeats never duplicate a bit-identical run.
	assertUniqueCellSeeds(t, scens)
}

func assertUniqueCellSeeds(t *testing.T, scens []Scenario) {
	t.Helper()
	cellSeeds := make(map[string]bool, len(scens))
	for _, sc := range scens {
		k := fmt.Sprintf("%s/%d", sc.Key(), sc.Seed)
		if cellSeeds[k] {
			t.Fatalf("duplicate (cell, seed) %s", k)
		}
		cellSeeds[k] = true
	}
}

func TestGridExpandSeedsNeverCollideAcrossRepeats(t *testing.T) {
	// Base seeds whose difference is a multiple of the list length used
	// to collide under a count-based stride ({1,3} x 2 repeats reused
	// seed 3); the span-based stride keeps every run seed unique.
	assertUniqueCellSeeds(t, Grid{Seeds: []int64{1, 3}, Repeats: 2}.Expand())
	assertUniqueCellSeeds(t, Grid{Seeds: []int64{5, 2, 9}, Repeats: 4}.Expand())
	// Single base seed still yields the documented seed, seed+1, ...
	for i, sc := range (Grid{Seeds: []int64{5}, Repeats: 3}).Expand() {
		if sc.Seed != int64(5+i) {
			t.Fatalf("repeat %d seed = %d, want %d", i, sc.Seed, 5+i)
		}
	}
}

func TestGridExpandDefaults(t *testing.T) {
	scens := Grid{}.Expand()
	if len(scens) != 1 {
		t.Fatalf("empty grid expanded to %d scenarios, want 1", len(scens))
	}
	sc := scens[0]
	if sc.Server != nfssim.ServerFiler || sc.Config.Name != "stock" ||
		sc.FileMB != 40 || sc.WSize != core.DefaultWSize ||
		sc.ClientCPUs != 2 || sc.Clients != 1 ||
		sc.CacheLimit != mm.DefaultDirtyLimit ||
		sc.Jumbo || sc.Seed != 1 {
		t.Fatalf("unexpected defaults: %+v", sc)
	}
	if sc.TimeLimit == 0 {
		t.Fatal("time limit not defaulted")
	}
}

func TestGridExpandDeterministicOrder(t *testing.T) {
	g := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerNone},
		FileSizesMB: []int{1, 2, 3},
		Repeats:     2,
	}
	a, b := g.Expand(), g.Expand()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same grid expanded to different scenario orders")
	}
}

// testGrid is a small-but-real grid used by the runner tests: 8 runs,
// ~1 MB each, covering two servers and two configs.
func testGrid() Grid {
	return Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux},
		Configs:     []ClientConfig{{"stock", core.Stock244Config()}, {"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{1},
		Repeats:     2,
	}
}

func TestRunnerOutputIdenticalAcrossWorkerCounts(t *testing.T) {
	scens := testGrid().Expand()
	var streamed1, streamed8 []string
	r1 := (&Runner{Workers: 1, OnResult: func(r Result) { streamed1 = append(streamed1, r.Name) }}).Run(scens)
	r8 := (&Runner{Workers: 8, OnResult: func(r Result) { streamed8 = append(streamed8, r.Name) }}).Run(scens)
	if len(r1) != len(scens) || len(r8) != len(scens) {
		t.Fatalf("result counts %d/%d, want %d", len(r1), len(r8), len(scens))
	}
	c1, c8 := ResultsCSV(r1), ResultsCSV(r8)
	if c1 != c8 {
		t.Fatalf("CSV differs between 1 and 8 workers:\n%s\nvs\n%s", c1, c8)
	}
	if ResultsJSON(r1) != ResultsJSON(r8) {
		t.Fatal("JSON differs between 1 and 8 workers")
	}
	// Streaming delivery is in scenario order for both.
	if !reflect.DeepEqual(streamed1, streamed8) {
		t.Fatalf("streamed order differs:\n%v\nvs\n%v", streamed1, streamed8)
	}
	for i, sc := range scens {
		if streamed1[i] != sc.Name() {
			t.Fatalf("streamed[%d] = %s, want %s", i, streamed1[i], sc.Name())
		}
	}
}

func TestRunnerResultsMatchScenarioOrder(t *testing.T) {
	scens := testGrid().Expand()
	results := (&Runner{Workers: 4, KeepTraces: true}).Run(scens)
	for i, r := range results {
		if r.Name != scens[i].Name() {
			t.Fatalf("results[%d] = %s, want %s", i, r.Name, scens[i].Name())
		}
		if r.Calls != 128 { // 1 MB / 8 KB
			t.Fatalf("results[%d].Calls = %d, want 128", i, r.Calls)
		}
		if r.WriteMBps <= 0 || r.Trace == nil || r.Trace.Len() != r.Calls {
			t.Fatalf("results[%d] incomplete: %+v", i, r)
		}
	}
	// Without KeepTraces, traces are dropped so big grids don't pin
	// every per-call sample for the whole sweep.
	for i, r := range (&Runner{Workers: 4}).Run(scens[:2]) {
		if r.Trace != nil {
			t.Fatalf("results[%d] retained its trace without KeepTraces", i)
		}
	}
}

func TestAggregateRepeats(t *testing.T) {
	g := testGrid()
	g.Repeats = 3
	results := (&Runner{Workers: 4}).Run(g.Expand())
	aggs := AggregateResults(results)
	if len(aggs) != 4 { // 2 servers x 2 configs x 1 size
		t.Fatalf("got %d aggregates, want 4", len(aggs))
	}
	for _, a := range aggs {
		if a.N != 3 {
			t.Fatalf("cell %s aggregated %d runs, want 3", a.Key, a.N)
		}
	}
	// Hand-check one cell's mean against its member runs.
	var member []float64
	for _, r := range results {
		if r.Scenario.Key() == aggs[0].Key {
			member = append(member, r.WriteMBps)
		}
	}
	var sum float64
	for _, x := range member {
		sum += x
	}
	if got, want := aggs[0].WriteMBpsMean, sum/float64(len(member)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
	// Repeats use distinct seeds, so runs are not literally identical
	// (the client cost model has deterministic per-seed jitter)...
	if aggs[0].MeanLatUsStddev == 0 {
		t.Fatal("expected nonzero latency stddev across distinct seeds")
	}
	// ...but cell summaries must be tight: jitter is 4%.
	if aggs[0].WriteMBpsStddev > aggs[0].WriteMBpsMean*0.10 {
		t.Fatalf("stddev %g implausibly large vs mean %g", aggs[0].WriteMBpsStddev, aggs[0].WriteMBpsMean)
	}
}

func TestSameSeedSameResult(t *testing.T) {
	sc := Grid{FileSizesMB: []int{1}}.Expand()[0]
	a, b := RunScenario(sc), RunScenario(sc)
	a.Trace, b.Trace = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same scenario produced different results:\n%+v\nvs\n%+v", a, b)
	}
}

func TestParseSizes(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want []int
	}{
		{"25..450:25", func() []int {
			var s []int
			for mb := 25; mb <= 450; mb += 25 {
				s = append(s, mb)
			}
			return s
		}()},
		{"25..100:25", []int{25, 50, 75, 100}},
		{"10..30", []int{10}}, // default step 25
		{"5,40,100", []int{5, 40, 100}},
		{"40", []int{40}},
	} {
		got, err := ParseSizes(tc.spec)
		if err != nil {
			t.Fatalf("ParseSizes(%q): %v", tc.spec, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseSizes(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{"", "0", "-5", "a..b", "10..5", "10..20:0", "x"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Fatalf("ParseSizes(%q) should fail", bad)
		}
	}
}

func TestParseServersAndConfigs(t *testing.T) {
	srvs, err := ParseServers("filer, linux,slow100,local")
	if err != nil {
		t.Fatal(err)
	}
	want := []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux, nfssim.ServerSlow100, nfssim.ServerNone}
	if !reflect.DeepEqual(srvs, want) {
		t.Fatalf("servers = %v", srvs)
	}
	if _, err := ParseServers("netapp"); err == nil {
		t.Fatal("bad server name should fail")
	}
	cfgs, err := ParseConfigs("stock,enhanced")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Name != "stock" || cfgs[1].Name != "enhanced" {
		t.Fatalf("configs = %v", cfgs)
	}
	if cfgs[1].Config.IndexPolicy != core.IndexHashTable {
		t.Fatal("enhanced config not resolved")
	}
	if _, err := ParseConfigs("turbo"); err == nil {
		t.Fatal("bad config name should fail")
	}
}

func TestFormatsRenderSchema(t *testing.T) {
	results := (&Runner{Workers: 2}).Run(Grid{FileSizesMB: []int{1}, Repeats: 2}.Expand())
	csv := ResultsCSV(results)
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	if got, want := len(strings.Split(lines[1], ",")), len(strings.Split(lines[0], ",")); got != want {
		t.Fatalf("row has %d fields, header %d", got, want)
	}
	if !strings.HasPrefix(lines[0], "name,server,config,file_mb") {
		t.Fatalf("unexpected header %q", lines[0])
	}
	js := ResultsJSON(results)
	if !strings.Contains(js, `"write_mbps"`) || !strings.Contains(js, `"p99_lat_us"`) {
		t.Fatal("JSON schema missing fields")
	}
	tbl := ResultsTable(results)
	if !strings.Contains(tbl, "write MB/s") {
		t.Fatal("table missing columns")
	}
	aggs := AggregateResults(results)
	if !strings.Contains(AggregatesCSV(aggs), "write_mbps_mean") {
		t.Fatal("aggregate CSV schema missing fields")
	}
	if !strings.Contains(AggregatesJSON(aggs), `"write_mbps_stddev"`) {
		t.Fatal("aggregate JSON schema missing fields")
	}
}

// The Clients axis must be deterministic across worker counts like every
// other axis: multi-client scenarios run N writers in one sim, and the
// streamed CSV must still be byte-identical for any pool size.
func TestMultiClientDeterministicAcrossWorkers(t *testing.T) {
	g := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"stock", core.Stock244Config()}, {"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{1},
		Clients:     []int{1, 2, 3},
		Repeats:     2,
	}
	scens := g.Expand()
	if len(scens) != 2*3*2 {
		t.Fatalf("expanded %d scenarios, want 12", len(scens))
	}
	r1 := (&Runner{Workers: 1}).Run(scens)
	r8 := (&Runner{Workers: 8}).Run(scens)
	if ResultsCSV(r1) != ResultsCSV(r8) {
		t.Fatal("multi-client CSV differs between 1 and 8 workers")
	}
	if AggregatesCSV(AggregateResults(r1)) != AggregatesCSV(AggregateResults(r8)) {
		t.Fatal("multi-client aggregate CSV differs between 1 and 8 workers")
	}
}

// Multi-client results must populate the scale-out fields: one per-client
// throughput per machine, an aggregate at least the best single share,
// and a meaningful Jain fairness index.
func TestMultiClientFairnessFields(t *testing.T) {
	sc := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{1},
		Clients:     []int{2},
	}.Expand()[0]
	r := RunScenario(sc)
	if r.Clients != 2 {
		t.Fatalf("clients = %d", r.Clients)
	}
	if len(r.PerClientMBps) != 2 {
		t.Fatalf("per-client throughputs = %v, want 2 entries", r.PerClientMBps)
	}
	for i, mbps := range r.PerClientMBps {
		if mbps <= 0 {
			t.Fatalf("client %d throughput %v", i, mbps)
		}
	}
	if r.Calls != 2*128 { // two writers x 1 MB / 8 KB
		t.Fatalf("calls = %d, want 256", r.Calls)
	}
	if r.AggMBps < r.MaxClientMBps {
		t.Fatalf("aggregate %.2f below best client %.2f", r.AggMBps, r.MaxClientMBps)
	}
	if r.Fairness <= 0.5 || r.Fairness > 1 {
		t.Fatalf("fairness = %.3f, want in (0.5, 1]", r.Fairness)
	}
	if r.MinClientMBps > r.MaxClientMBps {
		t.Fatalf("min %.2f > max %.2f", r.MinClientMBps, r.MaxClientMBps)
	}
	// Single-client runs collapse the fleet fields.
	sc.Clients = 1
	r1 := RunScenario(sc)
	if r1.Fairness != 1 || len(r1.PerClientMBps) != 1 || r1.AggMBps != r1.PerClientMBps[0] {
		t.Fatalf("single-client fleet fields wrong: %+v", r1)
	}
}

// Golden regression: with the loss model disabled and the default UDP
// transport, the sweep engine must reproduce the golden CSV byte for
// byte at any worker count. testdata/golden_loss0.csv was re-captured
// after the weak-cache-consistency change (fattr3 grew the change
// attribute and WRITE3 replies carry wcc_data, which shifts every wire
// timing) with:
//
//	nfssweep -servers filer,linux -configs stock,enhanced -sizes 25 \
//	    -clients 1,2 -format csv -quiet
func TestLossZeroMatchesPreChangeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four 25 MB and four 50 MB-aggregate sims")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_loss0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{
		Servers:        []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux},
		Configs:        []ClientConfig{{"stock", core.Stock244Config()}, {"enhanced", core.EnhancedConfig()}},
		FileSizesMB:    []int{25},
		Clients:        []int{1, 2},
		LossRates:      []float64{0}, // explicit zero must equal "absent"
		SkipFlushClose: true,
	}
	got := ResultsCSV((&Runner{Workers: 4}).Run(g.Expand()))
	if got != string(want) {
		t.Fatalf("loss=0 sweep diverged from pre-change golden CSV:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// The transport/loss axes expand like any other axis and stay worker-
// deterministic: the acceptance grid (-transport udp,tcp -loss 0,0.01)
// must produce byte-identical CSV at any pool size.
func TestTransportLossDeterministicAcrossWorkers(t *testing.T) {
	g := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"stock", core.Stock244Config()}},
		FileSizesMB: []int{1},
		Transports:  []rpcsim.TransportKind{rpcsim.TransportUDP, rpcsim.TransportTCP},
		LossRates:   []float64{0, 0.01},
	}
	scens := g.Expand()
	if len(scens) != 4 {
		t.Fatalf("expanded %d scenarios, want 4", len(scens))
	}
	r1 := (&Runner{Workers: 1}).Run(scens)
	r8 := (&Runner{Workers: 8}).Run(scens)
	if ResultsCSV(r1) != ResultsCSV(r8) {
		t.Fatal("transport/loss CSV differs between 1 and 8 workers")
	}
	if ResultsJSON(r1) != ResultsJSON(r8) {
		t.Fatal("transport/loss JSON differs between 1 and 8 workers")
	}
	if ResultsTable(r1) != ResultsTable(r8) {
		t.Fatal("transport/loss table differs between 1 and 8 workers")
	}
}

// Key back-compat: default transport and zero loss add nothing to the
// scenario key (so historical names and goldens survive), while
// non-default values land in distinct cells.
func TestKeyBackCompatAndNewAxes(t *testing.T) {
	base := Grid{FileSizesMB: []int{5}}.Expand()[0]
	if s := base.Key(); strings.Contains(s, "udp") || strings.Contains(s, "/l") {
		t.Fatalf("default key %q mentions the new axes", s)
	}
	tcp := base
	tcp.Transport = rpcsim.TransportTCP
	lossy := base
	lossy.Loss = 0.01
	jittery := base
	jittery.NetJitter = 200 * time.Microsecond
	keys := map[string]bool{}
	for _, sc := range []Scenario{base, tcp, lossy, jittery} {
		keys[sc.Key()] = true
	}
	if len(keys) != 4 {
		t.Fatalf("axes collapsed into %d keys: %v", len(keys), keys)
	}
	if !strings.HasSuffix(tcp.Key(), "/tcp") {
		t.Fatalf("tcp key = %q", tcp.Key())
	}
	if !strings.HasSuffix(lossy.Key(), "/l0.01") {
		t.Fatalf("loss key = %q", lossy.Key())
	}
}

// Lossy multi-client scenarios must stay worker-deterministic too: the
// loss stream is per-testbed, so concurrent scenario execution cannot
// perturb drop patterns.
func TestLossyResultsReportRepairTraffic(t *testing.T) {
	sc := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"stock", core.Stock244Config()}},
		FileSizesMB: []int{1},
		LossRates:   []float64{0.05},
	}.Expand()[0]
	r := RunScenario(sc)
	if r.Loss != 0.05 || r.Transport != "udp" {
		t.Fatalf("axes not recorded: %+v", r)
	}
	if r.Retransmits == 0 || r.LostFrames == 0 {
		t.Fatalf("no repair traffic recorded at 5%% loss: retransmits=%d lost_frames=%d",
			r.Retransmits, r.LostFrames)
	}
	again := RunScenario(sc)
	if r.Retransmits != again.Retransmits || r.LostFrames != again.LostFrames {
		t.Fatal("same scenario produced different loss pattern")
	}
}

// Golden regression: a pure-write sweep (the default Workload) must
// reproduce the golden CSV byte for byte, at any worker count.
// testdata/golden_write_only.csv was re-captured after the
// weak-cache-consistency change (WRITE3 replies grew wcc_data) by
// running this exact grid (full write+flush+close runs, 12 scenarios
// over filer/linux/local x stock/enhanced x 1,2 clients at 10 MB).
func TestWriteOnlySweepMatchesPreReadPathGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs twelve full 10 MB sims twice")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_write_only.csv"))
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux, nfssim.ServerNone},
		Configs:     []ClientConfig{{"stock", core.Stock244Config()}, {"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{10},
		Clients:     []int{1, 2},
		Workloads:   []bonnie.Workload{bonnie.WorkloadWrite}, // explicit default must equal "absent"
	}
	for _, workers := range []int{1, 8} {
		got := ResultsCSV((&Runner{Workers: workers}).Run(g.Expand()))
		if got != string(want) {
			t.Fatalf("write-only sweep (workers=%d) diverged from pre-read-path golden CSV:\n--- want ---\n%s--- got ---\n%s",
				workers, want, got)
		}
	}
}

// The workload axis expands like any other axis, lands in distinct cells
// at non-default values, and keeps the default key byte-identical.
func TestWorkloadAxisExpandAndKey(t *testing.T) {
	g := Grid{
		FileSizesMB: []int{5},
		Workloads: []bonnie.Workload{bonnie.WorkloadWrite, bonnie.WorkloadRewrite,
			bonnie.WorkloadRead, bonnie.WorkloadMixed},
	}
	scens := g.Expand()
	if len(scens) != 4 {
		t.Fatalf("expanded %d scenarios, want 4", len(scens))
	}
	keys := map[string]bool{}
	for _, sc := range scens {
		keys[sc.Key()] = true
	}
	if len(keys) != 4 {
		t.Fatalf("workloads collapsed into %d keys: %v", len(keys), keys)
	}
	if k := scens[0].Key(); strings.Contains(k, "write") {
		t.Fatalf("default workload key %q mentions the axis", k)
	}
	if !strings.HasSuffix(scens[2].Key(), "/read") {
		t.Fatalf("read key = %q", scens[2].Key())
	}
	if !strings.HasSuffix(scens[3].Key(), "/mixed") {
		t.Fatalf("mixed key = %q", scens[3].Key())
	}
}

// Read and mixed workloads must stay worker-deterministic like every
// other axis (the CI determinism job diffs this grid at -workers 1 vs 8).
func TestReadMixedDeterministicAcrossWorkers(t *testing.T) {
	g := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"stock", core.Stock244Config()}, {"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{1},
		Clients:     []int{1, 2},
		Workloads:   []bonnie.Workload{bonnie.WorkloadRead, bonnie.WorkloadMixed},
	}
	scens := g.Expand()
	if len(scens) != 8 {
		t.Fatalf("expanded %d scenarios, want 8", len(scens))
	}
	r1 := (&Runner{Workers: 1}).Run(scens)
	r8 := (&Runner{Workers: 8}).Run(scens)
	if ResultsCSV(r1) != ResultsCSV(r8) {
		t.Fatal("read/mixed CSV differs between 1 and 8 workers")
	}
	if ResultsJSON(r1) != ResultsJSON(r8) {
		t.Fatal("read/mixed JSON differs between 1 and 8 workers")
	}
}

// Read-workload results must carry the read-path fields: read RPCs on
// NFS targets, hit/miss accounting, and the workload name in JSON.
func TestReadWorkloadResultFields(t *testing.T) {
	sc := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{1},
		Workloads:   []bonnie.Workload{bonnie.WorkloadRead},
	}.Expand()[0]
	r := RunScenario(sc)
	if r.Workload != "read" {
		t.Fatalf("workload = %q", r.Workload)
	}
	if r.Calls != 128 {
		t.Fatalf("calls = %d, want 128", r.Calls)
	}
	if r.ReadRPCs == 0 {
		t.Fatal("no READ RPCs recorded")
	}
	if r.ReadHits+r.ReadMisses != 256 { // 1 MB = 256 page lookups
		t.Fatalf("read lookups = %d + %d, want 256", r.ReadHits, r.ReadMisses)
	}
	if r.WriteMBps <= 0 {
		t.Fatal("read throughput not recorded")
	}
	if !strings.Contains(ResultsJSON([]Result{r}), `"read_rpcs"`) {
		t.Fatal("JSON schema missing read fields")
	}
	// Write-only runs keep zero read counters.
	sc.Workload = bonnie.WorkloadWrite
	rw := RunScenario(sc)
	if rw.ReadRPCs != 0 || rw.ReadHits != 0 || rw.ReadMisses != 0 {
		t.Fatalf("write-only run recorded read activity: %+v", rw)
	}
}

// The random workloads and the FsyncEvery knob land in distinct cells at
// non-default values and keep the default key byte-identical.
func TestRandomWorkloadAndFsyncKey(t *testing.T) {
	base := Grid{FileSizesMB: []int{5}}.Expand()[0]
	if k := base.Key(); strings.Contains(k, "/f") {
		t.Fatalf("default key %q mentions the fsync knob", k)
	}
	randw := base
	randw.Workload = bonnie.WorkloadRandWrite
	if !strings.HasSuffix(randw.Key(), "/randwrite") {
		t.Fatalf("randwrite key = %q", randw.Key())
	}
	db := base
	db.Workload = bonnie.WorkloadDB
	db.FsyncEvery = 50
	if !strings.HasSuffix(db.Key(), "/db/f50") {
		t.Fatalf("db key = %q", db.Key())
	}
	keys := map[string]bool{}
	for _, sc := range []Scenario{base, randw, db} {
		keys[sc.Key()] = true
	}
	if len(keys) != 3 {
		t.Fatalf("scenarios collapsed into %d keys: %v", len(keys), keys)
	}
	// Grid.FsyncEvery is a scalar knob applied to every scenario.
	g := Grid{FileSizesMB: []int{5}, FsyncEvery: 64,
		Workloads: []bonnie.Workload{bonnie.WorkloadRandWrite}}
	for _, sc := range g.Expand() {
		if sc.FsyncEvery != 64 {
			t.Fatalf("FsyncEvery not threaded: %+v", sc)
		}
	}
}

// Random workloads must stay worker-deterministic like every other axis:
// the chunk permutation derives from the scenario seed, not from any
// shared rng, so the CI determinism job can diff -workers 1 vs 8.
func TestRandomWorkloadDeterministicAcrossWorkers(t *testing.T) {
	g := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerFiler},
		Configs:     []ClientConfig{{"stock", core.Stock244Config()}, {"hash", core.HashConfig()}},
		FileSizesMB: []int{1},
		Clients:     []int{1, 2},
		Workloads:   []bonnie.Workload{bonnie.WorkloadRandWrite, bonnie.WorkloadRandRead, bonnie.WorkloadDB},
	}
	scens := g.Expand()
	if len(scens) != 12 {
		t.Fatalf("expanded %d scenarios, want 12", len(scens))
	}
	r1 := (&Runner{Workers: 1}).Run(scens)
	r8 := (&Runner{Workers: 8}).Run(scens)
	if ResultsCSV(r1) != ResultsCSV(r8) {
		t.Fatal("random-workload CSV differs between 1 and 8 workers")
	}
	if ResultsJSON(r1) != ResultsJSON(r8) {
		t.Fatal("random-workload JSON differs between 1 and 8 workers")
	}
}

// Durability results must land in the JSON schema: db runs carry the
// group-commit counters, and COMMIT RPCs appear against a server that
// answers UNSTABLE.
func TestDBWorkloadResultFields(t *testing.T) {
	sc := Grid{
		Servers:     []nfssim.ServerKind{nfssim.ServerLinux},
		Configs:     []ClientConfig{{"enhanced", core.EnhancedConfig()}},
		FileSizesMB: []int{1},
		Workloads:   []bonnie.Workload{bonnie.WorkloadDB},
	}.Expand()[0]
	r := RunScenario(sc)
	if r.Workload != "db" {
		t.Fatalf("workload = %q", r.Workload)
	}
	if want := int64(128 / bonnie.DefaultDBFsyncEvery); r.FsyncCount != want {
		t.Fatalf("fsync count = %d, want %d", r.FsyncCount, want)
	}
	if r.FsyncUs <= 0 {
		t.Fatal("no fsync time recorded")
	}
	if r.CommitRPCs < r.FsyncCount {
		t.Fatalf("commit RPCs = %d for %d fsyncs against an UNSTABLE server",
			r.CommitRPCs, r.FsyncCount)
	}
	js := ResultsJSON([]Result{r})
	for _, want := range []string{`"commit_rpcs"`, `"fsync_count"`, `"fsync_us"`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON schema missing %s", want)
		}
	}
	// Write-only runs carry zero durability counters against the filer.
	sc.Server = nfssim.ServerFiler
	sc.Workload = bonnie.WorkloadWrite
	rw := RunScenario(sc)
	if rw.CommitRPCs != 0 || rw.FsyncCount != 0 || rw.FsyncUs != 0 {
		t.Fatalf("write-only filer run recorded durability activity: %+v", rw)
	}
}

// Regression: cache limits differing by less than 1 MiB must land in
// distinct aggregation cells. Key used to print CacheLimit>>20, folding
// e.g. 16 MiB and 16 MiB+4 KiB into one mean/stddev.
func TestSubMBCacheLimitsDoNotAlias(t *testing.T) {
	g := Grid{
		FileSizesMB: []int{1},
		CacheLimits: []int64{16 << 20, 16<<20 + 4096},
	}
	scens := g.Expand()
	if len(scens) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scens))
	}
	if scens[0].Key() == scens[1].Key() {
		t.Fatalf("distinct cache limits share key %q", scens[0].Key())
	}
	results := (&Runner{Workers: 2}).Run(scens)
	aggs := AggregateResults(results)
	if len(aggs) != 2 {
		t.Fatalf("aggregated into %d cells, want 2", len(aggs))
	}
	for i, a := range aggs {
		if a.N != 1 {
			t.Fatalf("cell %d aggregated %d runs, want 1", i, a.N)
		}
		if a.CacheBytes != scens[i].CacheLimit {
			t.Fatalf("cell %d cache bytes %d, want %d", i, a.CacheBytes, scens[i].CacheLimit)
		}
	}
}
