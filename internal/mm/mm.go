// Package mm models the client's memory management as the paper's fixes
// require it: once the arbitrary MAX_REQUEST_SOFT/HARD limits are removed,
// "the client should cache as many requests as it can in available memory
// [Macklem]; there is no need to flush ... unless the client cannot
// allocate more memory for new requests, in which case the VFS layer
// blocks the writer" (§3.3). PageCache provides exactly that: dirty +
// writeback accounting against a memory budget, with writer throttling.
package mm

import (
	"fmt"

	"repro/internal/sim"
)

// PageCache tracks dirty and in-writeback bytes against a budget, plus
// read-side lookup accounting: every page read is either a hit (the page
// was resident — written earlier, or filled by a previous READ) or a miss
// that had to go to the server or disk.
type PageCache struct {
	s *sim.Sim
	// limit is the maximum of dirty+writeback bytes before writers block
	// (the machine's RAM minus kernel and benchmark working set).
	limit int64

	dirty     int64
	writeback int64
	wait      *sim.WaitQueue

	// ThrottleEvents counts writer blocks due to memory pressure.
	ThrottleEvents int64
	// ThrottledTime accumulates total writer wall time lost to throttling.
	ThrottledTime sim.Time
	// PeakUsage is the high-water mark of dirty+writeback.
	PeakUsage int64

	// ReadHits counts page reads served from resident pages; ReadMisses
	// counts reads that had to fetch. Clean resident pages are not charged
	// against the dirty budget (the kernel reclaims them for free under
	// pressure), so these are counters, not bytes in Usage.
	ReadHits   int64
	ReadMisses int64
}

// ClientRAM is the paper's client memory size (256 MB of PC133 SDRAM).
const ClientRAM = 256 << 20

// DefaultDirtyLimit is the default page-cache budget: RAM minus ~48 MB of
// kernel text/structures and benchmark working set.
const DefaultDirtyLimit = ClientRAM - (48 << 20)

// New returns a page cache with the given dirty+writeback budget.
func New(s *sim.Sim, limit int64) *PageCache {
	if limit <= 0 {
		panic("mm: limit must be positive")
	}
	return &PageCache{s: s, limit: limit, wait: s.NewWaitQueue("pagecache")}
}

// Limit returns the configured budget.
func (c *PageCache) Limit() int64 { return c.limit }

// Dirty returns the bytes dirtied but not yet under writeback.
func (c *PageCache) Dirty() int64 { return c.dirty }

// Writeback returns the bytes currently being written out.
func (c *PageCache) Writeback() int64 { return c.writeback }

// Usage returns dirty+writeback.
func (c *PageCache) Usage() int64 { return c.dirty + c.writeback }

// Throttled reports whether any writer is currently parked in
// ChargeDirty waiting for room. Write-behind daemons treat this as
// memory pressure: the parked writer's pending charge is not yet in
// Usage, so threshold checks alone can miss it.
func (c *PageCache) Throttled() bool { return c.wait.Waiting() > 0 }

// ChargeDirty blocks p until n bytes fit in the budget, then accounts
// them as dirty. This is the VFS blocking the writer under memory
// pressure — the correct replacement for the 2.4.4 request-count limits.
func (c *PageCache) ChargeDirty(p *sim.Proc, n int64) {
	if n < 0 {
		panic("mm: negative charge")
	}
	if c.Usage()+n > c.limit {
		c.ThrottleEvents++
		t0 := c.s.Now()
		for c.Usage()+n > c.limit {
			c.wait.Wait(p)
		}
		c.ThrottledTime += c.s.Now() - t0
	}
	c.dirty += n
	if u := c.Usage(); u > c.PeakUsage {
		c.PeakUsage = u
	}
}

// ForceDirty accounts n bytes as dirty without blocking, even past the
// budget. Crash recovery uses it from event context — a WRITE or COMMIT
// reply discovering a changed verifier must re-dirty the lost ranges
// immediately, and a completion handler cannot park in ChargeDirty.
func (c *PageCache) ForceDirty(n int64) {
	if n < 0 {
		panic("mm: negative charge")
	}
	c.dirty += n
	if u := c.Usage(); u > c.PeakUsage {
		c.PeakUsage = u
	}
}

// CreditDirty returns n dirty bytes that turned out not to be net-new (a
// pessimistic charge taken before the page commit discovered it was
// extending or rewriting an existing request) and wakes throttled
// writers.
func (c *PageCache) CreditDirty(n int64) {
	if n > c.dirty {
		panic(fmt.Sprintf("mm: credit %d exceeds dirty %d", n, c.dirty))
	}
	c.dirty -= n
	c.wait.Broadcast()
}

// StartWriteback moves n bytes from dirty to writeback.
func (c *PageCache) StartWriteback(n int64) {
	if n > c.dirty {
		panic(fmt.Sprintf("mm: writeback %d exceeds dirty %d", n, c.dirty))
	}
	c.dirty -= n
	c.writeback += n
}

// EndWriteback releases n bytes of completed writeback and wakes
// throttled writers.
func (c *PageCache) EndWriteback(n int64) {
	if n > c.writeback {
		panic(fmt.Sprintf("mm: end writeback %d exceeds %d", n, c.writeback))
	}
	c.writeback -= n
	c.wait.Broadcast()
}

// NoteRead records one page-read lookup: a hit when the page was
// resident, a miss otherwise.
func (c *PageCache) NoteRead(hit bool) {
	if hit {
		c.ReadHits++
	} else {
		c.ReadMisses++
	}
}

// Readahead is one inode's sequential read window, the read-side dual of
// the paper's write-behind: misses on a sequential run grow the window so
// fetches stay ahead of the reader, and any non-sequential access (a
// seek) collapses it back to the minimum, like the 2.4 generic file
// readahead state machine.
type Readahead struct {
	// Min is the window a fresh or just-seeked stream starts with; Max
	// caps growth. Max <= 0 disables readahead entirely (Access always
	// returns 0).
	Min, Max int

	window int
	next   int64 // page a sequential access would touch next
}

// Window returns the current window size in pages.
func (r *Readahead) Window() int { return r.window }

// Access notes a read of page pg and returns the number of pages to read
// ahead beyond the demand fetch. Sequential accesses double the window
// from Min up to Max; the first access and every seek reset it to Min.
func (r *Readahead) Access(pg int64) int {
	if r.Max <= 0 {
		return 0
	}
	switch {
	case r.window == 0 || pg != r.next:
		r.window = r.Min
	default:
		r.window *= 2
	}
	if r.window > r.Max {
		r.window = r.Max
	}
	if r.window < 1 {
		r.window = 1
	}
	r.next = pg + 1
	return r.window
}
