package mm

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestChargeWithinBudget(t *testing.T) {
	s := sim.New(1)
	c := New(s, 1<<20)
	s.Go("w", func(p *sim.Proc) {
		c.ChargeDirty(p, 512<<10)
		if s.Now() != 0 {
			t.Error("charge within budget should not block")
		}
	})
	s.Run(time.Second)
	if c.Dirty() != 512<<10 || c.Usage() != 512<<10 {
		t.Fatalf("dirty=%d usage=%d", c.Dirty(), c.Usage())
	}
	if c.ThrottleEvents != 0 {
		t.Fatal("throttled within budget")
	}
}

func TestThrottleAndRelease(t *testing.T) {
	s := sim.New(1)
	c := New(s, 1000)
	var wokenAt sim.Time
	s.Go("writer", func(p *sim.Proc) {
		c.ChargeDirty(p, 800)
		c.ChargeDirty(p, 800) // over budget: blocks
		wokenAt = s.Now()
	})
	s.Go("flusher", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		c.StartWriteback(800)
		p.Sleep(5 * time.Millisecond)
		c.EndWriteback(800)
	})
	s.Run(time.Second)
	if wokenAt != 10*time.Millisecond {
		t.Fatalf("writer woke at %v, want 10ms", wokenAt)
	}
	if c.ThrottleEvents != 1 || c.ThrottledTime != 10*time.Millisecond {
		t.Fatalf("throttle stats: %d events, %v", c.ThrottleEvents, c.ThrottledTime)
	}
	if c.Dirty() != 800 || c.Writeback() != 0 {
		t.Fatalf("dirty=%d wb=%d", c.Dirty(), c.Writeback())
	}
}

func TestWritebackAccounting(t *testing.T) {
	s := sim.New(1)
	c := New(s, 1<<20)
	s.Go("w", func(p *sim.Proc) {
		c.ChargeDirty(p, 1000)
		c.StartWriteback(400)
		if c.Dirty() != 600 || c.Writeback() != 400 || c.Usage() != 1000 {
			t.Errorf("after start: dirty=%d wb=%d", c.Dirty(), c.Writeback())
		}
		c.EndWriteback(400)
		if c.Usage() != 600 {
			t.Errorf("after end: usage=%d", c.Usage())
		}
	})
	s.Run(time.Second)
	if c.PeakUsage != 1000 {
		t.Fatalf("peak = %d", c.PeakUsage)
	}
}

func TestPanics(t *testing.T) {
	s := sim.New(1)
	for i, fn := range []func(){
		func() { New(s, 0) },
		func() { New(s, 10).StartWriteback(5) },
		func() { New(s, 10).EndWriteback(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
	// Negative charge panics inside a proc.
	c := New(s, 10)
	s.Go("w", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative charge did not panic")
			}
			// Swallow so the sim does not propagate it.
		}()
		c.ChargeDirty(p, -1)
	})
	s.Run(time.Second)
}

func TestNoteReadAccounting(t *testing.T) {
	s := sim.New(1)
	c := New(s, 1<<20)
	for _, tc := range []struct {
		hits, misses int
	}{
		{0, 0}, {3, 0}, {3, 2}, {10, 7},
	} {
		c.ReadHits, c.ReadMisses = 0, 0
		for i := 0; i < tc.hits; i++ {
			c.NoteRead(true)
		}
		for i := 0; i < tc.misses; i++ {
			c.NoteRead(false)
		}
		if c.ReadHits != int64(tc.hits) || c.ReadMisses != int64(tc.misses) {
			t.Fatalf("hits/misses = %d/%d, want %d/%d",
				c.ReadHits, c.ReadMisses, tc.hits, tc.misses)
		}
	}
	// Read accounting never touches the dirty budget.
	if c.Usage() != 0 {
		t.Fatalf("usage = %d after read accounting", c.Usage())
	}
}

func TestReadaheadWindow(t *testing.T) {
	for _, tc := range []struct {
		name     string
		min, max int
		accesses []int64
		want     []int // Access return per access
	}{
		{
			// A fresh stream starts at Min and doubles per sequential
			// access until capped at Max.
			name: "sequential grows and caps",
			min:  2, max: 16,
			accesses: []int64{0, 1, 2, 3, 4, 5},
			want:     []int{2, 4, 8, 16, 16, 16},
		},
		{
			// A seek (non-sequential access) resets the window to Min.
			name: "seek resets",
			min:  2, max: 16,
			accesses: []int64{0, 1, 2, 100, 101, 102},
			want:     []int{2, 4, 8, 2, 4, 8},
		},
		{
			// Re-reading the same page is a seek too (next expected was
			// pg+1).
			name: "re-read resets",
			min:  4, max: 8,
			accesses: []int64{0, 1, 1, 2},
			want:     []int{4, 8, 4, 8},
		},
		{
			// Max <= 0 disables readahead entirely.
			name: "disabled",
			min:  2, max: 0,
			accesses: []int64{0, 1, 2, 3},
			want:     []int{0, 0, 0, 0},
		},
		{
			// Min above Max still respects the cap.
			name: "min clamped to max",
			min:  32, max: 8,
			accesses: []int64{0, 1},
			want:     []int{8, 8},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ra := Readahead{Min: tc.min, Max: tc.max}
			for i, pg := range tc.accesses {
				if got := ra.Access(pg); got != tc.want[i] {
					t.Fatalf("access %d (page %d): window %d, want %d",
						i, pg, got, tc.want[i])
				}
				if ra.Window() != tc.want[i] {
					t.Fatalf("access %d: Window() %d, want %d", i, ra.Window(), tc.want[i])
				}
			}
		})
	}
}

// Property: usage never exceeds the limit no matter how writers and
// flushers interleave, as long as individual charges fit the budget.
func TestBudgetInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		s := sim.New(seed)
		limit := int64(8 << 10)
		c := New(s, limit)
		ok := true
		for i := 0; i < n; i++ {
			s.Go("w", func(p *sim.Proc) {
				for j := 0; j < 4; j++ {
					c.ChargeDirty(p, 1<<10)
					if c.Usage() > limit {
						ok = false
					}
					p.Sleep(sim.Time(s.Rand().Intn(1000)) * time.Microsecond)
					c.StartWriteback(1 << 10)
					p.Sleep(100 * time.Microsecond)
					c.EndWriteback(1 << 10)
				}
			})
		}
		s.Run(time.Minute)
		return ok && c.Usage() == 0 && s.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
