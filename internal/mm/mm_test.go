package mm

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestChargeWithinBudget(t *testing.T) {
	s := sim.New(1)
	c := New(s, 1<<20)
	s.Go("w", func(p *sim.Proc) {
		c.ChargeDirty(p, 512<<10)
		if s.Now() != 0 {
			t.Error("charge within budget should not block")
		}
	})
	s.Run(time.Second)
	if c.Dirty() != 512<<10 || c.Usage() != 512<<10 {
		t.Fatalf("dirty=%d usage=%d", c.Dirty(), c.Usage())
	}
	if c.ThrottleEvents != 0 {
		t.Fatal("throttled within budget")
	}
}

func TestThrottleAndRelease(t *testing.T) {
	s := sim.New(1)
	c := New(s, 1000)
	var wokenAt sim.Time
	s.Go("writer", func(p *sim.Proc) {
		c.ChargeDirty(p, 800)
		c.ChargeDirty(p, 800) // over budget: blocks
		wokenAt = s.Now()
	})
	s.Go("flusher", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		c.StartWriteback(800)
		p.Sleep(5 * time.Millisecond)
		c.EndWriteback(800)
	})
	s.Run(time.Second)
	if wokenAt != 10*time.Millisecond {
		t.Fatalf("writer woke at %v, want 10ms", wokenAt)
	}
	if c.ThrottleEvents != 1 || c.ThrottledTime != 10*time.Millisecond {
		t.Fatalf("throttle stats: %d events, %v", c.ThrottleEvents, c.ThrottledTime)
	}
	if c.Dirty() != 800 || c.Writeback() != 0 {
		t.Fatalf("dirty=%d wb=%d", c.Dirty(), c.Writeback())
	}
}

func TestWritebackAccounting(t *testing.T) {
	s := sim.New(1)
	c := New(s, 1<<20)
	s.Go("w", func(p *sim.Proc) {
		c.ChargeDirty(p, 1000)
		c.StartWriteback(400)
		if c.Dirty() != 600 || c.Writeback() != 400 || c.Usage() != 1000 {
			t.Errorf("after start: dirty=%d wb=%d", c.Dirty(), c.Writeback())
		}
		c.EndWriteback(400)
		if c.Usage() != 600 {
			t.Errorf("after end: usage=%d", c.Usage())
		}
	})
	s.Run(time.Second)
	if c.PeakUsage != 1000 {
		t.Fatalf("peak = %d", c.PeakUsage)
	}
}

func TestPanics(t *testing.T) {
	s := sim.New(1)
	for i, fn := range []func(){
		func() { New(s, 0) },
		func() { New(s, 10).StartWriteback(5) },
		func() { New(s, 10).EndWriteback(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
	// Negative charge panics inside a proc.
	c := New(s, 10)
	s.Go("w", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative charge did not panic")
			}
			// Swallow so the sim does not propagate it.
		}()
		c.ChargeDirty(p, -1)
	})
	s.Run(time.Second)
}

// Property: usage never exceeds the limit no matter how writers and
// flushers interleave, as long as individual charges fit the budget.
func TestBudgetInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		s := sim.New(seed)
		limit := int64(8 << 10)
		c := New(s, limit)
		ok := true
		for i := 0; i < n; i++ {
			s.Go("w", func(p *sim.Proc) {
				for j := 0; j < 4; j++ {
					c.ChargeDirty(p, 1<<10)
					if c.Usage() > limit {
						ok = false
					}
					p.Sleep(sim.Time(s.Rand().Intn(1000)) * time.Microsecond)
					c.StartWriteback(1 << 10)
					p.Sleep(100 * time.Microsecond)
					c.EndWriteback(1 << 10)
				}
			})
		}
		s.Run(time.Minute)
		return ok && c.Usage() == 0 && s.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
