package xdr

import (
	"bytes"
	"testing"
)

// FuzzDecode drives a Decoder over arbitrary bytes with an op script
// and checks the cursor invariants that every nfsproto decoder relies
// on: the offset never exceeds the buffer, Offset+Remaining is always
// exactly the buffer length, a successful read advances the cursor,
// and a failed read leaves it where it was.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, bytes.Repeat([]byte{0xff}, 7))
	f.Add([]byte{4, 4, 4}, []byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o', 0, 0, 0})
	f.Add([]byte{5, 3}, bytes.Repeat([]byte{0xff}, 256))
	f.Add([]byte{2, 2, 2}, []byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, script, data []byte) {
		d := NewDecoder(data)
		for _, op := range script {
			before := d.Offset()
			var err error
			switch op % 7 {
			case 0:
				_, err = d.Uint32()
			case 1:
				_, err = d.Int32()
			case 2:
				_, err = d.Uint64()
			case 3:
				_, err = d.Bool()
			case 4:
				_, err = d.Opaque()
			case 5:
				// Length byte comes from the script so the fuzzer can
				// aim it at the padding edge cases.
				_, err = d.FixedOpaque(int(op) % 97)
			case 6:
				_, err = d.String()
			}
			off := d.Offset()
			if off < 0 || off > len(data) {
				t.Fatalf("op %d: offset %d outside [0,%d]", op, off, len(data))
			}
			if off+d.Remaining() != len(data) {
				t.Fatalf("op %d: offset %d + remaining %d != len %d",
					op, off, d.Remaining(), len(data))
			}
			if err != nil {
				if off != before {
					t.Fatalf("op %d: failed read moved cursor %d -> %d", op, before, off)
				}
				return
			}
		}
	})
}

// FuzzRoundTrip encodes one value of each kind and decodes it back:
// the decode must reproduce the inputs exactly and consume the buffer
// fully, for any values the fuzzer picks.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(7), int32(-1), uint64(1<<40), true, []byte("opaque"), "str")
	f.Add(uint32(0), int32(0), uint64(0), false, []byte{}, "")
	f.Fuzz(func(t *testing.T, u32 uint32, i32 int32, u64 uint64, b bool, op []byte, s string) {
		e := NewEncoder(64)
		e.Uint32(u32)
		e.Int32(i32)
		e.Uint64(u64)
		e.Bool(b)
		e.Opaque(op)
		e.String(s)

		d := NewDecoder(e.Bytes())
		gu32, e1 := d.Uint32()
		gi32, e2 := d.Int32()
		gu64, e3 := d.Uint64()
		gb, e4 := d.Bool()
		gop, e5 := d.Opaque()
		gs, e6 := d.String()
		if err := Check(e1, e2, e3, e4, e5, e6); err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if gu32 != u32 || gi32 != i32 || gu64 != u64 || gb != b ||
			!bytes.Equal(gop, op) || gs != s {
			t.Fatalf("round trip mismatch: got (%d %d %d %v %x %q), want (%d %d %d %v %x %q)",
				gu32, gi32, gu64, gb, gop, gs, u32, i32, u64, b, op, s)
		}
		if d.Remaining() != 0 {
			t.Fatalf("round trip left %d bytes", d.Remaining())
		}
	})
}
