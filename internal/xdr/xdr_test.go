package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	e := NewEncoder(16)
	e.Uint32(0xdeadbeef)
	e.Int32(-1)
	d := NewDecoder(e.Bytes())
	u, err := d.Uint32()
	if err != nil || u != 0xdeadbeef {
		t.Fatalf("u=%x err=%v", u, err)
	}
	i, err := d.Int32()
	if err != nil || i != -1 {
		t.Fatalf("i=%d err=%v", i, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestUint64RoundTrip(t *testing.T) {
	e := NewEncoder(8)
	e.Uint64(0x0123456789abcdef)
	d := NewDecoder(e.Bytes())
	v, err := d.Uint64()
	if err != nil || v != 0x0123456789abcdef {
		t.Fatalf("v=%x err=%v", v, err)
	}
}

func TestBoolRoundTrip(t *testing.T) {
	e := NewEncoder(8)
	e.Bool(true)
	e.Bool(false)
	d := NewDecoder(e.Bytes())
	a, _ := d.Bool()
	b, err := d.Bool()
	if err != nil || !a || b {
		t.Fatalf("a=%v b=%v err=%v", a, b, err)
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder(32)
		data := bytes.Repeat([]byte{0xab}, n)
		e.Opaque(data)
		if e.Len()%4 != 0 {
			t.Fatalf("n=%d: encoded length %d not 4-aligned", n, e.Len())
		}
		if e.Len() != OpaqueLen(n) {
			t.Fatalf("n=%d: len=%d, OpaqueLen=%d", n, e.Len(), OpaqueLen(n))
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("n=%d: got %v err %v", n, got, err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("n=%d: %d bytes left over", n, d.Remaining())
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := NewEncoder(32)
	e.String("nfs_flushd")
	if e.Len() != StringLen("nfs_flushd") {
		t.Fatalf("len=%d want %d", e.Len(), StringLen("nfs_flushd"))
	}
	d := NewDecoder(e.Bytes())
	s, err := d.String()
	if err != nil || s != "nfs_flushd" {
		t.Fatalf("s=%q err=%v", s, err)
	}
}

func TestFixedOpaqueRoundTrip(t *testing.T) {
	e := NewEncoder(16)
	e.FixedOpaque([]byte{1, 2, 3})
	if e.Len() != 4 {
		t.Fatalf("len = %d, want 4 (padded)", e.Len())
	}
	d := NewDecoder(e.Bytes())
	got, err := d.FixedOpaque(3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Fatalf("err = %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0})
	if _, err := d.Uint64(); err != ErrShortBuffer {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewDecoder(nil).Opaque(); err != ErrShortBuffer {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeBadLength(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(100) // claims 100 bytes follow; none do
	d := NewDecoder(e.Bytes())
	if _, err := d.Opaque(); err != ErrBadLength {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewDecoder(nil).FixedOpaque(-1); err != ErrBadLength {
		t.Fatalf("err = %v", err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("len after reset = %d", e.Len())
	}
}

func TestCheck(t *testing.T) {
	if Check(nil, nil) != nil {
		t.Fatal("Check(nil, nil) != nil")
	}
	if Check(nil, ErrShortBuffer) == nil {
		t.Fatal("Check missed error")
	}
}

// Property: any mixed sequence of values round-trips.
func TestMixedRoundTripProperty(t *testing.T) {
	f := func(a uint32, b uint64, s string, o []byte, flag bool) bool {
		e := NewEncoder(64)
		e.Uint32(a)
		e.Uint64(b)
		e.String(s)
		e.Opaque(o)
		e.Bool(flag)
		d := NewDecoder(e.Bytes())
		ga, e1 := d.Uint32()
		gb, e2 := d.Uint64()
		gs, e3 := d.String()
		gob, e4 := d.Opaque()
		gf, e5 := d.Bool()
		if Check(e1, e2, e3, e4, e5) != nil {
			return false
		}
		return ga == a && gb == b && gs == s && bytes.Equal(gob, o) && gf == flag && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded length is always 4-byte aligned.
func TestAlignmentProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		e := NewEncoder(64)
		for _, c := range chunks {
			e.Opaque(c)
		}
		return e.Len()%4 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLenHelpers(t *testing.T) {
	if FixedLen(0) != 0 || FixedLen(1) != 4 || FixedLen(4) != 4 || FixedLen(5) != 8 {
		t.Fatal("FixedLen wrong")
	}
	if OpaqueLen(0) != 4 || OpaqueLen(3) != 8 {
		t.Fatal("OpaqueLen wrong")
	}
}
