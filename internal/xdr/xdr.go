// Package xdr implements the subset of XDR (RFC 1832, External Data
// Representation) needed to marshal SunRPC and NFSv3 messages. The
// simulation carries real encoded bytes on its virtual wire so that
// message sizes — and therefore transmission times and IP fragment counts —
// are faithful to what the 2.4.4 client put on the network.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the decoder.
var (
	ErrShortBuffer = errors.New("xdr: short buffer")
	ErrBadLength   = errors.New("xdr: invalid length")
)

// Encoder appends XDR-encoded values to a buffer. The zero value is ready
// to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// The RPC hot paths recycle encoders and wire buffers instead of
// allocating one per message: a thousand-client fleet encodes millions
// of 8 KiB WRITE payloads, and per-RPC allocation is almost entirely GC
// pressure. Buffer contents never influence behaviour (every byte is
// written before it is read), so pooling cannot change simulation
// output; sync.Pool keeps concurrent sweep workers race-free.
var (
	encPool sync.Pool
	bufPool sync.Pool
)

// AcquireEncoder returns a pooled encoder. Pair with Release once the
// encoded bytes are no longer referenced by anyone.
func AcquireEncoder() *Encoder {
	e, _ := encPool.Get().(*Encoder)
	if e == nil {
		e = &Encoder{}
	}
	if e.buf == nil {
		if b, ok := bufPool.Get().([]byte); ok {
			e.buf = b
		} else {
			e.buf = make([]byte, 0, 256)
		}
	}
	return e
}

// Release returns the encoder and its buffer to the pool. The caller
// asserts that no slice of the buffer (Bytes, decoded aliases) is still
// live.
func (e *Encoder) Release() {
	if e.buf != nil {
		bufPool.Put(e.buf[:0])
		e.buf = nil
	}
	encPool.Put(e)
}

// RecycleBuffer returns a wire payload whose bytes are dead — fully
// consumed by a decoder whose aliases have been dropped — to the encode
// buffer pool.
func RecycleBuffer(b []byte) { bufPool.Put(b[:0]) }

// Bytes returns the encoded buffer (not a copy).
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Grow reserves capacity for at least n more bytes, so that encoding a
// payload whose size is known up front costs one reallocation instead of
// a doubling series of appends.
func (e *Encoder) Grow(n int) {
	if cap(e.buf)-len(e.buf) < n {
		nb := make([]byte, len(e.buf), len(e.buf)+n)
		copy(nb, e.buf)
		e.buf = nb
	}
}

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR hyper).
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Bool encodes a boolean as a 32-bit 0/1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Opaque encodes variable-length opaque data: a length word followed by
// the bytes padded to a 4-byte boundary.
func (e *Encoder) Opaque(b []byte) {
	e.Uint32(uint32(len(b)))
	e.FixedOpaque(b)
}

// FixedOpaque encodes fixed-length opaque data (bytes plus padding, no
// length word).
func (e *Encoder) FixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	if pad := (4 - len(b)%4) % 4; pad > 0 {
		e.buf = append(e.buf, make([]byte, pad)...)
	}
}

// String encodes an XDR string (same wire form as Opaque).
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder consumes XDR-encoded values from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder reading from b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of consumed bytes.
func (d *Decoder) Offset() int { return d.off }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Bool decodes a boolean; any nonzero word is true (per RFC 1832 booleans
// are 0 or 1, but we are liberal in what we accept).
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	return v != 0, err
}

// Opaque decodes variable-length opaque data, returning a copy. Like
// every other read, it is atomic on failure: a bad length restores the
// cursor to before the length word.
func (d *Decoder) Opaque() ([]byte, error) {
	start := d.off
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > uint32(d.Remaining()) {
		d.off = start
		return nil, ErrBadLength
	}
	b, err := d.FixedOpaque(int(n))
	if err != nil {
		d.off = start
	}
	return b, err
}

// FixedOpaque decodes n bytes of fixed-length opaque data plus padding.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrBadLength
	}
	padded := n + (4-n%4)%4
	if d.Remaining() < padded {
		return nil, ErrShortBuffer
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += padded
	return out, nil
}

// OpaqueRef decodes variable-length opaque data like Opaque but returns
// a subslice of the decoder's buffer instead of a copy. The result is
// only valid while the underlying buffer is, and must not be mutated.
// Hot paths (bulk WRITE/READ payloads) use it to avoid copying data the
// simulation never inspects.
func (d *Decoder) OpaqueRef() ([]byte, error) {
	start := d.off
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > uint32(d.Remaining()) {
		d.off = start
		return nil, ErrBadLength
	}
	padded := int(n) + (4-int(n)%4)%4
	if d.Remaining() < padded {
		d.off = start
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += padded
	return b, nil
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}

// OpaqueLen returns the encoded size of variable-length opaque data of n
// bytes: 4-byte length word plus the payload rounded up to 4 bytes.
func OpaqueLen(n int) int { return 4 + FixedLen(n) }

// FixedLen returns the encoded size of n bytes of fixed opaque data.
func FixedLen(n int) int { return n + (4-n%4)%4 }

// StringLen returns the encoded size of an XDR string.
func StringLen(s string) int { return OpaqueLen(len(s)) }

// Check is a convenience for decode sequences: it returns the first
// non-nil error.
func Check(errs ...error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("xdr: field %d: %w", i, err)
		}
	}
	return nil
}
