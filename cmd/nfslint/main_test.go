package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVersionProbe checks the -V=full fast path the go tool uses to
// compute a vettool's cache ID: "<name> version <ver>", at least three
// fields, version not "devel".
func TestVersionProbe(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-V=full) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	fields := strings.Fields(stdout.String())
	if len(fields) < 3 || fields[1] != "version" || fields[2] == "devel" {
		t.Fatalf("-V=full printed %q; want \"<name> version <ver>\"", stdout.String())
	}
}

// TestBadFixture runs the full suite over a package that violates every
// invariant and asserts each analyzer reports its documented message.
func TestBadFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/bad"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run(bad) = %d, want 2 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"(walltime)", "breaks virtual-time determinism",
		"(seededrand)", "process-global stream",
		"(maporder)", "map iteration order is randomized",
		"(keyfmt)", "runtime-chosen precision",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("bad-fixture output missing %q; got:\n%s", want, out)
		}
	}
}

// TestCleanFixture asserts the repaired twin of the bad fixture passes
// silently.
func TestCleanFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run(clean) = %d, want 0; output:\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("run(clean) printed diagnostics:\n%s", stdout.String())
	}
}

// TestVetUnitVetxOnly checks the vet protocol's facts-only invocation:
// nfslint must write the VetxOutput file and exit 0 without analyzing.
func TestVetUnitVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "unit.vetx")
	cfg, err := json.Marshal(vetConfig{
		ID:         "repro/internal/xdr",
		ImportPath: "repro/internal/xdr",
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, cfg, 0o666); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(vet.cfg VetxOnly) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("VetxOutput not written: %v", err)
	}
}
