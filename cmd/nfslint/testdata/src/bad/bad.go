// Package bad compiles cleanly but violates every determinism
// invariant nfslint enforces. cmd/nfslint's tests run the multichecker
// over it and assert that all four analyzers fire.
package bad

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

type Scenario struct {
	Loss float64
}

// Key commits a float with runtime-chosen precision: keyfmt.
func (sc Scenario) Key() string {
	return fmt.Sprintf("l%v", sc.Loss)
}

// Stamp reads the wall clock: walltime.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Pick draws from the process-global stream: seededrand.
func Pick(n int) int {
	return rand.Intn(n)
}

// Dump writes map entries in iteration order: maporder.
func Dump(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v)
	}
}
