// Package clean does the same jobs as package bad the deterministic
// way; nfslint must stay silent on it.
package clean

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

type Scenario struct {
	Loss float64
}

type Sim struct{ seed int64 }

func (s *Sim) Seed() int64 { return s.seed }

// Key pins the float encoding explicitly.
func (sc Scenario) Key() string {
	return "l" + strconv.FormatFloat(sc.Loss, 'g', -1, 64)
}

// Pick draws from a stream derived from the scenario seed with a
// repo-unique salt.
func Pick(s *Sim, n int) int {
	rng := rand.New(rand.NewSource(s.Seed()*0x9E3779B1 + 0x636c6e31))
	return rng.Intn(n)
}

// Dump emits map entries in sorted key order.
func Dump(m map[string]int, b *strings.Builder) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s=%d\n", k, m[k])
	}
}
