// Command nfslint runs the determinism analyzers (walltime, seededrand,
// maporder, keyfmt — see DESIGN.md §11) over Go packages.
//
// Standalone mode takes package patterns like the go tool:
//
//	go run ./cmd/nfslint ./...
//
// It loads the matched packages, runs every analyzer, prints findings to
// stdout as file:line:col: message (analyzer), and exits 2 if there were
// any. Standalone mode sees the whole pattern set at once, so the
// repo-wide seededrand salt-uniqueness check is exact.
//
// The binary also speaks the `go vet -vettool` protocol, so the same
// analyzers run under the build cache's fine-grained invalidation:
//
//	go build -o nfslint ./cmd/nfslint
//	go vet -vettool=./nfslint ./...
//
// In that mode the go tool invokes nfslint once per compilation unit
// with a vet.cfg JSON file; findings go to stderr and the exit status is
// 2, matching vet's own convention. Per-unit invocation means the salt
// check only catches collisions within one package there — standalone
// mode (what CI runs) remains the authority for the repo-wide check.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

// version is printed for the go tool's -V=full probe. The format is
// fixed by cmd/go's tool-ID computation: at least three fields, of the
// form "<name> version <semver-ish>".
const version = "nfslint version v7.0.0-determinism"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it dispatches between the -V probe,
// vet-unit mode, and standalone pattern mode, and returns the process
// exit code (0 clean, 1 operational error, 2 findings).
func run(args []string, stdout, stderr io.Writer) int {
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Fprintln(stdout, version)
			return 0
		case a == "-flags" || a == "--flags":
			// The go tool asks for the analyzer flag set as JSON;
			// nfslint exposes none.
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasPrefix(a, "-"):
			// Tolerate flags the go tool forwards (e.g. vet's own
			// analyzer toggles); nfslint always runs its full suite.
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runVetUnit(patterns[0], stderr)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "nfslint:", err)
		return 1
	}
	diags, err := lint.Check(pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "nfslint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON the go tool writes for -vettool
// invocations (cmd/go/internal/work).  Fields nfslint does not consume
// are kept so the decode is strict about shape without erroring.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by a vet.cfg file.
// The protocol requires writing VetxOutput (facts for dependents; empty
// here, nfslint's only cross-package state lives in standalone mode)
// even when there is nothing to report.
func runVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "nfslint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "nfslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "nfslint:", err)
			return false
		}
		return true
	}
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] || len(cfg.GoFiles) == 0 {
		if !writeVetx() {
			return 1
		}
		return 0
	}
	fset := token.NewFileSet()
	imp := loader.NewImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, err := loader.TypeCheck(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if !writeVetx() {
			return 1
		}
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "nfslint:", err)
		return 1
	}
	pkg.Dir = cfg.Dir
	diags, err := lint.Check([]*loader.Package{pkg})
	if err != nil {
		fmt.Fprintln(stderr, "nfslint:", err)
		return 1
	}
	if !writeVetx() {
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
