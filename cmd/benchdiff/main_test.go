package main

import (
	"strings"
	"testing"
)

func res(name string, metrics map[string]float64) Result {
	return Result{Name: name, Runs: 1, NsPerOp: 1, Metrics: metrics}
}

func TestClassifyPolarity(t *testing.T) {
	cases := map[string]polarity{
		"write-MB/s":         higherBetter,
		"filer-MB/s@100MB":   higherBetter,
		"filer-tx/s":         higherBetter,
		"ac-hit-rate":        higherBetter,
		"mean-us":            lowerBetter,
		"filer-fsync-ms":     lowerBetter,
		"slope-ns/call":      lowerBetter,
		"spikes":             ungated,
		"spike-period-calls": ungated,
	}
	for unit, want := range cases {
		if got := classify(unit); got != want {
			t.Errorf("classify(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	oldSet := map[string]Result{
		"BenchmarkA": res("BenchmarkA", map[string]float64{"write-MB/s": 100, "mean-us": 50}),
	}
	// Throughput drop beyond 15% fails.
	newSet := map[string]Result{
		"BenchmarkA": res("BenchmarkA", map[string]float64{"write-MB/s": 80, "mean-us": 50}),
	}
	failures, _ := Diff(oldSet, newSet, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "write-MB/s") {
		t.Fatalf("failures = %v", failures)
	}
	// Latency rise beyond 15% fails.
	newSet["BenchmarkA"] = res("BenchmarkA", map[string]float64{"write-MB/s": 100, "mean-us": 60})
	failures, _ = Diff(oldSet, newSet, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "mean-us") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestDiffToleratesDriftWithinThreshold(t *testing.T) {
	oldSet := map[string]Result{
		"BenchmarkA": res("BenchmarkA", map[string]float64{"write-MB/s": 100, "mean-us": 50, "spikes": 10}),
	}
	newSet := map[string]Result{
		// 10% worse both ways, and an ungated metric doubling: all pass.
		"BenchmarkA": res("BenchmarkA", map[string]float64{"write-MB/s": 90, "mean-us": 55, "spikes": 20}),
	}
	if failures, _ := Diff(oldSet, newSet, 0.15); len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	// Improvements never fail, however large.
	newSet["BenchmarkA"] = res("BenchmarkA", map[string]float64{"write-MB/s": 500, "mean-us": 1, "spikes": 0})
	if failures, _ := Diff(oldSet, newSet, 0.15); len(failures) != 0 {
		t.Fatalf("improvement flagged: %v", failures)
	}
}

func TestDiffReportsMissingAndNewBenchmarks(t *testing.T) {
	oldSet := map[string]Result{
		"BenchmarkGone": res("BenchmarkGone", map[string]float64{"write-MB/s": 10}),
	}
	newSet := map[string]Result{
		"BenchmarkNew": res("BenchmarkNew", map[string]float64{"write-MB/s": 10}),
	}
	failures, notes := Diff(oldSet, newSet, 0.15)
	if len(failures) != 0 {
		t.Fatalf("membership changes must not fail the gate: %v", failures)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"BenchmarkGone: only in old artifact", "BenchmarkNew: new benchmark"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes missing %q:\n%s", want, joined)
		}
	}
}

func TestRegressionZeroBaseline(t *testing.T) {
	if reg := regression("write-MB/s", 0, 0); reg != 0 {
		t.Fatalf("zero baseline regressed: %v", reg)
	}
}
