package main

import (
	"strings"
	"testing"
)

func res(name string, metrics map[string]float64) Result {
	return Result{Name: name, Runs: 1, NsPerOp: 1, Metrics: metrics}
}

func TestClassifyPolarity(t *testing.T) {
	cases := map[string]polarity{
		"write-MB/s":         higherBetter,
		"filer-MB/s@100MB":   higherBetter,
		"filer-tx/s":         higherBetter,
		"ac-hit-rate":        higherBetter,
		"mean-us":            lowerBetter,
		"filer-fsync-ms":     lowerBetter,
		"slope-ns/call":      lowerBetter,
		"spikes":             ungated,
		"spike-period-calls": ungated,
	}
	for unit, want := range cases {
		if got := classify(unit); got != want {
			t.Errorf("classify(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	oldSet := map[string]Result{
		"BenchmarkA": res("BenchmarkA", map[string]float64{"write-MB/s": 100, "mean-us": 50}),
	}
	// Throughput drop beyond 15% fails.
	newSet := map[string]Result{
		"BenchmarkA": res("BenchmarkA", map[string]float64{"write-MB/s": 80, "mean-us": 50}),
	}
	failures, _ := Diff(oldSet, newSet, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "write-MB/s") {
		t.Fatalf("failures = %v", failures)
	}
	// Latency rise beyond 15% fails.
	newSet["BenchmarkA"] = res("BenchmarkA", map[string]float64{"write-MB/s": 100, "mean-us": 60})
	failures, _ = Diff(oldSet, newSet, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "mean-us") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestDiffToleratesDriftWithinThreshold(t *testing.T) {
	oldSet := map[string]Result{
		"BenchmarkA": res("BenchmarkA", map[string]float64{"write-MB/s": 100, "mean-us": 50, "spikes": 10}),
	}
	newSet := map[string]Result{
		// 10% worse both ways, and an ungated metric doubling: all pass.
		"BenchmarkA": res("BenchmarkA", map[string]float64{"write-MB/s": 90, "mean-us": 55, "spikes": 20}),
	}
	if failures, _ := Diff(oldSet, newSet, 0.15); len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	// Improvements never fail, however large.
	newSet["BenchmarkA"] = res("BenchmarkA", map[string]float64{"write-MB/s": 500, "mean-us": 1, "spikes": 0})
	if failures, _ := Diff(oldSet, newSet, 0.15); len(failures) != 0 {
		t.Fatalf("improvement flagged: %v", failures)
	}
}

func TestDiffReportsMissingAndNewBenchmarks(t *testing.T) {
	oldSet := map[string]Result{
		"BenchmarkGone": res("BenchmarkGone", map[string]float64{"write-MB/s": 10}),
	}
	newSet := map[string]Result{
		"BenchmarkNew": res("BenchmarkNew", map[string]float64{"write-MB/s": 10}),
	}
	failures, notes := Diff(oldSet, newSet, 0.15)
	if len(failures) != 0 {
		t.Fatalf("membership changes must not fail the gate: %v", failures)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"BenchmarkGone: only in old artifact", "BenchmarkNew: new benchmark"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes missing %q:\n%s", want, joined)
		}
	}
}

func TestRegressionZeroBaseline(t *testing.T) {
	if reg := regression("write-MB/s", 0, 0); reg != 0 {
		t.Fatalf("zero baseline regressed: %v", reg)
	}
}

func nsRes(name string, ns float64) Result {
	return Result{Name: name, Runs: 1, NsPerOp: ns}
}

func TestWallclockGatesKernelBenchmarksOnly(t *testing.T) {
	oldSet := map[string]Result{
		"BenchmarkKernelSchedule": nsRes("BenchmarkKernelSchedule", 100),
		"BenchmarkRandomSweep":    nsRes("BenchmarkRandomSweep", 1e9),
		"BenchmarkFleet1000":      nsRes("BenchmarkFleet1000", 5e9),
		"BenchmarkDBLoad":         nsRes("BenchmarkDBLoad", 100),
	}
	newSet := map[string]Result{
		// 3x slowdowns across the board; only the kernel-speed names
		// may fail, the rest stay host-noise.
		"BenchmarkKernelSchedule": nsRes("BenchmarkKernelSchedule", 300),
		"BenchmarkRandomSweep":    nsRes("BenchmarkRandomSweep", 3e9),
		"BenchmarkFleet1000":      nsRes("BenchmarkFleet1000", 15e9),
		"BenchmarkDBLoad":         nsRes("BenchmarkDBLoad", 300),
	}
	failures := DiffWallclock(oldSet, newSet, 0.5)
	if len(failures) != 3 {
		t.Fatalf("failures = %v, want the three kernel-speed benchmarks", failures)
	}
	joined := strings.Join(failures, "\n")
	for _, want := range []string{"BenchmarkKernelSchedule", "BenchmarkRandomSweep", "BenchmarkFleet1000"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("failures missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "BenchmarkDBLoad") {
		t.Fatalf("non-kernel benchmark gated on wall-clock:\n%s", joined)
	}
}

func TestWallclockPolarity(t *testing.T) {
	oldSet := map[string]Result{"BenchmarkKernelSchedule": nsRes("BenchmarkKernelSchedule", 300)}
	// A speedup must never fail: ns/op is lower-better.
	newSet := map[string]Result{"BenchmarkKernelSchedule": nsRes("BenchmarkKernelSchedule", 100)}
	if failures := DiffWallclock(oldSet, newSet, 0.5); len(failures) != 0 {
		t.Fatalf("speedup flagged: %v", failures)
	}
	// Within-threshold drift passes, beyond-threshold slowdown fails.
	newSet["BenchmarkKernelSchedule"] = nsRes("BenchmarkKernelSchedule", 420)
	if failures := DiffWallclock(oldSet, newSet, 0.5); len(failures) != 0 {
		t.Fatalf("within-threshold drift flagged: %v", failures)
	}
	newSet["BenchmarkKernelSchedule"] = nsRes("BenchmarkKernelSchedule", 500)
	if failures := DiffWallclock(oldSet, newSet, 0.5); len(failures) != 1 {
		t.Fatalf("slowdown not flagged: %v", failures)
	}
}

func TestWallclockSkipsMissingAndZero(t *testing.T) {
	oldSet := map[string]Result{
		"BenchmarkKernelSchedule": nsRes("BenchmarkKernelSchedule", 0), // no baseline
		"BenchmarkKernelGone":     nsRes("BenchmarkKernelGone", 100),   // vanished
	}
	newSet := map[string]Result{
		"BenchmarkKernelSchedule": nsRes("BenchmarkKernelSchedule", 500),
		"BenchmarkKernelNew":      nsRes("BenchmarkKernelNew", 100), // added this PR
	}
	if failures := DiffWallclock(oldSet, newSet, 0.5); len(failures) != 0 {
		t.Fatalf("membership changes or zero baselines must not fail: %v", failures)
	}
}
