// Command benchdiff gates benchmark regressions: it compares two
// benchjson artifacts and fails when any gated metric regressed by more
// than the threshold:
//
//	benchdiff -old BENCH_PR5.json -new BENCH_PR6.json -threshold 0.15
//
// The simulator's benchmark metrics are deterministic quantities from
// the simulated clock (throughputs, latencies, RPC counts), so they are
// stable across CI hosts; only those metrics are gated. Wall-clock
// ns/op and iteration counts vary with the runner and are ignored —
// except under -wallclock, which additionally gates ns_per_op on the
// kernel-speed benchmarks (BenchmarkKernel*, BenchmarkRandomSweep,
// BenchmarkFleet1000) at its own, looser threshold:
//
//	benchdiff -old BENCH_PR7.json -new BENCH_PR8.json -threshold 0.15 -wallclock 0.5
//
// Those benchmarks exist to keep the simulation kernel fast enough for
// thousand-client fleets, so a halving of their speed fails the gate
// even though the number is host-dependent; both artifacts come from
// the same runner class in CI.
//
// Gating polarity comes from the metric unit: MB/s- and tx/s-style
// units regress when they fall, while -us/-ms/ns-per-call latencies
// regress when they rise. Units naming neither a rate nor a latency
// (spike counts, call positions) are compared for information only.
// Benchmarks present on only one side are reported but never fatal, so
// adding a benchmark in a PR does not break the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result mirrors benchjson's output schema.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type polarity int

const (
	ungated      polarity = iota // informational only
	higherBetter                 // throughput-style: regression = drop
	lowerBetter                  // latency-style: regression = rise
)

// classify maps a metric unit to its gating polarity.
func classify(unit string) polarity {
	switch {
	case strings.Contains(unit, "MB/s"), strings.Contains(unit, "tx/s"),
		strings.Contains(unit, "events/sec"), strings.Contains(unit, "hit-rate"):
		return higherBetter
	case strings.HasSuffix(unit, "-us"), strings.HasSuffix(unit, "-ms"),
		strings.Contains(unit, "ns/call"):
		return lowerBetter
	}
	return ungated
}

// regression returns the fractional regression of new vs old under the
// unit's polarity: positive means worse, zero or negative means fine.
// Ungated units and zero baselines never regress.
func regression(unit string, oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	switch classify(unit) {
	case higherBetter:
		return (oldV - newV) / oldV
	case lowerBetter:
		return (newV - oldV) / oldV
	}
	return 0
}

func load(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []Result
	if err := json.Unmarshal(raw, &list); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	byName := make(map[string]Result, len(list))
	for _, r := range list {
		byName[r.Name] = r
	}
	return byName, nil
}

// Diff compares every metric shared by the two artifacts and returns
// human-readable reports of the regressions beyond the threshold plus
// the notes (new/vanished benchmarks, ungated drifts).
func Diff(oldSet, newSet map[string]Result, threshold float64) (failures, notes []string) {
	names := make([]string, 0, len(oldSet))
	for name := range oldSet {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oldR := oldSet[name]
		newR, ok := newSet[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: only in old artifact", name))
			continue
		}
		units := make([]string, 0, len(oldR.Metrics))
		for unit := range oldR.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			oldV := oldR.Metrics[unit]
			newV, ok := newR.Metrics[unit]
			if !ok {
				notes = append(notes, fmt.Sprintf("%s: metric %s vanished", name, unit))
				continue
			}
			if reg := regression(unit, oldV, newV); reg > threshold {
				failures = append(failures, fmt.Sprintf("%s: %s regressed %.1f%% (%.3g -> %.3g)",
					name, unit, 100*reg, oldV, newV))
			}
		}
	}
	for name := range newSet {
		if _, ok := oldSet[name]; !ok {
			notes = append(notes, fmt.Sprintf("%s: new benchmark", name))
		}
	}
	sort.Strings(notes)
	return failures, notes
}

// wallclockGated reports whether a benchmark's wall-clock ns/op is
// kernel speed we gate: the sim microbenchmarks and the two whole-sweep
// workloads the kernel rework is judged by.
func wallclockGated(name string) bool {
	return strings.HasPrefix(name, "BenchmarkKernel") ||
		strings.HasPrefix(name, "BenchmarkRandomSweep") ||
		strings.HasPrefix(name, "BenchmarkFleet1000")
}

// DiffWallclock gates ns_per_op on the wallclockGated benchmarks:
// lower is better, and only slowdowns beyond the threshold fail.
// Benchmarks missing from either artifact are skipped (reported by Diff
// as notes already).
func DiffWallclock(oldSet, newSet map[string]Result, threshold float64) (failures []string) {
	names := make([]string, 0, len(oldSet))
	for name := range oldSet {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !wallclockGated(name) {
			continue
		}
		oldR := oldSet[name]
		newR, ok := newSet[name]
		if !ok || oldR.NsPerOp == 0 {
			continue
		}
		if reg := (newR.NsPerOp - oldR.NsPerOp) / oldR.NsPerOp; reg > threshold {
			failures = append(failures, fmt.Sprintf("%s: wall-clock regressed %.1f%% (%.3gns -> %.3gns)",
				name, 100*reg, oldR.NsPerOp, newR.NsPerOp))
		}
	}
	return failures
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson artifact")
	newPath := flag.String("new", "", "candidate benchjson artifact")
	threshold := flag.Float64("threshold", 0.15, "fractional regression that fails the gate")
	wallclock := flag.Float64("wallclock", 0, "if > 0, also gate ns_per_op of the kernel-speed benchmarks at this looser threshold")
	flag.Parse()
	if *oldPath == "" || *newPath == "" || *threshold < 0 || *wallclock < 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -old baseline.json -new candidate.json [-threshold 0.15] [-wallclock 0.5]")
		os.Exit(2)
	}
	oldSet, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newSet, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	failures, notes := Diff(oldSet, newSet, *threshold)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if *wallclock > 0 {
		failures = append(failures, DiffWallclock(oldSet, newSet, *wallclock)...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		fmt.Printf("benchdiff: %d metric(s) regressed more than %.0f%%\n", len(failures), 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no gated metric regressed more than %.0f%%\n", 100**threshold)
}
