// Command nfssweep runs arbitrary scenario sweeps over the simulator:
// the cross-product of the axis flags below is expanded into scenarios,
// executed across a worker pool (one private test bed per scenario), and
// reported as per-run results plus per-cell mean/stddev summaries.
// Output is deterministic: the same grid and seeds produce byte-identical
// results regardless of -workers.
//
// Examples:
//
//	nfssweep -servers filer,linux,local -configs stock -sizes 25..450:25
//	    the Figure 1 grid
//	nfssweep -servers filer -configs stock,nolimits,hash,enhanced \
//	    -sizes 40 -repeats 5 -format csv -out results/
//	    the paper's fix progression with error bars
//	nfssweep -servers filer -configs enhanced -sizes 100 -cpus 1,2,4 \
//	    -jumbo both -full
//	    a sweep the paper never ran
//	nfssweep -servers filer,linux -configs stock,enhanced -clients 1,2,4,8
//	    multi-client scale-out: N client machines against one server
//	nfssweep -transport udp,tcp -loss 0,0.01,0.05 -sizes 25
//	    lossy network: UDP loss amplification vs TCP segment recovery
//	nfssweep -workload write,rewrite,read,mixed -servers filer,linux -sizes 25
//	    the full I/O space: write-behind, readahead, and mixed pressure
//	nfssweep -workload randread,randwrite,db -configs stock,hash -sizes 25
//	    random-access and durability: the database-style patterns that
//	    stress the pending-request lookup (fix 2) and group commit
//	nfssweep -workload randwrite -fsync-every 50 -full -sizes 25
//	    group commit on any write workload: flush every 50 chunks
//	nfssweep -workload zipf -files 100,1000 -actimeout off,default -sizes 4
//	    the many-file metadata workload: Zipfian opens/writes/reads/
//	    stats/removes, with and without the client attribute cache
//	nfssweep -workload shared -clients 4 -shared 25,50,75 \
//	    -consistency ttl,strict,noac -sizes 4
//	    cache coherence: writers and readers on one shared file, the
//	    staleness-vs-throughput trade-off across consistency modes
//
// See docs/experiments.md for the axis semantics and output schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bonnie"
	"repro/internal/chaos"
	"repro/internal/harness"
)

var (
	servers = flag.String("servers", "filer", "comma list of servers: filer, linux, slow100, local")
	configs = flag.String("configs", "stock", "comma list of client configs: stock, nolimits, hash, enhanced")
	sizes   = flag.String("sizes", "40", "file sizes in MB: comma list (25,100) or range lo..hi:step (25..450:25)")
	wsizes  = flag.String("wsizes", "", "comma list of wsize bytes (multiples of 4096; default: each config's own)")
	cpus    = flag.String("cpus", "", "comma list of client CPU counts (default 2)")
	clients = flag.String("clients", "", "comma list of concurrent client machines per run, e.g. 1,2,4,8 (default 1)")
	caches  = flag.String("cache", "", "comma list of page-cache limits in MB (default: the 2.4.4 budget)")
	jumbo   = flag.String("jumbo", "off", "jumbo frames: off, on, or both (an axis)")
	trans   = flag.String("transport", "udp", "comma list of RPC transports: udp, tcp")
	loss    = flag.String("loss", "0", "comma list of per-fragment drop probabilities, e.g. 0,0.01,0.05")
	workld  = flag.String("workload", "write", "comma list of workloads: write, rewrite, read, mixed, randread, randwrite, db, zipf, shared")
	files   = flag.String("files", "", "comma list of zipf file populations, e.g. 100,1000 (default 100)")
	zipfS   = flag.String("zipf-s", "", "comma list of zipf skew exponents, e.g. 0.8,1.2,uniform (default 1.2)")
	opMix   = flag.String("opmix", "", "zipf op mix as create/write/read/stat/remove percentages, e.g. 10/30/40/15/5 (not an axis)")
	acTime  = flag.String("actimeout", "", "comma list of attribute-cache windows: off, default, or durations like 3s,60s")
	shared  = flag.String("shared", "", "comma list of shared-workload writer percentages, e.g. 25,50,75 (default 50)")
	readLag = flag.Duration("readlag", 0, "shared-workload pause between reader passes (e.g. 5ms; not an axis)")
	consist = flag.String("consistency", "", "comma list of cache-consistency modes: ttl, strict, noac")
	fsyncEv = flag.Int("fsync-every", 0, "flush (group commit) every N chunks during the I/O phase; 0 = never (db defaults to 32; not an axis)")
	jitter  = flag.Duration("netjitter", 0, "max extra random delivery delay per datagram (e.g. 200us; not an axis)")
	seed    = flag.Int64("seed", 1, "base simulation seed")
	repeats = flag.Int("repeats", 1, "repeats per cell with seeds seed, seed+1, ...")
	workers = flag.Int("workers", 0, "worker-pool size (0 = one per CPU); does not change results")
	scnFile = flag.String("scenario", "", "run a chaos scenario file (YAML or JSON) instead of a grid sweep; see docs/experiments.md")
	format  = flag.String("format", "table", "output format: csv, json, or table")
	outDir  = flag.String("out", "", "directory to write results.<format> and summary.<format> (default: stdout only)")
	full    = flag.Bool("full", false, "run the full write+flush+close sequence instead of the write phase only")
	quiet   = flag.Bool("quiet", false, "suppress per-run progress on stderr")
)

func fatalf(f string, args ...any) {
	fmt.Fprintf(os.Stderr, "nfssweep: "+f+"\n", args...)
	os.Exit(2)
}

func parseIntList(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func buildGrid() harness.Grid {
	var g harness.Grid
	var err error
	if g.Servers, err = harness.ParseServers(*servers); err != nil {
		fatalf("%v", err)
	}
	if g.Configs, err = harness.ParseConfigs(*configs); err != nil {
		fatalf("%v", err)
	}
	if g.FileSizesMB, err = harness.ParseSizes(*sizes); err != nil {
		fatalf("%v", err)
	}
	if g.WSizes, err = parseIntList(*wsizes); err != nil {
		fatalf("-wsizes: %v", err)
	}
	for _, ws := range g.WSizes {
		if ws%4096 != 0 {
			fatalf("-wsizes: %d is not a multiple of the 4096-byte page size", ws)
		}
	}
	if g.ClientCPUs, err = parseIntList(*cpus); err != nil {
		fatalf("-cpus: %v", err)
	}
	if g.Clients, err = parseIntList(*clients); err != nil {
		fatalf("-clients: %v", err)
	}
	cacheMBs, err := parseIntList(*caches)
	if err != nil {
		fatalf("-cache: %v", err)
	}
	for _, mb := range cacheMBs {
		g.CacheLimits = append(g.CacheLimits, int64(mb)<<20)
	}
	switch *jumbo {
	case "off":
	case "on":
		g.Jumbo = []bool{true}
	case "both":
		g.Jumbo = []bool{false, true}
	default:
		fatalf("-jumbo must be off, on, or both")
	}
	if g.Transports, err = harness.ParseTransports(*trans); err != nil {
		fatalf("-transport: %v", err)
	}
	if g.LossRates, err = harness.ParseLossRates(*loss); err != nil {
		fatalf("-loss: %v", err)
	}
	if g.Workloads, err = harness.ParseWorkloads(*workld); err != nil {
		fatalf("-workload: %v", err)
	}
	if *files != "" {
		if g.FileCounts, err = harness.ParseFileCounts(*files); err != nil {
			fatalf("-files: %v", err)
		}
	}
	if *zipfS != "" {
		if g.ZipfSs, err = harness.ParseZipfSs(*zipfS); err != nil {
			fatalf("-zipf-s: %v", err)
		}
	}
	if *opMix != "" {
		if g.Mix, err = bonnie.ParseOpMix(*opMix); err != nil {
			fatalf("-opmix: %v", err)
		}
	}
	if *acTime != "" {
		if g.AcTimeouts, err = harness.ParseAcTimeouts(*acTime); err != nil {
			fatalf("-actimeout: %v", err)
		}
	}
	if *shared != "" {
		if g.Sharings, err = harness.ParseSharings(*shared); err != nil {
			fatalf("-shared: %v", err)
		}
	}
	if *readLag < 0 {
		fatalf("-readlag must be non-negative")
	}
	g.ReadLag = *readLag
	if *consist != "" {
		if g.Consistencies, err = harness.ParseConsistencies(*consist); err != nil {
			fatalf("-consistency: %v", err)
		}
	}
	if *fsyncEv < 0 {
		fatalf("-fsync-every must be non-negative")
	}
	g.FsyncEvery = *fsyncEv
	if *jitter < 0 {
		fatalf("-netjitter must be non-negative")
	}
	g.NetJitter = *jitter
	if *seed <= 0 {
		fatalf("-seed must be positive")
	}
	g.Seeds = []int64{*seed}
	if *repeats < 1 {
		fatalf("-repeats must be >= 1")
	}
	g.Repeats = *repeats
	g.SkipFlushClose = !*full
	return g
}

type renderers struct {
	results    func([]harness.Result) string
	aggregates func([]harness.Aggregate) string
	ext        string
}

// renderersFor resolves -format once, before the sweep runs, so a bad
// value fails fast instead of after minutes of simulation.
func renderersFor(format string) renderers {
	switch format {
	case "csv":
		return renderers{harness.ResultsCSV, harness.AggregatesCSV, "csv"}
	case "json":
		return renderers{harness.ResultsJSON, harness.AggregatesJSON, "json"}
	case "table":
		return renderers{harness.ResultsTable, harness.AggregatesTable, "txt"}
	}
	fatalf("-format must be csv, json, or table")
	panic("unreachable")
}

// runScenarioFile executes a chaos scenario file and prints each report.
// Exit status 1 when any scenario fails an assertion or errors
// unexpectedly. Output is byte-identical at any -workers value: each
// scenario is one deterministic simulation, and reports print in file
// order.
func runScenarioFile(path string, workers int, quiet bool) {
	scs, err := chaos.Load(path)
	if err != nil {
		fatalf("%v", err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "nfssweep: %d chaos scenarios from %s\n", len(scs), path)
	}
	failed := false
	for _, rep := range chaos.RunAll(scs, workers) {
		fmt.Print(rep.Render())
		if rep.Failed {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		fatalf("unexpected arguments %v (axes are flags; see -h)", flag.Args())
	}
	if *scnFile != "" {
		runScenarioFile(*scnFile, *workers, *quiet)
		return
	}
	render := renderersFor(*format)
	g := buildGrid()
	scenarios := g.Expand()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "nfssweep: %d scenarios (%d cells x %d repeats)\n",
			len(scenarios), len(scenarios) / *repeats, *repeats)
	}
	ran := 0
	runner := harness.Runner{Workers: *workers}
	if !*quiet {
		runner.OnResult = func(r harness.Result) {
			ran++
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s: %.1f MB/s\n", ran, len(scenarios), r.Name, r.WriteMBps)
		}
	}
	results := runner.Run(scenarios)
	aggs := harness.AggregateResults(results)
	resOut, sumOut := render.results(results), render.aggregates(aggs)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		resPath := filepath.Join(*outDir, "results."+render.ext)
		sumPath := filepath.Join(*outDir, "summary."+render.ext)
		if err := os.WriteFile(resPath, []byte(resOut), 0o644); err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(sumPath, []byte(sumOut), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "nfssweep: wrote %s and %s\n", resPath, sumPath)
	}
	fmt.Print(resOut)
	if *repeats > 1 {
		fmt.Println("\n-- per-cell summary over repeats --")
		fmt.Print(sumOut)
	}
}
