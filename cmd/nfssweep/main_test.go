package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/bonnie"
	"repro/internal/harness"
)

// setFlags applies flag values for one test and restores the previous
// values afterward, since the axis flags are package globals.
func setFlags(t *testing.T, kv map[string]string) {
	t.Helper()
	for name, value := range kv {
		f := flag.Lookup(name)
		if f == nil {
			t.Fatalf("no flag -%s", name)
		}
		prev := f.Value.String()
		if err := flag.Set(name, value); err != nil {
			t.Fatalf("set -%s=%s: %v", name, value, err)
		}
		t.Cleanup(func() { flag.Set(name, prev) })
	}
}

// The default flag values build the classic one-cell write grid, with
// none of the newer axes leaking into the scenario key.
func TestBuildGridDefaults(t *testing.T) {
	scens := buildGrid().Expand()
	if len(scens) != 1 {
		t.Fatalf("default grid expanded to %d scenarios, want 1", len(scens))
	}
	sc := scens[0]
	if sc.Workload != bonnie.WorkloadWrite || sc.FileMB != 40 {
		t.Fatalf("default scenario = %+v", sc)
	}
	if key := sc.Key(); strings.Contains(key, "/zipf") || strings.Contains(key, "/ac") {
		t.Fatalf("default key %q mentions zipf axes", key)
	}
}

// The zipf flags thread through to the grid: populations, skews, and
// cache windows are axes; the op mix is a scalar knob.
func TestBuildGridZipfAxes(t *testing.T) {
	setFlags(t, map[string]string{
		"workload":  "zipf",
		"sizes":     "4",
		"files":     "100,1000",
		"zipf-s":    "1.2,uniform",
		"opmix":     "10/30/40/15/5",
		"actimeout": "off,default",
	})
	g := buildGrid()
	scens := g.Expand()
	if len(scens) != 8 { // 2 populations x 2 skews x 2 cache windows
		t.Fatalf("zipf grid expanded to %d scenarios, want 8", len(scens))
	}
	wantMix := bonnie.OpMix{Create: 10, Write: 30, Read: 40, Stat: 15, Remove: 5}
	keys := map[string]bool{}
	for _, sc := range scens {
		if sc.Workload != bonnie.WorkloadZipf || sc.Mix != wantMix {
			t.Fatalf("scenario missing zipf knobs: %+v", sc)
		}
		keys[sc.Key()] = true
	}
	if len(keys) != 8 {
		t.Fatalf("zipf axes collapsed into %d keys", len(keys))
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("got %v, %v", got, err)
	}
	if out, err := parseIntList(""); err != nil || out != nil {
		t.Fatalf("empty spec: %v, %v", out, err)
	}
	for _, bad := range []string{"0", "-3", "x", "1,,2"} {
		if _, err := parseIntList(bad); err == nil {
			t.Fatalf("parseIntList(%q) accepted", bad)
		}
	}
}

func TestRenderersFor(t *testing.T) {
	for format, ext := range map[string]string{"csv": "csv", "json": "json", "table": "txt"} {
		r := renderersFor(format)
		if r.ext != ext || r.results == nil || r.aggregates == nil {
			t.Fatalf("renderersFor(%q) = %+v", format, r)
		}
	}
}

// One tiny scenario through the same path main drives: the default grid
// shrunk to 1 MB runs, produces a result row, and renders on every
// output format.
func TestOneScenarioRuns(t *testing.T) {
	setFlags(t, map[string]string{"sizes": "1"})
	scens := buildGrid().Expand()
	if len(scens) != 1 {
		t.Fatalf("expanded %d scenarios", len(scens))
	}
	results := (&harness.Runner{Workers: 1}).Run(scens)
	if len(results) != 1 || results[0].WriteMBps <= 0 {
		t.Fatalf("results = %+v", results)
	}
	for _, render := range []func([]harness.Result) string{
		harness.ResultsCSV, harness.ResultsJSON, harness.ResultsTable,
	} {
		if out := render(results); !strings.Contains(out, "filer") {
			t.Fatalf("render missing scenario row:\n%s", out)
		}
	}
}
