package main

import (
	"strconv"
	"strings"
	"testing"
)

// checkTraceCSV asserts the output is well-formed two-column CSV
// (call,latency_us header plus numeric rows) and returns the row count.
func checkTraceCSV(t *testing.T, out string) int {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace has %d lines, want header + rows", len(lines))
	}
	if lines[0] != "call,latency_us" {
		t.Fatalf("header = %q", lines[0])
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 2 {
			t.Fatalf("row %d has %d columns: %q", i, len(fields), line)
		}
		call, err := strconv.Atoi(fields[0])
		if err != nil || call != i {
			t.Fatalf("row %d call index = %q", i, fields[0])
		}
		if lat, err := strconv.ParseFloat(fields[1], 64); err != nil || lat < 0 {
			t.Fatalf("row %d latency = %q", i, fields[1])
		}
	}
	return len(lines) - 1
}

// fig2 must emit the stock client's full 40 MB trace: one row per 8 KB
// write() call.
func TestFig2EmitsWellFormedCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full 40 MB Figure 2 simulation")
	}
	out, err := traceCSV("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if rows := checkTraceCSV(t, out); rows != 40<<20/8192 {
		t.Fatalf("fig2 rows = %d, want %d", rows, 40<<20/8192)
	}
}

// custom must honor the flags, including the workload selector — one
// trace row per chunk call for the sequential, random, and group-commit
// workloads alike.
func TestCustomEmitsWellFormedCSV(t *testing.T) {
	*mbFlag = 2
	defer func() { *mbFlag = 40 }()
	for _, wl := range []string{"write", "read", "randread", "randwrite", "db"} {
		*workloadFlag = wl
		out, err := traceCSV("custom")
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if rows := checkTraceCSV(t, out); rows != 2<<20/8192 {
			t.Fatalf("%s rows = %d, want %d", wl, rows, 2<<20/8192)
		}
	}
	*workloadFlag = "write"
}

func TestUnknownInputsError(t *testing.T) {
	if _, err := traceCSV("fig9"); err == nil {
		t.Fatal("unknown trace should error")
	}
	if _, err := custom("netapp", "stock", "write", 1); err == nil {
		t.Fatal("unknown server should error")
	}
	if _, err := custom("filer", "turbo", "write", 1); err == nil {
		t.Fatal("unknown client should error")
	}
	if _, err := custom("filer", "stock", "scan", 1); err == nil {
		t.Fatal("unknown workload should error")
	}
}

// The usage string must mention every supported subcommand.
func TestUsageMentionsAllSubcommands(t *testing.T) {
	line := usageLine()
	for _, sub := range []string{"fig2", "fig3", "fig4", "custom", "read"} {
		if !strings.Contains(line, sub) {
			t.Fatalf("usage %q missing subcommand %q", line, sub)
		}
	}
}
