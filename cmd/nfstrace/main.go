// Command nfstrace dumps the raw per-call latency traces behind Figures
// 2, 3 and 4 as CSV (call index, latency in µs), suitable for feeding
// straight into a plotting tool:
//
//	nfstrace fig2 > fig2.csv
//	nfstrace fig3 > fig3.csv
//	nfstrace fig4 > fig4.csv
//
// A custom run can be assembled with flags, driving any workload the
// benchmark supports (write, rewrite, read, mixed, randread, randwrite,
// db):
//
//	nfstrace -server linux -client stock -mb 40 custom
//	nfstrace -client enhanced -workload read -mb 40 custom
//	nfstrace -client stock -workload randwrite -mb 40 custom
//
// The read shorthand traces the sequential-read workload on the
// enhanced client (per-call read() latency, readahead visible as the
// flat stretches between batch-boundary stalls):
//
//	nfstrace read > read.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/experiments"
)

var (
	serverFlag   = flag.String("server", "filer", "server: filer, linux, slow100")
	clientFlag   = flag.String("client", "stock", "client: stock, nolimits, hash, enhanced")
	mbFlag       = flag.Int("mb", 40, "file size in MB")
	workloadFlag = flag.String("workload", "write", "workload for custom runs: write, rewrite, read, mixed, randread, randwrite, db")
)

// subcommands lists every trace this command can emit, in display order.
var subcommands = []string{"fig2", "fig3", "fig4", "custom", "read"}

// traceCSV produces the named trace's two-column CSV, or an error for an
// unknown name. Separated from main so tests can drive it directly.
func traceCSV(name string) (string, error) {
	switch name {
	case "fig2":
		return experiments.Fig2().Result.Trace.CSV(), nil
	case "fig3":
		return experiments.Fig3().Result.Trace.CSV(), nil
	case "fig4":
		return experiments.Fig4().Result.Trace.CSV(), nil
	case "custom":
		res, err := custom(*serverFlag, *clientFlag, *workloadFlag, *mbFlag)
		if err != nil {
			return "", err
		}
		return res.Trace.CSV(), nil
	case "read":
		res, err := custom("filer", "enhanced", "read", *mbFlag)
		if err != nil {
			return "", err
		}
		return res.Trace.CSV(), nil
	}
	return "", fmt.Errorf("unknown trace %q", name)
}

// usageLine names every subcommand, so -h and bad invocations always
// show the full set.
func usageLine() string {
	return "usage: nfstrace [flags] {" + strings.Join(subcommands, "|") + "}"
}

func usage() {
	fmt.Fprintln(os.Stderr, usageLine())
	flag.PrintDefaults()
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	out, err := traceCSV(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfstrace: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(out)
}

// custom assembles a test bed from names and runs one benchmark,
// returning its per-call latency trace.
func custom(server, client, workload string, mb int) (*bonnie.Result, error) {
	var srv nfssim.ServerKind
	switch server {
	case "filer":
		srv = nfssim.ServerFiler
	case "linux":
		srv = nfssim.ServerLinux
	case "slow100":
		srv = nfssim.ServerSlow100
	default:
		return nil, fmt.Errorf("unknown server %q", server)
	}
	var cfg core.Config
	switch client {
	case "stock":
		cfg = core.Stock244Config()
	case "nolimits":
		cfg = core.NoLimitsConfig()
	case "hash":
		cfg = core.HashConfig()
	case "enhanced":
		cfg = core.EnhancedConfig()
	default:
		return nil, fmt.Errorf("unknown client %q", client)
	}
	wl, err := bonnie.ParseWorkload(workload)
	if err != nil {
		return nil, err
	}
	tb := nfssim.NewTestbed(nfssim.Options{Server: srv, Client: cfg})
	return bonnie.RunWorkload(tb.Sim, "custom", tb.OpenSet(), bonnie.Config{
		FileSize:       int64(mb) << 20,
		Workload:       wl,
		TimeLimit:      time.Hour,
		SkipFlushClose: true,
	}), nil
}
