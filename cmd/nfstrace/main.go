// Command nfstrace dumps the raw per-call write() latency traces behind
// Figures 2, 3 and 4 as CSV (call index, latency in µs), suitable for
// feeding straight into a plotting tool:
//
//	nfstrace fig2 > fig2.csv
//	nfstrace fig3 > fig3.csv
//	nfstrace fig4 > fig4.csv
//
// A custom run can be assembled with flags:
//
//	nfstrace -server linux -client stock -mb 40 custom
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/experiments"
)

var (
	serverFlag = flag.String("server", "filer", "server: filer, linux, slow100")
	clientFlag = flag.String("client", "stock", "client: stock, nolimits, hash, enhanced")
	mbFlag     = flag.Int("mb", 40, "file size in MB")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nfstrace [flags] {fig2|fig3|fig4|custom}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	switch flag.Arg(0) {
	case "fig2":
		fmt.Print(experiments.Fig2().Result.Trace.CSV())
	case "fig3":
		fmt.Print(experiments.Fig3().Result.Trace.CSV())
	case "fig4":
		fmt.Print(experiments.Fig4().Result.Trace.CSV())
	case "custom":
		fmt.Print(custom().Trace.CSV())
	default:
		fmt.Fprintf(os.Stderr, "nfstrace: unknown trace %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

func custom() *bonnie.Result {
	var srv nfssim.ServerKind
	switch *serverFlag {
	case "filer":
		srv = nfssim.ServerFiler
	case "linux":
		srv = nfssim.ServerLinux
	case "slow100":
		srv = nfssim.ServerSlow100
	default:
		fmt.Fprintf(os.Stderr, "nfstrace: unknown server %q\n", *serverFlag)
		os.Exit(2)
	}
	var cfg core.Config
	switch *clientFlag {
	case "stock":
		cfg = core.Stock244Config()
	case "nolimits":
		cfg = core.NoLimitsConfig()
	case "hash":
		cfg = core.HashConfig()
	case "enhanced":
		cfg = core.EnhancedConfig()
	default:
		fmt.Fprintf(os.Stderr, "nfstrace: unknown client %q\n", *clientFlag)
		os.Exit(2)
	}
	tb := nfssim.NewTestbed(nfssim.Options{Server: srv, Client: cfg})
	return bonnie.Run(tb.Sim, "custom", tb.Open, bonnie.Config{
		FileSize:       int64(*mbFlag) << 20,
		TimeLimit:      time.Hour,
		SkipFlushClose: true,
	})
}
