// Command nfsbench regenerates the paper's evaluation artifacts. Each
// experiment is named after the table or figure it reproduces:
//
//	nfsbench fig1      local vs NFS throughput sweep, stock client
//	nfsbench fig2      periodic latency spikes (stock client, 40 MB)
//	nfsbench fig3      latency growth after flush removal (linear list)
//	nfsbench fig4      flat latency with the hash table
//	nfsbench fig5      latency histograms, BKL held (filer vs Linux)
//	nfsbench fig6      latency histograms, BKL released
//	nfsbench table1    memory write throughput before/after lock fix
//	nfsbench fig7      local vs NFS throughput sweep, enhanced client
//	nfsbench slow100   §3.5: slower server -> faster memory writes
//	nfsbench profile   §3.4/§3.5 kernel-profile findings
//	nfsbench jumbo     §3.5 future work: jumbo-frame ablation
//	nfsbench scaling   beyond the paper: N client machines, one server
//	nfsbench fleet     beyond the paper: 10/100/1000-client fleets
//	                   (aggregate ingest, fairness, slot convoying)
//	nfsbench loss      beyond the paper: UDP vs TCP under fragment loss
//	nfsbench read      beyond the paper: read/rewrite/mixed workloads
//	                   with a client readahead ablation
//	nfsbench random    beyond the paper: sequential vs random chunk I/O
//	                   across the fix progression (fix 2 under stress)
//	nfsbench db        §3.6: random page updates with group-commit fsync,
//	                   filer vs Linux durability
//	nfsbench zipf      beyond the paper: Zipfian many-file metadata
//	                   workload with attr-cache and skew ablations
//	nfsbench coherence beyond the paper: writers and readers sharing one
//	                   file under strict/ttl/noac consistency modes
//	nfsbench chaos     beyond the paper: crash/reboot and dead-server
//	                   failure injection via the chaos scenario engine
//	nfsbench all       everything above, in order
//
// Sweeps accept -quick to use a reduced file-size grid.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

var (
	quick   = flag.Bool("quick", false, "use a reduced file-size grid for fig1/fig7 sweeps")
	workers = flag.Int("workers", 0, "worker-pool size for grid-shaped experiments (0 = one per CPU); results are identical for every value")
)

func sizes() []int {
	if *quick {
		return []int{25, 100, 200, 250, 300, 450}
	}
	return experiments.PaperSizesMB()
}

type runner struct {
	name string
	desc string
	run  func() string
}

func runners() []runner {
	return []runner{
		{"fig1", "local vs NFS write throughput, stock 2.4.4 client",
			func() string { return experiments.Fig1(sizes()).Render() }},
		{"fig2", "periodic write latency spikes, stock client",
			func() string { return experiments.Fig2().Render() }},
		{"fig3", "latency growth after flush removal (linear list)",
			func() string { return experiments.Fig3().Render() }},
		{"fig4", "flat latency with scalable data structures",
			func() string { return experiments.Fig4().Render() }},
		{"fig5", "latency histograms with the BKL held across sends",
			func() string { return experiments.Fig5().Render() }},
		{"fig6", "latency histograms with the BKL released",
			func() string { return experiments.Fig6().Render() }},
		{"table1", "client memory write throughput before/after lock fix",
			func() string { return experiments.Table1().Render() }},
		{"fig7", "local vs NFS write throughput, enhanced client",
			func() string { return experiments.Fig7(sizes()).Render() }},
		{"slow100", "slower server yields faster client memory writes",
			func() string { return experiments.Slow100().Render() }},
		{"profile", "kernel profile: hot functions and BKL wait attribution",
			func() string { return experiments.Profile().Render() }},
		{"jumbo", "jumbo-frame ablation",
			func() string { return experiments.Jumbo().Render() }},
		{"concurrent", "two writers to separate files, BKL vs no lock",
			func() string { return experiments.Concurrency().Render() }},
		{"scaling", "multi-client scale-out: per-client vs aggregate throughput + fairness",
			func() string { return experiments.Scaling().Render() }},
		{"fleet", "thousand-client fleet: aggregate ingest, fairness, slot-table convoying",
			func() string { return experiments.Fleet().Render() }},
		{"loss", "lossy network: UDP loss amplification vs TCP segment recovery",
			func() string { return experiments.LossSweep().Render() }},
		{"read", "read path: sequential read/rewrite/mixed with readahead ablation",
			func() string { return experiments.ReadSweep().Render() }},
		{"random", "random access: seq vs random chunk I/O across the fix progression",
			func() string { return experiments.RandomSweep().Render() }},
		{"db", "database load: random page updates with group-commit fsync, filer vs linux",
			func() string { return experiments.DBLoad().Render() }},
		{"zipf", "many-file metadata: Zipfian op mix with attr-cache and skew ablations",
			func() string { return experiments.ZipfSweep().Render() }},
		{"coherence", "cache coherence: staleness vs throughput across consistency modes on one shared file",
			func() string { return experiments.CoherenceSweep().Render() }},
		{"chaos", "failure injection: crash/reboot durability, shared-file crash, dead server",
			func() string { return experiments.ChaosSweep().Render() }},
	}
}

func main() {
	flag.Usage = usage
	flag.Parse()
	experiments.Workers = *workers
	args := flag.Args()
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	want := args[0]
	rs := runners()
	if want == "all" {
		for _, r := range rs {
			fmt.Printf("== %s: %s ==\n", r.name, r.desc)
			fmt.Println(r.run())
		}
		return
	}
	for _, r := range rs {
		if r.name == want {
			fmt.Println(r.run())
			return
		}
	}
	fmt.Fprintf(os.Stderr, "nfsbench: unknown experiment %q\n\n", want)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: nfsbench [-quick] <experiment>\n\nexperiments:\n")
	for _, r := range runners() {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", r.name, r.desc)
	}
	fmt.Fprintf(os.Stderr, "  %-8s run every experiment\n", "all")
	flag.PrintDefaults()
}
