package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// Every experiment name is unique, documented, and runnable, and the
// zipf entry added with the metadata path is registered.
func TestRunnersWellFormed(t *testing.T) {
	rs := runners()
	seen := map[string]bool{}
	for _, r := range rs {
		if r.name == "" || r.desc == "" || r.run == nil {
			t.Fatalf("malformed runner %+v", r)
		}
		if seen[r.name] {
			t.Fatalf("duplicate experiment name %q", r.name)
		}
		seen[r.name] = true
	}
	for _, want := range []string{"fig1", "fig7", "loss", "read", "random", "db", "zipf"} {
		if !seen[want] {
			t.Fatalf("experiment %q not registered", want)
		}
	}
}

// The usage text lists every registered experiment, so `nfsbench -h`
// never drifts from the runner table.
func TestUsageListsEveryExperiment(t *testing.T) {
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	usage()
	w.Close()
	os.Stderr = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, rn := range runners() {
		if !strings.Contains(string(out), rn.name) {
			t.Fatalf("usage output missing experiment %q:\n%s", rn.name, out)
		}
	}
	if !strings.Contains(string(out), "all") {
		t.Fatalf("usage output missing the all pseudo-experiment:\n%s", out)
	}
}

// The zipf runner executes end to end and renders the metadata table
// with its headline comparisons — a smoke test of the whole experiment
// path through main's dispatch table.
func TestZipfRunnerProducesReport(t *testing.T) {
	for _, r := range runners() {
		if r.name != "zipf" {
			continue
		}
		out := r.run()
		for _, want := range []string{"Many-file metadata", "attribute cache:", "hot-set skew:"} {
			if !strings.Contains(out, want) {
				t.Fatalf("zipf report missing %q:\n%s", want, out)
			}
		}
		return
	}
	t.Fatal("zipf runner not found")
}
