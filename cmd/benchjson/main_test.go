package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU
BenchmarkFig1LocalVsNFSStock-8   	       1	934712345 ns/op	       171.9 local-peak-MB/s	        12.6 filer-MB/s@100MB
BenchmarkSimulatorEventRate-8    	       2	 51234567 ns/op
PASS
ok  	repro	3.456s
`
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2", len(got))
	}
	r := got[0]
	if r.Name != "BenchmarkFig1LocalVsNFSStock" {
		t.Fatalf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Runs != 1 || r.NsPerOp != 934712345 {
		t.Fatalf("runs/ns = %d/%g", r.Runs, r.NsPerOp)
	}
	if r.Metrics["local-peak-MB/s"] != 171.9 || r.Metrics["filer-MB/s@100MB"] != 12.6 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	if got[1].Name != "BenchmarkSimulatorEventRate" || got[1].Metrics != nil {
		t.Fatalf("second result = %+v", got[1])
	}
}

func TestParseSkipsSubBenchAndFailLines(t *testing.T) {
	in := `BenchmarkAblationSoftLimit/192-8 	       1	 12345 ns/op	        30.5 write-MB/s
BenchmarkBroken 	--- FAIL: BenchmarkBroken
`
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d results, want 1", len(got))
	}
	if got[0].Name != "BenchmarkAblationSoftLimit/192" {
		t.Fatalf("name = %q", got[0].Name)
	}
	if got[0].Metrics["write-MB/s"] != 30.5 {
		t.Fatalf("metrics = %v", got[0].Metrics)
	}
}

func TestParseEmptyInput(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok\n"))
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}
