// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark line:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson > bench.json
//
// Each object carries the benchmark name, iteration count, ns/op, and
// every custom metric the benchmark reported (our benches report the
// paper's headline quantities — MB/s, spike periods, latencies — as
// custom metrics). CI uploads the result as the per-PR benchmark
// artifact, so the performance trajectory of the simulator is machine
// readable from the first data point.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output and returns the benchmark lines in
// input order. Non-benchmark lines (headers, PASS/ok, failures) are
// ignored.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  1234 ns/op  [value unit]...
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo    	--- FAIL"
		}
		res := Result{Name: trimProcSuffix(fields[0]), Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = val
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func trimProcSuffix(name string) string {
	// Strip the trailing -GOMAXPROCS so artifact diffs don't churn with
	// the runner's core count.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func main() {
	results, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if results == nil {
		results = []Result{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
