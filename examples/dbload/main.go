// Command dbload exercises the write path with the database-style
// workload the paper's introduction motivates ("complex corporate
// applications such as database and mail services"): random 8 KB page
// updates inside a preallocated table file, with a group-commit fsync
// every batch. It compares the stock 2.4.4 client against the patched
// client on both servers, showing that the fixes help transactional
// workloads too — and that a COMMIT-bound server makes fsync the
// dominant cost.
package main

import (
	"fmt"
	"math/rand"
	"time"

	nfssim "repro"
	"repro/internal/core"
	"repro/internal/sim"
)

const (
	tableMB   = 64
	txPerRun  = 2000
	pagesPerT = 2 // two random 8 KB page updates per transaction
	batchSize = 50
)

func run(srv nfssim.ServerKind, cfg core.Config) (elapsed sim.Time, fsyncTime sim.Time) {
	tb := nfssim.NewTestbed(nfssim.Options{Server: srv, Client: cfg, Seed: 42})
	f := tb.OpenNFS()
	rng := rand.New(rand.NewSource(7))
	done := false
	tb.Sim.Go("db", func(p *sim.Proc) {
		// Preallocate the table (sequential fill), then flush it out so
		// the measurement covers only the transaction phase.
		for i := 0; i < tableMB*128; i++ {
			f.Write(p, 8192)
		}
		f.Flush(p)
		start := tb.Sim.Now()
		for tx := 0; tx < txPerRun; tx++ {
			for k := 0; k < pagesPerT; k++ {
				page := rng.Int63n(tableMB * 128)
				f.WriteAt(p, page*8192, 8192)
			}
			if (tx+1)%batchSize == 0 {
				t0 := tb.Sim.Now()
				f.Flush(p) // group commit
				fsyncTime += tb.Sim.Now() - t0
			}
		}
		f.Close(p)
		elapsed = tb.Sim.Now() - start
		done = true
	})
	tb.Sim.Run(30 * time.Minute)
	if !done {
		panic("dbload: run did not finish")
	}
	return elapsed, fsyncTime
}

func main() {
	fmt.Printf("database-style load: %d transactions x %d random 8 KB page writes, fsync every %d\n",
		txPerRun, pagesPerT, batchSize)
	fmt.Printf("table size %d MB\n\n", tableMB)
	fmt.Printf("%-10s %-10s %14s %14s %12s\n", "server", "client", "elapsed", "in fsync", "tx/sec")
	for _, srv := range []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux} {
		for _, c := range []struct {
			name string
			cfg  core.Config
		}{
			{"stock", core.Stock244Config()},
			{"patched", core.EnhancedConfig()},
		} {
			elapsed, fsync := run(srv, c.cfg)
			tps := float64(txPerRun) / elapsed.Seconds()
			fmt.Printf("%-10s %-10s %14v %14v %12.0f\n", srv, c.name, elapsed.Round(time.Millisecond), fsync.Round(time.Millisecond), tps)
		}
	}
	fmt.Println("\nnotes:")
	fmt.Println("  - the filer never needs COMMIT (NVRAM), so its group commits return as")
	fmt.Println("    soon as the WRITEs are on the wire; the Linux server waits on its disk")
	fmt.Println("  - the patched client keeps random page updates cheap even with thousands")
	fmt.Println("    of pending requests (hash lookup), where the stock client rescans the")
	fmt.Println("    sorted per-inode list on every update")
}
