// Command dbload exercises the write path with the database-style
// workload the paper's introduction motivates ("complex corporate
// applications such as database and mail services"): random 8 KB page
// updates inside a preallocated table file, with a group-commit fsync
// every batch. It is a thin wrapper over experiments.DBLoad — the same
// table `nfsbench db` prints and TestDBLoadShape pins — comparing the
// stock 2.4.4 client against the patched client on both servers: the
// fixes help transactional workloads too, and a COMMIT-bound server
// makes fsync the dominant cost (§3.6).
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Println(experiments.DBLoad().Render())
}
