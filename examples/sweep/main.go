// Command sweep demonstrates the harness programmatically: a sweep the
// paper never ran — how does the enhanced client's advantage over the
// stock client change with the client's page-cache budget? The grid is
// 2 configs x 3 cache limits x 2 repeats = 12 scenarios, executed across
// a worker pool with one private test bed each, then folded into
// per-cell mean/stddev summaries.
package main

import (
	"fmt"

	nfssim "repro"
	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	g := harness.Grid{
		Servers: []nfssim.ServerKind{nfssim.ServerFiler},
		Configs: []harness.ClientConfig{
			{Name: "stock", Config: core.Stock244Config()},
			{Name: "enhanced", Config: core.EnhancedConfig()},
		},
		FileSizesMB: []int{100},
		CacheLimits: []int64{64 << 20, 256 << 20, 848 << 20},
		Repeats:     2,
		// Write phase only: the Figure 1/7 memory-write comparison.
		SkipFlushClose: true,
	}
	scenarios := g.Expand()
	fmt.Printf("running %d scenarios...\n\n", len(scenarios))

	runner := harness.Runner{OnResult: func(r harness.Result) {
		fmt.Printf("  %-44s %7.1f MB/s  (p99 %5.1f us, %d soft flushes)\n",
			r.Name, r.WriteMBps, r.P99LatUs, r.SoftFlushes)
	}}
	results := runner.Run(scenarios)

	fmt.Println("\nper-cell summary (mean over repeats):")
	fmt.Print(harness.AggregatesTable(harness.AggregateResults(results)))

	fmt.Println("\nreading: the stock client is pinned to server speed at every")
	fmt.Println("cache size, while the enhanced client turns additional client")
	fmt.Println("memory directly into write throughput — until the budget is")
	fmt.Println("smaller than the file, where both degrade toward the network.")
}
