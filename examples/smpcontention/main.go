// Command smpcontention demonstrates the paper's §3.5 result: on an SMP
// client the writer thread and nfs_flushd contend for the big kernel
// lock, which the RPC layer holds across sock_sendmsg (~50 µs per WRITE).
// Paradoxically, a faster server makes the client slower — the flusher is
// awake more, holding the lock more. Releasing the BKL around the socket
// call fixes it.
//
// The example prints Table 1 plus the BKL contention counters that
// explain it, and adds the 100 Mb/s server run that verified the paradox.
package main

import (
	"fmt"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/rpcsim"
)

type row struct {
	label   string
	server  nfssim.ServerKind
	policy  rpcsim.LockPolicy
	mbps    float64
	mean    time.Duration
	waits   int
	waitSum time.Duration
}

func main() {
	rows := []*row{
		{label: "filer,   BKL held", server: nfssim.ServerFiler, policy: rpcsim.HoldBKLAcrossSend},
		{label: "filer,   no lock ", server: nfssim.ServerFiler, policy: rpcsim.ReleaseBKLForSend},
		{label: "linux,   BKL held", server: nfssim.ServerLinux, policy: rpcsim.HoldBKLAcrossSend},
		{label: "linux,   no lock ", server: nfssim.ServerLinux, policy: rpcsim.ReleaseBKLForSend},
		{label: "100Mbit, BKL held", server: nfssim.ServerSlow100, policy: rpcsim.HoldBKLAcrossSend},
	}
	for _, r := range rows {
		cfg := core.HashConfig()
		cfg.LockPolicy = r.policy
		tb := nfssim.NewTestbed(nfssim.Options{Server: r.server, Client: cfg})
		res := bonnie.Run(tb.Sim, r.label, tb.Open, bonnie.Config{
			FileSize:       5 << 20,
			TimeLimit:      time.Minute,
			SkipFlushClose: true,
		})
		r.mbps = res.WriteMBps()
		r.mean = res.Trace.Summary().Mean
		r.waits = tb.BKL.Contentions
		r.waitSum = tb.BKL.TotalWait
	}

	fmt.Println("5 MB memory-write benchmark (hash-table client), dual-CPU client")
	fmt.Printf("%-20s %10s %12s %12s %14s\n", "configuration", "MB/s", "mean lat", "BKL waits", "BKL wait time")
	for _, r := range rows {
		fmt.Printf("%-20s %10.1f %12v %12d %14v\n", r.label, r.mbps, r.mean, r.waits, r.waitSum)
	}
	fmt.Println()
	fmt.Println("Observations (paper §3.5):")
	fmt.Printf("  - with the BKL held, the FASTER filer gives SLOWER memory writes than linux\n")
	fmt.Printf("  - the slowest server (100Mbit) gives the fastest memory writes of the locked runs\n")
	fmt.Printf("  - releasing the lock around sock_sendmsg recovers the loss on both servers\n")
}
