// Command quickstart demonstrates the library end to end: build a test
// bed (dual-CPU client, gigabit switch, NetApp filer), run the paper's
// sequential write benchmark against the stock 2.4.4 client and the fully
// patched client, and print the three throughput figures and latency
// summaries for each.
package main

import (
	"fmt"

	"repro"
	"repro/internal/bonnie"
	"repro/internal/core"
)

func main() {
	const fileSize = 40 << 20 // 40 MB, as in Figure 2

	fmt.Println("== Stock Linux 2.4.4 NFS client against the filer ==")
	stock := nfssim.NewTestbed(nfssim.Options{
		Server: nfssim.ServerFiler,
		Client: core.Stock244Config(),
	})
	res := bonnie.Run(stock.Sim, "stock-2.4.4/filer", stock.Open, bonnie.Config{FileSize: fileSize})
	fmt.Print(res)
	spikes := res.Trace.CountAbove(1_000_000) // > 1 ms, the paper's outlier cutoff
	fmt.Printf("  latency spikes >1ms: %d (every ~%.0f calls)\n\n",
		spikes, res.Trace.SpikePeriod(1_000_000))

	fmt.Println("== Patched client (cache-all + hash table + no BKL around send) ==")
	patched := nfssim.NewTestbed(nfssim.Options{
		Server: nfssim.ServerFiler,
		Client: core.EnhancedConfig(),
	})
	res2 := bonnie.Run(patched.Sim, "patched/filer", patched.Open, bonnie.Config{FileSize: fileSize})
	fmt.Print(res2)
	fmt.Printf("  latency spikes >1ms: %d\n\n", res2.Trace.CountAbove(1_000_000))

	fmt.Printf("memory write throughput improvement: %.1fx\n",
		res2.WriteMBps()/res.WriteMBps())
}
