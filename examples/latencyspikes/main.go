// Command latencyspikes walks through the paper's §3.3-§3.4 story on one
// workload: the same 40 MB sequential write against the filer under the
// stock client (periodic 19 ms stalls every ~96 calls), after removing
// the limit-flushing (no spikes, but latency creeps up with the request
// list), and with the hash table (flat). It prints a compact per-call
// latency strip chart for each so the three regimes are visible in a
// terminal.
package main

import (
	"fmt"
	"strings"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
)

func run(name string, cfg core.Config) *bonnie.Result {
	tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler, Client: cfg})
	return bonnie.Run(tb.Sim, name, tb.Open, bonnie.Config{
		FileSize:       40 << 20,
		TimeLimit:      10 * time.Minute,
		SkipFlushClose: true,
	})
}

// strip renders latencies bucketed over the run as a character per
// bucket: '.' < 100µs, '-' < 300µs, '+' < 1ms, '#' spikes.
func strip(res *bonnie.Result, buckets int) string {
	n := res.Trace.Len()
	per := n / buckets
	if per == 0 {
		per = 1
	}
	var b strings.Builder
	for i := 0; i+per <= n; i += per {
		var worst time.Duration
		for j := i; j < i+per; j++ {
			if s := res.Trace.At(j); s > worst {
				worst = s
			}
		}
		switch {
		case worst < 100*time.Microsecond:
			b.WriteByte('.')
		case worst < 300*time.Microsecond:
			b.WriteByte('-')
		case worst < time.Millisecond:
			b.WriteByte('+')
		default:
			b.WriteByte('#')
		}
	}
	return b.String()
}

func main() {
	fmt.Println("40 MB sequential write to the NetApp filer, per-call write() latency")
	fmt.Println("each cell = worst latency in a window of calls: . <100µs  - <300µs  + <1ms  # spike")
	fmt.Println()

	stock := run("stock", core.Stock244Config())
	fmt.Println("stock 2.4.4 (192/256 request limits, linear list):")
	fmt.Println("  " + strip(stock, 72))
	fmt.Printf("  mean %v, %d spikes >1ms every ~%.0f calls, %.1f MB/s\n\n",
		stock.Trace.Summary().Mean, stock.Trace.CountAbove(time.Millisecond),
		stock.Trace.SpikePeriod(time.Millisecond), stock.WriteMBps())

	nolimits := run("nolimits", core.NoLimitsConfig())
	fmt.Println("limits removed, still the linear request list:")
	fmt.Println("  " + strip(nolimits, 72))
	fmt.Printf("  mean %v, slope %.1f ns/call (latency grows with the list), %.1f MB/s\n\n",
		nolimits.Trace.Summary().Mean, nolimits.Trace.Slope(), nolimits.WriteMBps())

	hash := run("hash", core.HashConfig())
	fmt.Println("limits removed + hash-table request lookup:")
	fmt.Println("  " + strip(hash, 72))
	fmt.Printf("  mean %v, slope %.1f ns/call, %.1f MB/s\n",
		hash.Trace.Summary().Mean, hash.Trace.Slope(), hash.WriteMBps())
}
