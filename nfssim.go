// Package nfssim is the public face of the reproduction of "Linux NFS
// Client Write Performance" (Lever & Honeyman, CITI TR 01-12, FREENIX
// 2002). It assembles complete virtual test beds — one or more SMP Linux
// clients with a configurable NFS write path, a gigabit switch, and the
// paper's servers (a NetApp F85 filer, a four-way Linux knfsd, a
// 100 Mb/s slow server) — on a deterministic discrete-event simulator,
// and exposes the paper's Bonnie-derived benchmark on top: the sequential
// write pass the paper measures, plus rewrite, sequential read (served by
// the client's readahead machinery) and mixed read/write workloads.
//
// Quick start:
//
//	tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler,
//		Client: core.EnhancedConfig()})
//	res := bonnie.Run(tb.Sim, "bench", tb.Open, bonnie.Config{FileSize: 40 << 20})
//	fmt.Println(res)
//
// The paper's servers exist to serve many clients; Options.Clients
// attaches N independent client machines (each a full ClientMachine:
// CPU pool, BKL, page cache, RPC transport, NFS client) to the same
// server over distinct network hosts, for the scale-out scenarios the
// single-machine paper setup cannot express.
package nfssim

import (
	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/ext2"
	"repro/internal/mm"
	"repro/internal/netsim"
	"repro/internal/rpcsim"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// ServerKind selects which server the test bed mounts.
type ServerKind int

const (
	// ServerFiler is the prototype NetApp F85 (§3.1).
	ServerFiler ServerKind = iota
	// ServerLinux is the four-way Linux 2.4.4 knfsd (§3.1).
	ServerLinux
	// ServerSlow100 is the knfsd stack behind a 100 Mb/s link (§3.5).
	ServerSlow100
	// ServerNone builds a client-only test bed (local ext2 runs).
	ServerNone
)

func (k ServerKind) String() string {
	switch k {
	case ServerFiler:
		return "filer"
	case ServerLinux:
		return "linux"
	case ServerSlow100:
		return "slow100"
	default:
		return "local"
	}
}

// Options configures a test bed.
type Options struct {
	// Seed is the deterministic simulation seed (default 1).
	Seed int64
	// Server selects the mounted server.
	Server ServerKind
	// Client is the NFS client configuration; its LockPolicy is applied
	// to each machine's RPC transport. Zero value means
	// core.Stock244Config(). Every client machine runs this
	// configuration, with a per-machine FSID so file handles from
	// different machines never collide at the server.
	Client core.Config
	// Clients is the number of client machines attached to the server
	// (default 1). Machines are independent: each has its own CPU pool,
	// BKL, page cache, and RPC transport, and its own network host
	// (client0, client1, ...).
	Clients int
	// ClientCPUs is the per-machine processor count (default 2, the
	// paper's dual P-III; set 1 for the uniprocessor ablation).
	ClientCPUs int
	// SharedNamespace mounts every client machine on the same export
	// (identical FSID) so that names resolve to the same server-side
	// files — the shared-file coherence workloads' topology. Off by
	// default: each machine gets its own export and handles never
	// collide.
	SharedNamespace bool
	// CacheLimit overrides each machine's page-cache budget (default
	// mm.DefaultDirtyLimit).
	CacheLimit int64
	// Jumbo enables 9000-byte MTU end to end (§3.5 future work).
	Jumbo bool
	// Transport selects the RPC wire protocol: rpcsim.TransportUDP
	// (default, the paper's setup) or rpcsim.TransportTCP (a reliable
	// byte stream with per-segment retransmission and adaptive RTO).
	Transport rpcsim.TransportKind
	// Loss is the network's per-IP-fragment drop probability, in [0, 1).
	// Losing any fragment of a UDP datagram loses the whole datagram —
	// the paper's §1 motivation for examining the transport. 0 disables
	// the loss model entirely (bit-identical to a lossless network).
	Loss float64
	// NetJitter is the maximum extra random delivery delay per datagram
	// (uniform in [0, NetJitter], deterministic per seed). 0 disables it.
	NetJitter sim.Time
	// Jitter is the per-execution CPU-cost noise factor on the client
	// (default 0.04; set negative for none). Deterministic per seed.
	Jitter float64
	// RPC optionally overrides the transport cost model; LockPolicy and
	// MTU are always taken from Client/Jumbo.
	RPC *rpcsim.Config
}

// ClientMachine is one complete client host: its processors, big kernel
// lock, page cache, local disk, and — when a server is mounted — its RPC
// transport and NFS client. Machines share nothing but the simulated
// network and the server.
type ClientMachine struct {
	// Index is the machine's position in Testbed.Machines.
	Index int
	// Host is the machine's network host name (client0, client1, ...).
	Host string

	CPU   *sim.CPUPool
	BKL   *sim.Mutex
	Cache *mm.PageCache

	// Client is the machine's NFS client (nil for ServerNone).
	Client *core.Client
	// Transport is the machine's RPC transport (nil for ServerNone).
	Transport *rpcsim.Transport
	// LocalDisk is the machine's EIDE disk for local ext2 runs.
	LocalDisk *disksim.Disk

	sim  *sim.Sim
	kind ServerKind
}

// OpenNFS opens a fresh file on the machine's NFS mount.
func (m *ClientMachine) OpenNFS() *core.File {
	if m.Client == nil {
		panic("nfssim: client machine has no NFS mount")
	}
	return m.Client.Open()
}

// OpenLocal opens a fresh file on the machine's local ext2 filesystem.
func (m *ClientMachine) OpenLocal() vfs.File {
	return ext2.NewFile(m.sim, m.CPU, m.Cache, m.LocalDisk)
}

// Open opens a file on the test bed's configured target: local ext2 for
// ServerNone, NFS otherwise.
func (m *ClientMachine) Open() vfs.File {
	if m.kind == ServerNone {
		return m.OpenLocal()
	}
	return m.OpenNFS()
}

// OpenExisting opens a file already holding size bytes on the machine's
// configured target, with nothing resident in the machine's page cache —
// the cold file the read workloads start from.
func (m *ClientMachine) OpenExisting(size int64) vfs.File {
	if m.kind == ServerNone {
		return ext2.OpenExisting(m.sim, m.CPU, m.Cache, m.LocalDisk, size)
	}
	if m.Client == nil {
		panic("nfssim: client machine has no NFS mount")
	}
	return m.Client.OpenExisting(size)
}

// OpenSet returns the machine's workload openers (fresh and existing
// files on the configured target, plus the NFS namespace for the
// many-file workloads when the machine has a mount), the form
// internal/bonnie's workload runners consume.
func (m *ClientMachine) OpenSet() vfs.OpenSet {
	set := vfs.OpenSet{Fresh: m.Open, Existing: m.OpenExisting}
	if m.Client != nil {
		set.Names = m.Client
	}
	return set
}

// Testbed is an assembled simulation: client machines, network, server.
type Testbed struct {
	Sim *sim.Sim
	Net *netsim.Network

	// Machines are the client machines, in host order (client0, ...).
	Machines []*ClientMachine

	// CPU, BKL, Cache, Client, Transport, and LocalDisk alias
	// Machines[0], the paper's single-client topology. Code that
	// predates multi-client test beds (and every single-client caller)
	// reads these directly.
	CPU       *sim.CPUPool
	BKL       *sim.Mutex
	Cache     *mm.PageCache
	Client    *core.Client
	Transport *rpcsim.Transport
	LocalDisk *disksim.Disk

	// Server is the mounted server's front-end (nil for ServerNone).
	Server *server.Server
	// Filer is the filer backend when Server == ServerFiler.
	Filer *server.Filer
	// Linux is the knfsd backend for ServerLinux / ServerSlow100.
	Linux *server.LinuxServer

	opts Options
}

// NewTestbed assembles a test bed.
func NewTestbed(opts Options) *Testbed {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Clients == 0 {
		opts.Clients = 1
	}
	if opts.Clients < 0 {
		panic("nfssim: Clients must be positive")
	}
	if opts.ClientCPUs == 0 {
		opts.ClientCPUs = 2
	}
	if opts.CacheLimit == 0 {
		opts.CacheLimit = mm.DefaultDirtyLimit
	}
	if opts.Client.WSize == 0 {
		opts.Client = core.Stock244Config()
	}

	if opts.Jitter == 0 {
		opts.Jitter = 0.04
	} else if opts.Jitter < 0 {
		opts.Jitter = 0
	}

	if opts.Loss < 0 || opts.Loss >= 1 {
		panic("nfssim: Loss must be in [0, 1)")
	}
	if opts.NetJitter < 0 {
		panic("nfssim: NetJitter must be non-negative")
	}

	s := sim.New(opts.Seed)
	net := netsim.New(s)
	if opts.Loss > 0 || opts.NetJitter > 0 {
		net.SetLoss(netsim.LossConfig{Rate: opts.Loss, DelayJitter: opts.NetJitter})
	}
	tb := &Testbed{Sim: s, Net: net, opts: opts}

	mtu := netsim.MTUEthernet
	if opts.Jumbo {
		mtu = netsim.MTUJumbo
	}

	// Client hosts attach to the switch before the server, so the
	// single-client event schedule is identical to the historical
	// one-machine assembly order.
	for i := 0; i < opts.Clients; i++ {
		m := &ClientMachine{
			Index: i,
			Host:  server.ClientHost(i),
			CPU:   s.NewCPUPool(server.ClientHost(i)+"-cpus", opts.ClientCPUs),
			BKL:   s.NewMutex("kernel_flag/" + server.ClientHost(i)),
			Cache: mm.New(s, opts.CacheLimit),
			sim:   s,
			kind:  opts.Server,
		}
		m.CPU.Jitter = opts.Jitter
		net.AddHost(m.Host, netsim.LinkConfig{
			Bandwidth:   netsim.BandwidthGigabit,
			Propagation: 20_000,
			MTU:         mtu,
		}, nil)
		m.LocalDisk = disksim.NewDeskstarEIDE(s)
		tb.Machines = append(tb.Machines, m)
	}

	var remote string
	switch opts.Server {
	case ServerFiler:
		tb.Server, tb.Filer = server.NewF85(s, net, mtu, opts.Transport)
		remote = server.HostFiler
	case ServerLinux:
		tb.Server, tb.Linux = server.NewLinuxNFS(s, net, mtu, opts.Transport)
		remote = server.HostLinux
	case ServerSlow100:
		tb.Server, tb.Linux = server.NewSlow100(s, net, mtu, opts.Transport)
		remote = server.HostSlow
	case ServerNone:
		tb.alias()
		return tb
	}

	for _, m := range tb.Machines {
		rpcCfg := rpcsim.DefaultConfig()
		if opts.RPC != nil {
			rpcCfg = *opts.RPC
		}
		rpcCfg.LockPolicy = opts.Client.LockPolicy
		rpcCfg.Transport = opts.Transport
		rpcCfg.MTU = mtu
		m.Transport = rpcsim.New(s, net, m.CPU, m.BKL, rpcCfg, m.Host, remote)
		ccfg := opts.Client
		if ccfg.FSID == 0 {
			ccfg.FSID = 1
		}
		if !opts.SharedNamespace {
			ccfg.FSID += uint64(m.Index) // distinct per machine; see core.Config.FSID
		}
		m.Client = core.NewClient(s, m.CPU, m.BKL, m.Cache, m.Transport, ccfg)
		// Wire the omniscient staleness probe: the harness judges cache
		// hits against the server's ground-truth change counter. Clients
		// never use it to decide anything.
		m.Client.SetChangeProbe(tb.Server.Names().Change)
	}
	tb.alias()
	return tb
}

// alias points the single-machine convenience fields at Machines[0].
func (tb *Testbed) alias() {
	m := tb.Machines[0]
	tb.CPU, tb.BKL, tb.Cache = m.CPU, m.BKL, m.Cache
	tb.Client, tb.Transport, tb.LocalDisk = m.Client, m.Transport, m.LocalDisk
}

// Machine returns the i'th client machine.
func (tb *Testbed) Machine(i int) *ClientMachine { return tb.Machines[i] }

// OpenNFS opens a fresh file on machine 0's NFS mount.
func (tb *Testbed) OpenNFS() *core.File {
	if tb.Client == nil {
		panic("nfssim: test bed has no NFS mount")
	}
	return tb.Machines[0].OpenNFS()
}

// OpenLocal opens a fresh file on machine 0's local ext2 filesystem.
func (tb *Testbed) OpenLocal() vfs.File { return tb.Machines[0].OpenLocal() }

// Open opens a file on the test bed's configured target: local ext2 for
// ServerNone, NFS otherwise. Multi-client workloads open on a specific
// machine via Machine(i).Open instead.
func (tb *Testbed) Open() vfs.File { return tb.Machines[0].Open() }

// OpenExisting opens a cold, pre-populated file of size bytes on machine
// 0's configured target (the read workloads' starting point).
func (tb *Testbed) OpenExisting(size int64) vfs.File { return tb.Machines[0].OpenExisting(size) }

// OpenSet returns machine 0's workload openers.
func (tb *Testbed) OpenSet() vfs.OpenSet { return tb.Machines[0].OpenSet() }
