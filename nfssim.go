// Package nfssim is the public face of the reproduction of "Linux NFS
// Client Write Performance" (Lever & Honeyman, CITI TR 01-12, FREENIX
// 2002). It assembles complete virtual test beds — an SMP Linux client
// with a configurable NFS write path, a gigabit switch, and the paper's
// servers (a NetApp F85 filer, a four-way Linux knfsd, a 100 Mb/s slow
// server) — on a deterministic discrete-event simulator, and exposes the
// paper's Bonnie-derived sequential write benchmark on top.
//
// Quick start:
//
//	tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler,
//		Client: core.EnhancedConfig()})
//	res := bonnie.Run(tb.Sim, tb.NewWorkload(), bonnie.Config{FileSize: 40 << 20})
//	fmt.Println(res)
package nfssim

import (
	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/ext2"
	"repro/internal/mm"
	"repro/internal/netsim"
	"repro/internal/rpcsim"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// ServerKind selects which server the test bed mounts.
type ServerKind int

const (
	// ServerFiler is the prototype NetApp F85 (§3.1).
	ServerFiler ServerKind = iota
	// ServerLinux is the four-way Linux 2.4.4 knfsd (§3.1).
	ServerLinux
	// ServerSlow100 is the knfsd stack behind a 100 Mb/s link (§3.5).
	ServerSlow100
	// ServerNone builds a client-only test bed (local ext2 runs).
	ServerNone
)

func (k ServerKind) String() string {
	switch k {
	case ServerFiler:
		return "filer"
	case ServerLinux:
		return "linux"
	case ServerSlow100:
		return "slow100"
	default:
		return "local"
	}
}

// Options configures a test bed.
type Options struct {
	// Seed is the deterministic simulation seed (default 1).
	Seed int64
	// Server selects the mounted server.
	Server ServerKind
	// Client is the NFS client configuration; its LockPolicy is applied
	// to the RPC transport. Zero value means core.Stock244Config().
	Client core.Config
	// ClientCPUs is the client processor count (default 2, the paper's
	// dual P-III; set 1 for the uniprocessor ablation).
	ClientCPUs int
	// CacheLimit overrides the client page-cache budget (default
	// mm.DefaultDirtyLimit).
	CacheLimit int64
	// Jumbo enables 9000-byte MTU end to end (§3.5 future work).
	Jumbo bool
	// Jitter is the per-execution CPU-cost noise factor on the client
	// (default 0.04; set negative for none). Deterministic per seed.
	Jitter float64
	// RPC optionally overrides the transport cost model; LockPolicy and
	// MTU are always taken from Client/Jumbo.
	RPC *rpcsim.Config
}

// Testbed is an assembled simulation: client machine, network, server.
type Testbed struct {
	Sim   *sim.Sim
	Net   *netsim.Network
	CPU   *sim.CPUPool
	BKL   *sim.Mutex
	Cache *mm.PageCache

	// Client is the NFS client (nil for ServerNone).
	Client *core.Client
	// Transport is the client's RPC transport (nil for ServerNone).
	Transport *rpcsim.Transport
	// Server is the mounted server's front-end (nil for ServerNone).
	Server *server.Server
	// Filer is the filer backend when Server == ServerFiler.
	Filer *server.Filer
	// Linux is the knfsd backend for ServerLinux / ServerSlow100.
	Linux *server.LinuxServer
	// LocalDisk is the client's EIDE disk for local ext2 runs.
	LocalDisk *disksim.Disk

	opts Options
}

// NewTestbed assembles a test bed.
func NewTestbed(opts Options) *Testbed {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.ClientCPUs == 0 {
		opts.ClientCPUs = 2
	}
	if opts.CacheLimit == 0 {
		opts.CacheLimit = mm.DefaultDirtyLimit
	}
	if opts.Client.WSize == 0 {
		opts.Client = core.Stock244Config()
	}

	if opts.Jitter == 0 {
		opts.Jitter = 0.04
	} else if opts.Jitter < 0 {
		opts.Jitter = 0
	}

	s := sim.New(opts.Seed)
	net := netsim.New(s)
	tb := &Testbed{
		Sim:   s,
		Net:   net,
		CPU:   s.NewCPUPool("client-cpus", opts.ClientCPUs),
		BKL:   s.NewMutex("kernel_flag"),
		Cache: mm.New(s, opts.CacheLimit),
		opts:  opts,
	}
	tb.CPU.Jitter = opts.Jitter

	mtu := netsim.MTUEthernet
	if opts.Jumbo {
		mtu = netsim.MTUJumbo
	}
	net.AddHost(server.HostClient, netsim.LinkConfig{
		Bandwidth:   netsim.BandwidthGigabit,
		Propagation: 20_000,
		MTU:         mtu,
	}, nil)
	tb.LocalDisk = disksim.NewDeskstarEIDE(s)

	var remote string
	switch opts.Server {
	case ServerFiler:
		tb.Server, tb.Filer = server.NewF85(s, net, mtu)
		remote = server.HostFiler
	case ServerLinux:
		tb.Server, tb.Linux = server.NewLinuxNFS(s, net, mtu)
		remote = server.HostLinux
	case ServerSlow100:
		tb.Server, tb.Linux = server.NewSlow100(s, net, mtu)
		remote = server.HostSlow
	case ServerNone:
		return tb
	}

	rpcCfg := rpcsim.DefaultConfig()
	if opts.RPC != nil {
		rpcCfg = *opts.RPC
	}
	rpcCfg.LockPolicy = opts.Client.LockPolicy
	rpcCfg.MTU = mtu
	tb.Transport = rpcsim.New(s, net, tb.CPU, tb.BKL, rpcCfg, server.HostClient, remote)
	tb.Client = core.NewClient(s, tb.CPU, tb.BKL, tb.Cache, tb.Transport, opts.Client)
	return tb
}

// OpenNFS opens a fresh file on the NFS mount.
func (tb *Testbed) OpenNFS() *core.File {
	if tb.Client == nil {
		panic("nfssim: test bed has no NFS mount")
	}
	return tb.Client.Open()
}

// OpenLocal opens a fresh file on the client's local ext2 filesystem.
func (tb *Testbed) OpenLocal() vfs.File {
	return ext2.NewFile(tb.Sim, tb.CPU, tb.Cache, tb.LocalDisk)
}

// Open opens a file on the test bed's configured target: local ext2 for
// ServerNone, NFS otherwise.
func (tb *Testbed) Open() vfs.File {
	if tb.opts.Server == ServerNone {
		return tb.OpenLocal()
	}
	return tb.OpenNFS()
}
