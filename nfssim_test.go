package nfssim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/sim"
)

func TestServerKindString(t *testing.T) {
	cases := map[ServerKind]string{
		ServerFiler:   "filer",
		ServerLinux:   "linux",
		ServerSlow100: "slow100",
		ServerNone:    "local",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNewTestbedDefaults(t *testing.T) {
	tb := NewTestbed(Options{Server: ServerFiler})
	if tb.CPU.CPUs() != 2 {
		t.Fatalf("default CPUs = %d, want 2 (the paper's dual P-III)", tb.CPU.CPUs())
	}
	if tb.Client == nil || tb.Server == nil || tb.Filer == nil || tb.Transport == nil {
		t.Fatal("filer test bed incomplete")
	}
	if tb.Linux != nil {
		t.Fatal("filer test bed has a linux backend")
	}
	if tb.Client.Config().FlushPolicy != core.FlushLimits24 {
		t.Fatal("default client should be the stock 2.4.4 configuration")
	}
	if tb.Cache.Limit() <= 0 || tb.Cache.Limit() >= 256<<20 {
		t.Fatalf("cache limit = %d, want under the 256 MB RAM", tb.Cache.Limit())
	}
}

func TestNewTestbedServerVariants(t *testing.T) {
	lin := NewTestbed(Options{Server: ServerLinux})
	if lin.Linux == nil || lin.Filer != nil {
		t.Fatal("linux test bed backends wrong")
	}
	slow := NewTestbed(Options{Server: ServerSlow100})
	if slow.Linux == nil {
		t.Fatal("slow test bed backend wrong")
	}
	local := NewTestbed(Options{Server: ServerNone})
	if local.Client != nil || local.Server != nil {
		t.Fatal("local test bed should have no NFS parts")
	}
	if local.LocalDisk == nil {
		t.Fatal("local test bed missing the EIDE disk")
	}
}

func TestOpenDispatch(t *testing.T) {
	local := NewTestbed(Options{Server: ServerNone})
	if f := local.Open(); f == nil {
		t.Fatal("local Open returned nil")
	}
	nfs := NewTestbed(Options{Server: ServerFiler})
	if f := nfs.Open(); f == nil {
		t.Fatal("nfs Open returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OpenNFS on a local bed should panic")
		}
	}()
	local.OpenNFS()
}

func TestJumboOptionReducesFragments(t *testing.T) {
	write := func(jumbo bool) int64 {
		tb := NewTestbed(Options{Server: ServerFiler, Client: core.EnhancedConfig(), Jumbo: jumbo})
		f := tb.OpenNFS()
		tb.Sim.Go("w", func(p *sim.Proc) {
			for i := 0; i < 64; i++ {
				f.Write(p, 8192)
			}
			f.Close(p)
		})
		tb.Sim.Run(time.Minute)
		return tb.Net.HostStats(server.HostClient).FramesSent
	}
	std, jmb := write(false), write(true)
	if jmb >= std {
		t.Fatalf("jumbo frames sent %d >= standard %d", jmb, std)
	}
}

func TestCustomSeedAndCPUs(t *testing.T) {
	tb := NewTestbed(Options{Server: ServerLinux, Seed: 99, ClientCPUs: 4})
	if tb.CPU.CPUs() != 4 {
		t.Fatalf("CPUs = %d", tb.CPU.CPUs())
	}
}

func TestJitterOption(t *testing.T) {
	off := NewTestbed(Options{Server: ServerFiler, Jitter: -1})
	if off.CPU.Jitter != 0 {
		t.Fatalf("Jitter -1 should disable noise, got %v", off.CPU.Jitter)
	}
	def := NewTestbed(Options{Server: ServerFiler})
	if def.CPU.Jitter != 0.04 {
		t.Fatalf("default jitter = %v", def.CPU.Jitter)
	}
}

func TestMTUConsistency(t *testing.T) {
	tb := NewTestbed(Options{Server: ServerFiler, Jumbo: true})
	// A jumbo 8 KB WRITE should cross the wire as a single fragment:
	// verify via netsim's accounting after one write.
	f := tb.OpenNFS()
	tb.Sim.Go("w", func(p *sim.Proc) {
		f.Write(p, 8192)
		f.Flush(p)
	})
	tb.Sim.Run(time.Minute)
	stats := tb.Net.HostStats(server.HostClient)
	if stats.FramesSent > 2 { // one WRITE datagram, maybe split across 2 RPCs
		t.Fatalf("frames sent = %d, want jumbo single-fragment datagrams", stats.FramesSent)
	}
	_ = netsim.MTUJumbo
}
