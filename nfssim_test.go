package nfssim

import (
	"testing"
	"time"

	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/rpcsim"
	"repro/internal/server"
	"repro/internal/sim"
)

func TestServerKindString(t *testing.T) {
	cases := map[ServerKind]string{
		ServerFiler:   "filer",
		ServerLinux:   "linux",
		ServerSlow100: "slow100",
		ServerNone:    "local",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNewTestbedDefaults(t *testing.T) {
	tb := NewTestbed(Options{Server: ServerFiler})
	if tb.CPU.CPUs() != 2 {
		t.Fatalf("default CPUs = %d, want 2 (the paper's dual P-III)", tb.CPU.CPUs())
	}
	if tb.Client == nil || tb.Server == nil || tb.Filer == nil || tb.Transport == nil {
		t.Fatal("filer test bed incomplete")
	}
	if tb.Linux != nil {
		t.Fatal("filer test bed has a linux backend")
	}
	if tb.Client.Config().FlushPolicy != core.FlushLimits24 {
		t.Fatal("default client should be the stock 2.4.4 configuration")
	}
	if tb.Cache.Limit() <= 0 || tb.Cache.Limit() >= 256<<20 {
		t.Fatalf("cache limit = %d, want under the 256 MB RAM", tb.Cache.Limit())
	}
}

func TestNewTestbedServerVariants(t *testing.T) {
	lin := NewTestbed(Options{Server: ServerLinux})
	if lin.Linux == nil || lin.Filer != nil {
		t.Fatal("linux test bed backends wrong")
	}
	slow := NewTestbed(Options{Server: ServerSlow100})
	if slow.Linux == nil {
		t.Fatal("slow test bed backend wrong")
	}
	local := NewTestbed(Options{Server: ServerNone})
	if local.Client != nil || local.Server != nil {
		t.Fatal("local test bed should have no NFS parts")
	}
	if local.LocalDisk == nil {
		t.Fatal("local test bed missing the EIDE disk")
	}
}

func TestOpenDispatch(t *testing.T) {
	local := NewTestbed(Options{Server: ServerNone})
	if f := local.Open(); f == nil {
		t.Fatal("local Open returned nil")
	}
	nfs := NewTestbed(Options{Server: ServerFiler})
	if f := nfs.Open(); f == nil {
		t.Fatal("nfs Open returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OpenNFS on a local bed should panic")
		}
	}()
	local.OpenNFS()
}

// OpenExisting must hand back a cold pre-populated file on either
// target, and OpenSet must package both openers for the workload
// runners.
func TestOpenExistingDispatch(t *testing.T) {
	for _, srv := range []ServerKind{ServerNone, ServerFiler} {
		tb := NewTestbed(Options{Server: srv})
		f := tb.OpenExisting(1 << 20)
		if f == nil || f.Size() != 1<<20 {
			t.Fatalf("%v: OpenExisting size = %d", srv, f.Size())
		}
		set := tb.OpenSet()
		if set.Fresh == nil || set.Existing == nil {
			t.Fatalf("%v: OpenSet incomplete", srv)
		}
		if g := set.Existing(4096); g.Size() != 4096 {
			t.Fatalf("%v: OpenSet.Existing size = %d", srv, g.Size())
		}
		if g := set.Fresh(); g.Size() != 0 {
			t.Fatalf("%v: OpenSet.Fresh size = %d", srv, g.Size())
		}
	}
}

func TestJumboOptionReducesFragments(t *testing.T) {
	write := func(jumbo bool) int64 {
		tb := NewTestbed(Options{Server: ServerFiler, Client: core.EnhancedConfig(), Jumbo: jumbo})
		f := tb.OpenNFS()
		tb.Sim.Go("w", func(p *sim.Proc) {
			for i := 0; i < 64; i++ {
				f.Write(p, 8192)
			}
			f.Close(p)
		})
		tb.Sim.Run(time.Minute)
		return tb.Net.HostStats(server.HostClient).FramesSent
	}
	std, jmb := write(false), write(true)
	if jmb >= std {
		t.Fatalf("jumbo frames sent %d >= standard %d", jmb, std)
	}
}

func TestCustomSeedAndCPUs(t *testing.T) {
	tb := NewTestbed(Options{Server: ServerLinux, Seed: 99, ClientCPUs: 4})
	if tb.CPU.CPUs() != 4 {
		t.Fatalf("CPUs = %d", tb.CPU.CPUs())
	}
}

func TestJitterOption(t *testing.T) {
	off := NewTestbed(Options{Server: ServerFiler, Jitter: -1})
	if off.CPU.Jitter != 0 {
		t.Fatalf("Jitter -1 should disable noise, got %v", off.CPU.Jitter)
	}
	def := NewTestbed(Options{Server: ServerFiler})
	if def.CPU.Jitter != 0.04 {
		t.Fatalf("default jitter = %v", def.CPU.Jitter)
	}
}

func TestMTUConsistency(t *testing.T) {
	tb := NewTestbed(Options{Server: ServerFiler, Jumbo: true})
	// A jumbo 8 KB WRITE should cross the wire as a single fragment:
	// verify via netsim's accounting after one write.
	f := tb.OpenNFS()
	tb.Sim.Go("w", func(p *sim.Proc) {
		f.Write(p, 8192)
		f.Flush(p)
	})
	tb.Sim.Run(time.Minute)
	stats := tb.Net.HostStats(server.HostClient)
	if stats.FramesSent > 2 { // one WRITE datagram, maybe split across 2 RPCs
		t.Fatalf("frames sent = %d, want jumbo single-fragment datagrams", stats.FramesSent)
	}
	_ = netsim.MTUJumbo
}

func TestMultiClientTestbed(t *testing.T) {
	tb := NewTestbed(Options{Server: ServerFiler, Clients: 3})
	if len(tb.Machines) != 3 {
		t.Fatalf("machines = %d, want 3", len(tb.Machines))
	}
	hosts := map[string]bool{}
	for i, m := range tb.Machines {
		if m.Index != i {
			t.Fatalf("machine %d has index %d", i, m.Index)
		}
		if m.Host != server.ClientHost(i) {
			t.Fatalf("machine %d host = %q, want %q", i, m.Host, server.ClientHost(i))
		}
		if hosts[m.Host] {
			t.Fatalf("duplicate host %q", m.Host)
		}
		hosts[m.Host] = true
		if m.Client == nil || m.Transport == nil || m.Cache == nil || m.CPU == nil || m.BKL == nil {
			t.Fatalf("machine %d incomplete", i)
		}
	}
	// Machine 0 keeps the canonical host name, so single-client call
	// sites (and HostStats(server.HostClient)) keep working.
	if tb.Machines[0].Host != server.HostClient {
		t.Fatalf("machine 0 host = %q, want %q", tb.Machines[0].Host, server.HostClient)
	}
	// The single-machine aliases point at machine 0.
	m0 := tb.Machines[0]
	if tb.CPU != m0.CPU || tb.BKL != m0.BKL || tb.Cache != m0.Cache ||
		tb.Client != m0.Client || tb.Transport != m0.Transport {
		t.Fatal("testbed aliases do not point at machine 0")
	}
	// Distinct FSIDs: files opened on different machines never share a
	// handle, even at the same per-machine file index.
	fhs := map[nfsproto.FileHandle]bool{}
	for i := range tb.Machines {
		fh := tb.Machine(i).OpenNFS().Inode().FH
		if fhs[fh] {
			t.Fatalf("machine %d produced a colliding file handle %v", i, fh)
		}
		fhs[fh] = true
	}
}

func TestMultiClientDefaultsToOne(t *testing.T) {
	tb := NewTestbed(Options{Server: ServerLinux})
	if len(tb.Machines) != 1 {
		t.Fatalf("machines = %d, want 1", len(tb.Machines))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Clients should panic")
		}
	}()
	NewTestbed(Options{Server: ServerLinux, Clients: -2})
}

// A TCP test bed must run the benchmark end to end, and a lossy one must
// reject bad probabilities.
func TestTransportAndLossOptions(t *testing.T) {
	tb := NewTestbed(Options{
		Server:    ServerFiler,
		Client:    core.EnhancedConfig(),
		Transport: rpcsim.TransportTCP,
		Loss:      0.02,
		NetJitter: 50 * time.Microsecond,
	})
	if tb.Transport.Stream() == nil {
		t.Fatal("TCP test bed has no stream endpoint")
	}
	if tb.Net.Loss().Rate != 0.02 {
		t.Fatalf("loss = %v, want 0.02", tb.Net.Loss().Rate)
	}
	res := bonnie.Run(tb.Sim, "tcp-lossy", tb.Open, bonnie.Config{
		FileSize: 1 << 20, TimeLimit: 10 * time.Minute,
	})
	if res.Calls != 128 {
		t.Fatalf("calls = %d, want 128", res.Calls)
	}
	if tb.Net.Totals().FramesDropped == 0 {
		t.Fatal("lossy run dropped nothing")
	}

	if NewTestbed(Options{Server: ServerFiler}).Transport.Stream() != nil {
		t.Fatal("default test bed should be UDP")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Loss >= 1 should panic")
		}
	}()
	NewTestbed(Options{Server: ServerFiler, Loss: 1.5})
}
