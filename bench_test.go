package nfssim_test

// One benchmark per table and figure in the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// iteration regenerates the artifact on a fresh deterministic test bed
// and reports the headline quantity as a custom metric, so
// `go test -bench=.` prints the same rows/series the paper reports.

import (
	"fmt"
	"testing"
	"time"

	nfssim "repro"
	"repro/internal/bonnie"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rpcsim"
)

// quickSizes keeps the sweep benches to a practical iteration time while
// preserving the curve's shape (plateau, knee, tail).
var quickSizes = []int{25, 100, 200, 250, 300, 450}

func BenchmarkFig1LocalVsNFSStock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(quickSizes)
		b.ReportMetric(r.Local.MaxY()/1000, "local-peak-MB/s")
		b.ReportMetric(r.Filer.YAt(100)/1000, "filer-MB/s@100MB")
		b.ReportMetric(r.Linux.YAt(100)/1000, "linux-MB/s@100MB")
	}
}

func BenchmarkFig2PeriodicSpikes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2()
		b.ReportMetric(float64(r.MeanAll.Microseconds()), "mean-us")
		b.ReportMetric(float64(r.MeanBelow.Microseconds()), "mean-excl-spikes-us")
		b.ReportMetric(r.SpikePeriod, "spike-period-calls")
		b.ReportMetric(float64(r.Spikes), "spikes")
	}
}

func BenchmarkFig3LinearListGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3()
		b.ReportMetric(float64(r.MeanAll.Microseconds()), "mean-us")
		b.ReportMetric(r.SlopeNsCall, "slope-ns/call")
		b.ReportMetric(r.Result.WriteMBps(), "write-MB/s")
	}
}

func BenchmarkFig4HashTableFlat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4()
		b.ReportMetric(float64(r.MeanAll.Microseconds()), "mean-us")
		b.ReportMetric(r.SlopeNsCall, "slope-ns/call")
		b.ReportMetric(r.Result.WriteMBps(), "write-MB/s")
	}
}

func BenchmarkFig5HistogramsBKL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5()
		b.ReportMetric(float64(r.FilerMean.Microseconds()), "filer-mean-us")
		b.ReportMetric(float64(r.LinuxMean.Microseconds()), "linux-mean-us")
		b.ReportMetric(float64(r.FilerTail), "filer-tail-calls")
		b.ReportMetric(float64(r.LinuxTail), "linux-tail-calls")
	}
}

func BenchmarkFig6HistogramsNoLock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6()
		b.ReportMetric(float64(r.FilerMean.Microseconds()), "filer-mean-us")
		b.ReportMetric(float64(r.LinuxMean.Microseconds()), "linux-mean-us")
		b.ReportMetric(float64(r.FilerTail), "filer-tail-calls")
		b.ReportMetric(float64(r.LinuxTail), "linux-tail-calls")
	}
}

func BenchmarkTable1LockVsNoLock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		b.ReportMetric(r.FilerLockMBps, "filer-lock-MB/s")
		b.ReportMetric(r.FilerNoLockMBps, "filer-nolock-MB/s")
		b.ReportMetric(r.LinuxLockMBps, "linux-lock-MB/s")
		b.ReportMetric(r.LinuxNoLockMBps, "linux-nolock-MB/s")
	}
}

func BenchmarkFig7LocalVsNFSEnhanced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(quickSizes)
		b.ReportMetric(r.Filer.YAt(100)/1000, "filer-MB/s@100MB")
		b.ReportMetric(r.Filer.YAt(450)/1000, "filer-MB/s@450MB")
		b.ReportMetric(r.Linux.YAt(450)/1000, "linux-MB/s@450MB")
		b.ReportMetric(r.Local.YAt(450)/1000, "local-MB/s@450MB")
	}
}

func BenchmarkSlow100Paradox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Slow100()
		b.ReportMetric(r.SlowMBps, "slow-mem-MB/s")
		b.ReportMetric(r.FilerMBps, "filer-mem-MB/s")
	}
}

func BenchmarkJumboAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Jumbo()
		b.ReportMetric(r.StandardMBps, "mtu1500-MB/s")
		b.ReportMetric(r.JumboMBps, "mtu9000-MB/s")
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// benchRun runs a 10 MB write-phase benchmark and returns MB/s.
func benchRun(srv nfssim.ServerKind, cfg core.Config, cpus int) float64 {
	tb := nfssim.NewTestbed(nfssim.Options{Server: srv, Client: cfg, ClientCPUs: cpus})
	res := bonnie.Run(tb.Sim, "bench", tb.Open, bonnie.Config{
		FileSize: 10 << 20, TimeLimit: 10 * time.Minute, SkipFlushClose: true,
	})
	return res.WriteMBps()
}

// BenchmarkAblationSoftLimit sweeps MAX_REQUEST_SOFT to show the paper's
// limit (192) is in the stall-dominated regime.
func BenchmarkAblationSoftLimit(b *testing.B) {
	for _, soft := range []int{64, 192, 1024, 4096} {
		b.Run(itoa(soft), func(b *testing.B) {
			cfg := core.Stock244Config()
			cfg.MaxRequestSoft = soft
			cfg.MaxRequestHard = soft + 64
			for i := 0; i < b.N; i++ {
				b.ReportMetric(benchRun(nfssim.ServerFiler, cfg, 2), "write-MB/s")
			}
		})
	}
}

// BenchmarkAblationIndex compares the two request-index structures at a
// backlog large enough to expose the O(n) scans.
func BenchmarkAblationIndex(b *testing.B) {
	for _, idx := range []core.IndexPolicy{core.IndexLinearList, core.IndexHashTable} {
		b.Run(idx.String(), func(b *testing.B) {
			cfg := core.NoLimitsConfig()
			cfg.IndexPolicy = idx
			for i := 0; i < b.N; i++ {
				b.ReportMetric(benchRun(nfssim.ServerFiler, cfg, 2), "write-MB/s")
			}
		})
	}
}

// BenchmarkAblationLockPolicy isolates fix 3 on both servers.
func BenchmarkAblationLockPolicy(b *testing.B) {
	for _, srv := range []nfssim.ServerKind{nfssim.ServerFiler, nfssim.ServerLinux} {
		for _, lp := range []rpcsim.LockPolicy{rpcsim.HoldBKLAcrossSend, rpcsim.ReleaseBKLForSend} {
			b.Run(srv.String()+"/"+lp.String(), func(b *testing.B) {
				cfg := core.HashConfig()
				cfg.LockPolicy = lp
				for i := 0; i < b.N; i++ {
					b.ReportMetric(benchRun(srv, cfg, 2), "write-MB/s")
				}
			})
		}
	}
}

// BenchmarkAblationCPUs compares uniprocessor and SMP clients.
func BenchmarkAblationCPUs(b *testing.B) {
	for _, cpus := range []int{1, 2} {
		b.Run(itoa(cpus)+"cpu", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(benchRun(nfssim.ServerFiler, core.EnhancedConfig(), cpus), "write-MB/s")
			}
		})
	}
}

// BenchmarkAblationWSize sweeps the mount's wsize.
func BenchmarkAblationWSize(b *testing.B) {
	for _, w := range []int{4096, 8192, 16384, 32768} {
		b.Run(itoa(w), func(b *testing.B) {
			cfg := core.EnhancedConfig()
			cfg.WSize = w
			for i := 0; i < b.N; i++ {
				b.ReportMetric(benchRun(nfssim.ServerFiler, cfg, 2), "flush-MB/s")
			}
		})
	}
}

// BenchmarkAblationSlotTable sweeps the RPC slot-table depth.
func BenchmarkAblationSlotTable(b *testing.B) {
	for _, slots := range []int{2, 8, 16, 64} {
		b.Run(itoa(slots), func(b *testing.B) {
			rpcCfg := rpcsim.DefaultConfig()
			rpcCfg.MaxSlots = slots
			for i := 0; i < b.N; i++ {
				tb := nfssim.NewTestbed(nfssim.Options{
					Server: nfssim.ServerFiler,
					Client: core.EnhancedConfig(),
					RPC:    &rpcCfg,
				})
				res := bonnie.Run(tb.Sim, "slots", tb.Open, bonnie.Config{
					FileSize: 10 << 20, TimeLimit: 10 * time.Minute,
				})
				b.ReportMetric(res.FlushMBps(), "flush-MB/s")
			}
		})
	}
}

// BenchmarkSimulatorEventRate measures the DES kernel itself: simulated
// RPC round-trips per wall second (regression guard for the substrate).
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(nfssim.ServerFiler, core.EnhancedConfig(), 2)
	}
}

// BenchmarkLossSweep regenerates the lossy-network table: UDP loss
// amplification versus TCP segment recovery at 1% fragment loss.
func BenchmarkLossSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.LossSweep()
		for _, row := range r.Rows {
			if row.Config == "enhanced" && row.Loss == 0.01 {
				b.ReportMetric(row.AggMBps, row.Transport+"-MB/s@1%loss")
			}
		}
	}
}

// BenchmarkAblationTransport compares the two transports on a clean and
// on a mildly lossy network, full 10 MB runs against the filer.
func BenchmarkAblationTransport(b *testing.B) {
	for _, tr := range []rpcsim.TransportKind{rpcsim.TransportUDP, rpcsim.TransportTCP} {
		for _, loss := range []float64{0, 0.01} {
			b.Run(fmt.Sprintf("%s/loss%g", tr, loss), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tb := nfssim.NewTestbed(nfssim.Options{
						Server:    nfssim.ServerFiler,
						Client:    core.EnhancedConfig(),
						Transport: tr,
						Loss:      loss,
					})
					res := bonnie.Run(tb.Sim, "transport", tb.Open, bonnie.Config{
						FileSize: 10 << 20, TimeLimit: 10 * time.Minute,
					})
					b.ReportMetric(res.CloseMBps(), "close-MB/s")
				}
			})
		}
	}
}

// BenchmarkReadSweep regenerates the read-path table: sequential read,
// rewrite and mixed workloads with the readahead ablation.
func BenchmarkReadSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ReadSweep()
		b.ReportMetric(r.Throughput("enhanced", "read"), "enhanced-read-MB/s")
		b.ReportMetric(r.Throughput("ra-off", "read"), "ra-off-read-MB/s")
		b.ReportMetric(r.Throughput("enhanced", "mixed"), "enhanced-mixed-MB/s")
	}
}

// BenchmarkRandomSweep regenerates the random-access table: the fix
// progression under sequential vs random chunk I/O.
func BenchmarkRandomSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RandomSweep()
		b.ReportMetric(r.Throughput("hash", "randwrite"), "hash-randwrite-MB/s")
		b.ReportMetric(r.Throughput("nolimits", "randwrite"), "list-randwrite-MB/s")
		b.ReportMetric(r.Throughput("stock", "randwrite"), "stock-randwrite-MB/s")
		b.ReportMetric(r.Throughput("enhanced", "randread"), "enhanced-randread-MB/s")
	}
}

// BenchmarkDBLoad regenerates the database-load table: group-commit
// fsync cost on the filer vs the Linux server.
func BenchmarkDBLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.DBLoad()
		for _, srv := range []string{"filer", "linux"} {
			if row := r.Row(srv, "enhanced"); row != nil {
				b.ReportMetric(row.TxPerSec, srv+"-tx/s")
				b.ReportMetric(float64(row.FsyncTime.Milliseconds()), srv+"-fsync-ms")
			}
		}
	}
}

// BenchmarkZipfSweep regenerates the many-file metadata table: the
// Zipfian op mix with the attribute cache on and off.
func BenchmarkZipfSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ZipfSweep()
		if on := r.Cell("zipf", "on"); on != nil {
			b.ReportMetric(on.AggMBps, "ac-on-MB/s")
			b.ReportMetric(on.HitRate, "ac-hit-rate")
			b.ReportMetric(float64(on.Getattrs), "ac-on-getattrs")
		}
		if off := r.Cell("zipf", "off"); off != nil {
			b.ReportMetric(off.AggMBps, "noac-MB/s")
			b.ReportMetric(float64(off.Getattrs), "noac-getattrs")
		}
	}
}

func BenchmarkCoherenceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.CoherenceSweep()
		if strict := r.Cell("strict"); strict != nil {
			b.ReportMetric(strict.AggMBps, "strict-MB/s")
			b.ReportMetric(float64(strict.Getattrs), "strict-getattrs")
		}
		if ttl := r.Cell("ttl"); ttl != nil {
			b.ReportMetric(ttl.AggMBps, "ttl-MB/s")
			b.ReportMetric(float64(ttl.StaleReads), "ttl-stale-reads")
		}
		if noac := r.Cell("noac"); noac != nil {
			b.ReportMetric(noac.AggMBps, "noac-MB/s")
			b.ReportMetric(float64(noac.StaleReads), "noac-stale-reads")
		}
	}
}

// BenchmarkAblationReadahead sweeps the readahead window cap on a
// sequential cold-file read against the filer.
func BenchmarkAblationReadahead(b *testing.B) {
	for _, maxPages := range []int{core.ReadaheadOff, core.StockReadaheadMaxPages, core.EnhancedReadaheadMaxPages, 256} {
		name := itoa(maxPages)
		if maxPages == core.ReadaheadOff {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.EnhancedConfig()
			cfg.ReadaheadMaxPages = maxPages
			for i := 0; i < b.N; i++ {
				tb := nfssim.NewTestbed(nfssim.Options{Server: nfssim.ServerFiler, Client: cfg})
				res := bonnie.RunWorkload(tb.Sim, "ra", tb.OpenSet(), bonnie.Config{
					FileSize: 10 << 20, Workload: bonnie.WorkloadRead, TimeLimit: 10 * time.Minute,
				})
				b.ReportMetric(res.WriteMBps(), "read-MB/s")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkFleet1000 runs the thousand-client fleet row end to end: one
// simulation, ~3000 live processes, a thousand 1 MB write+flush+close
// sequences against a single filer. The wall-clock ns/op is the number
// the kernel work is judged by; the reported metrics pin the simulated
// outcome.
func BenchmarkFleet1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FleetAt([]int{1000}, 1)
		row := r.Rows[0]
		b.ReportMetric(row.Aggregate, "agg-MB/s")
		b.ReportMetric(row.Fairness, "fairness")
		b.ReportMetric(row.SlotWaitShare, "slot-wait-share")
	}
}
